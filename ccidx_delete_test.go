package ccidx_test

import (
	"math/rand"
	"sort"
	"testing"

	"ccidx"
	"ccidx/internal/workload"
)

// TestClassIndexDeleteAllStrategies pins ClassIndex.Delete for every
// strategy: present objects delete once (true), repeats and absent objects
// return false (no panic — StrategyRakeContract used to panic here), and
// post-delete queries match the live oracle.
func TestClassIndexDeleteAllStrategies(t *testing.T) {
	h := workload.Fig5Hierarchy()
	type obj struct {
		class string
		attr  int64
		id    uint64
	}
	objs := []obj{
		{"Person", 10, 1}, {"Student", 20, 2}, {"Student", 30, 3},
		{"Professor", 40, 4}, {"AsstProf", 50, 5}, {"AsstProf", 60, 6},
	}
	for _, s := range []ccidx.Strategy{
		ccidx.StrategySimple, ccidx.StrategyFullExtent, ccidx.StrategyRakeContract,
	} {
		ci := ccidx.NewClassIndex(h, ccidx.Config{B: 4}, s)
		for _, o := range objs {
			ci.Insert(o.class, o.attr, o.id)
		}
		if ci.Delete("Person", 999, 12345) {
			t.Fatalf("strategy %d: delete of absent object returned true", s)
		}
		if !ci.Delete("AsstProf", 50, 5) {
			t.Fatalf("strategy %d: delete of present object returned false", s)
		}
		if ci.Delete("AsstProf", 50, 5) {
			t.Fatalf("strategy %d: double delete returned true", s)
		}
		// Full extent of Person now holds everything but id 5.
		var got []uint64
		ci.Query("Person", 0, 100, func(_ int64, id uint64) bool {
			got = append(got, id)
			return true
		})
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		want := []uint64{1, 2, 3, 4, 6}
		if len(got) != len(want) {
			t.Fatalf("strategy %d: query after delete returned %v, want %v", s, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("strategy %d: query after delete returned %v, want %v", s, got, want)
			}
		}
	}
}

// TestIntervalManagerDelete pins the public IntervalManager delete path,
// including churn past the rebuild threshold.
func TestIntervalManagerDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	ivs := workload.UniformIntervals(81, 500, 1000, 100)
	im := ccidx.NewIntervalManager(ccidx.Config{B: 8}, ivs)
	if im.Delete(1 << 50) {
		t.Fatal("delete of absent id returned true")
	}
	deleted := map[uint64]bool{}
	for i := 0; i < 400; i++ {
		id := uint64(i)
		if !im.Delete(id) {
			t.Fatalf("delete of id %d returned false", id)
		}
		deleted[id] = true
	}
	if im.Len() != 100 {
		t.Fatalf("Len=%d", im.Len())
	}
	for trial := 0; trial < 50; trial++ {
		q := rng.Int63n(1100)
		seen := map[uint64]bool{}
		im.Stab(q, func(iv ccidx.Interval) bool {
			if deleted[iv.ID] {
				t.Fatalf("stab %d reported deleted id %d", q, iv.ID)
			}
			if seen[iv.ID] {
				t.Fatalf("stab %d reported id %d twice", q, iv.ID)
			}
			seen[iv.ID] = true
			return true
		})
		want := 0
		for _, iv := range ivs {
			if !deleted[iv.ID] && iv.Contains(q) {
				want++
			}
		}
		if len(seen) != want {
			t.Fatalf("stab %d: %d results, want %d", q, len(seen), want)
		}
	}
}

// TestShardedIntervalManagerDelete pins the public sharded delete path.
func TestShardedIntervalManagerDelete(t *testing.T) {
	const span = int64(1 << 12)
	ivs := workload.UniformIntervals(82, 800, span, 300)
	sm := ccidx.NewShardedIntervalManager(ccidx.ShardConfig{
		Shards: 4, B: 8, Batch: 8, Partition: ccidx.PartitionRange, Span: span,
	}, ivs)
	if sm.Delete(1 << 50) {
		t.Fatal("delete of absent id returned true")
	}
	deleted := map[uint64]bool{}
	for i := 0; i < 500; i += 2 {
		if !sm.Delete(uint64(i)) {
			t.Fatalf("delete of id %d returned false", i)
		}
		deleted[uint64(i)] = true
	}
	if sm.Len() != len(ivs)-len(deleted) {
		t.Fatalf("Len=%d, want %d", sm.Len(), len(ivs)-len(deleted))
	}
	// Pending deletes must be invisible to queries even before Flush.
	for q := int64(0); q < span; q += span / 32 {
		sm.Stab(q, func(iv ccidx.Interval) bool {
			if deleted[iv.ID] {
				t.Fatalf("stab %d reported deleted id %d", q, iv.ID)
			}
			return true
		})
	}
	sm.Flush()
	for q := int64(0); q < span; q += span / 32 {
		want := 0
		for _, iv := range ivs {
			if !deleted[iv.ID] && iv.Contains(q) {
				want++
			}
		}
		got := 0
		sm.Stab(q, func(iv ccidx.Interval) bool { got++; return true })
		if got != want {
			t.Fatalf("post-flush stab %d: %d results, want %d", q, got, want)
		}
	}
}
