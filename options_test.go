package ccidx

import (
	"testing"
)

// collectIdx gathers Stab answers from any Index implementation (the shared
// collectStab helper in ccidx_durable_test.go already takes the interface).
func collectIdx(idx Index, q int64) []uint64 { return collectStab(idx, q) }

// TestUnifiedAPITopologies drives the same churn through every Options
// topology — unsharded/sharded × tree/ingest — and checks the four agree
// query for query.
func TestUnifiedAPITopologies(t *testing.T) {
	ivs := make([]Interval, 0, 64)
	for i := 0; i < 64; i++ {
		lo := int64(i * 7 % 500)
		ivs = append(ivs, Interval{Lo: lo, Hi: lo + 40, ID: uint64(i + 1)})
	}
	opts := []Options{
		{B: 8},
		{B: 8, Ingest: &IngestOptions{MemtableSize: 16, MaxRuns: 3, SyncCompaction: true}},
		{B: 8, Sharding: &ShardingOptions{Shards: 3}},
		{B: 8, Sharding: &ShardingOptions{Shards: 3, Batch: 4},
			Ingest: &IngestOptions{MemtableSize: 16, MaxRuns: 3, SyncCompaction: true}},
	}
	idxs := make([]Index, len(opts))
	for i, o := range opts {
		idxs[i] = NewIndex(o, ivs)
	}
	for i := 0; i < 80; i++ {
		lo := int64(i * 13 % 500)
		iv := Interval{Lo: lo, Hi: lo + 25, ID: uint64(1000 + i)}
		for _, idx := range idxs {
			idx.Insert(iv)
		}
		if i%5 == 4 {
			id := uint64(i/5*3 + 1)
			for _, idx := range idxs {
				idx.Delete(id)
			}
		}
	}
	for _, idx := range idxs {
		idx.Flush()
	}
	want := collectIdx(idxs[0], -1)
	for q := int64(0); q < 550; q += 11 {
		want := collectIdx(idxs[0], q)
		for i, idx := range idxs[1:] {
			if got := collectIdx(idx, q); !sameIDs(got, want) {
				t.Fatalf("topology %d: Stab(%d)=%v want %v", i+1, q, got, want)
			}
		}
	}
	_ = want
	if idxs[1].IngestStats().Flushes == 0 {
		t.Fatal("ingest topology reported no memtable flushes")
	}
	if n := idxs[2].Shards(); n != 3 {
		t.Fatalf("Shards()=%d want 3", n)
	}
	if n := idxs[0].Shards(); n != 1 {
		t.Fatalf("unsharded Shards()=%d want 1", n)
	}
}

// TestUnifiedAPIDurableRoundTrip creates each durable topology through
// Create, mutates, checkpoints, closes, and reopens through Open — which
// must auto-detect the persisted kind and restore the ingest/sharding
// configuration from the manifest.
func TestUnifiedAPIDurableRoundTrip(t *testing.T) {
	ivs := []Interval{{Lo: 5, Hi: 60, ID: 1}, {Lo: 40, Hi: 90, ID: 2}}
	cases := []struct {
		name string
		opts Options
	}{
		{"plain", Options{B: 8}},
		{"ingest", Options{B: 8, Ingest: &IngestOptions{MemtableSize: 8, MaxRuns: 2, SyncCompaction: true}}},
		{"sharded", Options{B: 8, Sharding: &ShardingOptions{Shards: 2}}},
		{"sharded-ingest", Options{B: 8, Sharding: &ShardingOptions{Shards: 2},
			Ingest: &IngestOptions{MemtableSize: 8, MaxRuns: 2, SyncCompaction: true}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			idx, err := Create(dir, tc.opts, ivs)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 40; i++ {
				lo := int64(i * 9 % 200)
				idx.Insert(Interval{Lo: lo, Hi: lo + 30, ID: uint64(100 + i)})
			}
			idx.Delete(1)
			if err := idx.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			// Un-checkpointed tail, recovered from the WAL at Open.
			idx.Insert(Interval{Lo: 300, Hi: 310, ID: 999})
			want := map[int64][]uint64{}
			for q := int64(0); q < 320; q += 17 {
				want[q] = collectIdx(idx, q)
			}
			wantLen := idx.Len()
			if err := idx.Close(); err != nil {
				t.Fatal(err)
			}
			re, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			if re.Len() != wantLen {
				t.Fatalf("reopened Len=%d want %d", re.Len(), wantLen)
			}
			if re.Shards() != idx.Shards() {
				t.Fatalf("reopened Shards=%d want %d", re.Shards(), idx.Shards())
			}
			for q, ids := range want {
				if got := collectIdx(re, q); !sameIDs(got, ids) {
					t.Fatalf("reopened Stab(%d)=%v want %v", q, got, ids)
				}
			}
			if tc.opts.Ingest != nil {
				// The reopened instance must still be in ingest mode (the
				// manifest carries the configuration): keep inserting past a
				// memtable's worth and expect flush activity.
				for i := 0; i < 30; i++ {
					re.Insert(Interval{Lo: int64(i), Hi: int64(i + 5), ID: uint64(2000 + i)})
				}
				if err := re.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				if re.IngestStats().Flushes == 0 {
					t.Fatal("reopened ingest index reported no flushes")
				}
			}
		})
	}
}

// TestUnifiedClassStore exercises the NewClassStore/Create/Open family and
// the ClassStore parity methods on both topologies.
func TestUnifiedClassStore(t *testing.T) {
	build := func() *Hierarchy {
		h := NewHierarchy()
		h.AddClass("vehicle", "")
		h.AddClass("car", "vehicle")
		h.AddClass("truck", "vehicle")
		h.Freeze()
		return h
	}
	for _, sharded := range []bool{false, true} {
		h := build()
		opts := Options{B: 8}
		if sharded {
			opts.Sharding = &ShardingOptions{Shards: 2}
		}
		cs := NewClassStore(h, opts, StrategySimple)
		cs.Insert("car", 10, 1)
		cs.Insert("truck", 20, 2)
		cs.Insert("vehicle", 30, 3)
		cs.Flush()
		var got []uint64
		cs.Query("vehicle", 0, 100, func(_ int64, id uint64) bool {
			got = append(got, id)
			return true
		})
		if len(got) != 3 {
			t.Fatalf("sharded=%v: full-extent query returned %v", sharded, got)
		}
		if cs.Hierarchy() != h {
			t.Fatalf("sharded=%v: Hierarchy() does not round-trip", sharded)
		}
		wantShards := 1
		if sharded {
			wantShards = 2
		}
		if cs.Shards() != wantShards {
			t.Fatalf("sharded=%v: Shards()=%d", sharded, cs.Shards())
		}

		dir := t.TempDir()
		ds, err := CreateClassStore(build(), opts, StrategySimple, dir)
		if err != nil {
			t.Fatal(err)
		}
		ds.Insert("car", 11, 7)
		if err := ds.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if err := ds.Close(); err != nil {
			t.Fatal(err)
		}
		re, err := OpenClassStore(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var ids []uint64
		re.Query("vehicle", 0, 100, func(_ int64, id uint64) bool {
			ids = append(ids, id)
			return true
		})
		re.Close()
		if len(ids) != 1 || ids[0] != 7 {
			t.Fatalf("sharded=%v: reopened class store answered %v", sharded, ids)
		}
	}
}
