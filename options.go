package ccidx

// Unified construction surface. The package grew four families of
// constructors (in-memory / durable-create / durable-open, each times
// unsharded / sharded, for intervals and classes); this file collapses them
// into three entry points per index kind, driven by one Options struct:
//
//	idx := ccidx.NewIndex(opts, ivs)          // in-memory
//	idx, err := ccidx.Create(dir, opts, ivs)  // durable, initial checkpoint
//	idx, err := ccidx.Open(dir, opts)         // reopen, kind auto-detected
//
// Options composes orthogonal concerns: B (block capacity), Durability
// (fsync/WAL policy), Sharding (nil = one manager), and Ingest (nil = the
// paper's amortized-rebuild tree; non-nil = log-structured memtable+runs).
// Open reads the directory's manifest and returns whichever concrete type
// was persisted there, so callers restart without re-stating the topology.
//
// The per-family constructors (NewIntervalManager, CreateShardedIntervalManager,
// OpenClassIndex, ...) remain as thin deprecated wrappers.

import (
	"fmt"

	"ccidx/internal/disk"
	"ccidx/internal/intervals"
	"ccidx/internal/shard"
)

// IngestOptions switches an interval index into log-structured ingest mode:
// inserts and deletes land in a per-shard in-memory memtable (acknowledged
// at the same WAL boundary as the tree path — durability is unchanged) and
// background merges compact the memtable plus a logarithmic set of
// immutable on-disk runs. Queries fan in across memtable and runs with
// per-copy tombstone suppression and answer exactly what the single-tree
// path would.
type IngestOptions struct {
	// MemtableSize is the interval count at which the active memtable is
	// frozen and handed to the merger; <= 0 selects the default (4096).
	MemtableSize int
	// MaxRuns bounds the live run count: beyond it the two smallest runs
	// merge. <= 0 selects the default (8). Lower values favor reads (fewer
	// structures to fan in over), higher values favor writes (less merge
	// amplification) — experiment E25 maps the frontier.
	MaxRuns int
	// SyncCompaction runs flushes and merges on the mutating goroutine
	// instead of a background worker: deterministic, for tests and
	// single-threaded batch loads.
	SyncCompaction bool
}

func (o *IngestOptions) internal() *intervals.IngestConfig {
	if o == nil {
		return nil
	}
	return &intervals.IngestConfig{
		MemtableSize:   o.MemtableSize,
		MaxRuns:        o.MaxRuns,
		SyncCompaction: o.SyncCompaction,
	}
}

// ShardingOptions partitions the index across independent shards served
// concurrently (per-shard RWMutex, group commit, parallel query fan-out).
type ShardingOptions struct {
	// Shards is the shard count; values < 1 mean 1.
	Shards int
	// Batch is the group-commit threshold (values < 1 disable batching).
	Batch int
	// Partition selects hash or range partitioning.
	Partition Partition
	// Span is the key domain [0, Span) required by PartitionRange.
	Span int64
}

// Options configures an index built through NewIndex, Create or Open.
// The zero value is a valid in-memory, unsharded, amortized-rebuild tree
// with the default block capacity.
type Options struct {
	// B is the block capacity (records per page); <= 0 selects 16.
	B int
	// PoolFrames sizes the CLOCK buffer pool each manager reads and writes
	// through: 0 selects the default (shard.DefaultPoolFrames per shard),
	// negative disables pooling (the paper's bare cost model).
	PoolFrames int
	// Durability tunes fsync policy and write-ahead logging for durable
	// instances (ignored by NewIndex).
	Durability DurableOptions
	// Sharding, when non-nil, builds the concurrent sharded serving layer;
	// nil builds a single manager.
	Sharding *ShardingOptions
	// Ingest, when non-nil, selects log-structured ingest mode; nil selects
	// the amortized-rebuild tree.
	Ingest *IngestOptions
}

// defaultB mirrors the experiments' usual block capacity.
const defaultB = 16

func (o Options) b() int {
	if o.B <= 0 {
		return defaultB
	}
	return o.B
}

func (o Options) poolFrames() int {
	if o.PoolFrames < 0 {
		return 0
	}
	if o.PoolFrames == 0 {
		return shard.DefaultPoolFrames
	}
	return o.PoolFrames
}

func (o Options) intervalsConfig() intervals.Config {
	return intervals.Config{B: o.b(), Ingest: o.Ingest.internal()}
}

func (o Options) shardConfig() shard.Config {
	s := o.Sharding
	if s == nil {
		s = &ShardingOptions{}
	}
	return shard.Config{
		Shards: s.Shards, B: o.b(), Batch: s.Batch,
		Partition: s.Partition, Span: s.Span,
		PoolFrames: o.PoolFrames, Ingest: o.Ingest.internal(),
	}
}

// IngestStats is a point-in-time snapshot of the log-structured machinery
// (zeros for tree-mode indexes).
type IngestStats = intervals.IngestStats

// Index is the unified interval-index surface: both IntervalManager and
// ShardedIntervalManager implement it, so serving code is written once and
// the topology is an Options decision.
type Index interface {
	// Insert adds an interval (ids must be unique among live intervals).
	Insert(iv Interval)
	// Delete removes the interval with the given id, reporting presence.
	Delete(id uint64) bool
	// Len returns the number of live intervals, pending ones included.
	Len() int
	// Stab reports every interval containing q, each exactly once.
	Stab(q int64, emit func(Interval) bool)
	// Intersect reports every interval intersecting q, each exactly once.
	Intersect(q Interval, emit func(Interval) bool)
	// StabBatch answers a batch of stabbing queries in shared traversals;
	// emit receives the batch position of the answered query.
	StabBatch(qs []int64, emit func(qi int, iv Interval) bool)
	// IntersectBatch is the batched Intersect.
	IntersectBatch(qs []Interval, emit func(qi int, iv Interval) bool)
	// Flush forces pending group-commit buffers into the index structures
	// and writes dirty pooled frames back to the devices.
	Flush()
	// Checkpoint makes a durable index crash-safe at one committed
	// generation; errors for in-memory instances.
	Checkpoint() error
	// Close closes a durable index's files without checkpointing; no-op in
	// memory.
	Close() error
	// Shards returns the shard count (1 for unsharded indexes).
	Shards() int
	// Rebuilds counts amortized global rebuilds (tree mode) or run
	// compactions (ingest mode) — the serving layer's storm indicator.
	Rebuilds() int
	// IngestStats snapshots the log-structured counters (zeros in tree mode).
	IngestStats() IngestStats
	// PoolStats sums buffer-pool hits and misses (zeros without pooling).
	PoolStats() (hits, misses int64)
	// Stats sums device I/O counters.
	Stats() Stats
	// SpaceBlocks sums live device pages.
	SpaceBlocks() int64
}

// Both topologies satisfy the unified surface.
var (
	_ Index = (*IntervalManager)(nil)
	_ Index = (*ShardedIntervalManager)(nil)
)

// NewIndex builds an in-memory interval index per opts: sharded when
// opts.Sharding is set, log-structured when opts.Ingest is set.
func NewIndex(opts Options, ivs []Interval) Index {
	if opts.Sharding != nil {
		return &ShardedIntervalManager{s: shard.NewIntervals(opts.shardConfig(), ivs)}
	}
	m := intervals.New(opts.intervalsConfig(), ivs)
	if f := opts.poolFrames(); f > 0 {
		m.AttachPool(f, 8)
	}
	return &IntervalManager{m: m}
}

// Create builds a DURABLE interval index under dir per opts and commits the
// initial checkpoint before returning. Reopen with Open — after a clean
// shutdown or a crash, which recovers the last committed generation plus
// (with the WAL on) every acknowledged mutation since.
func Create(dir string, opts Options, ivs []Interval) (Index, error) {
	if opts.Sharding != nil {
		s, err := shard.CreateIntervalsAt(dir, opts.shardConfig(), ivs, opts.Durability.intervals())
		if err != nil {
			return nil, err
		}
		return &ShardedIntervalManager{s: s}, nil
	}
	m, err := intervals.CreateAt(dir, opts.intervalsConfig(), ivs, opts.Durability.intervals())
	if err != nil {
		return nil, err
	}
	if f := opts.poolFrames(); f > 0 {
		m.AttachPool(f, 8)
	}
	return &IntervalManager{m: m}, nil
}

// Open reopens the interval index persisted under dir at its last committed
// checkpoint. The manifest supplies the topology (sharded or not, ingest
// mode, partitioning), so only opts.Durability and opts.PoolFrames are
// consulted — B, Sharding and Ingest are restored from disk.
func Open(dir string, opts Options) (Index, error) {
	mf, err := disk.ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	switch mf.Kind {
	case "ccidx-sharded-intervals":
		s, err := shard.OpenIntervals(dir, opts.Durability.intervals())
		if err != nil {
			return nil, err
		}
		return &ShardedIntervalManager{s: s}, nil
	case "ccidx-intervals":
		m, err := intervals.OpenAt(dir, opts.Durability.intervals())
		if err != nil {
			return nil, err
		}
		if f := opts.poolFrames(); f > 0 {
			m.AttachPool(f, 8)
		}
		return &IntervalManager{m: m}, nil
	default:
		return nil, fmt.Errorf("ccidx: %s holds a %q checkpoint, not an interval index", dir, mf.Kind)
	}
}

// ClassStore is the unified class-index surface implemented by ClassIndex
// and ShardedClassIndex.
type ClassStore interface {
	// Insert adds an object with the given class name, attribute and id.
	Insert(class string, attr int64, id uint64)
	// Query reports every object in the FULL extent of the class whose
	// attribute lies in [a1, a2], each exactly once.
	Query(class string, a1, a2 int64, emit func(attr int64, id uint64) bool)
	// Flush forces pending group-commit buffers into the index structures.
	Flush()
	// Checkpoint makes a durable store crash-safe; errors in memory.
	Checkpoint() error
	// Close closes files without checkpointing; no-op in memory.
	Close() error
	// Shards returns the shard count (1 for unsharded stores).
	Shards() int
	// Hierarchy returns the frozen hierarchy the store serves.
	Hierarchy() *Hierarchy
	// Stats sums device I/O counters.
	Stats() Stats
	// SpaceBlocks sums live device pages.
	SpaceBlocks() int64
}

var (
	_ ClassStore = (*ClassIndex)(nil)
	_ ClassStore = (*ShardedClassIndex)(nil)
)

// NewClassStore builds an in-memory class store over a frozen hierarchy:
// sharded when opts.Sharding is set. opts.Ingest is an interval-index
// concern and is ignored here.
func NewClassStore(h *Hierarchy, opts Options, s Strategy) ClassStore {
	if opts.Sharding != nil {
		return NewShardedClassIndex(h, opts.classShardConfig(), s)
	}
	return NewClassIndex(h, Config{B: opts.b()}, s)
}

// CreateClassStore builds a DURABLE class store under dir and commits the
// initial (empty) checkpoint; the hierarchy is recorded in the manifest.
func CreateClassStore(h *Hierarchy, opts Options, s Strategy, dir string) (ClassStore, error) {
	if opts.Sharding != nil {
		return CreateShardedClassIndex(h, opts.classShardConfig(), s, dir, opts.Durability)
	}
	return CreateClassIndex(h, Config{B: opts.b()}, s, dir, opts.Durability)
}

// OpenClassStore reopens the class store persisted under dir, auto-detecting
// whether it is sharded; strategy, B and hierarchy come from the manifest.
func OpenClassStore(dir string, opts Options) (ClassStore, error) {
	mf, err := disk.ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	switch mf.Kind {
	case "ccidx-sharded-classes":
		return OpenShardedClassIndex(dir, opts.Durability)
	case classIndexManifestKind:
		return OpenClassIndex(dir, opts.Durability)
	default:
		return nil, fmt.Errorf("ccidx: %s holds a %q checkpoint, not a class index", dir, mf.Kind)
	}
}

// classShardConfig is Options folded into the legacy ShardConfig shape the
// sharded class constructors take (class stores have no ingest mode).
func (o Options) classShardConfig() ShardConfig {
	s := o.Sharding
	if s == nil {
		s = &ShardingOptions{}
	}
	return ShardConfig{
		Shards: s.Shards, B: o.b(), Batch: s.Batch,
		Partition: s.Partition, Span: s.Span, PoolFrames: o.PoolFrames,
	}
}
