package ccidx

import (
	"errors"
	"path/filepath"
	"testing"

	"ccidx/internal/bptree"
	"ccidx/internal/disk"
	"ccidx/internal/workload"
)

// TestPublicBitFlipDetected: a single flipped bit under a durable manager
// created through the PUBLIC API surfaces from the public open as a typed
// disk.ErrCorrupt — callers can errors.As it at the top of the stack — and
// never as a panic or a silently wrong answer.
func TestPublicBitFlipDetected(t *testing.T) {
	const span = int64(2000)
	ivs := workload.UniformIntervals(7, 200, span, 150)

	t.Run("standalone", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "mgr")
		cfg := Config{B: 8}
		m, err := CreateIntervalManager(cfg, dir, ivs)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		if err := disk.FlipBit(filepath.Join(dir, "endpoints.pages"),
			bptree.PageSize(cfg.B), 1, 17); err != nil {
			t.Fatal(err)
		}
		m, err = OpenIntervalManager(dir)
		if err == nil {
			m.Close()
			t.Fatal("OpenIntervalManager succeeded over a flipped page")
		}
		var corrupt disk.ErrCorrupt
		if !errors.As(err, &corrupt) {
			t.Fatalf("open error = %v, want a wrapped disk.ErrCorrupt", err)
		}
	})

	t.Run("sharded", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "sharded")
		cfg := ShardConfig{Shards: 2, B: 8, Batch: 2, Partition: PartitionRange, Span: span}
		sm, err := CreateShardedIntervalManager(cfg, dir, ivs)
		if err != nil {
			t.Fatal(err)
		}
		if err := sm.Close(); err != nil {
			t.Fatal(err)
		}
		if err := disk.FlipBit(filepath.Join(dir, "shard-0000", "endpoints.pages"),
			bptree.PageSize(cfg.B), 1, 17); err != nil {
			t.Fatal(err)
		}
		sm, err = OpenShardedIntervalManager(dir)
		if err == nil {
			sm.Close()
			t.Fatal("OpenShardedIntervalManager succeeded over a flipped page")
		}
		var corrupt disk.ErrCorrupt
		if !errors.As(err, &corrupt) {
			t.Fatalf("open error = %v, want a wrapped disk.ErrCorrupt", err)
		}
	})
}

// TestPublicWalRecoversAckedMutations: mutations acknowledged through the
// public API after the last checkpoint are recovered by the public open —
// the WAL's whole point — at both the standalone and sharded levels.
// Close without Checkpoint models a process crash whose file writes all
// landed (write-ordering durability).
func TestPublicWalRecoversAckedMutations(t *testing.T) {
	const span = int64(2000)
	ivs := workload.UniformIntervals(9, 120, span, 150)
	extra := Interval{Lo: 42, Hi: 99, ID: 900001}

	t.Run("standalone", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "mgr")
		m, err := CreateIntervalManager(Config{B: 8}, dir, ivs)
		if err != nil {
			t.Fatal(err)
		}
		m.Insert(extra)
		if !m.Delete(ivs[3].ID) {
			t.Fatal("delete of live id returned false")
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		re, err := OpenIntervalManager(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()
		if got, want := re.Len(), len(ivs); got != want {
			t.Fatalf("recovered Len = %d, want %d", got, want)
		}
		ids := collectStab(re, 50)
		found := false
		for _, id := range ids {
			if id == extra.ID {
				found = true
			}
		}
		if !found {
			t.Fatal("acked post-checkpoint insert not recovered")
		}
	})

	t.Run("sharded", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "sharded")
		cfg := ShardConfig{Shards: 3, B: 8, Batch: 8, Partition: PartitionRange, Span: span}
		sm, err := CreateShardedIntervalManager(cfg, dir, ivs)
		if err != nil {
			t.Fatal(err)
		}
		// Batch 8 keeps these buffered: acknowledged, logged, NOT yet in
		// the trees — exactly the window the WAL closes.
		sm.Insert(extra)
		if !sm.Delete(ivs[3].ID) {
			t.Fatal("delete of live id returned false")
		}
		if err := sm.Close(); err != nil {
			t.Fatal(err)
		}
		re, err := OpenShardedIntervalManager(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()
		if got, want := re.Len(), len(ivs); got != want {
			t.Fatalf("recovered Len = %d, want %d", got, want)
		}
		ids := collectStab(re, 50)
		found := false
		for _, id := range ids {
			if id == extra.ID {
				found = true
			}
			if id == ivs[3].ID {
				t.Fatal("acked delete resurrected after reopen")
			}
		}
		if !found {
			t.Fatal("acked buffered insert not recovered")
		}
	})
}
