package ccidx_test

// Facade test for the public ReadRouter: a tiny in-memory fleet (one
// sharded manager behind two HTTP fronts) must answer typed Stab and
// Intersect queries identically to the backend, and the stats snapshot
// must reflect the traffic.

import (
	"context"
	"net/http/httptest"
	"testing"

	"ccidx"
	"ccidx/internal/server"
	"ccidx/internal/shard"
	"ccidx/internal/workload"
)

func TestReadRouterFacade(t *testing.T) {
	const span = int64(100000)
	im := shard.NewIntervals(shard.Config{
		Shards: 2, B: 16, Batch: 16, Partition: shard.PartitionRange, Span: span,
	}, workload.UniformIntervals(7, 500, span, 900))

	var fronts []string
	for i := 0; i < 2; i++ {
		srv, err := server.New(server.Backend{Intervals: im}, server.Config{})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		fronts = append(fronts, ts.URL)
	}

	rt, err := ccidx.NewReadRouter(fronts, ccidx.RouterOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.Ready() != 2 {
		t.Fatalf("ready endpoints %d, want 2", rt.Ready())
	}

	ctx := context.Background()
	for q := int64(0); q < span; q += span / 20 {
		got, err := rt.Stab(ctx, q)
		if err != nil {
			t.Fatalf("stab(%d): %v", q, err)
		}
		want := map[uint64]bool{}
		im.Stab(q, func(iv ccidx.Interval) bool { want[iv.ID] = true; return true })
		if len(got) != len(want) {
			t.Fatalf("stab(%d): routed %d rows, backend %d", q, len(got), len(want))
		}
		for _, iv := range got {
			if !want[iv.ID] {
				t.Fatalf("stab(%d): routed unexpected id %d", q, iv.ID)
			}
		}
	}

	ivs, err := rt.Intersect(ctx, span/4, span/2)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	im.Intersect(ccidx.Interval{Lo: span / 4, Hi: span / 2}, func(ccidx.Interval) bool { want++; return true })
	if len(ivs) != want {
		t.Fatalf("intersect: routed %d rows, backend %d", len(ivs), want)
	}

	st := rt.Stats()
	if st.Requests < 20 || st.Attempts < st.Requests || st.Exhausted != 0 {
		t.Fatalf("implausible stats %+v", st)
	}
}
