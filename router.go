package ccidx

import (
	"context"
	"time"

	"ccidx/internal/router"
)

// RouterOptions tunes the fault-tolerant read router. The zero value is a
// sensible production default: 100ms health probes, 4 attempts with
// exponential jittered backoff, adaptive (p99-based) hedging, and
// strictly monotonic reads.
type RouterOptions struct {
	// ProbeInterval is the period of the background /readyz health probes
	// (0 = 100ms).
	ProbeInterval time.Duration
	// AttemptTimeout bounds each individual request attempt (0 = 1s).
	AttemptTimeout time.Duration
	// MaxAttempts bounds the retry loop per logical request, hedges
	// excluded (0 = 4).
	MaxAttempts int
	// HedgeDelay is how long the first attempt may run before a hedge is
	// sent to another replica: 0 adapts to the observed p99 latency, a
	// negative value disables hedging.
	HedgeDelay time.Duration
	// MaxLag relaxes the freshness bound: an answer whose replication LSN
	// trails the router's high-water mark by more than MaxLag ops is
	// rejected and retried elsewhere. The zero value means strictly
	// monotonic reads — every accepted answer is at least as fresh as
	// every previously accepted one.
	MaxLag int64
	// Seed fixes the router's jitter/hedge randomness for reproducible
	// tests (0 = 1).
	Seed int64
}

// RouterStats is a snapshot of the router's cumulative counters.
type RouterStats struct {
	Requests     int64 // logical requests issued via the router
	Attempts     int64 // individual endpoint attempts (retries + hedges included)
	Retries      int64 // attempts beyond the first for a request
	Failovers    int64 // retries that switched to a different endpoint
	Hedges       int64 // speculative duplicate attempts sent
	HedgeWins    int64 // hedges that beat the primary attempt
	StaleRejects int64 // 200s rejected for epoch mismatch or excessive lag
	BreakerTrips int64 // circuit-breaker opens
	Exhausted    int64 // requests that failed every attempt
}

// ReadRouter is a client-side failover router over the read path of a
// replicated ccidx fleet (one primary plus N snapshot-shipped replicas,
// all serving the HTTP API). It health-probes every endpoint, retries
// with exponential jittered backoff, hedges slow requests, circuit-breaks
// repeatedly failing endpoints, and — via the epoch and LSN every server
// stamps on its responses — never returns an answer from a stale epoch or
// one that regresses past the configured lag bound. Safe for concurrent
// use.
type ReadRouter struct {
	rt *router.Router
}

// NewReadRouter builds a router over the given endpoint base URLs (e.g.
// "http://10.0.0.1:8416"). At least one endpoint is required; an initial
// synchronous probe round runs before returning, so the router is
// immediately usable (endpoints that are down merely start unhealthy).
func NewReadRouter(endpoints []string, opts RouterOptions) (*ReadRouter, error) {
	rt, err := router.New(router.Config{
		Endpoints:      endpoints,
		ProbeInterval:  opts.ProbeInterval,
		AttemptTimeout: opts.AttemptTimeout,
		MaxAttempts:    opts.MaxAttempts,
		HedgeDelay:     opts.HedgeDelay,
		MaxLag:         opts.MaxLag,
		Seed:           opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &ReadRouter{rt: rt}, nil
}

// Stab answers a stabbing query through the fleet: every interval
// containing q, routed to a healthy, fresh endpoint with retry, hedging
// and failover.
func (r *ReadRouter) Stab(ctx context.Context, q int64) ([]Interval, error) {
	return r.rt.Stab(ctx, q)
}

// Intersect answers an intersection query through the fleet: every
// interval intersecting [lo, hi].
func (r *ReadRouter) Intersect(ctx context.Context, lo, hi int64) ([]Interval, error) {
	return r.rt.Intersect(ctx, lo, hi)
}

// Ready returns how many endpoints the last probe round found ready.
func (r *ReadRouter) Ready() int { return r.rt.Ready() }

// Epoch returns the primary epoch the router has adopted ("" until the
// first successful probe).
func (r *ReadRouter) Epoch() string { return r.rt.Epoch() }

// Stats returns a snapshot of the router's cumulative counters.
func (r *ReadRouter) Stats() RouterStats {
	s := r.rt.Stats()
	return RouterStats{
		Requests:     s.Requests,
		Attempts:     s.Attempts,
		Retries:      s.Retries,
		Failovers:    s.Failovers,
		Hedges:       s.Hedges,
		HedgeWins:    s.HedgeWins,
		StaleRejects: s.StaleRejects,
		BreakerTrips: s.BreakerTrips,
		Exhausted:    s.Exhausted,
	}
}

// Close stops the background health probes. In-flight requests finish.
func (r *ReadRouter) Close() { r.rt.Close() }
