module ccidx

go 1.21
