package main

import (
	"math"
	"strings"
	"testing"
)

func res(metrics map[string]float64) benchResult {
	return benchResult{Iterations: 1, Metrics: metrics}
}

func TestCompareZeroBaselines(t *testing.T) {
	base := map[string]benchResult{
		"BenchZeroBoth": res(map[string]float64{"ios/op": 0}),
		"BenchZeroBase": res(map[string]float64{"ios/op": 0}),
		"BenchNormal":   res(map[string]float64{"ios/op": 100}),
	}
	cur := map[string]benchResult{
		"BenchZeroBoth": res(map[string]float64{"ios/op": 0}),
		"BenchZeroBase": res(map[string]float64{"ios/op": 7.5}),
		"BenchNormal":   res(map[string]float64{"ios/op": 105}),
	}
	r := compare(base, cur, "ios/op", 0.10)
	if r.compared != 3 || r.missing != 0 {
		t.Fatalf("compared=%d missing=%d", r.compared, r.missing)
	}
	if r.regressed != 1 {
		t.Fatalf("regressed=%d, want exactly the zero-to-material jump", r.regressed)
	}
	all := strings.Join(r.lines, "\n")
	if strings.Contains(all, "Inf") || strings.Contains(all, "NaN") {
		t.Fatalf("report leaked a non-finite percentage:\n%s", all)
	}
	if !strings.Contains(all, "REGRESSION (from zero)") {
		t.Fatalf("zero-baseline jump not flagged:\n%s", all)
	}
}

func TestCompareNonFiniteFailsGate(t *testing.T) {
	base := map[string]benchResult{"B": res(map[string]float64{"ios/op": math.NaN()})}
	cur := map[string]benchResult{"B": res(map[string]float64{"ios/op": 5})}
	r := compare(base, cur, "ios/op", 0.10)
	if r.regressed != 1 {
		t.Fatalf("NaN baseline compared cleanly: %+v", r)
	}
	base = map[string]benchResult{"B": res(map[string]float64{"ios/op": 5})}
	cur = map[string]benchResult{"B": res(map[string]float64{"ios/op": math.Inf(1)})}
	if r := compare(base, cur, "ios/op", 0.10); r.regressed != 1 {
		t.Fatalf("Inf current compared cleanly: %+v", r)
	}
}

func TestCompareMissingAndVanishedMetric(t *testing.T) {
	base := map[string]benchResult{
		"BenchGone":     res(map[string]float64{"ios/op": 10}),
		"BenchNoMetric": res(map[string]float64{"ios/op": 10}),
		"BenchKept":     res(map[string]float64{"ios/op": 10}),
	}
	cur := map[string]benchResult{
		"BenchNoMetric": res(map[string]float64{"ns/op": 123}),
		"BenchKept":     res(map[string]float64{"ios/op": 10}),
	}
	r := compare(base, cur, "ios/op", 0.10)
	if r.missing != 2 {
		t.Fatalf("missing=%d, want 2 (vanished benchmark + vanished metric)", r.missing)
	}
	all := strings.Join(r.lines, "\n")
	if !strings.Contains(all, "MISSING") || !strings.Contains(all, "NO METRIC") {
		t.Fatalf("missing rows not labeled:\n%s", all)
	}
}

func TestCompareNewBenchmarksReportedNotFailed(t *testing.T) {
	base := map[string]benchResult{"BenchOld": res(map[string]float64{"ios/op": 10})}
	cur := map[string]benchResult{
		"BenchOld":   res(map[string]float64{"ios/op": 10}),
		"BenchAdded": res(map[string]float64{"ios/op": 42}),
	}
	r := compare(base, cur, "ios/op", 0.10)
	if r.regressed != 0 || r.missing != 0 {
		t.Fatalf("new benchmark failed the gate: %+v", r)
	}
	if r.fresh != 1 {
		t.Fatalf("fresh=%d, want 1", r.fresh)
	}
	if !strings.Contains(strings.Join(r.lines, "\n"), "NEW") {
		t.Fatalf("new benchmark not reported:\n%s", strings.Join(r.lines, "\n"))
	}
}

func TestCompareRegressionThreshold(t *testing.T) {
	base := map[string]benchResult{
		"BenchWithin": res(map[string]float64{"ios/op": 100}),
		"BenchBeyond": res(map[string]float64{"ios/op": 100}),
		"BenchFaster": res(map[string]float64{"ios/op": 100}),
	}
	cur := map[string]benchResult{
		"BenchWithin": res(map[string]float64{"ios/op": 109}),
		"BenchBeyond": res(map[string]float64{"ios/op": 112}),
		"BenchFaster": res(map[string]float64{"ios/op": 50}),
	}
	r := compare(base, cur, "ios/op", 0.10)
	if r.regressed != 1 {
		t.Fatalf("regressed=%d, want 1 (only the +12%%)", r.regressed)
	}
}
