// Command benchdiff turns the benchmark document into a regression GATE:
// it diffs a fresh BENCH.json against the committed baseline and fails
// (exit 1) when any tier-1 experiment's I/O cost regressed by more than the
// allowed fraction — instead of CI only uploading an artifact someone might
// read.
//
// The compared quantity defaults to ios/op, the repository's experiment
// currency: it is deterministic for the fixed-seed workloads, so a >10%
// change is a real algorithmic regression, not machine noise (wall-clock
// metrics are deliberately NOT gated; they vary with the runner).
//
// Edge contract (each of these once silently mis-reported):
//   - a baseline at or near zero never divides to Inf%: both sides ~0
//     compare equal, and zero-to-material jumps are flagged as regressions
//     with an absolute annotation instead of a percentage;
//   - non-finite metric values (NaN/Inf smuggled in by a corrupt document)
//     fail the gate rather than comparing as anything;
//   - a benchmark present in the baseline but absent from the new run (or
//     missing the gated metric) fails the gate; one only in the new run is
//     reported as NEW without failing, so adding benchmarks doesn't need a
//     baseline ratchet in the same commit.
//
// Usage:
//
//	benchdiff -baseline BENCH.json.committed -current BENCH.json
//	benchdiff -baseline old.json -current new.json -metric allocs/op -max-regress 0.25
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// benchResult mirrors the document cmd/experiments -bench-json emits.
type benchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type benchFile struct {
	Schema string                 `json:"schema"`
	After  map[string]benchResult `json:"after"`
}

func load(path string) (map[string]benchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchFile
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if !strings.HasPrefix(doc.Schema, "ccidx-bench/") {
		return nil, fmt.Errorf("%s: unexpected schema %q", path, doc.Schema)
	}
	if len(doc.After) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results", path)
	}
	return doc.After, nil
}

// zeroEps is the magnitude below which a metric value counts as zero: ios/op
// and allocs/op are whole-number-ish rates, so anything this small is a
// true zero measured through go test's fixed-point formatting.
const zeroEps = 1e-9

// diffReport is the outcome of one gate run, separated from printing so the
// edge cases are unit-testable.
type diffReport struct {
	lines     []string // one formatted row per baseline/new benchmark
	compared  int      // benchmarks with the metric on both sides
	regressed int      // beyond maxRegress (or non-finite)
	missing   int      // in baseline, absent or metric-less in current
	fresh     int      // only in current: reported, not failed
}

// compare diffs current against baseline on one metric. It never divides by
// a (near-)zero baseline: both sides below zeroEps are equal by definition,
// and a jump from ~0 to a material value is a regression annotated with the
// absolute values. Non-finite values on either side fail the comparison.
func compare(base, cur map[string]benchResult, metric string, maxRegress float64) diffReport {
	var r diffReport
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		bv, ok := base[name].Metrics[metric]
		if !ok {
			continue // baseline benchmark without the gated metric
		}
		cr, ok := cur[name]
		if !ok {
			// A tier-1 benchmark that vanished is a gate failure too: a
			// silent drop would otherwise hide a regression forever.
			r.lines = append(r.lines, fmt.Sprintf("%-44s %12.2f %12s %8s", name, bv, "MISSING", "!!"))
			r.missing++
			continue
		}
		cv, ok := cr.Metrics[metric]
		if !ok {
			r.lines = append(r.lines, fmt.Sprintf("%-44s %12.2f %12s %8s", name, bv, "NO METRIC", "!!"))
			r.missing++
			continue
		}
		if math.IsNaN(bv) || math.IsInf(bv, 0) || math.IsNaN(cv) || math.IsInf(cv, 0) {
			r.compared++
			r.regressed++
			r.lines = append(r.lines, fmt.Sprintf("%-44s %12v %12v %8s  << NON-FINITE", name, bv, cv, "!!"))
			continue
		}
		r.compared++
		switch {
		case math.Abs(bv) < zeroEps && math.Abs(cv) < zeroEps:
			r.lines = append(r.lines, fmt.Sprintf("%-44s %12.2f %12.2f %+7.1f%%", name, bv, cv, 0.0))
		case math.Abs(bv) < zeroEps:
			// Zero baseline: any material cost appearing is a regression,
			// reported absolutely — a percentage would be Inf.
			r.regressed++
			r.lines = append(r.lines, fmt.Sprintf("%-44s %12.2f %12.2f %8s  << REGRESSION (from zero)", name, bv, cv, "+inf"))
		default:
			delta := cv/bv - 1
			marker := ""
			if delta > maxRegress {
				marker = "  << REGRESSION"
				r.regressed++
			}
			r.lines = append(r.lines, fmt.Sprintf("%-44s %12.2f %12.2f %+7.1f%%%s", name, bv, cv, delta*100, marker))
		}
	}

	// Benchmarks only in the current run: informational, never a failure.
	var freshNames []string
	for name := range cur {
		if _, ok := base[name]; !ok {
			freshNames = append(freshNames, name)
		}
	}
	sort.Strings(freshNames)
	for _, name := range freshNames {
		cv, ok := cur[name].Metrics[metric]
		if !ok {
			continue
		}
		r.fresh++
		r.lines = append(r.lines, fmt.Sprintf("%-44s %12s %12.2f %8s", name, "(new)", cv, "NEW"))
	}
	return r
}

func main() {
	baseline := flag.String("baseline", "", "committed BENCH.json to gate against")
	current := flag.String("current", "", "freshly generated BENCH.json")
	metric := flag.String("metric", "ios/op", "metric to gate on (deterministic metrics only)")
	maxRegress := flag.Float64("max-regress", 0.10, "maximum allowed fractional regression (0.10 = +10%)")
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline and -current are required")
		os.Exit(2)
	}
	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	r := compare(base, cur, *metric, *maxRegress)
	fmt.Printf("%-44s %12s %12s %8s\n", "benchmark", "base "+*metric, "cur "+*metric, "delta")
	for _, line := range r.lines {
		fmt.Println(line)
	}
	if r.compared == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmarks shared the gated metric — wrong files?")
		os.Exit(2)
	}
	if r.regressed > 0 || r.missing > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: FAIL — %d regression(s) beyond +%.0f%%, %d missing, %d compared\n",
			r.regressed, *maxRegress*100, r.missing, r.compared)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: OK — %d benchmarks within +%.0f%% on %s (%d new)\n",
		r.compared, *maxRegress*100, *metric, r.fresh)
}
