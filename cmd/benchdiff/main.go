// Command benchdiff turns the benchmark document into a regression GATE:
// it diffs a fresh BENCH.json against the committed baseline and fails
// (exit 1) when any tier-1 experiment's I/O cost regressed by more than the
// allowed fraction — instead of CI only uploading an artifact someone might
// read.
//
// The compared quantity defaults to ios/op, the repository's experiment
// currency: it is deterministic for the fixed-seed workloads, so a >10%
// change is a real algorithmic regression, not machine noise (wall-clock
// metrics are deliberately NOT gated; they vary with the runner).
//
// Usage:
//
//	benchdiff -baseline BENCH.json.committed -current BENCH.json
//	benchdiff -baseline old.json -current new.json -metric allocs/op -max-regress 0.25
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// benchResult mirrors the document cmd/experiments -bench-json emits.
type benchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type benchFile struct {
	Schema string                 `json:"schema"`
	After  map[string]benchResult `json:"after"`
}

func load(path string) (map[string]benchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchFile
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if !strings.HasPrefix(doc.Schema, "ccidx-bench/") {
		return nil, fmt.Errorf("%s: unexpected schema %q", path, doc.Schema)
	}
	if len(doc.After) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results", path)
	}
	return doc.After, nil
}

func main() {
	baseline := flag.String("baseline", "", "committed BENCH.json to gate against")
	current := flag.String("current", "", "freshly generated BENCH.json")
	metric := flag.String("metric", "ios/op", "metric to gate on (deterministic metrics only)")
	maxRegress := flag.Float64("max-regress", 0.10, "maximum allowed fractional regression (0.10 = +10%)")
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline and -current are required")
		os.Exit(2)
	}
	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	var compared, regressed, missing int
	fmt.Printf("%-44s %12s %12s %8s\n", "benchmark", "base "+*metric, "cur "+*metric, "delta")
	for _, name := range names {
		bv, ok := base[name].Metrics[*metric]
		if !ok {
			continue // baseline benchmark without the gated metric
		}
		cr, ok := cur[name]
		if !ok {
			// A tier-1 benchmark that vanished is a gate failure too: a
			// silent drop would otherwise hide a regression forever.
			fmt.Printf("%-44s %12.2f %12s %8s\n", name, bv, "MISSING", "!!")
			missing++
			continue
		}
		cv, ok := cr.Metrics[*metric]
		if !ok {
			fmt.Printf("%-44s %12.2f %12s %8s\n", name, bv, "NO METRIC", "!!")
			missing++
			continue
		}
		compared++
		delta := 0.0
		if bv != 0 {
			delta = cv/bv - 1
		} else if cv > 0 {
			delta = 1 // from zero to nonzero: treat as full regression
		}
		marker := ""
		if delta > *maxRegress {
			marker = "  << REGRESSION"
			regressed++
		}
		fmt.Printf("%-44s %12.2f %12.2f %+7.1f%%%s\n", name, bv, cv, delta*100, marker)
	}

	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmarks shared the gated metric — wrong files?")
		os.Exit(2)
	}
	if regressed > 0 || missing > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: FAIL — %d regression(s) beyond +%.0f%%, %d missing, %d compared\n",
			regressed, *maxRegress*100, missing, compared)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: OK — %d benchmarks within +%.0f%% on %s\n", compared, *maxRegress*100, *metric)
}
