// Command ccserve runs the HTTP serving front-end over a sharded interval
// manager (and optionally a class index), with adaptive auto-batching,
// admission control, and a /metrics endpoint.
//
// In-memory with a synthetic workload:
//
//	ccserve -addr :8416 -n 100000 -shards 8
//
// Durable (creates dir on first run, reopens it afterwards):
//
//	ccserve -addr :8416 -dir /var/lib/ccidx -n 100000
//
// Batching is adaptive by default; -nobatch serves the sequential control
// arm for A/B load tests with ccload.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ccidx/internal/classindex"
	"ccidx/internal/disk"
	"ccidx/internal/intervals"
	"ccidx/internal/server"
	"ccidx/internal/shard"
	"ccidx/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8416", "listen address")
	shards := flag.Int("shards", 4, "shard count")
	b := flag.Int("b", 32, "block capacity B")
	batch := flag.Int("batch", 64, "per-shard group-commit buffer size")
	partition := flag.String("partition", "range", "partitioning: range|hash")
	pool := flag.Int("pool", 256, "buffer-pool frames per shard (-1 disables)")
	n := flag.Int("n", 100000, "synthetic intervals to preload (create only)")
	seed := flag.Int64("seed", 1, "workload seed")
	maxlen := flag.Int64("maxlen", 0, "max interval length (0 = span/n*8)")
	dir := flag.String("dir", "", "durable directory (empty = in-memory)")
	fsync := flag.String("fsync", "checkpoint", "fsync policy for durable dirs: never|checkpoint|always")
	nowal := flag.Bool("nowal", false, "disable the write-ahead log (checkpoint-granular durability)")
	classes := flag.Int("classes", 0, "classes in a synthetic hierarchy (0 = no class index)")
	window := flag.Duration("window", time.Millisecond, "max auto-batch window")
	maxbatch := flag.Int("maxbatch", 1024, "max coalesced batch size")
	inflight := flag.Int("inflight", 1024, "max in-flight requests before shedding")
	timeout := flag.Duration("timeout", 2*time.Second, "per-request deadline")
	nobatch := flag.Bool("nobatch", false, "disable auto-batching (sequential control arm)")
	flag.Parse()

	if err := run(*addr, *shards, *b, *batch, *partition, *pool, *n, *seed, *maxlen,
		*dir, *fsync, *nowal, *classes, *window, *maxbatch, *inflight, *timeout, *nobatch); err != nil {
		fmt.Fprintln(os.Stderr, "ccserve:", err)
		os.Exit(1)
	}
}

func run(addr string, shards, b, batch int, partition string, pool, n int, seed, maxlen int64,
	dir, fsync string, nowal bool, classes int, window time.Duration, maxbatch, inflight int,
	timeout time.Duration, nobatch bool) error {
	span := int64(n) * 16
	if maxlen <= 0 {
		maxlen = span / int64(n) * 8
	}
	var part shard.Partition
	switch partition {
	case "range":
		part = shard.PartitionRange
	case "hash":
		part = shard.PartitionHash
	default:
		return fmt.Errorf("unknown partition %q (want range|hash)", partition)
	}
	cfg := shard.Config{
		Shards: shards, B: b, Batch: batch,
		Partition: part, Span: span, PoolFrames: pool,
	}

	dopt := intervals.DurableOptions{DisableWAL: nowal}
	switch fsync {
	case "never":
		dopt.Fsync = disk.FsyncNever
	case "checkpoint":
		dopt.Fsync = disk.FsyncCheckpoint
	case "always":
		dopt.Fsync = disk.FsyncAlways
	default:
		return fmt.Errorf("unknown fsync policy %q (want never|checkpoint|always)", fsync)
	}

	var im *shard.Intervals
	var err error
	switch {
	case dir == "":
		im = shard.NewIntervals(cfg, workload.UniformIntervals(seed, n, span, maxlen))
		fmt.Printf("ccserve: in-memory, %d intervals across %d shards\n", im.Len(), shards)
	default:
		if _, serr := os.Stat(dir); serr == nil {
			im, err = shard.OpenIntervals(dir, dopt)
			if err != nil {
				return fmt.Errorf("opening %s: %w", dir, err)
			}
			fmt.Printf("ccserve: reopened %s at seq %d, %d intervals (fsync=%s wal=%v)\n",
				dir, im.Seq(), im.Len(), fsync, !nowal)
		} else {
			im, err = shard.CreateIntervalsAt(dir, cfg,
				workload.UniformIntervals(seed, n, span, maxlen), dopt)
			if err != nil {
				return fmt.Errorf("creating %s: %w", dir, err)
			}
			fmt.Printf("ccserve: created %s, %d intervals across %d shards (fsync=%s wal=%v)\n",
				dir, im.Len(), shards, fsync, !nowal)
		}
	}
	defer im.Close()

	be := server.Backend{Intervals: im}
	if classes > 0 {
		h := workload.RandomHierarchy(seed, classes)
		cs := shard.NewClasses(cfg, h, func() shard.ClassIndex {
			return classindex.NewRakeContract(h, b)
		})
		for _, o := range workload.Objects(seed+1, h, n, span) {
			cs.Insert(o)
		}
		cs.Flush()
		be.Classes = cs
		fmt.Printf("ccserve: class index over %d classes, %d objects\n", h.Len(), n)
	}

	srv, err := server.New(be, server.Config{
		MaxBatch: maxbatch, MaxWait: window,
		MaxInFlight: inflight, RequestTimeout: timeout,
		DisableBatching: nobatch,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("ccserve: listening on %s (batching=%v window=%v maxbatch=%d)\n",
		addr, !nobatch, window, maxbatch)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("ccserve: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if im.Durable() {
		if err := im.Checkpoint(); err != nil {
			return fmt.Errorf("final checkpoint: %w", err)
		}
		fmt.Printf("ccserve: final checkpoint at seq %d\n", im.Seq())
	}
	return nil
}
