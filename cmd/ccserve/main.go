// Command ccserve runs the HTTP serving front-end over a sharded interval
// manager (and optionally a class index), with adaptive auto-batching,
// admission control, and a /metrics endpoint.
//
// In-memory with a synthetic workload:
//
//	ccserve -addr :8416 -n 100000 -shards 8
//
// Durable (creates dir on first run, reopens it afterwards), serving the
// replication endpoints replicas hydrate from:
//
//	ccserve -addr :8416 -dir /var/lib/ccidx -n 100000 -wal-serve
//
// Read replica of a primary (hydrates a fresh snapshot into -dir, tails
// the primary's logical WAL, serves reads only):
//
//	ccserve -addr :8417 -dir /var/lib/ccidx-r1 -replica-of http://primary:8416
//
// Batching is adaptive by default; -nobatch serves the sequential control
// arm for A/B load tests with ccload. The -fault-* flags arm the HTTP
// fault injector (deterministic under -fault-seed) for failover drills.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ccidx/internal/classindex"
	"ccidx/internal/disk"
	"ccidx/internal/intervals"
	"ccidx/internal/replica"
	"ccidx/internal/server"
	"ccidx/internal/shard"
	"ccidx/internal/workload"
)

// options carries every flag; one struct instead of a 20-parameter run().
type options struct {
	addr      string
	shards    int
	b         int
	batch     int
	partition string
	pool      int
	n         int
	seed      int64
	maxlen    int64
	dir       string
	fsync     string
	nowal     bool
	classes   int
	window    time.Duration
	maxbatch  int
	inflight  int
	timeout   time.Duration
	nobatch   bool
	ingest    bool
	memtable  int
	maxruns   int

	replicaOf     string
	replicaPoll   time.Duration
	replicaMaxLag int64
	walServe      bool
	replog        int

	faultLatency time.Duration
	faultJitter  time.Duration
	faultError   float64
	faultDrop    float64
	faultSeed    int64
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8416", "listen address")
	flag.IntVar(&o.shards, "shards", 4, "shard count")
	flag.IntVar(&o.b, "b", 32, "block capacity B")
	flag.IntVar(&o.batch, "batch", 64, "per-shard group-commit buffer size")
	flag.StringVar(&o.partition, "partition", "range", "partitioning: range|hash")
	flag.IntVar(&o.pool, "pool", 256, "buffer-pool frames per shard (-1 disables)")
	flag.IntVar(&o.n, "n", 100000, "synthetic intervals to preload (create only)")
	flag.Int64Var(&o.seed, "seed", 1, "workload seed")
	flag.Int64Var(&o.maxlen, "maxlen", 0, "max interval length (0 = span/n*8)")
	flag.StringVar(&o.dir, "dir", "", "durable directory (empty = in-memory)")
	flag.StringVar(&o.fsync, "fsync", "checkpoint", "fsync policy for durable dirs: never|checkpoint|always")
	flag.BoolVar(&o.nowal, "nowal", false, "disable the write-ahead log (checkpoint-granular durability)")
	flag.IntVar(&o.classes, "classes", 0, "classes in a synthetic hierarchy (0 = no class index)")
	flag.DurationVar(&o.window, "window", time.Millisecond, "max auto-batch window")
	flag.IntVar(&o.maxbatch, "maxbatch", 1024, "max coalesced batch size")
	flag.IntVar(&o.inflight, "inflight", 1024, "max in-flight requests before shedding")
	flag.DurationVar(&o.timeout, "timeout", 2*time.Second, "per-request deadline")
	flag.BoolVar(&o.nobatch, "nobatch", false, "disable auto-batching (sequential control arm)")
	flag.BoolVar(&o.ingest, "ingest", false, "log-structured ingest mode (memtable + immutable runs per shard)")
	flag.IntVar(&o.memtable, "memtable", 0, "with -ingest: memtable size in intervals (0 = default)")
	flag.IntVar(&o.maxruns, "maxruns", 0, "with -ingest: max live runs per shard before merging (0 = default)")
	flag.StringVar(&o.replicaOf, "replica-of", "", "primary base URL: run as a read replica (requires -dir for the hydration directory)")
	flag.DurationVar(&o.replicaPoll, "replica-poll", 25*time.Millisecond, "replica WAL tail interval")
	flag.Int64Var(&o.replicaMaxLag, "replica-maxlag", 4096, "replica readiness lag bound in ops")
	flag.BoolVar(&o.walServe, "wal-serve", false, "serve /v1/snapshot and /v1/wal for replicas (requires -dir)")
	flag.IntVar(&o.replog, "replog", 65536, "retained replication-log ops with -wal-serve")
	flag.DurationVar(&o.faultLatency, "fault-latency", 0, "injected base latency per request")
	flag.DurationVar(&o.faultJitter, "fault-jitter", 0, "injected latency jitter bound")
	flag.Float64Var(&o.faultError, "fault-error", 0, "injected transient 500 probability per request")
	flag.Float64Var(&o.faultDrop, "fault-drop", 0, "injected connection-drop probability per request")
	flag.Int64Var(&o.faultSeed, "fault-seed", 1, "fault schedule seed")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "ccserve:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	dopt, err := durableOpts(o)
	if err != nil {
		return err
	}
	if o.replicaOf != "" {
		return runReplica(o)
	}

	span := int64(o.n) * 16
	maxlen := o.maxlen
	if maxlen <= 0 {
		maxlen = span / int64(o.n) * 8
	}
	var part shard.Partition
	switch o.partition {
	case "range":
		part = shard.PartitionRange
	case "hash":
		part = shard.PartitionHash
	default:
		return fmt.Errorf("unknown partition %q (want range|hash)", o.partition)
	}
	cfg := shard.Config{
		Shards: o.shards, B: o.b, Batch: o.batch,
		Partition: part, Span: span, PoolFrames: o.pool,
	}
	if o.ingest {
		cfg.Ingest = &intervals.IngestConfig{MemtableSize: o.memtable, MaxRuns: o.maxruns}
		fmt.Printf("ccserve: log-structured ingest on (memtable=%d maxruns=%d)\n", o.memtable, o.maxruns)
	}

	var im *shard.Intervals
	switch {
	case o.dir == "":
		if o.walServe {
			return fmt.Errorf("-wal-serve requires -dir (the snapshot ships the checkpoint directory)")
		}
		im = shard.NewIntervals(cfg, workload.UniformIntervals(o.seed, o.n, span, maxlen))
		fmt.Printf("ccserve: in-memory, %d intervals across %d shards\n", im.Len(), o.shards)
	default:
		if _, serr := os.Stat(o.dir); serr == nil {
			im, err = shard.OpenIntervals(o.dir, dopt)
			if err != nil {
				return fmt.Errorf("opening %s: %w", o.dir, err)
			}
			fmt.Printf("ccserve: reopened %s at seq %d, %d intervals (fsync=%s wal=%v)\n",
				o.dir, im.Seq(), im.Len(), o.fsync, !o.nowal)
		} else {
			im, err = shard.CreateIntervalsAt(o.dir, cfg,
				workload.UniformIntervals(o.seed, o.n, span, maxlen), dopt)
			if err != nil {
				return fmt.Errorf("creating %s: %w", o.dir, err)
			}
			fmt.Printf("ccserve: created %s, %d intervals across %d shards (fsync=%s wal=%v)\n",
				o.dir, im.Len(), o.shards, o.fsync, !o.nowal)
		}
	}
	defer im.Close()

	be := server.Backend{Intervals: im}
	if o.classes > 0 {
		h := workload.RandomHierarchy(o.seed, o.classes)
		cs := shard.NewClasses(cfg, h, func() shard.ClassIndex {
			return classindex.NewRakeContract(h, o.b)
		})
		for _, obj := range workload.Objects(o.seed+1, h, o.n, span) {
			cs.Insert(obj)
		}
		cs.Flush()
		be.Classes = cs
		fmt.Printf("ccserve: class index over %d classes, %d objects\n", h.Len(), o.n)
	}

	srv, err := server.New(be, server.Config{
		MaxBatch: o.maxbatch, MaxWait: o.window,
		MaxInFlight: o.inflight, RequestTimeout: o.timeout,
		DisableBatching: o.nobatch,
		Replication:     o.walServe, ReplicationLog: o.replog,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	if o.walServe {
		fmt.Printf("ccserve: replication serving on (retaining %d ops)\n", o.replog)
	}

	if err := serveUntilSignal(o, srv.Handler()); err != nil {
		return err
	}
	if im.Durable() {
		if err := im.Checkpoint(); err != nil {
			return fmt.Errorf("final checkpoint: %w", err)
		}
		fmt.Printf("ccserve: final checkpoint at seq %d\n", im.Seq())
	}
	return nil
}

// runReplica hydrates from the primary and serves reads only.
func runReplica(o options) error {
	if o.dir == "" {
		return fmt.Errorf("-replica-of requires -dir for the hydration directory")
	}
	if o.walServe {
		return fmt.Errorf("-wal-serve and -replica-of are mutually exclusive (replicas do not re-serve the log)")
	}
	fmt.Printf("ccserve: hydrating replica of %s into %s\n", o.replicaOf, o.dir)
	rep, err := replica.Open(o.replicaOf, replica.Options{
		Dir: o.dir, Poll: o.replicaPoll, MaxLag: o.replicaMaxLag,
	})
	if err != nil {
		return err
	}
	defer rep.Close()
	st := rep.Status()
	fmt.Printf("ccserve: replica hydrated: epoch=%s gen=%d lsn=%d, %d intervals\n",
		st.Epoch, st.Gen, st.LSN, rep.Intervals().Len())

	srv, err := server.New(server.Backend{Intervals: rep.Intervals()}, server.Config{
		MaxBatch: o.maxbatch, MaxWait: o.window,
		MaxInFlight: o.inflight, RequestTimeout: o.timeout,
		DisableBatching: o.nobatch,
		ReadOnly:        true, Status: rep.Status,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	return serveUntilSignal(o, srv.Handler())
}

func durableOpts(o options) (intervals.DurableOptions, error) {
	dopt := intervals.DurableOptions{DisableWAL: o.nowal}
	switch o.fsync {
	case "never":
		dopt.Fsync = disk.FsyncNever
	case "checkpoint":
		dopt.Fsync = disk.FsyncCheckpoint
	case "always":
		dopt.Fsync = disk.FsyncAlways
	default:
		return dopt, fmt.Errorf("unknown fsync policy %q (want never|checkpoint|always)", o.fsync)
	}
	return dopt, nil
}

// serveUntilSignal runs the HTTP front (with fault injection if armed)
// until SIGINT/SIGTERM, then drains.
func serveUntilSignal(o options, h http.Handler) error {
	if o.faultLatency > 0 || o.faultJitter > 0 || o.faultError > 0 || o.faultDrop > 0 {
		h = server.WithFaults(h, server.FaultConfig{
			Latency: o.faultLatency, Jitter: o.faultJitter,
			ErrorProb: o.faultError, DropProb: o.faultDrop,
			Seed: o.faultSeed,
			// Liveness stays truthful; readiness and the replication pull
			// endpoints stay clean so the fault drill exercises the QUERY
			// path's failover, not the control plane.
			Exempt: []string{"/healthz", "/readyz", "/v1/wal", "/v1/snapshot"},
		})
		fmt.Printf("ccserve: FAULT INJECTION ARMED latency=%v jitter=%v error=%.3f drop=%.3f seed=%d\n",
			o.faultLatency, o.faultJitter, o.faultError, o.faultDrop, o.faultSeed)
	}
	hs := &http.Server{Addr: o.addr, Handler: h}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("ccserve: listening on %s (batching=%v window=%v maxbatch=%d)\n",
		o.addr, !o.nobatch, o.window, o.maxbatch)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("ccserve: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
