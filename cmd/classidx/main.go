// Command classidx compares the three class-indexing strategies (Theorem
// 2.6, Lemma 4.2, Theorem 4.7) on a synthetic hierarchy, reporting query
// I/O, insert I/O and space.
//
// Usage:
//
//	classidx -c 255 -n 50000 -b 32 -shape random
package main

import (
	"flag"
	"fmt"
	"os"

	"ccidx/internal/classindex"
	"ccidx/internal/disk"
	"ccidx/internal/workload"
)

func main() {
	c := flag.Int("c", 255, "number of classes")
	n := flag.Int("n", 50000, "number of objects")
	b := flag.Int("b", 32, "block capacity B")
	shape := flag.String("shape", "random", "hierarchy shape: random|path|star|caterpillar")
	queries := flag.Int("queries", 100, "number of queries")
	flag.Parse()

	var h *classindex.Hierarchy
	switch *shape {
	case "random":
		h = workload.RandomHierarchy(1, *c)
	case "path":
		h = workload.PathHierarchy(*c)
	case "star":
		h = workload.StarHierarchy(*c)
	case "caterpillar":
		h = workload.CaterpillarHierarchy(*c / 2)
	default:
		fmt.Fprintf(os.Stderr, "unknown shape %q\n", *shape)
		os.Exit(1)
	}
	objs := workload.Objects(2, h, *n, 1<<20)

	type strategy struct {
		name string
		idx  interface {
			Insert(classindex.Object)
			Query(int, int64, int64, classindex.EmitObject)
		}
		stats func() disk.Stats
		space func() int64
	}
	si := classindex.NewSimple(h, *b)
	fe := classindex.NewFullExtent(h, *b)
	rc := classindex.NewRakeContract(h, *b)
	strategies := []strategy{
		{"simple (Thm 2.6)", si, si.Stats, si.SpaceBlocks},
		{"full-extent (Lem 4.2)", fe, fe.Stats, fe.SpaceBlocks},
		{"rake-contract (Thm 4.7)", rc, rc.Stats, rc.SpaceBlocks},
	}

	fmt.Printf("hierarchy: %s with %d classes; %d objects; B=%d\n", *shape, h.Len(), *n, *b)
	fmt.Println(rc.Describe())
	fmt.Printf("%-26s %12s %12s %12s\n", "strategy", "ins I/O", "qry I/O", "space(blk)")
	for _, s := range strategies {
		before := s.stats()
		for _, o := range objs {
			s.idx.Insert(o)
		}
		insPer := float64(s.stats().Sub(before).IOs()) / float64(len(objs))
		var qryIOs int64
		for i := 0; i < *queries; i++ {
			cls := (i * 31) % h.Len()
			a1 := int64(i) * (1 << 20) / int64(*queries)
			a2 := a1 + (1<<20)/20
			bq := s.stats()
			s.idx.Query(cls, a1, a2, func(int64, uint64) bool { return true })
			qryIOs += s.stats().Sub(bq).IOs()
		}
		fmt.Printf("%-26s %12.1f %12.1f %12d\n",
			s.name, insPer, float64(qryIOs)/float64(*queries), s.space())
	}
}
