// Command mbtree builds a metablock tree over a synthetic interval workload
// and reports per-query I/O statistics, demonstrating the Section 3 bounds
// from the command line.
//
// Usage:
//
//	mbtree -n 100000 -b 32 -queries 200 -workload uniform
package main

import (
	"flag"
	"fmt"
	"os"

	"ccidx/internal/geom"
	"ccidx/internal/intervals"
	"ccidx/internal/workload"
)

func main() {
	n := flag.Int("n", 100000, "number of intervals")
	b := flag.Int("b", 32, "block capacity B (records per page)")
	queries := flag.Int("queries", 200, "number of stabbing queries")
	kind := flag.String("workload", "uniform", "workload: uniform|clustered|nested")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	span := int64(*n) * 16
	var ivs []geom.Interval
	switch *kind {
	case "uniform":
		ivs = workload.UniformIntervals(*seed, *n, span, span/int64(*n)*8)
	case "clustered":
		ivs = workload.ClusteredIntervals(*seed, *n, span, span/int64(*n)*8, 16)
	case "nested":
		ivs = workload.NestedIntervals(*seed, *n, span)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *kind)
		os.Exit(1)
	}

	mgr := intervals.New(intervals.Config{B: *b}, ivs)
	build := mgr.Stats()
	fmt.Printf("built interval manager: n=%d B=%d space=%d blocks (build %v)\n",
		*n, *b, mgr.SpaceBlocks(), build)

	mgr.ResetStats()
	var total, tout int64
	var worst int64
	for i := 0; i < *queries; i++ {
		q := int64(i) * span / int64(*queries)
		before := mgr.Stats()
		cnt := int64(0)
		mgr.Stab(q, func(geom.Interval) bool { cnt++; return true })
		ios := mgr.Stats().Sub(before).IOs()
		total += ios
		tout += cnt
		if ios > worst {
			worst = ios
		}
	}
	fmt.Printf("%d stabbing queries: avg output %.1f, avg %.1f I/Os, worst %d I/Os\n",
		*queries, float64(tout)/float64(*queries), float64(total)/float64(*queries), worst)
	fmt.Printf("reference shape log_B n + t/B = %.1f\n",
		logB(*n, *b)+float64(tout)/float64(*queries)/float64(*b))
}

func logB(n, b int) float64 {
	l, v := 0, 1
	for v < n {
		v *= b
		l++
	}
	if l == 0 {
		l = 1
	}
	return float64(l)
}
