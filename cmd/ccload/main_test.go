package main

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestFetchDiscardHonorsRetryAfter: a server that sheds once with a
// Retry-After delta is retried after (at least) that delay and the call
// resolves to the eventual 200 — one logical request, one honored wait.
func TestFetchDiscardHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var shedAt, retryAt atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			shedAt.Store(time.Now().UnixNano())
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
		default:
			retryAt.Store(time.Now().UnixNano())
			w.WriteHeader(http.StatusOK)
		}
	}))
	defer ts.Close()

	status, waits, err := fetchDiscard(ts.Client(), ts.URL, 3, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK {
		t.Fatalf("final status %d, want 200", status)
	}
	if waits != 1 {
		t.Fatalf("honored %d Retry-After waits, want 1", waits)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2", calls.Load())
	}
	if gap := time.Duration(retryAt.Load() - shedAt.Load()); gap < time.Second {
		t.Fatalf("retry came %v after the shed, want >= the 1s Retry-After", gap)
	}
}

// TestFetchDiscardExhaustsAttempts: a server that always sheds is retried
// at most attempts-1 times, and the final 503 is surfaced, not an error.
func TestFetchDiscardExhaustsAttempts(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	status, waits, err := fetchDiscard(ts.Client(), ts.URL, 2, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusServiceUnavailable {
		t.Fatalf("final status %d, want 503", status)
	}
	if waits != 1 || calls.Load() != 2 {
		t.Fatalf("waits=%d calls=%d, want 1 wait over 2 calls", waits, calls.Load())
	}
}

// TestFetchDiscardNoHeaderNoRetry: a 503 without Retry-After is returned
// immediately — blind retry loops against an overloaded server are exactly
// what the header protocol exists to prevent.
func TestFetchDiscardNoHeaderNoRetry(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	status, waits, err := fetchDiscard(ts.Client(), ts.URL, 3, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusServiceUnavailable || waits != 0 || calls.Load() != 1 {
		t.Fatalf("status=%d waits=%d calls=%d, want immediate 503", status, waits, calls.Load())
	}
}
