// Command ccload drives a ccserve instance (or a replicated fleet) with
// stabbing-query load — optionally mixed with mutations via -write-ratio —
// and reports throughput and tail latency.
//
// Two loop disciplines:
//
//   - closed loop (-rate 0): each of -c workers issues its next request the
//     moment the previous one returns. Measures peak sustainable throughput
//     but hides queueing delay (coordinated omission).
//   - open loop (-rate N): arrivals are scheduled at N requests/second
//     regardless of completions, and latency is measured from the SCHEDULED
//     arrival time, so queueing under overload is charged to the server.
//     This is the discipline E22's latency-vs-offered-load curves use.
//
// Targets:
//
//   - -addr <url>: drive one server directly. 503 sheds are retried after
//     the server's Retry-After delta, so an overloaded server is backed
//     off from instead of hammered.
//   - -endpoints <url,url,...>: drive a replicated fleet through the
//     failover read router (retry, hedging, circuit breaking, epoch/LSN
//     freshness checks) — node failures cost retries, not errors.
//
// -check <url> replays a seeded query sample after the load phase and
// compares every routed/loaded answer against that node's sequential
// answer — the answer oracle the replica smoke harness relies on.
//
// -smoke runs a short self-checking pass (health, correctness of counters)
// and exits nonzero on any violation — CI's serving-path gate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ccidx/internal/replication"
	"ccidx/internal/router"
)

// stats mirrors the fields of the server's /v1/stats document that the
// report consumes.
type stats struct {
	Intervals int     `json:"intervals"`
	IOs       int64   `json:"ios"`
	Requests  int64   `json:"requests"`
	Shed      int64   `json:"shed"`
	Timeouts  int64   `json:"timeouts"`
	Errors    int64   `json:"errors"`
	Batches   int64   `json:"batches"`
	BatchMean float64 `json:"batch_mean"`
}

func main() {
	base := flag.String("addr", "http://127.0.0.1:8416", "server base URL")
	endpoints := flag.String("endpoints", "", "comma-separated base URLs: drive through the failover read router instead of -addr")
	check := flag.String("check", "", "oracle base URL: after the load, compare a seeded query sample against this node")
	c := flag.Int("c", 8, "concurrent workers")
	n := flag.Int("n", 5000, "total requests")
	rate := flag.Float64("rate", 0, "offered load in req/s (0 = closed loop)")
	span := flag.Int64("span", 1600000, "key domain for generated queries")
	seed := flag.Int64("seed", 1, "query seed")
	smoke := flag.Bool("smoke", false, "short self-checking smoke run (nonzero exit on violation)")
	writeRatio := flag.Float64("write-ratio", 0, "fraction of requests that are mutations (insert/delete), 0..1; any failed mutation fails the run")
	flag.Parse()

	if *smoke {
		if err := runSmoke(*base); err != nil {
			fmt.Fprintln(os.Stderr, "ccload smoke FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("ccload smoke OK")
		return
	}
	if *writeRatio < 0 || *writeRatio > 1 {
		fmt.Fprintln(os.Stderr, "ccload: -write-ratio must be in [0, 1]")
		os.Exit(1)
	}
	if err := runLoad(*base, *endpoints, *check, *c, *n, *rate, *span, *seed, *writeRatio); err != nil {
		fmt.Fprintln(os.Stderr, "ccload:", err)
		os.Exit(1)
	}
}

func getStats(base string) (stats, error) {
	var st stats
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("/v1/stats: %s", resp.Status)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// fetchDiscard GETs url and discards the body, honoring a 503's
// Retry-After (capped at maxWait) by sleeping and retrying, up to attempts
// tries total. Returns the final status and how many Retry-After waits it
// performed.
func fetchDiscard(client *http.Client, url string, attempts int, maxWait time.Duration) (status int, waits int, err error) {
	for try := 0; try < attempts; try++ {
		resp, err := client.Get(url)
		if err != nil {
			return 0, waits, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable && try < attempts-1 {
			if d := replication.ParseRetryAfter(resp.Header.Get("Retry-After"), maxWait); d > 0 {
				waits++
				time.Sleep(d)
				continue
			}
		}
		return resp.StatusCode, waits, nil
	}
	return status, waits, nil
}

// mutPool hands mutation workers ids to insert and delete: inserts draw
// fresh ids from a dedicated space (no collision with preloaded data),
// deletes reclaim previously acknowledged inserts. Never deletes an id
// whose insert was not acknowledged, so every mutation must succeed.
type mutPool struct {
	mu   sync.Mutex
	ids  []uint64
	next uint64
}

func (p *mutPool) takeInsert() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.next++
	return 900_000_000 + p.next
}

func (p *mutPool) ackInsert(id uint64) {
	p.mu.Lock()
	p.ids = append(p.ids, id)
	p.mu.Unlock()
}

// takeDelete pops an acknowledged id, or 0 when none are available (the
// caller inserts instead).
func (p *mutPool) takeDelete() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.ids) == 0 {
		return 0
	}
	id := p.ids[len(p.ids)-1]
	p.ids = p.ids[:len(p.ids)-1]
	return id
}

func runLoad(base, endpoints, check string, c, n int, rate float64, span, seed int64, writeRatio float64) error {
	// Router mode: every request goes through the failover read router.
	var rt *router.Router
	var eps []string
	if endpoints != "" {
		for _, e := range strings.Split(endpoints, ",") {
			if e = strings.TrimSpace(e); e != "" {
				eps = append(eps, e)
			}
		}
		var err error
		rt, err = router.New(router.Config{Endpoints: eps, Seed: seed})
		if err != nil {
			return err
		}
		defer rt.Close()
		fmt.Printf("ccload: routing over %d endpoints (%d ready)\n", len(eps), rt.Ready())
		base = eps[0] // stats come from the first endpoint (the primary)
	}

	before, err := getStats(base)
	if err != nil {
		return fmt.Errorf("server unreachable: %w", err)
	}

	lats := make([]time.Duration, n)
	var next atomic.Int64 // request index dispenser
	var failed, shedWaits, failedMut, inserts, deletes atomic.Int64
	var pool mutPool
	client := &http.Client{Timeout: 10 * time.Second}
	start := time.Now().Add(10 * time.Millisecond) // grace so worker 0 isn't late at t=0
	interval := time.Duration(0)
	if rate > 0 {
		interval = time.Duration(float64(time.Second) / rate)
	}

	var wg sync.WaitGroup
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				issueAt := time.Now()
				if interval > 0 {
					// Open loop: request i belongs at start + i*interval, and
					// latency is charged from that scheduled instant.
					issueAt = start.Add(time.Duration(i) * interval)
					if d := time.Until(issueAt); d > 0 {
						time.Sleep(d)
					}
				}
				if writeRatio > 0 && rng.Float64() < writeRatio {
					// Mutations always target the primary (base) directly —
					// the read router serves reads; replicas reject writes.
					var err error
					if id := pool.takeDelete(); id != 0 && rng.Intn(2) == 0 {
						deletes.Add(1)
						err = post(fmt.Sprintf("%s/v1/delete?id=%d", base, id))
					} else {
						id := pool.takeInsert()
						lo := rng.Int63n(span)
						inserts.Add(1)
						err = post(fmt.Sprintf("%s/v1/insert?lo=%d&hi=%d&id=%d", base, lo, lo+rng.Int63n(200)+1, id))
						if err == nil {
							pool.ackInsert(id)
						}
					}
					if err != nil {
						failed.Add(1)
						failedMut.Add(1)
					}
				} else {
					q := rng.Int63n(span)
					path := fmt.Sprintf("/v1/stab?q=%d", q)
					if rt != nil {
						if _, err := rt.Do(context.Background(), path); err != nil {
							failed.Add(1)
						}
					} else {
						status, waits, err := fetchDiscard(client, base+path, 3, 2*time.Second)
						shedWaits.Add(int64(waits))
						if err != nil || status != http.StatusOK {
							failed.Add(1)
						}
					}
				}
				lats[i] = time.Since(issueAt)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := getStats(base)
	if err != nil {
		return err
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	pct := func(p float64) time.Duration { return lats[int(p*float64(n-1))] }
	mode := "closed"
	if rate > 0 {
		mode = fmt.Sprintf("open @ %.0f req/s", rate)
	}
	fmt.Printf("ccload: %d requests, %d workers, %s loop\n", n, c, mode)
	fmt.Printf("  wall %.2fs  throughput %.0f req/s  failed %d\n",
		elapsed.Seconds(), float64(n)/elapsed.Seconds(), failed.Load())
	if writeRatio > 0 {
		fmt.Printf("  mutations: %d inserts, %d deletes, %d failed\n",
			inserts.Load(), deletes.Load(), failedMut.Load())
	}
	fmt.Printf("  latency p50 %v  p95 %v  p99 %v  max %v\n",
		pct(0.50), pct(0.95), pct(0.99), lats[n-1])
	if rt != nil {
		rs := rt.Stats()
		fmt.Printf("  router: %d attempts, %d retries, %d failovers, %d hedges (%d won), %d stale rejects, %d breaker trips, %d exhausted\n",
			rs.Attempts, rs.Retries, rs.Failovers, rs.Hedges, rs.HedgeWins, rs.StaleRejects, rs.BreakerTrips, rs.Exhausted)
	} else {
		dReq := after.Requests - before.Requests
		dIOs := after.IOs - before.IOs
		dBatch := after.Batches - before.Batches
		fmt.Printf("  server: %d requests, %d batches (mean %.1f), %d shed (%d honored Retry-After), %d timeouts, %d errors\n",
			dReq, dBatch, after.BatchMean, after.Shed-before.Shed, shedWaits.Load(),
			after.Timeouts-before.Timeouts, after.Errors-before.Errors)
		if dReq > 0 {
			fmt.Printf("  ios/query %.3f\n", float64(dIOs)/float64(dReq))
		}
	}

	if check != "" {
		if err := runCheck(rt, base, check, span, seed); err != nil {
			return err
		}
	}
	// A failed request (transport error or non-200) fails the run: scripted
	// callers (CI, experiment harnesses) must not mistake a half-errored
	// load phase for a clean measurement. Failed MUTATIONS are singled out:
	// a lost acked write is a durability bug, not load noise.
	if f := failedMut.Load(); f > 0 {
		return fmt.Errorf("FAILED: %d mutations failed", f)
	}
	if f := failed.Load(); f > 0 {
		return fmt.Errorf("FAILED: %d of %d requests failed (transport error or non-200 status)", f, n)
	}
	return nil
}

// ivRow mirrors the server's interval wire form for oracle comparison.
type ivRow struct {
	Lo int64  `json:"lo"`
	Hi int64  `json:"hi"`
	ID uint64 `json:"id"`
}

func fetchRows(get func(path string) ([]byte, error), path string) ([]ivRow, error) {
	body, err := get(path)
	if err != nil {
		return nil, err
	}
	var rows []ivRow
	if err := json.Unmarshal(body, &rows); err != nil {
		return nil, err
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].ID < rows[b].ID })
	return rows, nil
}

func httpGetBody(base string) func(path string) ([]byte, error) {
	return func(path string) ([]byte, error) {
		resp, err := http.Get(base + path)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s%s: %s", base, path, resp.Status)
		}
		return io.ReadAll(resp.Body)
	}
}

// runCheck is the answer oracle: a seeded query sample answered through
// the load path (router or single node) must match the check node's
// sequential answers row for row.
func runCheck(rt *router.Router, base, check string, span, seed int64) error {
	loadGet := httpGetBody(base)
	if rt != nil {
		loadGet = func(path string) ([]byte, error) { return rt.Do(context.Background(), path) }
	}
	oracleGet := httpGetBody(check)
	rng := rand.New(rand.NewSource(seed * 7919))
	const probes = 200
	for i := 0; i < probes; i++ {
		path := fmt.Sprintf("/v1/stab?q=%d", rng.Int63n(span))
		got, err := fetchRows(loadGet, path)
		if err != nil {
			return fmt.Errorf("check: load path %s: %w", path, err)
		}
		want, err := fetchRows(oracleGet, path)
		if err != nil {
			return fmt.Errorf("check: oracle %s: %w", path, err)
		}
		if len(got) != len(want) {
			return fmt.Errorf("check FAILED: %s: load path %d rows, oracle %d", path, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				return fmt.Errorf("check FAILED: %s row %d: load path %+v, oracle %+v", path, j, got[j], want[j])
			}
		}
	}
	fmt.Printf("  check: %d sampled queries identical to %s\n", probes, check)
	return nil
}

// runSmoke is CI's serving-path gate: wait for health, issue known traffic,
// verify the counters and a mutation round-trip.
func runSmoke(base string) error {
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server not healthy within 5s: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	before, err := getStats(base)
	if err != nil {
		return err
	}

	// A mutation round-trip: insert, observe, delete, observe gone.
	const probeID = 987654321
	if err := post(base + "/v1/insert?lo=10&hi=20&id=" + strconv.Itoa(probeID)); err != nil {
		return fmt.Errorf("insert: %w", err)
	}
	found, err := stabHasID(base, 15, probeID)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("inserted interval invisible to /v1/stab")
	}
	if err := post(base + "/v1/delete?id=" + strconv.Itoa(probeID)); err != nil {
		return fmt.Errorf("delete: %w", err)
	}
	found, err = stabHasID(base, 15, probeID)
	if err != nil {
		return err
	}
	if found {
		return fmt.Errorf("deleted interval still visible to /v1/stab")
	}

	// Concurrent read burst; every response must be 200.
	const burst = 64
	var wg sync.WaitGroup
	var bad atomic.Int64
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(fmt.Sprintf("%s/v1/stab?q=%d", base, i*13))
			if err != nil {
				bad.Add(1)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				bad.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if bad.Load() != 0 {
		return fmt.Errorf("%d of %d burst requests failed", bad.Load(), burst)
	}

	after, err := getStats(base)
	if err != nil {
		return err
	}
	if got := after.Requests - before.Requests; got < burst {
		return fmt.Errorf("request counter moved by %d, want >= %d", got, burst)
	}
	if after.Errors-before.Errors != 0 {
		return fmt.Errorf("server error counter moved by %d during smoke", after.Errors-before.Errors)
	}
	if after.Intervals <= 0 {
		return fmt.Errorf("server reports %d intervals, want > 0", after.Intervals)
	}

	// The metrics endpoint must expose the core series.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"ccidx_requests_total", "ccidx_batch_size_bucket", "ccidx_request_seconds_count"} {
		if !strings.Contains(string(body), want) {
			return fmt.Errorf("/metrics missing %q", want)
		}
	}
	return nil
}

func post(url string) error {
	resp, err := http.Post(url, "", nil)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: %d %s", url, resp.StatusCode, body)
	}
	return nil
}

func stabHasID(base string, q int64, id uint64) (bool, error) {
	resp, err := http.Get(fmt.Sprintf("%s/v1/stab?q=%d", base, q))
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	var rows []struct {
		ID uint64 `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		return false, err
	}
	for _, r := range rows {
		if r.ID == id {
			return true, nil
		}
	}
	return false, nil
}
