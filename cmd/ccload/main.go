// Command ccload drives a ccserve instance with stabbing-query load and
// reports throughput and tail latency.
//
// Two loop disciplines:
//
//   - closed loop (-rate 0): each of -c workers issues its next request the
//     moment the previous one returns. Measures peak sustainable throughput
//     but hides queueing delay (coordinated omission).
//   - open loop (-rate N): arrivals are scheduled at N requests/second
//     regardless of completions, and latency is measured from the SCHEDULED
//     arrival time, so queueing under overload is charged to the server.
//     This is the discipline E22's latency-vs-offered-load curves use.
//
// -smoke runs a short self-checking pass (health, correctness of counters)
// and exits nonzero on any violation — CI's serving-path gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// stats mirrors the fields of the server's /v1/stats document that the
// report consumes.
type stats struct {
	Intervals int     `json:"intervals"`
	IOs       int64   `json:"ios"`
	Requests  int64   `json:"requests"`
	Shed      int64   `json:"shed"`
	Timeouts  int64   `json:"timeouts"`
	Errors    int64   `json:"errors"`
	Batches   int64   `json:"batches"`
	BatchMean float64 `json:"batch_mean"`
}

func main() {
	base := flag.String("addr", "http://127.0.0.1:8416", "server base URL")
	c := flag.Int("c", 8, "concurrent workers")
	n := flag.Int("n", 5000, "total requests")
	rate := flag.Float64("rate", 0, "offered load in req/s (0 = closed loop)")
	span := flag.Int64("span", 1600000, "key domain for generated queries")
	seed := flag.Int64("seed", 1, "query seed")
	smoke := flag.Bool("smoke", false, "short self-checking smoke run (nonzero exit on violation)")
	flag.Parse()

	if *smoke {
		if err := runSmoke(*base); err != nil {
			fmt.Fprintln(os.Stderr, "ccload smoke FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("ccload smoke OK")
		return
	}
	if err := runLoad(*base, *c, *n, *rate, *span, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "ccload:", err)
		os.Exit(1)
	}
}

func getStats(base string) (stats, error) {
	var st stats
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("/v1/stats: %s", resp.Status)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

func runLoad(base string, c, n int, rate float64, span, seed int64) error {
	before, err := getStats(base)
	if err != nil {
		return fmt.Errorf("server unreachable: %w", err)
	}

	lats := make([]time.Duration, n)
	var next atomic.Int64 // request index dispenser
	var failed atomic.Int64
	client := &http.Client{Timeout: 10 * time.Second}
	start := time.Now().Add(10 * time.Millisecond) // grace so worker 0 isn't late at t=0
	interval := time.Duration(0)
	if rate > 0 {
		interval = time.Duration(float64(time.Second) / rate)
	}

	var wg sync.WaitGroup
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				issueAt := time.Now()
				if interval > 0 {
					// Open loop: request i belongs at start + i*interval, and
					// latency is charged from that scheduled instant.
					issueAt = start.Add(time.Duration(i) * interval)
					if d := time.Until(issueAt); d > 0 {
						time.Sleep(d)
					}
				}
				q := rng.Int63n(span)
				resp, err := client.Get(fmt.Sprintf("%s/v1/stab?q=%d", base, q))
				if err != nil {
					failed.Add(1)
					lats[i] = time.Since(issueAt)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failed.Add(1)
				}
				lats[i] = time.Since(issueAt)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := getStats(base)
	if err != nil {
		return err
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	pct := func(p float64) time.Duration { return lats[int(p*float64(n-1))] }
	mode := "closed"
	if rate > 0 {
		mode = fmt.Sprintf("open @ %.0f req/s", rate)
	}
	fmt.Printf("ccload: %d requests, %d workers, %s loop\n", n, c, mode)
	fmt.Printf("  wall %.2fs  throughput %.0f req/s  failed %d\n",
		elapsed.Seconds(), float64(n)/elapsed.Seconds(), failed.Load())
	fmt.Printf("  latency p50 %v  p95 %v  p99 %v  max %v\n",
		pct(0.50), pct(0.95), pct(0.99), lats[n-1])
	dReq := after.Requests - before.Requests
	dIOs := after.IOs - before.IOs
	dBatch := after.Batches - before.Batches
	fmt.Printf("  server: %d requests, %d batches (mean %.1f), %d shed, %d timeouts, %d errors\n",
		dReq, dBatch, after.BatchMean, after.Shed-before.Shed,
		after.Timeouts-before.Timeouts, after.Errors-before.Errors)
	if dReq > 0 {
		fmt.Printf("  ios/query %.3f\n", float64(dIOs)/float64(dReq))
	}
	// A failed request (transport error or non-200) fails the run: scripted
	// callers (CI, experiment harnesses) must not mistake a half-errored
	// load phase for a clean measurement.
	if f := failed.Load(); f > 0 {
		return fmt.Errorf("FAILED: %d of %d requests failed (transport error or non-200 status)", f, n)
	}
	return nil
}

// runSmoke is CI's serving-path gate: wait for health, issue known traffic,
// verify the counters and a mutation round-trip.
func runSmoke(base string) error {
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server not healthy within 5s: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	before, err := getStats(base)
	if err != nil {
		return err
	}

	// A mutation round-trip: insert, observe, delete, observe gone.
	const probeID = 987654321
	if err := post(base + "/v1/insert?lo=10&hi=20&id=" + strconv.Itoa(probeID)); err != nil {
		return fmt.Errorf("insert: %w", err)
	}
	found, err := stabHasID(base, 15, probeID)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("inserted interval invisible to /v1/stab")
	}
	if err := post(base + "/v1/delete?id=" + strconv.Itoa(probeID)); err != nil {
		return fmt.Errorf("delete: %w", err)
	}
	found, err = stabHasID(base, 15, probeID)
	if err != nil {
		return err
	}
	if found {
		return fmt.Errorf("deleted interval still visible to /v1/stab")
	}

	// Concurrent read burst; every response must be 200.
	const burst = 64
	var wg sync.WaitGroup
	var bad atomic.Int64
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(fmt.Sprintf("%s/v1/stab?q=%d", base, i*13))
			if err != nil {
				bad.Add(1)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				bad.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if bad.Load() != 0 {
		return fmt.Errorf("%d of %d burst requests failed", bad.Load(), burst)
	}

	after, err := getStats(base)
	if err != nil {
		return err
	}
	if got := after.Requests - before.Requests; got < burst {
		return fmt.Errorf("request counter moved by %d, want >= %d", got, burst)
	}
	if after.Errors-before.Errors != 0 {
		return fmt.Errorf("server error counter moved by %d during smoke", after.Errors-before.Errors)
	}
	if after.Intervals <= 0 {
		return fmt.Errorf("server reports %d intervals, want > 0", after.Intervals)
	}

	// The metrics endpoint must expose the core series.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"ccidx_requests_total", "ccidx_batch_size_bucket", "ccidx_request_seconds_count"} {
		if !strings.Contains(string(body), want) {
			return fmt.Errorf("/metrics missing %q", want)
		}
	}
	return nil
}

func post(url string) error {
	resp, err := http.Post(url, "", nil)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: %d %s", url, resp.StatusCode, body)
	}
	return nil
}

func stabHasID(base string, q int64, id uint64) (bool, error) {
	resp, err := http.Get(fmt.Sprintf("%s/v1/stab?q=%d", base, q))
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	var rows []struct {
		ID uint64 `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		return false, err
	}
	for _, r := range rows {
		if r.ID == id {
			return true, nil
		}
	}
	return false, nil
}
