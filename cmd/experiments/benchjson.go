package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark JSON emission: `go test -bench -benchmem` text in, a stable
// machine-readable file out, so CI and BENCH_PR2.json don't depend on
// scraping Go's human-oriented format downstream.

// benchResult is one parsed benchmark line. Metrics maps unit -> value for
// every "<value> <unit>" pair on the line (ns/op, ios/op, B/op, allocs/op,
// and any custom b.ReportMetric unit).
type benchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// benchFile is the emitted document. Before is present only when a
// baseline file was supplied; Delta then holds after/before ratios per
// shared metric (a ratio of 0.1 means 10x lower than the baseline).
type benchFile struct {
	Schema string                        `json:"schema"`
	Before map[string]benchResult        `json:"before,omitempty"`
	After  map[string]benchResult        `json:"after"`
	Delta  map[string]map[string]float64 `json:"delta_after_over_before,omitempty"`
}

// stripProcs removes Go's trailing GOMAXPROCS suffix ("-8") from a
// benchmark name so runs from machines with different core counts key
// identically (a 1-core run emits no suffix at all).
func stripProcs(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// parseBench scans `go test -bench` output, collecting Benchmark lines.
// A line that LOOKS like a benchmark result but does not parse — bad
// iteration count, an unparsable metric value — is an error, not a skip: a
// silently dropped line would make the downstream gate compare against a
// truncated document and report the vanished benchmark as the failure,
// hiding the real cause. Non-benchmark lines (PASS, ok, log output) are
// ignored as before.
func parseBench(r io.Reader) (map[string]benchResult, error) {
	out := map[string]benchResult{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) == 0 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if len(fields) < 4 {
			// "BenchmarkFoo" alone is the header go test prints before the
			// result line when -v interleaves; only lines carrying at least
			// iterations plus one metric pair are results.
			if len(fields) == 1 {
				continue
			}
			return nil, fmt.Errorf("malformed benchmark line (want name, iterations, metric pairs): %q", line)
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("malformed iteration count in %q: %v", line, err)
		}
		res := benchResult{Name: stripProcs(fields[0]), Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("malformed metric value %q in %q: %v", fields[i], line, err)
			}
			res.Metrics[fields[i+1]] = v
		}
		out[res.Name] = res
	}
	return out, sc.Err()
}

// writeBenchJSON parses the current run from stdin (and optionally a saved
// baseline run from baselinePath) and writes the JSON document to outPath.
func writeBenchJSON(outPath, baselinePath string) error {
	after, err := parseBench(os.Stdin)
	if err != nil {
		return fmt.Errorf("parsing bench output from stdin: %w", err)
	}
	if len(after) == 0 {
		return fmt.Errorf("no Benchmark lines found on stdin (pipe `go test -bench` output in)")
	}
	doc := benchFile{Schema: "ccidx-bench/v1", After: after}

	if baselinePath != "" {
		f, err := os.Open(baselinePath)
		if err != nil {
			return err
		}
		before, err := parseBench(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
		}
		doc.Before = before
		doc.Delta = map[string]map[string]float64{}
		names := make([]string, 0, len(after))
		for name := range after {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			b, ok := before[name]
			if !ok {
				continue
			}
			d := map[string]float64{}
			for unit, av := range after[name].Metrics {
				if bv, ok := b.Metrics[unit]; ok && bv != 0 {
					d[unit] = av / bv
				}
			}
			if len(d) > 0 {
				doc.Delta[name] = d
			}
		}
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(outPath, data, 0o644)
}
