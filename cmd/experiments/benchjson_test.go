package main

import (
	"strings"
	"testing"
)

func TestParseBenchWellFormed(t *testing.T) {
	in := `goos: linux
BenchmarkE1Stab
BenchmarkE1Stab-8   	    1000	      1234 ns/op	        12.50 ios/op	      64 B/op	       3 allocs/op
BenchmarkE2-8   	     500	      9876 ns/op
PASS
ok  	ccidx	1.234s
`
	got, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d results, want 2", len(got))
	}
	r := got["BenchmarkE1Stab"]
	if r.Iterations != 1000 || r.Metrics["ios/op"] != 12.5 || r.Metrics["ns/op"] != 1234 {
		t.Fatalf("BenchmarkE1Stab parsed as %+v", r)
	}
	if _, stripped := got["BenchmarkE1Stab-8"]; stripped {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
}

func TestParseBenchMalformedIterations(t *testing.T) {
	in := "BenchmarkBroken-8 notanumber 12 ns/op\n"
	if _, err := parseBench(strings.NewReader(in)); err == nil {
		t.Fatal("malformed iteration count parsed silently")
	} else if !strings.Contains(err.Error(), "iteration count") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestParseBenchMalformedMetricValue(t *testing.T) {
	in := "BenchmarkBroken-8 1000 garbage ns/op\n"
	if _, err := parseBench(strings.NewReader(in)); err == nil {
		t.Fatal("malformed metric value parsed silently")
	} else if !strings.Contains(err.Error(), "metric value") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestParseBenchTruncatedResultLine(t *testing.T) {
	in := "BenchmarkBroken-8 1000\n"
	if _, err := parseBench(strings.NewReader(in)); err == nil {
		t.Fatal("truncated result line parsed silently")
	}
}

func TestParseBenchHeaderLineIgnored(t *testing.T) {
	// `go test -v -bench` prints the bare name before the result line.
	in := "BenchmarkE1Stab\nBenchmarkE1Stab-8 100 5 ios/op\n"
	got, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got["BenchmarkE1Stab"].Metrics["ios/op"] != 5 {
		t.Fatalf("parsed %+v", got)
	}
}
