// Command experiments regenerates every table in EXPERIMENTS.md: one
// experiment per theorem/lemma/figure of the paper plus the serving-layer
// experiments (see DESIGN.md's experiment index).
//
// Usage:
//
//	experiments                    # run everything
//	experiments -run E1            # run one experiment
//	experiments -list              # list experiment ids
//	experiments -run E16 -shards 1,2,4,8,16   # override the E16 shard sweep
//	experiments -run E17 -batch 1,64,1024     # override the E17 batch sweep
//	experiments -run E20 -qbatch 1,16,256     # override the E20 query-batch sweep
//	experiments -run E20 -e20n 20000          # small-scale E20 (the CI smoke run)
//
// Benchmark JSON mode (the `make bench` target): parse `go test -bench`
// output from stdin into machine-readable JSON, optionally diffed against
// a saved baseline run:
//
//	go test -run=NONE -bench=. -benchtime=1x -benchmem . |
//	    experiments -bench-json BENCH_PR2.json -bench-baseline old-bench.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ccidx/internal/harness"
)

func main() {
	runID := flag.String("run", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	shards := flag.String("shards", "", "comma-separated shard counts for E16 (default 1,2,4,8)")
	batch := flag.String("batch", "", "comma-separated group-commit batch sizes for E17 (default 1,16,256)")
	qbatch := flag.String("qbatch", "", "comma-separated query batch sizes for E20 (default 1,4,16,64,256,1024)")
	e20n := flag.Int("e20n", 0, "E20 interval count override (default 100000; CI smoke uses a small value)")
	e21n := flag.Int("e21n", 0, "E21 interval count override (default 100000; CI smoke uses a small value)")
	e22n := flag.Int("e22n", 0, "E22 interval count override (default 50000; CI smoke uses a small value)")
	e23n := flag.Int("e23n", 0, "E23 interval count override (default 50000; CI smoke uses a small value)")
	e24n := flag.Int("e24n", 0, "E24 interval count override (default 20000; CI smoke uses a small value)")
	e25n := flag.Int("e25n", 0, "E25 interval count override (default 30000; CI smoke uses a small value)")
	benchJSON := flag.String("bench-json", "", "parse `go test -bench` output from stdin and write JSON to this file")
	benchBaseline := flag.String("bench-baseline", "", "optional saved bench output to embed as the before side")
	flag.Parse()

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *benchBaseline); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *shards != "" {
		harness.ShardCounts = parseIntList(*shards, "-shards")
	}
	if *batch != "" {
		harness.BatchSizes = parseIntList(*batch, "-batch")
	}
	if *qbatch != "" {
		harness.E20BatchSizes = parseIntList(*qbatch, "-qbatch")
	}
	if *e20n > 0 {
		harness.E20Intervals = *e20n
	}
	if *e21n > 0 {
		harness.E21Intervals = *e21n
	}
	if *e22n > 0 {
		harness.E22Intervals = *e22n
	}
	if *e23n > 0 {
		harness.E23Intervals = *e23n
	}
	if *e24n > 0 {
		harness.E24Intervals = *e24n
	}
	if *e25n > 0 {
		harness.E25Intervals = *e25n
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}
	if *runID != "" {
		e, ok := harness.Lookup(*runID)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *runID)
			os.Exit(1)
		}
		run(e)
		return
	}
	for _, e := range harness.All() {
		run(e)
	}
}

func parseIntList(s, flagName string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "%s: bad value %q (want positive integers, e.g. 1,2,4)\n", flagName, part)
			os.Exit(1)
		}
		out = append(out, v)
	}
	return out
}

func run(e harness.Experiment) {
	fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
	e.Run(os.Stdout)
	fmt.Println()
}
