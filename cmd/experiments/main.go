// Command experiments regenerates every table in EXPERIMENTS.md: one
// experiment per theorem/lemma/figure of the paper (see DESIGN.md's
// experiment index).
//
// Usage:
//
//	experiments           # run everything
//	experiments -run E1   # run one experiment
//	experiments -list     # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"

	"ccidx/internal/harness"
)

func main() {
	runID := flag.String("run", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}
	if *runID != "" {
		e, ok := harness.Lookup(*runID)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *runID)
			os.Exit(1)
		}
		run(e)
		return
	}
	for _, e := range harness.All() {
		run(e)
	}
}

func run(e harness.Experiment) {
	fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
	e.Run(os.Stdout)
	fmt.Println()
}
