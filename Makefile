# Developer entry points. CI runs `make ci`; `make bench` regenerates
# BENCH.json from a fresh benchmark pass (diffed against the committed
# pre-PR-2 baseline in bench-baseline-pr1.txt when present). BENCH_PR2.json
# is the frozen PR-2 snapshot; BENCH.json is the rolling document that
# tracks the benchmark trajectory (E19 churn included) PR over PR.

GO ?= go

# bash + pipefail so a benchmark panic mid-pipeline fails `make bench`
# instead of writing a silently truncated BENCH_PR2.json.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

.PHONY: build vet test race race-churn crash crash-matrix fuzz bench bench-smoke bench-gate serve-smoke ingest-smoke replica-smoke experiments ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# The churn/delete suites (shard + intervals oracles) at full size under the
# race detector — the deletion path's locking is what they exercise.
race-churn:
	$(GO) test -race -run 'Churn|Delete' -timeout 10m ./internal/shard/ ./internal/intervals/

# The fault-injection reopen suite at full size under the race detector:
# crash after every k-th device write (device, manager, and sharded levels),
# reopen, and require the recovered index to equal the checkpoint-consistent
# oracle. Mirrors race-churn for the durability paths.
crash:
	$(GO) test -race -run 'CrashEveryWrite|CrashBetweenManifestAndCommit|DurableRoundTrip|DurableClassesDurable|PublicDurable' \
		-timeout 20m ./internal/disk/ ./internal/intervals/ ./internal/shard/ .

# Randomized crash schedules under the race detector: CRASH_SEEDS picks the
# seeds (comma-separated); each seed randomizes the serving config, the op
# stream, the checkpoint cadence, and the crash point — then crashes the
# recovery itself until one reopen survives and must equal the acked oracle.
# The replica suite adds the hydration crash point: a snapshot stream torn
# mid-transfer must fail the open, and a retry on the same directory must
# hydrate cleanly.
CRASH_SEEDS ?= 1,2,3
crash-matrix:
	CRASH_SEEDS=$(CRASH_SEEDS) $(GO) test -race -run 'RandomCrashSchedules|WalRecoversAcked|WALCrashEveryWrite|ReplicaTornHydration|ReplicaParks' \
		-timeout 20m ./internal/disk/ ./internal/shard/ ./internal/replica/ .

# Coverage-guided fuzzing of the two on-disk decoders that parse bytes an
# adversarial disk could hand back: WAL record framing and the page-file
# header. Seed corpora always run under plain `go test`; this target runs
# each fuzzer for FUZZTIME of real mutation.
FUZZTIME ?= 20s
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzWALRecordDecode -fuzztime=$(FUZZTIME) ./internal/disk/
	$(GO) test -run='^$$' -fuzz=FuzzFileHeader -fuzztime=$(FUZZTIME) ./internal/disk/

# One iteration per benchmark keeps the full sweep cheap; the hot query
# benchmarks additionally get a steady-state pass (200 iterations, warm
# decode frames and pools) because their allocs/op at one cold iteration
# is dominated by first-use warmup. The steady pass is emitted second so
# its lines win in the JSON. bench-baseline-pr1.txt holds the pre-PR-2
# numbers, produced the same way.
HOT_BENCHES := BenchmarkE1MetablockQuery|BenchmarkE5IntervalManagement$$|BenchmarkE5NaiveBaseline|BenchmarkE7ExternalPST|BenchmarkE8ThreeSidedMetablock|BenchmarkE20BatchedStab|BenchmarkStabPendingReplay|BenchmarkE25Ingest|BenchmarkE25MergeAmplification
BENCH_BASELINE := $(wildcard bench-baseline-pr1.txt)
bench:
	{ $(GO) test -run=NONE -bench=. -benchtime=1x -benchmem . ; \
	  $(GO) test -run=NONE -bench='$(HOT_BENCHES)' -benchtime=200x -benchmem . ; } | \
		tee bench-latest.txt | \
		$(GO) run ./cmd/experiments -bench-json BENCH.json \
			$(if $(BENCH_BASELINE),-bench-baseline $(BENCH_BASELINE))
	@echo wrote BENCH.json

# Small-scale E20 + E21 + E22: drives the batched query path, the durable
# (file-backed) serving path, and the HTTP auto-batching front-end end to
# end in a few seconds, so CI exercises the shared-traversal, persistence,
# and serving machinery on every push.
bench-smoke:
	$(GO) run ./cmd/experiments -run E20 -e20n 20000 -qbatch 1,16,64
	$(GO) run ./cmd/experiments -run E21 -e21n 20000
	$(GO) run ./cmd/experiments -run E22 -e22n 20000
	$(GO) run ./cmd/experiments -run E25 -e25n 12000

# Serving-path smoke: build ccserve + ccload, boot a real server on a
# loopback port, and run ccload's self-checking pass (health, mutation
# round-trip, concurrent burst, counter sanity) against it. The server's
# exit status and the smoke's both gate.
SERVE_ADDR := 127.0.0.1:18416
serve-smoke:
	$(GO) build -o bin/ccserve ./cmd/ccserve
	$(GO) build -o bin/ccload ./cmd/ccload
	@./bin/ccserve -addr $(SERVE_ADDR) -n 20000 -shards 4 & srv=$$!; \
		status=0; ./bin/ccload -addr http://$(SERVE_ADDR) -smoke || status=$$?; \
		kill $$srv 2>/dev/null; wait $$srv 2>/dev/null; exit $$status

# Ingest smoke: real binaries — a log-structured serving node (ccserve
# -ingest) next to a single-tree oracle node preloaded with the IDENTICAL
# seeded dataset. Pass 1 samples read answers against the oracle (the LSM
# fan-in must be bit-identical, as id sets, to the single tree); pass 2
# drives a mixed read/write load at the ingest node and gates on zero
# failed mutations and zero failed requests.
INGEST_ADDR := 127.0.0.1:18426
INGEST_ORACLE_ADDR := 127.0.0.1:18427
ingest-smoke:
	$(GO) build -o bin/ccserve ./cmd/ccserve
	$(GO) build -o bin/ccload ./cmd/ccload
	@./bin/ccserve -addr $(INGEST_ADDR) -n 20000 -shards 4 -ingest -memtable 2048 -maxruns 4 & srv=$$!; \
		./bin/ccserve -addr $(INGEST_ORACLE_ADDR) -n 20000 -shards 4 & orc=$$!; \
		for i in $$(seq 100); do \
			curl -sf http://$(INGEST_ADDR)/healthz >/dev/null 2>&1 && \
			curl -sf http://$(INGEST_ORACLE_ADDR)/healthz >/dev/null 2>&1 && break; \
			sleep 0.1; \
		done; \
		status=0; \
		./bin/ccload -addr http://$(INGEST_ADDR) -n 2000 -check http://$(INGEST_ORACLE_ADDR) || status=$$?; \
		if [ $$status -eq 0 ]; then \
			./bin/ccload -addr http://$(INGEST_ADDR) -n 5000 -write-ratio 0.4 || status=$$?; \
		fi; \
		kill $$srv $$orc 2>/dev/null; wait $$srv $$orc 2>/dev/null; exit $$status

# Replication smoke: real binaries — a durable replication-serving primary
# plus two snapshot-hydrated replicas behind ccload's failover router, with
# one replica kill -9'd and re-hydrated mid-load. Gates on zero failed
# requests and routed answers row-identical to the primary's sequential
# ones (ccload -check).
replica-smoke:
	$(GO) build -o bin/ccserve ./cmd/ccserve
	$(GO) build -o bin/ccload ./cmd/ccload
	./scripts/replica_smoke.sh bin

# Regression GATE: save the committed BENCH.json as the baseline, regenerate
# it, and fail on a >10% ios/op regression in any tier-1 benchmark (see
# cmd/benchdiff). CI runs this instead of merely uploading the artifact.
bench-gate:
	@cp BENCH.json .bench-baseline.json
	$(MAKE) bench
	@status=0; $(GO) run ./cmd/benchdiff -baseline .bench-baseline.json -current BENCH.json || status=$$?; \
		rm -f .bench-baseline.json; exit $$status

experiments:
	$(GO) run ./cmd/experiments

ci: vet build test race race-churn crash crash-matrix bench-smoke serve-smoke ingest-smoke replica-smoke
