package ccidx

import (
	"fmt"
	"path/filepath"
	"sort"
	"testing"
)

func collectStab(m interface {
	Stab(int64, func(Interval) bool)
}, q int64) []uint64 {
	var ids []uint64
	m.Stab(q, func(iv Interval) bool { ids = append(ids, iv.ID); return true })
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func sameIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPublicDurableIntervalManager is the README quick-start as a test:
// create a durable manager, mutate, checkpoint, close, reopen, query.
func TestPublicDurableIntervalManager(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "index")
	ivs := []Interval{{Lo: 1, Hi: 10, ID: 1}, {Lo: 5, Hi: 8, ID: 2}, {Lo: 20, Hi: 30, ID: 3}}
	m, err := CreateIntervalManager(Config{B: 16}, dir, ivs)
	if err != nil {
		t.Fatal(err)
	}
	m.Insert(Interval{Lo: 7, Hi: 25, ID: 4})
	if !m.Delete(3) {
		t.Fatal("Delete(3) = false")
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenIntervalManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if got := collectStab(r, 7); !sameIDs(got, []uint64{1, 2, 4}) {
		t.Fatalf("Stab(7) = %v, want [1 2 4]", got)
	}
	if got := collectStab(r, 25); !sameIDs(got, []uint64{4}) {
		t.Fatalf("Stab(25) = %v, want [4]", got)
	}
	// In-memory managers refuse to checkpoint.
	if err := NewIntervalManager(Config{B: 16}, nil).Checkpoint(); err == nil {
		t.Fatal("in-memory Checkpoint did not error")
	}
}

// TestPublicDurableShardedIntervalManager round-trips the sharded public
// API, serving configuration included.
func TestPublicDurableShardedIntervalManager(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sharded")
	var ivs []Interval
	for i := 0; i < 500; i++ {
		lo := int64(i * 7 % 2000)
		ivs = append(ivs, Interval{Lo: lo, Hi: lo + int64(i%97), ID: uint64(i)})
	}
	cfg := ShardConfig{Shards: 4, B: 16, Batch: 8, Partition: PartitionRange, Span: 2100}
	sm, err := CreateShardedIntervalManager(cfg, dir, ivs)
	if err != nil {
		t.Fatal(err)
	}
	sm.Insert(Interval{Lo: 42, Hi: 2042, ID: 9000})
	sm.Delete(17)
	before := collectStab(sm, 1000)
	if err := sm.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := sm.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenShardedIntervalManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Shards() != 4 {
		t.Fatalf("Shards = %d, want 4", r.Shards())
	}
	if r.Len() != sm.Len() {
		t.Fatalf("Len = %d, want %d", r.Len(), sm.Len())
	}
	if got := collectStab(r, 1000); !sameIDs(got, before) {
		t.Fatalf("Stab(1000) diverged after reopen: %d vs %d results", len(got), len(before))
	}
}

// TestPublicDurableClassIndex round-trips every strategy through the public
// class-index API, with the hierarchy rebuilt from the manifest.
func TestPublicDurableClassIndex(t *testing.T) {
	for _, s := range []Strategy{StrategySimple, StrategyFullExtent, StrategyRakeContract} {
		t.Run(fmt.Sprintf("strategy=%d", s), func(t *testing.T) {
			h := NewHierarchy()
			h.MustAddClass("vehicle", "")
			h.MustAddClass("car", "vehicle")
			h.MustAddClass("truck", "vehicle")
			h.MustAddClass("sports", "car")
			h.Freeze()

			dir := filepath.Join(t.TempDir(), "classes")
			ci, err := CreateClassIndex(h, Config{B: 16}, s, dir)
			if err != nil {
				t.Fatal(err)
			}
			ci.Insert("car", 10, 1)
			ci.Insert("sports", 20, 2)
			ci.Insert("truck", 30, 3)
			ci.Insert("vehicle", 40, 4)
			if err := ci.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if err := ci.Close(); err != nil {
				t.Fatal(err)
			}

			r, err := OpenClassIndex(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			var got []uint64
			r.Query("car", 0, 100, func(_ int64, id uint64) bool {
				got = append(got, id)
				return true
			})
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			if !sameIDs(got, []uint64{1, 2}) {
				t.Fatalf("Query(car) = %v, want [1 2]", got)
			}
			// Deletion and further mutation keep working after reopen.
			if !r.Delete("sports", 20, 2) {
				t.Fatal("Delete(sports) = false")
			}
			r.Insert("car", 50, 5)
			got = got[:0]
			r.Query("vehicle", 0, 100, func(_ int64, id uint64) bool {
				got = append(got, id)
				return true
			})
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			if !sameIDs(got, []uint64{1, 3, 4, 5}) {
				t.Fatalf("Query(vehicle) after churn = %v, want [1 3 4 5]", got)
			}
		})
	}
}

// TestPublicDurableShardedClassIndex round-trips the sharded class index
// through the public API.
func TestPublicDurableShardedClassIndex(t *testing.T) {
	h := NewHierarchy()
	h.MustAddClass("root", "")
	h.MustAddClass("a", "root")
	h.MustAddClass("b", "root")
	h.Freeze()

	dir := filepath.Join(t.TempDir(), "sharded-classes")
	cfg := ShardConfig{Shards: 3, B: 16, Partition: PartitionRange, Span: 1000}
	sc, err := CreateShardedClassIndex(h, cfg, StrategyRakeContract, dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		class := []string{"root", "a", "b"}[i%3]
		sc.Insert(class, int64(i*5%1000), uint64(i))
	}
	sc.Flush()
	if err := sc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenShardedClassIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	count := 0
	r.Query("root", 0, 1000, func(int64, uint64) bool { count++; return true })
	if count != 200 {
		t.Fatalf("Query(root) returned %d objects, want 200", count)
	}
	count = 0
	r.Query("a", 0, 1000, func(int64, uint64) bool { count++; return true })
	if count != 67 {
		t.Fatalf("Query(a) returned %d objects, want 67", count)
	}
}
