// Top-level benchmark harness: one testing.B target per experiment of
// DESIGN.md's index (E1..E15). The benchmarks report block I/Os per
// operation ("ios/op") through b.ReportMetric — the paper's cost model —
// alongside Go's usual ns/op and allocation figures. Run with
//
//	go test -bench=. -benchmem
//
// and regenerate the full tables with `go run ./cmd/experiments`.
package ccidx_test

import (
	"fmt"
	"io"
	"math/big"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"ccidx"
	"ccidx/internal/classindex"
	"ccidx/internal/core"
	"ccidx/internal/cql"
	"ccidx/internal/geom"
	"ccidx/internal/harness"
	"ccidx/internal/intervals"
	"ccidx/internal/lowerbound"
	"ccidx/internal/pst"
	"ccidx/internal/server"
	"ccidx/internal/shard"
	"ccidx/internal/threeside"
	"ccidx/internal/workload"
)

const benchB = 32

// BenchmarkE1MetablockQuery measures static diagonal-corner queries
// (Theorem 3.2).
func BenchmarkE1MetablockQuery(b *testing.B) {
	b.ReportAllocs()
	n := 100000
	tr := core.New(core.Config{B: benchB}, workload.DiagonalPoints(1, n, int64(4*n)))
	before := tr.Pager().Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := int64(i%997) * int64(4*n) / 997
		tr.DiagonalQuery(a, func(geom.Point) bool { return true })
	}
	b.StopTimer()
	report(b, tr.Pager().Stats().Sub(before).IOs())
}

// BenchmarkE2CornerStructure measures queries on a single-metablock tree,
// dominated by the Lemma 3.1 corner structure.
func BenchmarkE2CornerStructure(b *testing.B) {
	b.ReportAllocs()
	k := 2 * benchB * benchB
	tr := core.New(core.Config{B: benchB}, workload.DiagonalPoints(2, k, int64(6*k)))
	before := tr.Pager().Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.DiagonalQuery(int64(i%199)*int64(6*k)/199, func(geom.Point) bool { return true })
	}
	b.StopTimer()
	report(b, tr.Pager().Stats().Sub(before).IOs())
}

// BenchmarkE3MetablockInsert measures amortized semi-dynamic inserts
// (Theorem 3.7).
func BenchmarkE3MetablockInsert(b *testing.B) {
	b.ReportAllocs()
	tr := core.New(core.Config{B: benchB}, workload.DiagonalPoints(3, 50000, 1<<30))
	extra := workload.DiagonalPoints(4, b.N, 1<<30)
	before := tr.Pager().Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(extra[i])
	}
	b.StopTimer()
	report(b, tr.Pager().Stats().Sub(before).IOs())
}

// BenchmarkE4LowerBoundAdversary measures the Proposition 3.3 workload.
func BenchmarkE4LowerBoundAdversary(b *testing.B) {
	b.ReportAllocs()
	n := 100000
	tr := core.New(core.Config{B: benchB}, workload.LowerBoundSet(n))
	qs := workload.LowerBoundQueries(n)
	before := tr.Pager().Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.DiagonalQuery(qs[i%len(qs)], func(geom.Point) bool { return true })
	}
	b.StopTimer()
	report(b, tr.Pager().Stats().Sub(before).IOs())
}

// BenchmarkE5IntervalManagement measures stabbing queries through the
// public interval manager (Proposition 2.2).
func BenchmarkE5IntervalManagement(b *testing.B) {
	b.ReportAllocs()
	im := ccidx.NewIntervalManager(ccidx.Config{B: benchB},
		workload.UniformIntervals(5, 100000, 1<<30, 2000))
	before := im.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		im.Stab(int64(i%997)*(1<<30)/997, func(ccidx.Interval) bool { return true })
	}
	b.StopTimer()
	report(b, im.Stats().Sub(before).IOs())
}

// BenchmarkE5NaiveBaseline is the Theta(n/B) comparator for E5.
func BenchmarkE5NaiveBaseline(b *testing.B) {
	b.ReportAllocs()
	nv := intervals.NewNaive(benchB)
	for _, iv := range workload.UniformIntervals(5, 100000, 1<<30, 2000) {
		nv.Insert(iv)
	}
	before := nv.Pager().Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nv.Stab(int64(i%997)*(1<<30)/997, func(geom.Interval) bool { return true })
	}
	b.StopTimer()
	report(b, nv.Pager().Stats().Sub(before).IOs())
}

// BenchmarkE6ClassIndexSimple measures the Theorem 2.6 index.
func BenchmarkE6ClassIndexSimple(b *testing.B) {
	b.ReportAllocs()
	h := workload.RandomHierarchy(6, 255)
	idx := classindex.NewSimple(h, benchB)
	for _, o := range workload.Objects(7, h, 50000, 1<<20) {
		idx.Insert(o)
	}
	before := idx.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a1 := int64(i%97) * (1 << 20) / 97
		idx.Query((i*31)%255, a1, a1+(1<<20)/20, func(int64, uint64) bool { return true })
	}
	b.StopTimer()
	report(b, idx.Stats().Sub(before).IOs())
}

// BenchmarkE7ExternalPST measures the Lemma 4.1 structure.
func BenchmarkE7ExternalPST(b *testing.B) {
	b.ReportAllocs()
	tree := pst.Build(benchB, workload.UniformPoints(8, 100000, 1<<20))
	before := tree.Pager().Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x1 := int64(i%97) * (1 << 20) / 97
		tree.Query(geom.ThreeSidedQuery{X1: x1, X2: x1 + (1<<20)/50, Y: int64(i%89) * (1 << 20) / 89},
			func(geom.Point) bool { return true })
	}
	b.StopTimer()
	report(b, tree.Pager().Stats().Sub(before).IOs())
}

// BenchmarkE8ThreeSidedMetablock measures the Lemma 4.3 structure.
func BenchmarkE8ThreeSidedMetablock(b *testing.B) {
	b.ReportAllocs()
	tree := threeside.New(threeside.Config{B: benchB}, workload.UniformPoints(9, 100000, 1<<20))
	before := tree.Pager().Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x1 := int64(i%97) * (1 << 20) / 97
		tree.Query(geom.ThreeSidedQuery{X1: x1, X2: x1 + (1<<20)/50, Y: int64(i%89) * (1 << 20) / 89},
			func(geom.Point) bool { return true })
	}
	b.StopTimer()
	report(b, tree.Pager().Stats().Sub(before).IOs())
}

// BenchmarkE9ClassIndexFull measures the Theorem 4.7 index.
func BenchmarkE9ClassIndexFull(b *testing.B) {
	b.ReportAllocs()
	h := workload.RandomHierarchy(10, 255)
	idx := classindex.NewRakeContract(h, benchB)
	for _, o := range workload.Objects(11, h, 50000, 1<<20) {
		idx.Insert(o)
	}
	before := idx.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a1 := int64(i%97) * (1 << 20) / 97
		idx.Query((i*17)%255, a1, a1+(1<<20)/20, func(int64, uint64) bool { return true })
	}
	b.StopTimer()
	report(b, idx.Stats().Sub(before).IOs())
}

// BenchmarkE10Tessellation measures the Lemma 2.7 strategy evaluation.
func BenchmarkE10Tessellation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, bb := range []int{16, 64} {
			lowerbound.StrategyReports(4*bb, bb)
		}
	}
}

// BenchmarkE11ClassLowerBound measures the Theorem 2.8 star instance.
func BenchmarkE11ClassLowerBound(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lowerbound.StrategyReports(64, 64)
	}
}

// BenchmarkE12RectangleIntersection measures Example 2.1 end to end.
func BenchmarkE12RectangleIntersection(b *testing.B) {
	b.ReportAllocs()
	pts := workload.UniformPoints(12, 300, 10000)
	rects := make([]geom.Rect, len(pts))
	for i, p := range pts {
		rects[i] = geom.Rect{Name: uint64(i + 1), X1: p.X, Y1: p.Y, X2: p.X + 300, Y2: p.Y + 300}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cql.IntersectingPairs(rects, cql.Config{B: benchB})
	}
}

// BenchmarkE13AblationNoTS quantifies the Type-IV amortization (E13).
func BenchmarkE13AblationNoTS(b *testing.B) {
	b.ReportAllocs()
	n := 100000
	pts := workload.DiagonalPoints(13, n, 1<<24)
	for _, cfg := range []struct {
		name string
		c    core.Config
	}{
		{"withTS", core.Config{B: benchB}},
		{"noTS", core.Config{B: benchB, DisableTS: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			tr := core.New(cfg.c, pts)
			before := tr.Pager().Stats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.DiagonalQuery(int64(i%199)*(1<<24)/199, func(geom.Point) bool { return true })
			}
			b.StopTimer()
			report(b, tr.Pager().Stats().Sub(before).IOs())
		})
	}
}

// BenchmarkE14AblationNoCorner quantifies the Lemma 3.1 structure (E14):
// one metablock with mixed-height columns so that every vertical chunk
// straddles the query line (the harness experiment's workload).
func BenchmarkE14AblationNoCorner(b *testing.B) {
	b.ReportAllocs()
	n := benchB * benchB
	pts := make([]geom.Point, n)
	for i := range pts {
		x := int64(i) * 4
		y := x + int64(i%13)
		if i%benchB == 0 {
			y = x + (1 << 20)
		}
		pts[i] = geom.Point{X: x, Y: y, ID: uint64(i)}
	}
	for _, cfg := range []struct {
		name string
		c    core.Config
	}{
		{"withCorner", core.Config{B: benchB}},
		{"noCorner", core.Config{B: benchB, DisableCorner: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			tr := core.New(cfg.c, pts)
			before := tr.Pager().Stats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.DiagonalQuery(int64(i%199)*4*int64(n)/199+1, func(geom.Point) bool { return true })
			}
			b.StopTimer()
			report(b, tr.Pager().Stats().Sub(before).IOs())
		})
	}
}

// BenchmarkE15ClassStrategies compares every class-indexing strategy on the
// same workload.
func BenchmarkE15ClassStrategies(b *testing.B) {
	b.ReportAllocs()
	h := workload.RandomHierarchy(15, 255)
	objs := workload.Objects(16, h, 30000, 1<<20)
	si := classindex.NewSimple(h, benchB)
	fe := classindex.NewFullExtent(h, benchB)
	st := classindex.NewSingleTreeFilter(h, benchB)
	rc := classindex.NewRakeContract(h, benchB)
	type strat struct {
		name string
		idx  interface {
			Insert(classindex.Object)
			Query(int, int64, int64, classindex.EmitObject)
		}
		ios func() int64
	}
	strategies := []strat{
		{"simple", si, func() int64 { return si.Stats().IOs() }},
		{"fullExtent", fe, func() int64 { return fe.Stats().IOs() }},
		{"singleTreeFilter", st, func() int64 { return st.Stats().IOs() }},
		{"rakeContract", rc, func() int64 { return rc.Stats().IOs() }},
	}
	for _, s := range strategies {
		for _, o := range objs {
			s.idx.Insert(o)
		}
	}
	for _, s := range strategies {
		b.Run(s.name, func(b *testing.B) {
			b.ReportAllocs()
			before := s.ios()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a1 := int64(i%97) * (1 << 20) / 97
				s.idx.Query((i*13)%255, a1, a1+(1<<20)/20, func(int64, uint64) bool { return true })
			}
			b.StopTimer()
			report(b, s.ios()-before)
		})
	}
}

// BenchmarkE16ShardScaling measures mixed insert/query throughput of the
// concurrent sharded serving layer per shard count (E16): range-partitioned
// shards, 1 insert per 8 stabbing queries, parallel workers.
func BenchmarkE16ShardScaling(b *testing.B) {
	b.ReportAllocs()
	const span = 1 << 20
	base := workload.UniformIntervals(16, 100000, span, 4000)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			s := ccidx.NewShardedIntervalManager(ccidx.ShardConfig{
				Shards: shards, B: benchB, Batch: 16,
				Partition: ccidx.PartitionRange, Span: span,
			}, base)
			before := s.Stats()
			var workers atomic.Int64
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				seed := workers.Add(1)
				rng := rand.New(rand.NewSource(seed))
				i := 0
				for pb.Next() {
					if i%8 == 7 {
						lo := rng.Int63n(span)
						s.Insert(ccidx.Interval{Lo: lo, Hi: lo + rng.Int63n(4000),
							ID: uint64(seed)<<32 | uint64(i)})
					} else {
						s.Stab(rng.Int63n(span), func(ccidx.Interval) bool { return true })
					}
					i++
				}
			})
			b.StopTimer()
			report(b, s.Stats().Sub(before).IOs())
		})
	}
}

// BenchmarkE17BatchedInsert measures concurrent insert throughput per
// group-commit batch size (E17); ios/op shows the amortized block I/O is
// unchanged by batching.
func BenchmarkE17BatchedInsert(b *testing.B) {
	b.ReportAllocs()
	const span = 1 << 20
	for _, batch := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			b.ReportAllocs()
			s := ccidx.NewShardedIntervalManager(ccidx.ShardConfig{
				Shards: 4, B: benchB, Batch: batch,
				Partition: ccidx.PartitionRange, Span: span,
			}, nil)
			before := s.Stats()
			var workers atomic.Int64
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				seed := workers.Add(1)
				rng := rand.New(rand.NewSource(seed))
				i := 0
				for pb.Next() {
					lo := rng.Int63n(span)
					s.Insert(ccidx.Interval{Lo: lo, Hi: lo + rng.Int63n(4000),
						ID: uint64(seed)<<32 | uint64(i)})
					i++
				}
			})
			b.StopTimer()
			s.Flush()
			report(b, s.Stats().Sub(before).IOs())
		})
	}
}

// BenchmarkE19Churn measures mixed insert/delete/query churn through the
// public interval manager (E19): weak deletes + global rebuilding. Each
// 4-op cycle inserts a fresh interval, stabs, deletes it again and stabs,
// so deletes always target live ids at any b.N.
func BenchmarkE19Churn(b *testing.B) {
	b.ReportAllocs()
	const span = int64(1 << 30)
	im := ccidx.NewIntervalManager(ccidx.Config{B: benchB},
		workload.UniformIntervals(19, 100000, span, 2000))
	rng := rand.New(rand.NewSource(19))
	before := im.Stats()
	b.ResetTimer()
	var cur uint64
	for i := 0; i < b.N; i++ {
		switch i % 4 {
		case 0:
			lo := rng.Int63n(span)
			cur = uint64(1<<32) + uint64(i)
			im.Insert(ccidx.Interval{Lo: lo, Hi: lo + rng.Int63n(2000), ID: cur})
		case 2:
			if !im.Delete(cur) {
				b.Fatal("churn delete failed")
			}
		default:
			im.Stab(rng.Int63n(span), func(ccidx.Interval) bool { return true })
		}
	}
	b.StopTimer()
	report(b, im.Stats().Sub(before).IOs())
}

// BenchmarkE20BatchedStab measures batched query execution through the
// sharded serving layer (E20): the identical stabbing stream issued
// sequentially and at increasing batch sizes. ios/op is the headline — the
// shared traversal amortizes the per-query search term, locks and pending
// replays across the batch. Pools are disabled so the saving shows in the
// I/O counters (the paper's bare cost model), exactly like the E20 table.
func BenchmarkE20BatchedStab(b *testing.B) {
	b.ReportAllocs()
	const span = 1 << 20
	base := workload.UniformIntervals(20, 100000, span, 1000)
	for _, batch := range []int{0, 1, 16, 256} {
		name := "seq"
		if batch > 0 {
			name = fmt.Sprintf("batch=%d", batch)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			s := ccidx.NewShardedIntervalManager(ccidx.ShardConfig{
				Shards: 4, B: 16, Batch: 16,
				Partition: ccidx.PartitionRange, Span: span, PoolFrames: -1,
			}, base)
			qs := workload.StabQueries(22, b.N, span)
			before := s.Stats()
			b.ResetTimer()
			if batch == 0 {
				for _, q := range qs {
					s.Stab(q, func(ccidx.Interval) bool { return true })
				}
			} else {
				for _, bq := range workload.QueryBatches(qs, batch) {
					s.StabBatch(bq, func(int, ccidx.Interval) bool { return true })
				}
			}
			b.StopTimer()
			report(b, s.Stats().Sub(before).IOs())
		})
	}
}

// BenchmarkStabPendingReplay isolates the pending-op-log replay against a
// deliberately large group-commit buffer: the per-query path (one full log
// scan per Stab, unchanged by the batching work) versus the batched path
// (one grouped replay per batch). Guards the sequential path against
// regressions while the batch path amortizes.
func BenchmarkStabPendingReplay(b *testing.B) {
	b.ReportAllocs()
	const span = 1 << 20
	mk := func() *ccidx.ShardedIntervalManager {
		s := ccidx.NewShardedIntervalManager(ccidx.ShardConfig{
			Shards: 1, B: benchB, Batch: 4096, // large: the buffer never flushes
			Partition: ccidx.PartitionRange, Span: span,
		}, workload.UniformIntervals(23, 20000, span, 2000))
		rng := rand.New(rand.NewSource(24))
		for i := 0; i < 2048; i++ { // a fat pending op log
			lo := rng.Int63n(span)
			s.Insert(ccidx.Interval{Lo: lo, Hi: lo + rng.Int63n(2000), ID: uint64(1)<<40 | uint64(i)})
		}
		return s
	}
	b.Run("perQuery", func(b *testing.B) {
		b.ReportAllocs()
		s := mk()
		qs := workload.StabQueries(25, b.N, span)
		b.ResetTimer()
		for _, q := range qs {
			s.Stab(q, func(ccidx.Interval) bool { return true })
		}
	})
	b.Run("batch=256", func(b *testing.B) {
		b.ReportAllocs()
		s := mk()
		qs := workload.StabQueries(25, b.N, span)
		b.ResetTimer()
		for _, bq := range workload.QueryBatches(qs, 256) {
			s.StabBatch(bq, func(int, ccidx.Interval) bool { return true })
		}
	})
}

// BenchmarkE22ServerStab measures stabbing queries through the HTTP
// serving front-end (E22). The sequential arm runs one client with
// batching off and pools off, so its ios/op is deterministic and gated
// like every other tier-1 benchmark; the concurrent arm reports wall-clock
// only (its per-query I/O depends on how the auto-batcher coalesces the
// racing clients, which is timing-dependent by nature).
func BenchmarkE22ServerStab(b *testing.B) {
	const span = 1 << 20
	base := workload.UniformIntervals(26, 100000, span, 1000)
	mk := func(disableBatching bool) (*shard.Intervals, *httptest.Server, func()) {
		s := shard.NewIntervals(shard.Config{
			Shards: 4, B: 16, Batch: 16,
			Partition: shard.PartitionRange, Span: span, PoolFrames: -1,
		}, base)
		srv, err := server.New(server.Backend{Intervals: s}, server.Config{
			DisableBatching: disableBatching,
		})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		return s, ts, func() { ts.Close(); srv.Close() }
	}
	get := func(client *http.Client, url string) {
		resp, err := client.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	b.Run("seq", func(b *testing.B) {
		b.ReportAllocs()
		s, ts, stop := mk(true)
		defer stop()
		qs := workload.StabQueries(27, b.N, span)
		client := &http.Client{}
		before := s.Stats()
		b.ResetTimer()
		for _, q := range qs {
			get(client, fmt.Sprintf("%s/v1/stab?q=%d", ts.URL, q))
		}
		b.StopTimer()
		report(b, s.Stats().Sub(before).IOs())
	})
	b.Run("concurrent=32", func(b *testing.B) {
		b.ReportAllocs()
		_, ts, stop := mk(false)
		defer stop()
		var next atomic.Int64
		b.ResetTimer()
		var wg sync.WaitGroup
		for c := 0; c < 32; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(28 + c)))
				client := &http.Client{}
				for next.Add(1) <= int64(b.N) {
					get(client, fmt.Sprintf("%s/v1/stab?q=%d", ts.URL, rng.Int63n(span)))
				}
			}(c)
		}
		wg.Wait()
		// No ios/op: coalescing depth (and so per-query I/O) is
		// scheduling-dependent under concurrency.
	})
}

// BenchmarkHarnessE1Table regenerates the E1 table (kept cheap by writing to
// io.Discard); the other tables run through cmd/experiments.
// BenchmarkE21DurableStab measures stabbing queries against the
// FILE-BACKED interval manager (E21): the ios/op must match
// BenchmarkE5IntervalManagement's in-memory figure (the structures are
// device-oblivious); the ns/op difference is the price of real page reads.
func BenchmarkE21DurableStab(b *testing.B) {
	b.ReportAllocs()
	n := 100000
	ivs := workload.UniformIntervals(5, n, int64(1<<20), 1<<14)
	m, err := intervals.CreateAt(b.TempDir(), intervals.Config{B: benchB}, ivs, intervals.DurableOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer m.CloseFiles()
	before := m.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := int64(i%997) * int64(1<<20) / 997
		m.Stab(q, func(geom.Interval) bool { return true })
	}
	b.StopTimer()
	report(b, m.Stats().Sub(before).IOs())
}

// BenchmarkE21ColdOpen measures restartable serving: reopening a
// checkpointed durable manager (recovery + root reattachment + the O(n/B)
// id-directory rebuild scan), reporting the block reads per open.
func BenchmarkE21ColdOpen(b *testing.B) {
	b.ReportAllocs()
	n := 100000
	ivs := workload.UniformIntervals(7, n, int64(1<<20), 1<<14)
	dir := b.TempDir()
	m, err := intervals.CreateAt(dir, intervals.Config{B: benchB}, ivs, intervals.DurableOptions{})
	if err != nil {
		b.Fatal(err)
	}
	m.CloseFiles()
	var ios int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := intervals.OpenAt(dir, intervals.DurableOptions{})
		if err != nil {
			b.Fatal(err)
		}
		ios += r.Stats().IOs()
		r.CloseFiles()
	}
	b.StopTimer()
	report(b, ios)
}

// BenchmarkE23WalAppend measures a WAL-logged insert on the durable
// manager under the default group-commit policy: one tree insert plus one
// log append, with fsync deferred to the checkpoint boundary. Compare
// ns/op against a DisableWAL run to see the logging overhead E23 tables.
func BenchmarkE23WalAppend(b *testing.B) {
	b.ReportAllocs()
	n := 50000
	span := int64(1 << 20)
	ivs := workload.UniformIntervals(11, n, span, 1<<14)
	m, err := intervals.CreateAt(b.TempDir(), intervals.Config{B: benchB}, ivs, intervals.DurableOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer m.CloseFiles()
	m.AttachPool(4096, 8)
	rng := rand.New(rand.NewSource(13))
	before := m.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Int63n(span)
		m.Insert(geom.Interval{Lo: lo, Hi: lo + rng.Int63n(1<<14) + 1, ID: uint64(n + i + 1)})
	}
	b.StopTimer()
	report(b, m.Stats().Sub(before).IOs())
}

// BenchmarkE25Ingest measures a WAL-logged insert on the durable manager in
// log-structured ingest mode: one log append plus a memtable write, with
// tree construction deferred to the background merge path. Compare ios/op
// against BenchmarkE23WalAppend — the same acked durability on the rebuild
// path — to see the foreground saving E25 tables.
func BenchmarkE25Ingest(b *testing.B) {
	b.ReportAllocs()
	n := 50000
	span := int64(1 << 20)
	ivs := workload.UniformIntervals(11, n, span, 1<<14)
	m, err := intervals.CreateAt(b.TempDir(), intervals.Config{
		B:      benchB,
		Ingest: &intervals.IngestConfig{MemtableSize: 4096, MaxRuns: 8},
	}, ivs, intervals.DurableOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer m.CloseFiles()
	rng := rand.New(rand.NewSource(13))
	before := m.Stats().IOs() + m.FileWrites()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Int63n(span)
		m.Insert(geom.Interval{Lo: lo, Hi: lo + rng.Int63n(1<<14) + 1, ID: uint64(n + i + 1)})
	}
	b.StopTimer()
	report(b, m.Stats().IOs()+m.FileWrites()-before)
}

// BenchmarkE25MergeAmplification measures the TOTAL device write cost of
// log-structured churn — WAL appends plus every flush, tiered merge, and
// dead-fraction compaction, drained synchronously so nothing is deferred
// past the timer. This is the write-amplification side of the E25 frontier;
// ios/op here bounds what the background merger pays for the foreground
// savings BenchmarkE25Ingest shows.
func BenchmarkE25MergeAmplification(b *testing.B) {
	b.ReportAllocs()
	n := 20000
	span := int64(1 << 20)
	ivs := workload.UniformIntervals(17, n, span, 1<<14)
	m, err := intervals.CreateAt(b.TempDir(), intervals.Config{
		B:      benchB,
		Ingest: &intervals.IngestConfig{MemtableSize: 1024, MaxRuns: 4, SyncCompaction: true},
	}, ivs, intervals.DurableOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer m.CloseFiles()
	rng := rand.New(rand.NewSource(19))
	live := make([]uint64, 0, n)
	for _, iv := range ivs {
		live = append(live, iv.ID)
	}
	next := uint64(n + 1)
	before := m.FileWrites()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%4 == 3 && len(live) > 0 {
			j := rng.Intn(len(live))
			m.Delete(live[j])
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		lo := rng.Int63n(span)
		m.Insert(geom.Interval{Lo: lo, Hi: lo + rng.Int63n(1<<14) + 1, ID: next})
		live = append(live, next)
		next++
	}
	b.StopTimer()
	report(b, m.FileWrites()-before)
}

func BenchmarkHarnessE1Table(b *testing.B) {
	b.ReportAllocs()
	e, _ := harness.Lookup("E1")
	for i := 0; i < b.N; i++ {
		e.Run(io.Discard)
	}
}

// BenchmarkCQLSatisfiability measures the exact-rational constraint solver.
func BenchmarkCQLSatisfiability(b *testing.B) {
	b.ReportAllocs()
	c := cql.NewConj(4, 0,
		cql.VarVar(0, cql.LE, 1), cql.VarVar(1, cql.LT, 2), cql.VarVar(2, cql.LE, 3),
		cql.VarConst(0, cql.GE, big.NewRat(1, 3)), cql.VarConst(3, cql.LE, big.NewRat(7, 2)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.Satisfiable() {
			b.Fatal("unsat")
		}
	}
}

// report attaches the ios/op metric.
func report(b *testing.B, ios int64) {
	b.ReportMetric(float64(ios)/float64(b.N), "ios/op")
}
