package classindex

import (
	"ccidx/internal/bptree"
	"ccidx/internal/disk"
)

// SimpleIndex is the range-tree-of-B+-trees class index of Theorem 2.6
// (procedure index-classes, Fig 6): a balanced binary tree over the class
// positions (the integer-rank version of the label-class values of Fig 4);
// every tree node indexes the collection of objects whose class lies in its
// position range. A full-extent query on class C decomposes C's subtree
// interval into O(log2 c) canonical nodes, each answered by one B+-tree
// range search; an object appears in O(log2 c) collections, one per level.
//
// Bounds (Theorem 2.6): query O(log2 c * log_B n + t/B), insert and delete
// O(log2 c * log_B n), space O((n/B) log2 c). Objects are fully dynamic.
type SimpleIndex struct {
	h     *Hierarchy
	b     int
	nodes []segNode // nodes[0] is the root (c > 0)
	n     int
	pools []*disk.Pool // attached buffer pools (nil without AttachPool)

	// store is the shared device of a file-backed instance (nil when every
	// tree owns its own in-memory pager); mk constructs each segment
	// tree during build (persist.go swaps in a state-reattaching factory).
	store disk.Store
	mk    func() *bptree.Tree
}

type segNode struct {
	lo, hi      int // position range [lo, hi)
	left, right int // -1 for leaves
	tree        *bptree.Tree
}

// NewSimple builds the index for a frozen hierarchy.
func NewSimple(h *Hierarchy, b int) *SimpleIndex {
	return NewSimpleOn(h, b, nil)
}

// NewSimpleOn is NewSimple with every segment tree on a caller-provided
// shared store (a file-backed device; page size bptree.PageSize(b)). A nil
// store gives each tree its own in-memory pager, NewSimple's behaviour.
func NewSimpleOn(h *Hierarchy, b int, store disk.Store) *SimpleIndex {
	h.mustFrozen()
	s := &SimpleIndex{h: h, b: b, store: store}
	s.mk = func() *bptree.Tree {
		if s.store != nil {
			return bptree.NewOn(s.store, s.b)
		}
		return bptree.New(s.b)
	}
	if h.Len() > 0 {
		s.build(0, h.Len())
	}
	return s
}

func (s *SimpleIndex) build(lo, hi int) int {
	idx := len(s.nodes)
	s.nodes = append(s.nodes, segNode{lo: lo, hi: hi, left: -1, right: -1, tree: s.mk()})
	if hi-lo > 1 {
		mid := (lo + hi) / 2
		l := s.build(lo, mid)
		r := s.build(mid, hi)
		s.nodes[idx].left = l
		s.nodes[idx].right = r
	}
	return idx
}

// Len returns the number of objects stored.
func (s *SimpleIndex) Len() int { return s.n }

// Insert adds an object in O(log2 c * log_B n) I/Os.
func (s *SimpleIndex) Insert(o Object) {
	pos := s.h.Pre(o.Class)
	i := 0
	for {
		nd := &s.nodes[i]
		nd.tree.Insert(o.Attr, o.ID)
		if nd.left < 0 {
			break
		}
		if pos < s.nodes[nd.left].hi {
			i = nd.left
		} else {
			i = nd.right
		}
	}
	s.n++
}

// Delete removes an object in O(log2 c * log_B n) I/Os; it returns whether
// the object was present (checked at the leaf level).
func (s *SimpleIndex) Delete(o Object) bool {
	pos := s.h.Pre(o.Class)
	removed := false
	i := 0
	for {
		nd := &s.nodes[i]
		if nd.tree.Delete(o.Attr, o.ID) {
			removed = true
		}
		if nd.left < 0 {
			break
		}
		if pos < s.nodes[nd.left].hi {
			i = nd.left
		} else {
			i = nd.right
		}
	}
	if removed {
		s.n--
	}
	return removed
}

// Query reports every object in the full extent of class c with attribute
// in [a1, a2], in O(log2 c * log_B n + t/B) I/Os.
func (s *SimpleIndex) Query(c int, a1, a2 int64, emit EmitObject) {
	lo, hi := s.h.SubtreeRange(c)
	s.query(0, lo, hi, a1, a2, emit)
}

func (s *SimpleIndex) query(i, lo, hi int, a1, a2 int64, emit EmitObject) bool {
	nd := &s.nodes[i]
	if hi <= nd.lo || lo >= nd.hi {
		return true
	}
	if lo <= nd.lo && nd.hi <= hi {
		ok := true
		nd.tree.Range(a1, a2, func(e bptree.Entry) bool {
			if !emit(e.Key, e.RID) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if !s.query(nd.left, lo, hi, a1, a2, emit) {
		return false
	}
	return s.query(nd.right, lo, hi, a1, a2, emit)
}

// Stats sums the I/O counters of every node tree.
func (s *SimpleIndex) Stats() disk.Stats {
	if s.store != nil { // shared device: every tree reports the same counters
		return s.store.Stats()
	}
	var st disk.Stats
	for i := range s.nodes {
		st = st.Add(s.nodes[i].tree.Pager().Stats())
	}
	return st
}

// SpaceBlocks sums live pages across all node trees.
func (s *SimpleIndex) SpaceBlocks() int64 {
	if s.store != nil {
		return s.store.Allocated()
	}
	var total int64
	for i := range s.nodes {
		total += s.nodes[i].tree.Pager().Allocated()
	}
	return total
}
