package classindex

import "ccidx/internal/disk"

// Buffer-pool attachment for the class-index strategies the sharded
// serving layer hosts. Each strategy is a forest of external trees, each
// with its own simulated device; AttachPool divides a frame budget across
// them so concurrent full-extent queries hit memory-resident frames
// instead of re-reading the devices. Frames are allocated lazily by the
// pools, so small per-tree budgets cost nothing until a tree is touched.

// pooledTree is any index tree that can route its page I/O through a
// disk.Device (bptree.Tree and threeside.Tree both qualify).
type pooledTree interface {
	Pager() disk.Store
	SetDevice(disk.Device)
}

// attachPools wraps trees' devices in concurrent CLOCK pools, dividing
// the frame budget across them without exceeding it: every pooled tree
// gets at least two frames, and when the budget cannot cover all trees at
// that floor, only the first frames/2 trees are pooled and the rest keep
// reading their bare pagers (for SimpleIndex the slice is in preorder, so
// the root-side trees — the ones every query touches — are pooled first).
func attachPools(frames, nShards int, trees []pooledTree) []*disk.Pool {
	if len(trees) == 0 || frames < 2 {
		return nil
	}
	per := frames / len(trees)
	n := len(trees)
	if per < 2 {
		per = 2
		n = frames / 2
	}
	pools := make([]*disk.Pool, 0, n)
	for _, t := range trees[:n] {
		p := disk.NewPool(t.Pager(), per, nShards)
		t.SetDevice(p)
		pools = append(pools, p)
	}
	return pools
}

func flushPools(pools []*disk.Pool) {
	if err := flushPoolsErr(pools); err != nil {
		panic(err)
	}
}

// flushPoolsErr is flushPools with an error return (the checkpoint path
// reports injected write faults instead of panicking).
func flushPoolsErr(pools []*disk.Pool) error {
	for _, p := range pools {
		if err := p.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// AttachPool layers concurrent buffer pools over every segment tree of the
// simple index, dividing frames across them. Call before sharing the index
// between goroutines.
func (s *SimpleIndex) AttachPool(frames, nShards int) {
	trees := make([]pooledTree, len(s.nodes))
	for i := range s.nodes {
		trees[i] = s.nodes[i].tree
	}
	s.pools = attachPools(frames, nShards, trees)
}

// FlushPool writes dirty pooled frames back to the devices.
func (s *SimpleIndex) FlushPool() { flushPools(s.pools) }

// AttachPool layers concurrent buffer pools over every per-class extent
// tree of the full-extent index.
func (f *FullExtentIndex) AttachPool(frames, nShards int) {
	trees := make([]pooledTree, len(f.trees))
	for i := range f.trees {
		trees[i] = f.trees[i]
	}
	f.pools = attachPools(frames, nShards, trees)
}

// FlushPool writes dirty pooled frames back to the devices.
func (f *FullExtentIndex) FlushPool() { flushPools(f.pools) }

// AttachPool layers concurrent buffer pools over every rake (B+-tree) and
// contract (3-sided) structure of the rake-and-contract index.
func (rc *RakeContract) AttachPool(frames, nShards int) {
	trees := make([]pooledTree, 0, len(rc.structs))
	for _, st := range rc.structs {
		if st.bt != nil {
			trees = append(trees, st.bt)
		} else {
			trees = append(trees, st.ts)
		}
	}
	rc.pools = attachPools(frames, nShards, trees)
}

// FlushPool writes dirty pooled frames back to the devices.
func (rc *RakeContract) FlushPool() { flushPools(rc.pools) }
