package classindex

import (
	"fmt"

	"ccidx/internal/bptree"
	"ccidx/internal/disk"
	"ccidx/internal/geom"
	"ccidx/internal/threeside"
)

// RakeContract is the class index of Theorem 4.7, built by the
// rake-and-contract decomposition of Fig 23 over the thick/thin edge
// labelling of Fig 22 (Lemma 4.5: at most log2 c thin edges on any
// root-to-leaf path).
//
// The (static) hierarchy is consumed bottom-up. Each class starts with a
// collection holding its own extent. Repeatedly:
//
//	rake:     a leaf attached by a thin edge (or a root leaf) is removed;
//	          its collection — by then the class's FULL extent (Lemma 4.6)
//	          — is indexed in a B+-tree and copied into the parent's
//	          collection.
//	contract: a maximal thick path v1..vk whose only connection upward is a
//	          thin edge (or v1 is a root) is removed; the union of its
//	          collections is indexed in ONE 3-sided metablock tree keyed
//	          (attribute, path label), label(vi) = i, and copied into
//	          parent(v1)'s collection. Because the labels nest exactly like
//	          the degenerate-hierarchy ranges of Lemma 4.3, a full-extent
//	          query on vi is the 3-sided query [a1,a2] x [i, +inf).
//
// Every class therefore has one home structure answering its queries in
// O(log_B n + t/B) (B+-tree) or O(log_B n + log2 B + t/B) (3-sided), and an
// object's extent is replicated once per thin edge above it, i.e. at most
// log2 c + 1 times (Lemmas 4.5/4.6), giving space O((n/B) log2 c) and
// amortized insert O(log2 c (log_B n + (log_B n)^2/B)).
type RakeContract struct {
	h *Hierarchy
	b int

	structs []rcStructure
	// plan[c] lists every (structure, label) that must hold class c's
	// extent: c's home structure first, then the home structures of the
	// absorbing ancestors.
	plan [][]rcTarget
	// home[c] is plan[c][0], used to answer queries on c.
	home  []rcTarget
	n     int
	pools []*disk.Pool // attached buffer pools (nil without AttachPool)

	// btStore/tsStore are the shared devices of a file-backed instance
	// (nil when every structure owns its own in-memory pager): one device
	// for the B+-tree page size, one for the 3-sided tree's. mkBT/mkTS
	// construct the structures during decompose (persist.go swaps in
	// state-reattaching factories).
	btStore, tsStore disk.Store
	mkBT             func() *bptree.Tree
	mkTS             func() *threeside.Tree
}

type rcStructure struct {
	bt *bptree.Tree // exactly one of bt/ts is set
	ts *threeside.Tree
}

type rcTarget struct {
	structIdx int
	label     int64 // path label for 3-sided structures; 0 for B+-trees
}

// NewRakeContract builds the index for a frozen hierarchy.
func NewRakeContract(h *Hierarchy, b int) *RakeContract {
	return NewRakeContractOn(h, b, nil, nil)
}

// NewRakeContractOn is NewRakeContract with every structure on shared
// stores: btStore for the B+-tree homes (page size bptree.PageSize(b)) and
// tsStore for the 3-sided homes (page size threeside.Config{B: b}.PageSize()).
// Nil stores give each structure its own in-memory pager.
func NewRakeContractOn(h *Hierarchy, b int, btStore, tsStore disk.Store) *RakeContract {
	h.mustFrozen()
	rc := &RakeContract{h: h, b: b, btStore: btStore, tsStore: tsStore}
	rc.mkBT = func() *bptree.Tree {
		if rc.btStore != nil {
			return bptree.NewOn(rc.btStore, rc.b)
		}
		return bptree.New(rc.b)
	}
	rc.mkTS = func() *threeside.Tree {
		if rc.tsStore != nil {
			return threeside.NewOn(threeside.Config{B: rc.b}, rc.tsStore, nil)
		}
		return threeside.New(threeside.Config{B: rc.b}, nil)
	}
	rc.decompose()
	return rc
}

// decompose runs rake-and-contract, assigning every class a home structure
// and an absorption chain.
func (rc *RakeContract) decompose() {
	h := rc.h
	n := h.Len()
	alive := make([]bool, n)
	aliveKids := make([]int, n)
	for i := 0; i < n; i++ {
		alive[i] = true
		aliveKids[i] = len(h.children[i])
	}
	// absorbTarget[v] = the class whose collection received v's collection
	// when v was removed (-1 when v's removal ended at a root).
	absorbTarget := make([]int, n)
	rc.home = make([]rcTarget, n)
	for i := range absorbTarget {
		absorbTarget[i] = -1
	}
	removed := 0
	newBTreeStruct := func() int {
		rc.structs = append(rc.structs, rcStructure{bt: rc.mkBT()})
		return len(rc.structs) - 1
	}
	newTSStruct := func() int {
		rc.structs = append(rc.structs, rcStructure{ts: rc.mkTS()})
		return len(rc.structs) - 1
	}

	// Every pass removes at least one class (each pass rakes or contracts
	// the deepest alive leaf, or panics below), so n passes always suffice;
	// the explicit bound turns any future scheduling regression into a loud
	// failure instead of a spin.
	passes := 0
	for removed < n {
		if passes++; passes > n {
			panic("classindex: rake-and-contract exceeded its pass bound")
		}
		progress := false
		// Rake: thin leaves and root leaves get B+-tree homes.
		for v := 0; v < n; v++ {
			if !alive[v] || aliveKids[v] != 0 {
				continue
			}
			p := h.parent[v]
			if p >= 0 && h.IsThick(v) {
				continue // tail of a thick path; contract handles it
			}
			idx := newBTreeStruct()
			rc.home[v] = rcTarget{structIdx: idx}
			alive[v] = false
			removed++
			progress = true
			if p >= 0 {
				absorbTarget[v] = p
				aliveKids[p]--
			}
		}
		// Contract: maximal thick chains ending at a leaf whose top hangs
		// off a thin edge or is a root.
		for v := 0; v < n; v++ {
			if !alive[v] || aliveKids[v] != 0 || !h.IsThick(v) {
				continue
			}
			// v is an alive thick leaf; climb the chain upward.
			chain := []int{v}
			top := v
			for {
				p := h.parent[top]
				if p < 0 || !alive[p] || aliveKids[p] != 1 || h.thick[p] != top {
					break
				}
				chain = append(chain, p)
				top = p
			}
			// The chain is contractible only if its top connection is thin
			// or the top is a root.
			if pt := h.parent[top]; pt >= 0 && h.IsThick(top) {
				continue // wait for the parent's other children to clear
			}
			idx := newTSStruct()
			// chain is bottom-up: chain[len-1] = top = v1 gets label 1.
			k := len(chain)
			for j, node := range chain {
				label := int64(k - j) // deepest gets the largest label
				rc.home[node] = rcTarget{structIdx: idx, label: label}
				alive[node] = false
				removed++
			}
			progress = true
			if pt := h.parent[top]; pt >= 0 {
				for _, node := range chain {
					absorbTarget[node] = pt
				}
				aliveKids[pt]--
			}
		}
		if !progress {
			panic("classindex: rake-and-contract made no progress")
		}
	}

	// Absorption chains -> per-class insertion plans. An object of class c
	// lives in home(c) with c's label, and in home(w) with w's label for
	// every absorb ancestor w.
	rc.plan = make([][]rcTarget, n)
	for c := 0; c < n; c++ {
		targets := []rcTarget{rc.home[c]}
		for w := absorbTarget[c]; w >= 0; w = absorbTarget[w] {
			targets = append(targets, rc.home[w])
		}
		rc.plan[c] = targets
	}
}

// Len returns the number of objects stored.
func (rc *RakeContract) Len() int { return rc.n }

// Replication returns the number of structures holding class c's extent;
// Lemma 4.6 bounds it by log2 c + 1.
func (rc *RakeContract) Replication(c int) int { return len(rc.plan[c]) }

// IsContracted reports whether class c is answered by a 3-sided structure.
func (rc *RakeContract) IsContracted(c int) bool {
	return rc.structs[rc.home[c].structIdx].ts != nil
}

// Insert adds an object; amortized O(log2 c (log_B n + (log_B n)^2/B)).
func (rc *RakeContract) Insert(o Object) {
	for _, tgt := range rc.plan[o.Class] {
		s := &rc.structs[tgt.structIdx]
		if s.bt != nil {
			s.bt.Insert(o.Attr, o.ID)
		} else {
			s.ts.Insert(geom.Point{X: o.Attr, Y: tgt.label, ID: o.ID})
		}
	}
	rc.n++
}

// Delete removes an object, returning whether it was present. The object's
// copy in each of its log2(c)+1 target structures is removed: B+-tree homes
// delete for real, 3-sided homes take the weak-delete path of
// threeside.Tree (tombstone + amortized global rebuild), so the whole
// operation is amortized O(log2 c * log_B n) I/Os — the Theorem 2.6 delete
// bound, now available on the Theorem 4.7 structure too.
func (rc *RakeContract) Delete(o Object) bool {
	// Presence is decided at the home structure — the one holding exactly
	// c's full extent — then the replicas in the absorbing ancestors' homes
	// are removed best-effort. Like the other strategies, Delete must be
	// called with the class the object was inserted under: an ancestor
	// class's home also holds the object (full extents nest), so a
	// mis-classed delete "succeeds" against the wrong structure set and
	// leaves the extents inconsistent — garbage in, garbage out, but never
	// a panic, and a subsequent correctly-classed delete still clears the
	// remaining copies.
	targets := rc.plan[o.Class]
	if !rc.deleteFrom(targets[0], o) {
		return false
	}
	for _, tgt := range targets[1:] {
		rc.deleteFrom(tgt, o)
	}
	rc.n--
	return true
}

func (rc *RakeContract) deleteFrom(tgt rcTarget, o Object) bool {
	s := &rc.structs[tgt.structIdx]
	if s.bt != nil {
		return s.bt.Delete(o.Attr, o.ID)
	}
	return s.ts.Delete(geom.Point{X: o.Attr, Y: tgt.label, ID: o.ID})
}

// Query reports the full extent of c within [a1,a2]:
// O(log_B n + log2 B + t/B) I/Os.
func (rc *RakeContract) Query(c int, a1, a2 int64, emit EmitObject) {
	tgt := rc.home[c]
	s := &rc.structs[tgt.structIdx]
	if s.bt != nil {
		s.bt.Range(a1, a2, func(e bptree.Entry) bool { return emit(e.Key, e.RID) })
		return
	}
	s.ts.Query(geom.ThreeSidedQuery{X1: a1, X2: a2, Y: tgt.label}, func(p geom.Point) bool {
		return emit(p.X, p.ID)
	})
}

// Stats sums the I/O counters of all structures.
func (rc *RakeContract) Stats() disk.Stats {
	if rc.btStore != nil { // shared devices: sum each once, not per tree
		st := rc.btStore.Stats()
		if rc.tsStore != nil {
			st = st.Add(rc.tsStore.Stats())
		}
		return st
	}
	var st disk.Stats
	for i := range rc.structs {
		if rc.structs[i].bt != nil {
			st = st.Add(rc.structs[i].bt.Pager().Stats())
		} else {
			st = st.Add(rc.structs[i].ts.Pager().Stats())
		}
	}
	return st
}

// SpaceBlocks sums live pages of all structures.
func (rc *RakeContract) SpaceBlocks() int64 {
	if rc.btStore != nil {
		total := rc.btStore.Allocated()
		if rc.tsStore != nil {
			total += rc.tsStore.Allocated()
		}
		return total
	}
	var total int64
	for i := range rc.structs {
		if rc.structs[i].bt != nil {
			total += rc.structs[i].bt.Pager().Allocated()
		} else {
			total += rc.structs[i].ts.Pager().Allocated()
		}
	}
	return total
}

// Describe returns a human-readable decomposition summary (Fig 24 style):
// how many classes were raked vs contracted, and the structure count.
func (rc *RakeContract) Describe() string {
	raked, contracted := 0, 0
	for c := 0; c < rc.h.Len(); c++ {
		if rc.IsContracted(c) {
			contracted++
		} else {
			raked++
		}
	}
	return fmt.Sprintf("classes=%d raked=%d contracted=%d structures=%d",
		rc.h.Len(), raked, contracted, len(rc.structs))
}
