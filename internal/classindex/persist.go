package classindex

// Checkpoint support for the class-indexing strategies. Each strategy is a
// deterministic forest of external trees over (hierarchy, b): the segment
// tree layout of SimpleIndex, the per-class trees of FullExtentIndex, and
// the rake-and-contract structure list. Reopening therefore re-runs the
// SAME deterministic construction with a factory that, instead of building
// fresh trees, reattaches each tree to the shared store from its serialized
// state — in construction order, which is the order MarshalState emits.

import (
	"encoding/binary"
	"fmt"

	"ccidx/internal/bptree"
	"ccidx/internal/disk"
	"ccidx/internal/threeside"
	"ccidx/internal/wire"
)

// HierarchySpec is a serializable description of a frozen hierarchy
// (classes in id order, parents by id, -1 for roots); checkpoint manifests
// embed it so opening a persisted class index needs no out-of-band schema.
type HierarchySpec struct {
	Names   []string `json:"names"`
	Parents []int    `json:"parents"`
}

// Spec returns the hierarchy's serializable description.
func (h *Hierarchy) Spec() HierarchySpec {
	return HierarchySpec{
		Names:   append([]string(nil), h.names...),
		Parents: append([]int(nil), h.parent...),
	}
}

// HierarchyFromSpec rebuilds a frozen hierarchy from a Spec. Class ids are
// assigned in slice order, so they (and every Freeze-derived array) match
// the original exactly.
func HierarchyFromSpec(sp HierarchySpec) (*Hierarchy, error) {
	if len(sp.Names) != len(sp.Parents) {
		return nil, fmt.Errorf("classindex: spec has %d names, %d parents", len(sp.Names), len(sp.Parents))
	}
	h := NewHierarchy()
	for i, name := range sp.Names {
		p := sp.Parents[i]
		parent := ""
		if p >= 0 {
			if p >= i {
				return nil, fmt.Errorf("classindex: spec parent %d of class %d not yet defined", p, i)
			}
			parent = sp.Names[p]
		}
		if _, err := h.AddClass(name, parent); err != nil {
			return nil, err
		}
	}
	h.Freeze()
	return h, nil
}

// --- state codec helpers -----------------------------------------------------

func appendU64(buf []byte, v uint64) []byte {
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], v)
	return append(buf, w[:]...)
}

func appendBlock(buf, blk []byte) []byte {
	buf = appendU64(buf, uint64(len(blk)))
	return append(buf, blk...)
}

// --- SimpleIndex -------------------------------------------------------------

// MarshalState serializes {n, per-node tree states} in node-index order
// (the deterministic preorder of the segment-tree build).
func (s *SimpleIndex) MarshalState() []byte {
	buf := appendU64(nil, uint64(s.n))
	buf = appendU64(buf, uint64(len(s.nodes)))
	for i := range s.nodes {
		buf = appendBlock(buf, s.nodes[i].tree.MarshalState())
	}
	return buf
}

// OpenSimpleOn reattaches a simple index to the shared store holding its
// pages, using the state a prior MarshalState produced.
func OpenSimpleOn(h *Hierarchy, b int, store disk.Store, state []byte) (*SimpleIndex, error) {
	h.mustFrozen()
	r := wire.NewStateReader(state)
	n := int(r.U64())
	count := int(r.U64())
	s := &SimpleIndex{h: h, b: b, store: store, n: n}
	var openErr error
	s.mk = func() *bptree.Tree {
		blk := r.Block()
		if r.Err() != nil {
			return brokenBT()
		}
		t, err := bptree.OpenOn(store, blk)
		if err != nil {
			if openErr == nil {
				openErr = err
			}
			return brokenBT()
		}
		return t
	}
	if h.Len() > 0 {
		s.build(0, h.Len())
	}
	if openErr != nil {
		return nil, openErr
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("classindex: corrupt simple-index state: %w", err)
	}
	if len(s.nodes) != count {
		return nil, fmt.Errorf("classindex: state has %d trees, layout needs %d", count, len(s.nodes))
	}
	return s, nil
}

// brokenBT is a placeholder returned by a failed reattach so the
// deterministic build can finish before the error is reported (the index is
// discarded; the placeholder is never used).
func brokenBT() *bptree.Tree { return bptree.New(4) }

// --- FullExtentIndex ---------------------------------------------------------

// MarshalState serializes {n, per-class tree states} in class-id order.
func (f *FullExtentIndex) MarshalState() []byte {
	buf := appendU64(nil, uint64(f.n))
	buf = appendU64(buf, uint64(len(f.trees)))
	for _, t := range f.trees {
		buf = appendBlock(buf, t.MarshalState())
	}
	return buf
}

// OpenFullExtentOn reattaches a full-extent index to the shared store.
func OpenFullExtentOn(h *Hierarchy, b int, store disk.Store, state []byte) (*FullExtentIndex, error) {
	h.mustFrozen()
	r := wire.NewStateReader(state)
	n := int(r.U64())
	count := int(r.U64())
	if count != h.Len() {
		return nil, fmt.Errorf("classindex: state has %d trees, hierarchy has %d classes", count, h.Len())
	}
	f := &FullExtentIndex{h: h, trees: make([]*bptree.Tree, h.Len()), store: store, n: n}
	for i := range f.trees {
		blk := r.Block()
		if r.Err() != nil {
			break
		}
		t, err := bptree.OpenOn(store, blk)
		if err != nil {
			return nil, err
		}
		f.trees[i] = t
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("classindex: corrupt full-extent state: %w", err)
	}
	return f, nil
}

// --- RakeContract ------------------------------------------------------------

const (
	rcKindBT = 1
	rcKindTS = 2
)

// MarshalState serializes {n, per-structure kind+state} in structure order
// (the deterministic rake-and-contract construction order).
func (rc *RakeContract) MarshalState() []byte {
	buf := appendU64(nil, uint64(rc.n))
	buf = appendU64(buf, uint64(len(rc.structs)))
	for i := range rc.structs {
		if rc.structs[i].bt != nil {
			buf = appendU64(buf, rcKindBT)
			buf = appendBlock(buf, rc.structs[i].bt.MarshalState())
		} else {
			buf = appendU64(buf, rcKindTS)
			buf = appendBlock(buf, rc.structs[i].ts.MarshalState())
		}
	}
	return buf
}

// OpenRakeContractOn reattaches a rake-and-contract index to its two shared
// stores, re-running the deterministic decomposition with factories that
// consume the serialized structure states in order.
func OpenRakeContractOn(h *Hierarchy, b int, btStore, tsStore disk.Store, state []byte) (*RakeContract, error) {
	h.mustFrozen()
	r := wire.NewStateReader(state)
	n := int(r.U64())
	count := int(r.U64())
	rc := &RakeContract{h: h, b: b, btStore: btStore, tsStore: tsStore, n: n}
	var openErr error
	fail := func(err error) {
		if openErr == nil && err != nil {
			openErr = err
		}
	}
	rc.mkBT = func() *bptree.Tree {
		if kind := r.U64(); r.Err() == nil && kind != rcKindBT {
			fail(fmt.Errorf("classindex: state structure kind %d, decomposition expects B+-tree", kind))
		}
		blk := r.Block()
		if r.Err() != nil {
			return brokenBT()
		}
		t, err := bptree.OpenOn(btStore, blk)
		if err != nil {
			fail(err)
			return brokenBT()
		}
		return t
	}
	rc.mkTS = func() *threeside.Tree {
		if kind := r.U64(); r.Err() == nil && kind != rcKindTS {
			fail(fmt.Errorf("classindex: state structure kind %d, decomposition expects 3-sided tree", kind))
		}
		blk := r.Block()
		if r.Err() != nil {
			return brokenTS(b)
		}
		t, err := threeside.OpenOn(threeside.Config{B: b}, tsStore, blk)
		if err != nil {
			fail(err)
			return brokenTS(b)
		}
		return t
	}
	rc.decompose()
	if openErr != nil {
		return nil, openErr
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("classindex: corrupt rake-contract state: %w", err)
	}
	if len(rc.structs) != count {
		return nil, fmt.Errorf("classindex: state has %d structures, decomposition builds %d", count, len(rc.structs))
	}
	return rc, nil
}

// brokenTS is brokenBT's 3-sided counterpart.
func brokenTS(b int) *threeside.Tree { return threeside.New(threeside.Config{B: b}, nil) }
