package classindex

// Durable is a file-backed class-index strategy instance in a directory:
// the strategy's trees live on one shared FileDevice per page size (one for
// B+-trees; rake-and-contract adds one for its 3-sided trees), with the
// strategy state serialized into the checkpoint payload. Commit is owned by
// the caller (ccidx.ClassIndex writes a directory manifest; the sharded
// serving layer commits every shard under one top-level manifest) through
// the PrepareCheckpoint/CommitCheckpoint pair.

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"ccidx/internal/bptree"
	"ccidx/internal/disk"
	"ccidx/internal/threeside"
)

// StrategyKind selects a class-indexing algorithm (mirrors ccidx.Strategy).
type StrategyKind int

// Strategy kinds.
const (
	KindSimple StrategyKind = iota
	KindFullExtent
	KindRakeContract
)

// Device file names inside a durable class index's directory.
const (
	btPagesFile = "classes-bt.pages"
	tsPagesFile = "classes-ts.pages"
	walFile     = "wal.log"
)

// DurableOpts configures a durable strategy instance.
type DurableOpts struct {
	// Fsync is the device and WAL fsync policy.
	Fsync disk.FsyncPolicy
	// DisableWAL turns off write-ahead logging: mutations since the last
	// checkpoint are lost on a crash (the pre-WAL behavior, kept for the
	// overhead sweeps).
	DisableWAL bool
}

// WAL op encoding: one byte tag, then the Object fields little-endian.
const (
	walOpInsert = 1
	walOpDelete = 2
	walOpLen    = 25 // tag + class u64 + attr u64 + id u64
)

func encodeOp(tag byte, o Object) []byte {
	buf := make([]byte, walOpLen)
	buf[0] = tag
	binary.LittleEndian.PutUint64(buf[1:], uint64(o.Class))
	binary.LittleEndian.PutUint64(buf[9:], uint64(int64(o.Attr)))
	binary.LittleEndian.PutUint64(buf[17:], o.ID)
	return buf
}

// tsMarker is the payload checkpointed on the 3-sided device (whose real
// state rides on the B+-tree device's payload): it only needs to be
// non-empty so HasCheckpoint distinguishes a committed device from a
// freshly created one.
var tsMarker = []byte{1}

// Durable is a file-backed strategy instance. Create with CreateDurable,
// reopen with OpenDurable. It implements the per-shard ClassIndex surface
// plus the checkpoint hooks.
type Durable struct {
	Kind StrategyKind
	b    int
	h    *Hierarchy

	si *SimpleIndex
	fe *FullExtentIndex
	rc *RakeContract

	files []*disk.FileDevice
	wal   *disk.WAL
}

// CreateDurable builds an EMPTY file-backed strategy instance in dir. No
// manifest is written: the owner commits via PrepareCheckpoint /
// CommitCheckpoint under its own manifest.
func CreateDurable(dir string, h *Hierarchy, b int, kind StrategyKind, opt DurableOpts) (*Durable, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	d := &Durable{Kind: kind, b: b, h: h}
	if err := d.openDevices(dir, opt.Fsync, nil); err != nil {
		return nil, err
	}
	switch kind {
	case KindSimple:
		d.si = NewSimpleOn(h, b, d.files[0])
	case KindFullExtent:
		d.fe = NewFullExtentOn(h, b, d.files[0])
	case KindRakeContract:
		d.rc = NewRakeContractOn(h, b, d.files[0], d.files[1])
	default:
		d.CloseFiles()
		return nil, fmt.Errorf("classindex: unknown strategy kind %d", kind)
	}
	if !opt.DisableWAL {
		wal, err := disk.OpenWAL(filepath.Join(dir, walFile), opt.Fsync)
		if err != nil {
			d.CloseFiles()
			return nil, err
		}
		d.wal = wal
		if err := wal.Reset(d.files[0].Seq()); err != nil {
			d.CloseFiles()
			return nil, err
		}
	}
	return d, nil
}

// OpenDurable reopens the strategy instance in dir at generation seq (the
// owner's committed manifest) and replays the WAL tail on top of the
// checkpoint image. A corrupt page discovered while rebuilding or replaying
// surfaces as an error (the trees panic on a failed read deep inside the
// rebuild; the deferred guard converts it), never as a crash.
func OpenDurable(dir string, h *Hierarchy, b int, kind StrategyKind, seq uint64, opt DurableOpts) (d *Durable, err error) {
	d = &Durable{Kind: kind, b: b, h: h}
	defer func() {
		if p := recover(); p != nil {
			e, ok := p.(error)
			if !ok {
				panic(p)
			}
			d.CloseFiles()
			d, err = nil, fmt.Errorf("classindex: opening %s: %w", dir, e)
		}
	}()
	if err := d.openDevices(dir, opt.Fsync, &seq); err != nil {
		return nil, err
	}
	bt := d.files[0]
	if !bt.HasCheckpoint() {
		d.CloseFiles()
		return nil, fmt.Errorf("classindex: %s has no structure checkpoint at seq %d", dir, seq)
	}
	state := bt.ReadCheckpoint()
	switch kind {
	case KindSimple:
		d.si, err = OpenSimpleOn(h, b, bt, state)
	case KindFullExtent:
		d.fe, err = OpenFullExtentOn(h, b, bt, state)
	case KindRakeContract:
		d.rc, err = OpenRakeContractOn(h, b, bt, d.files[1], state)
	default:
		err = fmt.Errorf("classindex: unknown strategy kind %d", kind)
	}
	if err != nil {
		d.CloseFiles()
		return nil, err
	}
	if !opt.DisableWAL {
		wal, werr := disk.OpenWAL(filepath.Join(dir, walFile), opt.Fsync)
		if werr != nil {
			d.CloseFiles()
			return nil, werr
		}
		d.wal = wal
		if _, werr := wal.Recover(seq, d.replayOp); werr != nil {
			d.CloseFiles()
			return nil, fmt.Errorf("classindex: replaying %s: %w", dir, werr)
		}
	}
	return d, nil
}

// replayOp applies one decoded WAL record during recovery. Replay runs on
// the rollback-restored checkpoint image and the log is truncated at every
// checkpoint, so each surviving record's effect is absent from the base:
// inserts apply directly, and a delete of an object the crash kept out is a
// structural no-op.
func (d *Durable) replayOp(payload []byte) error {
	if len(payload) != walOpLen {
		return fmt.Errorf("classindex: wal record of %d bytes", len(payload))
	}
	o := Object{
		Class: int(binary.LittleEndian.Uint64(payload[1:])),
		Attr:  int64(binary.LittleEndian.Uint64(payload[9:])),
		ID:    binary.LittleEndian.Uint64(payload[17:]),
	}
	if o.Class < 0 || o.Class >= d.h.Len() {
		return fmt.Errorf("classindex: wal record names unknown class %d", o.Class)
	}
	switch payload[0] {
	case walOpInsert:
		d.ApplyInsert(o)
	case walOpDelete:
		d.ApplyDelete(o)
	default:
		return fmt.Errorf("classindex: wal record with unknown op %d", payload[0])
	}
	return nil
}

func (d *Durable) openDevices(dir string, opt disk.FsyncPolicy, trustSeq *uint64) error {
	// trustSeq == nil is the create path: refuse to build fresh trees over
	// an existing device (see intervals/durable.go).
	mustCreate := trustSeq == nil
	bt, err := disk.OpenFile(filepath.Join(dir, btPagesFile), disk.FileOptions{
		PageSize: bptree.PageSize(d.b), Fsync: opt, TrustSeq: trustSeq, MustCreate: mustCreate,
	})
	if err != nil {
		return err
	}
	d.files = []*disk.FileDevice{bt}
	if d.Kind == KindRakeContract {
		ts, err := disk.OpenFile(filepath.Join(dir, tsPagesFile), disk.FileOptions{
			PageSize: threeside.Config{B: d.b}.PageSize(), Fsync: opt, TrustSeq: trustSeq, MustCreate: mustCreate,
		})
		if err != nil {
			bt.Close()
			return err
		}
		d.files = append(d.files, ts)
	}
	return nil
}

// strategy returns the wrapped index as the common interface surface.
func (d *Durable) insertTarget() interface{ Insert(Object) } {
	switch {
	case d.si != nil:
		return d.si
	case d.fe != nil:
		return d.fe
	default:
		return d.rc
	}
}

// Insert logs the object to the WAL, makes the record durable (under
// FsyncAlways), then applies it: once Insert returns, the mutation survives
// a crash. Unknown classes panic before anything reaches the log.
func (d *Durable) Insert(o Object) {
	d.checkClass(o)
	if d.wal != nil {
		d.LogInsert(o)
		d.SyncWAL()
	}
	d.ApplyInsert(o)
}

// Delete logs and applies the removal, returning whether the object was
// present. A delete of an absent object still logs (presence is only known
// after walking the trees); its replay is a structural no-op.
func (d *Durable) Delete(o Object) bool {
	d.checkClass(o)
	if d.wal != nil {
		d.LogDelete(o)
		d.SyncWAL()
	}
	return d.ApplyDelete(o)
}

func (d *Durable) checkClass(o Object) {
	if o.Class < 0 || o.Class >= d.h.Len() {
		panic(fmt.Errorf("classindex: object %d names unknown class %d", o.ID, o.Class))
	}
}

// ApplyInsert applies an insert WITHOUT logging it — the shard layer's
// group-commit path logs the whole batch up front and applies through here.
func (d *Durable) ApplyInsert(o Object) { d.insertTarget().Insert(o) }

// ApplyDelete applies a delete WITHOUT logging it (see ApplyInsert).
func (d *Durable) ApplyDelete(o Object) bool {
	switch {
	case d.si != nil:
		return d.si.Delete(o)
	case d.fe != nil:
		return d.fe.Delete(o)
	default:
		return d.rc.Delete(o)
	}
}

// LogInsert appends an insert record to the WAL without applying or
// syncing; it panics on an append failure (the mutation cannot be
// acknowledged, exactly like a failed tree write).
func (d *Durable) LogInsert(o Object) {
	if d.wal == nil {
		return
	}
	if err := d.wal.Append(encodeOp(walOpInsert, o)); err != nil {
		panic(fmt.Errorf("classindex: wal append: %w", err))
	}
}

// LogDelete appends a delete record to the WAL (see LogInsert).
func (d *Durable) LogDelete(o Object) {
	if d.wal == nil {
		return
	}
	if err := d.wal.Append(encodeOp(walOpDelete, o)); err != nil {
		panic(fmt.Errorf("classindex: wal append: %w", err))
	}
}

// SyncWAL is the group-commit boundary: it makes every appended record
// durable (a no-op except under FsyncAlways).
func (d *Durable) SyncWAL() {
	if d.wal == nil {
		return
	}
	if err := d.wal.Sync(); err != nil {
		panic(fmt.Errorf("classindex: wal sync: %w", err))
	}
}

// WAL exposes the write-ahead log (nil when disabled).
func (d *Durable) WAL() *disk.WAL { return d.wal }

// Query reports the full extent of c within [a1, a2].
func (d *Durable) Query(c int, a1, a2 int64, emit EmitObject) {
	switch {
	case d.si != nil:
		d.si.Query(c, a1, a2, emit)
	case d.fe != nil:
		d.fe.Query(c, a1, a2, emit)
	default:
		d.rc.Query(c, a1, a2, emit)
	}
}

// Len returns the number of objects stored.
func (d *Durable) Len() int {
	switch {
	case d.si != nil:
		return d.si.Len()
	case d.fe != nil:
		return d.fe.Len()
	default:
		return d.rc.Len()
	}
}

// Stats returns the devices' I/O counters.
func (d *Durable) Stats() disk.Stats {
	st := d.files[0].Stats()
	if len(d.files) > 1 {
		st = st.Add(d.files[1].Stats())
	}
	return st
}

// SpaceBlocks returns the live pages across the devices.
func (d *Durable) SpaceBlocks() int64 {
	total := d.files[0].Allocated()
	if len(d.files) > 1 {
		total += d.files[1].Allocated()
	}
	return total
}

// AttachPool layers buffer pools over the strategy's trees.
func (d *Durable) AttachPool(frames, nShards int) {
	switch {
	case d.si != nil:
		d.si.AttachPool(frames, nShards)
	case d.fe != nil:
		d.fe.AttachPool(frames, nShards)
	default:
		d.rc.AttachPool(frames, nShards)
	}
}

// FlushPool writes dirty pooled frames back to the devices.
func (d *Durable) FlushPool() {
	switch {
	case d.si != nil:
		d.si.FlushPool()
	case d.fe != nil:
		d.fe.FlushPool()
	default:
		d.rc.FlushPool()
	}
}

func (d *Durable) marshal() []byte {
	switch {
	case d.si != nil:
		return d.si.MarshalState()
	case d.fe != nil:
		return d.fe.MarshalState()
	default:
		return d.rc.MarshalState()
	}
}

// Seq returns the last durable checkpoint generation.
func (d *Durable) Seq() uint64 { return d.files[0].Seq() }

// PrepareCheckpoint flushes pooled frames and writes generation seq on
// every device without committing it.
func (d *Durable) PrepareCheckpoint(seq uint64) error {
	var pools []*disk.Pool
	switch {
	case d.si != nil:
		pools = d.si.pools
	case d.fe != nil:
		pools = d.fe.pools
	default:
		pools = d.rc.pools
	}
	if err := flushPoolsErr(pools); err != nil {
		return err
	}
	if err := d.files[0].PrepareCheckpoint(seq, d.marshal()); err != nil {
		return err
	}
	if len(d.files) > 1 {
		if err := d.files[1].PrepareCheckpoint(seq, tsMarker); err != nil {
			// Neither device may be left prepared on failure: unwind the
			// B+-tree device so the whole instance stays retryable.
			if rerr := d.files[0].RollbackCheckpoint(); rerr != nil {
				return fmt.Errorf("classindex: rolling back bt prepare: %v (original: %w)", rerr, err)
			}
			return err
		}
	}
	return nil
}

// RollbackCheckpoint abandons a prepared (uncommitted) generation on every
// device, restoring the previous one. The owner calls this when a sibling
// shard's prepare — or the group manifest write — fails.
func (d *Durable) RollbackCheckpoint() error {
	var first error
	for _, f := range d.files {
		if err := f.RollbackCheckpoint(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// CommitCheckpoint commits the prepared generation on every device, then
// truncates the WAL: the committed image captures every logged mutation. A
// crash between the device commits and the truncation leaves a stale-
// generation log that the next open discards.
func (d *Durable) CommitCheckpoint() error {
	for _, f := range d.files {
		if err := f.CommitCheckpoint(); err != nil {
			return err
		}
	}
	if d.wal != nil {
		return d.wal.Reset(d.files[0].Seq())
	}
	return nil
}

// CloseFiles closes the devices and the WAL without checkpointing.
func (d *Durable) CloseFiles() error {
	var first error
	for _, f := range d.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	if d.wal != nil {
		if err := d.wal.Close(); err != nil && first == nil {
			first = err
		}
		d.wal = nil
	}
	return first
}

// Files exposes the underlying devices (fault-injection tests arm their
// write budgets).
func (d *Durable) Files() []*disk.FileDevice { return d.files }

// SetWriteBudget shares one fault-injection budget across the devices and
// the WAL, so a crash sweep covers log appends too (nil disarms).
func (d *Durable) SetWriteBudget(b *disk.WriteBudget) {
	for _, f := range d.files {
		f.SetWriteBudget(b)
	}
	if d.wal != nil {
		d.wal.SetWriteBudget(b)
	}
}

// FileWrites returns total file-level writes across the devices and the
// WAL — the coordinate system of the crash sweeps.
func (d *Durable) FileWrites() int64 {
	var total int64
	for _, f := range d.files {
		total += f.FileWrites()
	}
	if d.wal != nil {
		total += d.wal.FileWrites()
	}
	return total
}
