package classindex

import (
	"ccidx/internal/bptree"
	"ccidx/internal/disk"
)

// FullExtentIndex keeps one B+-tree per class over the class's FULL extent
// (Lemma 4.2): an object of class C is stored in the trees of C and every
// ancestor of C, i.e. replicated depth(C)+1 times. Queries are a single
// range search — optimal — but space degrades to O((n/B) * k) for hierarchy
// depth k, which is why the paper reserves this scheme for constant-depth
// hierarchies.
type FullExtentIndex struct {
	h     *Hierarchy
	trees []*bptree.Tree
	n     int
	pools []*disk.Pool // attached buffer pools (nil without AttachPool)

	// store is the shared device of a file-backed instance (nil when every
	// tree owns its own in-memory pager); see persist.go.
	store disk.Store
}

// NewFullExtent builds the index for a frozen hierarchy.
func NewFullExtent(h *Hierarchy, b int) *FullExtentIndex {
	return NewFullExtentOn(h, b, nil)
}

// NewFullExtentOn is NewFullExtent with every per-class tree on a shared
// store (nil: per-tree in-memory pagers).
func NewFullExtentOn(h *Hierarchy, b int, store disk.Store) *FullExtentIndex {
	h.mustFrozen()
	f := &FullExtentIndex{h: h, trees: make([]*bptree.Tree, h.Len()), store: store}
	for i := range f.trees {
		if store != nil {
			f.trees[i] = bptree.NewOn(store, b)
		} else {
			f.trees[i] = bptree.New(b)
		}
	}
	return f
}

// Len returns the number of objects stored.
func (f *FullExtentIndex) Len() int { return f.n }

// Insert adds an object in O(k * log_B n) I/Os (k = depth).
func (f *FullExtentIndex) Insert(o Object) {
	for v := o.Class; v >= 0; v = f.h.parent[v] {
		f.trees[v].Insert(o.Attr, o.ID)
	}
	f.n++
}

// Delete removes an object.
func (f *FullExtentIndex) Delete(o Object) bool {
	removed := false
	for v := o.Class; v >= 0; v = f.h.parent[v] {
		if f.trees[v].Delete(o.Attr, o.ID) {
			removed = true
		}
	}
	if removed {
		f.n--
	}
	return removed
}

// Query reports the full extent of c in [a1,a2]: one range search,
// O(log_B n + t/B) I/Os.
func (f *FullExtentIndex) Query(c int, a1, a2 int64, emit EmitObject) {
	f.trees[c].Range(a1, a2, func(e bptree.Entry) bool { return emit(e.Key, e.RID) })
}

// Stats sums the I/O counters of all trees.
func (f *FullExtentIndex) Stats() disk.Stats {
	if f.store != nil { // shared device: every tree reports the same counters
		return f.store.Stats()
	}
	var st disk.Stats
	for _, t := range f.trees {
		st = st.Add(t.Pager().Stats())
	}
	return st
}

// SpaceBlocks sums live pages of all trees.
func (f *FullExtentIndex) SpaceBlocks() int64 {
	if f.store != nil {
		return f.store.Allocated()
	}
	var total int64
	for _, t := range f.trees {
		total += t.Pager().Allocated()
	}
	return total
}

// SingleTreeFilter is the first strawman of Section 2.2: a single B+-tree
// over all objects, with the class position carried in the entry payload
// and checked at query time. The query reads every object in the attribute
// range regardless of class, so a t-result query can cost Theta(n/B) — "the
// algorithm has no control over how the objects of interest are
// interspersed with other objects".
type SingleTreeFilter struct {
	h    *Hierarchy
	tree *bptree.Tree
}

// NewSingleTreeFilter builds the baseline.
func NewSingleTreeFilter(h *Hierarchy, b int) *SingleTreeFilter {
	h.mustFrozen()
	return &SingleTreeFilter{h: h, tree: bptree.New(b)}
}

// Len returns the number of objects stored.
func (s *SingleTreeFilter) Len() int { return s.tree.Len() }

// Insert adds an object in O(log_B n) I/Os.
func (s *SingleTreeFilter) Insert(o Object) {
	s.tree.InsertEntry(bptree.Entry{Key: o.Attr, RID: o.ID, Val: uint64(s.h.Pre(o.Class))})
}

// Delete removes an object.
func (s *SingleTreeFilter) Delete(o Object) bool {
	return s.tree.Delete(o.Attr, o.ID)
}

// Query scans the whole attribute range and filters by class position.
func (s *SingleTreeFilter) Query(c int, a1, a2 int64, emit EmitObject) {
	lo, hi := s.h.SubtreeRange(c)
	s.tree.Range(a1, a2, func(e bptree.Entry) bool {
		if p := int(e.Val); p >= lo && p < hi {
			return emit(e.Key, e.RID)
		}
		return true
	})
}

// Stats returns the I/O counters.
func (s *SingleTreeFilter) Stats() disk.Stats { return s.tree.Pager().Stats() }

// SpaceBlocks returns the live page count.
func (s *SingleTreeFilter) SpaceBlocks() int64 { return s.tree.Pager().Allocated() }

// ExtentTrees is the second strawman of Section 2.2: one B+-tree per class
// over the class's own extent only (no replication). A full-extent query
// must search every class in the subtree, costing O(subtree * log_B n +
// t/B).
type ExtentTrees struct {
	h     *Hierarchy
	trees []*bptree.Tree
	n     int
}

// NewExtentTrees builds the baseline.
func NewExtentTrees(h *Hierarchy, b int) *ExtentTrees {
	h.mustFrozen()
	e := &ExtentTrees{h: h, trees: make([]*bptree.Tree, h.Len())}
	for i := range e.trees {
		e.trees[i] = bptree.New(b)
	}
	return e
}

// Len returns the number of objects stored.
func (e *ExtentTrees) Len() int { return e.n }

// Insert adds an object in O(log_B n) I/Os.
func (e *ExtentTrees) Insert(o Object) {
	e.trees[o.Class].Insert(o.Attr, o.ID)
	e.n++
}

// Delete removes an object.
func (e *ExtentTrees) Delete(o Object) bool {
	if e.trees[o.Class].Delete(o.Attr, o.ID) {
		e.n--
		return true
	}
	return false
}

// Query searches the tree of every class in c's subtree.
func (e *ExtentTrees) Query(c int, a1, a2 int64, emit EmitObject) {
	lo, hi := e.h.SubtreeRange(c)
	for _, v := range e.classesInRange(lo, hi) {
		stopped := false
		e.trees[v].Range(a1, a2, func(en bptree.Entry) bool {
			if !emit(en.Key, en.RID) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
}

func (e *ExtentTrees) classesInRange(lo, hi int) []int {
	var out []int
	for v := 0; v < e.h.Len(); v++ {
		if p := e.h.Pre(v); p >= lo && p < hi {
			out = append(out, v)
		}
	}
	return out
}

// Stats sums the I/O counters of all trees.
func (e *ExtentTrees) Stats() disk.Stats {
	var st disk.Stats
	for _, t := range e.trees {
		st = st.Add(t.Pager().Stats())
	}
	return st
}

// SpaceBlocks sums live pages of all trees.
func (e *ExtentTrees) SpaceBlocks() int64 {
	var total int64
	for _, t := range e.trees {
		total += t.Pager().Allocated()
	}
	return total
}
