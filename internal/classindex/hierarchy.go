// Package classindex implements the paper's class-indexing data structures
// (Sections 2.2 and 4): indexing by one attribute and by class name in an
// object-oriented model whose objects are organised in a static forest
// hierarchy of classes.
//
// A query asks for all objects in the FULL extent of a class C — C's own
// extent plus the extents of all its descendants — whose attribute lies in
// a range [a1, a2]. The package provides:
//
//   - SimpleIndex: the range-tree-of-B+-trees solution of Theorem 2.6
//     (query O(log2 c * log_B n + t/B), update O(log2 c * log_B n), space
//     O((n/B) log2 c)); fully dynamic in objects.
//   - FullExtentIndex: one B+-tree per class over its full extent
//     (Lemma 4.2; optimal for constant-depth hierarchies, space O((n/B)*k)
//     for depth k).
//   - SingleTreeFilter and ExtentTrees: the two rejected strawmen of
//     Section 2.2 (one tree over everything with filtering; one tree per
//     extent with subtree fan-out), kept as baselines.
//   - RakeContract: the improved solution of Theorem 4.7 via the
//     thick/thin decomposition of Figs 22-24 (query O(log_B n + log2 B +
//     t/B), space O((n/B) log2 c), semi-dynamic inserts).
package classindex

import (
	"fmt"
	"math/big"
)

// Hierarchy is a static forest of classes. Build it with AddClass, then
// Freeze it before constructing indexes (the paper assumes the
// class/subclass relationship is static while objects are dynamic).
type Hierarchy struct {
	names  []string
	parent []int // -1 for roots
	byName map[string]int
	frozen bool

	children [][]int
	roots    []int
	pre      []int // preorder position; subtree of c = [pre[c], pre[c]+size[c])
	size     []int
	depth    []int
	thick    []int // thick child of each node (-1 for leaves), Fig 22
}

// NewHierarchy returns an empty hierarchy.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{byName: map[string]int{}}
}

// AddClass declares a class; parent must already exist or be "" for a root.
// Returns the class id.
func (h *Hierarchy) AddClass(name, parent string) (int, error) {
	if h.frozen {
		return 0, fmt.Errorf("classindex: hierarchy is frozen")
	}
	if _, ok := h.byName[name]; ok {
		return 0, fmt.Errorf("classindex: duplicate class %q", name)
	}
	p := -1
	if parent != "" {
		var ok bool
		p, ok = h.byName[parent]
		if !ok {
			return 0, fmt.Errorf("classindex: unknown parent %q", parent)
		}
	}
	id := len(h.names)
	h.names = append(h.names, name)
	h.parent = append(h.parent, p)
	h.byName[name] = id
	return id, nil
}

// MustAddClass is AddClass that panics on error.
func (h *Hierarchy) MustAddClass(name, parent string) int {
	id, err := h.AddClass(name, parent)
	if err != nil {
		panic(err)
	}
	return id
}

// Class returns the id of a class by name.
func (h *Hierarchy) Class(name string) (int, bool) {
	id, ok := h.byName[name]
	return id, ok
}

// Name returns the class name for an id.
func (h *Hierarchy) Name(id int) string { return h.names[id] }

// Len returns the number of classes (the paper's c).
func (h *Hierarchy) Len() int { return len(h.names) }

// Parent returns the parent id of a class (-1 for roots).
func (h *Hierarchy) Parent(id int) int { return h.parent[id] }

// Freeze computes the derived structure: children lists, preorder
// positions, subtree sizes, depths, and the thick/thin edge labelling of
// Fig 22 (the edge to the child with the largest subtree is thick).
func (h *Hierarchy) Freeze() {
	if h.frozen {
		return
	}
	n := len(h.names)
	h.children = make([][]int, n)
	for i, p := range h.parent {
		if p >= 0 {
			h.children[p] = append(h.children[p], i)
		} else {
			h.roots = append(h.roots, i)
		}
	}
	h.pre = make([]int, n)
	h.size = make([]int, n)
	h.depth = make([]int, n)
	h.thick = make([]int, n)
	for i := range h.thick {
		h.thick[i] = -1
	}
	pos := 0
	var dfs func(v, d int)
	dfs = func(v, d int) {
		h.pre[v] = pos
		pos++
		h.depth[v] = d
		h.size[v] = 1
		best := -1
		for _, c := range h.children[v] {
			dfs(c, d+1)
			h.size[v] += h.size[c]
			if best < 0 || h.size[c] > h.size[best] {
				best = c
			}
		}
		h.thick[v] = best
	}
	for _, r := range h.roots {
		dfs(r, 0)
	}
	h.frozen = true
}

func (h *Hierarchy) mustFrozen() {
	if !h.frozen {
		panic("classindex: hierarchy must be frozen first")
	}
}

// SubtreeRange returns the preorder interval [lo, hi) of class c's subtree;
// a class d is a descendant-or-self of c iff pre[d] lies in it. This is the
// integer-rank equivalent of the rational ranges produced by label-class
// (Proposition 2.5).
func (h *Hierarchy) SubtreeRange(c int) (lo, hi int) {
	h.mustFrozen()
	return h.pre[c], h.pre[c] + h.size[c]
}

// Pre returns the preorder position (the "class attribute value" of
// Proposition 2.5) of class c.
func (h *Hierarchy) Pre(c int) int {
	h.mustFrozen()
	return h.pre[c]
}

// Depth returns the depth of class c (roots have depth 0).
func (h *Hierarchy) Depth(c int) int {
	h.mustFrozen()
	return h.depth[c]
}

// IsThick reports whether the edge from c's parent to c is thick (Fig 22).
// Root edges are not thick.
func (h *Hierarchy) IsThick(c int) bool {
	h.mustFrozen()
	p := h.parent[c]
	return p >= 0 && h.thick[p] == c
}

// ThinEdgesToRoot counts the thin edges on the path from c to its root,
// which Lemma 4.5 bounds by log2 c.
func (h *Hierarchy) ThinEdgesToRoot(c int) int {
	h.mustFrozen()
	count := 0
	for v := c; h.parent[v] >= 0; v = h.parent[v] {
		if !h.IsThick(v) {
			count++
		}
	}
	return count
}

// RatRange is the exact rational class range assigned by the label-class
// procedure of Fig 4: Value is the class's own label and [Value, End) spans
// the class's subtree.
type RatRange struct {
	Value *big.Rat
	End   *big.Rat
}

// LabelClass runs the procedure label-class of Fig 4 with exact rational
// arithmetic, reproducing the fractions of Fig 5 ([0,1) at the root of each
// tree after dividing [0,1) among the roots; each range is cut into k+1
// equal parts, the first for the class's own extent and the rest for its k
// children). It exists for fidelity to the paper (tests reproduce Fig 5's
// exact labels); the integer preorder ranks are what the indexes use.
func (h *Hierarchy) LabelClass() []RatRange {
	h.mustFrozen()
	out := make([]RatRange, len(h.names))
	var rec func(v int, lo, hi *big.Rat)
	rec = func(v int, lo, hi *big.Rat) {
		out[v] = RatRange{Value: new(big.Rat).Set(lo), End: new(big.Rat).Set(hi)}
		kids := h.children[v]
		if len(kids) == 0 {
			return
		}
		width := new(big.Rat).Sub(hi, lo)
		parts := new(big.Rat).SetInt64(int64(len(kids) + 1))
		step := new(big.Rat).Quo(width, parts)
		cur := new(big.Rat).Add(lo, step) // first part stays with v's extent
		for _, c := range kids {
			next := new(big.Rat).Add(cur, step)
			rec(c, cur, next)
			cur = next
		}
	}
	nroots := new(big.Rat).SetInt64(int64(len(h.roots)))
	for i, r := range h.roots {
		lo := new(big.Rat).Quo(new(big.Rat).SetInt64(int64(i)), nroots)
		hi := new(big.Rat).Quo(new(big.Rat).SetInt64(int64(i+1)), nroots)
		rec(r, lo, hi)
	}
	return out
}

// Object is one database object: a class, an indexed attribute value, and
// an identifier.
type Object struct {
	Class int
	Attr  int64
	ID    uint64
}

// EmitObject receives query results; returning false stops the enumeration.
type EmitObject func(attr int64, id uint64) bool
