package classindex

import (
	"math/big"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// fig5Hierarchy builds the Example 2.3 hierarchy: Person with children
// Professor and Student, and Assistant-Professor under Professor.
func fig5Hierarchy() *Hierarchy {
	h := NewHierarchy()
	h.MustAddClass("Person", "")
	h.MustAddClass("Student", "Person")
	h.MustAddClass("Professor", "Person")
	h.MustAddClass("AsstProf", "Professor")
	h.Freeze()
	return h
}

// pathHierarchy is the degenerate chain of Lemma 4.3: one thick path, so
// rake-and-contract gives every class a 3-sided home.
func pathHierarchy(c int) *Hierarchy {
	h := NewHierarchy()
	for i := 0; i < c; i++ {
		parent := ""
		if i > 0 {
			parent = "p" + string(rune('0'+(i-1)/10)) + string(rune('0'+(i-1)%10))
		}
		h.MustAddClass("p"+string(rune('0'+i/10))+string(rune('0'+i%10)), parent)
	}
	h.Freeze()
	return h
}

// TestLabelClassReproducesFig5 checks the exact rational labels the paper
// computes in Fig 5: Person [0,1) with value 0, Student [1/3,2/3),
// Professor [2/3,1), Assistant Professor [5/6,1).
func TestLabelClassReproducesFig5(t *testing.T) {
	h := fig5Hierarchy()
	labels := h.LabelClass()
	want := map[string][2]*big.Rat{
		"Person":    {big.NewRat(0, 1), big.NewRat(1, 1)},
		"Student":   {big.NewRat(1, 3), big.NewRat(2, 3)},
		"Professor": {big.NewRat(2, 3), big.NewRat(1, 1)},
		"AsstProf":  {big.NewRat(5, 6), big.NewRat(1, 1)},
	}
	for name, w := range want {
		id, _ := h.Class(name)
		got := labels[id]
		if got.Value.Cmp(w[0]) != 0 || got.End.Cmp(w[1]) != 0 {
			t.Errorf("%s: got [%v,%v), want [%v,%v)", name, got.Value, got.End, w[0], w[1])
		}
	}
}

func TestSubtreeRangesNest(t *testing.T) {
	h := fig5Hierarchy()
	pLo, pHi := h.SubtreeRange(mustID(h, "Person"))
	fLo, fHi := h.SubtreeRange(mustID(h, "Professor"))
	aLo, aHi := h.SubtreeRange(mustID(h, "AsstProf"))
	if !(pLo <= fLo && fHi <= pHi) || !(fLo <= aLo && aHi <= fHi) {
		t.Fatalf("subtree ranges do not nest: P=[%d,%d) F=[%d,%d) A=[%d,%d)", pLo, pHi, fLo, fHi, aLo, aHi)
	}
	sLo, sHi := h.SubtreeRange(mustID(h, "Student"))
	if sLo < fHi && fLo < sHi {
		t.Fatal("sibling subtree ranges overlap")
	}
}

func mustID(h *Hierarchy, name string) int {
	id, ok := h.Class(name)
	if !ok {
		panic(name)
	}
	return id
}

// randomHierarchy builds a random forest with c classes.
func randomHierarchy(rng *rand.Rand, c int) *Hierarchy {
	h := NewHierarchy()
	names := make([]string, c)
	for i := 0; i < c; i++ {
		names[i] = "C" + string(rune('A'+i%26)) + string(rune('0'+i/26%10)) + string(rune('a'+i/260))
		parent := ""
		if i > 0 && rng.Intn(8) != 0 { // some extra roots
			parent = names[rng.Intn(i)]
		}
		h.MustAddClass(names[i], parent)
	}
	h.Freeze()
	return h
}

// Lemma 4.5: at most log2 c thin edges from any class to its root.
func TestThinEdgeBoundLemma45(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		c := 2 + rng.Intn(500)
		h := randomHierarchy(rng, c)
		limit := 0
		for v := 1; v < c; v *= 2 {
			limit++
		}
		for v := 0; v < c; v++ {
			if got := h.ThinEdgesToRoot(v); got > limit {
				t.Fatalf("c=%d class %d has %d thin edges, limit %d", c, v, got, limit)
			}
		}
	}
}

// Degenerate path hierarchy: exactly one thin edge count of zero.
func TestDegeneratePathAllThick(t *testing.T) {
	h := NewHierarchy()
	h.MustAddClass("c0", "")
	for i := 1; i < 40; i++ {
		h.MustAddClass("c"+itoa(i), "c"+itoa(i-1))
	}
	h.Freeze()
	last := mustID(h, "c39")
	if got := h.ThinEdgesToRoot(last); got != 0 {
		t.Fatalf("degenerate path has %d thin edges, want 0", got)
	}
	// Rake-and-contract must put the whole path into one 3-sided structure.
	rc := NewRakeContract(h, 4)
	if !rc.IsContracted(mustID(h, "c5")) {
		t.Fatal("path member not contracted")
	}
	if rc.Replication(last) > 2 {
		t.Fatalf("path leaf replicated %d times", rc.Replication(last))
	}
}

// --- cross-implementation correctness ---------------------------------------

type classIndex interface {
	Insert(Object)
	Query(c int, a1, a2 int64, emit EmitObject)
}

func queryIDs(idx classIndex, c int, a1, a2 int64) []uint64 {
	var ids []uint64
	idx.Query(c, a1, a2, func(_ int64, id uint64) bool {
		ids = append(ids, id)
		return true
	})
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func oracleIDs(h *Hierarchy, objs []Object, c int, a1, a2 int64) []uint64 {
	lo, hi := h.SubtreeRange(c)
	var ids []uint64
	for _, o := range objs {
		if p := h.Pre(o.Class); p >= lo && p < hi && o.Attr >= a1 && o.Attr <= a2 {
			ids = append(ids, o.ID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equalIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAllIndexesAgreeWithOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h := randomHierarchy(rng, 60)
	nObj, trials := 3000, 200
	if testing.Short() {
		nObj, trials = 1200, 80
	}
	objs := make([]Object, nObj)
	for i := range objs {
		objs[i] = Object{Class: rng.Intn(h.Len()), Attr: rng.Int63n(1000), ID: uint64(i)}
	}
	indexes := map[string]classIndex{
		"simple":     NewSimple(h, 8),
		"fullextent": NewFullExtent(h, 8),
		"filter":     NewSingleTreeFilter(h, 8),
		"extent":     NewExtentTrees(h, 8),
		"rake":       NewRakeContract(h, 8),
	}
	for name, idx := range indexes {
		for _, o := range objs {
			idx.Insert(o)
		}
		_ = name
	}
	for trial := 0; trial < trials; trial++ {
		c := rng.Intn(h.Len())
		a1 := rng.Int63n(1000)
		a2 := a1 + rng.Int63n(1000-a1+1)
		want := oracleIDs(h, objs, c, a1, a2)
		for name, idx := range indexes {
			if got := queryIDs(idx, c, a1, a2); !equalIDs(got, want) {
				t.Fatalf("%s: class %s [%d,%d]: got %d want %d", name, h.Name(c), a1, a2, len(got), len(want))
			}
		}
	}
}

func TestSimpleIndexDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := randomHierarchy(rng, 20)
	s := NewSimple(h, 4)
	var objs []Object
	for i := 0; i < 500; i++ {
		o := Object{Class: rng.Intn(h.Len()), Attr: rng.Int63n(100), ID: uint64(i)}
		s.Insert(o)
		objs = append(objs, o)
	}
	// Delete every third object.
	var kept []Object
	for i, o := range objs {
		if i%3 == 0 {
			if !s.Delete(o) {
				t.Fatalf("delete %v failed", o)
			}
		} else {
			kept = append(kept, o)
		}
	}
	if s.Delete(objs[0]) {
		t.Fatal("double delete succeeded")
	}
	for trial := 0; trial < 60; trial++ {
		c := rng.Intn(h.Len())
		want := oracleIDs(h, kept, c, 0, 99)
		if got := queryIDs(s, c, 0, 99); !equalIDs(got, want) {
			t.Fatalf("after deletes: class %d got %d want %d", c, len(got), len(want))
		}
	}
}

func TestFullExtentDelete(t *testing.T) {
	h := fig5Hierarchy()
	f := NewFullExtent(h, 4)
	o := Object{Class: mustID(h, "AsstProf"), Attr: 55, ID: 9}
	f.Insert(o)
	if got := queryIDs(f, mustID(h, "Person"), 0, 100); len(got) != 1 {
		t.Fatal("object not visible from root full extent")
	}
	if !f.Delete(o) || f.Delete(o) {
		t.Fatal("delete semantics")
	}
	if got := queryIDs(f, mustID(h, "Person"), 0, 100); len(got) != 0 {
		t.Fatal("object visible after delete")
	}
}

func TestRakeContractDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// A mix of shapes so both raked (B+-tree) and contracted (3-sided,
	// weak-delete) homes are exercised.
	for _, h := range []*Hierarchy{randomHierarchy(rng, 40), pathHierarchy(12), fig5Hierarchy()} {
		rc := NewRakeContract(h, 4)
		var objs []Object
		for i := 0; i < 600; i++ {
			o := Object{Class: rng.Intn(h.Len()), Attr: rng.Int63n(100), ID: uint64(i)}
			rc.Insert(o)
			objs = append(objs, o)
		}
		var kept []Object
		for i, o := range objs {
			if i%3 == 0 {
				if !rc.Delete(o) {
					t.Fatalf("delete %v failed", o)
				}
			} else {
				kept = append(kept, o)
			}
		}
		if rc.Delete(objs[0]) {
			t.Fatal("double delete succeeded")
		}
		if rc.Delete(Object{Class: 0, Attr: 12345, ID: 1 << 40}) {
			t.Fatal("delete of absent object succeeded")
		}
		if rc.Len() != len(kept) {
			t.Fatalf("Len=%d, want %d", rc.Len(), len(kept))
		}
		for trial := 0; trial < 60; trial++ {
			c := rng.Intn(h.Len())
			want := oracleIDs(h, kept, c, 0, 99)
			if got := queryIDs(rc, c, 0, 99); !equalIDs(got, want) {
				t.Fatalf("after deletes: class %d got %d want %d", c, len(got), len(want))
			}
		}
	}
}

// TestRakeContractMisclassedDelete pins the garbage-in behaviour all
// strategies share: deleting with an ancestor class touches the ancestor's
// structures (full extents nest, so the object is found there), but must
// never panic, and a subsequent correctly-classed delete still clears the
// remaining copies.
func TestRakeContractMisclassedDelete(t *testing.T) {
	h := fig5Hierarchy()
	rc := NewRakeContract(h, 4)
	o := Object{Class: mustID(h, "Student"), Attr: 20, ID: 2}
	rc.Insert(o)
	// Mis-classed delete via the ancestor: best-effort, no panic.
	rc.Delete(Object{Class: mustID(h, "Person"), Attr: 20, ID: 2})
	// The correctly-classed delete must clear what remains without panicking.
	rc.Delete(o)
	for _, cls := range []string{"Person", "Student"} {
		if got := queryIDs(rc, mustID(h, cls), 0, 100); len(got) != 0 {
			t.Fatalf("object still visible from %s after deletes: %v", cls, got)
		}
	}
}

// Replication bound of Theorem 4.7 via Lemma 4.6: no extent is duplicated
// more than log2 c + 1 times.
func TestRakeContractReplicationBound(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		c := 2 + rng.Intn(300)
		h := randomHierarchy(rng, c)
		rc := NewRakeContract(h, 4)
		limit := 1
		for v := 1; v < c; v *= 2 {
			limit++
		}
		for v := 0; v < c; v++ {
			if got := rc.Replication(v); got > limit {
				t.Fatalf("c=%d class %d replicated %d times, limit %d", c, v, got, limit)
			}
		}
	}
}

// Star hierarchy: c-1 leaves under a root; everything rakes to B+-trees.
func TestRakeContractStar(t *testing.T) {
	h := NewHierarchy()
	h.MustAddClass("root", "")
	leaves := []string{"l1", "l2", "l3", "l4", "l5", "l6", "l7"}
	for _, l := range leaves {
		h.MustAddClass(l, "root")
	}
	h.Freeze()
	rc := NewRakeContract(h, 4)
	rng := rand.New(rand.NewSource(5))
	var objs []Object
	for i := 0; i < 400; i++ {
		o := Object{Class: rng.Intn(h.Len()), Attr: rng.Int63n(200), ID: uint64(i)}
		rc.Insert(o)
		objs = append(objs, o)
	}
	for _, name := range append(leaves, "root") {
		c := mustID(h, name)
		want := oracleIDs(h, objs, c, 50, 150)
		if got := queryIDs(rc, c, 50, 150); !equalIDs(got, want) {
			t.Fatalf("star class %s: got %d want %d", name, len(got), len(want))
		}
	}
}

func TestRakeContractPropertyRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomHierarchy(rng, 2+rng.Intn(80))
		rc := NewRakeContract(h, 4+rng.Intn(4))
		var objs []Object
		for i := 0; i < 400; i++ {
			o := Object{Class: rng.Intn(h.Len()), Attr: rng.Int63n(120), ID: uint64(i)}
			rc.Insert(o)
			objs = append(objs, o)
		}
		for k := 0; k < 25; k++ {
			c := rng.Intn(h.Len())
			a1 := rng.Int63n(120)
			a2 := a1 + rng.Int63n(120-a1+1)
			if !equalIDs(queryIDs(rc, c, a1, a2), oracleIDs(h, objs, c, a1, a2)) {
				return false
			}
		}
		return true
	}
	// A fixed-seed Rand keeps the property deterministic: testing/quick's
	// default time-seeded generator made this test flaky (and, before the
	// threeside in-place-rebuild fix, occasionally non-terminating).
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(99))}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestRakeContractRebuildCascadeRegression replays the minimized workload
// that used to hang Insert: a two-class chain (one 3-sided home structure)
// at B=4, where a re-entrant maintenance cascade freed a metablock still
// referenced by an in-flight frame and the corrupted blob chain spun
// readBlob forever. The same point sequence is asserted at the threeside
// level in internal/threeside; here the original end-to-end reproduction
// (random hierarchy seed 348) runs through the class index and checks
// query correctness against the oracle.
func TestRakeContractRebuildCascadeRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(348))
	h := randomHierarchy(rng, 2)
	rc := NewRakeContract(h, 4)
	var objs []Object
	for i := 0; i < 200; i++ {
		o := Object{Class: rng.Intn(h.Len()), Attr: rng.Int63n(120), ID: uint64(i)}
		rc.Insert(o)
		objs = append(objs, o)
	}
	for c := 0; c < h.Len(); c++ {
		for _, r := range [][2]int64{{0, 119}, {30, 90}, {70, 71}} {
			want := oracleIDs(h, objs, c, r[0], r[1])
			if got := queryIDs(rc, c, r[0], r[1]); !equalIDs(got, want) {
				t.Fatalf("class %d [%d,%d]: got %d ids, want %d", c, r[0], r[1], len(got), len(want))
			}
		}
	}
}

// Space comparison (the Theorem 2.6 discussion): simple index uses a log2 c
// factor, full-extent replication a depth factor; on a deep caterpillar the
// rake-and-contract index must beat full-extent replication.
func TestSpaceCaterpillar(t *testing.T) {
	h := NewHierarchy()
	h.MustAddClass("s0", "")
	depth := 60
	for i := 1; i < depth; i++ {
		spine := "s" + itoa(i)
		h.MustAddClass(spine, "s"+itoa(i-1))
		h.MustAddClass("leaf"+itoa(i), "s"+itoa(i-1))
	}
	h.Freeze()
	rng := rand.New(rand.NewSource(6))
	rc := NewRakeContract(h, 8)
	fe := NewFullExtent(h, 8)
	nObj := 4000
	if testing.Short() {
		nObj = 1500
	}
	for i := 0; i < nObj; i++ {
		o := Object{Class: rng.Intn(h.Len()), Attr: rng.Int63n(10000), ID: uint64(i)}
		rc.Insert(o)
		fe.Insert(o)
	}
	rcSpace, feSpace := rc.SpaceBlocks(), fe.SpaceBlocks()
	t.Logf("caterpillar depth %d: rake-contract %d blocks, full-extent %d blocks", depth, rcSpace, feSpace)
	if rcSpace >= feSpace {
		t.Fatalf("rake-contract (%d) should use less space than full extents (%d) on a deep hierarchy", rcSpace, feSpace)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestHierarchyErrors(t *testing.T) {
	h := NewHierarchy()
	h.MustAddClass("a", "")
	if _, err := h.AddClass("a", ""); err == nil {
		t.Fatal("duplicate class accepted")
	}
	if _, err := h.AddClass("b", "zzz"); err == nil {
		t.Fatal("unknown parent accepted")
	}
	h.Freeze()
	if _, err := h.AddClass("c", "a"); err == nil {
		t.Fatal("AddClass after freeze accepted")
	}
}
