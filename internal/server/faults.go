package server

// HTTP-layer fault injection: the network half of the fault model (the
// disk half is disk.FaultDevice). A Faults wraps a handler and, per
// request, may inject latency, a transient 500, or a dropped connection —
// each drawn from one deterministic seeded stream, so a test run with a
// fixed seed sees the same fault schedule every time (wall-clock sleeps
// aside). This is what the router's retry/hedging/breaker tests and the
// kill/restart oracle drive against.

import (
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FaultConfig tunes HTTP fault injection.
type FaultConfig struct {
	// Latency (plus a uniform extra in [0, Jitter)) delays every non-exempt
	// request before it reaches the handler.
	Latency time.Duration
	Jitter  time.Duration
	// ErrorProb is the per-request probability of a transient 500 (with
	// Retry-After, like a real overload shed) instead of a real answer.
	ErrorProb float64
	// DropProb is the per-request probability of the connection being
	// severed mid-flight with no response — the client sees EOF / reset.
	DropProb float64
	// Seed makes the fault schedule deterministic (default 1).
	Seed int64
	// Exempt lists path prefixes that bypass injection (e.g. "/healthz" so
	// liveness stays truthful while the data path misbehaves).
	Exempt []string
}

// Faults is an armed fault injector; wrap handlers with Wrap.
type Faults struct {
	cfg FaultConfig

	mu  sync.Mutex
	rng *rand.Rand

	delayed atomic.Int64
	errors  atomic.Int64
	drops   atomic.Int64
}

// NewFaults builds an injector from cfg.
func NewFaults(cfg FaultConfig) *Faults {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Faults{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// WithFaults wraps h with fault injection per cfg — the one-call form.
func WithFaults(h http.Handler, cfg FaultConfig) http.Handler {
	return NewFaults(cfg).Wrap(h)
}

// Counts returns how many requests were delayed, failed with an injected
// 500, and dropped.
func (f *Faults) Counts() (delayed, errors, drops int64) {
	return f.delayed.Load(), f.errors.Load(), f.drops.Load()
}

// draw samples this request's fault decisions in one locked step, keeping
// the stream deterministic under concurrency-independent ordering per
// request (concurrent requests still interleave draws; tests that need a
// fully fixed schedule serialize their requests).
func (f *Faults) draw() (delay time.Duration, fail, drop bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delay = f.cfg.Latency
	if f.cfg.Jitter > 0 {
		delay += time.Duration(f.rng.Int63n(int64(f.cfg.Jitter)))
	}
	if f.cfg.DropProb > 0 && f.rng.Float64() < f.cfg.DropProb {
		drop = true
	}
	if f.cfg.ErrorProb > 0 && f.rng.Float64() < f.cfg.ErrorProb {
		fail = true
	}
	return delay, fail, drop
}

// Wrap returns h with fault injection in front of it.
func (f *Faults) Wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		for _, p := range f.cfg.Exempt {
			if strings.HasPrefix(r.URL.Path, p) {
				h.ServeHTTP(w, r)
				return
			}
		}
		delay, fail, drop := f.draw()
		if delay > 0 {
			f.delayed.Add(1)
			time.Sleep(delay)
		}
		if drop {
			f.drops.Add(1)
			// ErrAbortHandler severs the connection with no response — the
			// stdlib's sanctioned way to simulate a mid-flight network cut.
			panic(http.ErrAbortHandler)
		}
		if fail {
			f.errors.Add(1)
			w.Header().Set("Retry-After", retryAfterShed)
			http.Error(w, "injected transient fault", http.StatusInternalServerError)
			return
		}
		h.ServeHTTP(w, r)
	})
}
