package server

// Primary-side replication serving: the snapshot + logical-WAL endpoints a
// replica hydrates from, and the readiness surface routers steer by.
//
// The consistency argument, end to end:
//
//  1. Every acknowledged mutation appends to the replication log while the
//     handler still holds the read side of ckptMu (see the handlers in
//     server.go), so "applied to the backend" and "visible in the log" are
//     one atomic step with respect to the snapshot.
//  2. /v1/snapshot takes the WRITE side of ckptMu, checkpoints the backend
//     and captures the log head L plus a staged copy of the image while no
//     mutation can be in flight: the shipped image is exactly the state
//     after ops 1..L. The lock is released before the stream starts.
//  3. A replica restores the image and tails /v1/wal?from=L+1, applying
//     ops in LSN order; it therefore walks the same state sequence as the
//     primary, shifted by its lag.
//  4. LSNs are only comparable within one epoch (a random token minted at
//     server start). A primary restart mints a new epoch, so a replica can
//     never misapply a new process's log on an old process's image.
//
// Mutations racing a snapshot's capture phase shed with 503 + Retry-After
// rather than queueing behind it — the same contract as a long checkpoint.
// The file ship itself happens off-lock, so a slow replica client costs a
// connection, never mutation availability.

import (
	"archive/tar"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"os"
	"path/filepath"
	"strconv"

	"ccidx/internal/replication"
)

// retryAfterShed is the Retry-After value (delta-seconds) stamped on every
// 503: admission sheds clear in well under a second, so 1s is the smallest
// honest integer backoff.
const retryAfterShed = "1"

// errReadOnly rejects mutations on a read replica (403).
var errReadOnly = errors.New("server: read-only")

// walMaxOps caps one /v1/wal response; a far-behind replica catches up
// over several polls instead of one giant document.
const walMaxOps = 4096

// newEpoch mints the server's mutation-history identity.
func newEpoch() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Errorf("server: minting epoch: %w", err))
	}
	return hex.EncodeToString(b[:])
}

// mutable rejects the mutation endpoints on a read-only (replica) server.
func (s *Server) mutable() error {
	if s.cfg.ReadOnly {
		return errReadOnly
	}
	return nil
}

// logRep acknowledges one applied mutation into the replication log (no-op
// when replication is off). Callers hold ckptMu's read side.
func (s *Server) logRep(op replication.Op) {
	if s.rep != nil {
		s.rep.append(op)
	}
}

// status returns the readiness document: the injected provider (replica
// mode) or the primary's own view.
func (s *Server) status() replication.Status {
	if s.cfg.Status != nil {
		return s.cfg.Status()
	}
	st := replication.Status{Ready: true, Role: "primary", Epoch: s.epoch}
	if s.b.Intervals.Durable() {
		st.Gen = s.b.Intervals.Seq()
	}
	if s.rep != nil {
		st.LSN = s.rep.headLSN()
	}
	return st
}

// stamp writes the answering node's replication coordinates on a response;
// the read router's generation check reads them back.
func (s *Server) stamp(w http.ResponseWriter) {
	st := s.status()
	h := w.Header()
	h.Set(replication.HeaderEpoch, st.Epoch)
	h.Set(replication.HeaderLSN, strconv.FormatUint(st.LSN, 10))
}

// handleReady serves the readiness document: 200 when ready, 503 (with
// Retry-After) when not. Liveness stays on /healthz.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	st := s.status()
	s.stamp(w)
	w.Header().Set("Content-Type", "application/json")
	if !st.Ready {
		w.Header().Set("Retry-After", retryAfterShed)
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(st)
}

// bare is the spine for the replication endpoints: method check and panic
// conversion like guard, but NO admission control or deadline — see
// buildMux for why they must not be shed.
func (s *Server) bare(method string, h func(ctx context.Context, w http.ResponseWriter, r *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		s.stamp(w)
		if err := s.safeHandle(h, r.Context(), w, r); err != nil {
			var g goneError
			switch {
			case errors.As(err, &g):
				http.Error(w, err.Error(), http.StatusGone)
			case errors.Is(err, errBadRequest):
				http.Error(w, err.Error(), http.StatusBadRequest)
			default:
				s.m.errors.Inc()
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		}
	}
}

// goneError maps to 410: the requested log position has been evicted and
// the replica must re-hydrate from a snapshot.
type goneError struct{ from, base uint64 }

func (g goneError) Error() string {
	return fmt.Sprintf("wal position %d not retained (log base %d): re-hydrate from /v1/snapshot", g.from, g.base)
}

// handleWAL serves the retained replication-log tail from the requested
// LSN.
func (s *Server) handleWAL(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	from, err := qInt(r, "from")
	if err != nil {
		return err
	}
	if from < 1 {
		return badRequestf("from %d < 1", from)
	}
	ops, head, base, ok := s.rep.from(uint64(from), walMaxOps)
	if !ok {
		return goneError{from: uint64(from), base: base}
	}
	return writeJSON(w, replication.WALResponse{
		Epoch: s.epoch, From: uint64(from), Head: head, Ops: ops,
	})
}

// handleSnapshot ships the latest checkpoint image as a tar stream,
// preceded by a SNAPMETA.json entry carrying the (epoch, lsn, seq) the
// image corresponds to. The mutation write-lock is held only while
// checkpointing and staging a private copy of the image — NOT while
// streaming: the stream runs at the replica client's pace on a connection
// with no deadline, and a slow or stalled client must not block mutations
// for longer than the disk-speed capture (they shed 503 + Retry-After
// meanwhile); queries are unaffected throughout.
func (s *Server) handleSnapshot(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	stage, meta, err := s.captureSnapshot()
	if err != nil {
		return err
	}
	defer os.RemoveAll(stage)
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	w.Header().Set("Content-Type", "application/x-tar")
	w.Header().Set(replication.HeaderLSN, strconv.FormatUint(meta.LSN, 10))
	tw := tar.NewWriter(w)
	if err := writeTarFile(tw, replication.SnapshotMetaName, metaJSON); err != nil {
		return nil // client gone mid-stream; nothing coherent left to send
	}
	werr := filepath.WalkDir(stage, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(stage, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return writeTarFile(tw, filepath.ToSlash(rel), data)
	})
	if werr != nil {
		// Headers are already written; aborting the stream is the only way
		// to signal failure. The replica's untar detects the truncation.
		panic(http.ErrAbortHandler)
	}
	_ = tw.Close()
	return nil
}

// captureSnapshot checkpoints the backend under the mutation write-lock
// and copies the committed checkpoint directory into a fresh staging
// directory, returning its path and the (epoch, lsn, seq) coordinates the
// image corresponds to — all while no mutation can be in flight, so the
// staged image is exactly the state after ops 1..LSN. The caller owns
// (and must remove) the staging directory.
func (s *Server) captureSnapshot() (stage string, meta replication.SnapshotMeta, err error) {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	if err := s.b.Intervals.Checkpoint(); err != nil {
		return "", meta, fmt.Errorf("snapshot checkpoint: %w", err)
	}
	meta = replication.SnapshotMeta{
		Epoch: s.epoch,
		LSN:   s.rep.headLSN(),
		Seq:   s.b.Intervals.Seq(),
	}
	stage, err = os.MkdirTemp("", "ccidx-snapshot-")
	if err != nil {
		return "", meta, err
	}
	dir := s.b.Intervals.Dir()
	err = filepath.WalkDir(dir, func(path string, d fs.DirEntry, werr error) error {
		if werr != nil {
			return werr
		}
		rel, rerr := filepath.Rel(dir, path)
		if rerr != nil {
			return rerr
		}
		dst := filepath.Join(stage, rel)
		if d.IsDir() {
			return os.MkdirAll(dst, 0o755)
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		return os.WriteFile(dst, data, 0o644)
	})
	if err != nil {
		os.RemoveAll(stage)
		return "", meta, fmt.Errorf("snapshot stage: %w", err)
	}
	return stage, meta, nil
}

func writeTarFile(tw *tar.Writer, name string, data []byte) error {
	if err := tw.WriteHeader(&tar.Header{
		Name: name, Mode: 0o644, Size: int64(len(data)), Typeflag: tar.TypeReg,
	}); err != nil {
		return err
	}
	_, err := tw.Write(data)
	return err
}
