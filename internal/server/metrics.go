package server

// Hand-rolled metrics with Prometheus text exposition — counters, callback
// gauges and bucketed histograms — so the serving front-end ships a
// /metrics endpoint without any dependency beyond the standard library.
// The histogram buckets double per step, which is what the two measured
// quantities want: request latency (sub-50µs pool hits through multi-ms
// batched traversals) and batch size (1..MaxBatch, powers of two).

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// counter is a monotonically increasing metric.
type counter struct {
	name string
	help string
	v    atomic.Int64
}

func (c *counter) Add(n int64) { c.v.Add(n) }
func (c *counter) Inc()        { c.v.Add(1) }
func (c *counter) Load() int64 { return c.v.Load() }

// gauge reports a point-in-time value through a callback, so backend state
// (interval count, pool hit rate, checkpoint seq) is read at scrape time
// instead of being pushed on every mutation.
type gauge struct {
	name string
	help string
	fn   func() float64
}

// histogram is a fixed-bucket distribution. Buckets are cumulative at
// exposition time (Prometheus convention); observation is a single atomic
// increment on the first bucket whose upper bound holds the value.
type histogram struct {
	name   string
	help   string
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(name, help string, bounds []float64) *histogram {
	return &histogram{name: name, help: help, bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// expBuckets returns n upper bounds start, 2*start, 4*start, ...
func expBuckets(start float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}

func (h *histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the owning bucket — the standard Prometheus histogram_quantile
// estimate. Returns 0 with no observations; values in the overflow bucket
// clamp to the last finite bound.
func (h *histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if float64(cum)+float64(c) >= rank {
			if i == len(h.bounds) { // overflow bucket
				return h.bounds[len(h.bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			if c == 0 {
				return h.bounds[i]
			}
			frac := (rank - float64(cum)) / float64(c)
			return lower + (h.bounds[i]-lower)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// Mean returns the arithmetic mean of all observations (0 when empty).
func (h *histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return math.Float64frombits(h.sum.Load()) / float64(n)
}

func (h *histogram) Count() int64 { return h.count.Load() }

// metrics is the server's registry. Construction wires every metric the
// DESIGN.md catalog lists; Backend-derived gauges are attached by the
// server once it knows its backends.
type metrics struct {
	mu     sync.Mutex
	ctrs   []*counter
	gauges []*gauge
	hists  []*histogram

	requests *counter // by (endpoint, code) would need labels; totals suffice here
	shed     *counter
	timeouts *counter
	errors   *counter
	corrupt  *counter

	batches   *histogram // batch sizes actually dispatched
	latency   *histogram // end-to-end request seconds
	batchWait *histogram // time a request waited for its batch window
}

func newMetrics() *metrics {
	m := &metrics{}
	m.requests = m.counter("ccidx_requests_total", "Requests accepted (admitted past load shedding).")
	m.shed = m.counter("ccidx_shed_total", "Requests rejected by admission control (503).")
	m.timeouts = m.counter("ccidx_timeouts_total", "Requests that exceeded their deadline (504).")
	m.errors = m.counter("ccidx_errors_total", "Requests that failed with a client or server error.")
	m.corrupt = m.counter("ccidx_corrupt_pages_total", "Requests that hit a page failing CRC verification (detected media corruption).")
	m.batches = m.histogram("ccidx_batch_size", "Coalesced batch sizes per dispatch.", expBuckets(1, 12))
	m.latency = m.histogram("ccidx_request_seconds", "End-to-end request latency.", expBuckets(50e-6, 20))
	m.batchWait = m.histogram("ccidx_batch_wait_seconds", "Time spent waiting for the batch window.", expBuckets(25e-6, 16))
	return m
}

func (m *metrics) counter(name, help string) *counter {
	c := &counter{name: name, help: help}
	m.mu.Lock()
	m.ctrs = append(m.ctrs, c)
	m.mu.Unlock()
	return c
}

func (m *metrics) gaugeFunc(name, help string, fn func() float64) {
	m.mu.Lock()
	m.gauges = append(m.gauges, &gauge{name: name, help: help, fn: fn})
	m.mu.Unlock()
}

func (m *metrics) histogram(name, help string, bounds []float64) *histogram {
	h := newHistogram(name, help, bounds)
	m.mu.Lock()
	m.hists = append(m.hists, h)
	m.mu.Unlock()
	return h
}

// render writes the Prometheus text exposition format (version 0.0.4).
func (m *metrics) render(w io.Writer) {
	m.mu.Lock()
	ctrs := append([]*counter(nil), m.ctrs...)
	gauges := append([]*gauge(nil), m.gauges...)
	hists := append([]*histogram(nil), m.hists...)
	m.mu.Unlock()
	for _, c := range ctrs {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.Load())
	}
	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", g.name, g.help, g.name, g.name, g.fn())
	}
	for _, h := range hists {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
		var cum int64
		for i, ub := range h.bounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", h.name, ub, cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
		fmt.Fprintf(w, "%s_sum %g\n", h.name, math.Float64frombits(h.sum.Load()))
		fmt.Fprintf(w, "%s_count %d\n", h.name, h.count.Load())
	}
}
