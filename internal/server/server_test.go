package server

// Server tests. The load-bearing one is the batch-equals-sequential oracle
// THROUGH the HTTP path with batching enabled: concurrent clients must get
// byte-identical answers to sequential backend calls even while the
// auto-batcher coalesces them into shared traversals (the PR's acceptance
// criterion). The rest pin shedding, timeouts, coalescing, bad-request
// handling, mutation visibility, checkpointing, and the metrics surface.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"ccidx/internal/classindex"
	"ccidx/internal/geom"
	"ccidx/internal/intervals"
	"ccidx/internal/shard"
	"ccidx/internal/workload"
)

const testSpan = int64(4000)

func newTestBackend(t *testing.T) Backend {
	t.Helper()
	ivs := workload.UniformIntervals(41, 600, testSpan, 300)
	im := shard.NewIntervals(shard.Config{
		Shards: 4, B: 8, Batch: 32,
		Partition: shard.PartitionRange, Span: testSpan, PoolFrames: -1,
	}, ivs[:400])
	for _, iv := range ivs[400:] {
		im.Insert(iv) // leave a populated pending buffer behind the index
	}
	h := workload.RandomHierarchy(47, 12)
	cs := shard.NewClasses(shard.Config{
		Shards: 3, B: 8, Batch: 64,
		Partition: shard.PartitionRange, Span: testSpan, PoolFrames: -1,
	}, h, func() shard.ClassIndex { return classindex.NewSimple(h, 8) })
	for _, o := range workload.Objects(53, h, 400, testSpan) {
		cs.Insert(o)
	}
	return Backend{Intervals: im, Classes: cs}
}

func newTestServer(t *testing.T, b Backend, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
}

func postStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

func sortRows(rows []ivRow) {
	sort.Slice(rows, func(a, b int) bool { return rows[a].ID < rows[b].ID })
}

func sortPairs(rows []attrPair) {
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].ID != rows[b].ID {
			return rows[a].ID < rows[b].ID
		}
		return rows[a].Attr < rows[b].Attr
	})
}

func seqStab(b Backend, q int64) []ivRow {
	var out []geom.Interval
	b.Intervals.Stab(q, func(iv geom.Interval) bool { out = append(out, iv); return true })
	rows := ivRows(out)
	sortRows(rows)
	return rows
}

func seqIntersect(b Backend, q geom.Interval) []ivRow {
	var out []geom.Interval
	b.Intervals.Intersect(q, func(iv geom.Interval) bool { out = append(out, iv); return true })
	rows := ivRows(out)
	sortRows(rows)
	return rows
}

func seqClass(b Backend, q shard.ClassQuery) []attrPair {
	out := []attrPair{}
	b.Classes.Query(q.Class, q.A1, q.A2, func(attr int64, id uint64) bool {
		out = append(out, attrPair{attr, id})
		return true
	})
	sortPairs(out)
	return out
}

// TestServerBatchEqualsSequential is the serving-path oracle: many
// concurrent clients with batching ON, every HTTP answer compared to the
// sequential backend call for the same query.
func TestServerBatchEqualsSequential(t *testing.T) {
	b := newTestBackend(t)
	_, ts := newTestServer(t, b, Config{MaxWait: 500 * time.Microsecond})

	const clients = 8
	const perClient = 40
	h := workload.RandomHierarchy(47, 12) // same seed as backend: identical shape
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				x := int64((c*perClient+i)*31) % testSpan
				switch i % 3 {
				case 0:
					var got []ivRow
					getJSON(t, fmt.Sprintf("%s/v1/stab?q=%d", ts.URL, x), &got)
					sortRows(got)
					want := seqStab(b, x)
					if !rowsEqual(got, want) {
						errs <- fmt.Errorf("stab(%d): got %d rows, want %d", x, len(got), len(want))
						return
					}
				case 1:
					q := geom.Interval{Lo: x, Hi: x + 200}
					var got []ivRow
					getJSON(t, fmt.Sprintf("%s/v1/intersect?lo=%d&hi=%d", ts.URL, q.Lo, q.Hi), &got)
					sortRows(got)
					want := seqIntersect(b, q)
					if !rowsEqual(got, want) {
						errs <- fmt.Errorf("intersect(%v): got %d rows, want %d", q, len(got), len(want))
						return
					}
				default:
					cq := shard.ClassQuery{Class: (c + i) % h.Len(), A1: 0, A2: x}
					var got []attrPair
					getJSON(t, fmt.Sprintf("%s/v1/class?class=%d&a1=%d&a2=%d", ts.URL, cq.Class, cq.A1, cq.A2), &got)
					sortPairs(got)
					want := seqClass(b, cq)
					if !pairsEqual(got, want) {
						errs <- fmt.Errorf("class(%+v): got %d rows, want %d", cq, len(got), len(want))
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func rowsEqual(a, b []ivRow) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func pairsEqual(a, b []attrPair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestServerCoalesces: a concurrent burst must dispatch in fewer batches
// than requests — even at zero adaptive window the dispatcher sweeps the
// queue, so coalescing needs no timing luck.
func TestServerCoalesces(t *testing.T) {
	b := newTestBackend(t)
	s, ts := newTestServer(t, b, Config{MaxWait: 2 * time.Millisecond})

	const n = 200
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var got []ivRow
			getJSON(t, fmt.Sprintf("%s/v1/stab?q=%d", ts.URL, int64(i*17)%testSpan), &got)
		}(i)
	}
	wg.Wait()
	if s.BatchCount() >= n {
		t.Fatalf("no coalescing: %d batches for %d requests", s.BatchCount(), n)
	}
	if s.BatchMean() <= 1.0 {
		t.Fatalf("batch mean %.2f, want > 1 under a %d-way concurrent burst", s.BatchMean(), n)
	}
	t.Logf("batches=%d mean=%.1f for %d requests", s.BatchCount(), s.BatchMean(), n)
}

// TestServerSheds: with the admission semaphore already full, the next
// request is rejected 503 and counted, not queued.
func TestServerSheds(t *testing.T) {
	b := newTestBackend(t)
	s, ts := newTestServer(t, b, Config{MaxInFlight: 1})

	s.admit <- struct{}{} // occupy the only slot
	resp, err := http.Get(ts.URL + "/v1/stab?q=100")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	<-s.admit
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if s.ShedCount() != 1 {
		t.Fatalf("shed counter %d, want 1", s.ShedCount())
	}
	// Slot free again: the same request now succeeds.
	var got []ivRow
	getJSON(t, ts.URL+"/v1/stab?q=100", &got)
}

// TestServerTimeout: an already-expired deadline surfaces as 504 and the
// timeout counter moves.
func TestServerTimeout(t *testing.T) {
	b := newTestBackend(t)
	_, ts := newTestServer(t, b, Config{RequestTimeout: time.Nanosecond})

	resp, err := http.Get(ts.URL + "/v1/stab?q=100")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
}

// TestServerBadRequests: malformed queries are 400s, never 500s, and never
// reach the backend.
func TestServerBadRequests(t *testing.T) {
	b := newTestBackend(t)
	_, ts := newTestServer(t, b, Config{})

	cases := []string{
		"/v1/stab",                    // missing q
		"/v1/stab?q=notanumber",       // unparsable
		"/v1/intersect?lo=5&hi=1",     // inverted
		"/v1/intersect?lo=5",          // missing hi
		"/v1/class?class=0&a1=9&a2=1", // inverted attr range
		"/v1/class?class=x&a1=0&a2=1", // unparsable class
	}
	for _, path := range cases {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", path, resp.StatusCode)
		}
	}
	if code := postStatus(t, ts.URL+"/v1/insert?lo=5&hi=1&id=9"); code != http.StatusBadRequest {
		t.Errorf("inverted insert: status %d, want 400", code)
	}
	// Wrong method.
	if code := postStatus(t, ts.URL+"/v1/stab?q=1"); code != http.StatusMethodNotAllowed {
		t.Errorf("POST to stab: status %d, want 405", code)
	}
}

// TestServerMutations: inserts and deletes through the HTTP path are
// immediately visible to queries through the HTTP path.
func TestServerMutations(t *testing.T) {
	b := newTestBackend(t)
	_, ts := newTestServer(t, b, Config{})

	if code := postStatus(t, ts.URL+"/v1/insert?lo=100&hi=110&id=999999"); code != http.StatusOK {
		t.Fatalf("insert: status %d", code)
	}
	var got []ivRow
	getJSON(t, ts.URL+"/v1/stab?q=105", &got)
	found := false
	for _, r := range got {
		if r.ID == 999999 {
			found = true
		}
	}
	if !found {
		t.Fatal("inserted interval not visible to stab")
	}
	if code := postStatus(t, ts.URL+"/v1/delete?id=999999"); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	if code := postStatus(t, ts.URL+"/v1/flush"); code != http.StatusOK {
		t.Fatalf("flush: status %d", code)
	}
	got = nil
	getJSON(t, ts.URL+"/v1/stab?q=105", &got)
	for _, r := range got {
		if r.ID == 999999 {
			t.Fatal("deleted interval still visible to stab")
		}
	}
}

// TestServerCheckpoint: 400 on an in-memory backend; on a durable backend
// the checkpoint succeeds and bumps the superblock sequence.
func TestServerCheckpoint(t *testing.T) {
	b := newTestBackend(t)
	_, ts := newTestServer(t, b, Config{})
	if code := postStatus(t, ts.URL+"/v1/checkpoint"); code != http.StatusBadRequest {
		t.Fatalf("in-memory checkpoint: status %d, want 400", code)
	}

	dir := t.TempDir()
	ivs := workload.UniformIntervals(61, 200, testSpan, 250)
	dm, err := shard.CreateIntervalsAt(dir, shard.Config{
		Shards: 2, B: 8, Batch: 16,
		Partition: shard.PartitionRange, Span: testSpan, PoolFrames: 32,
	}, ivs, intervals.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer dm.Close()
	_, dts := newTestServer(t, Backend{Intervals: dm}, Config{})
	seq0 := dm.Seq()
	if code := postStatus(t, dts.URL+"/v1/insert?lo=1&hi=2&id=777"); code != http.StatusOK {
		t.Fatalf("durable insert: status %d", code)
	}
	if code := postStatus(t, dts.URL+"/v1/checkpoint"); code != http.StatusOK {
		t.Fatalf("durable checkpoint: status %d", code)
	}
	if dm.Seq() != seq0+1 {
		t.Fatalf("seq %d after checkpoint, want %d", dm.Seq(), seq0+1)
	}
}

// TestServerStatsAndMetrics: both observability surfaces render and carry
// the counters the load generator depends on.
func TestServerStatsAndMetrics(t *testing.T) {
	b := newTestBackend(t)
	_, ts := newTestServer(t, b, Config{})

	for i := 0; i < 10; i++ {
		var got []ivRow
		getJSON(t, fmt.Sprintf("%s/v1/stab?q=%d", ts.URL, i*100), &got)
	}
	var st statsDoc
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Requests < 10 {
		t.Fatalf("stats requests %d, want >= 10", st.Requests)
	}
	if st.Intervals != b.Intervals.Len() {
		t.Fatalf("stats intervals %d, want %d", st.Intervals, b.Intervals.Len())
	}
	if st.Batches == 0 || st.LatencyP50 <= 0 {
		t.Fatalf("stats missing batch/latency data: %+v", st)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"ccidx_requests_total", "ccidx_shed_total", "ccidx_timeouts_total",
		"ccidx_batch_size_bucket", "ccidx_request_seconds_bucket",
		"ccidx_intervals", "ccidx_pool_hit_rate", "ccidx_rebuilds_total",
		"ccidx_request_seconds_sum", "ccidx_request_seconds_count",
		`le="+Inf"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestServerBatchingDisabled: the control arm answers identically with no
// batch dispatches at all.
func TestServerBatchingDisabled(t *testing.T) {
	b := newTestBackend(t)
	s, ts := newTestServer(t, b, Config{DisableBatching: true})

	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			x := int64(i*37) % testSpan
			var got []ivRow
			getJSON(t, fmt.Sprintf("%s/v1/stab?q=%d", ts.URL, x), &got)
			sortRows(got)
			want := seqStab(b, x)
			if !rowsEqual(got, want) {
				t.Errorf("stab(%d) with batching off: got %d rows, want %d", x, len(got), len(want))
			}
		}(i)
	}
	wg.Wait()
	if s.BatchCount() != 0 {
		t.Fatalf("batching disabled but %d batches dispatched", s.BatchCount())
	}
}

// TestBatcherPanicRecovery: a panicking backend fails the one batch with an
// error but leaves the dispatcher alive for the next request.
func TestBatcherPanicRecovery(t *testing.T) {
	m := newMetrics()
	calls := 0
	bt := newBatcher(8, time.Millisecond, m, func(qs []int) ([]int, error) {
		calls++
		if calls == 1 {
			panic("injected")
		}
		out := make([]int, len(qs))
		for i, q := range qs {
			out[i] = q * 2
		}
		return out, nil
	})
	defer bt.close()
	ctx := contextWithTimeout(t)
	if _, err := bt.do(ctx, 1); err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("panic not surfaced as error: %v", err)
	}
	got, err := bt.do(ctx, 21)
	if err != nil || got != 42 {
		t.Fatalf("dispatcher dead after panic: %v %v", got, err)
	}
}

// TestBatcherLengthMismatch: a backend returning the wrong result count is
// an error, not a misrouted answer.
func TestBatcherLengthMismatch(t *testing.T) {
	m := newMetrics()
	bt := newBatcher(8, time.Millisecond, m, func(qs []int) ([]int, error) {
		return make([]int, len(qs)+1), nil
	})
	defer bt.close()
	if _, err := bt.do(contextWithTimeout(t), 1); err == nil {
		t.Fatal("length mismatch accepted silently")
	}
}

func contextWithTimeout(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestHistogramQuantile pins the interpolation math the stats endpoint and
// E22 report from.
func TestHistogramQuantile(t *testing.T) {
	h := newHistogram("t", "t", []float64{1, 2, 4, 8})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in (1,2]
	}
	q := h.Quantile(0.5)
	if q < 1 || q > 2 {
		t.Fatalf("p50 %v outside owning bucket (1,2]", q)
	}
	h2 := newHistogram("t2", "t2", []float64{1, 2})
	h2.Observe(100) // overflow bucket
	if got := h2.Quantile(0.99); got != 2 {
		t.Fatalf("overflow quantile %v, want clamp to 2", got)
	}
	if h2.Mean() != 100 {
		t.Fatalf("mean %v, want 100", h2.Mean())
	}
}
