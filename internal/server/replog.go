package server

// repLog is the primary's in-memory replication log: a bounded tail of
// acknowledged mutations, stamped with dense logical LSNs that never reset
// for the life of the process. It is deliberately NOT the per-shard disk
// WAL: those logs truncate at every checkpoint (their records' effects move
// into the checkpoint image), while a replica needs a stream whose
// coordinates survive checkpoints. The coupling invariant is instead
// provided by the snapshot endpoint, which records the log head it
// captured while holding the mutation lock — so "snapshot at LSN L, then
// tail from L+1" always converges.
//
// The log is bounded (cap ops); a reader that has fallen behind the
// retained base must re-hydrate from a fresh snapshot. Appends happen
// under the server's checkpoint read-lock at the moment a mutation is
// acknowledged, which is what makes the snapshot's (image, LSN) pair
// consistent: the snapshot holds the write side, so no mutation is
// mid-append while it captures the head.

import (
	"sync"

	"ccidx/internal/replication"
)

type repLog struct {
	mu   sync.Mutex
	cap  int
	base uint64 // LSN of ops[0]; retained LSNs are [base, base+len(ops))
	ops  []replication.Op
	head uint64 // last assigned LSN (0 before the first append)
}

func newRepLog(capacity int) *repLog {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &repLog{cap: capacity, base: 1}
}

// append acknowledges one mutation, assigning it the next LSN. The oldest
// ops are evicted once the retained tail exceeds the capacity.
func (l *repLog) append(op replication.Op) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.head++
	l.ops = append(l.ops, op)
	if len(l.ops) > l.cap {
		drop := len(l.ops) - l.cap
		l.base += uint64(drop)
		// Copy down instead of re-slicing so the evicted prefix is released
		// rather than pinned by the backing array.
		n := copy(l.ops, l.ops[drop:])
		l.ops = l.ops[:n]
	}
	return l.head
}

// headLSN returns the last assigned LSN.
func (l *repLog) headLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.head
}

// from returns up to max retained ops with LSN >= from, plus the current
// head and retained base (so a rejected reader can be told how far off the
// log it fell). ok is false when from predates the retained base — the
// caller has fallen off the log and must re-hydrate. A from beyond head+1
// is also rejected: it claims a position this log never assigned.
func (l *repLog) from(from uint64, max int) (ops []replication.Op, head, base uint64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < l.base || from > l.head+1 {
		return nil, l.head, l.base, false
	}
	i := int(from - l.base)
	n := len(l.ops) - i
	if n > max {
		n = max
	}
	if n > 0 {
		ops = make([]replication.Op, n)
		copy(ops, l.ops[i:i+n])
	}
	return ops, l.head, l.base, true
}
