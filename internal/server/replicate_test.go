package server

// Tests for the primary-side replication surface: the bounded replication
// log, the readiness split, Retry-After on every 503 flavor, the logical
// WAL endpoint's paging/410 contract, snapshot streaming, response
// stamping, the read-only gate, and the fault middleware's determinism.

import (
	"archive/tar"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ccidx/internal/intervals"
	"ccidx/internal/replication"
	"ccidx/internal/shard"
	"ccidx/internal/workload"
)

func newDurableBackend(t *testing.T, n int) (Backend, *shard.Intervals) {
	t.Helper()
	ivs := workload.UniformIntervals(61, n, testSpan, 250)
	dm, err := shard.CreateIntervalsAt(t.TempDir(), shard.Config{
		Shards: 2, B: 8, Batch: 16,
		Partition: shard.PartitionRange, Span: testSpan, PoolFrames: 32,
	}, ivs, intervals.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dm.Close() })
	return Backend{Intervals: dm}, dm
}

// TestRepLog pins the bounded log's append/from contract, including the
// eviction boundary where a lagging reader must get "gone" instead of a
// silently resumed stream with a hole in it.
func TestRepLog(t *testing.T) {
	l := newRepLog(4)
	if _, head, _, ok := l.from(1, 10); !ok || head != 0 {
		t.Fatalf("empty log: from(1) ok=%v head=%d, want ok head=0", ok, head)
	}
	for i := 1; i <= 3; i++ {
		if lsn := l.append(replication.Op{ID: uint64(i)}); lsn != uint64(i) {
			t.Fatalf("append %d assigned lsn %d", i, lsn)
		}
	}
	ops, head, _, ok := l.from(2, 10)
	if !ok || head != 3 || len(ops) != 2 || ops[0].ID != 2 {
		t.Fatalf("from(2) = %v head=%d ok=%v", ops, head, ok)
	}
	// Paging: max caps the slice but head still reports the true head.
	ops, head, _, ok = l.from(1, 2)
	if !ok || len(ops) != 2 || head != 3 {
		t.Fatalf("capped from(1,2) = %d ops head=%d ok=%v", len(ops), head, ok)
	}
	// Beyond head+1 is a protocol error (gone), not an empty page.
	if _, _, _, ok := l.from(5, 10); ok {
		t.Fatal("from(head+2) accepted")
	}
	// from(head+1) is the steady-state empty poll.
	if ops, _, _, ok := l.from(4, 10); !ok || len(ops) != 0 {
		t.Fatalf("from(head+1) = %v ok=%v, want empty ok", ops, ok)
	}
	// Overflow evicts the oldest; a reader at the evicted position is gone.
	for i := 4; i <= 9; i++ {
		l.append(replication.Op{ID: uint64(i)})
	}
	if _, _, base, ok := l.from(2, 10); ok || base != 6 {
		t.Fatalf("evicted position: ok=%v base=%d, want rejected with true base 6", ok, base)
	}
	ops, head, _, ok = l.from(6, 10)
	if !ok || head != 9 || len(ops) != 4 || ops[0].ID != 6 {
		t.Fatalf("post-eviction from(6) = %v head=%d ok=%v", ops, head, ok)
	}
}

// TestReadyzSplit: /healthz stays pure liveness while /readyz reports the
// full readiness document — and an injected not-ready status flips it to
// 503 with Retry-After without touching liveness.
func TestReadyzSplit(t *testing.T) {
	b := newTestBackend(t)
	notReady := false
	_, ts := newTestServer(t, b, Config{Status: func() replication.Status {
		return replication.Status{
			Ready: !notReady, Role: "replica", Epoch: "feedbeef",
			Gen: 7, LSN: 42, Lag: 3, Detail: "",
		}
	}})

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var st replication.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ready /readyz = %d", resp.StatusCode)
	}
	if !st.Ready || st.Role != "replica" || st.Epoch != "feedbeef" || st.Gen != 7 || st.LSN != 42 || st.Lag != 3 {
		t.Fatalf("readiness document %+v lost fields", st)
	}
	if resp.Header.Get(replication.HeaderEpoch) != "feedbeef" ||
		resp.Header.Get(replication.HeaderLSN) != "42" {
		t.Fatalf("readyz not stamped: %v", resp.Header)
	}

	notReady = true
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	st = replication.Status{}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || st.Ready {
		t.Fatalf("not-ready /readyz = %d ready=%v, want 503 false", resp.StatusCode, st.Ready)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("not-ready /readyz missing Retry-After")
	}

	// Liveness is unaffected by readiness.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while not ready: %v %v", resp, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// TestRetryAfterOnEveryShed: BOTH 503 producers — admission shedding and
// checkpoint-in-progress — carry Retry-After, and both count as sheds.
func TestRetryAfterOnEveryShed(t *testing.T) {
	b := newTestBackend(t)
	s, ts := newTestServer(t, b, Config{MaxInFlight: 1, RequestTimeout: 30 * time.Millisecond})

	// Admission shed.
	s.admit <- struct{}{}
	resp, err := http.Get(ts.URL + "/v1/stab?q=100")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	<-s.admit
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("admission shed = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != retryAfterShed {
		t.Fatalf("admission shed Retry-After = %q, want %q", got, retryAfterShed)
	}
	shed1 := s.ShedCount()
	if shed1 != 1 {
		t.Fatalf("shed counter after admission shed = %d, want 1", shed1)
	}

	// Checkpoint-busy shed.
	s.ckptMu.Lock()
	resp, err = http.Post(ts.URL+"/v1/insert?lo=1&hi=2&id=31337", "", nil)
	s.ckptMu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("checkpoint shed = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != retryAfterShed {
		t.Fatalf("checkpoint shed Retry-After = %q, want %q", got, retryAfterShed)
	}
	if got := s.ShedCount(); got != shed1+1 {
		t.Fatalf("shed counter after checkpoint shed = %d, want %d", got, shed1+1)
	}
}

// TestReadOnlyServer: every mutation endpoint answers 403 on a read-only
// server; queries are untouched.
func TestReadOnlyServer(t *testing.T) {
	b := newTestBackend(t)
	_, ts := newTestServer(t, b, Config{ReadOnly: true})

	for _, path := range []string{
		"/v1/insert?lo=1&hi=2&id=3", "/v1/delete?id=3", "/v1/flush", "/v1/checkpoint",
	} {
		if code := postStatus(t, ts.URL+path); code != http.StatusForbidden {
			t.Errorf("POST %s on read-only server = %d, want 403", path, code)
		}
	}
	var got []ivRow
	getJSON(t, ts.URL+"/v1/stab?q=100", &got)
}

// TestWALEndpoint: mutations through the HTTP path appear on /v1/wal in
// LSN order; a position beyond the retained tail answers 410; responses
// are stamped with the server's epoch and head LSN.
func TestWALEndpoint(t *testing.T) {
	b, _ := newDurableBackend(t, 50)
	s, ts := newTestServer(t, b, Config{Replication: true, ReplicationLog: 8})

	for i := 0; i < 5; i++ {
		if code := postStatus(t, fmt.Sprintf("%s/v1/insert?lo=%d&hi=%d&id=%d", ts.URL, i*10, i*10+5, 9000+i)); code != http.StatusOK {
			t.Fatalf("insert %d: status %d", i, code)
		}
	}
	if code := postStatus(t, ts.URL+"/v1/delete?id=9000"); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	// Deleting a missing id is acknowledged but NOT logged (a replica
	// replaying it would diverge on Delete's return accounting, and there
	// is nothing to replicate).
	if code := postStatus(t, ts.URL+"/v1/delete?id=777777"); code != http.StatusOK {
		t.Fatalf("no-op delete: status %d", code)
	}

	resp, err := http.Get(ts.URL + "/v1/wal?from=1")
	if err != nil {
		t.Fatal(err)
	}
	var wr replication.WALResponse
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if wr.Epoch != s.epoch {
		t.Fatalf("wal epoch %q, want server epoch %q", wr.Epoch, s.epoch)
	}
	if wr.Head != 6 || len(wr.Ops) != 6 {
		t.Fatalf("wal head=%d ops=%d, want 6/6", wr.Head, len(wr.Ops))
	}
	if wr.Ops[0].Del || wr.Ops[0].ID != 9000 || wr.Ops[5].ID != 9000 || !wr.Ops[5].Del {
		t.Fatalf("wal op order wrong: first=%+v last=%+v", wr.Ops[0], wr.Ops[5])
	}
	if resp.Header.Get(replication.HeaderEpoch) != s.epoch || resp.Header.Get(replication.HeaderLSN) != "6" {
		t.Fatalf("wal response not stamped: %v", resp.Header)
	}

	// Steady-state empty poll.
	resp, err = http.Get(ts.URL + "/v1/wal?from=7")
	if err != nil {
		t.Fatal(err)
	}
	wr = replication.WALResponse{}
	json.NewDecoder(resp.Body).Decode(&wr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(wr.Ops) != 0 {
		t.Fatalf("empty poll = %d with %d ops", resp.StatusCode, len(wr.Ops))
	}

	// Fall off the log: push past the 8-op retention, then ask for lsn 1.
	for i := 0; i < 10; i++ {
		postStatus(t, fmt.Sprintf("%s/v1/insert?lo=%d&hi=%d&id=%d", ts.URL, i, i+1, 9500+i))
	}
	resp, err = http.Get(ts.URL + "/v1/wal?from=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("evicted position = %d %q, want 410", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "re-hydrate") {
		t.Fatalf("410 body %q does not point at /v1/snapshot", body)
	}
	// 16 ops through an 8-op log retain [9, 16]: the body must report the
	// real base, not a zero value.
	if !strings.Contains(string(body), "log base 9") {
		t.Fatalf("410 body %q does not report the true log base", body)
	}

	// Parameter validation.
	for _, q := range []string{"", "?from=0", "?from=x"} {
		resp, err := http.Get(ts.URL + "/v1/wal" + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("/v1/wal%s = %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestSnapshotStream: /v1/snapshot streams a tar whose first entry is the
// meta document, whose coordinates match the live server, and which
// contains the committed manifest.
func TestSnapshotStream(t *testing.T) {
	b, dm := newDurableBackend(t, 80)
	s, ts := newTestServer(t, b, Config{Replication: true})

	postStatus(t, ts.URL+"/v1/insert?lo=5&hi=9&id=4242")
	resp, err := http.Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot = %d", resp.StatusCode)
	}
	tr := tar.NewReader(resp.Body)
	hdr, err := tr.Next()
	if err != nil || hdr.Name != replication.SnapshotMetaName {
		t.Fatalf("first entry %v err=%v, want %s", hdr, err, replication.SnapshotMetaName)
	}
	var meta replication.SnapshotMeta
	if err := json.NewDecoder(tr).Decode(&meta); err != nil {
		t.Fatal(err)
	}
	if meta.Epoch != s.epoch || meta.LSN != 1 || meta.Seq != dm.Seq() {
		t.Fatalf("snapshot meta %+v, want epoch=%s lsn=1 seq=%d", meta, s.epoch, dm.Seq())
	}
	sawManifest := false
	files := 0
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		files++
		if strings.Contains(hdr.Name, "MANIFEST") {
			sawManifest = true
		}
	}
	if !sawManifest || files == 0 {
		t.Fatalf("snapshot shipped %d files, manifest=%v", files, sawManifest)
	}
	// The snapshot's checkpoint drained the pending insert: the image's seq
	// advanced past the create-time checkpoint.
	if dm.Seq() < 2 {
		t.Fatalf("snapshot did not checkpoint: seq %d", dm.Seq())
	}
}

// TestSnapshotStreamDoesNotBlockMutations: a stalled or slow replica
// client pulling /v1/snapshot must not hold the mutation write-lock for
// the life of its stream — the lock covers only checkpoint + staging, and
// the connection has no deadline to bail it out.
func TestSnapshotStreamDoesNotBlockMutations(t *testing.T) {
	b, dm := newDurableBackend(t, 60)
	s, ts := newTestServer(t, b, Config{Replication: true})

	// Pad the shipped image well past any socket/HTTP buffering, so an
	// on-lock streamer could not finish into kernel buffers before the
	// lock is probed below.
	junk := bytes.Repeat([]byte("snapshot-pad"), 1<<20) // 12 MiB
	if err := os.WriteFile(filepath.Join(dm.Dir(), "PAD.bin"), junk, 0o644); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot = %d", resp.StatusCode)
	}
	// Read just the meta entry, then park the stream unread.
	tr := tar.NewReader(resp.Body)
	if hdr, err := tr.Next(); err != nil || hdr.Name != replication.SnapshotMetaName {
		t.Fatalf("first entry %v err=%v, want %s", hdr, err, replication.SnapshotMetaName)
	}

	// The mutation write-lock must be free while the stream is parked.
	free := make(chan struct{})
	go func() {
		s.ckptMu.Lock()
		//lint:ignore SA2001 the empty critical section IS the probe
		s.ckptMu.Unlock()
		close(free)
	}()
	select {
	case <-free:
	case <-time.After(5 * time.Second):
		t.Fatal("mutation write-lock still held while the snapshot stream is stalled")
	}
	if code := postStatus(t, ts.URL+"/v1/insert?lo=1&hi=2&id=5151"); code != http.StatusOK {
		t.Fatalf("insert during a stalled snapshot stream = %d, want 200", code)
	}

	// Unpark and drain: the stream must still be a complete tar carrying
	// the padded file.
	sawPad := false
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if hdr.Name == "PAD.bin" {
			sawPad = true
		}
	}
	if !sawPad {
		t.Fatal("drained stream missing the staged pad file")
	}
}

// TestSafeHandleAbortPassthrough: http.ErrAbortHandler must escape
// safeHandle's panic conversion — it is how the snapshot streamer severs
// the connection on a mid-stream failure, and converting it to an error
// return would terminate the chunked response cleanly, letting a
// truncated tar that ends on an entry boundary pass for a complete one.
func TestSafeHandleAbortPassthrough(t *testing.T) {
	s := &Server{}
	defer func() {
		if p := recover(); p != http.ErrAbortHandler {
			t.Fatalf("recovered %v, want http.ErrAbortHandler to pass through", p)
		}
	}()
	s.safeHandle(func(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
		panic(http.ErrAbortHandler)
	}, context.Background(), nil, nil)
	t.Fatal("abort panic was swallowed")
}

// TestReplicationRequiresDurable: Config.Replication on an in-memory
// backend is a construction error, not a runtime surprise.
func TestReplicationRequiresDurable(t *testing.T) {
	b := newTestBackend(t)
	if _, err := New(b, Config{Replication: true}); err == nil {
		t.Fatal("replication over an in-memory backend accepted")
	}
}

// TestQueryResponsesStamped: ordinary data-path responses carry the
// epoch/LSN headers the router's freshness check needs.
func TestQueryResponsesStamped(t *testing.T) {
	b, _ := newDurableBackend(t, 30)
	s, ts := newTestServer(t, b, Config{Replication: true})
	postStatus(t, ts.URL+"/v1/insert?lo=1&hi=2&id=8811")

	resp, err := http.Get(ts.URL + "/v1/stab?q=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get(replication.HeaderEpoch) != s.epoch {
		t.Fatalf("stab response epoch %q, want %q", resp.Header.Get(replication.HeaderEpoch), s.epoch)
	}
	if resp.Header.Get(replication.HeaderLSN) != "1" {
		t.Fatalf("stab response lsn %q, want 1", resp.Header.Get(replication.HeaderLSN))
	}
}

// TestFaultsDeterministic: two injectors with the same seed produce the
// same fault schedule over a serialized request sequence; drops sever the
// connection and errors carry Retry-After.
func TestFaultsDeterministic(t *testing.T) {
	run := func(seed int64) []string {
		f := NewFaults(FaultConfig{ErrorProb: 0.3, DropProb: 0.2, Seed: seed})
		inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, "ok")
		})
		ts := httptest.NewServer(f.Wrap(inner))
		defer ts.Close()
		var schedule []string
		for i := 0; i < 40; i++ {
			resp, err := http.Get(ts.URL + "/x")
			switch {
			case err != nil:
				schedule = append(schedule, "drop")
			case resp.StatusCode == http.StatusInternalServerError:
				if resp.Header.Get("Retry-After") == "" {
					t.Error("injected 500 missing Retry-After")
				}
				schedule = append(schedule, "err")
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			default:
				schedule = append(schedule, "ok")
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		return schedule
	}
	a, b := run(7), run(7)
	c := run(8)
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
	}
	if strings.Join(a, ",") == strings.Join(c, ",") {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
	counts := map[string]int{}
	for _, s := range a {
		counts[s]++
	}
	if counts["err"] == 0 || counts["drop"] == 0 || counts["ok"] == 0 {
		t.Fatalf("schedule %v did not exercise all outcomes", counts)
	}
}

// TestFaultsExempt: exempted path prefixes bypass injection entirely.
func TestFaultsExempt(t *testing.T) {
	f := NewFaults(FaultConfig{DropProb: 1.0, Exempt: []string{"/healthz"}, Seed: 3})
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	})
	ts := httptest.NewServer(f.Wrap(inner))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("exempt path dropped: %v %v", resp, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if _, err := http.Get(ts.URL + "/data"); err == nil {
		t.Fatal("non-exempt path survived DropProb=1")
	}
	// >= 1: the stdlib transport retries an idempotent GET whose connection
	// died before any response bytes, so one client call can hit the
	// injector more than once.
	_, _, drops := f.Counts()
	if drops < 1 {
		t.Fatalf("drop counter %d, want >= 1", drops)
	}
}
