// Package server is the HTTP serving front-end over the sharded interval
// manager and class index. Its job is to convert concurrent single-query
// network traffic into the shard layer's batch entry points (StabBatch /
// IntersectBatch / QueryBatch) through an adaptive auto-batching window,
// while enforcing per-request deadlines and admission control so overload
// degrades by shedding instead of by collapse.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"ccidx/internal/disk"
	"ccidx/internal/geom"
	"ccidx/internal/replication"
	"ccidx/internal/shard"
)

var errServerClosed = errors.New("server: closed")

// errCheckpointBusy sheds a mutation that could not take the checkpoint
// lock's read side before its deadline: a long checkpoint must turn
// mutations away with 503 instead of letting them queue past their
// deadline and answer 504 after the client gave up.
var errCheckpointBusy = errors.New("checkpoint in progress")

// Backend is what the server serves. Intervals is required; Classes is
// optional (class endpoints 404 without it).
type Backend struct {
	Intervals *shard.Intervals
	Classes   *shard.Classes
}

// Config bounds the server's resources. Zero values take the defaults.
type Config struct {
	// MaxBatch caps how many coalesced queries one dispatch hands to the
	// shard layer. Default 1024.
	MaxBatch int
	// MaxWait caps how long an admitted query may be held waiting for its
	// batch to fill. Default 1ms.
	MaxWait time.Duration
	// MaxInFlight caps concurrently admitted requests; beyond it requests
	// are shed with 503. Default 1024.
	MaxInFlight int
	// RequestTimeout is the per-request deadline (504 on expiry). Default 2s.
	RequestTimeout time.Duration
	// DisableBatching routes queries one at a time straight to the
	// sequential shard paths — the experimental control arm.
	DisableBatching bool
	// ReadOnly rejects every mutation endpoint with 403: the configuration
	// of a read replica, whose only writer is its replication tailer.
	ReadOnly bool
	// Replication serves the snapshot + logical-WAL endpoints replicas
	// hydrate from (/v1/snapshot, /v1/wal). Requires a durable backend —
	// the snapshot is the checkpoint directory.
	Replication bool
	// ReplicationLog bounds the retained replication-log tail in ops
	// (default 65536). A replica that falls further behind than this must
	// re-hydrate from a fresh snapshot.
	ReplicationLog int
	// Status overrides the readiness document (/readyz and the epoch/LSN
	// response headers). A replica front-end injects its tailer's status
	// here; when nil the server reports itself as a ready primary.
	Status func() replication.Status
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	if c.MaxWait <= 0 {
		c.MaxWait = time.Millisecond
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 1024
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Second
	}
	return c
}

// attrPair is one class-query result row.
type attrPair struct {
	Attr int64  `json:"attr"`
	ID   uint64 `json:"id"`
}

// Server is the HTTP front-end. Create with New, serve its Handler, Close
// when done (Close stops the batch dispatchers, not the backend).
type Server struct {
	cfg Config
	b   Backend
	m   *metrics
	mux *http.ServeMux

	admit chan struct{} // admission semaphore

	// ckptMu serializes checkpoints against mutations: mutations hold the
	// read side so a checkpoint captures a buffer boundary, never a torn
	// multi-structure update.
	ckptMu sync.RWMutex

	stab      *batcher[int64, []geom.Interval]
	intersect *batcher[geom.Interval, []geom.Interval]
	class     *batcher[shard.ClassQuery, []attrPair]

	// epoch identifies this server's mutation history; rep is the bounded
	// replication log (nil unless cfg.Replication). See replicate.go.
	epoch string
	rep   *repLog

	closeOnce sync.Once
}

// New wires a server over backend. The returned server owns three batch
// dispatcher goroutines until Close.
func New(b Backend, cfg Config) (*Server, error) {
	if b.Intervals == nil {
		return nil, fmt.Errorf("server: Backend.Intervals is required")
	}
	cfg = cfg.withDefaults()
	if cfg.Replication && !b.Intervals.Durable() {
		return nil, fmt.Errorf("server: replication requires a durable (file-backed) backend")
	}
	s := &Server{
		cfg:   cfg,
		b:     b,
		m:     newMetrics(),
		admit: make(chan struct{}, cfg.MaxInFlight),
		epoch: newEpoch(),
	}
	if cfg.Replication {
		s.rep = newRepLog(cfg.ReplicationLog)
	}
	s.stab = newBatcher(cfg.MaxBatch, cfg.MaxWait, s.m, func(qs []int64) ([][]geom.Interval, error) {
		out := make([][]geom.Interval, len(qs))
		b.Intervals.StabBatch(qs, func(qi int, iv geom.Interval) bool {
			out[qi] = append(out[qi], iv)
			return true
		})
		return out, nil
	})
	s.intersect = newBatcher(cfg.MaxBatch, cfg.MaxWait, s.m, func(qs []geom.Interval) ([][]geom.Interval, error) {
		out := make([][]geom.Interval, len(qs))
		b.Intervals.IntersectBatch(qs, func(qi int, iv geom.Interval) bool {
			out[qi] = append(out[qi], iv)
			return true
		})
		return out, nil
	})
	if b.Classes != nil {
		s.class = newBatcher(cfg.MaxBatch, cfg.MaxWait, s.m, func(qs []shard.ClassQuery) ([][]attrPair, error) {
			out := make([][]attrPair, len(qs))
			b.Classes.QueryBatch(qs, func(qi int, attr int64, id uint64) bool {
				out[qi] = append(out[qi], attrPair{attr, id})
				return true
			})
			return out, nil
		})
	}
	s.m.gaugeFunc("ccidx_intervals", "Live intervals across all shards.", func() float64 {
		return float64(b.Intervals.Len())
	})
	s.m.gaugeFunc("ccidx_ios_total", "Cumulative page I/Os (reads+writes) across interval shards.", func() float64 {
		return float64(b.Intervals.Stats().IOs())
	})
	s.m.gaugeFunc("ccidx_pool_hit_rate", "Buffer-pool hit rate across interval shards.", func() float64 {
		h, miss := b.Intervals.PoolStats()
		if h+miss == 0 {
			return 0
		}
		return float64(h) / float64(h+miss)
	})
	s.m.gaugeFunc("ccidx_rebuilds_total", "Global rebuilds across interval shards.", func() float64 {
		return float64(b.Intervals.Rebuilds())
	})
	s.m.gaugeFunc("ccidx_inflight", "Currently admitted requests.", func() float64 {
		return float64(len(s.admit))
	})
	// Log-structured ingest instrumentation (all zero when the backend runs
	// the amortized-rebuild tree): run counts bound read fan-in; flush/merge/
	// compaction counters expose write amplification; stalls count inline
	// backpressure drains, the signal that ingest is outrunning the merger.
	s.m.gaugeFunc("ccidx_runs", "Immutable log-structured runs across interval shards.", func() float64 {
		return float64(b.Intervals.IngestStats().Runs)
	})
	s.m.gaugeFunc("ccidx_memtable_intervals", "Intervals buffered in active memtables across shards.", func() float64 {
		st := b.Intervals.IngestStats()
		return float64(st.MemtableLen)
	})
	s.m.gaugeFunc("ccidx_merge_flushes_total", "Memtable-to-run flushes across interval shards.", func() float64 {
		return float64(b.Intervals.IngestStats().Flushes)
	})
	s.m.gaugeFunc("ccidx_merge_merges_total", "Run-to-run merges across interval shards.", func() float64 {
		return float64(b.Intervals.IngestStats().Merges)
	})
	s.m.gaugeFunc("ccidx_merge_compactions_total", "Dead-fraction run compactions across interval shards.", func() float64 {
		return float64(b.Intervals.IngestStats().Compactions)
	})
	s.m.gaugeFunc("ccidx_merge_stalls_total", "Ingest backpressure stalls (inline drains) across interval shards.", func() float64 {
		return float64(b.Intervals.IngestStats().Stalls)
	})
	s.buildMux()
	return s, nil
}

// Close stops the batch dispatchers. Requests racing Close get 500s with
// errServerClosed; the backend is left for the caller to close.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.stab.close()
		s.intersect.close()
		if s.class != nil {
			s.class.close()
		}
	})
}

// Handler returns the root http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics access for in-process harnesses (E22 reads quantiles directly
// instead of re-parsing its own exposition text).
func (s *Server) LatencyQuantile(q float64) float64 { return s.m.latency.Quantile(q) }
func (s *Server) BatchMean() float64                { return s.m.batches.Mean() }
func (s *Server) BatchCount() int64                 { return s.m.batches.Count() }
func (s *Server) RequestCount() int64               { return s.m.requests.Load() }
func (s *Server) ShedCount() int64                  { return s.m.shed.Load() }

func (s *Server) buildMux() {
	mux := http.NewServeMux()
	// /healthz is LIVENESS only: the process is up and able to answer.
	// Whether a router should send reads here is /readyz's question.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// /readyz bypasses admission control on purpose: a router's health
	// probes must keep working while the server sheds query load, or an
	// overloaded replica could never be steered around.
	mux.HandleFunc("/readyz", s.handleReady)
	if s.rep != nil {
		// The replication endpoints also bypass admission: a replica's
		// tail polls must not be shed under query overload, or lag would
		// grow exactly when the cluster most needs the replicas.
		mux.HandleFunc("/v1/wal", s.bare(http.MethodGet, s.handleWAL))
		mux.HandleFunc("/v1/snapshot", s.bare(http.MethodGet, s.handleSnapshot))
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.m.render(w)
	})
	mux.HandleFunc("/v1/stats", s.guard(http.MethodGet, s.handleStats))
	mux.HandleFunc("/v1/stab", s.guard(http.MethodGet, s.handleStab))
	mux.HandleFunc("/v1/intersect", s.guard(http.MethodGet, s.handleIntersect))
	mux.HandleFunc("/v1/class", s.guard(http.MethodGet, s.handleClass))
	mux.HandleFunc("/v1/insert", s.guard(http.MethodPost, s.handleInsert))
	mux.HandleFunc("/v1/delete", s.guard(http.MethodPost, s.handleDelete))
	mux.HandleFunc("/v1/flush", s.guard(http.MethodPost, s.handleFlush))
	mux.HandleFunc("/v1/checkpoint", s.guard(http.MethodPost, s.handleCheckpoint))
	s.mux = mux
}

// guard is the shared request spine: method check, admission control with
// load shedding, per-request deadline, latency and outcome accounting.
func (s *Server) guard(method string, h func(ctx context.Context, w http.ResponseWriter, r *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		s.stamp(w)
		select {
		case s.admit <- struct{}{}:
			defer func() { <-s.admit }()
		default:
			s.m.shed.Inc()
			// Shed responses tell the client when to come back instead of
			// letting it hammer an overloaded server (ccload and the read
			// router both honor it).
			w.Header().Set("Retry-After", retryAfterShed)
			http.Error(w, "overloaded, request shed", http.StatusServiceUnavailable)
			return
		}
		s.m.requests.Inc()
		start := time.Now()
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		// Track whether the handler started the response: once body bytes
		// (or an explicit status) went out, the error paths below must not
		// stack a second status line onto the stream — a handler that fails
		// mid-write (client gone, connection severed) returns an error with
		// a 200 already committed.
		tw := &trackingWriter{ResponseWriter: w}
		err := s.safeHandle(h, ctx, tw, r.WithContext(ctx))
		s.m.latency.Observe(time.Since(start).Seconds())
		if err != nil && tw.wrote {
			if !errors.Is(err, context.Canceled) {
				s.m.errors.Inc()
			}
			return
		}
		var corrupt disk.ErrCorrupt
		switch {
		case err == nil:
		case errors.As(err, &corrupt):
			// A page failed CRC verification somewhere under this request.
			// Detected corruption is a clean 500 — never a panic, never a
			// silently wrong answer — and is counted for alerting.
			s.m.corrupt.Inc()
			s.m.errors.Inc()
			http.Error(w, err.Error(), http.StatusInternalServerError)
		case errors.Is(err, errCheckpointBusy):
			s.m.shed.Inc()
			w.Header().Set("Retry-After", retryAfterShed)
			http.Error(w, "checkpoint in progress, mutation shed", http.StatusServiceUnavailable)
		case errors.Is(err, errReadOnly):
			s.m.errors.Inc()
			http.Error(w, "read-only replica: mutations go to the primary", http.StatusForbidden)
		case errors.Is(err, context.DeadlineExceeded):
			s.m.timeouts.Inc()
			http.Error(w, "deadline exceeded", http.StatusGatewayTimeout)
		case errors.Is(err, context.Canceled):
			// Client went away; nothing useful to write.
		case errors.Is(err, errBadRequest):
			s.m.errors.Inc()
			http.Error(w, err.Error(), http.StatusBadRequest)
		default:
			s.m.errors.Inc()
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}

// trackingWriter records whether a handler committed the response (explicit
// WriteHeader or first body byte), so guard's error paths know whether an
// error status can still be sent.
type trackingWriter struct {
	http.ResponseWriter
	wrote bool
}

func (t *trackingWriter) WriteHeader(code int) {
	t.wrote = true
	t.ResponseWriter.WriteHeader(code)
}

func (t *trackingWriter) Write(p []byte) (int, error) {
	t.wrote = true
	return t.ResponseWriter.Write(p)
}

// safeHandle runs one handler, converting a backend panic into a request
// error. The unbatched query paths and the mutation paths call straight
// into the shard layer, whose trees panic with disk.ErrCorrupt when a page
// fails verification; recovering here (with %w so errors.As still sees the
// typed error) turns that into a 500 for one request instead of a dead
// process. Non-error panics keep their stack — those are real bugs.
// http.ErrAbortHandler passes through untouched: it is the stdlib's
// sanctioned "sever this connection" signal (the snapshot streamer uses it
// when the tar dies mid-stream), and converting it to an error would end
// the chunked response CLEANLY — a truncated tar that ends at an entry
// boundary would look complete to the replica.
func (s *Server) safeHandle(h func(ctx context.Context, w http.ResponseWriter, r *http.Request) error, ctx context.Context, w http.ResponseWriter, r *http.Request) (err error) {
	defer func() {
		if p := recover(); p != nil {
			if p == http.ErrAbortHandler {
				panic(p)
			}
			if e, ok := p.(error); ok {
				err = fmt.Errorf("backend panic: %w", e)
			} else {
				err = fmt.Errorf("backend panic: %v", p)
			}
		}
	}()
	return h(ctx, w, r)
}

// lockMutate takes the read side of the checkpoint lock, but gives up at
// the request deadline: TryRLock, then poll — sync.RWMutex has no
// context-aware acquire — so mutations blocked behind a long checkpoint
// shed with errCheckpointBusy instead of queueing indefinitely.
func (s *Server) lockMutate(ctx context.Context) error {
	if s.ckptMu.TryRLock() {
		return nil
	}
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return errCheckpointBusy
		case <-tick.C:
			if s.ckptMu.TryRLock() {
				return nil
			}
		}
	}
}

var errBadRequest = errors.New("bad request")

func badRequestf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{errBadRequest}, args...)...)
}

func qInt(r *http.Request, name string) (int64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, badRequestf("missing parameter %q", name)
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, badRequestf("parameter %q: %v", name, err)
	}
	return v, nil
}

func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(v)
}

// ivRow is the wire form of one interval result.
type ivRow struct {
	Lo int64  `json:"lo"`
	Hi int64  `json:"hi"`
	ID uint64 `json:"id"`
}

func ivRows(ivs []geom.Interval) []ivRow {
	rows := make([]ivRow, len(ivs))
	for i, iv := range ivs {
		rows[i] = ivRow{iv.Lo, iv.Hi, iv.ID}
	}
	return rows
}

func (s *Server) handleStab(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	q, err := qInt(r, "q")
	if err != nil {
		return err
	}
	var ivs []geom.Interval
	if s.cfg.DisableBatching {
		s.b.Intervals.Stab(q, func(iv geom.Interval) bool {
			ivs = append(ivs, iv)
			return true
		})
	} else if ivs, err = s.stab.do(ctx, q); err != nil {
		return err
	}
	return writeJSON(w, ivRows(ivs))
}

func (s *Server) handleIntersect(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	lo, err := qInt(r, "lo")
	if err != nil {
		return err
	}
	hi, err := qInt(r, "hi")
	if err != nil {
		return err
	}
	if lo > hi {
		return badRequestf("lo %d > hi %d", lo, hi)
	}
	q := geom.Interval{Lo: lo, Hi: hi}
	var ivs []geom.Interval
	if s.cfg.DisableBatching {
		s.b.Intervals.Intersect(q, func(iv geom.Interval) bool {
			ivs = append(ivs, iv)
			return true
		})
	} else if ivs, err = s.intersect.do(ctx, q); err != nil {
		return err
	}
	return writeJSON(w, ivRows(ivs))
}

func (s *Server) handleClass(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	if s.b.Classes == nil {
		return badRequestf("no class index attached")
	}
	class, err := qInt(r, "class")
	if err != nil {
		return err
	}
	a1, err := qInt(r, "a1")
	if err != nil {
		return err
	}
	a2, err := qInt(r, "a2")
	if err != nil {
		return err
	}
	if a1 > a2 {
		return badRequestf("a1 %d > a2 %d", a1, a2)
	}
	cq := shard.ClassQuery{Class: int(class), A1: a1, A2: a2}
	var rows []attrPair
	if s.cfg.DisableBatching {
		s.b.Classes.Query(cq.Class, cq.A1, cq.A2, func(attr int64, id uint64) bool {
			rows = append(rows, attrPair{attr, id})
			return true
		})
	} else if rows, err = s.class.do(ctx, cq); err != nil {
		return err
	}
	if rows == nil {
		rows = []attrPair{}
	}
	return writeJSON(w, rows)
}

func (s *Server) handleInsert(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	lo, err := qInt(r, "lo")
	if err != nil {
		return err
	}
	hi, err := qInt(r, "hi")
	if err != nil {
		return err
	}
	id, err := qInt(r, "id")
	if err != nil {
		return err
	}
	if lo > hi {
		return badRequestf("lo %d > hi %d", lo, hi)
	}
	if err := s.mutable(); err != nil {
		return err
	}
	if err := s.lockMutate(ctx); err != nil {
		return err
	}
	defer s.ckptMu.RUnlock()
	s.b.Intervals.Insert(geom.Interval{Lo: lo, Hi: hi, ID: uint64(id)})
	// Acknowledge into the replication log while still holding the
	// checkpoint read-lock: the snapshot endpoint takes the write side, so
	// its (image, LSN) capture can never catch a mutation applied to the
	// backend but not yet logged (or vice versa).
	s.logRep(replication.Op{Lo: lo, Hi: hi, ID: uint64(id)})
	return writeJSON(w, map[string]bool{"ok": true})
}

func (s *Server) handleDelete(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	id, err := qInt(r, "id")
	if err != nil {
		return err
	}
	if err := s.mutable(); err != nil {
		return err
	}
	if err := s.lockMutate(ctx); err != nil {
		return err
	}
	defer s.ckptMu.RUnlock()
	found := s.b.Intervals.Delete(uint64(id))
	if found {
		s.logRep(replication.Op{Del: true, ID: uint64(id)})
	}
	return writeJSON(w, map[string]bool{"ok": true, "found": found})
}

func (s *Server) handleFlush(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	if err := s.mutable(); err != nil {
		return err
	}
	if err := s.lockMutate(ctx); err != nil {
		return err
	}
	defer s.ckptMu.RUnlock()
	s.b.Intervals.Flush()
	if s.b.Classes != nil {
		s.b.Classes.Flush()
	}
	return writeJSON(w, map[string]bool{"ok": true})
}

func (s *Server) handleCheckpoint(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	if err := s.mutable(); err != nil {
		return err
	}
	if !s.b.Intervals.Durable() {
		return badRequestf("backend is in-memory; nothing to checkpoint")
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	if err := s.b.Intervals.Checkpoint(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if s.b.Classes != nil && s.b.Classes.Durable() {
		if err := s.b.Classes.Checkpoint(); err != nil {
			return fmt.Errorf("class checkpoint: %w", err)
		}
	}
	return writeJSON(w, map[string]any{"ok": true, "seq": s.b.Intervals.Seq()})
}

// statsDoc is the /v1/stats document — the load generator and E22 read
// these counters as deltas to compute ios/query per phase.
type statsDoc struct {
	Intervals   int     `json:"intervals"`
	Reads       int64   `json:"reads"`
	Writes      int64   `json:"writes"`
	IOs         int64   `json:"ios"`
	PoolHits    int64   `json:"pool_hits"`
	PoolMisses  int64   `json:"pool_misses"`
	Rebuilds    int     `json:"rebuilds"`
	Runs        int     `json:"runs"`
	MemtableLen int     `json:"memtable_len"`
	Flushes     int64   `json:"flushes"`
	Merges      int64   `json:"merges"`
	Compactions int64   `json:"compactions"`
	Stalls      int64   `json:"stalls"`
	Requests    int64   `json:"requests"`
	Shed        int64   `json:"shed"`
	Timeouts    int64   `json:"timeouts"`
	Errors      int64   `json:"errors"`
	Batches     int64   `json:"batches"`
	BatchMean   float64 `json:"batch_mean"`
	LatencyP50  float64 `json:"latency_p50_s"`
	LatencyP95  float64 `json:"latency_p95_s"`
	LatencyP99  float64 `json:"latency_p99_s"`
	LatencyMean float64 `json:"latency_mean_s"`
}

func (s *Server) handleStats(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	st := s.b.Intervals.Stats()
	hits, misses := s.b.Intervals.PoolStats()
	if s.b.Classes != nil {
		cst := s.b.Classes.Stats()
		st.Reads += cst.Reads
		st.Writes += cst.Writes
	}
	ing := s.b.Intervals.IngestStats()
	return writeJSON(w, statsDoc{
		Intervals:   s.b.Intervals.Len(),
		Reads:       st.Reads,
		Writes:      st.Writes,
		IOs:         st.IOs(),
		PoolHits:    hits,
		PoolMisses:  misses,
		Rebuilds:    s.b.Intervals.Rebuilds(),
		Runs:        ing.Runs,
		MemtableLen: ing.MemtableLen,
		Flushes:     ing.Flushes,
		Merges:      ing.Merges,
		Compactions: ing.Compactions,
		Stalls:      ing.Stalls,
		Requests:    s.m.requests.Load(),
		Shed:        s.m.shed.Load(),
		Timeouts:    s.m.timeouts.Load(),
		Errors:      s.m.errors.Load(),
		Batches:     s.m.batches.Count(),
		BatchMean:   s.m.batches.Mean(),
		LatencyP50:  s.m.latency.Quantile(0.50),
		LatencyP95:  s.m.latency.Quantile(0.95),
		LatencyP99:  s.m.latency.Quantile(0.99),
		LatencyMean: s.m.latency.Mean(),
	})
}
