package server

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestMutationShedDuringCheckpoint: while a checkpoint holds the write
// side of ckptMu, a mutation that cannot acquire the read side before its
// deadline is shed with 503 (and counted), instead of hanging past the
// client's patience and dying as a 504. Queries are unaffected — they do
// not take the checkpoint lock.
func TestMutationShedDuringCheckpoint(t *testing.T) {
	b := newTestBackend(t)
	s, ts := newTestServer(t, b, Config{RequestTimeout: 50 * time.Millisecond})

	s.ckptMu.Lock() // a checkpoint in progress, as far as mutations can tell
	defer s.ckptMu.Unlock()

	shed0 := s.ShedCount()
	resp, err := http.Post(ts.URL+"/v1/insert?lo=1&hi=2&id=424242", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("insert during checkpoint = %d %q, want 503", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "checkpoint in progress") {
		t.Fatalf("503 body %q does not name the checkpoint", body)
	}
	if got := s.ShedCount(); got != shed0+1 {
		t.Fatalf("shed counter = %d, want %d", got, shed0+1)
	}

	// Reads keep flowing while the checkpoint holds the lock.
	resp, err = http.Get(ts.URL + "/v1/stab?q=100")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("stab during checkpoint: %v %v", resp, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
