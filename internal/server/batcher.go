package server

// Adaptive auto-batching. The server coalesces concurrent single-query
// requests into calls to the shard layer's batch entry points
// (StabBatch/IntersectBatch/QueryBatch), which share one traversal per
// shard across the whole batch and therefore cost far fewer I/Os per query
// than the same queries issued one at a time.
//
// The window is adaptive: a dispatcher goroutine keeps an EWMA of the
// arrival rate. When traffic is sparse (fewer than two arrivals expected
// within the maximum wait) a lone request dispatches immediately — batching
// must not tax an idle server with latency it cannot repay. When traffic is
// dense the dispatcher waits min(maxWait, time-to-fill-maxBatch), bounded
// in both time and size.

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"time"
)

// batchReq pairs one enqueued query with its private response channel.
type batchReq[Q, R any] struct {
	q    Q
	ctx  context.Context
	enq  time.Time
	resp chan batchResp[R] // buffered(1): dispatcher never blocks on delivery
}

type batchResp[R any] struct {
	r   R
	err error
}

// batcher coalesces requests of type Q into slices handed to run, then
// demultiplexes the per-query results of type R back to each caller.
type batcher[Q, R any] struct {
	run      func(qs []Q) ([]R, error)
	maxBatch int
	maxWait  time.Duration
	m        *metrics

	in   chan batchReq[Q, R]
	done chan struct{}
	wg   sync.WaitGroup

	// Dispatcher-goroutine-private EWMA state (no locking needed).
	rate     float64 // arrivals per second
	lastSeen time.Time
}

func newBatcher[Q, R any](maxBatch int, maxWait time.Duration, m *metrics, run func(qs []Q) ([]R, error)) *batcher[Q, R] {
	b := &batcher[Q, R]{
		run:      run,
		maxBatch: maxBatch,
		maxWait:  maxWait,
		m:        m,
		in:       make(chan batchReq[Q, R], maxBatch),
		done:     make(chan struct{}),
	}
	b.wg.Add(1)
	go b.dispatch()
	return b
}

// close stops the dispatcher. Callers racing close see ErrServerClosed.
func (b *batcher[Q, R]) close() {
	close(b.done)
	b.wg.Wait()
}

// do submits one query and blocks until its result, the context's end, or
// server shutdown.
func (b *batcher[Q, R]) do(ctx context.Context, q Q) (R, error) {
	var zero R
	req := batchReq[Q, R]{q: q, ctx: ctx, enq: time.Now(), resp: make(chan batchResp[R], 1)}
	select {
	case b.in <- req:
	case <-ctx.Done():
		return zero, ctx.Err()
	case <-b.done:
		return zero, errServerClosed
	}
	select {
	case resp := <-req.resp:
		return resp.r, resp.err
	case <-ctx.Done():
		// The dispatcher will still process the query (its slot in the batch
		// is already claimed or will be filtered at collect time); the
		// buffered channel lets its answer be dropped without blocking.
		return zero, ctx.Err()
	}
}

// observeArrival updates the EWMA arrival rate. The decay constant is the
// max window itself: bursts shorter than one window dominate, idle gaps
// longer than a few windows decay the rate back toward zero.
func (b *batcher[Q, R]) observeArrival(now time.Time) {
	if b.lastSeen.IsZero() {
		b.lastSeen = now
		return
	}
	dt := now.Sub(b.lastSeen).Seconds()
	b.lastSeen = now
	if dt <= 0 {
		return
	}
	inst := 1.0 / dt
	tau := b.maxWait.Seconds() * 4
	if tau <= 0 {
		tau = 4e-3
	}
	alpha := dt / tau
	if alpha > 1 {
		alpha = 1
	}
	b.rate += alpha * (inst - b.rate)
}

// window picks how long to hold the current batch open. With an expected
// inter-arrival count below two inside maxWait, waiting buys nothing —
// dispatch now. Otherwise wait long enough to plausibly fill maxBatch, but
// never beyond maxWait.
func (b *batcher[Q, R]) window() time.Duration {
	expected := b.rate * b.maxWait.Seconds()
	if expected < 2 {
		return 0
	}
	fill := time.Duration(float64(b.maxBatch) / b.rate * float64(time.Second))
	if fill < b.maxWait {
		return fill
	}
	return b.maxWait
}

func (b *batcher[Q, R]) dispatch() {
	defer b.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		// Phase 1: block for the first request of the next batch.
		var first batchReq[Q, R]
		select {
		case first = <-b.in:
		case <-b.done:
			b.drain()
			return
		}
		now := time.Now()
		b.observeArrival(now)
		batch := []batchReq[Q, R]{first}

		// Phase 2: hold the window open, collecting until size or time bound.
		if w := b.window(); w > 0 {
			timer.Reset(w)
		collect:
			for len(batch) < b.maxBatch {
				select {
				case req := <-b.in:
					b.observeArrival(time.Now())
					batch = append(batch, req)
				case <-timer.C:
					break collect
				case <-b.done:
					break collect
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		} else {
			// Zero window: still sweep whatever already queued up — a burst
			// that landed between dispatches should not serialize.
		sweep:
			for len(batch) < b.maxBatch {
				select {
				case req := <-b.in:
					b.observeArrival(time.Now())
					batch = append(batch, req)
				default:
					break sweep
				}
			}
		}
		b.runBatch(batch)
	}
}

// runBatch filters expired requests, executes the rest through run, and
// demultiplexes results. A panic in run is converted into a per-request
// error: the serving loop must survive a malformed query.
func (b *batcher[Q, R]) runBatch(batch []batchReq[Q, R]) {
	live := batch[:0]
	for _, req := range batch {
		select {
		case <-req.ctx.Done():
			// Caller already gone; never spend backend work on it.
		default:
			live = append(live, req)
		}
	}
	if len(live) == 0 {
		return
	}
	dispatchTime := time.Now()
	for _, req := range live {
		b.m.batchWait.Observe(dispatchTime.Sub(req.enq).Seconds())
	}
	b.m.batches.Observe(float64(len(live)))

	qs := make([]Q, len(live))
	for i, req := range live {
		qs[i] = req.q
	}
	rs, err := b.safeRun(qs)
	if err == nil && len(rs) != len(qs) {
		err = fmt.Errorf("batch backend returned %d results for %d queries", len(rs), len(qs))
	}
	for i, req := range live {
		if err != nil {
			req.resp <- batchResp[R]{err: err}
			continue
		}
		req.resp <- batchResp[R]{r: rs[i]}
	}
}

// safeRun executes the backend batch call, converting a panic into an
// error. Error panics (the trees' disk.ErrCorrupt, re-raised on this
// goroutine by the shard fan-out) wrap with %w so the server's guard can
// still classify them with errors.As; anything else keeps its stack.
func (b *batcher[Q, R]) safeRun(qs []Q) (rs []R, err error) {
	defer func() {
		if p := recover(); p != nil {
			if e, ok := p.(error); ok {
				err = fmt.Errorf("batch backend panic: %w", e)
			} else {
				err = fmt.Errorf("batch backend panic: %v\n%s", p, debug.Stack())
			}
		}
	}()
	return b.run(qs)
}

// drain answers everything still queued at shutdown with errServerClosed.
func (b *batcher[Q, R]) drain() {
	for {
		select {
		case req := <-b.in:
			req.resp <- batchResp[R]{err: errServerClosed}
		default:
			return
		}
	}
}
