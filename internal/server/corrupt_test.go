package server

// End-to-end corruption handling: a bit flip on media must reach an HTTP
// client as a 500 with the ccidx_corrupt_pages_total counter bumped —
// never a dead process, never a 200 with wrong rows — and the server must
// keep answering requests that avoid the rotten page. Exercised through
// BOTH query paths: the auto-batcher (panic recovered by safeRun, error
// classified by the guard) and the sequential control arm (panic recovered
// by safeHandle).

import (
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"ccidx/internal/core"
	"ccidx/internal/disk"
	"ccidx/internal/intervals"
	"ccidx/internal/shard"
	"ccidx/internal/workload"
)

func newCorruptBackend(t *testing.T) Backend {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "sharded")
	// Bare devices so the rotten page cannot be served from a pool frame.
	cfg := shard.Config{Shards: 2, B: 8, Batch: 1, Partition: shard.PartitionHash, PoolFrames: -1}
	s, err := shard.CreateIntervalsAt(dir, cfg,
		workload.UniformIntervals(19, 400, testSpan, 250), intervals.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Rot a stabber page: the open path does not scan stabber files, so
	// the corruption is met only when a /v1/stab query walks onto it.
	if err := disk.FlipBit(filepath.Join(dir, "shard-0000", "stabber.pages"),
		core.Config{B: cfg.B}.PageSize(), 1, 11); err != nil {
		t.Fatal(err)
	}
	s, err = shard.OpenIntervals(dir, intervals.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return Backend{Intervals: s}
}

func TestCorruptPageAnswers500(t *testing.T) {
	for _, nobatch := range []bool{false, true} {
		t.Run(fmt.Sprintf("nobatch=%v", nobatch), func(t *testing.T) {
			b := newCorruptBackend(t)
			srv, ts := newTestServer(t, b, Config{DisableBatching: nobatch})

			got500, got200 := 0, 0
			for q := int64(0); q <= testSpan; q += testSpan / 61 {
				resp, err := http.Get(fmt.Sprintf("%s/v1/stab?q=%d", ts.URL, q))
				if err != nil {
					t.Fatalf("Stab(%d): transport error %v (server died?)", q, err)
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					got200++
				case http.StatusInternalServerError:
					got500++
					if !strings.Contains(string(body), "corrupt page") {
						t.Fatalf("500 body %q does not name the corrupt page", body)
					}
				default:
					t.Fatalf("Stab(%d) = %d %q", q, resp.StatusCode, body)
				}
			}
			if got500 == 0 {
				t.Fatal("no query ever met the flipped page")
			}
			if got200 == 0 {
				t.Fatal("every query failed; queries avoiding the rotten page must keep answering")
			}

			// The corruption counter moved and is exposed on /metrics.
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			var metric int
			for _, line := range strings.Split(string(body), "\n") {
				if strings.HasPrefix(line, "ccidx_corrupt_pages_total ") {
					fmt.Sscanf(line, "ccidx_corrupt_pages_total %d", &metric)
				}
			}
			if metric == 0 {
				t.Fatalf("ccidx_corrupt_pages_total = 0 after %d corrupt-page 500s", got500)
			}
			// The process survived: health stays green.
			resp, err = http.Get(ts.URL + "/healthz")
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("healthz after corruption: %v %v", resp, err)
			}
			resp.Body.Close()
			_ = srv
		})
	}
}
