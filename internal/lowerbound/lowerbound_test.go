package lowerbound

import (
	"math"
	"testing"
)

func TestRowsColumnsExtremes(t *testing.T) {
	p, b := 16, 4
	rows := Rows(p, b)
	cols := Columns(p, b)
	// Row tiling answers row queries optimally (waste 1) but column queries
	// touch p blocks for p/B needed.
	if w := rows.WasteFactor(b); w != float64(b) {
		t.Fatalf("rows waste = %v, want %d", w, b)
	}
	if w := cols.WasteFactor(b); w != float64(b) {
		t.Fatalf("columns waste = %v, want %d", w, b)
	}
}

func TestSquaresWasteIsSqrtB(t *testing.T) {
	p, b := 16, 16
	sq := Squares(p, b)
	// 4x4 tiles: a row of 16 points touches 4 tiles; needs 1 block.
	if w := sq.WasteFactor(b); math.Abs(w-4) > 1e-9 {
		t.Fatalf("squares waste = %v, want 4 (=sqrt B)", w)
	}
}

func TestTilesCoverGridExactly(t *testing.T) {
	for _, tess := range []*Tessellation{Rows(8, 4), Columns(8, 4), Squares(8, 4)} {
		counts := map[int]int{}
		for _, id := range tess.Tiles {
			counts[id]++
		}
		for id, c := range counts {
			if c != 4 {
				t.Fatalf("tile %d has %d cells, want 4", id, c)
			}
		}
	}
}

// Lemma 2.7 on Fig 7's exact instance: the true optimum over every
// tessellation of the 8x8 grid with B=4 still has waste >= sqrt(B) = 2,
// i.e. no clever tiling reaches a constant independent of B.
func TestOptimalSearchFig7(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive search")
	}
	best, count := OptimalSearch(8, 4)
	t.Logf("examined %d tessellations, optimal waste %.2f", count, best)
	if count == 0 {
		t.Fatal("no tessellations found")
	}
	if best < 2 {
		t.Fatalf("optimal waste %.2f below sqrt(B)=2: contradicts Lemma 2.7", best)
	}
}

func TestOptimalSearchTiny(t *testing.T) {
	// 4x4 grid, B=4: quick exhaustive sanity.
	best, count := OptimalSearch(4, 4)
	if count == 0 {
		t.Fatal("no tessellations")
	}
	if best < 2 {
		t.Fatalf("4x4 optimum %.2f below 2", best)
	}
}

func TestStrategyReports(t *testing.T) {
	reps := StrategyReports(16, 16)
	if len(reps) != 3 {
		t.Fatalf("got %d reports", len(reps))
	}
	for _, r := range reps {
		if r.Waste < 1 {
			t.Fatalf("%v: waste below 1", r)
		}
		if r.String() == "" {
			t.Fatal("empty report string")
		}
	}
}
