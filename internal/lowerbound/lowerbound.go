// Package lowerbound reproduces the tessellation lower bound of Lemma 2.7
// and Theorem 2.8 (Fig 7): on a p x p grid of points, no tessellation into
// non-overlapping rectangles of B points each can answer every row and
// column query with at most k*q/B blocks for a constant k — the proof shows
// k^2 >= B.
//
// The package measures the worst-case waste factor of concrete tessellation
// strategies (rows, columns, sqrt(B)-squares), and for small instances
// (Fig 7's 8x8 grid with B = 4) searches every tessellation exhaustively to
// find the true optimum, demonstrating that the bound is not an artifact of
// the strategy choice.
package lowerbound

import "fmt"

// Tessellation is a p x p grid whose cells carry a tile id.
type Tessellation struct {
	P     int
	Tiles []int // row-major; tile id per cell
	NumT  int
}

// WasteFactor returns max over all row and column queries of
// blocksTouched / ceil(q/B), the constant the lemma proves cannot stay
// bounded as B grows. Every full row and full column (q = p points) is a
// query.
func (t *Tessellation) WasteFactor(b int) float64 {
	p := t.P
	need := float64((p + b - 1) / b)
	worst := 0.0
	seen := make(map[int]bool, p)
	for r := 0; r < p; r++ {
		clear(seen)
		for c := 0; c < p; c++ {
			seen[t.Tiles[r*p+c]] = true
		}
		if f := float64(len(seen)) / need; f > worst {
			worst = f
		}
	}
	for c := 0; c < p; c++ {
		clear(seen)
		for r := 0; r < p; r++ {
			seen[t.Tiles[r*p+c]] = true
		}
		if f := float64(len(seen)) / need; f > worst {
			worst = f
		}
	}
	return worst
}

// Rows tiles the grid with 1 x B horizontal tiles.
func Rows(p, b int) *Tessellation {
	t := &Tessellation{P: p, Tiles: make([]int, p*p)}
	id := 0
	for r := 0; r < p; r++ {
		for c := 0; c < p; c += b {
			for k := c; k < c+b && k < p; k++ {
				t.Tiles[r*p+k] = id
			}
			id++
		}
	}
	t.NumT = id
	return t
}

// Columns tiles the grid with B x 1 vertical tiles.
func Columns(p, b int) *Tessellation {
	t := &Tessellation{P: p, Tiles: make([]int, p*p)}
	id := 0
	for c := 0; c < p; c++ {
		for r := 0; r < p; r += b {
			for k := r; k < r+b && k < p; k++ {
				t.Tiles[k*p+c] = id
			}
			id++
		}
	}
	t.NumT = id
	return t
}

// Squares tiles the grid with s x s tiles where s = floor(sqrt(B)) (B must
// be a perfect square for exact coverage; otherwise tiles are s x (B/s)).
func Squares(p, b int) *Tessellation {
	s := 1
	for (s+1)*(s+1) <= b {
		s++
	}
	w := b / s
	t := &Tessellation{P: p, Tiles: make([]int, p*p)}
	id := 0
	for r := 0; r < p; r += s {
		for c := 0; c < p; c += w {
			for i := r; i < r+s && i < p; i++ {
				for j := c; j < c+w && j < p; j++ {
					t.Tiles[i*p+j] = id
				}
			}
			id++
		}
	}
	t.NumT = id
	return t
}

// OptimalSearch exhaustively enumerates every tessellation of a p x p grid
// into axis-aligned rectangles of exactly b cells and returns the minimum
// worst-case waste factor together with the number of tessellations
// examined. Feasible for Fig 7's setting (p = 8, b = 4). The returned
// optimum satisfies optimum >= sqrt(b)/ceil-rounding slack, the
// contradiction at the heart of Lemma 2.7.
func OptimalSearch(p, b int) (best float64, count int64) {
	// Rectangle shapes with area b.
	type shape struct{ h, w int }
	var shapes []shape
	for h := 1; h <= b; h++ {
		if b%h == 0 {
			shapes = append(shapes, shape{h: h, w: b / h})
		}
	}
	tiles := make([]int, p*p)
	for i := range tiles {
		tiles[i] = -1
	}
	best = float64(p) // upper bound: every block distinct
	t := &Tessellation{P: p, Tiles: tiles}

	var place func(tileID int)
	place = func(tileID int) {
		// First empty cell.
		idx := -1
		for i, v := range tiles {
			if v < 0 {
				idx = i
				break
			}
		}
		if idx < 0 {
			count++
			if f := t.WasteFactor(b); f < best {
				best = f
			}
			return
		}
		r, c := idx/p, idx%p
		for _, s := range shapes {
			if r+s.h > p || c+s.w > p {
				continue
			}
			ok := true
			for i := r; i < r+s.h && ok; i++ {
				for j := c; j < c+s.w; j++ {
					if tiles[i*p+j] >= 0 {
						ok = false
						break
					}
				}
			}
			if !ok {
				continue
			}
			for i := r; i < r+s.h; i++ {
				for j := c; j < c+s.w; j++ {
					tiles[i*p+j] = tileID
				}
			}
			place(tileID + 1)
			for i := r; i < r+s.h; i++ {
				for j := c; j < c+s.w; j++ {
					tiles[i*p+j] = -1
				}
			}
		}
	}
	place(0)
	return best, count
}

// Report describes a strategy's waste factor.
type Report struct {
	Strategy string
	P, B     int
	Waste    float64
}

func (r Report) String() string {
	return fmt.Sprintf("p=%d B=%d %-8s waste=%.2f", r.P, r.B, r.Strategy, r.Waste)
}

// StrategyReports measures the three analytic strategies on a p x p grid.
func StrategyReports(p, b int) []Report {
	return []Report{
		{Strategy: "rows", P: p, B: b, Waste: Rows(p, b).WasteFactor(b)},
		{Strategy: "columns", P: p, B: b, Waste: Columns(p, b).WasteFactor(b)},
		{Strategy: "squares", P: p, B: b, Waste: Squares(p, b).WasteFactor(b)},
	}
}
