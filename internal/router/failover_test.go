package router

// The PR's end-to-end oracle: a primary plus two snapshot-shipped replicas
// behind the read router, with a seeded killer severing and restoring
// replica fronts mid-query-phase and one replica fully re-hydrated between
// rounds. Every routed answer must equal the single-node sequential answer
// and not one request may fail — failover is allowed to cost retries,
// never correctness or availability.

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ccidx/internal/geom"
	"ccidx/internal/intervals"
	"ccidx/internal/replica"
	"ccidx/internal/server"
	"ccidx/internal/shard"
	"ccidx/internal/workload"
)

const failoverSpan = int64(4000)

// restartable is an HTTP front that can be killed and brought back on the
// SAME address — the router's endpoint list stays valid across restarts.
type restartable struct {
	mu   sync.Mutex
	addr string
	srv  *http.Server
}

func startRestartable(t *testing.T, h http.Handler) *restartable {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n := &restartable{addr: ln.Addr().String()}
	n.srv = &http.Server{Handler: h}
	go n.srv.Serve(ln)
	t.Cleanup(func() { n.kill() })
	return n
}

func (n *restartable) url() string { return "http://" + n.addr }

func (n *restartable) kill() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.srv != nil {
		n.srv.Close()
		n.srv = nil
	}
}

// restart brings the front back on the recorded address (no-op if it is
// already up), retrying briefly in case the old socket is still draining.
func (n *restartable) restart(t *testing.T, h http.Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.srv != nil {
		return // already running
	}
	var ln net.Listener
	var err error
	for i := 0; i < 100; i++ {
		ln, err = net.Listen("tcp", n.addr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Errorf("rebinding %s: %v", n.addr, err)
		return
	}
	n.srv = &http.Server{Handler: h}
	go n.srv.Serve(ln)
}

// replicaNode bundles one replica's pieces so it can be fully restarted
// (re-hydrated) as a unit.
type replicaNode struct {
	mu    sync.Mutex
	dir   string
	rep   *replica.Replica
	srv   *server.Server
	front *restartable
}

func newReplicaNode(t *testing.T, primaryURL, dir string) *replicaNode {
	t.Helper()
	rn := &replicaNode{dir: dir}
	rn.open(t, primaryURL, true)
	return rn
}

func (rn *replicaNode) open(t *testing.T, primaryURL string, firstTime bool) {
	t.Helper()
	rep, err := replica.Open(primaryURL, replica.Options{Dir: rn.dir, Poll: 2 * time.Millisecond})
	if err != nil {
		t.Fatalf("replica open: %v", err)
	}
	srv, err := server.New(server.Backend{Intervals: rep.Intervals()}, server.Config{
		ReadOnly: true, Status: rep.Status,
	})
	if err != nil {
		t.Fatalf("replica server: %v", err)
	}
	rn.rep, rn.srv = rep, srv
	if firstTime {
		rn.front = startRestartable(t, srv.Handler())
	} else {
		rn.front.restart(t, srv.Handler())
	}
}

// lsn returns the replica's applied LSN (0 while mid-restart).
func (rn *replicaNode) lsn() uint64 {
	rn.mu.Lock()
	defer rn.mu.Unlock()
	if rn.rep == nil {
		return 0
	}
	return rn.rep.LSN()
}

// rehydrate tears the whole node down and re-opens it from a fresh
// snapshot on the same address — the "process restart" the crash-only
// replica design prescribes.
func (rn *replicaNode) rehydrate(t *testing.T, primaryURL string) {
	rn.mu.Lock()
	defer rn.mu.Unlock()
	rn.front.kill()
	rn.srv.Close()
	rn.rep.Close()
	rn.open(t, primaryURL, false)
}

func oracleStab(im *shard.Intervals, q int64) map[uint64]bool {
	out := map[uint64]bool{}
	im.Stab(q, func(iv geom.Interval) bool { out[iv.ID] = true; return true })
	return out
}

func TestRoutedEqualsSequentialUnderKills(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node failover sweep")
	}
	// Primary: durable, replication-serving, never killed (replicas are
	// the fault domain under test).
	ivs := workload.UniformIntervals(91, 150, failoverSpan, 250)
	dm, err := shard.CreateIntervalsAt(t.TempDir(), shard.Config{
		Shards: 2, B: 8, Batch: 16,
		Partition: shard.PartitionRange, Span: failoverSpan, PoolFrames: 32,
	}, ivs, intervals.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer dm.Close()
	ps, err := server.New(server.Backend{Intervals: dm}, server.Config{Replication: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	primary := startRestartable(t, ps.Handler())

	r1 := newReplicaNode(t, primary.url(), t.TempDir())
	r2 := newReplicaNode(t, primary.url(), t.TempDir())
	nodes := []*replicaNode{r1, r2}
	defer func() {
		for _, rn := range nodes {
			rn.srv.Close()
			rn.rep.Close()
		}
	}()

	rt, err := New(Config{
		Endpoints:     []string{primary.url(), r1.front.url(), r2.front.url()},
		ProbeInterval: 15 * time.Millisecond,
		BaseBackoff:   500 * time.Microsecond,
		MaxAttempts:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	rng := rand.New(rand.NewSource(1993))
	nextID := uint64(700000)
	var head uint64 // primary's replication-log head (mutations we issued)

	post := func(path string) {
		resp, err := http.Post(primary.url()+path, "", nil)
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: %d", path, resp.StatusCode)
		}
	}

	const rounds = 3
	for round := 0; round < rounds; round++ {
		// Mutate the primary: inserts plus deletes of ids from this run.
		live := []uint64{}
		for i := 0; i < 40; i++ {
			lo := rng.Int63n(failoverSpan - 300)
			post(fmt.Sprintf("/v1/insert?lo=%d&hi=%d&id=%d", lo, lo+rng.Int63n(300), nextID))
			live = append(live, nextID)
			nextID++
			head++
		}
		for i := 0; i < 8; i++ {
			id := live[rng.Intn(len(live))]
			resp, err := http.Post(fmt.Sprintf("%s/v1/delete?id=%d", primary.url(), id), "", nil)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			// Only a found delete is logged; double-deletes in the random
			// id stream are acknowledged but not replicated.
			if string(body) != "" && resp.StatusCode == http.StatusOK {
				if strings.Contains(string(body), `"found":true`) {
					head++
				}
			}
		}

		// Quiesce: every replica applies the full log before the query
		// phase, so a correct answer is the same from any node.
		deadline := time.Now().Add(10 * time.Second)
		for _, rn := range nodes {
			for rn.lsn() < head {
				if time.Now().After(deadline) {
					t.Fatalf("round %d: replica stuck at lsn %d, want %d (status %+v)",
						round, rn.lsn(), head, rn.rep.Status())
				}
				time.Sleep(2 * time.Millisecond)
			}
		}

		// Query phase: concurrent routed reads against the sequential
		// oracle, while the killer severs and restores replica fronts.
		stopKiller := make(chan struct{})
		var killerWG sync.WaitGroup
		killerWG.Add(1)
		go func() {
			defer killerWG.Done()
			for k := 0; ; k++ {
				select {
				case <-stopKiller:
					return
				default:
				}
				victim := nodes[rng.Intn(len(nodes))]
				victim.front.kill()
				time.Sleep(time.Duration(10+rng.Intn(20)) * time.Millisecond)
				victim.mu.Lock()
				victim.front.restart(t, victim.srv.Handler())
				victim.mu.Unlock()
				time.Sleep(time.Duration(5+rng.Intn(10)) * time.Millisecond)
			}
		}()

		const clients, per = 3, 25
		var wg sync.WaitGroup
		var failures atomic.Int64
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				qrng := rand.New(rand.NewSource(int64(round*100 + c)))
				for i := 0; i < per; i++ {
					q := qrng.Int63n(failoverSpan)
					got, err := rt.Stab(context.Background(), q)
					if err != nil {
						failures.Add(1)
						t.Errorf("round %d stab(%d): %v", round, q, err)
						continue
					}
					want := oracleStab(dm, q)
					if len(got) != len(want) {
						failures.Add(1)
						t.Errorf("round %d stab(%d): routed %d rows, oracle %d", round, q, len(got), len(want))
						continue
					}
					for _, iv := range got {
						if !want[iv.ID] {
							failures.Add(1)
							t.Errorf("round %d stab(%d): routed extra id %d", round, q, iv.ID)
						}
					}
				}
			}(c)
		}
		wg.Wait()
		close(stopKiller)
		killerWG.Wait()
		// Killer may have left a front down; ensure both are up for the
		// next round's catch-up wait.
		for _, rn := range nodes {
			rn.mu.Lock()
			rn.front.restart(t, rn.srv.Handler())
			rn.mu.Unlock()
		}
		if failures.Load() != 0 {
			t.Fatalf("round %d: %d failed/wrong routed requests (stats %+v)", round, failures.Load(), rt.Stats())
		}

		// Between rounds: full process-style restart of one replica —
		// fresh snapshot hydration on the same endpoint address.
		nodes[round%len(nodes)].rehydrate(t, primary.url())
	}
	st := rt.Stats()
	if st.Retries == 0 && st.Failovers == 0 {
		t.Logf("warning: kill schedule never forced a retry (stats %+v)", st)
	}
	t.Logf("failover sweep stats: %+v", st)
}
