// Package router is a client-side read router over a set of replicated
// serving endpoints: it spreads queries across healthy replicas and turns
// individual-node failures — crashes, slow disks, injected latency,
// dropped connections, load shedding — into retries somewhere else instead
// of client-visible errors.
//
// Mechanisms, each aimed at a specific failure class:
//
//   - Health probes: a background loop polls every endpoint's /readyz and
//     routes only to nodes that report ready (hydrated, within their lag
//     bound). A replica that is rebuilding or lag-exceeded is steered
//     around before it costs a request a retry.
//   - Retry with exponential backoff + jitter: transient failures
//     (connection errors, 5xx, timeouts) move the request to another
//     endpoint after a jittered, exponentially growing delay; a 503's
//     Retry-After is honored as a lower bound so a shedding server is not
//     hammered.
//   - Hedging: when a response has not arrived after an adaptive delay
//     (p99 of recent latencies), a second copy of the request is sent to a
//     different replica and the first answer wins — the tail-latency
//     defense against a node that is up but slow.
//   - Circuit breaking: an endpoint that fails several times in a row is
//     taken out of rotation for a cool-off period, so a dead node costs
//     at most one probe per period instead of one timeout per request.
//
// # Why a routed answer can never be wrong
//
// Every response carries the answering node's (epoch, LSN) — the identity
// of the primary's mutation history and how much of it the node has
// applied. The router adopts the cluster's epoch from its probes and
// maintains a high-water LSN over the answers it has accepted. An answer
// is rejected (and the request retried elsewhere) if its epoch differs
// from the adopted one — the node is following a different history — or
// if its LSN is behind the watermark by more than the configured lag
// budget — the node is serving a past the router has already moved beyond.
// With MaxLag=0 accepted reads are monotonic: each answer reflects at
// least every mutation any previously accepted answer reflected.
package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ccidx/internal/geom"
	"ccidx/internal/replication"
)

// Config tunes the router. Zero values take the defaults.
type Config struct {
	// Endpoints are the base URLs to route over (required, >= 1).
	Endpoints []string
	// Client issues the requests (default: http.Client with no timeout —
	// per-attempt deadlines come from AttemptTimeout).
	Client *http.Client
	// ProbeInterval is the /readyz poll period (default 100ms).
	ProbeInterval time.Duration
	// AttemptTimeout bounds one HTTP attempt (default 1s).
	AttemptTimeout time.Duration
	// MaxAttempts bounds the retry rounds per request, hedges excluded
	// (default 4).
	MaxAttempts int
	// BaseBackoff/MaxBackoff shape the exponential retry delay (defaults
	// 2ms / 250ms); the actual delay is jittered in [d/2, d].
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// HedgeDelay controls hedging: 0 (default) adapts to the p99 of
	// recent request latencies, a positive value is used verbatim, and a
	// negative value disables hedging.
	HedgeDelay time.Duration
	// MinHedgeDelay floors the adaptive hedge delay (default 1ms).
	MinHedgeDelay time.Duration
	// MaxLag is the acceptable LSN gap between an answer and the router's
	// watermark. The zero value means strictly monotonic reads: every
	// accepted answer is at least as fresh as every previous one.
	MaxLag int64
	// BreakerFailures consecutive transient failures open an endpoint's
	// circuit (default 3); BreakerCooloff is how long it stays open
	// (default 250ms). A successful probe closes it early.
	BreakerFailures int
	BreakerCooloff  time.Duration
	// Seed makes the jitter and round-robin phase deterministic for tests
	// (default 1).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 100 * time.Millisecond
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 2 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 250 * time.Millisecond
	}
	if c.MinHedgeDelay <= 0 {
		c.MinHedgeDelay = time.Millisecond
	}
	if c.MaxLag < 0 {
		c.MaxLag = 0
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 3
	}
	if c.BreakerCooloff <= 0 {
		c.BreakerCooloff = 250 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// StatusError is a permanent (non-retryable) HTTP failure: the request
// itself is wrong, and no other replica would answer differently.
type StatusError struct {
	Code int
	Body string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("router: %d: %s", e.Code, strings.TrimSpace(e.Body))
}

// Stats is a snapshot of the router's counters.
type Stats struct {
	Requests     int64 // Do calls
	Attempts     int64 // HTTP attempts issued (including hedges)
	Retries      int64 // extra rounds after a failed first round
	Failovers    int64 // successes served by other than the first pick
	Hedges       int64 // hedge attempts issued
	HedgeWins    int64 // hedges whose answer was used
	StaleRejects int64 // answers rejected by the epoch/LSN check
	BreakerTrips int64 // circuits opened
	Exhausted    int64 // requests that failed every round
}

// epochView couples the adopted epoch with the LSN watermark accumulated
// under it. The pair is swapped as ONE unit on epoch adoption: an answer
// from a retired epoch that slips past the epoch check mid-swap can then
// at worst CAS its LSN into the retired view's watermark, never into the
// fresh epoch's — LSNs are not comparable across epochs, and a poisoned
// fresh watermark would reject every subsequent answer under MaxLag=0.
type epochView struct {
	epoch string
	mark  atomic.Uint64
}

// endpoint is one routed target's live state.
type endpoint struct {
	url string

	mu    sync.Mutex
	st    replication.Status // last probe result
	alive bool               // last probe reached it and said ready

	fails     atomic.Int32
	openUntil atomic.Int64 // unixnano; breaker open while in the future
}

func (ep *endpoint) probeResult(st replication.Status, ok bool) {
	ep.mu.Lock()
	ep.st = st
	ep.alive = ok && st.Ready
	ep.mu.Unlock()
	// Probes deliberately do NOT close the breaker: /readyz answering says
	// nothing about the data path (which is what tripped it). Recovery is
	// the cool-off expiring — the classic half-open retry.
}

func (ep *endpoint) snapshot() (replication.Status, bool) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.st, ep.alive
}

// Router routes reads across replicas. Create with New, Close when done.
type Router struct {
	cfg Config
	eps []*endpoint

	rr   atomic.Uint64 // round-robin cursor
	view atomic.Pointer[epochView]

	rngMu sync.Mutex
	rng   *rand.Rand

	latMu   sync.Mutex
	lats    [256]time.Duration
	latN    int // total observations (ring index = latN % len)
	hedgeMu sync.Mutex

	requests, attempts, retries, failovers   atomic.Int64
	hedges, hedgeWins, staleRejects, exhaust atomic.Int64
	breakerTrips, probeRounds                atomic.Int64

	stop chan struct{}
	done chan struct{}
}

// New builds a router and runs one synchronous probe round (so the first
// request already has health data), then probes in the background every
// ProbeInterval until Close.
func New(cfg Config) (*Router, error) {
	if len(cfg.Endpoints) == 0 {
		return nil, fmt.Errorf("router: at least one endpoint is required")
	}
	cfg = cfg.withDefaults()
	rt := &Router{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	rt.view.Store(&epochView{})
	for _, u := range cfg.Endpoints {
		rt.eps = append(rt.eps, &endpoint{url: strings.TrimRight(u, "/")})
	}
	rt.probeRound()
	go rt.probeLoop()
	return rt, nil
}

// Close stops the probe loop.
func (rt *Router) Close() {
	select {
	case <-rt.stop:
	default:
		close(rt.stop)
	}
	<-rt.done
}

func (rt *Router) probeLoop() {
	defer close(rt.done)
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.probeRound()
		}
	}
}

// probeRound polls every endpoint's /readyz concurrently and re-adopts the
// cluster epoch from the answers: the epoch reported by the most ready
// endpoints wins (ties break lexicographically, for determinism). An
// adoption change resets the LSN watermark — LSNs are not comparable
// across epochs.
func (rt *Router) probeRound() {
	type probe struct {
		st replication.Status
		ok bool
	}
	results := make([]probe, len(rt.eps))
	var wg sync.WaitGroup
	timeout := rt.cfg.ProbeInterval
	if timeout < 100*time.Millisecond {
		timeout = 100 * time.Millisecond
	}
	for i, ep := range rt.eps {
		wg.Add(1)
		go func(i int, ep *endpoint) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, ep.url+"/readyz", nil)
			if err != nil {
				return
			}
			resp, err := rt.cfg.Client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			var st replication.Status
			// /readyz answers the Status document on both 200 and 503.
			if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&st); err != nil {
				return
			}
			results[i] = probe{st: st, ok: true}
		}(i, ep)
	}
	wg.Wait()
	votes := make(map[string]int)
	for i, ep := range rt.eps {
		ep.probeResult(results[i].st, results[i].ok)
		if results[i].ok && results[i].st.Ready && results[i].st.Epoch != "" {
			votes[results[i].st.Epoch]++
		}
	}
	if len(votes) > 0 {
		best, bestN := "", -1
		for e, n := range votes {
			if n > bestN || (n == bestN && e < best) {
				best, bestN = e, n
			}
		}
		if cur := rt.view.Load(); cur.epoch != best {
			// A fresh view starts a fresh (zero) watermark with it.
			rt.view.Store(&epochView{epoch: best})
		}
	}
	rt.probeRounds.Add(1)
}

// pick chooses the next endpoint, preferring (1) ready endpoints on the
// adopted epoch with closed breakers, then (2) anything with a closed
// breaker, then (3) anything at all — a request must always have somewhere
// to go; the response epoch/LSN check protects correctness even on the
// desperation tiers. Endpoints in `tried` are skipped (nil when every
// endpoint has been tried).
func (rt *Router) pick(tried map[string]bool) *endpoint {
	now := time.Now().UnixNano()
	adopted := rt.view.Load().epoch
	start := int(rt.rr.Add(1))
	n := len(rt.eps)
	var tier2, tier3 *endpoint
	for k := 0; k < n; k++ {
		ep := rt.eps[(start+k)%n]
		if tried[ep.url] {
			continue
		}
		if tier3 == nil {
			tier3 = ep
		}
		open := ep.openUntil.Load() > now
		if !open && tier2 == nil {
			tier2 = ep
		}
		st, alive := ep.snapshot()
		if alive && !open && (adopted == "" || st.Epoch == adopted) {
			return ep
		}
	}
	if tier2 != nil {
		return tier2
	}
	return tier3
}

// attemptResult classifies one HTTP attempt.
type attemptResult struct {
	body       []byte
	err        error
	permanent  bool
	retryAfter time.Duration
	latency    time.Duration
	ep         *endpoint
}

// attempt issues one GET and classifies the outcome. Transient failures
// feed the endpoint's breaker; successes reset it.
func (rt *Router) attempt(ctx context.Context, ep *endpoint, pathQuery string) attemptResult {
	rt.attempts.Add(1)
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ep.url+pathQuery, nil)
	if err != nil {
		return attemptResult{err: err, permanent: true, ep: ep}
	}
	start := time.Now()
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		rt.noteFail(ep)
		return attemptResult{err: fmt.Errorf("router: %s: %w", ep.url, err), ep: ep}
	}
	defer resp.Body.Close()
	body, rerr := io.ReadAll(resp.Body)
	lat := time.Since(start)
	switch {
	case resp.StatusCode == http.StatusOK && rerr == nil:
		if !rt.acceptable(resp.Header) {
			rt.noteFail(ep)
			return attemptResult{err: fmt.Errorf("router: %s: stale answer rejected", ep.url), ep: ep}
		}
		rt.noteOK(ep)
		rt.observeLatency(lat)
		return attemptResult{body: body, latency: lat, ep: ep}
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		// The request itself is wrong (bad parameters, read-only replica
		// for a mutation, ...): retrying elsewhere cannot help.
		return attemptResult{err: &StatusError{Code: resp.StatusCode, Body: string(body)}, permanent: true, ep: ep}
	default:
		rt.noteFail(ep)
		ra := replication.ParseRetryAfter(resp.Header.Get("Retry-After"), 2*time.Second)
		return attemptResult{
			err:        fmt.Errorf("router: %s: %s", ep.url, resp.Status),
			retryAfter: ra,
			ep:         ep,
		}
	}
}

// acceptable is the wrong-answer guard (see the package comment). Epoch
// check and watermark advance both go through one loaded epochView, and
// acceptance only counts if that view is still the adopted one afterwards
// — an answer racing a probe's epoch swap is re-judged against the fresh
// view instead of leaking a cross-epoch LSN into its watermark.
func (rt *Router) acceptable(h http.Header) bool {
	epoch := h.Get(replication.HeaderEpoch)
	if epoch == "" {
		return true // un-stamped server (not part of this protocol)
	}
	lsn, lsnErr := strconv.ParseUint(h.Get(replication.HeaderLSN), 10, 64)
	for {
		v := rt.view.Load()
		if v.epoch != "" && epoch != v.epoch {
			rt.staleRejects.Add(1)
			return false
		}
		if lsnErr != nil {
			return true
		}
		accepted := false
		for !accepted {
			w := v.mark.Load()
			if lsn+uint64(rt.cfg.MaxLag) < w {
				rt.staleRejects.Add(1)
				return false
			}
			accepted = lsn <= w || v.mark.CompareAndSwap(w, lsn)
		}
		if rt.view.Load() == v {
			return true
		}
		// The adopted view changed mid-check: the watermark we advanced is
		// retired. Re-run against the live view.
	}
}

func (rt *Router) noteFail(ep *endpoint) {
	if ep.fails.Add(1) >= int32(rt.cfg.BreakerFailures) {
		if ep.openUntil.Swap(time.Now().Add(rt.cfg.BreakerCooloff).UnixNano()) <= time.Now().UnixNano() {
			rt.breakerTrips.Add(1)
		}
		ep.fails.Store(0)
	}
}

func (rt *Router) noteOK(ep *endpoint) { ep.fails.Store(0) }

func (rt *Router) observeLatency(d time.Duration) {
	rt.latMu.Lock()
	rt.lats[rt.latN%len(rt.lats)] = d
	rt.latN++
	rt.latMu.Unlock()
}

// hedgeDelay returns how long to wait before hedging, or <0 to disable.
// Adaptive mode uses the p99 of the recent latency window once it has
// enough samples, clamped below by MinHedgeDelay.
func (rt *Router) hedgeDelay() time.Duration {
	if rt.cfg.HedgeDelay < 0 {
		return -1
	}
	if rt.cfg.HedgeDelay > 0 {
		return rt.cfg.HedgeDelay
	}
	rt.latMu.Lock()
	n := rt.latN
	if n > len(rt.lats) {
		n = len(rt.lats)
	}
	if n < 16 {
		rt.latMu.Unlock()
		return 10 * time.Millisecond
	}
	window := make([]time.Duration, n)
	copy(window, rt.lats[:n])
	rt.latMu.Unlock()
	sort.Slice(window, func(a, b int) bool { return window[a] < window[b] })
	d := window[(99*(n-1))/100]
	if d < rt.cfg.MinHedgeDelay {
		d = rt.cfg.MinHedgeDelay
	}
	return d
}

// backoff returns the jittered delay before retry round `round` (1-based),
// floored by a server-provided Retry-After hint.
func (rt *Router) backoff(round int, hint time.Duration) time.Duration {
	d := rt.cfg.BaseBackoff << (round - 1)
	if d > rt.cfg.MaxBackoff || d <= 0 {
		d = rt.cfg.MaxBackoff
	}
	rt.rngMu.Lock()
	d = d/2 + time.Duration(rt.rng.Int63n(int64(d/2)+1))
	rt.rngMu.Unlock()
	if hint > d {
		d = hint
	}
	return d
}

// round runs one retry round: a primary attempt, plus (if the answer is
// slow in coming) one hedged attempt on a different endpoint; the first
// acceptable answer wins and the loser is canceled via its own context.
func (rt *Router) round(ctx context.Context, pathQuery string, tried map[string]bool, first **endpoint) ([]byte, attemptResult, error) {
	ep := rt.pick(tried)
	if ep == nil {
		return nil, attemptResult{}, fmt.Errorf("router: no endpoint left to try")
	}
	if *first == nil {
		*first = ep
	}
	tried[ep.url] = true
	ctxRound, cancelRound := context.WithCancel(ctx)
	defer cancelRound()

	type tagged struct {
		res   attemptResult
		hedge bool
	}
	ch := make(chan tagged, 2)
	go func() { ch <- tagged{res: rt.attempt(ctxRound, ep, pathQuery)} }()

	var hedgeTimer <-chan time.Time
	if hd := rt.hedgeDelay(); hd >= 0 {
		t := time.NewTimer(hd)
		defer t.Stop()
		hedgeTimer = t.C
	}
	outstanding := 1
	var lastFail attemptResult
	for outstanding > 0 {
		select {
		case <-ctx.Done():
			return nil, lastFail, ctx.Err()
		case <-hedgeTimer:
			hedgeTimer = nil
			hep := rt.pick(tried)
			if hep == nil {
				continue
			}
			tried[hep.url] = true
			rt.hedges.Add(1)
			outstanding++
			go func() { ch <- tagged{res: rt.attempt(ctxRound, hep, pathQuery), hedge: true} }()
		case t := <-ch:
			outstanding--
			if t.res.err == nil {
				if t.hedge {
					rt.hedgeWins.Add(1)
				}
				return t.res.body, t.res, nil
			}
			if t.res.permanent {
				return nil, t.res, t.res.err
			}
			lastFail = t.res
		}
	}
	return nil, lastFail, lastFail.err
}

// Do routes one GET (path + query, e.g. "/v1/stab?q=17") and returns the
// response body. Transient failures are retried on other endpoints with
// backoff; permanent failures (4xx) return immediately as *StatusError.
func (rt *Router) Do(ctx context.Context, pathQuery string) ([]byte, error) {
	rt.requests.Add(1)
	tried := make(map[string]bool, len(rt.eps))
	var firstPick *endpoint
	var lastErr error
	var hint time.Duration
	for round := 0; round < rt.cfg.MaxAttempts; round++ {
		wrapped := len(tried) >= len(rt.eps)
		if round > 0 {
			rt.retries.Add(1)
			// A server's Retry-After floors the backoff only once every
			// endpoint has been tried this cycle: while an untried replica
			// remains, failing over to it immediately beats waiting out one
			// shedding server's hint.
			h := time.Duration(0)
			if wrapped {
				h = hint
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(rt.backoff(round, h)):
			}
		}
		if wrapped {
			// Later rounds may revisit everyone (a shedding server can
			// clear between rounds).
			clear(tried)
		}
		body, res, err := rt.round(ctx, pathQuery, tried, &firstPick)
		if err == nil {
			if res.ep != firstPick {
				rt.failovers.Add(1)
			}
			return body, nil
		}
		if res.permanent {
			return nil, err
		}
		// Only the CALLER's context ending is fatal. An attempt whose error
		// wraps Canceled/DeadlineExceeded because its own AttemptTimeout
		// fired is the transient hung-endpoint case — exactly what failover
		// exists for — so it falls through to the retry loop.
		if ctx.Err() != nil {
			return nil, err
		}
		lastErr = err
		hint = res.retryAfter
	}
	rt.exhaust.Add(1)
	return nil, fmt.Errorf("router: all %d rounds failed: %w", rt.cfg.MaxAttempts, lastErr)
}

// GetJSON routes a GET and decodes the JSON response into out.
func (rt *Router) GetJSON(ctx context.Context, pathQuery string, out any) error {
	body, err := rt.Do(ctx, pathQuery)
	if err != nil {
		return err
	}
	return json.Unmarshal(body, out)
}

// ivRow mirrors the server's interval wire form.
type ivRow struct {
	Lo int64  `json:"lo"`
	Hi int64  `json:"hi"`
	ID uint64 `json:"id"`
}

func rowsToIntervals(rows []ivRow) []geom.Interval {
	out := make([]geom.Interval, len(rows))
	for i, r := range rows {
		out[i] = geom.Interval{Lo: r.Lo, Hi: r.Hi, ID: r.ID}
	}
	return out
}

// Stab routes a stabbing query.
func (rt *Router) Stab(ctx context.Context, q int64) ([]geom.Interval, error) {
	var rows []ivRow
	if err := rt.GetJSON(ctx, "/v1/stab?q="+strconv.FormatInt(q, 10), &rows); err != nil {
		return nil, err
	}
	return rowsToIntervals(rows), nil
}

// Intersect routes an interval-intersection query.
func (rt *Router) Intersect(ctx context.Context, lo, hi int64) ([]geom.Interval, error) {
	var rows []ivRow
	if err := rt.GetJSON(ctx,
		"/v1/intersect?lo="+strconv.FormatInt(lo, 10)+"&hi="+strconv.FormatInt(hi, 10), &rows); err != nil {
		return nil, err
	}
	return rowsToIntervals(rows), nil
}

// Ready returns how many endpoints the last probe round found ready.
func (rt *Router) Ready() int {
	n := 0
	for _, ep := range rt.eps {
		if _, alive := ep.snapshot(); alive {
			n++
		}
	}
	return n
}

// Epoch returns the adopted cluster epoch ("" before the first successful
// probe).
func (rt *Router) Epoch() string { return rt.view.Load().epoch }

// Watermark returns the high-water LSN over answers accepted under the
// adopted epoch.
func (rt *Router) Watermark() uint64 { return rt.view.Load().mark.Load() }

// Stats snapshots the router's counters.
func (rt *Router) Stats() Stats {
	return Stats{
		Requests:     rt.requests.Load(),
		Attempts:     rt.attempts.Load(),
		Retries:      rt.retries.Load(),
		Failovers:    rt.failovers.Load(),
		Hedges:       rt.hedges.Load(),
		HedgeWins:    rt.hedgeWins.Load(),
		StaleRejects: rt.staleRejects.Load(),
		BreakerTrips: rt.breakerTrips.Load(),
		Exhausted:    rt.exhaust.Load(),
	}
}
