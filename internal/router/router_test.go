package router

// Router tests: spreading, retry/failover, permanent-error passthrough,
// hedging, circuit breaking, the epoch/LSN wrong-answer guard, and an
// end-to-end run against the HTTP fault injector where every request must
// still succeed.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ccidx/internal/replication"
	"ccidx/internal/server"
)

// fakeEP is a scriptable endpoint: readiness document plus a /data route
// whose behavior (status, delay, stamping) the test controls live.
type fakeEP struct {
	name  string
	epoch atomic.Pointer[string]
	lsn   atomic.Uint64
	ready atomic.Bool

	dataStatus atomic.Int32 // 0 => 200
	dataDelay  atomic.Int64 // nanoseconds
	served     atomic.Int64
}

func newFakeEP(t *testing.T, name, epoch string, lsn uint64) (*fakeEP, *httptest.Server) {
	t.Helper()
	f := &fakeEP{name: name}
	f.epoch.Store(&epoch)
	f.lsn.Store(lsn)
	f.ready.Store(true)
	mux := http.NewServeMux()
	stamp := func(w http.ResponseWriter) {
		w.Header().Set(replication.HeaderEpoch, *f.epoch.Load())
		w.Header().Set(replication.HeaderLSN, strconv.FormatUint(f.lsn.Load(), 10))
	}
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		stamp(w)
		st := replication.Status{Ready: f.ready.Load(), Role: "replica", Epoch: *f.epoch.Load(), LSN: f.lsn.Load()}
		if !st.Ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(st)
	})
	mux.HandleFunc("/data", func(w http.ResponseWriter, r *http.Request) {
		if d := f.dataDelay.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		stamp(w)
		if code := f.dataStatus.Load(); code != 0 {
			if code == http.StatusServiceUnavailable {
				w.Header().Set("Retry-After", "1")
			}
			http.Error(w, "scripted failure", int(code))
			return
		}
		f.served.Add(1)
		fmt.Fprint(w, f.name)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return f, ts
}

func newTestRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// TestRouterSpreads: three ready endpooints all get traffic, every request
// succeeds, and the adopted epoch is the cluster's.
func TestRouterSpreads(t *testing.T) {
	var urls []string
	var fakes []*fakeEP
	for _, n := range []string{"A", "B", "C"} {
		f, ts := newFakeEP(t, n, "e1", 100)
		fakes = append(fakes, f)
		urls = append(urls, ts.URL)
	}
	rt := newTestRouter(t, Config{Endpoints: urls, HedgeDelay: -1})
	if rt.Ready() != 3 {
		t.Fatalf("ready %d, want 3 after the synchronous probe round", rt.Ready())
	}
	if rt.Epoch() != "e1" {
		t.Fatalf("adopted epoch %q, want e1", rt.Epoch())
	}
	for i := 0; i < 30; i++ {
		body, err := rt.Do(context.Background(), "/data")
		if err != nil {
			t.Fatal(err)
		}
		if s := string(body); s != "A" && s != "B" && s != "C" {
			t.Fatalf("unexpected body %q", s)
		}
	}
	for _, f := range fakes {
		if f.served.Load() == 0 {
			t.Fatalf("endpoint %s got no traffic", f.name)
		}
	}
	if st := rt.Stats(); st.Requests != 30 || st.Retries != 0 || st.Exhausted != 0 {
		t.Fatalf("clean run stats %+v", st)
	}
}

// TestRouterFailover: a persistently failing endpoint costs retries, never
// request failures.
func TestRouterFailover(t *testing.T) {
	fa, tsA := newFakeEP(t, "A", "e1", 100)
	_, tsB := newFakeEP(t, "B", "e1", 100)
	fa.dataStatus.Store(http.StatusInternalServerError)

	rt := newTestRouter(t, Config{
		Endpoints: []string{tsA.URL, tsB.URL}, HedgeDelay: -1,
		BaseBackoff: 100 * time.Microsecond,
	})
	for i := 0; i < 20; i++ {
		body, err := rt.Do(context.Background(), "/data")
		if err != nil {
			t.Fatal(err)
		}
		if string(body) != "B" {
			t.Fatalf("answer from the failing endpoint: %q", body)
		}
	}
	st := rt.Stats()
	if st.Failovers == 0 {
		t.Fatalf("no failovers recorded: %+v", st)
	}
}

// TestRouterAttemptTimeoutFailover: an endpoint that hangs past
// AttemptTimeout is a TRANSIENT failure — the request must fail over to
// the healthy replica, not abort because the attempt's own deadline error
// looks like a context cancellation.
func TestRouterAttemptTimeoutFailover(t *testing.T) {
	fa, tsA := newFakeEP(t, "A", "e1", 100)
	_, tsB := newFakeEP(t, "B", "e1", 100)
	fa.dataDelay.Store(int64(400 * time.Millisecond)) // hung vs. the 20ms attempt budget

	rt := newTestRouter(t, Config{
		Endpoints: []string{tsA.URL, tsB.URL}, HedgeDelay: -1,
		AttemptTimeout: 20 * time.Millisecond, BaseBackoff: 100 * time.Microsecond,
	})
	for i := 0; i < 6; i++ {
		body, err := rt.Do(context.Background(), "/data")
		if err != nil {
			t.Fatalf("request %d failed instead of failing over from the hung endpoint: %v", i, err)
		}
		if string(body) != "B" {
			t.Fatalf("answer %q from the hung endpoint", body)
		}
	}
	if st := rt.Stats(); st.Failovers == 0 {
		t.Fatalf("no failovers recorded: %+v", st)
	}
}

// TestRouterCallerCancelAborts: the CALLER's context ending is the one
// cancellation that must stop the retry loop promptly.
func TestRouterCallerCancelAborts(t *testing.T) {
	fa, tsA := newFakeEP(t, "A", "e1", 100)
	fa.dataDelay.Store(int64(400 * time.Millisecond))
	rt := newTestRouter(t, Config{
		Endpoints: []string{tsA.URL}, HedgeDelay: -1,
		AttemptTimeout: time.Second, MaxAttempts: 100,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := rt.Do(ctx, "/data"); err == nil {
		t.Fatal("Do succeeded past its caller's deadline")
	}
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Fatalf("caller cancellation honored only after %v", elapsed)
	}
}

// TestRouterPermanentError: a 4xx returns immediately as *StatusError with
// no retries — every replica would answer the same.
func TestRouterPermanentError(t *testing.T) {
	f, ts := newFakeEP(t, "A", "e1", 1)
	f.dataStatus.Store(http.StatusBadRequest)
	rt := newTestRouter(t, Config{Endpoints: []string{ts.URL}, HedgeDelay: -1})

	_, err := rt.Do(context.Background(), "/data")
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("err %v, want StatusError 400", err)
	}
	if st := rt.Stats(); st.Retries != 0 {
		t.Fatalf("4xx was retried: %+v", st)
	}
}

// TestRouterHedge: a slow endpoint is hedged after the delay and the fast
// copy's answer wins well before the slow one finishes.
func TestRouterHedge(t *testing.T) {
	fa, tsA := newFakeEP(t, "A", "e1", 100)
	fb, tsB := newFakeEP(t, "B", "e1", 100)
	fa.dataDelay.Store(int64(300 * time.Millisecond))
	fb.dataDelay.Store(int64(300 * time.Millisecond))

	rt := newTestRouter(t, Config{
		Endpoints:  []string{tsA.URL, tsB.URL},
		HedgeDelay: 5 * time.Millisecond,
	})
	// Whichever endpoint the round-robin picks first is slow... make only
	// the first pick slow by watching who serves: run one request, then
	// speed up whoever served it and slow the other. Simpler determinism:
	// make A slow and B fast, and force the first pick to be A by scripting
	// B briefly not-ready is racy — instead just assert the hedge fires and
	// the request completes in far less than 2x the slow latency.
	fb.dataDelay.Store(0)
	fa.dataDelay.Store(int64(300 * time.Millisecond))
	start := time.Now()
	var sawHedgeWin bool
	for i := 0; i < 4; i++ {
		if _, err := rt.Do(context.Background(), "/data"); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	st := rt.Stats()
	sawHedgeWin = st.HedgeWins > 0
	// 4 requests; ~2 of them pick slow-A first and must be rescued by a
	// hedge to B in ~5ms. Without hedging those would cost 300ms each.
	if elapsed > 600*time.Millisecond {
		t.Fatalf("hedging did not rescue slow picks: %v elapsed, stats %+v", elapsed, st)
	}
	if st.Hedges == 0 || !sawHedgeWin {
		t.Fatalf("no hedge activity: %+v", st)
	}
}

// TestRouterBreaker: an endpoint whose probes look fine but whose data
// path keeps failing trips its breaker and drops out of rotation; the
// router keeps serving from the rest.
func TestRouterBreaker(t *testing.T) {
	fa, tsA := newFakeEP(t, "A", "e1", 100)
	_, tsB := newFakeEP(t, "B", "e1", 100)
	fa.dataStatus.Store(http.StatusInternalServerError) // ready, but broken

	rt := newTestRouter(t, Config{
		Endpoints: []string{tsA.URL, tsB.URL}, HedgeDelay: -1,
		BaseBackoff: 100 * time.Microsecond, BreakerFailures: 2,
		BreakerCooloff: time.Minute, // stays open for the whole test
	})
	for i := 0; i < 20; i++ {
		body, err := rt.Do(context.Background(), "/data")
		if err != nil {
			t.Fatal(err)
		}
		if string(body) != "B" {
			t.Fatalf("answer %q from the broken endpoint?", body)
		}
	}
	st := rt.Stats()
	if st.BreakerTrips == 0 {
		t.Fatalf("breaker never tripped: %+v", st)
	}
	// Once open, the broken endpoint stops being picked: attempts settle to
	// ~one per request instead of two.
	if st.Attempts >= st.Requests*2 {
		t.Fatalf("breaker open but every request still tried the broken endpoint: %+v", st)
	}
}

// TestRouterStaleLSNReject: once the watermark has seen a fresh answer, an
// endpoint lagging beyond MaxLag is rejected and the request retried — the
// monotonic-read guarantee.
func TestRouterStaleLSNReject(t *testing.T) {
	fa, tsA := newFakeEP(t, "A", "e1", 1000)
	fb, tsB := newFakeEP(t, "B", "e1", 5)
	_ = fa
	_ = fb
	rt := newTestRouter(t, Config{
		Endpoints: []string{tsA.URL, tsB.URL}, HedgeDelay: -1,
		MaxLag: 10, BaseBackoff: 100 * time.Microsecond,
	})
	for i := 0; i < 20; i++ {
		body, err := rt.Do(context.Background(), "/data")
		if err != nil {
			t.Fatal(err)
		}
		if rt.Watermark() >= 1000 && string(body) != "A" {
			t.Fatalf("stale endpoint's answer accepted after watermark %d", rt.Watermark())
		}
	}
	st := rt.Stats()
	if st.StaleRejects == 0 {
		t.Fatalf("lagging endpoint never rejected: %+v", st)
	}
	if rt.Watermark() != 1000 {
		t.Fatalf("watermark %d, want 1000", rt.Watermark())
	}
}

// TestRouterEpochReject: an endpoint on a different epoch than the adopted
// majority never gets an answer accepted.
func TestRouterEpochReject(t *testing.T) {
	_, tsA := newFakeEP(t, "A", "e1", 10)
	_, tsB := newFakeEP(t, "B", "e1", 10)
	fc, tsC := newFakeEP(t, "C", "OTHER", 999999)
	_ = fc
	rt := newTestRouter(t, Config{
		Endpoints: []string{tsA.URL, tsB.URL, tsC.URL}, HedgeDelay: -1,
		BaseBackoff: 100 * time.Microsecond,
	})
	if rt.Epoch() != "e1" {
		t.Fatalf("adopted %q, want majority epoch e1", rt.Epoch())
	}
	for i := 0; i < 30; i++ {
		body, err := rt.Do(context.Background(), "/data")
		if err != nil {
			t.Fatal(err)
		}
		if string(body) == "C" {
			t.Fatal("answer accepted from the wrong-epoch endpoint")
		}
	}
}

// TestAcceptableEpochSwapNoPoison pins the adoption race: an old-epoch
// answer landing concurrently with epoch adoption must not plant its LSN
// in the new epoch's watermark — LSNs are not comparable across epochs,
// and a poisoned watermark would reject every new-epoch answer forever
// under MaxLag=0.
func TestAcceptableEpochSwapNoPoison(t *testing.T) {
	_, ts := newFakeEP(t, "A", "e1", 10)
	rt := newTestRouter(t, Config{Endpoints: []string{ts.URL}, HedgeDelay: -1})
	if rt.Epoch() != "e1" {
		t.Fatalf("adopted %q, want e1", rt.Epoch())
	}
	// The interleaving, spelled out: an acceptable() call has loaded the e1
	// view and is mid-check when a probe adopts epoch e2; its huge e1 LSN
	// then lands on the RETIRED view, not the fresh one.
	old := rt.view.Load()
	rt.view.Store(&epochView{epoch: "e2"})
	old.mark.Store(1 << 40)

	h := http.Header{}
	h.Set(replication.HeaderEpoch, "e2")
	h.Set(replication.HeaderLSN, "1")
	if !rt.acceptable(h) {
		t.Fatal("fresh-epoch answer rejected: retired-epoch LSN poisoned the new watermark")
	}
	if rt.Watermark() != 1 {
		t.Fatalf("watermark %d, want 1", rt.Watermark())
	}
	// An answer still STAMPED with the retired epoch is rejected outright,
	// whatever its LSN claims.
	h.Set(replication.HeaderEpoch, "e1")
	h.Set(replication.HeaderLSN, strconv.FormatUint(1<<40, 10))
	if rt.acceptable(h) {
		t.Fatal("retired-epoch answer accepted")
	}
}

// TestAcceptableEpochChurnRace hammers acceptable() from several
// goroutines with mixed-epoch answers while adoptions churn underneath —
// the guard must stay race-free and terminate, and a fresh answer under
// the settled epoch must still be accepted.
func TestAcceptableEpochChurnRace(t *testing.T) {
	_, ts := newFakeEP(t, "A", "e1", 1)
	rt := newTestRouter(t, Config{Endpoints: []string{ts.URL}, HedgeDelay: -1})
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				rt.view.Store(&epochView{epoch: fmt.Sprintf("e%d", i%2+1)})
			}
		}
	}()
	var workers sync.WaitGroup
	for g := 0; g < 4; g++ {
		workers.Add(1)
		go func(g int) {
			defer workers.Done()
			h := http.Header{}
			for i := 0; i < 2000; i++ {
				h.Set(replication.HeaderEpoch, fmt.Sprintf("e%d", (g+i)%2+1))
				h.Set(replication.HeaderLSN, strconv.Itoa(1_000_000-i))
				rt.acceptable(h)
			}
		}(g)
	}
	workers.Wait()
	close(stop)
	churn.Wait()
	rt.view.Store(&epochView{epoch: "e2"})
	h := http.Header{}
	h.Set(replication.HeaderEpoch, "e2")
	h.Set(replication.HeaderLSN, "5")
	if !rt.acceptable(h) {
		t.Fatal("settled-epoch answer rejected after churn")
	}
}

// TestRouterNotReadySteering: probes steer traffic away from a not-ready
// endpoint without failing requests, and bring it back when it recovers.
func TestRouterNotReadySteering(t *testing.T) {
	fa, tsA := newFakeEP(t, "A", "e1", 100)
	fb, tsB := newFakeEP(t, "B", "e1", 100)
	fa.ready.Store(false)

	rt := newTestRouter(t, Config{
		Endpoints: []string{tsA.URL, tsB.URL}, HedgeDelay: -1,
		ProbeInterval: 10 * time.Millisecond,
	})
	if rt.Ready() != 1 {
		t.Fatalf("ready %d, want 1", rt.Ready())
	}
	for i := 0; i < 10; i++ {
		body, err := rt.Do(context.Background(), "/data")
		if err != nil {
			t.Fatal(err)
		}
		if string(body) != "B" {
			t.Fatalf("not-ready endpoint served a request")
		}
	}
	fa.ready.Store(true)
	deadline := time.Now().Add(2 * time.Second)
	for rt.Ready() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("recovered endpoint never rejoined")
		}
		time.Sleep(5 * time.Millisecond)
	}
	servedB := fb.served.Load()
	for i := 0; i < 20; i++ {
		if _, err := rt.Do(context.Background(), "/data"); err != nil {
			t.Fatal(err)
		}
	}
	if fa.served.Load() == 0 {
		t.Fatal("recovered endpoint got no traffic")
	}
	_ = servedB
}

// TestRouterAgainstFaults is the fault-model integration: endpoints behind
// the seeded HTTP fault injector (latency + 500s + dropped connections),
// concurrent clients, and the requirement that not one request fails.
func TestRouterAgainstFaults(t *testing.T) {
	var urls []string
	for i := 0; i < 3; i++ {
		mux := http.NewServeMux()
		epoch := "e1"
		name := fmt.Sprintf("ep%d", i)
		mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
			json.NewEncoder(w).Encode(replication.Status{Ready: true, Epoch: epoch, LSN: 7})
		})
		mux.HandleFunc("/data", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set(replication.HeaderEpoch, epoch)
			w.Header().Set(replication.HeaderLSN, "7")
			fmt.Fprint(w, name)
		})
		faulty := server.WithFaults(mux, server.FaultConfig{
			Latency: 200 * time.Microsecond, Jitter: 2 * time.Millisecond,
			ErrorProb: 0.15, DropProb: 0.1, Seed: int64(100 + i),
			Exempt: []string{"/readyz"},
		})
		ts := httptest.NewServer(faulty)
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}
	rt := newTestRouter(t, Config{
		Endpoints: urls, MaxAttempts: 8,
		BaseBackoff: 200 * time.Microsecond, HedgeDelay: 0,
	})
	const clients, per = 4, 50
	var wg sync.WaitGroup
	var failed atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				body, err := rt.Do(context.Background(), "/data")
				if err != nil || len(body) == 0 {
					t.Errorf("request failed under faults: %v", err)
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	st := rt.Stats()
	if failed.Load() != 0 {
		t.Fatalf("%d failed requests; stats %+v", failed.Load(), st)
	}
	if st.Retries == 0 {
		t.Fatalf("fault injection active but zero retries: %+v", st)
	}
	t.Logf("fault run stats: %+v", st)
}

// TestParseRetryAfter pins the shared header parser.
func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0}, {"junk", 0}, {"-3", 0},
		{"1", time.Second}, {"2", 2 * time.Second}, {"60", 5 * time.Second},
	}
	for _, c := range cases {
		if got := replication.ParseRetryAfter(c.in, 5*time.Second); got != c.want {
			t.Errorf("ParseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}
