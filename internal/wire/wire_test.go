package wire

import (
	"testing"
	"testing/quick"
)

func TestRoundTripAllTypes(t *testing.T) {
	buf := make([]byte, 64)
	w := NewCursor(buf)
	w.PutU8(0xAB)
	w.PutU16(0xCDEF)
	w.PutU32(0xDEADBEEF)
	w.PutU64(0x0123456789ABCDEF)
	w.PutI64(-42)

	r := NewCursor(buf)
	if got := r.U8(); got != 0xAB {
		t.Fatalf("U8 = %#x", got)
	}
	if got := r.U16(); got != 0xCDEF {
		t.Fatalf("U16 = %#x", got)
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Fatalf("U32 = %#x", got)
	}
	if got := r.U64(); got != 0x0123456789ABCDEF {
		t.Fatalf("U64 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Fatalf("I64 = %d", got)
	}
	if r.Offset() != w.Offset() {
		t.Fatalf("offsets differ: %d vs %d", r.Offset(), w.Offset())
	}
}

func TestI64RoundTripProperty(t *testing.T) {
	f := func(v int64) bool {
		buf := make([]byte, 8)
		NewCursor(buf).PutI64(v)
		return NewCursor(buf).I64() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeekAndRemaining(t *testing.T) {
	c := NewCursor(make([]byte, 10))
	c.PutU32(1)
	if c.Remaining() != 6 {
		t.Fatalf("Remaining = %d", c.Remaining())
	}
	c.Seek(8)
	if c.Offset() != 8 || c.Remaining() != 2 {
		t.Fatalf("after seek: off=%d rem=%d", c.Offset(), c.Remaining())
	}
}

func TestOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on overflow")
		}
	}()
	c := NewCursor(make([]byte, 4))
	c.PutU64(1)
}

func TestSeekOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad seek")
		}
	}()
	NewCursor(make([]byte, 4)).Seek(5)
}
