// Package wire provides fixed-width little-endian page codecs.
//
// Every index structure in this repository lays out its disk pages with a
// Cursor: a bounds-checked sequential reader/writer over a page buffer.
// Records are fixed width so that a page's capacity in records is a
// compile-time function of the block parameter B, exactly as in the paper's
// model where a page holds B units of data.
package wire

import (
	"encoding/binary"
	"fmt"
)

// Sizes of the primitive encodings in bytes.
const (
	SizeU8  = 1
	SizeU16 = 2
	SizeU32 = 4
	SizeU64 = 8
	SizeI64 = 8
)

// Cursor walks a byte slice sequentially. All methods panic on overflow,
// which in this codebase always indicates a page-layout bug, not bad input:
// layouts are sized up front from B.
type Cursor struct {
	buf []byte
	off int
}

// NewCursor returns a cursor positioned at the start of buf.
func NewCursor(buf []byte) *Cursor { return &Cursor{buf: buf} }

// Offset returns the current byte offset.
func (c *Cursor) Offset() int { return c.off }

// Seek moves the cursor to an absolute offset.
func (c *Cursor) Seek(off int) {
	if off < 0 || off > len(c.buf) {
		panic(fmt.Sprintf("wire: seek %d out of range [0,%d]", off, len(c.buf)))
	}
	c.off = off
}

// Remaining returns the number of bytes left after the cursor.
func (c *Cursor) Remaining() int { return len(c.buf) - c.off }

func (c *Cursor) need(n int) {
	if c.off+n > len(c.buf) {
		panic(fmt.Sprintf("wire: need %d bytes at offset %d, page size %d", n, c.off, len(c.buf)))
	}
}

// PutU8 writes one byte.
func (c *Cursor) PutU8(v uint8) {
	c.need(SizeU8)
	c.buf[c.off] = v
	c.off += SizeU8
}

// U8 reads one byte.
func (c *Cursor) U8() uint8 {
	c.need(SizeU8)
	v := c.buf[c.off]
	c.off += SizeU8
	return v
}

// PutU16 writes a uint16.
func (c *Cursor) PutU16(v uint16) {
	c.need(SizeU16)
	binary.LittleEndian.PutUint16(c.buf[c.off:], v)
	c.off += SizeU16
}

// U16 reads a uint16.
func (c *Cursor) U16() uint16 {
	c.need(SizeU16)
	v := binary.LittleEndian.Uint16(c.buf[c.off:])
	c.off += SizeU16
	return v
}

// PutU32 writes a uint32.
func (c *Cursor) PutU32(v uint32) {
	c.need(SizeU32)
	binary.LittleEndian.PutUint32(c.buf[c.off:], v)
	c.off += SizeU32
}

// U32 reads a uint32.
func (c *Cursor) U32() uint32 {
	c.need(SizeU32)
	v := binary.LittleEndian.Uint32(c.buf[c.off:])
	c.off += SizeU32
	return v
}

// PutU64 writes a uint64.
func (c *Cursor) PutU64(v uint64) {
	c.need(SizeU64)
	binary.LittleEndian.PutUint64(c.buf[c.off:], v)
	c.off += SizeU64
}

// U64 reads a uint64.
func (c *Cursor) U64() uint64 {
	c.need(SizeU64)
	v := binary.LittleEndian.Uint64(c.buf[c.off:])
	c.off += SizeU64
	return v
}

// PutI64 writes an int64 (two's complement).
func (c *Cursor) PutI64(v int64) { c.PutU64(uint64(v)) }

// I64 reads an int64.
func (c *Cursor) I64() int64 { return int64(c.U64()) }

// StateReader is a bounds-tracking little-endian reader for checkpoint
// state blobs. Unlike Cursor — whose panic-on-overflow contract is right
// for self-authored page layouts — it records the first error so callers
// can reject a corrupt or truncated checkpoint gracefully. Every decoder
// of persisted tree state (core, threeside, classindex) shares it.
type StateReader struct {
	buf []byte
	off int
	err error
}

// NewStateReader returns a reader positioned at the start of buf.
func NewStateReader(buf []byte) *StateReader { return &StateReader{buf: buf} }

// Err returns the first decode error (nil while the input is well-formed).
func (r *StateReader) Err() error { return r.err }

// U64 reads a little-endian uint64, returning 0 once an error is recorded.
func (r *StateReader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+SizeU64 > len(r.buf) {
		r.err = fmt.Errorf("wire: state truncated at offset %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += SizeU64
	return v
}

// Block reads a U64 length prefix followed by that many bytes (borrowed
// from the input, not copied).
func (r *StateReader) Block() []byte {
	n := int(r.U64())
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.err = fmt.Errorf("wire: bad block length %d at offset %d", n, r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Done returns the recorded error, or an error if input remains unconsumed
// (a well-formed state blob is read exactly to its end).
func (r *StateReader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("wire: %d trailing bytes after state", len(r.buf)-r.off)
	}
	return nil
}
