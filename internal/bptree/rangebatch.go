package bptree

import (
	"sort"

	"ccidx/internal/disk"
)

// Batched range search: a flood of range queries answered in ONE shared
// left-to-right traversal instead of one descent per query. The classic
// external-memory amortization (cf. batched evaluation of free-connex
// queries, PAPERS.md): with the queries sorted by their lower endpoint,
//
//   - every internal node on the union of root-to-leaf paths is read and
//     decoded ONCE per batch, no matter how many queries descend through
//     it (the sorted batch is split across the node's children in a single
//     merge against the separators), and
//   - every leaf is read ONCE per batch even when several overlapping
//     ranges cover it (queries activate at their start leaf and retire
//     when the scan passes their upper endpoint; the walk jumps across
//     leaf runs no active query needs).
//
// A batch of one costs exactly the same I/Os as Range; as the batch grows
// the O(log_B n) search term is shared, so I/Os per query approach the
// output-driven t/B floor.

// KeyRange is one query of a batched range search: report every entry with
// Lo <= Key <= Hi. An inverted range (Lo > Hi) reports nothing, exactly
// like Range.
type KeyRange struct {
	Lo, Hi int64
}

// leafSeg assigns the contiguous query run order[lo:hi] to the leaf (or,
// during the descent, internal node) id.
type leafSeg struct {
	id     disk.BlockID
	lo, hi int
}

// RangeBatch answers every query of qs, reporting each result as
// (query index, entry) in (key, rid) order per query. emit returning false
// stops the enumeration for THAT query only (the others keep streaming),
// mirroring the per-query contract of Range. Results for one query are the
// exact multiset Range(qs[qi].Lo, qs[qi].Hi) would report.
//
// Like Range, this is a read-only path: any number of RangeBatch and Range
// calls may run concurrently as long as no mutation is in flight.
func (t *Tree) RangeBatch(qs []KeyRange, emit func(qi int, e Entry) bool) {
	order := make([]int, 0, len(qs))
	for i, q := range qs {
		if q.Lo <= q.Hi {
			order = append(order, i)
		}
	}
	if len(order) == 0 {
		return
	}
	sort.Slice(order, func(a, b int) bool {
		qa, qb := qs[order[a]], qs[order[b]]
		if qa.Lo != qb.Lo {
			return qa.Lo < qb.Lo
		}
		return qa.Hi < qb.Hi
	})

	// Shared descent: split the Lo-sorted batch across each node's children
	// with one merge against the separators, level by level, so every
	// internal page on the union of search paths is read once per batch.
	frontier := []leafSeg{{t.root, 0, len(order)}}
	var next []leafSeg
	for level := 1; level < t.height; level++ {
		next = next[:0]
		for _, sg := range frontier {
			view := disk.MustView(t.dev, sg.id)
			cnt := int(uint16(view[1]) | uint16(view[2])<<8)
			qp := sg.lo
			for ci := 0; ci <= cnt && qp < sg.hi; ci++ {
				start := qp
				if ci == cnt {
					qp = sg.hi
				} else {
					sep := viewSep(view, ci)
					for qp < sg.hi && Less(Entry{Key: qs[order[qp]].Lo}, sep) {
						qp++
					}
				}
				if qp > start {
					next = append(next, leafSeg{viewChild(view, cnt, ci), start, qp})
				}
			}
			t.dev.Release(sg.id)
		}
		frontier, next = next, frontier
	}

	// One pass along the leaf chain. frontier is in leaf-chain order (the
	// queries are Lo-sorted and the descent preserves that order), so each
	// visited leaf either continues an active query's scan or starts the
	// next pending one; a leaf overlapped by several queries is read once.
	done := make([]bool, len(qs))
	active := make([]int, 0, len(order))
	si := 0
	cur := frontier[0].id
	for cur != disk.NilBlock {
		view := disk.MustView(t.dev, cur)
		cnt := int(uint16(view[1]) | uint16(view[2])<<8)
		nxt := disk.BlockID(int64(le64(view[3:])))
		for si < len(frontier) && frontier[si].id == cur {
			for p := frontier[si].lo; p < frontier[si].hi; p++ {
				active = append(active, order[p])
			}
			si++
		}
		for i, off := 0, leafHeader; i < cnt; i, off = i+1, off+entrySize {
			key := int64(le64(view[off:]))
			decoded := false
			var e Entry
			for _, qi := range active {
				if done[qi] {
					continue
				}
				q := qs[qi]
				if key < q.Lo {
					continue
				}
				if key > q.Hi {
					done[qi] = true
					continue
				}
				if !decoded {
					e = Entry{Key: key, RID: le64(view[off+8:]), Val: le64(view[off+16:])}
					decoded = true
				}
				if !emit(qi, e) {
					done[qi] = true
				}
			}
		}
		t.dev.Release(cur)
		live := active[:0]
		for _, qi := range active {
			if !done[qi] {
				live = append(live, qi)
			}
		}
		active = live
		if len(active) == 0 {
			// Nobody needs the next chained leaf: jump straight to the next
			// pending query's start leaf, or stop.
			if si >= len(frontier) {
				return
			}
			cur = frontier[si].id
			continue
		}
		cur = nxt
	}
}
