package bptree

import (
	"math/rand"
	"testing"
)

// buildRandomTree inserts n random entries (duplicate keys likely) and
// deletes a fraction again, so leaves carry holes and the chain has seen
// rebalancing — the shapes RangeBatch must walk correctly.
func buildRandomTree(t *testing.T, seed int64, n int) (*Tree, []Entry) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tr := New(8)
	span := int64(n/2 + 1)
	var live []Entry
	for i := 0; i < n; i++ {
		e := Entry{Key: rng.Int63n(span), RID: uint64(i), Val: uint64(rng.Int63())}
		tr.InsertEntry(e)
		live = append(live, e)
	}
	// Churn: delete a third, insert a few more.
	for i := 0; i < n/3; i++ {
		j := rng.Intn(len(live))
		e := live[j]
		if !tr.Delete(e.Key, e.RID) {
			t.Fatalf("delete of live entry %v failed", e)
		}
		live[j] = live[len(live)-1]
		live = live[:len(live)-1]
	}
	for i := 0; i < n/10; i++ {
		e := Entry{Key: rng.Int63n(span), RID: uint64(n + i), Val: uint64(rng.Int63())}
		tr.InsertEntry(e)
		live = append(live, e)
	}
	return tr, live
}

// collectSeq runs the sequential Range for q.
func collectSeq(tr *Tree, q KeyRange) []Entry {
	var out []Entry
	tr.Range(q.Lo, q.Hi, func(e Entry) bool {
		out = append(out, e)
		return true
	})
	return out
}

func sameEntries(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRangeBatchOracle asserts RangeBatch reports, per query, exactly the
// entries (and order) of the same queries issued sequentially — including
// overlapping, nested, empty, inverted and full-domain ranges.
func TestRangeBatchOracle(t *testing.T) {
	for _, n := range []int{0, 1, 50, 2000} {
		tr, _ := buildRandomTree(t, int64(100+n), n)
		rng := rand.New(rand.NewSource(int64(200 + n)))
		span := int64(n/2 + 10)
		for trial := 0; trial < 20; trial++ {
			k := rng.Intn(40) + 1
			qs := make([]KeyRange, k)
			for i := range qs {
				lo := rng.Int63n(span) - 2
				var hi int64
				switch rng.Intn(5) {
				case 0:
					hi = lo // point query
				case 1:
					hi = lo - 1 - rng.Int63n(3) // inverted: reports nothing
				case 2:
					hi = span + 5 // runs off the right end
				default:
					hi = lo + rng.Int63n(span/4+1)
				}
				qs[i] = KeyRange{Lo: lo, Hi: hi}
			}
			got := make([][]Entry, k)
			tr.RangeBatch(qs, func(qi int, e Entry) bool {
				got[qi] = append(got[qi], e)
				return true
			})
			for qi, q := range qs {
				want := collectSeq(tr, q)
				if !sameEntries(got[qi], want) {
					t.Fatalf("n=%d trial=%d query %d %+v: batch %d entries, sequential %d",
						n, trial, qi, q, len(got[qi]), len(want))
				}
			}
		}
	}
}

// TestRangeBatchEarlyStop asserts a per-query emit stop truncates exactly
// that query's stream, leaving the others complete.
func TestRangeBatchEarlyStop(t *testing.T) {
	tr, _ := buildRandomTree(t, 7, 3000)
	qs := []KeyRange{{Lo: 0, Hi: 1 << 40}, {Lo: 0, Hi: 1 << 40}, {Lo: 100, Hi: 900}}
	const cap0 = 7
	got := make([][]Entry, len(qs))
	tr.RangeBatch(qs, func(qi int, e Entry) bool {
		got[qi] = append(got[qi], e)
		return !(qi == 0 && len(got[0]) >= cap0)
	})
	if len(got[0]) != cap0 {
		t.Fatalf("stopped query reported %d entries, want %d", len(got[0]), cap0)
	}
	for qi := 1; qi < len(qs); qi++ {
		want := collectSeq(tr, qs[qi])
		if !sameEntries(got[qi], want) {
			t.Fatalf("query %d truncated by another query's stop: %d vs %d entries",
				qi, len(got[qi]), len(want))
		}
	}
}

// TestRangeBatchSingleMatchesRangeIOs asserts a batch of one costs exactly
// the sequential I/Os (the shared traversal degenerates to one descent).
func TestRangeBatchSingleMatchesRangeIOs(t *testing.T) {
	tr, _ := buildRandomTree(t, 11, 4000)
	for _, q := range []KeyRange{{Lo: 10, Hi: 400}, {Lo: 0, Hi: 1 << 40}, {Lo: 1999, Hi: 1999}} {
		before := tr.Pager().Stats()
		tr.Range(q.Lo, q.Hi, func(Entry) bool { return true })
		seq := tr.Pager().Stats().Sub(before).IOs()
		before = tr.Pager().Stats()
		tr.RangeBatch([]KeyRange{q}, func(int, Entry) bool { return true })
		batch := tr.Pager().Stats().Sub(before).IOs()
		if batch != seq {
			t.Fatalf("query %+v: batch-of-one cost %d I/Os, sequential %d", q, batch, seq)
		}
	}
}

// TestRangeBatchSharesIOs asserts the amortization itself: many queries in
// one batch must cost fewer I/Os than the same queries issued one by one.
func TestRangeBatchSharesIOs(t *testing.T) {
	tr, _ := buildRandomTree(t, 13, 8000)
	rng := rand.New(rand.NewSource(14))
	qs := make([]KeyRange, 128)
	for i := range qs {
		lo := rng.Int63n(4000)
		qs[i] = KeyRange{Lo: lo, Hi: lo + rng.Int63n(200)}
	}
	before := tr.Pager().Stats()
	for _, q := range qs {
		tr.Range(q.Lo, q.Hi, func(Entry) bool { return true })
	}
	seq := tr.Pager().Stats().Sub(before).IOs()
	before = tr.Pager().Stats()
	tr.RangeBatch(qs, func(int, Entry) bool { return true })
	batch := tr.Pager().Stats().Sub(before).IOs()
	if batch*2 > seq {
		t.Fatalf("batched traversal shared too little: %d I/Os batched vs %d sequential", batch, seq)
	}
}
