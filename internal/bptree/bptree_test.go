package bptree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func collectRange(t *Tree, lo, hi int64) []Entry {
	var out []Entry
	t.Range(lo, hi, func(e Entry) bool {
		out = append(out, e)
		return true
	})
	return out
}

func TestEmptyTree(t *testing.T) {
	tr := New(8)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if got := collectRange(tr, -100, 100); len(got) != 0 {
		t.Fatalf("range on empty tree returned %v", got)
	}
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree reported ok")
	}
}

func TestInsertAndPointLookup(t *testing.T) {
	tr := New(4)
	for i := int64(0); i < 100; i++ {
		if !tr.Insert(i*3, uint64(i)) {
			t.Fatalf("insert %d reported duplicate", i)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := int64(0); i < 100; i++ {
		if !tr.Contains(i*3, uint64(i)) {
			t.Fatalf("missing key %d", i*3)
		}
		if tr.Contains(i*3+1, uint64(i)) {
			t.Fatalf("phantom key %d", i*3+1)
		}
	}
}

func TestDuplicateInsertIgnored(t *testing.T) {
	tr := New(4)
	if !tr.Insert(5, 1) || tr.Insert(5, 1) {
		t.Fatal("duplicate handling wrong")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Same key, different rid is a distinct entry.
	if !tr.Insert(5, 2) {
		t.Fatal("same key different rid rejected")
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestRangeOrderedAndComplete(t *testing.T) {
	tr := New(5)
	rng := rand.New(rand.NewSource(7))
	ref := map[Entry]bool{}
	for i := 0; i < 500; i++ {
		e := Entry{Key: rng.Int63n(200), RID: uint64(rng.Intn(5))}
		tr.Insert(e.Key, e.RID)
		ref[e] = true
	}
	got := collectRange(tr, 50, 150)
	if !sort.SliceIsSorted(got, func(i, j int) bool { return Less(got[i], got[j]) }) {
		t.Fatal("range output not sorted")
	}
	want := 0
	for e := range ref {
		if e.Key >= 50 && e.Key <= 150 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("range returned %d entries, want %d", len(got), want)
	}
	for _, e := range got {
		if !ref[e] {
			t.Fatalf("phantom entry %v", e)
		}
	}
}

func TestRangeEmptyWhenLoGreaterThanHi(t *testing.T) {
	tr := New(4)
	tr.Insert(1, 1)
	if got := collectRange(tr, 5, 2); len(got) != 0 {
		t.Fatalf("inverted range returned %v", got)
	}
}

func TestRangeEarlyStop(t *testing.T) {
	tr := New(4)
	for i := int64(0); i < 50; i++ {
		tr.Insert(i, 0)
	}
	count := 0
	tr.Range(0, 49, func(Entry) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop emitted %d", count)
	}
}

func TestDeleteBasic(t *testing.T) {
	tr := New(4)
	for i := int64(0); i < 64; i++ {
		tr.Insert(i, uint64(i))
	}
	for i := int64(0); i < 64; i += 2 {
		if !tr.Delete(i, uint64(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Delete(0, 0) {
		t.Fatal("second delete of 0 succeeded")
	}
	if tr.Len() != 32 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := collectRange(tr, 0, 63)
	if len(got) != 32 {
		t.Fatalf("range after deletes: %d entries", len(got))
	}
	for _, e := range got {
		if e.Key%2 == 0 {
			t.Fatalf("deleted key %d still present", e.Key)
		}
	}
}

func TestDeleteAllThenReuse(t *testing.T) {
	tr := New(4)
	for i := int64(0); i < 200; i++ {
		tr.Insert(i, 0)
	}
	perm := rand.New(rand.NewSource(3)).Perm(200)
	for _, i := range perm {
		if !tr.Delete(int64(i), 0) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("after deleting all: len=%d height=%d", tr.Len(), tr.Height())
	}
	// The tree must still work.
	tr.Insert(42, 9)
	if !tr.Contains(42, 9) {
		t.Fatal("insert after full drain failed")
	}
}

func TestDuplicateKeysAcrossLeaves(t *testing.T) {
	// Force many entries with the same key so they span several leaves; the
	// composite separators must keep range scans exact.
	tr := New(4)
	for r := uint64(0); r < 40; r++ {
		tr.Insert(7, r)
	}
	tr.Insert(6, 0)
	tr.Insert(8, 0)
	got := collectRange(tr, 7, 7)
	if len(got) != 40 {
		t.Fatalf("got %d duplicates, want 40", len(got))
	}
	for i, e := range got {
		if e.Key != 7 || e.RID != uint64(i) {
			t.Fatalf("entry %d = %v", i, e)
		}
	}
}

func TestMixedInsertDeleteRandomizedAgainstOracle(t *testing.T) {
	tr := New(6)
	rng := rand.New(rand.NewSource(11))
	oracle := map[Entry]bool{}
	for step := 0; step < 5000; step++ {
		e := Entry{Key: rng.Int63n(300), RID: uint64(rng.Intn(3))}
		if rng.Intn(2) == 0 {
			in := tr.Insert(e.Key, e.RID)
			if in == oracle[e] {
				t.Fatalf("step %d: insert %v returned %v, oracle %v", step, e, in, oracle[e])
			}
			oracle[e] = true
		} else {
			rm := tr.Delete(e.Key, e.RID)
			if rm != oracle[e] {
				t.Fatalf("step %d: delete %v returned %v, oracle %v", step, e, rm, oracle[e])
			}
			delete(oracle, e)
		}
		if len(oracle) != tr.Len() {
			t.Fatalf("step %d: len mismatch %d vs %d", step, tr.Len(), len(oracle))
		}
	}
	// Final full scan must equal the oracle.
	var want []Entry
	for e := range oracle {
		want = append(want, e)
	}
	sort.Slice(want, func(i, j int) bool { return Less(want[i], want[j]) })
	var got []Entry
	tr.All(func(e Entry) bool { got = append(got, e); return true })
	if len(got) != len(want) {
		t.Fatalf("scan %d entries, oracle %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("entry %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestBulkLoadMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var entries []Entry
	for i := 0; i < 3000; i++ {
		entries = append(entries, Entry{Key: rng.Int63n(1000), RID: uint64(i)})
	}
	sort.Slice(entries, func(i, j int) bool { return Less(entries[i], entries[j]) })
	bl := BulkLoad(16, entries)
	inc := New(16)
	for _, e := range entries {
		inc.Insert(e.Key, e.RID)
	}
	if bl.Len() != inc.Len() {
		t.Fatalf("len %d vs %d", bl.Len(), inc.Len())
	}
	a := collectRange(bl, 100, 900)
	b := collectRange(inc, 100, 900)
	if len(a) != len(b) {
		t.Fatalf("range sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestBulkLoadEmptyAndSingleton(t *testing.T) {
	if tr := BulkLoad(8, nil); tr.Len() != 0 {
		t.Fatal("empty bulk load")
	}
	tr := BulkLoad(8, []Entry{{Key: 5, RID: 1}})
	if tr.Len() != 1 || !tr.Contains(5, 1) {
		t.Fatal("singleton bulk load")
	}
}

func TestBulkLoadDeduplicates(t *testing.T) {
	tr := BulkLoad(8, []Entry{{Key: 1, RID: 1}, {Key: 1, RID: 1}, {Key: 2, RID: 1}})
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BulkLoad(8, []Entry{{Key: 2}, {Key: 1}})
}

func TestBulkLoadSupportsFurtherInserts(t *testing.T) {
	entries := make([]Entry, 1000)
	for i := range entries {
		entries[i] = Entry{Key: int64(i * 2), RID: 1}
	}
	tr := BulkLoad(8, entries)
	for i := 0; i < 1000; i++ {
		tr.Insert(int64(i*2+1), 1)
	}
	if tr.Len() != 2000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := collectRange(tr, 0, 3999)
	if len(got) != 2000 {
		t.Fatalf("scan %d", len(got))
	}
}

// --- I/O complexity tests (the Section 1.1 reference bounds) ---

func TestRangeIOBound(t *testing.T) {
	// Query I/O must be <= c1*log_B(n) + c2*t/B + c3.
	b := 16
	tr := New(b)
	n := 20000
	for i := 0; i < n; i++ {
		tr.Insert(int64(i), 0)
	}
	for _, span := range []int64{0, 10, 100, 1000, 10000} {
		lo := int64(n / 3)
		hi := lo + span
		before := tr.Pager().Stats()
		got := collectRange(tr, lo, hi)
		ios := tr.Pager().Stats().Sub(before).IOs()
		t.Logf("span=%d t=%d ios=%d", span, len(got), ios)
		logBn := logB(n, b)
		bound := 3*int64(logBn) + 2*int64(len(got))/int64(b) + 4
		if ios > bound {
			t.Fatalf("span %d: %d I/Os exceeds bound %d", span, ios, bound)
		}
	}
}

func TestInsertIOBound(t *testing.T) {
	b := 16
	tr := New(b)
	for i := 0; i < 5000; i++ {
		tr.Insert(int64(i%977)*7, uint64(i))
	}
	before := tr.Pager().Stats()
	const extra = 500
	for i := 0; i < extra; i++ {
		tr.Insert(int64(i)*13+1, uint64(i+100000))
	}
	per := float64(tr.Pager().Stats().Sub(before).IOs()) / extra
	bound := float64(4*logB(tr.Len(), b) + 4)
	if per > bound {
		t.Fatalf("amortized insert I/O %.1f exceeds %f", per, bound)
	}
}

func TestSpaceBound(t *testing.T) {
	b := 16
	tr := New(b)
	n := 10000
	for i := 0; i < n; i++ {
		tr.Insert(int64(i), 0)
	}
	pages := tr.Pager().Allocated()
	// O(n/B): generous constant 4 covers half-full leaves plus internals.
	if pages > int64(4*n/b) {
		t.Fatalf("space %d pages exceeds 4n/B = %d", pages, 4*n/b)
	}
}

func logB(n, b int) int {
	l := 0
	v := 1
	for v < n {
		v *= b
		l++
	}
	if l == 0 {
		l = 1
	}
	return l
}

// Property test: arbitrary operation sequences preserve the sorted-scan
// invariant and never lose or duplicate entries.
func TestPropertyRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New(4 + rng.Intn(12))
		oracle := map[Entry]bool{}
		for i := 0; i < 300; i++ {
			e := Entry{Key: rng.Int63n(40) - 20, RID: uint64(rng.Intn(2))}
			if rng.Intn(3) != 0 {
				tr.Insert(e.Key, e.RID)
				oracle[e] = true
			} else {
				tr.Delete(e.Key, e.RID)
				delete(oracle, e)
			}
		}
		var got []Entry
		tr.All(func(e Entry) bool { got = append(got, e); return true })
		if len(got) != len(oracle) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if !Less(got[i-1], got[i]) {
				return false
			}
		}
		for _, e := range got {
			if !oracle[e] {
				return false
			}
		}
		return true
	}
	// Fixed-seed Rand keeps the property deterministic (testing/quick
	// defaults to a time-seeded generator).
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(71))}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeKeys(t *testing.T) {
	tr := New(4)
	for i := int64(-50); i <= 50; i++ {
		tr.Insert(i, 0)
	}
	got := collectRange(tr, -20, 20)
	if len(got) != 41 {
		t.Fatalf("got %d entries", len(got))
	}
	if got[0].Key != -20 || got[40].Key != 20 {
		t.Fatalf("bounds wrong: %v .. %v", got[0], got[40])
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	tr := New(8)
	for i := 0; i < 10000; i++ {
		tr.Insert(int64(i), 0)
	}
	// With fanout >= 5 (b=8 leaves, derived internal fanout), height should
	// be well under 8 for 10k entries.
	if tr.Height() > 8 {
		t.Fatalf("height %d too large", tr.Height())
	}
}

func TestNewPanicsOnTinyB(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2)
}
