package bptree

// Checkpoint support. A B+-tree's only state outside its pages is the tiny
// header {root, height, n, b}: MarshalState serializes it and OpenOn
// reattaches a Tree to a store that already holds the pages — typically a
// disk.FileDevice reopened at its last durable checkpoint.

import (
	"encoding/binary"
	"fmt"

	"ccidx/internal/disk"
)

const stateSize = 4 * 8

// MarshalState serializes the tree's out-of-page state (root pointer,
// height, entry count, leaf capacity). The pages themselves live on the
// store; the caller is responsible for flushing any pool layered over it
// before checkpointing the store.
func (t *Tree) MarshalState() []byte {
	buf := make([]byte, stateSize)
	binary.LittleEndian.PutUint64(buf[0:], uint64(int64(t.root)))
	binary.LittleEndian.PutUint64(buf[8:], uint64(t.height))
	binary.LittleEndian.PutUint64(buf[16:], uint64(t.n))
	binary.LittleEndian.PutUint64(buf[24:], uint64(t.b))
	return buf
}

// OpenOn reattaches a tree to a store holding its pages, using the state a
// prior MarshalState produced.
func OpenOn(store disk.Store, state []byte) (*Tree, error) {
	if len(state) != stateSize {
		return nil, fmt.Errorf("bptree: state is %d bytes, want %d", len(state), stateSize)
	}
	root := disk.BlockID(int64(binary.LittleEndian.Uint64(state[0:])))
	height := int(binary.LittleEndian.Uint64(state[8:]))
	n := int(binary.LittleEndian.Uint64(state[16:]))
	b := int(binary.LittleEndian.Uint64(state[24:]))
	if b < 4 || height < 1 || n < 0 {
		return nil, fmt.Errorf("bptree: corrupt state (b=%d height=%d n=%d)", b, height, n)
	}
	t := skeletonOn(store, b)
	if err := store.Check(root); err != nil {
		return nil, fmt.Errorf("bptree: root %d: %w", root, err)
	}
	t.root = root
	t.height = height
	t.n = n
	return t, nil
}
