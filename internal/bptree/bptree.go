// Package bptree implements an external-memory B+-tree over a simulated
// disk, the reference structure for external dynamic one-dimensional range
// searching (Section 1.1 of the paper):
//
//   - space O(n/B) pages,
//   - range search O(log_B n + t/B) I/Os,
//   - insert and delete O(log_B n) I/Os.
//
// Keys are int64 and may repeat; entries are made unique by the composite
// order (key, rid), and internal separators store the full composite so
// duplicates spanning leaves are located exactly. Data records live only in
// the leaves, which are chained left to right so a range scan streams t
// results in O(t/B) page reads (the B+-tree property the paper highlights
// versus plain B-trees).
package bptree

import (
	"fmt"

	"ccidx/internal/disk"
)

// Entry is one indexed record: a key, a record identifier, and an
// uninterpreted payload value (Val). Entries are identified by (Key, RID);
// Val rides along (the interval manager stores the second endpoint there,
// the class-indexing baselines a class position).
type Entry struct {
	Key int64
	RID uint64
	Val uint64
}

// sameKR reports whether two entries denote the same record (Key, RID),
// ignoring the payload.
func sameKR(a, b Entry) bool { return a.Key == b.Key && a.RID == b.RID }

// Less orders entries by (Key, RID).
func Less(a, b Entry) bool {
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.RID < b.RID
}

const (
	kindLeaf     = 1
	kindInternal = 2

	leafHeader     = 1 + 2 + 8 // kind, count, next
	internalHeader = 1 + 2     // kind, count
	entrySize      = 24        // key + rid + val
	sepSize        = 16        // composite separator (key + rid)
	childSize      = 8
)

// Tree is an external B+-tree.
//
// Concurrency: mutations (Insert, Delete, BulkLoad) require external
// serialization; queries (Contains, Range, All) may run concurrently with
// each other — they only read pages through borrowed views.
type Tree struct {
	store    disk.Store
	dev      disk.Device // page I/O surface; the store, or a pool over it
	b        int         // max entries per leaf
	maxSeps  int         // max separators per internal node (fanout-1)
	root     disk.BlockID
	height   int // number of levels; 1 = root is a leaf
	n        int // total entries
	pageSize int

	// wbuf is the reusable page-encode scratch (mutate paths only).
	wbuf []byte
}

// PageSize returns the page size in bytes used for leaf capacity b.
func PageSize(b int) int {
	if b < 4 {
		b = 4
	}
	return leafHeader + b*entrySize
}

// New creates an empty tree with at most b entries per leaf on a fresh
// in-memory pager. The internal fanout is derived from the same page size.
func New(b int) *Tree {
	if b < 4 {
		panic("bptree: branching factor must be at least 4")
	}
	return NewOn(disk.NewPager(PageSize(b)), b)
}

// NewOn creates an empty tree with at most b entries per leaf on the given
// store — an in-memory pager or a file-backed device — whose page size must
// be exactly PageSize(b).
func NewOn(store disk.Store, b int) *Tree {
	t := skeletonOn(store, b)
	root := &node{leaf: true}
	t.root = t.writeNode(disk.NilBlock, root)
	t.height = 1
	return t
}

func skeletonOn(store disk.Store, b int) *Tree {
	if b < 4 {
		panic("bptree: branching factor must be at least 4")
	}
	ps := PageSize(b)
	if store.PageSize() != ps {
		panic(fmt.Sprintf("bptree: store page size %d, want %d for b=%d", store.PageSize(), ps, b))
	}
	t := &Tree{
		store:    store,
		b:        b,
		maxSeps:  (ps - internalHeader - childSize) / (sepSize + childSize),
		pageSize: ps,
	}
	t.dev = t.store
	return t
}

// Pager exposes the underlying store for I/O accounting.
func (t *Tree) Pager() disk.Store { return t.store }

// SetDevice routes all page I/O through d — typically a *disk.Pool over
// Pager(). Call before sharing the tree between goroutines.
func (t *Tree) SetDevice(d disk.Device) { t.dev = d }

// Len returns the number of entries.
func (t *Tree) Len() int { return t.n }

// Height returns the number of levels (1 when the root is a leaf).
func (t *Tree) Height() int { return t.height }

// B returns the leaf capacity.
func (t *Tree) B() int { return t.b }

// node is the decoded form of a page. For internal nodes, child i holds
// entries e with seps[i-1] <= e < seps[i] in (key, rid) order (with the
// obvious conventions at the ends).
type node struct {
	leaf     bool
	entries  []Entry        // leaf payload
	seps     []Entry        // internal separators
	children []disk.BlockID // internal children, len = len(seps)+1
	next     disk.BlockID   // leaf chain
}

func (t *Tree) readNode(id disk.BlockID) *node {
	view := disk.MustView(t.dev, id)
	nd := decodeNode(view)
	t.dev.Release(id)
	return nd
}

func decodeNode(buf []byte) *node {
	kind := buf[0]
	cnt := int(uint16(buf[1]) | uint16(buf[2])<<8)
	nd := &node{}
	switch kind {
	case kindLeaf:
		nd.leaf = true
		nd.next = disk.BlockID(int64(le64(buf[3:])))
		off := leafHeader
		nd.entries = make([]Entry, cnt)
		for i := 0; i < cnt; i++ {
			nd.entries[i] = Entry{
				Key: int64(le64(buf[off:])),
				RID: le64(buf[off+8:]),
				Val: le64(buf[off+16:]),
			}
			off += entrySize
		}
	case kindInternal:
		off := internalHeader
		nd.seps = make([]Entry, cnt)
		for i := 0; i < cnt; i++ {
			nd.seps[i] = Entry{Key: int64(le64(buf[off:])), RID: le64(buf[off+8:])}
			off += sepSize
		}
		nd.children = make([]disk.BlockID, cnt+1)
		for i := 0; i <= cnt; i++ {
			nd.children[i] = disk.BlockID(int64(le64(buf[off:])))
			off += childSize
		}
	default:
		panic(fmt.Sprintf("bptree: corrupt page kind %d", kind))
	}
	return nd
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLE64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// writeNode encodes nd into page id, allocating a page when id is nil.
// It returns the page id used.
func (t *Tree) writeNode(id disk.BlockID, nd *node) disk.BlockID {
	if id == disk.NilBlock {
		id = t.dev.Alloc()
	}
	if t.wbuf == nil {
		t.wbuf = make([]byte, t.pageSize)
	} else {
		clear(t.wbuf)
	}
	buf := t.wbuf
	if nd.leaf {
		buf[0] = kindLeaf
		cnt := len(nd.entries)
		buf[1] = byte(cnt)
		buf[2] = byte(cnt >> 8)
		putLE64(buf[3:], uint64(int64(nd.next)))
		off := leafHeader
		for _, e := range nd.entries {
			putLE64(buf[off:], uint64(e.Key))
			putLE64(buf[off+8:], e.RID)
			putLE64(buf[off+16:], e.Val)
			off += entrySize
		}
	} else {
		buf[0] = kindInternal
		cnt := len(nd.seps)
		buf[1] = byte(cnt)
		buf[2] = byte(cnt >> 8)
		off := internalHeader
		for _, s := range nd.seps {
			putLE64(buf[off:], uint64(s.Key))
			putLE64(buf[off+8:], s.RID)
			off += sepSize
		}
		for _, c := range nd.children {
			putLE64(buf[off:], uint64(int64(c)))
			off += childSize
		}
	}
	disk.MustWriteAt(t.dev, id, buf)
	return id
}

// childIndex returns the child to descend into for entry e: the first child
// whose separator is greater than e.
func childIndex(seps []Entry, e Entry) int {
	lo, hi := 0, len(seps)
	for lo < hi {
		mid := (lo + hi) / 2
		if Less(e, seps[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Insert adds (key, rid) with a zero payload. Duplicate (key, rid) pairs
// are ignored; the return value reports whether the entry was newly added.
func (t *Tree) Insert(key int64, rid uint64) bool {
	return t.InsertEntry(Entry{Key: key, RID: rid})
}

// InsertEntry adds e, identified by (Key, RID). An existing entry with the
// same identity keeps its payload; the return value reports whether the
// entry was newly added.
func (t *Tree) InsertEntry(e Entry) bool {
	added, split := t.insertAt(t.root, e)
	if split != nil {
		nr := &node{
			seps:     []Entry{split.sep},
			children: []disk.BlockID{t.root, split.right},
		}
		t.root = t.writeNode(disk.NilBlock, nr)
		t.height++
	}
	if added {
		t.n++
	}
	return added
}

// splitResult describes a child split that must be recorded in the parent.
type splitResult struct {
	sep   Entry // first entry of right node's subtree
	right disk.BlockID
}

func (t *Tree) insertAt(id disk.BlockID, e Entry) (bool, *splitResult) {
	nd := t.readNode(id)
	if nd.leaf {
		pos := lowerBound(nd.entries, e)
		if pos < len(nd.entries) && sameKR(nd.entries[pos], e) {
			return false, nil // duplicate
		}
		nd.entries = append(nd.entries, Entry{})
		copy(nd.entries[pos+1:], nd.entries[pos:])
		nd.entries[pos] = e
		if len(nd.entries) <= t.b {
			t.writeNode(id, nd)
			return true, nil
		}
		// Split leaf.
		mid := len(nd.entries) / 2
		right := &node{leaf: true, entries: append([]Entry(nil), nd.entries[mid:]...), next: nd.next}
		nd.entries = nd.entries[:mid]
		rid := t.writeNode(disk.NilBlock, right)
		nd.next = rid
		t.writeNode(id, nd)
		return true, &splitResult{sep: right.entries[0], right: rid}
	}
	ci := childIndex(nd.seps, e)
	added, split := t.insertAt(nd.children[ci], e)
	if split == nil {
		return added, nil
	}
	nd.seps = append(nd.seps, Entry{})
	copy(nd.seps[ci+1:], nd.seps[ci:])
	nd.seps[ci] = split.sep
	nd.children = append(nd.children, disk.NilBlock)
	copy(nd.children[ci+2:], nd.children[ci+1:])
	nd.children[ci+1] = split.right
	if len(nd.seps) <= t.maxSeps {
		t.writeNode(id, nd)
		return added, nil
	}
	// Split internal node: middle separator moves up.
	mid := len(nd.seps) / 2
	upSep := nd.seps[mid]
	right := &node{
		seps:     append([]Entry(nil), nd.seps[mid+1:]...),
		children: append([]disk.BlockID(nil), nd.children[mid+1:]...),
	}
	nd.seps = nd.seps[:mid]
	nd.children = nd.children[:mid+1]
	ridBlock := t.writeNode(disk.NilBlock, right)
	t.writeNode(id, nd)
	return added, &splitResult{sep: upSep, right: ridBlock}
}

func lowerBound(es []Entry, e Entry) int {
	lo, hi := 0, len(es)
	for lo < hi {
		mid := (lo + hi) / 2
		if Less(es[mid], e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Delete removes (key, rid), returning whether it was present. Underfull
// nodes are rebalanced by borrowing from or merging with a sibling, keeping
// the O(log_B n) bound.
func (t *Tree) Delete(key int64, rid uint64) bool {
	e := Entry{Key: key, RID: rid}
	removed, _ := t.deleteAt(t.root, e)
	if removed {
		t.n--
	}
	if t.height > 1 {
		nd := t.readNode(t.root)
		if !nd.leaf && len(nd.seps) == 0 {
			old := t.root
			t.root = nd.children[0]
			disk.MustFreeAt(t.dev, old)
			t.height--
		}
	}
	return removed
}

// deleteAt removes e from the subtree rooted at id. The second return value
// reports whether the node at id became underfull.
func (t *Tree) deleteAt(id disk.BlockID, e Entry) (bool, bool) {
	nd := t.readNode(id)
	if nd.leaf {
		pos := lowerBound(nd.entries, e)
		if pos >= len(nd.entries) || !sameKR(nd.entries[pos], e) {
			return false, false
		}
		nd.entries = append(nd.entries[:pos], nd.entries[pos+1:]...)
		t.writeNode(id, nd)
		return true, len(nd.entries) < t.minLeaf()
	}
	ci := childIndex(nd.seps, e)
	removed, under := t.deleteAt(nd.children[ci], e)
	if !removed {
		return false, false
	}
	if under {
		t.rebalance(id, nd, ci)
		nd = t.readNode(id)
	}
	return true, len(nd.seps) < t.minSeps()
}

func (t *Tree) minLeaf() int { return t.b / 2 }
func (t *Tree) minSeps() int { return t.maxSeps / 2 }

// rebalance fixes the underfull child at index ci of parent nd (page id).
func (t *Tree) rebalance(id disk.BlockID, nd *node, ci int) {
	childID := nd.children[ci]
	child := t.readNode(childID)
	if ci > 0 {
		leftID := nd.children[ci-1]
		left := t.readNode(leftID)
		if t.canLend(left) {
			t.borrowFromLeft(nd, ci, left, child)
			t.writeNode(leftID, left)
			t.writeNode(childID, child)
			t.writeNode(id, nd)
			return
		}
		t.merge(nd, ci-1, left, child)
		t.writeNode(leftID, left)
		disk.MustFreeAt(t.dev, childID)
		t.writeNode(id, nd)
		return
	}
	rightID := nd.children[ci+1]
	right := t.readNode(rightID)
	if t.canLend(right) {
		t.borrowFromRight(nd, ci, child, right)
		t.writeNode(childID, child)
		t.writeNode(rightID, right)
		t.writeNode(id, nd)
		return
	}
	t.merge(nd, ci, child, right)
	t.writeNode(childID, child)
	disk.MustFreeAt(t.dev, rightID)
	t.writeNode(id, nd)
}

func (t *Tree) canLend(nd *node) bool {
	if nd.leaf {
		return len(nd.entries) > t.minLeaf()
	}
	return len(nd.seps) > t.minSeps()
}

func (t *Tree) borrowFromLeft(parent *node, ci int, left, child *node) {
	if child.leaf {
		last := left.entries[len(left.entries)-1]
		left.entries = left.entries[:len(left.entries)-1]
		child.entries = append([]Entry{last}, child.entries...)
		parent.seps[ci-1] = child.entries[0]
		return
	}
	sep := parent.seps[ci-1]
	lastSep := left.seps[len(left.seps)-1]
	lastChild := left.children[len(left.children)-1]
	left.seps = left.seps[:len(left.seps)-1]
	left.children = left.children[:len(left.children)-1]
	child.seps = append([]Entry{sep}, child.seps...)
	child.children = append([]disk.BlockID{lastChild}, child.children...)
	parent.seps[ci-1] = lastSep
}

func (t *Tree) borrowFromRight(parent *node, ci int, child, right *node) {
	if child.leaf {
		first := right.entries[0]
		right.entries = right.entries[1:]
		child.entries = append(child.entries, first)
		parent.seps[ci] = right.entries[0]
		return
	}
	sep := parent.seps[ci]
	firstSep := right.seps[0]
	firstChild := right.children[0]
	right.seps = right.seps[1:]
	right.children = right.children[1:]
	child.seps = append(child.seps, sep)
	child.children = append(child.children, firstChild)
	parent.seps[ci] = firstSep
}

// merge folds the child at index ci+1 into the child at index ci and drops
// separator ci from the parent.
func (t *Tree) merge(parent *node, ci int, left, right *node) {
	if left.leaf {
		left.entries = append(left.entries, right.entries...)
		left.next = right.next
	} else {
		left.seps = append(left.seps, parent.seps[ci])
		left.seps = append(left.seps, right.seps...)
		left.children = append(left.children, right.children...)
	}
	parent.seps = append(parent.seps[:ci], parent.seps[ci+1:]...)
	parent.children = append(parent.children[:ci+1], parent.children[ci+2:]...)
}

// viewSep decodes separator i of an internal-node view.
func viewSep(view []byte, i int) Entry {
	off := internalHeader + i*sepSize
	return Entry{Key: int64(le64(view[off:])), RID: le64(view[off+8:])}
}

// viewChild decodes child pointer i of an internal-node view with cnt
// separators.
func viewChild(view []byte, cnt, i int) disk.BlockID {
	off := internalHeader + cnt*sepSize + i*childSize
	return disk.BlockID(int64(le64(view[off:])))
}

// descendTo walks from the root to the leaf that would hold e, reading
// each of the height-1 internal nodes through a borrowed view (one I/O
// apiece, exactly like the decoded descent), and returns the leaf id
// unread so the caller pays the leaf's single I/O itself.
func (t *Tree) descendTo(e Entry) disk.BlockID {
	id := t.root
	for level := 1; level < t.height; level++ {
		view := disk.MustView(t.dev, id)
		cnt := int(uint16(view[1]) | uint16(view[2])<<8)
		// childIndex, inlined over the view.
		lo, hi := 0, cnt
		for lo < hi {
			mid := (lo + hi) / 2
			if Less(e, viewSep(view, mid)) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		next := viewChild(view, cnt, lo)
		t.dev.Release(id)
		id = next
	}
	return id
}

// Contains reports whether (key, rid) is present, in O(log_B n) I/Os and
// without allocating.
func (t *Tree) Contains(key int64, rid uint64) bool {
	e := Entry{Key: key, RID: rid}
	id := t.descendTo(e)
	view := disk.MustView(t.dev, id)
	cnt := int(uint16(view[1]) | uint16(view[2])<<8)
	found := false
	for i, off := 0, leafHeader; i < cnt; i, off = i+1, off+entrySize {
		k := int64(le64(view[off:]))
		r := le64(view[off+8:])
		if k > key || (k == key && r >= rid) {
			found = k == key && r == rid
			break
		}
	}
	t.dev.Release(id)
	return found
}

// Range reports every entry with lo <= key <= hi in (key, rid) order,
// in O(log_B n + t/B) I/Os. Enumeration stops early if emit returns false.
// Leaves are streamed through borrowed views, so the scan allocates
// nothing regardless of result size.
func (t *Tree) Range(lo, hi int64, emit func(Entry) bool) {
	if lo > hi {
		return
	}
	id := t.descendTo(Entry{Key: lo, RID: 0})
	for id != disk.NilBlock {
		view := disk.MustView(t.dev, id)
		cnt := int(uint16(view[1]) | uint16(view[2])<<8)
		next := disk.BlockID(int64(le64(view[3:])))
		for i, off := 0, leafHeader; i < cnt; i, off = i+1, off+entrySize {
			key := int64(le64(view[off:]))
			if key < lo {
				continue
			}
			if key > hi {
				t.dev.Release(id)
				return
			}
			e := Entry{Key: key, RID: le64(view[off+8:]), Val: le64(view[off+16:])}
			if !emit(e) {
				t.dev.Release(id)
				return
			}
		}
		t.dev.Release(id)
		id = next
	}
}

// All reports every entry in order.
func (t *Tree) All(emit func(Entry) bool) {
	if t.n == 0 {
		return
	}
	var min, max int64 = -1 << 63, 1<<63 - 1
	t.Range(min, max, emit)
}

// Min returns the smallest entry, or ok=false when the tree is empty.
func (t *Tree) Min() (Entry, bool) {
	var out Entry
	ok := false
	t.All(func(e Entry) bool {
		out, ok = e, true
		return false
	})
	return out, ok
}

// BulkLoad builds a tree from entries that must already be sorted by
// (key, rid); it is the O(n/B) construction used by the static class
// indexes. Duplicate entries are kept once.
func BulkLoad(b int, entries []Entry) *Tree {
	t := New(b)
	if len(entries) == 0 {
		return t
	}
	dedup := make([]Entry, 0, len(entries))
	for i, e := range entries {
		if i > 0 {
			prev := entries[i-1]
			if Less(e, prev) {
				panic("bptree: BulkLoad input not sorted")
			}
			if sameKR(e, prev) {
				continue
			}
		}
		dedup = append(dedup, e)
	}
	entries = dedup
	t.n = len(entries)

	type built struct {
		id    disk.BlockID
		first Entry
	}
	var level []built
	fill := t.b*3/4 + 1 // leave slack for future inserts
	if fill > t.b {
		fill = t.b
	}
	var prevLeaf disk.BlockID
	var prevNode *node
	for i := 0; i < len(entries); i += fill {
		j := i + fill
		if j > len(entries) {
			j = len(entries)
		}
		leaf := &node{leaf: true, entries: append([]Entry(nil), entries[i:j]...)}
		id := t.writeNode(disk.NilBlock, leaf)
		if prevNode != nil {
			prevNode.next = id
			t.writeNode(prevLeaf, prevNode)
		}
		prevLeaf, prevNode = id, leaf
		level = append(level, built{id: id, first: leaf.entries[0]})
	}
	disk.MustFreeAt(t.dev, t.root)
	t.height = 1
	for len(level) > 1 {
		var next []built
		fanout := t.maxSeps*3/4 + 2
		if fanout > t.maxSeps+1 {
			fanout = t.maxSeps + 1
		}
		for i := 0; i < len(level); i += fanout {
			j := i + fanout
			if j > len(level) {
				j = len(level)
			}
			if j-i == 1 && len(next) > 0 {
				// Avoid a single-child node: fold into the previous one.
				prev := next[len(next)-1]
				pn := t.readNode(prev.id)
				pn.seps = append(pn.seps, level[i].first)
				pn.children = append(pn.children, level[i].id)
				t.writeNode(prev.id, pn)
				continue
			}
			nd := &node{}
			for k := i; k < j; k++ {
				if k > i {
					nd.seps = append(nd.seps, level[k].first)
				}
				nd.children = append(nd.children, level[k].id)
			}
			id := t.writeNode(disk.NilBlock, nd)
			next = append(next, built{id: id, first: level[i].first})
		}
		level = next
		t.height++
	}
	t.root = level[0].id
	return t
}
