// Package workload provides deterministic generators for the experiment
// suite: interval sets, point sets above the diagonal, the adversarial
// input of Proposition 3.3, and class hierarchies with object populations.
package workload

import (
	"math/rand"

	"ccidx/internal/classindex"
	"ccidx/internal/geom"
)

// UniformIntervals returns n intervals with left endpoints uniform in
// [0, span) and lengths uniform in [0, maxLen].
func UniformIntervals(seed int64, n int, span, maxLen int64) []geom.Interval {
	rng := rand.New(rand.NewSource(seed))
	ivs := make([]geom.Interval, n)
	for i := range ivs {
		lo := rng.Int63n(span)
		ivs[i] = geom.Interval{Lo: lo, Hi: lo + rng.Int63n(maxLen+1), ID: uint64(i)}
	}
	return ivs
}

// ClusteredIntervals returns n intervals clustered around k hot spots,
// modelling the skewed workloads spatial databases see.
func ClusteredIntervals(seed int64, n int, span, maxLen int64, k int) []geom.Interval {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]int64, k)
	for i := range centers {
		centers[i] = rng.Int63n(span)
	}
	ivs := make([]geom.Interval, n)
	for i := range ivs {
		c := centers[rng.Intn(k)]
		lo := c + rng.Int63n(span/20+1) - span/40
		if lo < 0 {
			lo = 0
		}
		ivs[i] = geom.Interval{Lo: lo, Hi: lo + rng.Int63n(maxLen+1), ID: uint64(i)}
	}
	return ivs
}

// NestedIntervals returns n intervals forming nested families (worst case
// for stabbing output size distribution).
func NestedIntervals(seed int64, n int, span int64) []geom.Interval {
	rng := rand.New(rand.NewSource(seed))
	ivs := make([]geom.Interval, n)
	for i := range ivs {
		depth := int64(i % 64)
		c := rng.Int63n(span)
		half := span / (2 << (depth % 16))
		lo, hi := c-half, c+half
		if lo < 0 {
			lo = 0
		}
		if hi < lo {
			hi = lo
		}
		ivs[i] = geom.Interval{Lo: lo, Hi: hi, ID: uint64(i)}
	}
	return ivs
}

// DiagonalPoints returns n points uniform above the diagonal (metablock
// tree input).
func DiagonalPoints(seed int64, n int, span int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		x := rng.Int63n(span)
		pts[i] = geom.Point{X: x, Y: x + rng.Int63n(span-x+1), ID: uint64(i)}
	}
	return pts
}

// UniformPoints returns n arbitrary points (3-sided tree input).
func UniformPoints(seed int64, n int, span int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Int63n(span), Y: rng.Int63n(span), ID: uint64(i)}
	}
	return pts
}

// LowerBoundSet returns the Proposition 3.3 adversary: the points
// S = {(x, x+1)} for x = 0..n-1 (Fig 18). The query anchored between x and
// x+1 returns exactly one point, forcing Omega(log_B n) I/Os per query.
func LowerBoundSet(n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: int64(i) * 2, Y: int64(i)*2 + 1, ID: uint64(i)}
	}
	return pts
}

// LowerBoundQueries returns the corner anchors hitting exactly one point
// each (odd coordinates between the staircase steps are even/odd scaled by
// the *2 spacing used in LowerBoundSet).
func LowerBoundQueries(n int) []int64 {
	qs := make([]int64, n)
	for i := range qs {
		qs[i] = int64(i)*2 + 1
	}
	return qs
}

// --- churn -------------------------------------------------------------------

// ChurnKind tags one operation of a churn stream.
type ChurnKind int

// Churn operation kinds.
const (
	ChurnInsert ChurnKind = iota
	ChurnDelete
	ChurnStab
	ChurnIntersect
)

// ChurnOp is one operation of a deterministic mixed insert/delete/query
// stream (experiment E19 and the churn oracle tests).
type ChurnOp struct {
	Kind ChurnKind
	Iv   geom.Interval // ChurnInsert
	ID   uint64        // ChurnDelete: a then-live interval id
	Q    int64         // ChurnStab
	QIv  geom.Interval // ChurnIntersect
}

// ChurnOps returns a deterministic stream of ops operations mixing inserts,
// deletes, stabbing and intersection queries (3:3:1:1). Deletes always
// target an id that is live at that point of the stream — initially the ids
// of the caller's starting set (liveIDs is copied), afterwards also the ids
// the stream itself inserted, starting at nextID. The balanced insert:delete
// ratio keeps the live count roughly stationary, which is what makes the
// measured per-op costs amortized steady-state figures.
func ChurnOps(seed int64, liveIDs []uint64, nextID uint64, ops int, span, maxLen int64) []ChurnOp {
	rng := rand.New(rand.NewSource(seed))
	live := append([]uint64(nil), liveIDs...)
	out := make([]ChurnOp, 0, ops)
	insert := func() {
		lo := rng.Int63n(span)
		out = append(out, ChurnOp{Kind: ChurnInsert,
			Iv: geom.Interval{Lo: lo, Hi: lo + rng.Int63n(maxLen+1), ID: nextID}})
		live = append(live, nextID)
		nextID++
	}
	for i := 0; i < ops; i++ {
		switch r := rng.Intn(8); {
		case r < 3:
			insert()
		case r < 6:
			if len(live) == 0 {
				insert()
				continue
			}
			j := rng.Intn(len(live))
			out = append(out, ChurnOp{Kind: ChurnDelete, ID: live[j]})
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		case r == 6:
			out = append(out, ChurnOp{Kind: ChurnStab, Q: rng.Int63n(span)})
		default:
			lo := rng.Int63n(span)
			out = append(out, ChurnOp{Kind: ChurnIntersect,
				QIv: geom.Interval{Lo: lo, Hi: lo + rng.Int63n(maxLen+1)}})
		}
	}
	return out
}

// SeqIDs returns the ids 0..n-1, the id set of a fresh workload of n
// generated intervals (companion to ChurnOps).
func SeqIDs(n int) []uint64 {
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i)
	}
	return ids
}

// StabQueries returns nq stabbing query points uniform in [0, span) — the
// deterministic query stream of the batched-execution experiments.
func StabQueries(seed int64, nq int, span int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]int64, nq)
	for i := range qs {
		qs[i] = rng.Int63n(span)
	}
	return qs
}

// QueryBatches chunks a query stream into batches of size k (the last
// batch may be short), preserving stream order so every batch size sweeps
// the identical total workload.
func QueryBatches(qs []int64, k int) [][]int64 {
	if k < 1 {
		k = 1
	}
	batches := make([][]int64, 0, (len(qs)+k-1)/k)
	for lo := 0; lo < len(qs); lo += k {
		hi := lo + k
		if hi > len(qs) {
			hi = len(qs)
		}
		batches = append(batches, qs[lo:hi])
	}
	return batches
}

// --- hierarchies -------------------------------------------------------------

// RandomHierarchy returns a frozen random tree hierarchy with c classes.
func RandomHierarchy(seed int64, c int) *classindex.Hierarchy {
	rng := rand.New(rand.NewSource(seed))
	h := classindex.NewHierarchy()
	names := make([]string, c)
	for i := 0; i < c; i++ {
		names[i] = className(i)
		parent := ""
		if i > 0 {
			parent = names[rng.Intn(i)]
		}
		h.MustAddClass(names[i], parent)
	}
	h.Freeze()
	return h
}

// PathHierarchy returns the degenerate hierarchy of Lemma 4.3: a single
// chain of c classes.
func PathHierarchy(c int) *classindex.Hierarchy {
	h := classindex.NewHierarchy()
	for i := 0; i < c; i++ {
		parent := ""
		if i > 0 {
			parent = className(i - 1)
		}
		h.MustAddClass(className(i), parent)
	}
	h.Freeze()
	return h
}

// StarHierarchy returns the Theorem 2.8 shape: c-1 leaves under one root.
func StarHierarchy(c int) *classindex.Hierarchy {
	h := classindex.NewHierarchy()
	h.MustAddClass(className(0), "")
	for i := 1; i < c; i++ {
		h.MustAddClass(className(i), className(0))
	}
	h.Freeze()
	return h
}

// CaterpillarHierarchy returns a spine of the given depth with one leaf per
// spine node — the shape where full-extent replication (Lemma 4.2) pays a
// factor of depth while rake-and-contract pays log2 c.
func CaterpillarHierarchy(depth int) *classindex.Hierarchy {
	h := classindex.NewHierarchy()
	h.MustAddClass("s0", "")
	for i := 1; i < depth; i++ {
		h.MustAddClass("s"+itoa(i), "s"+itoa(i-1))
		h.MustAddClass("leaf"+itoa(i), "s"+itoa(i-1))
	}
	h.Freeze()
	return h
}

// Fig5Hierarchy returns the paper's running example (Example 2.3):
// Person <- {Student, Professor}, Professor <- Assistant Professor.
func Fig5Hierarchy() *classindex.Hierarchy {
	h := classindex.NewHierarchy()
	h.MustAddClass("Person", "")
	h.MustAddClass("Student", "Person")
	h.MustAddClass("Professor", "Person")
	h.MustAddClass("AsstProf", "Professor")
	h.Freeze()
	return h
}

// Objects populates a hierarchy with n objects with uniform class and
// attribute in [0, attrSpan).
func Objects(seed int64, h *classindex.Hierarchy, n int, attrSpan int64) []classindex.Object {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]classindex.Object, n)
	for i := range objs {
		objs[i] = classindex.Object{
			Class: rng.Intn(h.Len()),
			Attr:  rng.Int63n(attrSpan),
			ID:    uint64(i),
		}
	}
	return objs
}

func className(i int) string { return "class" + itoa(i) }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}
