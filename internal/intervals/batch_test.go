package intervals

import (
	"math/rand"
	"sort"
	"testing"

	"ccidx/internal/geom"
	"ccidx/internal/workload"
)

func sortIvs(ivs []geom.Interval) {
	sort.Slice(ivs, func(i, j int) bool {
		a, b := ivs[i], ivs[j]
		if a.Lo != b.Lo {
			return a.Lo < b.Lo
		}
		if a.Hi != b.Hi {
			return a.Hi < b.Hi
		}
		return a.ID < b.ID
	})
}

func sameIvs(a, b []geom.Interval) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func assertStabBatchOracle(t *testing.T, m *Manager, qs []int64, label string) {
	t.Helper()
	got := make([][]geom.Interval, len(qs))
	m.StabBatch(qs, func(qi int, iv geom.Interval) bool {
		got[qi] = append(got[qi], iv)
		return true
	})
	for qi, q := range qs {
		var want []geom.Interval
		m.Stab(q, func(iv geom.Interval) bool {
			want = append(want, iv)
			return true
		})
		sortIvs(got[qi])
		sortIvs(want)
		if !sameIvs(got[qi], want) {
			t.Fatalf("%s: stab %d (q=%d): batch %d intervals, sequential %d",
				label, qi, q, len(got[qi]), len(want))
		}
	}
}

func assertIntersectBatchOracle(t *testing.T, m *Manager, qs []geom.Interval, label string) {
	t.Helper()
	got := make([][]geom.Interval, len(qs))
	m.IntersectBatch(qs, func(qi int, iv geom.Interval) bool {
		got[qi] = append(got[qi], iv)
		return true
	})
	for qi, q := range qs {
		var want []geom.Interval
		m.Intersect(q, func(iv geom.Interval) bool {
			want = append(want, iv)
			return true
		})
		sortIvs(got[qi])
		sortIvs(want)
		if !sameIvs(got[qi], want) {
			t.Fatalf("%s: intersect %d (%v): batch %d intervals, sequential %d",
				label, qi, q, len(got[qi]), len(want))
		}
	}
}

// TestManagerBatchOracle runs the manager through churn (inserts, deletes,
// rebuilds) with a buffer pool attached — the serving configuration — and
// asserts batch == sequential for stabbing and intersection batches at
// every checkpoint.
func TestManagerBatchOracle(t *testing.T) {
	const b = 8
	span := int64(1 << 16)
	maxLen := span / 64
	ivs := workload.UniformIntervals(51, 2000, span, maxLen)
	m := New(Config{B: b}, ivs)
	m.AttachPool(64, 4)
	rng := rand.New(rand.NewSource(52))

	ops := workload.ChurnOps(53, workload.SeqIDs(2000), 2000, 3000, span, maxLen)
	for i, op := range ops {
		switch op.Kind {
		case workload.ChurnInsert:
			m.Insert(op.Iv)
		case workload.ChurnDelete:
			if !m.Delete(op.ID) {
				t.Fatalf("churn stream deleted an absent id %d", op.ID)
			}
		case workload.ChurnStab, workload.ChurnIntersect:
			// Queries are exercised via the batch checkpoints below.
		}
		if i%500 == 499 {
			qs := make([]int64, 64)
			for j := range qs {
				qs[j] = rng.Int63n(span)
			}
			assertStabBatchOracle(t, m, qs, "churn")
			iqs := make([]geom.Interval, 32)
			for j := range iqs {
				lo := rng.Int63n(span)
				hi := lo + rng.Int63n(maxLen+1)
				if j%8 == 7 {
					hi = lo - 1 // invalid: reports nothing
				}
				iqs[j] = geom.Interval{Lo: lo, Hi: hi}
			}
			assertIntersectBatchOracle(t, m, iqs, "churn")
		}
	}
}

// TestManagerStabBatchSharesIOs asserts the end-to-end amortization on the
// bare cost model (no pool): a sorted flood of stabbing queries must cost
// well under the sequential sum.
func TestManagerStabBatchSharesIOs(t *testing.T) {
	const b = 16
	span := int64(1 << 20)
	m := New(Config{B: b}, workload.UniformIntervals(55, 50000, span, 4000))
	rng := rand.New(rand.NewSource(56))
	qs := make([]int64, 256)
	for i := range qs {
		qs[i] = rng.Int63n(span)
	}
	before := m.Stats()
	for _, q := range qs {
		m.Stab(q, func(geom.Interval) bool { return true })
	}
	seq := m.Stats().Sub(before).IOs()
	before = m.Stats()
	m.StabBatch(qs, func(int, geom.Interval) bool { return true })
	batch := m.Stats().Sub(before).IOs()
	if batch*2 > seq {
		t.Fatalf("batched stab shared too little: %d I/Os batched vs %d sequential", batch, seq)
	}
}
