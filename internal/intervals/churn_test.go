package intervals

import (
	"math/rand"
	"testing"

	"ccidx/internal/geom"
	"ccidx/internal/workload"
)

// TestChurnOracleAgainstNaive replays a fixed-seed mixed
// insert/delete/stab/intersect stream through the optimal manager and the
// naive baseline and requires identical answers throughout.
func TestChurnOracleAgainstNaive(t *testing.T) {
	const span, maxLen = int64(4000), int64(400)
	ivs := workload.UniformIntervals(61, 800, span, maxLen)
	m := New(Config{B: 8}, ivs)
	nv := NewNaive(8)
	for _, iv := range ivs {
		nv.Insert(iv)
	}
	ops := workload.ChurnOps(62, workload.SeqIDs(len(ivs)), uint64(len(ivs)), 4000, span, maxLen)
	for i, op := range ops {
		switch op.Kind {
		case workload.ChurnInsert:
			m.Insert(op.Iv)
			nv.Insert(op.Iv)
		case workload.ChurnDelete:
			dm, dn := m.Delete(op.ID), nv.Delete(op.ID)
			if !dm || !dn {
				t.Fatalf("op %d: delete id %d: manager=%v naive=%v", i, op.ID, dm, dn)
			}
		case workload.ChurnStab:
			a := collectIDs(func(e EmitInterval) { m.Stab(op.Q, e) })
			b := collectIDs(func(e EmitInterval) { nv.Stab(op.Q, e) })
			if !equalIDs(a, b) {
				t.Fatalf("op %d: stab %d: manager %d ids, naive %d ids", i, op.Q, len(a), len(b))
			}
		case workload.ChurnIntersect:
			a := collectIDs(func(e EmitInterval) { m.Intersect(op.QIv, e) })
			b := collectIDs(func(e EmitInterval) { nv.Intersect(op.QIv, e) })
			if !equalIDs(a, b) {
				t.Fatalf("op %d: intersect %v: manager %d ids, naive %d ids", i, op.QIv, len(a), len(b))
			}
		}
		if m.Len() != nv.Len() {
			t.Fatalf("op %d: Len drift: manager %d naive %d", i, m.Len(), nv.Len())
		}
	}
	if m.Delete(1 << 62) {
		t.Fatal("delete of absent id succeeded")
	}
	t.Logf("final n=%d, stabber rebuilds=%d", m.Len(), m.Rebuilds())
}

// TestManagerDeleteSpaceBounded checks that churn does not leak space in
// the optimal manager: after the global-rebuild machinery has run, live
// pages stay proportional to the live interval count.
func TestManagerDeleteSpaceBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	b := 8
	ivs := genIntervals(rng, 4000, 1<<20)
	m := New(Config{B: b}, ivs)
	for _, iv := range ivs[:3600] {
		if !m.Delete(iv.ID) {
			t.Fatalf("delete id %d failed", iv.ID)
		}
	}
	if m.Len() != 400 {
		t.Fatalf("Len=%d", m.Len())
	}
	if m.Rebuilds() == 0 {
		t.Fatal("no global rebuild after deleting 90% of the intervals")
	}
	// Space for 400 live intervals (plus the bounded tombstone backlog and
	// the two structures' constant overheads) must be far below the space
	// the 4000-interval structure occupied.
	if space, lim := m.SpaceBlocks(), int64(40*400/b); space > lim {
		t.Fatalf("space %d blocks exceeds %d after shrinking to 400 live intervals", space, lim)
	}
}

// TestNaiveChurnSpaceLeak is the regression test for the Naive space leak:
// emptied pages used to stay allocated (and listed in nv.pages) and Insert
// only refilled the last page, so SpaceBlocks() and the O(n/B) scans grew
// without bound under churn.
func TestNaiveChurnSpaceLeak(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	nv := NewNaive(4)
	nextID := uint64(0)
	var live []uint64
	// Sustained churn: cycles of inserts followed by deletes of random ids.
	for cycle := 0; cycle < 50; cycle++ {
		for i := 0; i < 40; i++ {
			lo := rng.Int63n(1000)
			nv.Insert(geom.Interval{Lo: lo, Hi: lo + rng.Int63n(100), ID: nextID})
			live = append(live, nextID)
			nextID++
		}
		for i := 0; i < 40 && len(live) > 0; i++ {
			j := rng.Intn(len(live))
			if !nv.Delete(live[j]) {
				t.Fatalf("delete id %d failed", live[j])
			}
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if n := int64(nv.Len()); nv.SpaceBlocks() > max64(1, n) {
			t.Fatalf("cycle %d: %d pages for %d live intervals (empty pages leaked)",
				cycle, nv.SpaceBlocks(), n)
		}
	}
	// Deleting everything returns the space to zero.
	for _, id := range live {
		nv.Delete(id)
	}
	if nv.Len() != 0 || nv.SpaceBlocks() != 0 {
		t.Fatalf("after deleting all: n=%d space=%d", nv.Len(), nv.SpaceBlocks())
	}
	// And the freed pages are actually reusable.
	nv.Insert(geom.Interval{Lo: 1, Hi: 2, ID: nextID})
	if nv.SpaceBlocks() != 1 {
		t.Fatalf("space %d after one insert", nv.SpaceBlocks())
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// TestDuplicateIDInsertPanics pins the loud-failure contract: inserting a
// live id again would silently orphan the previous copy (the directory
// holds one entry per id), so it must panic instead. Reusing an id after
// deleting it is fine.
func TestDuplicateIDInsertPanics(t *testing.T) {
	m := New(Config{B: 4}, []geom.Interval{{Lo: 1, Hi: 5, ID: 9}})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate live id did not panic")
			}
		}()
		m.Insert(geom.Interval{Lo: 2, Hi: 3, ID: 9})
	}()
	if !m.Delete(9) {
		t.Fatal("delete failed")
	}
	m.Insert(geom.Interval{Lo: 2, Hi: 3, ID: 9}) // id free again: no panic
	if m.Len() != 1 {
		t.Fatalf("Len=%d", m.Len())
	}
}

// TestNaiveInsertReusesHoles pins the hole-refill behaviour: a delete that
// leaves a partial page must be compensated by a later insert without
// allocating a new page.
func TestNaiveInsertReusesHoles(t *testing.T) {
	nv := NewNaive(4)
	for i := 0; i < 8; i++ { // two full pages
		nv.Insert(geom.Interval{Lo: int64(i), Hi: int64(i + 1), ID: uint64(i)})
	}
	if nv.SpaceBlocks() != 2 {
		t.Fatalf("space %d after filling two pages", nv.SpaceBlocks())
	}
	if !nv.Delete(1) { // hole in the first page
		t.Fatal("delete failed")
	}
	nv.Insert(geom.Interval{Lo: 100, Hi: 101, ID: 100})
	if nv.SpaceBlocks() != 2 {
		t.Fatalf("insert did not reuse the hole: %d pages", nv.SpaceBlocks())
	}
	got := collectIDs(func(e EmitInterval) { nv.Intersect(geom.Interval{Lo: 0, Hi: 200}, e) })
	want := []uint64{0, 2, 3, 4, 5, 6, 7, 100}
	if !equalIDs(got, want) {
		t.Fatalf("contents after hole reuse: %v", got)
	}
}
