package intervals

import (
	"errors"
	"path/filepath"
	"testing"

	"ccidx/internal/bptree"
	"ccidx/internal/disk"
	"ccidx/internal/workload"
)

// TestDurableBitFlipDetected: one flipped bit in the endpoint tree's
// device file must surface from OpenAt as a typed disk.ErrCorrupt — the
// open's rebuild scans every endpoint leaf, so the rot is caught before
// the manager serves a single wrong answer, and the recover guard turns
// the tree's panic into an error instead of killing the process.
func TestDurableBitFlipDetected(t *testing.T) {
	const span = int64(2000)
	cfg := Config{B: 8}
	dir := filepath.Join(t.TempDir(), "mgr")
	m, err := CreateAt(dir, cfg, workload.UniformIntervals(11, 200, span, 150), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CloseFiles(); err != nil {
		t.Fatal(err)
	}

	epPath := filepath.Join(dir, "endpoints.pages")
	if err := disk.FlipBit(epPath, bptree.PageSize(cfg.B), 1, 9); err != nil {
		t.Fatal(err)
	}

	m, err = OpenAt(dir, DurableOptions{})
	if err == nil {
		m.CloseFiles()
		t.Fatal("OpenAt succeeded over a flipped endpoint page")
	}
	var corrupt disk.ErrCorrupt
	if !errors.As(err, &corrupt) {
		t.Fatalf("OpenAt error = %v, want a wrapped disk.ErrCorrupt", err)
	}
	if corrupt.Path != epPath {
		t.Fatalf("ErrCorrupt.Path = %q, want %q", corrupt.Path, epPath)
	}
}
