package intervals

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ccidx/internal/geom"
)

func genIntervals(rng *rand.Rand, n int, coordRange int64) []geom.Interval {
	ivs := make([]geom.Interval, n)
	for i := range ivs {
		lo := rng.Int63n(coordRange)
		hi := lo + rng.Int63n(coordRange-lo+1)
		ivs[i] = geom.Interval{Lo: lo, Hi: hi, ID: uint64(i)}
	}
	return ivs
}

func collectIDs(f func(EmitInterval)) []uint64 {
	var ids []uint64
	f(func(iv geom.Interval) bool {
		ids = append(ids, iv.ID)
		return true
	})
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func stabOracle(ivs []geom.Interval, q int64) []uint64 {
	var ids []uint64
	for _, iv := range ivs {
		if iv.Contains(q) {
			ids = append(ids, iv.ID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func intersectOracle(ivs []geom.Interval, q geom.Interval) []uint64 {
	var ids []uint64
	for _, iv := range ivs {
		if iv.Intersects(q) {
			ids = append(ids, iv.ID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equalIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestStabMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ivs := genIntervals(rng, 2000, 500)
	m := New(Config{B: 8}, ivs)
	for q := int64(-1); q <= 501; q += 3 {
		if !equalIDs(collectIDs(func(e EmitInterval) { m.Stab(q, e) }), stabOracle(ivs, q)) {
			t.Fatalf("stab %d mismatch", q)
		}
	}
}

func TestIntersectMatchesOracleNoDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ivs := genIntervals(rng, 1500, 300)
	m := New(Config{B: 8}, ivs)
	for trial := 0; trial < 400; trial++ {
		lo := rng.Int63n(304) - 2
		hi := lo + rng.Int63n(100)
		q := geom.Interval{Lo: lo, Hi: hi}
		var got []uint64
		seen := map[uint64]bool{}
		m.Intersect(q, func(iv geom.Interval) bool {
			if seen[iv.ID] {
				t.Fatalf("interval %d reported twice for %v", iv.ID, q)
			}
			seen[iv.ID] = true
			got = append(got, iv.ID)
			return true
		})
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if !equalIDs(got, intersectOracle(ivs, q)) {
			t.Fatalf("intersect %v mismatch: got %d want %d", q, len(got), len(intersectOracle(ivs, q)))
		}
	}
}

func TestIntersectReturnsFullEndpoints(t *testing.T) {
	ivs := []geom.Interval{{Lo: 2, Hi: 9, ID: 7}, {Lo: 5, Hi: 6, ID: 8}}
	m := New(Config{B: 4}, ivs)
	found := map[uint64]geom.Interval{}
	m.Intersect(geom.Interval{Lo: 4, Hi: 10}, func(iv geom.Interval) bool {
		found[iv.ID] = iv
		return true
	})
	if found[7] != ivs[0] || found[8] != ivs[1] {
		t.Fatalf("endpoints corrupted: %v", found)
	}
}

func TestInsertThenQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ivs := genIntervals(rng, 300, 200)
	m := New(Config{B: 4}, ivs[:100])
	for _, iv := range ivs[100:] {
		m.Insert(iv)
	}
	if m.Len() != 300 {
		t.Fatalf("Len=%d", m.Len())
	}
	for q := int64(0); q <= 200; q += 5 {
		if !equalIDs(collectIDs(func(e EmitInterval) { m.Stab(q, e) }), stabOracle(ivs, q)) {
			t.Fatalf("stab %d mismatch after inserts", q)
		}
	}
}

func TestEmptyManager(t *testing.T) {
	m := New(Config{B: 4}, nil)
	if got := collectIDs(func(e EmitInterval) { m.Intersect(geom.Interval{Lo: 0, Hi: 10}, e) }); len(got) != 0 {
		t.Fatalf("empty manager returned %v", got)
	}
}

func TestDegenerateIntervals(t *testing.T) {
	// Zero-length intervals and touching endpoints.
	ivs := []geom.Interval{
		{Lo: 5, Hi: 5, ID: 1},
		{Lo: 5, Hi: 7, ID: 2},
		{Lo: 3, Hi: 5, ID: 3},
	}
	m := New(Config{B: 4}, ivs)
	got := collectIDs(func(e EmitInterval) { m.Stab(5, e) })
	if !equalIDs(got, []uint64{1, 2, 3}) {
		t.Fatalf("stab 5 = %v", got)
	}
	got = collectIDs(func(e EmitInterval) { m.Intersect(geom.Interval{Lo: 5, Hi: 5}, e) })
	if !equalIDs(got, []uint64{1, 2, 3}) {
		t.Fatalf("intersect [5,5] = %v", got)
	}
}

func TestQueryIOBoundVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b := 16
	n := 20000
	// Short intervals keep stab outputs small so the log_B n term (not the
	// t/B term) dominates, which is where the two structures differ.
	ivs := make([]geom.Interval, n)
	for i := range ivs {
		lo := rng.Int63n(1 << 30)
		ivs[i] = geom.Interval{Lo: lo, Hi: lo + rng.Int63n(1000), ID: uint64(i)}
	}
	m := New(Config{B: b}, ivs)
	nv := NewNaive(b)
	for _, iv := range ivs {
		nv.Insert(iv)
	}
	var mTot, nvTot int64
	for trial := 0; trial < 30; trial++ {
		q := rng.Int63n(1 << 30)
		before := m.Stats()
		m.Stab(q, func(geom.Interval) bool { return true })
		mTot += m.Stats().Sub(before).IOs()
		beforeN := nv.Pager().Stats()
		nv.Stab(q, func(geom.Interval) bool { return true })
		nvTot += nv.Pager().Stats().Sub(beforeN).IOs()
	}
	if mTot*10 >= nvTot {
		t.Fatalf("manager I/O %d not clearly better than naive %d", mTot, nvTot)
	}
	t.Logf("stab I/O over 30 queries: manager=%d naive=%d", mTot, nvTot)
}

func TestSpaceBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := 16
	n := 10000
	m := New(Config{B: b}, genIntervals(rng, n, 1<<30))
	if got, lim := m.SpaceBlocks(), int64(16*n/b); got > lim {
		t.Fatalf("space %d exceeds %d", got, lim)
	}
}

func TestNaiveDelete(t *testing.T) {
	nv := NewNaive(4)
	for i := 0; i < 50; i++ {
		nv.Insert(geom.Interval{Lo: int64(i), Hi: int64(i + 10), ID: uint64(i)})
	}
	if !nv.Delete(25) || nv.Delete(25) {
		t.Fatal("delete semantics wrong")
	}
	if nv.Len() != 49 {
		t.Fatalf("Len=%d", nv.Len())
	}
	got := collectIDs(func(e EmitInterval) { nv.Stab(30, e) })
	for _, id := range got {
		if id == 25 {
			t.Fatal("deleted interval still reported")
		}
	}
}

func TestManagerAgainstNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ivs := genIntervals(rng, 100+rng.Intn(300), 80)
		m := New(Config{B: 4 + rng.Intn(8)}, ivs[:50])
		nv := NewNaive(4)
		for _, iv := range ivs[:50] {
			nv.Insert(iv)
		}
		for _, iv := range ivs[50:] {
			m.Insert(iv)
			nv.Insert(iv)
		}
		for k := 0; k < 20; k++ {
			lo := rng.Int63n(84) - 2
			hi := lo + rng.Int63n(40)
			q := geom.Interval{Lo: lo, Hi: hi}
			a := collectIDs(func(e EmitInterval) { m.Intersect(q, e) })
			b := collectIDs(func(e EmitInterval) { nv.Intersect(q, e) })
			if !equalIDs(a, b) {
				return false
			}
		}
		return true
	}
	// Fixed-seed Rand keeps the property deterministic (testing/quick
	// defaults to a time-seeded generator).
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(75))}
	if testing.Short() {
		cfg.MaxCount = 6
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := New(Config{B: 4}, genIntervals(rng, 500, 50))
	count := 0
	m.Intersect(geom.Interval{Lo: 0, Hi: 50}, func(geom.Interval) bool {
		count++
		return count < 4
	})
	if count != 4 {
		t.Fatalf("early stop emitted %d", count)
	}
}
