package intervals

// Durable managers: the same Manager, but with both trees on file-backed
// devices (disk.FileDevice) inside a directory, plus crash-safe
// checkpointing.
//
// A checkpoint serializes each tree's out-of-page state (root pointers and
// the stabber's tombstone directories) into its device's superblock with
// the shadow/double-buffer protocol, committed across BOTH devices by one
// atomic manifest rename. The id directory is not serialized at all: it is
// in bijection with the endpoint B+-tree (every live interval is exactly
// one endpoint entry carrying Lo, ID and Hi), so OpenAt rebuilds it with a
// single O(n/B) leaf-chain scan — the dominant cost of a cold open, which
// experiment E21 measures.
//
// The manager-level protocol (PrepareCheckpoint on every device, one
// manifest rename, CommitCheckpoint on every device) is also exposed for
// drivers that span many managers: the sharded serving layer checkpoints
// every shard's devices under a single top-level manifest so a crash can
// never surface shards from different generations.
//
// What is durable: the state at the last committed checkpoint PLUS every
// mutation the write-ahead log recorded since (each Insert/Delete appends
// to the WAL before touching the trees; the sharded layer appends at
// group-commit enqueue). A crash loses at most the single mutation that
// was mid-append. Opting out (DurableOptions.DisableWAL) restores the
// checkpoint-granular window: call Checkpoint as often as the workload
// wants to bound it.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"ccidx/internal/bptree"
	"ccidx/internal/core"
	"ccidx/internal/disk"
	"ccidx/internal/geom"
)

// Device file names inside a durable manager's directory.
const (
	endpointsFile = "endpoints.pages"
	stabberFile   = "stabber.pages"
	walFile       = "wal.log"
)

// manifestKind tags a standalone durable manager's manifest.
const manifestKind = "ccidx-intervals"

// DurableOptions configures the file-backed devices.
type DurableOptions struct {
	// Fsync selects the devices' sync policy (default disk.FsyncCheckpoint).
	Fsync disk.FsyncPolicy
	// DisableWAL turns off the write-ahead log of acknowledged mutations,
	// restoring the checkpoint-granular durability of PR 5: a crash loses
	// everything since the last checkpoint. The default (WAL on) loses at
	// most the mutation that was mid-append.
	DisableWAL bool
	// Budget, when non-nil, arms a shared fault-injection write budget on
	// the devices and the WAL from the very first file write — including
	// the open path's rollback, rebuild, and WAL replay, which a
	// post-construction SetWriteBudget can never reach. Crash-schedule
	// tests use it to land crashes inside recovery itself.
	Budget *disk.WriteBudget
}

// WAL op encoding: one record per acknowledged mutation.
//
//	insert  {1, lo i64, hi i64, id u64}  25 bytes
//	delete  {2, id u64}                   9 bytes
const (
	walOpInsert = 1
	walOpDelete = 2
)

func encodeInsertOp(iv geom.Interval) []byte {
	rec := make([]byte, 25)
	rec[0] = walOpInsert
	binary.LittleEndian.PutUint64(rec[1:], uint64(iv.Lo))
	binary.LittleEndian.PutUint64(rec[9:], uint64(iv.Hi))
	binary.LittleEndian.PutUint64(rec[17:], iv.ID)
	return rec
}

func encodeDeleteOp(id uint64) []byte {
	rec := make([]byte, 9)
	rec[0] = walOpDelete
	binary.LittleEndian.PutUint64(rec[1:], id)
	return rec
}

// Meta is the configuration a durable manager records in its manifest (and
// the sharded layer in its own), so opening needs no out-of-band
// parameters.
type Meta struct {
	B             int           `json:"b"`
	DisableTS     bool          `json:"disable_ts,omitempty"`
	DisableCorner bool          `json:"disable_corner,omitempty"`
	Ingest        *IngestConfig `json:"ingest,omitempty"`
}

func (cfg Config) meta() Meta {
	return Meta{B: cfg.B, DisableTS: cfg.DisableTS, DisableCorner: cfg.DisableCorner, Ingest: cfg.Ingest}
}

// Config returns the manager configuration a Meta describes.
func (mt Meta) Config() Config {
	return Config{B: mt.B, DisableTS: mt.DisableTS, DisableCorner: mt.DisableCorner, Ingest: mt.Ingest}
}

// CreateAt builds a manager over ivs with both trees on file-backed devices
// in dir (created if needed), writes the initial checkpoint and commits it
// under dir's manifest. A crash before CreateAt returns leaves no valid
// manifest; treat the directory as never created.
func CreateAt(dir string, cfg Config, ivs []geom.Interval, opt DurableOptions) (*Manager, error) {
	m, err := CreateManaged(dir, cfg, ivs, opt)
	if err != nil {
		return nil, err
	}
	if err := m.Checkpoint(); err != nil {
		m.CloseFiles()
		return nil, err
	}
	return m, nil
}

// CreateManaged is CreateAt without the initial checkpoint and without a
// directory manifest: for drivers (the sharded serving layer) that commit
// many managers under one top-level manifest via PrepareCheckpoint /
// CommitCheckpoint.
func CreateManaged(dir string, cfg Config, ivs []geom.Interval, opt DurableOptions) (*Manager, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if cfg.Ingest != nil {
		return createLSM(dir, cfg, ivs, opt)
	}
	ep, st, err := openDevices(dir, cfg, opt, nil)
	if err != nil {
		return nil, err
	}
	var wal *disk.WAL
	if !opt.DisableWAL {
		wal, err = disk.OpenWAL(filepath.Join(dir, walFile), opt.Fsync)
		if err == nil {
			wal.SetWriteBudget(opt.Budget)
			err = wal.Reset(ep.Seq())
		}
		if err != nil {
			ep.Close()
			st.Close()
			if wal != nil {
				wal.Close()
			}
			return nil, err
		}
	}
	m := newOn(cfg, ep, st, ivs)
	m.files = []*disk.FileDevice{ep, st}
	m.wal = wal
	m.dirPath = dir
	return m, nil
}

// OpenAt reopens the durable manager in dir at the generation its manifest
// committed, rebuilding the id directory from the endpoint tree.
func OpenAt(dir string, opt DurableOptions) (*Manager, error) {
	mf, err := disk.ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	if mf.Kind != manifestKind {
		return nil, fmt.Errorf("intervals: %s holds a %q checkpoint, not %q", dir, mf.Kind, manifestKind)
	}
	var mt Meta
	if err := json.Unmarshal(mf.Meta, &mt); err != nil {
		return nil, fmt.Errorf("intervals: corrupt manifest meta in %s: %w", dir, err)
	}
	return OpenManaged(dir, mt.Config(), mf.Seq, opt)
}

// OpenManaged reopens the manager in dir trusting generation seq (the
// caller's committed manifest), with cfg from the caller's metadata. The
// rebuild and WAL replay run inside a recover guard: the trees' Must*
// helpers panic with error values on a corrupt page or an injected fault,
// and an open must surface those as errors, not kill the process.
func OpenManaged(dir string, cfg Config, seq uint64, opt DurableOptions) (mgr *Manager, err error) {
	if cfg.Ingest != nil {
		return openLSM(dir, cfg, seq, opt)
	}
	ep, st, err := openDevices(dir, cfg, opt, &seq)
	if err != nil {
		return nil, err
	}
	var wal *disk.WAL
	closeAll := func() {
		ep.Close()
		st.Close()
		if wal != nil {
			wal.Close()
		}
	}
	defer func() {
		if p := recover(); p != nil {
			e, ok := p.(error)
			if !ok {
				panic(p)
			}
			closeAll()
			mgr, err = nil, fmt.Errorf("intervals: opening %s: %w", dir, e)
		}
	}()
	if !ep.HasCheckpoint() || !st.HasCheckpoint() {
		closeAll()
		return nil, fmt.Errorf("intervals: %s has no structure checkpoint at seq %d", dir, seq)
	}
	endpoints, err := bptree.OpenOn(ep, ep.ReadCheckpoint())
	if err != nil {
		closeAll()
		return nil, err
	}
	coreCfg := core.Config{B: cfg.B, DisableTS: cfg.DisableTS, DisableCorner: cfg.DisableCorner}
	stabber, err := core.OpenOn(coreCfg, st, st.ReadCheckpoint())
	if err != nil {
		closeAll()
		return nil, err
	}
	m := &Manager{
		endpoints: endpoints,
		stabber:   stabber,
		dir:       make(map[uint64]geom.Interval, endpoints.Len()),
		cfg:       cfg,
		files:     []*disk.FileDevice{ep, st},
		dirPath:   dir,
	}
	// Rebuild the id directory from the endpoint tree: one O(n/B) scan.
	m.endpoints.All(func(e bptree.Entry) bool {
		m.dir[e.RID] = geom.Interval{Lo: e.Key, Hi: int64(e.Val), ID: e.RID}
		return true
	})
	if len(m.dir) != endpoints.Len() {
		closeAll()
		return nil, fmt.Errorf("intervals: %s endpoint tree holds %d entries but %d distinct ids",
			dir, endpoints.Len(), len(m.dir))
	}
	m.n = len(m.dir)

	// Replay the WAL tail on top of the checkpoint image. Replay is
	// idempotent: an insert already present (logged AND captured by the
	// checkpoint, or replayed once before a crashed replay retried) is
	// skipped, as is a delete of an absent id.
	if !opt.DisableWAL {
		wal, err = disk.OpenWAL(filepath.Join(dir, walFile), opt.Fsync)
		if err != nil {
			closeAll()
			return nil, err
		}
		wal.SetWriteBudget(opt.Budget)
		if _, err := wal.Recover(seq, m.replayOp); err != nil {
			closeAll()
			return nil, fmt.Errorf("intervals: replaying %s wal: %w", dir, err)
		}
		m.wal = wal
	}
	return m, nil
}

// replayOp applies one decoded WAL record idempotently.
func (m *Manager) replayOp(payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("empty wal record")
	}
	switch payload[0] {
	case walOpInsert:
		if len(payload) != 25 {
			return fmt.Errorf("insert wal record of %d bytes", len(payload))
		}
		iv := geom.Interval{
			Lo: int64(binary.LittleEndian.Uint64(payload[1:])),
			Hi: int64(binary.LittleEndian.Uint64(payload[9:])),
			ID: binary.LittleEndian.Uint64(payload[17:]),
		}
		if _, present := m.dir[iv.ID]; !present {
			m.applyInsert(iv)
		}
		return nil
	case walOpDelete:
		if len(payload) != 9 {
			return fmt.Errorf("delete wal record of %d bytes", len(payload))
		}
		m.applyDelete(binary.LittleEndian.Uint64(payload[1:]))
		return nil
	default:
		return fmt.Errorf("unknown wal op %d", payload[0])
	}
}

// LogInsert appends an insert record to the WAL without applying or
// syncing it — the shard layer's enqueue hook. Panics on a failed append
// (error-valued, like the trees' Must* helpers) so the crash harness
// recovers it as a crash.
func (m *Manager) LogInsert(iv geom.Interval) {
	if m.wal == nil {
		return
	}
	if err := m.wal.Append(encodeInsertOp(iv)); err != nil {
		panic(fmt.Errorf("intervals: wal append: %w", err))
	}
}

// LogDelete appends a delete record to the WAL without applying or syncing.
func (m *Manager) LogDelete(id uint64) {
	if m.wal == nil {
		return
	}
	if err := m.wal.Append(encodeDeleteOp(id)); err != nil {
		panic(fmt.Errorf("intervals: wal append: %w", err))
	}
}

// SyncWAL syncs the log at the group-commit boundary (a no-op except under
// FsyncAlways — see disk.WAL.Sync).
func (m *Manager) SyncWAL() {
	if m.wal == nil {
		return
	}
	if err := m.wal.Sync(); err != nil {
		panic(fmt.Errorf("intervals: wal sync: %w", err))
	}
}

// WAL exposes the write-ahead log (nil when disabled or in-memory):
// fault-injection tests arm its write budget alongside the devices'.
func (m *Manager) WAL() *disk.WAL { return m.wal }

// SetWriteBudget arms one shared fault-injection budget across both devices
// AND the WAL (log-structured mode: every run's devices, current and
// future, plus the WAL), so the k-th-write crash boundary is global over
// every file-level write the manager issues. Nil disarms.
func (m *Manager) SetWriteBudget(b *disk.WriteBudget) {
	if m.lsm != nil {
		m.lsmSetWriteBudget(b)
		return
	}
	for _, f := range m.files {
		f.SetWriteBudget(b)
	}
	if m.wal != nil {
		m.wal.SetWriteBudget(b)
	}
}

// FileWrites sums the file-level write counters of the devices and the WAL
// — the upper bound of a crash sweep's k. Log-structured mode includes
// runs that have since been merged away (cumulative).
func (m *Manager) FileWrites() int64 {
	if m.lsm != nil {
		return m.lsmFileWrites()
	}
	var n int64
	for _, f := range m.files {
		n += f.FileWrites()
	}
	if m.wal != nil {
		n += m.wal.FileWrites()
	}
	return n
}

func openDevices(dir string, cfg Config, opt DurableOptions, trustSeq *uint64) (ep, st *disk.FileDevice, err error) {
	// trustSeq == nil is the create path: refuse to build a fresh tree over
	// an existing device (it would recover the old pages and leak them all
	// under the new structure).
	mustCreate := trustSeq == nil
	ep, err = disk.OpenFile(filepath.Join(dir, endpointsFile), disk.FileOptions{
		PageSize: bptree.PageSize(cfg.B), Fsync: opt.Fsync, TrustSeq: trustSeq, MustCreate: mustCreate,
		Budget: opt.Budget,
	})
	if err != nil {
		return nil, nil, err
	}
	st, err = disk.OpenFile(filepath.Join(dir, stabberFile), disk.FileOptions{
		PageSize: core.Config{B: cfg.B}.PageSize(), Fsync: opt.Fsync, TrustSeq: trustSeq, MustCreate: mustCreate,
		Budget: opt.Budget,
	})
	if err != nil {
		ep.Close()
		return nil, nil, err
	}
	return ep, st, nil
}

// Durable reports whether the manager runs on file-backed devices.
func (m *Manager) Durable() bool {
	if m.lsm != nil {
		return m.lsm.durable
	}
	return len(m.files) > 0
}

// Seq returns the last durable checkpoint generation (0 before the first).
func (m *Manager) Seq() uint64 {
	if !m.Durable() {
		return 0
	}
	if m.lsm != nil {
		return m.lsm.seq
	}
	return m.files[0].Seq()
}

// PrepareCheckpoint flushes pooled frames and writes generation seq
// (= Seq()+1) on both devices without committing it. Callers must have
// quiesced mutations (checkpointing is a mutation under the manager's
// concurrency contract). On failure neither device is left prepared: a
// prepared endpoints device is rolled back when the stabber device's
// prepare fails, so the manager stays at the previous generation and the
// checkpoint may be retried in process.
func (m *Manager) PrepareCheckpoint(seq uint64) error {
	if !m.Durable() {
		return fmt.Errorf("intervals: manager is not file-backed")
	}
	if m.lsm != nil {
		return m.lsmPrepare(seq)
	}
	if err := m.flushPool(); err != nil {
		return err
	}
	if err := m.files[0].PrepareCheckpoint(seq, m.endpoints.MarshalState()); err != nil {
		return err
	}
	if err := m.files[1].PrepareCheckpoint(seq, m.stabber.MarshalState()); err != nil {
		if rerr := m.files[0].RollbackCheckpoint(); rerr != nil {
			return fmt.Errorf("intervals: rolling back endpoints prepare: %v (original: %w)", rerr, err)
		}
		return err
	}
	return nil
}

// RollbackCheckpoint abandons a prepared (uncommitted) generation on both
// devices, restoring the previous one. Multi-manager drivers call this on
// every successfully prepared manager when a sibling's prepare — or the
// group manifest write — fails.
func (m *Manager) RollbackCheckpoint() error {
	if m.lsm != nil {
		return m.lsmRollback()
	}
	var first error
	for _, f := range m.files {
		if err := f.RollbackCheckpoint(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// CommitCheckpoint commits the generation PrepareCheckpoint wrote, after
// the caller's manifest rename made it the committed one, then truncates
// the WAL: everything it logged is captured by the new checkpoint image. A
// crash between the commit record and the truncation is benign — the log's
// stale generation is discarded at the next open.
func (m *Manager) CommitCheckpoint() error {
	if m.lsm != nil {
		return m.lsmCommit()
	}
	for _, f := range m.files {
		if err := f.CommitCheckpoint(); err != nil {
			return err
		}
	}
	if m.wal != nil {
		return m.wal.Reset(m.files[0].Seq())
	}
	return nil
}

// Checkpoint makes the manager's current state durable: prepare both
// devices, atomically flip the directory manifest (the commit point),
// commit. After a crash at ANY point, OpenAt recovers the last committed
// generation on both devices consistently.
func (m *Manager) Checkpoint() error {
	if !m.Durable() {
		return fmt.Errorf("intervals: manager is not file-backed")
	}
	seq := m.Seq() + 1
	if err := m.PrepareCheckpoint(seq); err != nil {
		return err
	}
	metaJSON, err := json.Marshal(m.cfg.meta())
	if err != nil {
		return err
	}
	if err := disk.WriteManifest(m.dirPath, disk.Manifest{
		Version: 1, Kind: manifestKind, Seq: seq, Meta: metaJSON,
	}); err != nil {
		if rerr := m.RollbackCheckpoint(); rerr != nil {
			return fmt.Errorf("intervals: rolling back after manifest failure: %v (original: %w)", rerr, err)
		}
		return err
	}
	return m.CommitCheckpoint()
}

// CloseFiles closes the file-backed devices WITHOUT checkpointing: state
// since the last checkpoint is deliberately left to crash recovery. No-op
// for in-memory managers.
func (m *Manager) CloseFiles() error {
	if m.lsm != nil {
		return m.lsmCloseFiles()
	}
	var first error
	for _, f := range m.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	if m.wal != nil {
		if err := m.wal.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Files exposes the underlying file devices (fault-injection tests arm
// their write budgets); nil for in-memory managers. Log-structured mode
// returns the CURRENT runs' devices — a point-in-time snapshot, since
// merges retire devices; prefer SetWriteBudget, which also arms future
// runs.
func (m *Manager) Files() []*disk.FileDevice {
	if m.lsm != nil {
		l := m.lsm
		l.mu.RLock()
		defer l.mu.RUnlock()
		var out []*disk.FileDevice
		for _, r := range l.runs {
			out = append(out, r.m.Files()...)
		}
		return out
	}
	return m.files
}
