// Package intervals implements external dynamic interval management, the
// problem to which indexing constraints reduces (Section 2.1, Proposition
// 2.2, Fig 3).
//
// A set of intervals supports (1) intersection queries — report every input
// interval intersecting a query interval — (2) insertion, and (3) deletion
// by interval id. The paper's metablock tree is semi-dynamic (deletion is
// its closing open problem); Delete therefore combines the B+-tree's real
// deletes on the endpoint side with weak (tombstone) deletes and global
// rebuilding on the metablock side — see core/delete.go.
//
// Following the proof of Proposition 2.2, the intervals intersecting
// [x1,x2] split into:
//
//	types 1,2: left endpoint inside (x1, x2]  -> B+-tree on left endpoints,
//	types 3,4: interval contains x1 (stabbing) -> diagonal corner query at
//	           (x1,x1) on the endpoint points (lo,hi), answered by the
//	           metablock tree.
//
// No interval is reported twice by this split.
//
// Bounds: space O(n/B), query O(log_B n + t/B), amortized insert
// O(log_B n + (log_B n)^2/B).
package intervals

import (
	"strconv"

	"ccidx/internal/bptree"
	"ccidx/internal/core"
	"ccidx/internal/disk"
	"ccidx/internal/geom"
)

// Config carries the block capacity for both sub-structures.
type Config struct {
	B int
	// DisableTS / DisableCorner forward to the metablock tree (ablations).
	DisableTS     bool
	DisableCorner bool
	// Ingest, when non-nil, selects the log-structured mode: mutations land
	// in an in-memory memtable and background compaction maintains a
	// logarithmic set of immutable static-tree runs. See lsm.go.
	Ingest *IngestConfig
}

// Manager answers interval intersection and stabbing queries.
//
// Concurrency: mutations (New, Insert, Delete) require external
// serialization; queries (Stab, Intersect) may run concurrently with each
// other. The shard serving layer enforces this with a per-shard RWMutex.
//
// Interval ids must be unique (inserting a live id panics — overwriting
// would orphan the previous copy forever): the manager keeps an in-memory
// id directory (zero block I/O, like every other directory in this
// repository) mapping each id to its endpoints, which is what lets Delete
// locate the B+-tree entry and the metablock point.
type Manager struct {
	endpoints *bptree.Tree // key = Lo, rid = ID, val = Hi
	stabber   *core.Tree   // points (Lo, Hi)
	pools     []*disk.Pool // attached buffer pools (nil without AttachPool)
	dir       map[uint64]geom.Interval
	n         int

	// Durable state (nil/empty for the in-memory construction): the
	// file-backed devices under the two trees, the write-ahead log of
	// acknowledged mutations since the last checkpoint, and the directory
	// they live in. See durable.go.
	files   []*disk.FileDevice
	wal     *disk.WAL
	dirPath string
	cfg     Config

	// lsm, when non-nil, is the log-structured mode (Config.Ingest): the
	// two trees above are unused and the data lives in memtables plus a
	// set of immutable runs, each itself a static tree-mode Manager. See
	// lsm.go. lsmOpt carries the durable options runs are built with.
	lsm    *lsmState
	lsmOpt DurableOptions
}

// New creates a manager over the given intervals (the slice is copied).
func New(cfg Config, ivs []geom.Interval) *Manager {
	if cfg.Ingest != nil {
		return newLSM(cfg, ivs)
	}
	return newOn(cfg,
		disk.NewPager(bptree.PageSize(cfg.B)),
		disk.NewPager(core.Config{B: cfg.B}.PageSize()),
		ivs)
}

// newOn builds a manager whose trees live on the two given stores.
func newOn(cfg Config, epStore, stStore disk.Store, ivs []geom.Interval) *Manager {
	pts := make([]geom.Point, len(ivs))
	for i, iv := range ivs {
		if !iv.Valid() {
			panic("intervals: invalid interval " + iv.String())
		}
		pts[i] = iv.ToPoint()
	}
	m := &Manager{
		endpoints: bptree.NewOn(epStore, cfg.B),
		stabber: core.NewOn(core.Config{
			B: cfg.B, DisableTS: cfg.DisableTS, DisableCorner: cfg.DisableCorner,
		}, stStore, pts),
		dir: make(map[uint64]geom.Interval, len(ivs)),
		n:   len(ivs),
		cfg: cfg,
	}
	for _, iv := range ivs {
		m.endpoints.InsertEntry(bptree.Entry{Key: iv.Lo, RID: iv.ID, Val: uint64(iv.Hi)})
		m.addDir(iv)
	}
	return m
}

// addDir registers an interval in the id directory, panicking on a
// duplicate id: silently overwriting would orphan the previous copy's
// endpoint entry and stabber point forever (unreachable by Delete, still
// reported by queries), so the misuse fails loudly at the call instead.
func (m *Manager) addDir(iv geom.Interval) {
	if _, dup := m.dir[iv.ID]; dup {
		panic("intervals: duplicate interval id " + strconv.FormatUint(iv.ID, 10))
	}
	m.dir[iv.ID] = iv
}

// Len returns the number of intervals stored.
func (m *Manager) Len() int { return m.n }

// Each enumerates the live intervals (directory order, i.e. unspecified);
// returning false stops the enumeration. No block I/O: the id directory is
// in memory.
func (m *Manager) Each(fn func(geom.Interval) bool) {
	for _, iv := range m.dir {
		if !fn(iv) {
			return
		}
	}
}

// AttachPool layers a concurrent CLOCK buffer pool of frames pages (split
// between the two sub-structures, nShards lock shards each) over the
// manager's devices: reads that hit a memory-resident frame stop costing
// device I/Os, writes become write-back. Stats() keeps reporting the
// transfers that actually reach the devices. The serving layer calls this
// once per shard before sharing the manager between goroutines.
func (m *Manager) AttachPool(frames, nShards int) {
	if frames < 2 {
		frames = 2
	}
	if m.lsm != nil {
		m.lsmAttachPool(frames, nShards)
		return
	}
	ep := disk.NewPool(m.endpoints.Pager(), frames/2, nShards)
	sp := disk.NewPool(m.stabber.Pager(), frames-frames/2, nShards)
	m.endpoints.SetDevice(ep)
	m.stabber.SetDevice(sp)
	m.pools = []*disk.Pool{ep, sp}
}

// FlushPool writes every dirty pooled frame back to the devices (no-op
// without an attached pool).
func (m *Manager) FlushPool() {
	if err := m.flushPool(); err != nil {
		panic(err)
	}
}

// flushPool is FlushPool with an error return (the checkpoint path reports
// injected write faults instead of panicking).
func (m *Manager) flushPool() error {
	if m.lsm != nil {
		return m.lsmFlushPool()
	}
	for _, p := range m.pools {
		if err := p.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// PoolStats returns the aggregate (hits, misses) of the attached pools;
// zeros without a pool.
func (m *Manager) PoolStats() (hits, misses int64) {
	if m.lsm != nil {
		return m.lsmPoolStats()
	}
	for _, p := range m.pools {
		hits += p.Hits()
		misses += p.Misses()
	}
	return hits, misses
}

// Insert adds an interval; amortized O(log_B n + (log_B n)^2/B) I/Os. On a
// WAL-backed manager the mutation is logged (and, under FsyncAlways,
// synced) before it touches the trees, so an acknowledged insert survives a
// crash even before the next checkpoint.
func (m *Manager) Insert(iv geom.Interval) {
	if !iv.Valid() {
		panic("intervals: invalid interval " + iv.String())
	}
	if _, dup := m.dir[iv.ID]; dup {
		panic("intervals: duplicate interval id " + strconv.FormatUint(iv.ID, 10))
	}
	if m.wal != nil {
		m.LogInsert(iv)
		m.SyncWAL()
	}
	m.applyInsert(iv)
}

// ApplyInsert inserts WITHOUT logging to the WAL: the shard layer logs at
// enqueue time (its group-commit buffer is the WAL batching boundary) and
// applies through here at flush time; replay also lands here.
func (m *Manager) ApplyInsert(iv geom.Interval) {
	if !iv.Valid() {
		panic("intervals: invalid interval " + iv.String())
	}
	m.applyInsert(iv)
}

func (m *Manager) applyInsert(iv geom.Interval) {
	m.addDir(iv)
	if m.lsm != nil {
		m.lsmInsert(iv)
		m.n++
		return
	}
	m.endpoints.InsertEntry(bptree.Entry{Key: iv.Lo, RID: iv.ID, Val: uint64(iv.Hi)})
	m.stabber.Insert(iv.ToPoint())
	m.n++
}

// Delete removes the interval with the given id, returning whether it was
// present. The endpoint side is a real B+-tree delete (O(log_B n)); the
// stabbing side is a weak delete on the metablock tree — a tombstone plus
// an amortized share of its global rebuild — so the whole operation is
// amortized O(log_B n) I/Os without disturbing the query bounds. Logged
// like Insert on a WAL-backed manager; a delete of an absent id is not
// logged (it mutates nothing).
func (m *Manager) Delete(id uint64) bool {
	if _, ok := m.dir[id]; !ok {
		return false
	}
	if m.wal != nil {
		m.LogDelete(id)
		m.SyncWAL()
	}
	return m.applyDelete(id)
}

// ApplyDelete deletes WITHOUT logging to the WAL — the flush-time and
// replay-time twin of ApplyInsert.
func (m *Manager) ApplyDelete(id uint64) bool { return m.applyDelete(id) }

func (m *Manager) applyDelete(id uint64) bool {
	iv, ok := m.dir[id]
	if !ok {
		return false
	}
	if m.lsm != nil {
		m.lsmDelete(id)
		delete(m.dir, id)
		m.n--
		return true
	}
	if !m.endpoints.Delete(iv.Lo, id) {
		panic("intervals: id directory out of sync with endpoint tree")
	}
	if !m.stabber.Delete(iv.ToPoint()) {
		panic("intervals: id directory out of sync with metablock tree")
	}
	delete(m.dir, id)
	m.n--
	return true
}

// Rebuilds returns how many delete-triggered global rebuilds the stabbing
// structure has run; in log-structured mode, how many dead-fraction run
// compactions (the same α=1/2 trigger, applied per run).
func (m *Manager) Rebuilds() int {
	if m.lsm != nil {
		return int(m.lsm.compactions.Load())
	}
	return m.stabber.Rebuilds()
}

// EmitInterval receives reported intervals; returning false stops the
// enumeration early.
type EmitInterval func(geom.Interval) bool

// Stab reports every interval containing q, in O(log_B n + t/B) I/Os
// (a diagonal corner query, Proposition 2.2).
func (m *Manager) Stab(q int64, emit EmitInterval) {
	if m.lsm != nil {
		m.lsmStab(q, emit)
		return
	}
	m.stabber.DiagonalQuery(q, func(p geom.Point) bool {
		return emit(geom.PointToInterval(p))
	})
}

// Intersect reports every interval intersecting q, in O(log_B n + t/B)
// I/Os. Each intersecting interval is reported exactly once.
func (m *Manager) Intersect(q geom.Interval, emit EmitInterval) {
	if !q.Valid() {
		return
	}
	if m.lsm != nil {
		m.lsmIntersect(q, emit)
		return
	}
	stopped := false
	// Types 3 and 4: intervals containing the left query endpoint.
	m.Stab(q.Lo, func(iv geom.Interval) bool {
		if !emit(iv) {
			stopped = true
			return false
		}
		return true
	})
	if stopped || q.Lo == 1<<63-1 {
		return
	}
	// Types 1 and 2: left endpoint strictly inside (q.Lo, q.Hi].
	m.endpoints.Range(q.Lo+1, q.Hi, func(e bptree.Entry) bool {
		return emit(geom.Interval{Lo: e.Key, Hi: int64(e.Val), ID: e.RID})
	})
}

// Stats returns the combined I/O counters of both sub-structures — in
// log-structured mode, summed over every run, runs merged away included
// (cumulative, like any device counter).
func (m *Manager) Stats() disk.Stats {
	if m.lsm != nil {
		return m.lsmStats()
	}
	return m.endpoints.Pager().Stats().Add(m.stabber.Pager().Stats())
}

// ResetStats zeroes both counters.
func (m *Manager) ResetStats() {
	if m.lsm != nil {
		m.lsmResetStats()
		return
	}
	m.endpoints.Pager().ResetStats()
	m.stabber.Pager().ResetStats()
}

// SpaceBlocks returns the number of live pages across both sub-structures
// (log-structured mode: across every run).
func (m *Manager) SpaceBlocks() int64 {
	if m.lsm != nil {
		return m.lsmSpaceBlocks()
	}
	return m.endpoints.Pager().Allocated() + m.stabber.Pager().Allocated()
}

// Naive is the baseline manager: intervals packed B per page; every query
// scans all pages. It supports deletion trivially and serves as the
// correctness oracle in tests. Pages that churn empties are freed and pages
// with holes are refilled by later inserts, so SpaceBlocks() stays bounded
// by the live interval count no matter how long the workload runs.
type Naive struct {
	pager  *disk.Pager
	dev    disk.Device
	b      int
	pages  []disk.BlockID
	counts []int // per-page fill counts (in-memory directory, no I/O)
	holes  int   // number of pages with counts[i] < b
	n      int
	wbuf   []byte // page-encode scratch (mutate paths only)
}

const naiveRecSize = 24

// NewNaive creates an empty naive manager.
func NewNaive(b int) *Naive {
	nv := &Naive{pager: disk.NewPager(2 + b*naiveRecSize), b: b}
	nv.dev = nv.pager
	return nv
}

// Len returns the number of stored intervals.
func (nv *Naive) Len() int { return nv.n }

// Pager exposes the device for I/O accounting.
func (nv *Naive) Pager() *disk.Pager { return nv.pager }

// SpaceBlocks returns the number of live pages; with emptied pages freed
// and holes refilled it is bounded by the live interval count.
func (nv *Naive) SpaceBlocks() int64 { return nv.pager.Allocated() }

// scanPage streams one page's intervals to fn through a borrowed zero-copy
// view (one I/O, no allocation); false if fn stopped the scan.
func (nv *Naive) scanPage(id disk.BlockID, fn func(geom.Interval) bool) bool {
	view := disk.MustView(nv.dev, id)
	cnt := int(uint16(view[0]) | uint16(view[1])<<8)
	ok := true
	for i, off := 0, 2; i < cnt; i, off = i+1, off+naiveRecSize {
		iv := geom.Interval{
			Lo: int64(le64(view[off:])),
			Hi: int64(le64(view[off+8:])),
			ID: le64(view[off+16:]),
		}
		if !fn(iv) {
			ok = false
			break
		}
	}
	nv.dev.Release(id)
	return ok
}

func (nv *Naive) readPage(id disk.BlockID) []geom.Interval {
	var out []geom.Interval
	nv.scanPage(id, func(iv geom.Interval) bool {
		out = append(out, iv)
		return true
	})
	return out
}

func (nv *Naive) writePage(id disk.BlockID, ivs []geom.Interval) {
	if nv.wbuf == nil {
		nv.wbuf = make([]byte, nv.pager.PageSize())
	} else {
		clear(nv.wbuf)
	}
	buf := nv.wbuf
	buf[0] = byte(len(ivs))
	buf[1] = byte(len(ivs) >> 8)
	off := 2
	for _, iv := range ivs {
		putLE64(buf[off:], uint64(iv.Lo))
		putLE64(buf[off+8:], uint64(iv.Hi))
		putLE64(buf[off+16:], iv.ID)
		off += naiveRecSize
	}
	disk.MustWriteAt(nv.dev, id, buf)
}

// Insert adds an interval in O(1) I/Os, reusing the rightmost page with a
// free slot — which is the freshly allocated tail page in append-only
// workloads, and a deletion hole under churn (the old code only ever
// refilled the last page, so holes accumulated forever). Locating the hole
// scans the in-memory counts (CPU only, no I/O; entered only when holes
// exist): worst case O(#pages) comparisons, which the oracle's own cost
// profile dominates — every Delete already READS O(n/B) pages.
func (nv *Naive) Insert(iv geom.Interval) {
	if nv.holes > 0 {
		for i := len(nv.pages) - 1; i >= 0; i-- {
			if nv.counts[i] < nv.b {
				ivs := nv.readPage(nv.pages[i])
				nv.writePage(nv.pages[i], append(ivs, iv))
				if nv.counts[i]++; nv.counts[i] == nv.b {
					nv.holes--
				}
				nv.n++
				return
			}
		}
		panic("intervals: naive hole count out of sync")
	}
	id := nv.pager.Alloc()
	nv.writePage(id, []geom.Interval{iv})
	nv.pages = append(nv.pages, id)
	nv.counts = append(nv.counts, 1)
	if nv.b > 1 {
		nv.holes++
	}
	nv.n++
}

// Delete removes the interval with the given id (full scan, O(n/B) I/Os).
// A page whose last interval is removed is freed and dropped from the scan
// list, so neither SpaceBlocks() nor the O(n/B) query scans grow without
// bound under churn.
func (nv *Naive) Delete(id uint64) bool {
	for pi, pg := range nv.pages {
		ivs := nv.readPage(pg)
		for i, iv := range ivs {
			if iv.ID != id {
				continue
			}
			rest := append(ivs[:i:i], ivs[i+1:]...)
			hadHole := nv.counts[pi] < nv.b
			if len(rest) == 0 {
				disk.MustFreeAt(nv.dev, pg)
				nv.pages = append(nv.pages[:pi], nv.pages[pi+1:]...)
				nv.counts = append(nv.counts[:pi], nv.counts[pi+1:]...)
				if hadHole {
					nv.holes--
				}
			} else {
				nv.writePage(pg, rest)
				nv.counts[pi]--
				if !hadHole {
					nv.holes++
				}
			}
			nv.n--
			return true
		}
	}
	return false
}

// Stab reports every interval containing q in O(n/B) I/Os (zero-alloc:
// pages are streamed through borrowed views).
func (nv *Naive) Stab(q int64, emit EmitInterval) {
	fn := func(iv geom.Interval) bool {
		if iv.Contains(q) {
			return emit(iv)
		}
		return true
	}
	for _, pg := range nv.pages {
		if !nv.scanPage(pg, fn) {
			return
		}
	}
}

// Intersect reports every interval intersecting q in O(n/B) I/Os.
func (nv *Naive) Intersect(q geom.Interval, emit EmitInterval) {
	fn := func(iv geom.Interval) bool {
		if iv.Intersects(q) {
			return emit(iv)
		}
		return true
	}
	for _, pg := range nv.pages {
		if !nv.scanPage(pg, fn) {
			return
		}
	}
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLE64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
