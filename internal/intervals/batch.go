package intervals

import (
	"ccidx/internal/bptree"
	"ccidx/internal/geom"
)

// Batched queries: the manager's two sub-structures each expose a
// shared-traversal batch pass (core.StabBatch, bptree.RangeBatch), so a
// flood of queries costs one endpoint-tree walk plus one stabber walk per
// BATCH instead of per query. Per query, results are the exact multiset of
// the sequential call; only the interleaving across queries differs.

// EmitBatch receives batched query results: qi is the position in the
// batch of the query the interval answers. Returning false stops the
// enumeration for that query only.
type EmitBatch func(qi int, iv geom.Interval) bool

// StabBatch reports, for every query point qs[qi], every interval
// containing it — one shared diagonal-corner batch pass over the metablock
// tree (per-copy tombstone suppression preserved per query). Read-only:
// safe to run concurrently with other queries.
func (m *Manager) StabBatch(qs []int64, emit EmitBatch) {
	if m.lsm != nil {
		m.lsmStabBatch(qs, emit)
		return
	}
	m.stabber.StabBatch(qs, func(qi int, p geom.Point) bool {
		return emit(qi, geom.PointToInterval(p))
	})
}

// IntersectBatch reports, for every query interval qs[qi], every interval
// intersecting it, each exactly once per query: one stabber batch pass
// answers the types-3/4 split (intervals containing the query's left
// endpoint), one endpoint-tree batch pass the types-1/2 split (left
// endpoints strictly inside the query), exactly mirroring Intersect.
func (m *Manager) IntersectBatch(qs []geom.Interval, emit EmitBatch) {
	if m.lsm != nil {
		m.lsmIntersectBatch(qs, emit)
		return
	}
	stab := make([]int64, 0, len(qs))
	idxs := make([]int, 0, len(qs))
	stopped := make([]bool, len(qs))
	for i, q := range qs {
		if !q.Valid() {
			stopped[i] = true
			continue
		}
		stab = append(stab, q.Lo)
		idxs = append(idxs, i)
	}
	m.stabber.StabBatch(stab, func(bi int, p geom.Point) bool {
		qi := idxs[bi]
		if !emit(qi, geom.PointToInterval(p)) {
			stopped[qi] = true
			return false
		}
		return true
	})
	ranges := make([]bptree.KeyRange, len(qs))
	for i, q := range qs {
		if stopped[i] || q.Lo == 1<<63-1 {
			ranges[i] = bptree.KeyRange{Lo: 1, Hi: 0} // inverted: skipped
			continue
		}
		ranges[i] = bptree.KeyRange{Lo: q.Lo + 1, Hi: q.Hi}
	}
	m.endpoints.RangeBatch(ranges, func(qi int, e bptree.Entry) bool {
		return emit(qi, geom.Interval{Lo: e.Key, Hi: int64(e.Val), ID: e.RID})
	})
}
