package intervals

import (
	"math/rand"
	"sort"
	"testing"

	"ccidx/internal/geom"
	"ccidx/internal/workload"
)

// collectStab returns the sorted ids reported by a stabbing query.
func collectStab(m *Manager, q int64) []uint64 {
	var ids []uint64
	m.Stab(q, func(iv geom.Interval) bool {
		ids = append(ids, iv.ID)
		return true
	})
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// collectIntersect returns the sorted ids reported by an intersection query.
func collectIntersect(m *Manager, q geom.Interval) []uint64 {
	var ids []uint64
	m.Intersect(q, func(iv geom.Interval) bool {
		ids = append(ids, iv.ID)
		return true
	})
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TestPoolOracle runs a fixed-seed mixed insert/query workload against two
// managers built from the same intervals — one reading bare devices, one
// through small attached buffer pools (sized to force constant eviction
// and write-back) — and asserts every query reports the identical id set.
func TestPoolOracle(t *testing.T) {
	const span = 1 << 20
	base := workload.UniformIntervals(42, 3000, span, 5000)
	bare := New(Config{B: 8}, base)
	pooled := New(Config{B: 8}, base)
	// Tiny pool: far fewer frames than pages, so the CLOCK hand, eviction
	// and dirty write-back all run constantly during the workload.
	pooled.AttachPool(16, 2)

	rng := rand.New(rand.NewSource(99))
	nextID := uint64(1 << 32)
	for step := 0; step < 2000; step++ {
		switch step % 4 {
		case 0: // insert the same interval into both
			lo := rng.Int63n(span)
			iv := geom.Interval{Lo: lo, Hi: lo + rng.Int63n(5000), ID: nextID}
			nextID++
			bare.Insert(iv)
			pooled.Insert(iv)
		case 1, 2: // stab
			q := rng.Int63n(span)
			got, want := collectStab(pooled, q), collectStab(bare, q)
			if !equalIDs(got, want) {
				t.Fatalf("step %d: Stab(%d) pooled %d ids, bare %d ids", step, q, len(got), len(want))
			}
		default: // intersect
			lo := rng.Int63n(span)
			q := geom.Interval{Lo: lo, Hi: lo + rng.Int63n(20000)}
			got, want := collectIntersect(pooled, q), collectIntersect(bare, q)
			if !equalIDs(got, want) {
				t.Fatalf("step %d: Intersect(%v) pooled %d ids, bare %d ids", step, q, len(got), len(want))
			}
		}
	}

	hits, misses := pooled.PoolStats()
	if hits == 0 || misses == 0 {
		t.Fatalf("oracle exercised no pool traffic: hits=%d misses=%d", hits, misses)
	}
	// Flush the write-back frames, then compare once more: the device
	// contents behind the pool must serve the same answers.
	pooled.FlushPool()
	for q := int64(0); q < span; q += span / 64 {
		if !equalIDs(collectStab(pooled, q), collectStab(bare, q)) {
			t.Fatalf("post-flush Stab(%d) diverged", q)
		}
	}
}
