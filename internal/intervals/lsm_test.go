package intervals

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"ccidx/internal/disk"
	"ccidx/internal/geom"
)

func eqIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestLSMChurnOracle drives an in-memory log-structured manager through a
// randomized insert/delete churn, checking Stab/Intersect and the batch
// paths against a live map oracle after every phase.
func TestLSMChurnOracle(t *testing.T) {
	for _, sync := range []bool{true, false} {
		sync := sync
		t.Run(fmt.Sprintf("sync=%v", sync), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			const span = 1 << 14
			m := New(Config{B: 8, Ingest: &IngestConfig{MemtableSize: 32, MaxRuns: 3, SyncCompaction: sync}}, nil)
			oracle := map[uint64]geom.Interval{}
			nextID := uint64(1)
			for round := 0; round < 60; round++ {
				for i := 0; i < 50; i++ {
					if len(oracle) > 0 && rng.Intn(3) == 0 {
						// delete a random live id
						for id := range oracle {
							if !m.Delete(id) {
								t.Fatalf("delete %d reported absent", id)
							}
							delete(oracle, id)
							break
						}
						continue
					}
					lo := rng.Int63n(span)
					iv := geom.Interval{Lo: lo, Hi: lo + rng.Int63n(256), ID: nextID}
					nextID++
					m.Insert(iv)
					oracle[iv.ID] = iv
				}
				if m.Len() != len(oracle) {
					t.Fatalf("round %d: Len=%d oracle=%d", round, m.Len(), len(oracle))
				}
				q := rng.Int63n(span)
				want := oracleStab(oracle, q)
				if got := collectStab(m, q); !eqIDs(got, want) {
					t.Fatalf("round %d: Stab(%d)=%v want %v", round, q, got, want)
				}
				qi := geom.Interval{Lo: rng.Int63n(span), Hi: 0}
				qi.Hi = qi.Lo + rng.Int63n(512)
				wantI := oracleIntersect(oracle, qi)
				if got := collectIntersect(m, qi); !eqIDs(got, wantI) {
					t.Fatalf("round %d: Intersect(%v)=%v want %v", round, qi, got, wantI)
				}
			}
			// Batched paths against the sequential ones.
			qs := make([]int64, 32)
			for i := range qs {
				qs[i] = rng.Int63n(span)
			}
			got := make([][]uint64, len(qs))
			m.StabBatch(qs, func(qi int, iv geom.Interval) bool {
				got[qi] = append(got[qi], iv.ID)
				return true
			})
			for i, q := range qs {
				sort.Slice(got[i], func(a, b int) bool { return got[i][a] < got[i][b] })
				if want := oracleStab(oracle, q); !eqIDs(got[i], want) {
					t.Fatalf("StabBatch[%d]=%v want %v", i, got[i], want)
				}
			}
			qivs := make([]geom.Interval, 16)
			for i := range qivs {
				lo := rng.Int63n(span)
				qivs[i] = geom.Interval{Lo: lo, Hi: lo + rng.Int63n(512)}
			}
			gotI := make([][]uint64, len(qivs))
			m.IntersectBatch(qivs, func(qi int, iv geom.Interval) bool {
				gotI[qi] = append(gotI[qi], iv.ID)
				return true
			})
			for i, q := range qivs {
				sort.Slice(gotI[i], func(a, b int) bool { return gotI[i][a] < gotI[i][b] })
				if want := oracleIntersect(oracle, q); !eqIDs(gotI[i], want) {
					t.Fatalf("IntersectBatch[%d]=%v want %v", i, gotI[i], want)
				}
			}
			st := m.IngestStats()
			if st.Flushes == 0 {
				t.Fatalf("no flushes recorded: %+v", st)
			}
			if st.Runs > 2*3+1 && sync {
				t.Fatalf("run set not bounded: %+v", st)
			}
		})
	}
}

func oracleStab(oracle map[uint64]geom.Interval, q int64) []uint64 {
	var ids []uint64
	for id, iv := range oracle {
		if iv.Contains(q) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

func oracleIntersect(oracle map[uint64]geom.Interval, q geom.Interval) []uint64 {
	var ids []uint64
	for id, iv := range oracle {
		if iv.Intersects(q) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

// TestLSMDurableReopen checkpoints a durable log-structured manager
// mid-churn, mutates past the checkpoint, closes WITHOUT checkpointing and
// reopens: the WAL replay must restore every acknowledged mutation.
func TestLSMDurableReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{B: 8, Ingest: &IngestConfig{MemtableSize: 16, MaxRuns: 2, SyncCompaction: true}}
	ivs := make([]geom.Interval, 100)
	for i := range ivs {
		lo := int64(i * 10)
		ivs[i] = geom.Interval{Lo: lo, Hi: lo + 50, ID: uint64(i + 1)}
	}
	m, err := CreateAt(dir, cfg, ivs, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	oracle := map[uint64]geom.Interval{}
	for _, iv := range ivs {
		oracle[iv.ID] = iv
	}
	rng := rand.New(rand.NewSource(3))
	mutate := func(m *Manager, n int) {
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 && len(oracle) > 0 {
				for id := range oracle {
					m.Delete(id)
					delete(oracle, id)
					break
				}
				continue
			}
			lo := rng.Int63n(2000)
			iv := geom.Interval{Lo: lo, Hi: lo + rng.Int63n(100), ID: uint64(1000 + len(oracle) + i*7919)}
			if _, dup := oracle[iv.ID]; dup {
				continue
			}
			m.Insert(iv)
			oracle[iv.ID] = iv
		}
	}
	mutate(m, 200)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mutate(m, 137) // un-checkpointed tail, recovered from the WAL
	if err := m.CloseFiles(); err != nil {
		t.Fatal(err)
	}
	m2, err := OpenAt(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.CloseFiles()
	if m2.Len() != len(oracle) {
		t.Fatalf("reopened Len=%d oracle=%d", m2.Len(), len(oracle))
	}
	for q := int64(0); q < 2000; q += 97 {
		if got, want := collectStab(m2, q), oracleStab(oracle, q); !eqIDs(got, want) {
			t.Fatalf("reopened Stab(%d)=%v want %v", q, got, want)
		}
	}
	// And the reopened instance keeps ingesting + checkpointing.
	mutate(m2, 50)
	if err := m2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

// TestLSMCrashSweep exhausts a write budget at every possible k across a
// log-structured workload — landing crashes mid-run-build, mid-merge,
// mid-runstate-stage, mid-manifest and inside WAL-replay-triggered builds
// — and checks the reopened manager equals the acked-set oracle.
func TestLSMCrashSweep(t *testing.T) {
	cfg := Config{B: 4, Ingest: &IngestConfig{MemtableSize: 8, MaxRuns: 2, SyncCompaction: true}}
	// Probe run: count total file writes with no fault injected.
	workload := func(dir string, budget *disk.WriteBudget) (acked map[uint64]geom.Interval, writes int64, err error) {
		defer func() {
			if p := recover(); p != nil {
				e, ok := p.(error)
				if !ok || !errors.Is(e, disk.ErrInjectedFault) {
					panic(p)
				}
				err = e
			}
		}()
		ivs := make([]geom.Interval, 20)
		for i := range ivs {
			lo := int64(i * 5)
			ivs[i] = geom.Interval{Lo: lo, Hi: lo + 20, ID: uint64(i + 1)}
		}
		acked = map[uint64]geom.Interval{}
		m, cerr := CreateAt(dir, cfg, ivs, DurableOptions{Budget: budget})
		if cerr != nil {
			return nil, 0, cerr
		}
		defer m.CloseFiles()
		for _, iv := range ivs {
			acked[iv.ID] = iv
		}
		for i := 0; i < 60; i++ {
			if i%4 == 3 {
				id := uint64(i/4*3 + 1)
				if _, live := acked[id]; live {
					m.Delete(id)
					delete(acked, id)
				}
				continue
			}
			lo := int64(i * 13 % 300)
			iv := geom.Interval{Lo: lo, Hi: lo + 25, ID: uint64(100 + i)}
			m.Insert(iv)
			acked[iv.ID] = iv
			if i == 30 {
				if cerr := m.Checkpoint(); cerr != nil {
					return nil, 0, cerr
				}
			}
		}
		if cerr := m.Checkpoint(); cerr != nil {
			return nil, 0, cerr
		}
		return acked, m.FileWrites(), nil
	}

	probeDir := t.TempDir()
	want, total, err := workload(probeDir, nil)
	if err != nil {
		t.Fatalf("probe workload failed: %v", err)
	}
	if total < 20 {
		t.Fatalf("suspiciously few file writes: %d", total)
	}
	mp, err := OpenAt(probeDir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if mp.Len() != len(want) {
		t.Fatalf("probe reopen Len=%d want %d", mp.Len(), len(want))
	}
	mp.CloseFiles()

	// Every id the workload ever acknowledges (crashing before a delete
	// legitimately resurrects the deleted id, so the membership check is
	// against the ever-acked set, not the final one).
	everAcked := map[uint64]bool{}
	for i := 1; i <= 20; i++ {
		everAcked[uint64(i)] = true
	}
	for i := 0; i < 60; i++ {
		if i%4 != 3 {
			everAcked[uint64(100+i)] = true
		}
	}

	step := int64(3)
	if testing.Short() {
		step = 17
	}
	faulted := 0
	for k := int64(1); k < total; k += step {
		k := k
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			dir := t.TempDir()
			_, _, werr := workload(dir, disk.NewWriteBudget(k))
			if werr == nil {
				// FileWrites slightly overcounts budget-metered writes, so
				// the last few budgets may complete cleanly; the faulted
				// counter below catches a broken budget hookup.
				t.Skip("budget not exhausted")
			}
			faulted++
			// The workload "crashed". Reopen; recovery itself may need a
			// budget — give it unlimited here (crash-the-recovery is the
			// shard-level matrix's job).
			m, oerr := OpenAt(dir, DurableOptions{})
			if oerr != nil {
				// No committed manifest at all (crash before CreateAt
				// finished): treat as never created.
				if _, rerr := disk.ReadManifest(dir); rerr != nil {
					t.Skip("crash before initial checkpoint committed")
				}
				t.Fatalf("reopen after k=%d: %v", k, oerr)
			}
			defer m.CloseFiles()
			// Acked-set check: every mutation acknowledged BEFORE the fault
			// must be present. The workload stops at the first fault, so the
			// acked set is exactly the probe set truncated at the crash — we
			// can't know the cut here, but Stab answers must be a subset of
			// the probe's full acked set and a superset of the ivs committed
			// by checkpoints; the strong full-equality property is covered by
			// the shard crash matrix. Minimal invariant: reopen must not
			// error and queries must be self-consistent with Len.
			seen := map[uint64]bool{}
			m.Each(func(iv geom.Interval) bool {
				seen[iv.ID] = true
				return true
			})
			if len(seen) != m.Len() {
				t.Fatalf("directory/Len mismatch: %d vs %d", len(seen), m.Len())
			}
			for q := int64(0); q < 350; q += 13 {
				m.Stab(q, func(iv geom.Interval) bool {
					if !seen[iv.ID] {
						t.Fatalf("Stab(%d) reported dead/unknown id %d", q, iv.ID)
					}
					if !everAcked[iv.ID] {
						t.Fatalf("Stab(%d) reported never-acked id %d", q, iv.ID)
					}
					return true
				})
			}
		})
	}
	if faulted < int(total/step)/2 {
		t.Fatalf("only %d of ~%d budgets faulted — budget hookup broken?", faulted, total/step)
	}
}

// TestLSMCrashEveryWriteAcked is the strict acked-set variant: replay the
// SAME deterministic op sequence op-by-op, tracking exactly which ops were
// acknowledged before the fault; the reopened manager must contain exactly
// the acked set (WAL-at-ack durability, unchanged from the foreground
// path).
func TestLSMCrashEveryWriteAcked(t *testing.T) {
	cfg := Config{B: 4, Ingest: &IngestConfig{MemtableSize: 8, MaxRuns: 2, SyncCompaction: true}}
	type op struct {
		del bool
		iv  geom.Interval
	}
	var ops []op
	rng := rand.New(rand.NewSource(11))
	live := map[uint64]geom.Interval{}
	for i := 0; i < 80; i++ {
		if len(live) > 4 && rng.Intn(4) == 0 {
			for id, iv := range live {
				ops = append(ops, op{del: true, iv: iv})
				_ = id
				delete(live, id)
				break
			}
			continue
		}
		lo := rng.Int63n(400)
		iv := geom.Interval{Lo: lo, Hi: lo + rng.Int63n(60), ID: uint64(i + 1)}
		ops = append(ops, op{iv: iv})
		live[iv.ID] = iv
	}

	run := func(dir string, budget *disk.WriteBudget) (acked map[uint64]geom.Interval, err error) {
		acked = map[uint64]geom.Interval{}
		var m *Manager
		defer func() {
			if m != nil {
				m.CloseFiles()
			}
			if p := recover(); p != nil {
				e, ok := p.(error)
				if !ok || !errors.Is(e, disk.ErrInjectedFault) {
					panic(p)
				}
				err = e
			}
		}()
		m, cerr := CreateAt(dir, cfg, nil, DurableOptions{Budget: budget})
		if cerr != nil {
			return nil, cerr
		}
		for i, o := range ops {
			if o.del {
				m.Delete(o.iv.ID)
				delete(acked, o.iv.ID)
			} else {
				m.Insert(o.iv)
				acked[o.iv.ID] = o.iv
			}
			if i == 40 {
				if cerr := m.Checkpoint(); cerr != nil {
					return acked, cerr
				}
			}
		}
		err = m.Checkpoint()
		return acked, err
	}

	probeDir := t.TempDir()
	if _, err := run(probeDir, nil); err != nil {
		t.Fatalf("probe: %v", err)
	}
	mp, err := OpenAt(probeDir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	total := mp.FileWrites()
	mp.CloseFiles()

	step := int64(1)
	if testing.Short() {
		step = 5
	}
	for k := int64(1); k < total; k += step {
		dir := t.TempDir()
		acked, werr := run(dir, disk.NewWriteBudget(k))
		if werr == nil {
			t.Fatalf("budget %d of %d did not fault", k, total)
		}
		m, oerr := OpenAt(dir, DurableOptions{})
		if oerr != nil {
			if _, rerr := disk.ReadManifest(dir); rerr != nil {
				continue // crash before the initial checkpoint: never created
			}
			t.Fatalf("k=%d: reopen: %v", k, oerr)
		}
		got := map[uint64]geom.Interval{}
		m.Each(func(iv geom.Interval) bool {
			got[iv.ID] = iv
			return true
		})
		// The op mid-flight at the crash may or may not have been logged:
		// allow the recovered set to differ from acked by AT MOST that one
		// op (the WAL's single-record loss bound).
		diff := 0
		for id := range acked {
			if _, ok := got[id]; !ok {
				diff++
			}
		}
		for id := range got {
			if _, ok := acked[id]; !ok {
				diff++
			}
		}
		if diff > 1 {
			t.Fatalf("k=%d: recovered set differs from acked by %d ops (len got=%d acked=%d)",
				k, diff, len(got), len(acked))
		}
		// Query-vs-directory consistency on the recovered image.
		for q := int64(0); q < 450; q += 29 {
			m.Stab(q, func(iv geom.Interval) bool {
				if g, ok := got[iv.ID]; !ok || g != iv {
					t.Fatalf("k=%d: Stab(%d) reported %v not in directory", k, q, iv)
				}
				return true
			})
		}
		m.CloseFiles()
	}
}

// TestLSMBackgroundMergeHammer races background flush/merge/compaction
// against concurrent batched readers (run with -race): one writer mutates
// (mutations are externally serialized per the Manager contract) while
// reader goroutines hammer Stab/Intersect and the batch paths under an
// RWMutex, mirroring the shard layer's locking.
func TestLSMBackgroundMergeHammer(t *testing.T) {
	m := New(Config{B: 8, Ingest: &IngestConfig{MemtableSize: 64, MaxRuns: 3}}, nil)
	var mu sync.RWMutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			qs := make([]int64, 16)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range qs {
					qs[i] = rng.Int63n(1 << 12)
				}
				mu.RLock()
				m.StabBatch(qs, func(int, geom.Interval) bool { return true })
				m.Intersect(geom.Interval{Lo: qs[0], Hi: qs[0] + 512}, func(geom.Interval) bool { return true })
				mu.RUnlock()
			}
		}(int64(r))
	}
	rng := rand.New(rand.NewSource(99))
	live := map[uint64]struct{}{}
	nextID := uint64(1)
	for i := 0; i < 20000; i++ {
		mu.Lock()
		if len(live) > 100 && rng.Intn(4) == 0 {
			for id := range live {
				m.Delete(id)
				delete(live, id)
				break
			}
		} else {
			lo := rng.Int63n(1 << 12)
			m.Insert(geom.Interval{Lo: lo, Hi: lo + rng.Int63n(256), ID: nextID})
			live[nextID] = struct{}{}
			nextID++
		}
		mu.Unlock()
	}
	close(stop)
	wg.Wait()
	if m.Len() != len(live) {
		t.Fatalf("Len=%d live=%d", m.Len(), len(live))
	}
	st := m.IngestStats()
	if st.Flushes == 0 || st.Merges == 0 {
		t.Fatalf("expected background flushes and merges, got %+v", st)
	}
}
