package intervals

// Log-structured ingest: a Bentley-Saxe / LSM decomposition of the interval
// manager. The paper's structures are semi-static — global rebuild at
// α=1/2 (core/delete.go) is exactly the Bentley-Saxe trigger — and this
// file generalizes that into a write-optimized mode (Config.Ingest):
//
//   - an in-memory MEMTABLE absorbs Insert/Delete at memory speed; the
//     mutation is still WAL-logged and acknowledged at the existing sync
//     boundary, so durability is unchanged from the foreground path;
//   - when the memtable reaches MemtableSize entries it is frozen and a
//     background worker flushes it into an immutable on-disk RUN — a
//     static tree-mode Manager built via the bulk construction path and
//     committed through its devices' checkpoint protocol at build time;
//   - the worker keeps the run set logarithmic (merge the two smallest
//     runs while more than MaxRuns exist) and rewrites any run whose dead
//     fraction reaches 1/2 — the paper's rebuild threshold, applied per
//     run;
//   - queries fan in across the memtables and every run, suppressing each
//     part's dead ids; live ids are globally unique across parts, so the
//     exactly-once reporting guarantee is preserved.
//
// Deletes of memtable-resident ids are in-memory removals; deletes of
// run-resident ids mark the id dead in that run's in-memory dead set
// (query-time suppression — runs are never mutated, only rewritten). Dead
// sets are persisted in the checkpoint's runstate file and re-derived by
// WAL replay after a crash.
//
// Concurrency: foreground operations (queries AND mutations — mutations
// are externally serialized, queries may run concurrently with each other,
// exactly the Manager contract) hold lsm.mu.RLock; the worker mutates the
// part lists, reads dead sets, and retires replaced runs only under
// lsm.mu.Lock, so a query can never observe a half-swapped run list or
// touch a closed device. mergeMu serializes worker work items and is held
// by the checkpoint protocol from prepare through commit/rollback, so a
// concurrent merge can never invalidate a staged run list or delete a
// manifest-referenced run directory.
//
// Checkpoint protocol (durable mode): PrepareCheckpoint drains every
// memtable into runs (the WAL is truncated at commit, so the checkpoint
// image must hold everything), then stages the run list + dead sets as
// runstate-<seq>.json; the caller's manifest rename commits it; commit
// truncates the WAL and garbage-collects replaced run directories (which
// until that point are still referenced by the previous checkpoint's
// runstate). Open reads the committed runstate, reopens every run, removes
// unreferenced run directories (half-built runs from a crash), and replays
// the WAL tail into a fresh memtable.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"ccidx/internal/disk"
	"ccidx/internal/geom"
)

// IngestConfig enables and tunes log-structured ingest on a Manager.
type IngestConfig struct {
	// MemtableSize is the entry count at which the active memtable is
	// frozen and queued for a flush (default 4096).
	MemtableSize int `json:"memtable_size"`
	// MaxRuns is the target run-set size: while more runs exist, the two
	// smallest are merged (default 8, minimum 1). Larger values trade read
	// fan-in for less merge write amplification.
	MaxRuns int `json:"max_runs"`
	// SyncCompaction runs flushes, merges and compactions inline on the
	// mutating goroutine instead of a background worker: deterministic,
	// used by experiments and crash schedules.
	SyncCompaction bool `json:"sync_compaction,omitempty"`
}

func (c IngestConfig) withDefaults() IngestConfig {
	if c.MemtableSize < 1 {
		c.MemtableSize = 4096
	}
	if c.MaxRuns < 1 {
		c.MaxRuns = 8
	}
	return c
}

// lsmMaxFrozen is the frozen-memtable backlog at which a mutating call
// absorbs the compaction work inline (backpressure) instead of queueing a
// third memtable behind a slow worker.
const lsmMaxFrozen = 2

// lsmRunsDir is the subdirectory of a durable manager's directory holding
// one subdirectory per run.
const lsmRunsDir = "runs"

// memPart is one memtable: the active one absorbs inserts directly; once
// frozen its ivs map is immutable and deletes go to the dead set.
type memPart struct {
	ivs  map[uint64]geom.Interval
	dead map[uint64]struct{}
}

func newMemPart() *memPart {
	return &memPart{ivs: make(map[uint64]geom.Interval), dead: make(map[uint64]struct{})}
}

// lsmRun is one immutable on-disk run: a static tree-mode Manager plus the
// in-memory set of its ids deleted since it was built.
type lsmRun struct {
	m    *Manager
	dead map[uint64]struct{}
	name string // run subdirectory name (empty in memory)
}

func (r *lsmRun) live() int { return r.m.Len() - len(r.dead) }

// lsmState is the whole log-structured mode, hung off Manager.lsm.
type lsmState struct {
	cfg IngestConfig

	// mu orders foreground operations (RLock) against worker swaps (Lock);
	// see the file comment for the full discipline.
	mu     sync.RWMutex
	active *memPart
	frozen []*memPart // oldest first
	runs   []*lsmRun

	// mergeMu serializes worker work items and excludes the worker across
	// a checkpoint's prepare→commit/rollback span.
	mergeMu  sync.Mutex
	busy     atomic.Bool
	workErr  atomic.Pointer[error] // background build failure, surfaced at the next foreground call
	inline   bool                  // WAL replay in progress: drain inline for determinism
	prepared uint64                // staged (uncommitted) checkpoint generation
	cpHeld   bool                  // mergeMu held by an in-flight checkpoint

	durable bool
	seq     uint64 // last committed checkpoint generation
	nextRun uint64 // run directory naming counter
	garbage []string

	// retired accounting: counters of runs merged away, so Stats and
	// FileWrites stay cumulative across the manager's lifetime.
	retiredMu         sync.Mutex
	retiredStats      disk.Stats
	retiredFileWrites int64
	retiredHits       int64
	retiredMisses     int64

	// pool configuration replicated onto every run (AttachPool).
	poolFrames, poolShards int

	// budget is the current fault-injection budget, armed on every future
	// run's devices at build time (SetWriteBudget updates it).
	budget *disk.WriteBudget

	flushes     atomic.Int64
	merges      atomic.Int64
	compactions atomic.Int64
	stalls      atomic.Int64
	stateWrites atomic.Int64 // runstate-<seq>.json stages (FileWrites)
}

// IngestStats is a point-in-time snapshot of the log-structured machinery,
// surfaced through the serving metrics.
type IngestStats struct {
	Runs        int   // immutable on-disk runs
	Frozen      int   // frozen memtables awaiting flush
	MemtableLen int   // entries in the active memtable
	Flushes     int64 // memtable→run flushes
	Merges      int64 // run merges
	Compactions int64 // dead-fraction run rewrites
	Stalls      int64 // mutations that absorbed compaction work inline
}

// IngestStats returns the log-structured counters (zero when ingest mode
// is off).
func (m *Manager) IngestStats() IngestStats {
	l := m.lsm
	if l == nil {
		return IngestStats{}
	}
	l.mu.RLock()
	st := IngestStats{
		Runs:        len(l.runs),
		Frozen:      len(l.frozen),
		MemtableLen: len(l.active.ivs),
	}
	l.mu.RUnlock()
	st.Flushes = l.flushes.Load()
	st.Merges = l.merges.Load()
	st.Compactions = l.compactions.Load()
	st.Stalls = l.stalls.Load()
	return st
}

// initLSM installs log-structured state on a freshly constructed manager.
func (m *Manager) initLSM(opt DurableOptions, durable bool) {
	m.lsm = &lsmState{
		cfg:     m.cfg.Ingest.withDefaults(),
		active:  newMemPart(),
		durable: durable,
		budget:  opt.Budget,
	}
	m.lsmOpt = DurableOptions{Fsync: opt.Fsync, DisableWAL: true}
}

// runConfig is the configuration of every run's inner manager: the parent's
// tree parameters with ingest cleared (runs are static trees, not nested
// LSMs).
func (m *Manager) runConfig() Config {
	cfg := m.cfg
	cfg.Ingest = nil
	return cfg
}

func (m *Manager) runOpt() DurableOptions {
	l := m.lsm
	opt := m.lsmOpt
	l.mu.RLock()
	opt.Budget = l.budget
	l.mu.RUnlock()
	return opt
}

// lsmErrCheck surfaces a background build failure on the foreground path
// (error-valued panic, the Must* convention).
func (l *lsmState) errCheck() {
	if p := l.workErr.Load(); p != nil {
		panic(fmt.Errorf("intervals: background compaction failed: %w", *p))
	}
}

func (l *lsmState) takeErr() error {
	if p := l.workErr.Swap(nil); p != nil {
		return *p
	}
	return nil
}

// lsmInsert lands an insert in the active memtable, rotating it when full.
// The caller (applyInsert) already registered the id in the directory.
func (m *Manager) lsmInsert(iv geom.Interval) {
	l := m.lsm
	l.errCheck()
	l.mu.RLock()
	l.active.ivs[iv.ID] = iv
	full := len(l.active.ivs) >= l.cfg.MemtableSize
	l.mu.RUnlock()
	if full {
		m.lsmRotate()
	}
}

// lsmRotate freezes the active memtable and schedules (or, under
// SyncCompaction / backpressure, performs) the flush-and-merge work.
func (m *Manager) lsmRotate() {
	l := m.lsm
	l.mu.Lock()
	if len(l.active.ivs) >= l.cfg.MemtableSize {
		l.frozen = append(l.frozen, l.active)
		l.active = newMemPart()
	}
	backlog := len(l.frozen)
	l.mu.Unlock()
	if l.cfg.SyncCompaction || l.inline {
		m.lsmDrain()
		return
	}
	if backlog > lsmMaxFrozen {
		// Backpressure: the worker is behind; absorb the work on the
		// mutating goroutine so the frozen backlog stays bounded.
		l.stalls.Add(1)
		m.lsmDrain()
		return
	}
	m.lsmKick()
}

// lsmKick starts the background worker unless one is already running. The
// clear-then-recheck loop closes the lost-wakeup race: a kick that lands
// while the worker is finishing its last item is observed by the recheck.
func (m *Manager) lsmKick() {
	l := m.lsm
	if !l.busy.CompareAndSwap(false, true) {
		return
	}
	go func() {
		for {
			m.lsmDrain()
			l.busy.Store(false)
			if !m.lsmHasWork() {
				return
			}
			if !l.busy.CompareAndSwap(false, true) {
				return
			}
		}
	}()
}

func (m *Manager) lsmHasWork() bool {
	l := m.lsm
	if l.workErr.Load() != nil {
		return false
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.frozen) > 0 || len(l.runs) > l.cfg.MaxRuns || l.compactable() != -1
}

// compactable returns the index of a run whose dead fraction reached 1/2
// (the paper's rebuild threshold), or -1. Caller holds l.mu.
func (l *lsmState) compactable() int {
	for i, r := range l.runs {
		if len(r.dead)*2 >= r.m.Len() && r.m.Len() > 0 {
			return i
		}
	}
	return -1
}

// lsmDrain performs flush/merge/compact work items until none remain. On
// the background worker a build failure is parked in workErr (surfaced at
// the next foreground call); inline callers panic with the error, matching
// every other foreground write path.
func (m *Manager) lsmDrain() {
	l := m.lsm
	for {
		did, err := m.lsmStep()
		if err != nil {
			if l.cfg.SyncCompaction || l.inline {
				panic(err)
			}
			l.workErr.Store(&err)
			return
		}
		if !did {
			return
		}
	}
}

// lsmStep performs one work item under mergeMu: flush the oldest frozen
// memtable, else merge the two smallest runs while over MaxRuns, else
// compact a run past the dead-fraction threshold.
func (m *Manager) lsmStep() (bool, error) {
	l := m.lsm
	l.mergeMu.Lock()
	defer l.mergeMu.Unlock()
	l.mu.RLock()
	frozen := len(l.frozen) > 0
	over := len(l.runs) > l.cfg.MaxRuns
	compact := l.compactable()
	l.mu.RUnlock()
	switch {
	case frozen:
		return true, m.lsmFlushOldest()
	case over:
		return true, m.lsmMergeSmallest()
	case compact != -1:
		return true, m.lsmCompact(compact)
	}
	return false, nil
}

// snapshotDead copies a dead set under l.mu.Lock (the worker must not read
// a dead map concurrently with a foreground Delete writing it).
func (l *lsmState) snapshotDead(dead map[uint64]struct{}) map[uint64]struct{} {
	l.mu.Lock()
	snap := make(map[uint64]struct{}, len(dead))
	for id := range dead {
		snap[id] = struct{}{}
	}
	l.mu.Unlock()
	return snap
}

// lsmFlushOldest turns the oldest frozen memtable into a run. The
// expensive build runs without holding l.mu (the part's ivs map is
// immutable once frozen); only the dead-set snapshot and the final swap
// take the lock. Deletes that land in the part during the build are
// carried into the new run's dead set at swap time.
func (m *Manager) lsmFlushOldest() error {
	l := m.lsm
	l.mu.RLock()
	part := l.frozen[0]
	l.mu.RUnlock()
	snap := l.snapshotDead(part.dead)
	ivs := make([]geom.Interval, 0, len(part.ivs))
	for id, iv := range part.ivs {
		if _, dead := snap[id]; !dead {
			ivs = append(ivs, iv)
		}
	}
	var run *lsmRun
	if len(ivs) > 0 {
		var err error
		if run, err = m.buildRun(ivs); err != nil {
			return err
		}
	}
	l.mu.Lock()
	if run != nil {
		for id := range part.dead {
			if _, old := snap[id]; !old {
				run.dead[id] = struct{}{}
			}
		}
		l.runs = append(l.runs, run)
	}
	l.frozen = l.frozen[1:]
	l.mu.Unlock()
	l.flushes.Add(1)
	return nil
}

// lsmReplace rebuilds the live contents of srcs (a subset of l.runs) into
// one new run and swaps it in. Shared by merge and compaction.
func (m *Manager) lsmReplace(srcs []*lsmRun) error {
	l := m.lsm
	snaps := make([]map[uint64]struct{}, len(srcs))
	total := 0
	for i, r := range srcs {
		snaps[i] = l.snapshotDead(r.dead)
		total += r.m.Len()
	}
	ivs := make([]geom.Interval, 0, total)
	for i, r := range srcs {
		snap := snaps[i]
		// The run's in-memory id directory IS its contents: reading a
		// source run costs no I/O (the merge's I/O is writing the new run).
		r.m.Each(func(iv geom.Interval) bool {
			if _, dead := snap[iv.ID]; !dead {
				ivs = append(ivs, iv)
			}
			return true
		})
	}
	var run *lsmRun
	if len(ivs) > 0 {
		var err error
		if run, err = m.buildRun(ivs); err != nil {
			return err
		}
	}
	l.mu.Lock()
	if run != nil {
		for i, r := range srcs {
			for id := range r.dead {
				if _, old := snaps[i][id]; !old {
					run.dead[id] = struct{}{}
				}
			}
		}
	}
	keep := l.runs[:0]
	for _, r := range l.runs {
		replaced := false
		for _, s := range srcs {
			if r == s {
				replaced = true
				break
			}
		}
		if !replaced {
			keep = append(keep, r)
		}
	}
	l.runs = keep
	if run != nil {
		l.runs = append(l.runs, run)
	}
	l.retireLocked(srcs)
	l.mu.Unlock()
	return nil
}

// retireLocked accumulates the I/O counters of replaced runs, closes their
// devices (no foreground operation is in flight: caller holds l.mu.Lock)
// and queues their directories for deletion at the next checkpoint commit
// — the previous checkpoint's runstate still references them until then.
func (l *lsmState) retireLocked(srcs []*lsmRun) {
	l.retiredMu.Lock()
	for _, r := range srcs {
		l.retiredStats = l.retiredStats.Add(r.m.Stats())
		l.retiredFileWrites += r.m.FileWrites()
		h, ms := r.m.PoolStats()
		l.retiredHits += h
		l.retiredMisses += ms
	}
	l.retiredMu.Unlock()
	for _, r := range srcs {
		r.m.CloseFiles()
		if r.name != "" {
			l.garbage = append(l.garbage, r.name)
		}
	}
}

// lsmMergeSmallest merges the two runs with the fewest live entries.
func (m *Manager) lsmMergeSmallest() error {
	l := m.lsm
	l.mu.RLock()
	idx := make([]int, len(l.runs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return l.runs[idx[a]].live() < l.runs[idx[b]].live() })
	srcs := []*lsmRun{l.runs[idx[0]], l.runs[idx[1]]}
	l.mu.RUnlock()
	if err := m.lsmReplace(srcs); err != nil {
		return err
	}
	l.merges.Add(1)
	return nil
}

// lsmCompact rewrites one run without its dead ids (the α=1/2 rebuild).
func (m *Manager) lsmCompact(i int) error {
	l := m.lsm
	l.mu.RLock()
	src := l.runs[i]
	l.mu.RUnlock()
	if err := m.lsmReplace([]*lsmRun{src}); err != nil {
		return err
	}
	l.compactions.Add(1)
	return nil
}

// buildRun constructs one immutable run over ivs: in memory a plain static
// manager; durable, a tree built in its own subdirectory and committed
// through the device checkpoint protocol at generation 1 (the run is
// static — its generation never changes; the PARENT's runstate says which
// runs exist). Error-valued panics out of the tree build (injected faults,
// ENOSPC) are converted to errors and the half-built directory removed.
func (m *Manager) buildRun(ivs []geom.Interval) (run *lsmRun, err error) {
	l := m.lsm
	l.mu.RLock()
	frames, nShards := l.poolFrames, l.poolShards
	l.mu.RUnlock()
	if !l.durable {
		rm := New(m.runConfig(), ivs)
		if frames != 0 {
			rm.AttachPool(frames, nShards)
		}
		return &lsmRun{m: rm, dead: make(map[uint64]struct{})}, nil
	}
	name := fmt.Sprintf("r%07d", l.nextRun)
	l.nextRun++
	dir := filepath.Join(m.dirPath, lsmRunsDir, name)
	defer func() {
		if p := recover(); p != nil {
			e, ok := p.(error)
			if !ok {
				panic(p)
			}
			os.RemoveAll(dir)
			run, err = nil, fmt.Errorf("intervals: building run %s: %w", name, e)
		}
	}()
	rm, err := CreateManaged(dir, m.runConfig(), ivs, m.runOpt())
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	if err := rm.PrepareCheckpoint(1); err == nil {
		err = rm.CommitCheckpoint()
	} else {
		rm.RollbackCheckpoint()
	}
	if err != nil {
		rm.CloseFiles()
		os.RemoveAll(dir)
		return nil, err
	}
	if frames != 0 {
		rm.AttachPool(frames, nShards)
	}
	return &lsmRun{m: rm, dead: make(map[uint64]struct{}), name: name}, nil
}

// lsmDelete removes id from whichever part holds its live copy: an
// active-memtable removal is direct, anywhere else the id is marked dead
// in that part. The caller (applyDelete) verified id is live and updates
// the directory. Exactly one part holds a live copy (addDir enforces
// global uniqueness), so the first not-yet-dead hit is the right one.
func (m *Manager) lsmDelete(id uint64) {
	l := m.lsm
	l.errCheck()
	l.mu.RLock()
	if _, ok := l.active.ivs[id]; ok {
		delete(l.active.ivs, id)
		l.mu.RUnlock()
		return
	}
	for _, part := range l.frozen {
		if _, ok := part.ivs[id]; ok {
			if _, dead := part.dead[id]; !dead {
				part.dead[id] = struct{}{}
				l.mu.RUnlock()
				return
			}
		}
	}
	for _, r := range l.runs {
		if _, ok := r.m.dir[id]; ok {
			if _, dead := r.dead[id]; !dead {
				r.dead[id] = struct{}{}
				trigger := len(r.dead)*2 >= r.m.Len()
				l.mu.RUnlock()
				if trigger {
					if l.cfg.SyncCompaction || l.inline {
						m.lsmDrain()
					} else {
						m.lsmKick()
					}
				}
				return
			}
		}
	}
	l.mu.RUnlock()
	panic("intervals: id directory out of sync with log-structured parts")
}

// lsmStab is the fan-in Stab: the memtables are scanned in memory, every
// run answers through its own tree with dead-id suppression. Live ids are
// disjoint across parts, so each match is reported exactly once.
func (m *Manager) lsmStab(q int64, emit EmitInterval) {
	l := m.lsm
	l.mu.RLock()
	defer l.mu.RUnlock()
	if !l.emitMemMatches(func(iv geom.Interval) bool { return iv.Contains(q) }, emit) {
		return
	}
	for _, r := range l.runs {
		stopped := false
		r.m.Stab(q, func(iv geom.Interval) bool {
			if _, dead := r.dead[iv.ID]; dead {
				return true
			}
			if !emit(iv) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
}

// lsmIntersect is the fan-in Intersect.
func (m *Manager) lsmIntersect(q geom.Interval, emit EmitInterval) {
	l := m.lsm
	l.mu.RLock()
	defer l.mu.RUnlock()
	if !l.emitMemMatches(func(iv geom.Interval) bool { return iv.Intersects(q) }, emit) {
		return
	}
	for _, r := range l.runs {
		stopped := false
		r.m.Intersect(q, func(iv geom.Interval) bool {
			if _, dead := r.dead[iv.ID]; dead {
				return true
			}
			if !emit(iv) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
}

// emitMemMatches streams memtable entries matching pred to emit; false if
// emit stopped. Caller holds l.mu (read). The scan is pure memory — the
// memtable is the structure that makes writes cheap; reads pay a bounded
// O(MemtableSize) CPU scan and zero I/O for it.
func (l *lsmState) emitMemMatches(pred func(geom.Interval) bool, emit EmitInterval) bool {
	if !emitPart(l.active, pred, emit) {
		return false
	}
	for _, part := range l.frozen {
		if !emitPart(part, pred, emit) {
			return false
		}
	}
	return true
}

func emitPart(part *memPart, pred func(geom.Interval) bool, emit EmitInterval) bool {
	for id, iv := range part.ivs {
		if _, dead := part.dead[id]; dead {
			continue
		}
		if pred(iv) && !emit(iv) {
			return false
		}
	}
	return true
}

// lsmStabBatch fans a stab batch across every part: one batch pass per run
// (shared traversal preserved within each run) plus a sorted-probe
// memtable pass. Per-query early stop is honored across parts via the
// stopped flags.
func (m *Manager) lsmStabBatch(qs []int64, emit EmitBatch) {
	l := m.lsm
	l.mu.RLock()
	defer l.mu.RUnlock()
	stopped := make([]bool, len(qs))
	gated := func(qi int, iv geom.Interval) bool {
		if stopped[qi] {
			return false
		}
		if !emit(qi, iv) {
			stopped[qi] = true
			return false
		}
		return true
	}
	// Sorted query index for the memtable pass: for each entry, binary
	// search the window of query points inside [Lo, Hi].
	order := sortedQueryIndex(qs)
	memHit := func(iv geom.Interval) bool {
		lo := sort.Search(len(order), func(i int) bool { return qs[order[i]] >= iv.Lo })
		for ; lo < len(order) && qs[order[lo]] <= iv.Hi; lo++ {
			gated(order[lo], iv)
		}
		return true
	}
	l.emitMemMatches(func(geom.Interval) bool { return true }, func(iv geom.Interval) bool {
		return memHit(iv)
	})
	for _, r := range l.runs {
		r.m.StabBatch(qs, func(qi int, iv geom.Interval) bool {
			if _, dead := r.dead[iv.ID]; dead {
				return !stopped[qi]
			}
			return gated(qi, iv)
		})
	}
}

// lsmIntersectBatch fans an intersect batch across every part.
func (m *Manager) lsmIntersectBatch(qs []geom.Interval, emit EmitBatch) {
	l := m.lsm
	l.mu.RLock()
	defer l.mu.RUnlock()
	stopped := make([]bool, len(qs))
	gated := func(qi int, iv geom.Interval) bool {
		if stopped[qi] {
			return false
		}
		if !emit(qi, iv) {
			stopped[qi] = true
			return false
		}
		return true
	}
	// Memtable pass: queries sorted by Lo; an entry intersects the sorted
	// prefix with q.Lo <= iv.Hi, filtered by q.Hi >= iv.Lo.
	order := make([]int, 0, len(qs))
	for i, q := range qs {
		if q.Valid() {
			order = append(order, i)
		} else {
			stopped[i] = true
		}
	}
	sort.Slice(order, func(a, b int) bool { return qs[order[a]].Lo < qs[order[b]].Lo })
	memHit := func(iv geom.Interval) bool {
		for _, qi := range order {
			if qs[qi].Lo > iv.Hi {
				break
			}
			if qs[qi].Hi >= iv.Lo {
				gated(qi, iv)
			}
		}
		return true
	}
	l.emitMemMatches(func(geom.Interval) bool { return true }, func(iv geom.Interval) bool {
		return memHit(iv)
	})
	for _, r := range l.runs {
		r.m.IntersectBatch(qs, func(qi int, iv geom.Interval) bool {
			if _, dead := r.dead[iv.ID]; dead {
				return !stopped[qi]
			}
			return gated(qi, iv)
		})
	}
}

func sortedQueryIndex(qs []int64) []int {
	order := make([]int, len(qs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return qs[order[a]] < qs[order[b]] })
	return order
}

// --- aggregate accounting over parts -----------------------------------

func (m *Manager) lsmStats() disk.Stats {
	l := m.lsm
	l.mu.RLock()
	defer l.mu.RUnlock()
	l.retiredMu.Lock()
	st := l.retiredStats
	l.retiredMu.Unlock()
	for _, r := range l.runs {
		st = st.Add(r.m.Stats())
	}
	return st
}

func (m *Manager) lsmResetStats() {
	l := m.lsm
	l.mu.RLock()
	defer l.mu.RUnlock()
	l.retiredMu.Lock()
	l.retiredStats = disk.Stats{}
	l.retiredMu.Unlock()
	for _, r := range l.runs {
		r.m.ResetStats()
	}
}

func (m *Manager) lsmSpaceBlocks() int64 {
	l := m.lsm
	l.mu.RLock()
	defer l.mu.RUnlock()
	var n int64
	for _, r := range l.runs {
		n += r.m.SpaceBlocks()
	}
	return n
}

func (m *Manager) lsmPoolStats() (hits, misses int64) {
	l := m.lsm
	l.mu.RLock()
	defer l.mu.RUnlock()
	l.retiredMu.Lock()
	hits, misses = l.retiredHits, l.retiredMisses
	l.retiredMu.Unlock()
	for _, r := range l.runs {
		h, ms := r.m.PoolStats()
		hits += h
		misses += ms
	}
	return hits, misses
}

func (m *Manager) lsmAttachPool(frames, nShards int) {
	l := m.lsm
	l.mu.Lock()
	defer l.mu.Unlock()
	l.poolFrames, l.poolShards = frames, nShards
	for _, r := range l.runs {
		r.m.AttachPool(frames, nShards)
	}
}

func (m *Manager) lsmFlushPool() error {
	l := m.lsm
	l.mu.RLock()
	defer l.mu.RUnlock()
	for _, r := range l.runs {
		if err := r.m.flushPool(); err != nil {
			return err
		}
	}
	return nil
}

func (m *Manager) lsmFileWrites() int64 {
	l := m.lsm
	l.mu.RLock()
	defer l.mu.RUnlock()
	l.retiredMu.Lock()
	n := l.retiredFileWrites
	l.retiredMu.Unlock()
	n += l.stateWrites.Load()
	for _, r := range l.runs {
		n += r.m.FileWrites()
	}
	if m.wal != nil {
		n += m.wal.FileWrites()
	}
	return n
}

func (m *Manager) lsmSetWriteBudget(b *disk.WriteBudget) {
	l := m.lsm
	l.mu.Lock()
	defer l.mu.Unlock()
	l.budget = b
	for _, r := range l.runs {
		r.m.SetWriteBudget(b)
	}
	if m.wal != nil {
		m.wal.SetWriteBudget(b)
	}
}

func (m *Manager) lsmCloseFiles() error {
	l := m.lsm
	l.mu.Lock()
	defer l.mu.Unlock()
	var first error
	for _, r := range l.runs {
		if err := r.m.CloseFiles(); err != nil && first == nil {
			first = err
		}
	}
	if m.wal != nil {
		if err := m.wal.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// --- durable construction, checkpointing, recovery ----------------------

// runState is the checkpoint-committed description of the run set, staged
// as runstate-<seq>.json beside the device files and committed by the
// caller's manifest rename.
type runState struct {
	NextRun uint64         `json:"next_run"`
	Runs    []runStateItem `json:"runs"`
}

type runStateItem struct {
	Name string   `json:"name"`
	Dead []uint64 `json:"dead,omitempty"`
}

func runStatePath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("runstate-%d.json", seq))
}

// createLSM is CreateManaged's log-structured branch: no top-level tree
// devices, just the WAL plus an initial run bulk-built from ivs (the
// static construction is optimal — no reason to trickle the initial set
// through the memtable).
func createLSM(dir string, cfg Config, ivs []geom.Interval, opt DurableOptions) (*Manager, error) {
	if err := os.MkdirAll(filepath.Join(dir, lsmRunsDir), 0o755); err != nil {
		return nil, err
	}
	m := &Manager{
		dir:     make(map[uint64]geom.Interval, len(ivs)),
		cfg:     cfg,
		dirPath: dir,
	}
	m.initLSM(opt, true)
	if !opt.DisableWAL {
		wal, err := disk.OpenWAL(filepath.Join(dir, walFile), opt.Fsync)
		if err == nil {
			wal.SetWriteBudget(opt.Budget)
			err = wal.Reset(0)
		}
		if err != nil {
			if wal != nil {
				wal.Close()
			}
			return nil, err
		}
		m.wal = wal
	}
	if len(ivs) > 0 {
		for _, iv := range ivs {
			if !iv.Valid() {
				m.lsmCloseFiles()
				return nil, fmt.Errorf("intervals: invalid interval %s", iv.String())
			}
			m.addDir(iv)
		}
		run, err := m.buildRun(ivs)
		if err != nil {
			m.lsmCloseFiles()
			return nil, err
		}
		m.lsm.runs = append(m.lsm.runs, run)
		m.n = len(ivs)
	}
	return m, nil
}

// newLSM is New's log-structured branch (in-memory).
func newLSM(cfg Config, ivs []geom.Interval) *Manager {
	m := &Manager{dir: make(map[uint64]geom.Interval, len(ivs)), cfg: cfg}
	m.initLSM(DurableOptions{}, false)
	if len(ivs) > 0 {
		for _, iv := range ivs {
			if !iv.Valid() {
				panic("intervals: invalid interval " + iv.String())
			}
			m.addDir(iv)
		}
		run, err := m.buildRun(ivs)
		if err != nil {
			panic(err)
		}
		m.lsm.runs = append(m.lsm.runs, run)
		m.n = len(ivs)
	}
	return m
}

// openLSM is OpenManaged's log-structured branch: read the committed
// runstate, reopen every referenced run at its (always-1) generation,
// rebuild the global id directory, garbage-collect unreferenced run
// directories (half-built runs a crash left behind — removed BEFORE WAL
// replay, which may legitimately rebuild runs under the same names), and
// replay the WAL tail into a fresh memtable. Replay drains inline so a
// crash-the-recovery budget lands deterministically.
func openLSM(dir string, cfg Config, seq uint64, opt DurableOptions) (mgr *Manager, err error) {
	data, err := os.ReadFile(runStatePath(dir, seq))
	if err != nil {
		return nil, fmt.Errorf("intervals: %s has no runstate at seq %d: %w", dir, seq, err)
	}
	var st runState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("intervals: corrupt runstate in %s: %w", dir, err)
	}
	m := &Manager{dir: make(map[uint64]geom.Interval), cfg: cfg, dirPath: dir}
	m.initLSM(opt, true)
	l := m.lsm
	l.seq = seq
	l.nextRun = st.NextRun
	defer func() {
		if p := recover(); p != nil {
			e, ok := p.(error)
			if !ok {
				panic(p)
			}
			m.lsmCloseFiles()
			mgr, err = nil, fmt.Errorf("intervals: opening %s: %w", dir, e)
		}
	}()
	referenced := make(map[string]bool, len(st.Runs))
	for _, item := range st.Runs {
		referenced[item.Name] = true
		rm, rerr := OpenManaged(filepath.Join(dir, lsmRunsDir, item.Name), m.runConfig(), 1, m.runOpt())
		if rerr != nil {
			m.lsmCloseFiles()
			return nil, fmt.Errorf("intervals: opening run %s: %w", item.Name, rerr)
		}
		run := &lsmRun{m: rm, dead: make(map[uint64]struct{}, len(item.Dead)), name: item.Name}
		for _, id := range item.Dead {
			run.dead[id] = struct{}{}
		}
		l.runs = append(l.runs, run)
		rm.Each(func(iv geom.Interval) bool {
			if _, dead := run.dead[iv.ID]; !dead {
				m.dir[iv.ID] = iv
			}
			return true
		})
	}
	m.n = len(m.dir)
	// GC run directories no committed state references.
	if entries, derr := os.ReadDir(filepath.Join(dir, lsmRunsDir)); derr == nil {
		for _, e := range entries {
			if !referenced[e.Name()] {
				os.RemoveAll(filepath.Join(dir, lsmRunsDir, e.Name()))
			}
		}
	}
	// Stale runstate files from crashed prepares.
	gcRunStates(dir, seq)
	if !opt.DisableWAL {
		wal, werr := disk.OpenWAL(filepath.Join(dir, walFile), opt.Fsync)
		if werr != nil {
			m.lsmCloseFiles()
			return nil, werr
		}
		wal.SetWriteBudget(opt.Budget)
		m.wal = wal
		l.inline = true
		_, werr = wal.Recover(seq, m.replayOp)
		l.inline = false
		if werr != nil {
			m.lsmCloseFiles()
			return nil, fmt.Errorf("intervals: replaying %s wal: %w", dir, werr)
		}
	}
	return m, nil
}

func gcRunStates(dir string, keep uint64) {
	matches, _ := filepath.Glob(filepath.Join(dir, "runstate-*.json"))
	for _, p := range matches {
		if p != runStatePath(dir, keep) {
			os.Remove(p)
		}
	}
}

// lsmPrepare stages checkpoint generation seq: acquire mergeMu (held until
// commit or rollback so the worker cannot invalidate the staged state),
// drain every memtable into runs, and write runstate-<seq>.json. The WAL
// is NOT touched until commit.
func (m *Manager) lsmPrepare(seq uint64) error {
	l := m.lsm
	l.mergeMu.Lock()
	ok := false
	defer func() {
		if !ok {
			l.mergeMu.Unlock()
		}
	}()
	if err := l.takeErr(); err != nil {
		return fmt.Errorf("intervals: background compaction failed: %w", err)
	}
	// Drain: freeze a non-empty active memtable, then flush every frozen
	// one — the WAL truncates at commit, so runs must hold everything.
	l.mu.Lock()
	if len(l.active.ivs) > 0 {
		l.frozen = append(l.frozen, l.active)
		l.active = newMemPart()
	}
	l.mu.Unlock()
	for {
		l.mu.RLock()
		n := len(l.frozen)
		l.mu.RUnlock()
		if n == 0 {
			break
		}
		if err := m.lsmFlushOldest(); err != nil {
			return err
		}
	}
	st := runState{NextRun: l.nextRun}
	l.mu.RLock()
	for _, r := range l.runs {
		item := runStateItem{Name: r.name, Dead: make([]uint64, 0, len(r.dead))}
		for id := range r.dead {
			item.Dead = append(item.Dead, id)
		}
		sort.Slice(item.Dead, func(a, b int) bool { return item.Dead[a] < item.Dead[b] })
		st.Runs = append(st.Runs, item)
	}
	l.mu.RUnlock()
	data, err := json.Marshal(st)
	if err != nil {
		return err
	}
	l.mu.RLock()
	budget := l.budget
	l.mu.RUnlock()
	if budget != nil {
		if err := budget.Spend(); err != nil {
			return fmt.Errorf("intervals: stage runstate: %w", err)
		}
	}
	if err := writeFileSync(runStatePath(m.dirPath, seq), data); err != nil {
		return err
	}
	l.stateWrites.Add(1)
	l.prepared = seq
	l.cpHeld = true
	ok = true
	return nil
}

func writeFileSync(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// lsmCommit finalizes the generation lsmPrepare staged (the caller's
// manifest rename already committed it): advance seq, truncate the WAL,
// and delete replaced run directories plus stale runstate files — only now
// is no committed state referencing them. Releases mergeMu.
func (m *Manager) lsmCommit() error {
	l := m.lsm
	if !l.cpHeld {
		return fmt.Errorf("intervals: commit without a prepared checkpoint")
	}
	defer func() {
		l.cpHeld = false
		l.mergeMu.Unlock()
	}()
	l.seq = l.prepared
	if m.wal != nil {
		if err := m.wal.Reset(l.seq); err != nil {
			return err
		}
	}
	l.mu.Lock()
	garbage := l.garbage
	l.garbage = nil
	l.mu.Unlock()
	for _, name := range garbage {
		os.RemoveAll(filepath.Join(m.dirPath, lsmRunsDir, name))
	}
	gcRunStates(m.dirPath, l.seq)
	return nil
}

// lsmRollback abandons the staged generation (a sibling's prepare or the
// group manifest write failed): remove the staged runstate and release
// mergeMu. Memtables drained into runs stay runs — that only moves the
// un-checkpointed tail between two representations; the WAL still holds
// every acknowledged mutation since the last commit.
func (m *Manager) lsmRollback() error {
	l := m.lsm
	if !l.cpHeld {
		return nil
	}
	l.cpHeld = false
	os.Remove(runStatePath(m.dirPath, l.prepared))
	l.mergeMu.Unlock()
	return nil
}
