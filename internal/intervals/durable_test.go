package intervals

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"testing"

	"ccidx/internal/disk"
	"ccidx/internal/geom"
	"ccidx/internal/workload"
)

// sortedIvs returns ivs sorted by id (for set comparison).
func sortedIvs(ivs []geom.Interval) []geom.Interval {
	out := append([]geom.Interval(nil), ivs...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func managerContent(m *Manager) []geom.Interval {
	var out []geom.Interval
	m.Each(func(iv geom.Interval) bool { out = append(out, iv); return true })
	return sortedIvs(out)
}

func stabIDs(m *Manager, q int64) []uint64 {
	var ids []uint64
	m.Stab(q, func(iv geom.Interval) bool { ids = append(ids, iv.ID); return true })
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func intersectIDs(m *Manager, q geom.Interval) []uint64 {
	var ids []uint64
	m.Intersect(q, func(iv geom.Interval) bool { ids = append(ids, iv.ID); return true })
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func bruteStabIDs(ivs []geom.Interval, q int64) []uint64 {
	var ids []uint64
	for _, iv := range ivs {
		if iv.Contains(q) {
			ids = append(ids, iv.ID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func bruteIntersectIDs(ivs []geom.Interval, q geom.Interval) []uint64 {
	var ids []uint64
	for _, iv := range ivs {
		if iv.Intersects(q) {
			ids = append(ids, iv.ID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TestDurableRoundTrip drives a fixed-seed churn workload against a
// file-backed manager and a never-closed in-memory oracle, checkpoints,
// reopens, and oracle-compares every Stab/Intersect result — with and
// without a buffer pool attached to the reopened instance, and with live
// tombstone state (post-churn, pre-rebuild) crossing the checkpoint.
func TestDurableRoundTrip(t *testing.T) {
	const (
		b    = 8
		n0   = 300
		ops  = 500
		span = int64(4000)
	)
	for _, pools := range []bool{false, true} {
		t.Run(fmt.Sprintf("pools=%v", pools), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "ivm")
			init := workload.UniformIntervals(7, n0, span, 200)
			durable, err := CreateAt(dir, Config{B: b}, init, DurableOptions{})
			if err != nil {
				t.Fatal(err)
			}
			oracle := New(Config{B: b}, init)
			if pools {
				durable.AttachPool(128, 4)
			}

			churn := workload.ChurnOps(11, workload.SeqIDs(n0), uint64(n0), ops, span, 200)
			apply := func(m *Manager) {
				for _, op := range churn {
					switch op.Kind {
					case workload.ChurnInsert:
						m.Insert(op.Iv)
					case workload.ChurnDelete:
						m.Delete(op.ID)
					}
				}
			}
			apply(durable)
			apply(oracle)
			if durable.stabber.DeadCount() == 0 {
				t.Fatal("workload produced no live tombstones; round trip would not cover them")
			}
			if err := durable.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if err := durable.CloseFiles(); err != nil {
				t.Fatal(err)
			}

			reopened, err := OpenAt(dir, DurableOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer reopened.CloseFiles()
			if pools {
				reopened.AttachPool(128, 4)
			}
			compareManagers(t, oracle, reopened, span)

			// Keep mutating after reopen: the recovered structures must stay
			// fully functional (inserts, deletes, rebuild bookkeeping).
			churn2 := workload.ChurnOps(13, nil, uint64(n0+ops), 200, span, 200)
			for _, op := range churn2 {
				switch op.Kind {
				case workload.ChurnInsert:
					reopened.Insert(op.Iv)
					oracle.Insert(op.Iv)
				case workload.ChurnDelete:
					if got, want := reopened.Delete(op.ID), oracle.Delete(op.ID); got != want {
						t.Fatalf("post-reopen Delete(%d) = %v, oracle %v", op.ID, got, want)
					}
				}
			}
			compareManagers(t, oracle, reopened, span)
		})
	}
}

func compareManagers(t *testing.T, oracle, got *Manager, span int64) {
	t.Helper()
	if oracle.Len() != got.Len() {
		t.Fatalf("Len: oracle %d, reopened %d", oracle.Len(), got.Len())
	}
	oc, gc := managerContent(oracle), managerContent(got)
	if len(oc) != len(gc) {
		t.Fatalf("content size: oracle %d, reopened %d", len(oc), len(gc))
	}
	for i := range oc {
		if oc[i] != gc[i] {
			t.Fatalf("content[%d]: oracle %v, reopened %v", i, oc[i], gc[i])
		}
	}
	for q := int64(0); q <= span; q += span / 37 {
		if !equalIDs(stabIDs(oracle, q), stabIDs(got, q)) {
			t.Fatalf("Stab(%d) diverged after reopen", q)
		}
	}
	for lo := int64(0); lo <= span; lo += span / 11 {
		q := geom.Interval{Lo: lo, Hi: lo + span/13}
		if !equalIDs(intersectIDs(oracle, q), intersectIDs(got, q)) {
			t.Fatalf("Intersect(%v) diverged after reopen", q)
		}
	}
}

// crashOutcome records what a faulted workload run acknowledged before the
// injected crash: the live set of every op that RETURNED (acked), plus the
// single op that died mid-flight (nil when the crash hit a checkpoint).
type crashOutcome struct {
	acked    []geom.Interval
	inflight *workload.ChurnOp
}

// candidates returns the recovery oracle: the acked set, and — when an op
// was in flight — the acked set with that op's effect. An acknowledged
// mutation is WAL-logged before it is applied, so it must always be
// recovered; the in-flight op may or may not have reached the log before
// the crash, so either state is legal. Nothing else is.
func (o *crashOutcome) candidates() [][]geom.Interval {
	base := sortedIvs(o.acked)
	cands := [][]geom.Interval{base}
	if op := o.inflight; op != nil {
		switch op.Kind {
		case workload.ChurnInsert:
			dup := false
			for _, iv := range o.acked {
				if iv.ID == op.Iv.ID {
					dup = true
					break
				}
			}
			if !dup {
				cands = append(cands, sortedIvs(append(append([]geom.Interval(nil), o.acked...), op.Iv)))
			}
		case workload.ChurnDelete:
			alt := make([]geom.Interval, 0, len(o.acked))
			for _, iv := range o.acked {
				if iv.ID != op.ID {
					alt = append(alt, iv)
				}
			}
			if len(alt) != len(o.acked) {
				cands = append(cands, sortedIvs(alt))
			}
		}
	}
	return cands
}

func equalIvs(a, b []geom.Interval) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDurableCrashEveryWrite is the manager-level fault-injection reopen
// suite: a fixed-seed workload with periodic checkpoints runs with a SHARED
// write budget across both devices and the WAL, crashing after the k-th
// file write for every k; reopening must recover EVERY acknowledged
// mutation (checkpointed or merely WAL-logged), tolerating only the one op
// that was in flight at the crash.
func TestDurableCrashEveryWrite(t *testing.T) {
	total := runCrashWorkload(t, filepath.Join(t.TempDir(), "probe"), -1, nil)
	if total < 200 {
		t.Fatalf("workload too small: %d writes", total)
	}
	step := int64(1)
	if testing.Short() {
		step = total/60 + 1
	}
	for k := int64(1); k <= total; k += step {
		k := k
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "ivm")
			var out crashOutcome
			runCrashWorkload(t, dir, k, &out)
			reopened, err := OpenAt(dir, DurableOptions{})
			if err != nil {
				t.Fatalf("reopen after crash at write %d: %v", k, err)
			}
			defer reopened.CloseFiles()
			got := managerContent(reopened)
			var match []geom.Interval
			for _, cand := range out.candidates() {
				if equalIvs(got, cand) {
					match = cand
					break
				}
			}
			if match == nil {
				t.Fatalf("crash at write %d: recovered %d intervals, want the %d acknowledged (± the in-flight op)",
					k, len(got), len(out.acked))
			}
			for _, q := range []int64{50, 700, 1500, 2900} {
				if !equalIDs(stabIDs(reopened, q), bruteStabIDs(match, q)) {
					t.Fatalf("crash at write %d: Stab(%d) diverged from acked oracle", k, q)
				}
			}
			for _, q := range []geom.Interval{{Lo: 100, Hi: 400}, {Lo: 2000, Hi: 2600}} {
				if !equalIDs(intersectIDs(reopened, q), bruteIntersectIDs(match, q)) {
					t.Fatalf("crash at write %d: Intersect(%v) diverged from acked oracle", k, q)
				}
			}
		})
	}
}

// runCrashWorkload builds a durable manager, arms a shared write budget of
// k file writes (-1 = unfaulted) across both devices and the WAL, and
// replays the fixed churn workload with a checkpoint every ckptEvery ops,
// recording in out the acknowledged live set and the in-flight op at the
// crash. Returns total file writes of an unfaulted run.
func runCrashWorkload(t *testing.T, dir string, k int64, out *crashOutcome) int64 {
	t.Helper()
	const (
		b         = 8
		n0        = 120
		ops       = 260
		ckptEvery = 40
		span      = int64(3000)
	)
	init := workload.UniformIntervals(5, n0, span, 150)
	m, err := CreateAt(dir, Config{B: b}, init, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.CloseFiles()

	live := make(map[uint64]geom.Interval, n0)
	for _, iv := range init {
		live[iv.ID] = iv
	}
	snapshot := func() []geom.Interval {
		out := make([]geom.Interval, 0, len(live))
		for _, iv := range live {
			out = append(out, iv)
		}
		return out
	}

	if k >= 0 {
		m.SetWriteBudget(disk.NewWriteBudget(k))
	}

	churn := workload.ChurnOps(9, workload.SeqIDs(n0), uint64(n0), ops, span, 150)
	crashed := false
	for i, op := range churn {
		op := op
		func() {
			defer func() {
				if p := recover(); p != nil {
					// The mutation died mid-flight on the injected fault: it
					// was never acknowledged, so recovery may legally surface
					// either side of it.
					if !errors.Is(panicErr(p), disk.ErrInjectedFault) {
						panic(p)
					}
					crashed = true
					if out != nil {
						out.inflight = &op
					}
				}
			}()
			switch op.Kind {
			case workload.ChurnInsert:
				m.Insert(op.Iv)
				live[op.Iv.ID] = op.Iv
			case workload.ChurnDelete:
				if m.Delete(op.ID) {
					delete(live, op.ID)
				}
			}
		}()
		if crashed {
			break
		}
		if (i+1)%ckptEvery == 0 {
			if err := m.Checkpoint(); err != nil {
				if !errors.Is(err, disk.ErrInjectedFault) {
					t.Fatalf("checkpoint: %v", err)
				}
				crashed = true
				break
			}
		}
	}
	if out != nil {
		out.acked = snapshot()
	}
	return m.FileWrites()
}

// panicErr extracts an error from a recovered panic value.
func panicErr(p any) error {
	if err, ok := p.(error); ok {
		return err
	}
	return fmt.Errorf("%v", p)
}

// TestCreateAtRefusesExistingDir: re-creating over an existing durable
// manager must fail (it would leak every old page under the new trees);
// OpenAt is the way back in.
func TestCreateAtRefusesExistingDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ivm")
	init := workload.UniformIntervals(3, 50, 1000, 80)
	m, err := CreateAt(dir, Config{B: 8}, init, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	space := m.SpaceBlocks()
	m.CloseFiles()
	if _, err := CreateAt(dir, Config{B: 8}, init, DurableOptions{}); err == nil {
		t.Fatal("CreateAt over an existing directory did not error")
	}
	re, err := OpenAt(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.CloseFiles()
	if got := re.SpaceBlocks(); got != space {
		t.Fatalf("SpaceBlocks after reopen = %d, want %d", got, space)
	}
}

// TestDurableCrashBetweenManifestAndCommit exercises the one boundary the
// write-budget sweep cannot hit (the manifest rename is not a device
// write): prepare a new generation, flip the manifest, crash BEFORE
// CommitCheckpoint. Reopening must serve the NEW generation — the rename is
// the commit point — with the stale journal of the previous generation
// discarded.
func TestDurableCrashBetweenManifestAndCommit(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ivm")
	init := workload.UniformIntervals(3, 100, 1000, 80)
	m, err := CreateAt(dir, Config{B: 8}, init, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	extra := geom.Interval{Lo: 11, Hi: 222, ID: 9999}
	m.Insert(extra)
	want := append(append([]geom.Interval(nil), init...), extra)

	// Prepare + manifest flip, no commit: the "crash" window.
	seq := m.Seq() + 1
	if err := m.PrepareCheckpoint(seq); err != nil {
		t.Fatal(err)
	}
	mf, err := disk.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	mf.Seq = seq
	if err := disk.WriteManifest(dir, mf); err != nil {
		t.Fatal(err)
	}
	m.CloseFiles()

	reopened, err := OpenAt(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.CloseFiles()
	got := managerContent(reopened)
	if len(got) != len(want) {
		t.Fatalf("got %d intervals, want %d", len(got), len(want))
	}
	wantS := sortedIvs(want)
	for i := range wantS {
		if got[i] != wantS[i] {
			t.Fatalf("content[%d] = %v, want %v", i, got[i], wantS[i])
		}
	}
}
