// Package core implements the metablock tree, the central data structure of
// Kanellakis, Ramaswamy, Vengroff and Vitter, "Indexing for Data Models with
// Constraints and Classes" (Section 3).
//
// The metablock tree stores n points in the half plane y >= x and answers
// diagonal corner queries — report every point with x <= a and y >= a, the
// query to which external dynamic interval management reduces (Proposition
// 2.2) — with the following worst-case guarantees:
//
//   - space O(n/B) disk blocks (Theorem 3.2, Lemma 3.4),
//   - query O(log_B n + t/B) I/Os (Theorems 3.2 and 3.7, optimal by
//     Proposition 3.3),
//   - amortized insert O(log_B n + (log_B n)^2/B) I/Os (Theorem 3.7).
//
// Structure (Section 3.1, Figs 8-10): a B-ary tree of metablocks, each
// holding up to B^2 points (2B^2 transiently while dynamic). A metablock
// stores its points twice, in B-point blocks blocked vertically (by x) and
// horizontally (by decreasing y); metablocks whose bounding box meets the
// diagonal also carry the corner structure of Lemma 3.1 (corner.go). Each
// metablock M additionally stores TS(M), the B^2 highest-y points among the
// points stored in M's left siblings, which lets a query decide in O(1)
// blocks whether a run of "Type IV" siblings is worth examining one by one.
//
// Dynamization (Section 3.2, Fig 19): inserts are buffered in per-metablock
// update blocks (level-I reorganisation every B inserts rebuilds the block
// organisations), metablocks split when they reach 2B^2 points (level-II
// reorganisation pushes the bottom half into the children), every internal
// metablock maintains a TD corner structure over the points recently placed
// in its children (rebuilding all the children's TS structures when TD
// reaches B^2 points), and a subtree is rebuilt when a branching factor
// reaches 2B. All reorganisation costs are amortized exactly as in the
// paper's Lemma 3.6.
package core

import (
	"fmt"
	"sync"

	"ccidx/internal/disk"
	"ccidx/internal/geom"
)

// recSize is the on-disk record slot: x, y (int64), id (uint64),
// aux (uint32, used by TD entries), pad to 32 bytes.
const recSize = 32

// pageHeaderSize precedes the record slots in every data page.
const pageHeaderSize = 16

// Config collects the tunable parameters of a metablock tree.
type Config struct {
	// B is the block capacity in records. Metablocks hold up to B^2 points
	// (2B^2 transiently). Must be at least 4.
	B int
	// DisableTS turns off the TS structures (ablation experiment E13): the
	// query then examines every Type IV sibling individually, which breaks
	// the amortization the paper proves in Theorem 3.2.
	DisableTS bool
	// DisableCorner turns off corner structures (ablation experiment E14):
	// Type II metablocks fall back to a vertical-blocking scan whose waste
	// is Theta(B) blocks in the worst case instead of O(1 + t/B).
	DisableCorner bool
}

// PageSize returns the page size in bytes implied by cfg.
func (cfg Config) PageSize() int { return pageHeaderSize + cfg.B*recSize }

// Tree is a metablock tree.
//
// Concurrency: mutations (New, Insert, Delete) require external
// serialization, but any number of goroutines may run queries
// (DiagonalQuery, Stab, Walk) concurrently as long as no mutation is in
// flight — query paths only read pages, consult the (then-immutable)
// tombstone directory, and use no shared mutable scratch. The shard serving
// layer provides exactly this discipline with a per-shard RWMutex.
type Tree struct {
	cfg   Config
	pager disk.Store
	dev   disk.Device  // page I/O surface; the store, or a pool over it
	root  disk.BlockID // control blob of the root metablock
	n     int          // LIVE points (physical copies = n + deadCount)

	// Weak-delete state (delete.go). mult is the in-memory directory of the
	// physical point multiset (live + tombstoned copies); dead counts the
	// tombstoned copies per point and deadCount their total. Directories
	// cost no block I/O, matching the update-maintenance schemes the
	// deletion design follows; an external version would be a B-tree at
	// O(log_B n) I/Os per op without changing the amortized bound.
	mult      map[geom.Point]int
	dead      map[geom.Point]int
	deadCount int
	rebuilds  int

	// wbuf is the reusable page-encode scratch for mutate paths (exclusive
	// by the concurrency contract above; never touched by queries).
	wbuf []byte
	// frames recycles query-path control-block decode targets so steady-state
	// queries allocate nothing per metablock visited.
	frames sync.Pool
	// bscratch recycles the per-node routing scratch of batched queries
	// (querybatch.go), the batch counterpart of frames.
	bscratch sync.Pool
}

// New builds a metablock tree over pts (which must all satisfy y >= x) with
// the static O((n/B) log_B n) construction of Section 3.1. The slice is
// copied. Points may be inserted afterwards (Section 3.2).
func New(cfg Config, pts []geom.Point) *Tree {
	return NewOn(cfg, disk.NewPager(cfg.PageSize()), pts)
}

// NewOn is New over a caller-provided store — an in-memory pager or a
// file-backed device — whose page size must be exactly cfg.PageSize().
func NewOn(cfg Config, store disk.Store, pts []geom.Point) *Tree {
	for _, p := range pts {
		if !p.AboveDiagonal() {
			panic(fmt.Sprintf("core: point %v below the diagonal y=x", p))
		}
	}
	t := skeletonOn(cfg, store)
	t.n = len(pts)
	own := append([]geom.Point(nil), pts...)
	for _, p := range own {
		t.mult[p]++
	}
	geom.SortByX(own)
	t.root = t.buildMetablock(own, true)
	return t
}

func skeletonOn(cfg Config, store disk.Store) *Tree {
	if cfg.B < 4 {
		panic("core: B must be at least 4")
	}
	if store.PageSize() != cfg.PageSize() {
		panic(fmt.Sprintf("core: store page size %d, want %d for B=%d",
			store.PageSize(), cfg.PageSize(), cfg.B))
	}
	t := &Tree{cfg: cfg, pager: store, mult: make(map[geom.Point]int)}
	t.dev = t.pager
	return t
}

// Pager exposes the underlying store for I/O accounting.
func (t *Tree) Pager() disk.Store { return t.pager }

// SetDevice routes all page I/O through d — typically a *disk.Pool over
// Pager() — so pool hits stop costing device I/Os. Call before sharing the
// tree between goroutines; the pager's counters keep measuring the
// transfers that actually reach the device.
func (t *Tree) SetDevice(d disk.Device) { t.dev = d }

// Len returns the number of points stored.
func (t *Tree) Len() int { return t.n }

// B returns the block capacity.
func (t *Tree) B() int { return t.cfg.B }

// cap2 is the nominal metablock capacity B^2.
func (t *Tree) cap2() int { return t.cfg.B * t.cfg.B }

// rec is the decoded record slot.
type rec struct {
	pt  geom.Point
	aux uint32
}

// --- data pages -----------------------------------------------------------

// wpage returns the zeroed reusable page-encode scratch (mutate paths only).
func (t *Tree) wpage() []byte {
	if t.wbuf == nil {
		t.wbuf = make([]byte, t.cfg.PageSize())
	} else {
		clear(t.wbuf)
	}
	return t.wbuf
}

// writeRecBlock writes up to B records into a fresh page and returns its id.
func (t *Tree) writeRecBlock(rs []rec) disk.BlockID {
	if len(rs) > t.cfg.B {
		panic("core: record block overflow")
	}
	id := t.dev.Alloc()
	t.putRecBlock(id, rs)
	return id
}

// putRecBlock overwrites page id with rs.
func (t *Tree) putRecBlock(id disk.BlockID, rs []rec) {
	buf := t.wpage()
	buf[0] = byte(len(rs))
	buf[1] = byte(len(rs) >> 8)
	off := pageHeaderSize
	for _, r := range rs {
		putLE64(buf[off:], uint64(r.pt.X))
		putLE64(buf[off+8:], uint64(r.pt.Y))
		putLE64(buf[off+16:], r.pt.ID)
		putLE32(buf[off+24:], r.aux)
		off += recSize
	}
	disk.MustWriteAt(t.dev, id, buf)
}

// readRecBlock reads a record page into a fresh slice; mutate paths and
// invariant checks use it. Hot query loops use scanRecs/scanPoints instead.
func (t *Tree) readRecBlock(id disk.BlockID) []rec {
	var rs []rec
	t.scanRecs(id, func(r rec) bool {
		rs = append(rs, r)
		return true
	})
	return rs
}

// decodeRec decodes the record at byte offset off of a page view.
func decodeRec(view []byte, off int) rec {
	return rec{
		pt: geom.Point{
			X:  int64(le64(view[off:])),
			Y:  int64(le64(view[off+8:])),
			ID: le64(view[off+16:]),
		},
		aux: le32(view[off+24:]),
	}
}

// scanRecs streams the records of page id to fn through a borrowed
// zero-copy view (one I/O, no allocation). It returns false if fn stopped
// the scan early; the page is still charged exactly one read either way.
func (t *Tree) scanRecs(id disk.BlockID, fn func(rec) bool) bool {
	view := disk.MustView(t.dev, id)
	cnt := int(uint16(view[0]) | uint16(view[1])<<8)
	ok := true
	for i, off := 0, pageHeaderSize; i < cnt; i, off = i+1, off+recSize {
		if !fn(decodeRec(view, off)) {
			ok = false
			break
		}
	}
	t.dev.Release(id)
	return ok
}

// scanPoints is scanRecs restricted to the point payload.
func (t *Tree) scanPoints(id disk.BlockID, fn geom.Emit) bool {
	view := disk.MustView(t.dev, id)
	cnt := int(uint16(view[0]) | uint16(view[1])<<8)
	ok := true
	for i, off := 0, pageHeaderSize; i < cnt; i, off = i+1, off+recSize {
		p := geom.Point{
			X:  int64(le64(view[off:])),
			Y:  int64(le64(view[off+8:])),
			ID: le64(view[off+16:]),
		}
		if !fn(p) {
			ok = false
			break
		}
	}
	t.dev.Release(id)
	return ok
}

// writePointBlocks chunks pts into B-point pages preserving order and
// returns one chunkRef per page with the chunk's bounding coordinates.
func (t *Tree) writePointBlocks(pts []geom.Point) []chunkRef {
	var refs []chunkRef
	for i := 0; i < len(pts); i += t.cfg.B {
		j := i + t.cfg.B
		if j > len(pts) {
			j = len(pts)
		}
		chunk := pts[i:j]
		rs := make([]rec, len(chunk))
		bb := newBBox()
		for k, p := range chunk {
			rs[k] = rec{pt: p}
			bb.add(p)
		}
		refs = append(refs, chunkRef{
			id: t.writeRecBlock(rs), n: len(chunk),
			minX: bb.minX, maxX: bb.maxX, minY: bb.minY, maxY: bb.maxY,
		})
	}
	return refs
}

// readPoints reads a chunk page as points.
func (t *Tree) readPoints(id disk.BlockID) []geom.Point {
	rs := t.readRecBlock(id)
	pts := make([]geom.Point, len(rs))
	for i, r := range rs {
		pts[i] = r.pt
	}
	return pts
}

// freeChunks releases a chunk list.
func (t *Tree) freeChunks(refs []chunkRef) {
	for _, c := range refs {
		disk.MustFreeAt(t.dev, c.id)
	}
}

// --- little-endian helpers -------------------------------------------------

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLE64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putLE32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// --- bounding boxes ---------------------------------------------------------

type bbox struct {
	minX, maxX, minY, maxY int64
	valid                  bool
}

func newBBox() bbox {
	return bbox{minX: 1<<63 - 1, maxX: -1 << 63, minY: 1<<63 - 1, maxY: -1 << 63}
}

func (b *bbox) add(p geom.Point) {
	if p.X < b.minX {
		b.minX = p.X
	}
	if p.X > b.maxX {
		b.maxX = p.X
	}
	if p.Y < b.minY {
		b.minY = p.Y
	}
	if p.Y > b.maxY {
		b.maxY = p.Y
	}
	b.valid = true
}

func bboxOf(pts []geom.Point) bbox {
	bb := newBBox()
	for _, p := range pts {
		bb.add(p)
	}
	return bb
}

// meetsDiagonal reports whether the box contains a point of the line y = x,
// the condition under which a metablock can contain the corner of a query
// and therefore needs a corner structure.
func (b bbox) meetsDiagonal() bool {
	if !b.valid {
		return false
	}
	lo := b.minX
	if b.minY > lo {
		lo = b.minY
	}
	hi := b.maxX
	if b.maxY < hi {
		hi = b.maxY
	}
	return lo <= hi
}

// containsCorner reports whether the query corner (a, a) lies in the box.
func (b bbox) containsCorner(a int64) bool {
	return b.valid && b.minX <= a && a <= b.maxX && b.minY <= a && a <= b.maxY
}
