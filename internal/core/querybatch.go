package core

import (
	"sort"

	"ccidx/internal/geom"
)

// Batched diagonal corner queries: a sorted batch of query values descends
// the metablock tree in ONE shared traversal. The amortizations, layer by
// layer:
//
//   - every metablock's control blob on the union of search paths is read
//     and decoded once per batch (the batch is split across children and
//     each child is visited once with its sub-batch);
//   - every data page of a block organisation (vertical/horizontal
//     blockings, TS prefixes, corner-structure blocks, update blocks) is
//     scanned once per batch for the whole group of queries that need it,
//     with each record demultiplexed through the per-query offer funnels;
//   - update-block and TD consultations happen once per metablock per
//     batch instead of once per query.
//
// Correctness invariant: per metablock, each query is assigned exactly ONE
// organisation of the stored points (the same one reportStored would pick),
// so sharing a page scan can never double-report — and pages a query's
// sequential scan would have skipped contain no points satisfying its
// predicate (blockings are bound-ordered), so the offer funnel's predicate
// check makes over-scanning invisible to results. Per-query tombstone
// suppression and early emit-stop live in the per-query qstate exactly as
// in the sequential path; result multisets per query are identical, only
// the emission interleaving across queries differs.

// EmitBatch receives results of a batched query: qi is the position in the
// query batch of the query the point answers. Returning false stops the
// enumeration for that query only.
type EmitBatch func(qi int, p geom.Point) bool

// visitReq is one query's visit request at a metablock: its state plus
// whether the metablock's stored points still need reporting (false when a
// TS prefix already covered them, mirroring visit's reportStored).
type visitReq struct {
	st           *qstate
	reportStored bool
}

// batchChildReq routes query qi (an index into the current node's request
// slice) into a child visit; rep mirrors visitReq.reportStored.
type batchChildReq struct {
	qi  int
	rep bool
}

// nodeScratch holds the per-node scratch of a batched visit — flat
// classification and direct matrices, per-child routing lists, grouped-scan
// membership buffers. Pooled like ctrlFrames so steady-state batched
// queries allocate almost nothing per metablock visited.
type nodeScratch struct {
	classes []childClass // len(reqs) x len(children), row-major
	direct  []bool       // same shape; per-query direct-visit flags for TD
	rIV     []int        // per-query rightmost Type IV child, -1 if none

	mrGroups  [][]int           // per child: queries anchored at it (TS)
	childReqs [][]batchChildReq // per child: recursion requests
	repOnly   [][]int           // per child: stored-report-only queries
	vr        [][]visitReq      // per child: materialized recursion batches

	grpSts  []*qstate // transient group-membership buffer
	covered []*qstate // TS-covered members of one anchor group
	hGroup  []*qstate // reportStoredBatch: horizontal-blocking group
	vGroup  []*qstate // reportStoredBatch: vertical-blocking group
	cqs     []cornerQuery
	tdEmits []func(rec) bool
}

func (t *Tree) getScratch() *nodeScratch {
	if sc, ok := t.bscratch.Get().(*nodeScratch); ok {
		return sc
	}
	return &nodeScratch{}
}

func (t *Tree) putScratch(sc *nodeScratch) { t.bscratch.Put(sc) }

// intsFor returns dst resized to n elements, reusing capacity (contents
// unspecified; callers overwrite every element).
func intsFor(dst []int, n int) []int {
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]int, n)
}

// classesFor returns dst resized to n zeroed elements, reusing capacity.
func classesFor(dst []childClass, n int) []childClass {
	if cap(dst) >= n {
		dst = dst[:n]
		clear(dst)
		return dst
	}
	return make([]childClass, n)
}

// growLists returns dst resized to n empty sub-lists, keeping the backing
// capacity of each.
func growLists[T any](dst [][]T, n int) [][]T {
	if cap(dst) < n {
		nd := make([][]T, n)
		copy(nd, dst[:cap(dst)])
		dst = nd
	} else {
		dst = dst[:n]
	}
	for i := range dst {
		dst[i] = dst[i][:0]
	}
	return dst
}

// StabBatch is DiagonalQueryBatch under the interval reading, the batched
// form of Stab.
func (t *Tree) StabBatch(qs []int64, emit EmitBatch) { t.DiagonalQueryBatch(qs, emit) }

// DiagonalQueryBatch answers a batch of diagonal corner queries in one
// shared traversal; per query, the reported multiset is exactly what
// DiagonalQuery(as[qi], ...) reports. Like the sequential query it is a
// read-only path: batches may run concurrently with each other and with
// single queries as long as no mutation is in flight.
func (t *Tree) DiagonalQueryBatch(as []int64, emit EmitBatch) {
	if len(as) == 0 {
		return
	}
	sts := make([]qstate, len(as))
	reqs := make([]visitReq, len(as))
	for i := range as {
		st := &sts[i]
		st.a = as[i]
		qi := i
		st.emit = func(p geom.Point) bool { return emit(qi, p) }
		if t.deadCount > 0 {
			st.dead = t.dead
		}
		reqs[i] = visitReq{st: st, reportStored: true}
	}
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].st.a < reqs[j].st.a })

	f := t.getFrame()
	m := t.loadCtrlFrame(t.root, f)
	// The root's update block has no parent TD to report it: one scan for
	// the whole batch.
	t.scanUpd(m.upd, func(r rec) bool {
		for i := range reqs {
			reqs[i].st.offer(r.pt)
		}
		return true
	})
	t.visitBatchLoaded(f, reqs)
	t.putFrame(f)
}

// visitBatchLoaded processes one loaded metablock for a batch of requests
// (sorted ascending by query value): stored points for the requests that
// still need them, then the children.
func (t *Tree) visitBatchLoaded(f *ctrlFrame, reqs []visitReq) {
	sc := t.getScratch()
	grp := sc.grpSts[:0]
	for _, r := range reqs {
		if r.reportStored && !r.st.stopped {
			grp = append(grp, r.st)
		}
	}
	sc.grpSts = grp
	t.reportStoredBatch(&f.m, grp, sc)
	if len(f.m.children) > 0 {
		t.processChildrenBatch(f, reqs, sc)
	}
	t.putScratch(sc)
}

// reportStoredBatch reports m's stored points to every query in sts (sorted
// ascending by a), grouping the queries by the organisation reportStored
// would pick for them and scanning each organisation's pages once per
// group.
func (t *Tree) reportStoredBatch(m *metaCtrl, sts []*qstate, sc *nodeScratch) {
	if m.count == 0 || !m.bb.valid || len(sts) == 0 {
		return
	}
	hGroup := sc.hGroup[:0]
	vGroup := sc.vGroup[:0]
	cqs := sc.cqs[:0]
	for _, st := range sts {
		if st.stopped {
			continue
		}
		a := st.a
		if m.bb.minX > a || m.bb.maxY < a {
			continue
		}
		switch {
		case m.bb.minY >= a && m.bb.maxX <= a:
			// Type III: dump everything — the horizontal rule below never
			// stops for this query, so it degenerates to a full scan.
			hGroup = append(hGroup, st)
		case m.bb.minY >= a:
			// Type I: vertical blocking left of the corner column.
			vGroup = append(vGroup, st)
		case m.bb.maxX <= a:
			// Type IV: horizontal blocking top-down.
			hGroup = append(hGroup, st)
		default:
			// Type II: corner structure, or the ablation fallback.
			if m.corner != nil {
				st := st
				cqs = append(cqs, cornerQuery{a: a, emit: func(r rec) bool { return st.offer(r.pt) }})
			} else {
				vGroup = append(vGroup, st)
			}
		}
	}
	if len(hGroup) > 0 {
		t.scanHBatch(m.hblocks, hGroup)
	}
	if len(vGroup) > 0 {
		t.scanVBatch(m, vGroup)
	}
	if len(cqs) > 0 {
		t.queryCornerBatch(m.corner, cqs)
	}
	sc.hGroup = hGroup[:0]
	sc.vGroup = vGroup[:0]
	sc.cqs = cqs[:0]
}

// scanHBatch runs a grouped top-down scan of a horizontal (descending-y)
// blocking: a block is read once per batch while some member's sequential
// scan would still be on it (its line at or below the block's top, its
// partial block not yet passed), and every record is offered to every
// member — the offer predicate filters, and blocks a member's sequential
// scan skips hold no points above its line. Serves Type III dumps, Type IV
// scans and TS prefixes alike.
func (t *Tree) scanHBatch(blocks []chunkRef, grp []*qstate) {
	for _, st := range grp {
		st.scanDone = false
	}
	fn := func(p geom.Point) bool {
		for _, st := range grp {
			st.offer(p)
		}
		return true
	}
	for _, hb := range blocks {
		need := false
		for _, st := range grp {
			if !st.stopped && !st.scanDone && st.a <= hb.maxY {
				need = true
				break
			}
		}
		if !need {
			// maxY is non-increasing down the blocking: nobody needs the
			// deeper blocks either.
			break
		}
		t.scanPoints(hb.id, fn)
		for _, st := range grp {
			if hb.minY < st.a {
				st.scanDone = true
			}
		}
	}
}

// scanVBatch runs a grouped left-to-right scan of m's vertical blocking for
// Type I queries (every block up to the corner column) and corner-disabled
// Type II fallbacks (ditto, minus blocks entirely below their line).
func (t *Tree) scanVBatch(m *metaCtrl, grp []*qstate) {
	maxA := grp[len(grp)-1].a // grp sorted ascending by a
	fn := func(p geom.Point) bool {
		for _, st := range grp {
			st.offer(p)
		}
		return true
	}
	for _, vb := range m.vblocks {
		if vb.minX > maxA {
			break
		}
		need := false
		for _, st := range grp {
			if st.stopped || vb.minX > st.a {
				continue
			}
			if m.bb.minY >= st.a || vb.maxY >= st.a {
				need = true
				break
			}
		}
		if need {
			t.scanPoints(vb.id, fn)
		}
	}
}

// cornerQuery is one member of a batched corner-structure query: the query
// value and its emit funnel (which re-checks the full predicate, so shared
// scans can over-offer safely).
type cornerQuery struct {
	a    int64
	emit func(rec) bool
	done bool // emit stopped
	fin  bool // stage-one scan bookkeeping
}

// queryCornerBatch answers a batch of corner queries (sorted ascending by
// a) on one Lemma 3.1 structure. Queries resolving to the same star share
// the stage-one S* prefix reads and the stage-two strip blocks.
func (t *Tree) queryCornerBatch(c *cornerIdx, qs []cornerQuery) {
	if c == nil || len(c.vblocks) == 0 || len(qs) == 0 {
		return
	}
	star := 0 // advancing star cursor; qs sorted ascending by a
	for lo := 0; lo < len(qs); {
		for star < len(c.stars) && c.stars[star].value <= qs[lo].a {
			star++
		}
		si := star - 1
		hi := lo + 1
		for hi < len(qs) && (si+1 >= len(c.stars) || qs[hi].a < c.stars[si+1].value) {
			hi++
		}
		t.cornerBatchGroup(c, si, qs[lo:hi])
		lo = hi
	}
}

// cornerBatchGroup answers one same-star group of corner queries.
func (t *Tree) cornerBatchGroup(c *cornerIdx, si int, grp []cornerQuery) {
	maxA := grp[len(grp)-1].a
	if si < 0 {
		// Left of every star: only the vertical prefix can hold answers.
		fn := func(r rec) bool {
			for i := range grp {
				g := &grp[i]
				if !g.done && r.pt.X <= g.a && r.pt.Y >= g.a && !g.emit(r) {
					g.done = true
				}
			}
			return true
		}
		for _, vb := range c.vblocks {
			if vb.minX > maxA {
				break
			}
			t.scanRecs(vb.id, fn)
		}
		return
	}
	star := c.stars[si]
	s := star.value

	// Stage one: answers with x <= s, from S*(s) top-down — grouped exactly
	// like scanHBatch.
	oneFn := func(r rec) bool {
		for i := range grp {
			g := &grp[i]
			if !g.done && r.pt.Y >= g.a && !g.emit(r) {
				g.done = true
			}
		}
		return true
	}
	for _, hb := range star.blocks {
		need := false
		for i := range grp {
			g := &grp[i]
			if !g.done && !g.fin && g.a <= hb.maxY {
				need = true
				break
			}
		}
		if !need {
			break
		}
		t.scanRecs(hb.id, oneFn)
		for i := range grp {
			if hb.minY < grp[i].a {
				grp[i].fin = true
			}
		}
	}

	// Stage two: answers with s < x <= a, from the vertical blocking.
	twoFn := func(r rec) bool {
		for i := range grp {
			g := &grp[i]
			if !g.done && r.pt.X > s && r.pt.X <= g.a && r.pt.Y >= g.a && !g.emit(r) {
				g.done = true
			}
		}
		return true
	}
	start := sort.Search(len(c.vblocks), func(i int) bool { return c.vblocks[i].minX >= s })
	for i := start; i < len(c.vblocks); i++ {
		vb := c.vblocks[i]
		if vb.minX > maxA {
			break
		}
		if vb.maxX <= s {
			continue // entirely covered by stage one
		}
		t.scanRecs(vb.id, twoFn)
	}
}

// processChildrenBatch is the batched processChildren: per query the
// routing decisions (TS coverage, sibling classification, path descent,
// direct flags) are exactly the sequential ones, but every child is loaded
// once per batch with the union of its requests, TS prefixes and TD blocks
// are scanned once per group, and the TD corner query is batched.
func (t *Tree) processChildrenBatch(f *ctrlFrame, reqs []visitReq, sc *nodeScratch) {
	m := &f.m
	n := len(m.children)
	k := len(reqs)
	sc.classes = classesFor(sc.classes, k*n)
	sc.direct = boolsFor(sc.direct, k*n)
	sc.rIV = intsFor(sc.rIV, k)
	sc.mrGroups = growLists(sc.mrGroups, n)
	sc.childReqs = growLists(sc.childReqs, n)
	sc.repOnly = growLists(sc.repOnly, n)
	sc.vr = growLists(sc.vr, n)
	direct := sc.direct

	// 1. Classify every (query, child) pair; bucket queries by their
	// rightmost Type IV child (the TS anchor).
	for qi, r := range reqs {
		st := r.st
		sc.rIV[qi] = -1
		if st.stopped {
			continue
		}
		row := sc.classes[qi*n : qi*n+n]
		rIV := -1
		for i, c := range m.children {
			row[i] = classify(c, st.a)
			if row[i] == classStraddle {
				rIV = i
			}
		}
		sc.rIV[qi] = rIV
		if rIV >= 0 && !t.cfg.DisableTS {
			sc.mrGroups[rIV] = append(sc.mrGroups[rIV], qi)
		}
	}

	// 2. One ctrl load per distinct TS anchor: report the anchor's stored
	// points for its whole group, scan its TS prefix once for the covered
	// members, and route every member's siblings.
	for rv := 0; rv < n; rv++ {
		members := sc.mrGroups[rv]
		if len(members) == 0 {
			continue
		}
		mf := t.getFrame()
		mrCtrl := t.loadCtrlFrame(m.children[rv].ctrl, mf)
		grp := sc.grpSts[:0]
		for _, qi := range members {
			direct[qi*n+rv] = true
			grp = append(grp, reqs[qi].st)
		}
		sc.grpSts = grp
		t.reportStoredBatch(mrCtrl, grp, sc)

		totalLeft := 0
		for i := 0; i < rv; i++ {
			totalLeft += m.children[i].storedCount
		}
		// Capture the TS scalars: covers is also consulted after the anchor
		// frame is returned to the pool.
		tsCount, tsBottom := mrCtrl.ts.count, mrCtrl.ts.bottomY
		covers := func(st *qstate) bool {
			return totalLeft == 0 ||
				(tsCount > 0 && (tsBottom < st.a || tsCount == totalLeft))
		}
		covered := sc.covered[:0]
		for _, qi := range members {
			if st := reqs[qi].st; !st.stopped && covers(st) {
				covered = append(covered, st)
			}
		}
		sc.covered = covered
		if len(covered) > 0 {
			// One TS pass reports every left-sibling stored point inside the
			// covered members' queries.
			t.scanHBatch(mrCtrl.ts.blocks, covered)
		}
		t.putFrame(mf)

		for _, qi := range members {
			st := reqs[qi].st
			if st.stopped {
				continue
			}
			row := sc.classes[qi*n : qi*n+n]
			if covers(st) {
				// Fully-inside left siblings still carry deeper answers:
				// recurse without re-reporting their stored points.
				for i := 0; i < rv; i++ {
					if row[i] == classInside {
						sc.childReqs[i] = append(sc.childReqs[i], batchChildReq{qi, false})
					}
				}
			} else {
				// TS guarantees at least B^2 sibling answers: examine each
				// left sibling individually.
				for i := 0; i < rv; i++ {
					switch row[i] {
					case classInside:
						direct[qi*n+i] = true
						sc.childReqs[i] = append(sc.childReqs[i], batchChildReq{qi, true})
					case classStraddle:
						direct[qi*n+i] = true
						sc.repOnly[i] = append(sc.repOnly[i], qi)
					}
				}
			}
			// Children right of the anchor but left of the path.
			for i := rv + 1; i < n; i++ {
				if row[i] == classPath {
					break
				}
				switch row[i] {
				case classInside:
					direct[qi*n+i] = true
					sc.childReqs[i] = append(sc.childReqs[i], batchChildReq{qi, true})
				case classStraddle:
					direct[qi*n+i] = true
					sc.repOnly[i] = append(sc.repOnly[i], qi)
				}
			}
		}
	}

	// 3. Queries without a TS anchor (no Type IV children, or TS disabled):
	// every non-path child individually.
	for qi, r := range reqs {
		st := r.st
		if st.stopped || (sc.rIV[qi] >= 0 && !t.cfg.DisableTS) {
			continue
		}
		row := sc.classes[qi*n : qi*n+n]
		for i := 0; i < n; i++ {
			switch row[i] {
			case classInside:
				direct[qi*n+i] = true
				sc.childReqs[i] = append(sc.childReqs[i], batchChildReq{qi, true})
			case classStraddle:
				direct[qi*n+i] = true
				sc.repOnly[i] = append(sc.repOnly[i], qi)
			}
		}
	}

	// 4. Path descent.
	for qi, r := range reqs {
		st := r.st
		if st.stopped {
			continue
		}
		row := sc.classes[qi*n : qi*n+n]
		for i := 0; i < n; i++ {
			if row[i] == classPath {
				direct[qi*n+i] = true
				sc.childReqs[i] = append(sc.childReqs[i], batchChildReq{qi, true})
			}
		}
	}

	// 5. One load + one recursive batch per child with any requests. The
	// routing lists were appended across phases, so restore query order
	// first (reqs is sorted by a; qi order == a order).
	for i := 0; i < n; i++ {
		creqs := sc.childReqs[i]
		rep := sc.repOnly[i]
		if len(creqs) == 0 && len(rep) == 0 {
			continue
		}
		sort.Slice(creqs, func(x, y int) bool { return creqs[x].qi < creqs[y].qi })
		sort.Ints(rep)
		cf := t.getFrame()
		cm := t.loadCtrlFrame(m.children[i].ctrl, cf)
		// Merge the stored-report audiences (report-only queries plus
		// recursing queries that still need the stored points) in qi order.
		grp := sc.grpSts[:0]
		ri, ci := 0, 0
		for ri < len(rep) || ci < len(creqs) {
			switch {
			case ci >= len(creqs) || (ri < len(rep) && rep[ri] < creqs[ci].qi):
				grp = append(grp, reqs[rep[ri]].st)
				ri++
			default:
				if creqs[ci].rep {
					grp = append(grp, reqs[creqs[ci].qi].st)
				}
				ci++
			}
		}
		sc.grpSts = grp
		t.reportStoredBatch(cm, grp, sc)
		if len(cm.children) > 0 && len(creqs) > 0 {
			vr := sc.vr[i][:0]
			for _, cr := range creqs {
				if st := reqs[cr.qi].st; !st.stopped {
					vr = append(vr, visitReq{st: st, reportStored: cr.rep})
				}
			}
			sc.vr[i] = vr
			if len(vr) > 0 {
				csc := t.getScratch()
				t.processChildrenBatch(cf, vr, csc)
				t.putScratch(csc)
			}
		}
		t.putFrame(cf)
	}

	// 6. TD consultation (Lemma 3.5), once per node for the whole batch:
	// the TD corner query is batched like any corner structure and the TD
	// update block is scanned once, each record demultiplexed through the
	// per-query direct-visit filters.
	if m.td != nil {
		cqs := sc.cqs[:0]
		tdEmits := sc.tdEmits[:0]
		for qi, r := range reqs {
			st := r.st
			if st.stopped {
				continue
			}
			row := direct[qi*n : qi*n+n]
			fn := func(rc rec) bool {
				slot := tdSlot(rc.aux)
				if slot < len(row) && row[slot] && !tdInU(rc.aux) {
					return true // already reported from the child's stored set
				}
				return st.offer(rc.pt)
			}
			tdEmits = append(tdEmits, fn)
			if m.td.corner != nil {
				cqs = append(cqs, cornerQuery{a: st.a, emit: fn})
			}
		}
		if m.td.corner != nil && len(cqs) > 0 {
			t.queryCornerBatch(m.td.corner, cqs)
		}
		if len(tdEmits) > 0 {
			t.scanUpd(m.td.upd, func(rc rec) bool {
				for _, fn := range tdEmits {
					fn(rc)
				}
				return true
			})
		}
		sc.cqs = cqs[:0]
		sc.tdEmits = tdEmits[:0]
	}
}
