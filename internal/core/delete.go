package core

import "ccidx/internal/geom"

// Weak (tombstone) deletion + global rebuilding.
//
// The metablock tree is semi-dynamic — deletion is the paper's stated open
// problem — so deletes follow the standard update-maintenance scheme of the
// schema-level indexing literature (Blume & Scherp, DEXA 2020; Riveros et
// al.): Delete records a tombstone against the point, queries filter
// tombstoned copies at the emit funnel (zero extra block I/Os: the borrowed-
// view scans are untouched and the directory lives in memory), and once the
// tombstones outgrow the live set by the alpha threshold the whole tree is
// rebuilt from its live points with the static Theorem 3.2 construction.
//
// Cost: the tombstone itself is free in the I/O model; a rebuild costs the
// O(n/B) page writes of the static build and is triggered at most once per
// alpha*n deletes, so deletion is amortized O(1/B * 1/alpha) page writes —
// well inside the paper's O(log_B n + (log_B n)^2/B) insert bound. Queries
// keep their O(log_B n + t/B) bound: the structure a query walks is always a
// legal metablock tree over the physical (live + dead) multiset, whose size
// is at most (1 + alpha) times the live size.

// rebuildAlphaNum/Den encode the alpha threshold: a global rebuild runs as
// soon as deadCount * rebuildAlphaDen > n * rebuildAlphaNum, i.e. once the
// dead fraction exceeds alpha = 1/2 of the live count. The physical multiset
// is therefore never more than 1.5x the live set.
const (
	rebuildAlphaNum = 1
	rebuildAlphaDen = 2
)

// Delete weakly removes one copy of p, returning whether a live copy was
// present. The copy is tombstoned — queries stop reporting it immediately —
// and physically discarded by the next global rebuild, which runs once
// tombstones exceed alpha times the live count. Amortized O(1) I/Os plus the
// rebuild share; see the package comment above.
func (t *Tree) Delete(p geom.Point) bool {
	if t.mult[p]-t.dead[p] <= 0 {
		return false
	}
	if t.dead == nil {
		t.dead = make(map[geom.Point]int)
	}
	t.dead[p]++
	t.deadCount++
	t.n--
	if t.deadCount*rebuildAlphaDen > t.n*rebuildAlphaNum {
		t.globalRebuild()
	}
	return true
}

// DeadCount returns the number of tombstoned copies currently awaiting a
// global rebuild.
func (t *Tree) DeadCount() int { return t.deadCount }

// Rebuilds returns how many delete-triggered global rebuilds have run.
func (t *Tree) Rebuilds() int { return t.rebuilds }

// filterLive drops tombstoned copies from pts in place, reconciling the
// mult/dead directories for every copy dropped.
func (t *Tree) filterLive(pts []geom.Point) []geom.Point {
	if t.deadCount == 0 {
		return pts
	}
	out := pts[:0]
	for _, p := range pts {
		if t.dead[p] > 0 {
			t.dead[p]--
			if t.dead[p] == 0 {
				delete(t.dead, p)
			}
			t.deadCount--
			if t.mult[p]--; t.mult[p] == 0 {
				delete(t.mult, p)
			}
			continue
		}
		out = append(out, p)
	}
	return out
}

// globalRebuild discards the whole structure and rebuilds it over the live
// points with the static construction of Theorem 3.2, resetting the
// tombstone state. O((n/B) log_B n) in the paper's accounting (O(n/B) page
// writes here, where sorting is CPU), amortized over the alpha*n deletes
// that triggered it.
func (t *Tree) globalRebuild() {
	pts := t.collectSubtree(t.root)
	pts = t.filterLive(pts)
	if t.deadCount != 0 {
		panic("core: tombstones survived a global rebuild")
	}
	if len(pts) != t.n {
		panic("core: live point count drifted from n across a global rebuild")
	}
	t.freeSubtree(t.root)
	geom.SortByX(pts)
	t.root = t.buildMetablock(pts, true)
	t.rebuilds++
}
