package core

import (
	"ccidx/internal/disk"
)

// Control information for a metablock (chunk lists, child table, TS index,
// corner index, ...) is variable length but O(B) bytes, so it occupies a
// constant number of disk blocks, exactly as the paper assumes ("we will use
// a constant number of disk blocks per metablock to store control
// information", proof of Theorem 3.2). We store it as a chained blob: each
// page holds [next blockID | length u16 | payload]. Reading or writing a
// blob of m pages counts m I/Os.

const blobHeader = 8 + 2

// blobCapacity is the payload capacity of one blob page.
func (t *Tree) blobCapacity() int { return t.cfg.PageSize() - blobHeader }

// writeBlob stores data as a fresh page chain and returns the head id.
func (t *Tree) writeBlob(data []byte) disk.BlockID {
	capPerPage := t.blobCapacity()
	// Build the chain back to front so each page knows its successor.
	var next disk.BlockID = disk.NilBlock
	// Number of pages (at least one, even for empty blobs).
	pages := (len(data) + capPerPage - 1) / capPerPage
	if pages == 0 {
		pages = 1
	}
	for i := pages - 1; i >= 0; i-- {
		lo := i * capPerPage
		hi := lo + capPerPage
		if hi > len(data) {
			hi = len(data)
		}
		chunk := data[lo:hi]
		buf := t.wpage()
		putLE64(buf, uint64(int64(next)))
		buf[8] = byte(len(chunk))
		buf[9] = byte(len(chunk) >> 8)
		copy(buf[blobHeader:], chunk)
		id := t.dev.Alloc()
		disk.MustWriteAt(t.dev, id, buf)
		next = id
	}
	return next
}

// appendBlob reads a page chain through zero-copy views, appending the
// payload to dst (reusing its capacity) and returning the result. Each
// chain page costs one I/O, exactly as before.
func (t *Tree) appendBlob(dst []byte, head disk.BlockID) []byte {
	for id := head; id != disk.NilBlock; {
		view := disk.MustView(t.dev, id)
		next := disk.BlockID(int64(le64(view)))
		n := int(uint16(view[8]) | uint16(view[9])<<8)
		dst = append(dst, view[blobHeader:blobHeader+n]...)
		t.dev.Release(id)
		id = next
	}
	return dst
}

// readBlob reads a page chain back into a fresh byte slice.
func (t *Tree) readBlob(head disk.BlockID) []byte {
	return t.appendBlob(nil, head)
}

// freeBlob releases a page chain.
func (t *Tree) freeBlob(head disk.BlockID) {
	for id := head; id != disk.NilBlock; {
		view := disk.MustView(t.dev, id)
		next := disk.BlockID(int64(le64(view)))
		t.dev.Release(id)
		disk.MustFreeAt(t.dev, id)
		id = next
	}
}

// rewriteBlob rewrites a chain in place, keeping the head id stable (parents
// reference metablocks by their control blob head, so the head must never
// move). Returns the head. When old is NilBlock a fresh chain is written.
func (t *Tree) rewriteBlob(old disk.BlockID, data []byte) disk.BlockID {
	if old == disk.NilBlock {
		return t.writeBlob(data)
	}
	// Collect the existing chain ids.
	var ids []disk.BlockID
	for id := old; id != disk.NilBlock; {
		view := disk.MustView(t.dev, id)
		ids = append(ids, id)
		next := disk.BlockID(int64(le64(view)))
		t.dev.Release(id)
		id = next
	}
	capPerPage := t.blobCapacity()
	need := (len(data) + capPerPage - 1) / capPerPage
	if need == 0 {
		need = 1
	}
	for len(ids) < need {
		ids = append(ids, t.dev.Alloc())
	}
	for len(ids) > need {
		disk.MustFreeAt(t.dev, ids[len(ids)-1])
		ids = ids[:len(ids)-1]
	}
	for i := 0; i < need; i++ {
		lo := i * capPerPage
		hi := lo + capPerPage
		if hi > len(data) {
			hi = len(data)
		}
		chunk := data[lo:hi]
		page := t.wpage()
		var next disk.BlockID = disk.NilBlock
		if i+1 < need {
			next = ids[i+1]
		}
		putLE64(page, uint64(int64(next)))
		page[8] = byte(len(chunk))
		page[9] = byte(len(chunk) >> 8)
		copy(page[blobHeader:], chunk)
		disk.MustWriteAt(t.dev, ids[i], page)
	}
	return ids[0]
}
