package core

import (
	"ccidx/internal/disk"
	"ccidx/internal/geom"
)

// Diagonal corner query (Theorem 3.2, procedure diagonal-query of Fig 15,
// augmented per Lemma 3.5 for the semi-dynamic structure).
//
// A metablock falls into one of the four types of Fig 16 according to how
// its stored bounding box interacts with the query boundary (corner at
// (a,a), region x <= a, y >= a):
//
//	Type I   crossed by the vertical side only  -> vertical-blocking scan
//	Type II  contains the corner                -> corner structure
//	Type III entirely inside                    -> dump all blocks
//	Type IV  crossed by the horizontal side only-> horizontal scan, top down
//
// Children left of the descent path are handled with the TS structures: if
// TS(Mr) of the rightmost Type IV child reaches below the query bottom, the
// sibling stored points inside the query are exactly the TS prefix above it
// (read top-down, one pass); otherwise the siblings are guaranteed to hold
// at least B^2 answers and are examined individually, the per-sibling
// wasted block amortized against that output (Fig 17).
//
// Dynamic state is folded in per Lemma 3.5: every metablock's update block
// is reported through the TD corner structure of its parent (which also
// covers points merged into a child's stored set after the last TS
// rebuild), so TS reads never miss buffered points and direct visits never
// double-report them. The root's own update block is scanned directly.

// DiagonalQuery reports every stored point p with p.X <= a and p.Y >= a.
// Enumeration stops early if emit returns false.
// Cost: O(log_B n + t/B) I/Os (Theorem 3.2 / Lemma 3.5).
func (t *Tree) DiagonalQuery(a int64, emit geom.Emit) {
	st := &qstate{a: a, emit: emit}
	m := t.loadCtrl(t.root)
	// The root's update block has no parent TD to report it.
	for _, r := range t.updRecs(m.upd) {
		if !st.offer(r.pt) {
			return
		}
	}
	t.visitLoaded(t.root, m, st, true)
}

// Stab is DiagonalQuery under the interval reading: report every point
// (lo, hi) with lo <= q <= hi (Proposition 2.2).
func (t *Tree) Stab(q int64, emit geom.Emit) { t.DiagonalQuery(q, emit) }

type qstate struct {
	a       int64
	emit    geom.Emit
	stopped bool
}

// offer forwards a point if it satisfies the query; returns false when
// enumeration must stop.
func (st *qstate) offer(p geom.Point) bool {
	if st.stopped {
		return false
	}
	if p.X <= st.a && p.Y >= st.a {
		if !st.emit(p) {
			st.stopped = true
			return false
		}
	}
	return true
}

// visit loads and processes one metablock. reportStored is false when the
// metablock's stored points were already reported from a TS structure.
func (t *Tree) visit(id disk.BlockID, st *qstate, reportStored bool) {
	if st.stopped {
		return
	}
	m := t.loadCtrl(id)
	t.visitLoaded(id, m, st, reportStored)
}

func (t *Tree) visitLoaded(_ disk.BlockID, m *metaCtrl, st *qstate, reportStored bool) {
	if st.stopped {
		return
	}
	if reportStored {
		t.reportStored(m, st)
		if st.stopped {
			return
		}
	}
	if len(m.children) == 0 {
		return
	}
	t.processChildren(m, st)
}

// reportStored emits m's stored points that lie inside the query, choosing
// the organisation dictated by the metablock's type.
func (t *Tree) reportStored(m *metaCtrl, st *qstate) {
	a := st.a
	if m.count == 0 || !m.bb.valid || m.bb.minX > a || m.bb.maxY < a {
		return
	}
	switch {
	case m.bb.minY >= a && m.bb.maxX <= a:
		// Type III: entirely inside; dump everything.
		for _, hb := range m.hblocks {
			for _, p := range t.readPoints(hb.id) {
				if !st.offer(p) {
					return
				}
			}
		}
	case m.bb.minY >= a:
		// Type I: all stored points are above the query line; scan the
		// vertical blocking left to right, at most one partial block.
		for _, vb := range m.vblocks {
			if vb.minX > a {
				break
			}
			for _, p := range t.readPoints(vb.id) {
				if !st.offer(p) {
					return
				}
			}
		}
	case m.bb.maxX <= a:
		// Type IV: all stored points are left of the corner; scan the
		// horizontal blocking top-down, at most one partial block.
		for _, hb := range m.hblocks {
			if hb.maxY < a {
				break
			}
			for _, p := range t.readPoints(hb.id) {
				if !st.offer(p) {
					return
				}
			}
			if hb.minY < a {
				break
			}
		}
	default:
		// Type II: the box straddles both query sides, so it contains the
		// corner (a,a) and carries a corner structure (Lemma 3.1) unless
		// corner structures are disabled for ablation.
		if m.corner != nil {
			t.queryCorner(m.corner, a, func(r rec) bool { return st.offer(r.pt) })
			return
		}
		// Ablation fallback: vertical scan with up to Theta(B) wasted
		// blocks (every block can straddle y = a).
		for _, vb := range m.vblocks {
			if vb.minX > a {
				break
			}
			if vb.maxY < a {
				continue
			}
			for _, p := range t.readPoints(vb.id) {
				if !st.offer(p) {
					return
				}
			}
		}
	}
}

// childClass is the Fig 16 classification of a child relative to the query.
type childClass int

const (
	classSkip     childClass = iota // subtree entirely right of or below the query
	classPath                       // x-partition contains the corner column
	classInside                     // stored box entirely inside (Type III)
	classStraddle                   // stored box crossed by the bottom (Type IV)
)

func classify(c childRef, a int64) childClass {
	if c.xlo > a {
		return classSkip
	}
	if a < c.xhi { // xlo <= a < xhi
		return classPath
	}
	// Entirely left of the corner column.
	if !c.bb.valid || c.bb.maxY < a {
		// Stored below the line; descendants are lower still (their points
		// fell past this child when its stored minimum was already >= the
		// current one), and buffered points are covered by this node's TD.
		return classSkip
	}
	if c.bb.minY >= a {
		return classInside
	}
	return classStraddle
}

// processChildren implements the per-level sibling handling of Theorem 3.2
// plus the TD consultation of Lemma 3.5.
func (t *Tree) processChildren(m *metaCtrl, st *qstate) {
	a := st.a
	classes := make([]childClass, len(m.children))
	rightmostIV := -1
	for i, c := range m.children {
		classes[i] = classify(c, a)
		if classes[i] == classStraddle {
			rightmostIV = i
		}
	}

	// direct[i] records that child i's stored points are reported by a
	// direct visit (so TD must only add its buffered points); TS-covered
	// and skipped children get their recent arrivals from TD instead.
	direct := make([]bool, len(m.children))

	// tsCovered[i] marks left siblings whose stored points came from TS.
	tsCovered := make([]bool, len(m.children))

	if rightmostIV >= 0 && !t.cfg.DisableTS {
		mr := m.children[rightmostIV]
		mrCtrl := t.loadCtrl(mr.ctrl)
		// Report Mr itself directly (one partial block at most).
		direct[rightmostIV] = true
		t.reportStored(mrCtrl, st)
		if st.stopped {
			return
		}
		// Decide how to treat Mr's left siblings using TS(Mr).
		totalLeft := 0
		for i := 0; i < rightmostIV; i++ {
			totalLeft += m.children[i].storedCount
		}
		covers := totalLeft == 0 ||
			(mrCtrl.ts.count > 0 && (mrCtrl.ts.bottomY < a || mrCtrl.ts.count == totalLeft))
		if covers {
			// One pass over TS top-down reports every left-sibling stored
			// point inside the query (left siblings lie entirely left of
			// the corner, so only the y filter applies).
			for _, hb := range mrCtrl.ts.blocks {
				if hb.maxY < a {
					break
				}
				for _, p := range t.readPoints(hb.id) {
					if p.Y >= a {
						if !st.offer(p) {
							return
						}
					}
				}
				if hb.minY < a {
					break
				}
			}
			for i := 0; i < rightmostIV; i++ {
				tsCovered[i] = true
			}
			// Fully-inside left siblings still carry deeper answers:
			// recurse without re-reporting their stored points.
			for i := 0; i < rightmostIV; i++ {
				if classes[i] == classInside {
					t.visit(m.children[i].ctrl, st, false)
					if st.stopped {
						return
					}
				}
			}
		} else {
			// TS guarantees at least B^2 sibling answers: examine each
			// sibling individually, the waste amortized against them.
			for i := 0; i < rightmostIV; i++ {
				t.processFullChild(m.children[i], classes[i], direct, i, st)
				if st.stopped {
					return
				}
			}
		}
		// Children right of Mr but left of the path (inside or skip only).
		for i := rightmostIV + 1; i < len(m.children); i++ {
			if classes[i] == classPath {
				break
			}
			t.processFullChild(m.children[i], classes[i], direct, i, st)
			if st.stopped {
				return
			}
		}
	} else {
		// No Type IV children (or TS disabled): process every non-path
		// child individually.
		for i, c := range m.children {
			if classes[i] == classPath {
				continue
			}
			t.processFullChild(c, classes[i], direct, i, st)
			if st.stopped {
				return
			}
		}
	}

	// Descend the path.
	for i, c := range m.children {
		if classes[i] == classPath {
			direct[i] = true
			t.visit(c.ctrl, st, true)
			if st.stopped {
				return
			}
		}
	}

	// TD consultation (Lemma 3.5): report buffered and recently merged
	// points of the children. For directly visited children only their
	// still-buffered points are new; for everything else the whole TD entry
	// applies.
	if m.td != nil {
		emitTD := func(r rec) bool {
			slot := tdSlot(r.aux)
			if slot < len(direct) && direct[slot] && !tdInU(r.aux) {
				return true // already reported from the child's stored set
			}
			return st.offer(r.pt)
		}
		if m.td.corner != nil {
			if !t.queryCorner(m.td.corner, a, emitTD) {
				return
			}
		}
		for _, r := range t.updRecs(m.td.upd) {
			if !emitTD(r) {
				return
			}
		}
	}
}

// processFullChild handles one fully-left child individually: inside
// children are visited (their whole stored set is inside the query);
// straddling children get a horizontal top-down scan; skipped children cost
// nothing.
func (t *Tree) processFullChild(c childRef, cl childClass, direct []bool, idx int, st *qstate) {
	switch cl {
	case classInside:
		direct[idx] = true
		t.visit(c.ctrl, st, true)
	case classStraddle:
		direct[idx] = true
		cm := t.loadCtrl(c.ctrl)
		t.reportStored(cm, st)
		// Descendants of a straddling child lie below the query line.
	case classSkip:
		// Nothing: stored and descendants below the line or right of the
		// corner; buffered arrivals are covered by the parent's TD.
	}
}
