package core

import (
	"ccidx/internal/disk"
	"ccidx/internal/geom"
)

// Diagonal corner query (Theorem 3.2, procedure diagonal-query of Fig 15,
// augmented per Lemma 3.5 for the semi-dynamic structure).
//
// A metablock falls into one of the four types of Fig 16 according to how
// its stored bounding box interacts with the query boundary (corner at
// (a,a), region x <= a, y >= a):
//
//	Type I   crossed by the vertical side only  -> vertical-blocking scan
//	Type II  contains the corner                -> corner structure
//	Type III entirely inside                    -> dump all blocks
//	Type IV  crossed by the horizontal side only-> horizontal scan, top down
//
// Children left of the descent path are handled with the TS structures: if
// TS(Mr) of the rightmost Type IV child reaches below the query bottom, the
// sibling stored points inside the query are exactly the TS prefix above it
// (read top-down, one pass); otherwise the siblings are guaranteed to hold
// at least B^2 answers and are examined individually, the per-sibling
// wasted block amortized against that output (Fig 17).
//
// Dynamic state is folded in per Lemma 3.5: every metablock's update block
// is reported through the TD corner structure of its parent (which also
// covers points merged into a child's stored set after the last TS
// rebuild), so TS reads never miss buffered points and direct visits never
// double-report them. The root's own update block is scanned directly.

// DiagonalQuery reports every stored point p with p.X <= a and p.Y >= a.
// Enumeration stops early if emit returns false.
// Cost: O(log_B n + t/B) I/Os (Theorem 3.2 / Lemma 3.5).
//
// The query path reads pages exclusively through zero-copy views and
// decodes control blobs into recycled frames, so a steady-state query
// performs only a handful of small allocations regardless of answer size.
func (t *Tree) DiagonalQuery(a int64, emit geom.Emit) {
	st := &qstate{a: a, emit: emit}
	if t.deadCount > 0 {
		st.dead = t.dead
	}
	st.offerFn = st.offer
	st.offerRec = func(r rec) bool { return st.offer(r.pt) }
	st.offerYFn = func(p geom.Point) bool {
		if p.Y >= st.a {
			return st.offer(p)
		}
		return true
	}
	f := t.getFrame()
	m := t.loadCtrlFrame(t.root, f)
	// The root's update block has no parent TD to report it.
	if t.scanUpd(m.upd, st.offerRec) {
		t.visitLoaded(f, st, true)
	}
	t.putFrame(f)
}

// Stab is DiagonalQuery under the interval reading: report every point
// (lo, hi) with lo <= q <= hi (Proposition 2.2).
func (t *Tree) Stab(q int64, emit geom.Emit) { t.DiagonalQuery(q, emit) }

type qstate struct {
	a       int64
	emit    geom.Emit
	stopped bool

	// dead is the tree's tombstone directory, nil when no weak deletes are
	// pending (the common case: the filter then costs one nil check).
	// suppressed counts, per point, the copies this query has already hidden,
	// so a point with both live and dead copies still reports its live ones.
	dead       map[geom.Point]int
	suppressed map[geom.Point]int

	// offerFn/offerRec/offerYFn are the bound forms of offer, built once
	// per query so hot scan loops don't materialize a new closure per page.
	// offerYFn additionally filters to p.Y >= a (the TS-prefix scan).
	offerFn  geom.Emit
	offerRec func(rec) bool
	offerYFn geom.Emit

	// scanDone is grouped-scan bookkeeping of the batched query path
	// (querybatch.go): within one shared top-down blocking scan it records
	// that this query's sequential scan would already have stopped. Unused
	// by single-query paths.
	scanDone bool
}

// offer forwards a point if it satisfies the query; returns false when
// enumeration must stop. Tombstoned copies are filtered here — the single
// funnel every organisation (blockings, corner, TS, TD) reports through —
// so weak deletes cost queries no extra block reads.
func (st *qstate) offer(p geom.Point) bool {
	if st.stopped {
		return false
	}
	if p.X <= st.a && p.Y >= st.a {
		if st.dead != nil {
			if d := st.dead[p]; d > 0 {
				if st.suppressed == nil {
					st.suppressed = make(map[geom.Point]int)
				}
				if st.suppressed[p] < d {
					st.suppressed[p]++
					return true
				}
			}
		}
		if !st.emit(p) {
			st.stopped = true
			return false
		}
	}
	return true
}

// visit loads and processes one metablock. reportStored is false when the
// metablock's stored points were already reported from a TS structure.
func (t *Tree) visit(id disk.BlockID, st *qstate, reportStored bool) {
	if st.stopped {
		return
	}
	f := t.getFrame()
	t.loadCtrlFrame(id, f)
	t.visitLoaded(f, st, reportStored)
	t.putFrame(f)
}

func (t *Tree) visitLoaded(f *ctrlFrame, st *qstate, reportStored bool) {
	if st.stopped {
		return
	}
	m := &f.m
	if reportStored {
		t.reportStored(m, st)
		if st.stopped {
			return
		}
	}
	if len(m.children) == 0 {
		return
	}
	t.processChildren(f, st)
}

// reportStored emits m's stored points that lie inside the query, choosing
// the organisation dictated by the metablock's type.
func (t *Tree) reportStored(m *metaCtrl, st *qstate) {
	a := st.a
	if m.count == 0 || !m.bb.valid || m.bb.minX > a || m.bb.maxY < a {
		return
	}
	switch {
	case m.bb.minY >= a && m.bb.maxX <= a:
		// Type III: entirely inside; dump everything.
		for _, hb := range m.hblocks {
			if !t.scanPoints(hb.id, st.offerFn) {
				return
			}
		}
	case m.bb.minY >= a:
		// Type I: all stored points are above the query line; scan the
		// vertical blocking left to right, at most one partial block.
		for _, vb := range m.vblocks {
			if vb.minX > a {
				break
			}
			if !t.scanPoints(vb.id, st.offerFn) {
				return
			}
		}
	case m.bb.maxX <= a:
		// Type IV: all stored points are left of the corner; scan the
		// horizontal blocking top-down, at most one partial block.
		for _, hb := range m.hblocks {
			if hb.maxY < a {
				break
			}
			if !t.scanPoints(hb.id, st.offerFn) {
				return
			}
			if hb.minY < a {
				break
			}
		}
	default:
		// Type II: the box straddles both query sides, so it contains the
		// corner (a,a) and carries a corner structure (Lemma 3.1) unless
		// corner structures are disabled for ablation.
		if m.corner != nil {
			t.queryCorner(m.corner, a, st.offerRec)
			return
		}
		// Ablation fallback: vertical scan with up to Theta(B) wasted
		// blocks (every block can straddle y = a).
		for _, vb := range m.vblocks {
			if vb.minX > a {
				break
			}
			if vb.maxY < a {
				continue
			}
			if !t.scanPoints(vb.id, st.offerFn) {
				return
			}
		}
	}
}

// childClass is the Fig 16 classification of a child relative to the query.
type childClass int

const (
	classSkip     childClass = iota // subtree entirely right of or below the query
	classPath                       // x-partition contains the corner column
	classInside                     // stored box entirely inside (Type III)
	classStraddle                   // stored box crossed by the bottom (Type IV)
)

func classify(c childRef, a int64) childClass {
	if c.xlo > a {
		return classSkip
	}
	if a < c.xhi { // xlo <= a < xhi
		return classPath
	}
	// Entirely left of the corner column.
	if !c.bb.valid || c.bb.maxY < a {
		// Stored below the line; descendants are lower still (their points
		// fell past this child when its stored minimum was already >= the
		// current one), and buffered points are covered by this node's TD.
		return classSkip
	}
	if c.bb.minY >= a {
		return classInside
	}
	return classStraddle
}

// boolsFor returns dst resized to n elements, zeroed, reusing capacity.
func boolsFor(dst []bool, n int) []bool {
	if cap(dst) >= n {
		dst = dst[:n]
		clear(dst)
		return dst
	}
	return make([]bool, n)
}

// processChildren implements the per-level sibling handling of Theorem 3.2
// plus the TD consultation of Lemma 3.5. The caller's frame f (holding the
// decoded ctrl of the node being processed) also carries the per-node
// classification scratch, which stays valid across recursion into children
// because each nested visit uses its own frame.
func (t *Tree) processChildren(f *ctrlFrame, st *qstate) {
	m := &f.m
	a := st.a
	f.classes = f.classes[:0]
	if cap(f.classes) < len(m.children) {
		f.classes = make([]childClass, len(m.children))
	} else {
		f.classes = f.classes[:len(m.children)]
	}
	classes := f.classes
	rightmostIV := -1
	for i, c := range m.children {
		classes[i] = classify(c, a)
		if classes[i] == classStraddle {
			rightmostIV = i
		}
	}

	// direct[i] records that child i's stored points are reported by a
	// direct visit (so TD must only add its buffered points); TS-covered
	// and skipped children get their recent arrivals from TD instead.
	f.direct = boolsFor(f.direct, len(m.children))
	direct := f.direct

	// tsCovered[i] marks left siblings whose stored points came from TS.
	f.tsCovered = boolsFor(f.tsCovered, len(m.children))
	tsCovered := f.tsCovered

	if rightmostIV >= 0 && !t.cfg.DisableTS {
		mr := m.children[rightmostIV]
		mf := t.getFrame()
		defer t.putFrame(mf)
		mrCtrl := t.loadCtrlFrame(mr.ctrl, mf)
		// Report Mr itself directly (one partial block at most).
		direct[rightmostIV] = true
		t.reportStored(mrCtrl, st)
		if st.stopped {
			return
		}
		// Decide how to treat Mr's left siblings using TS(Mr).
		totalLeft := 0
		for i := 0; i < rightmostIV; i++ {
			totalLeft += m.children[i].storedCount
		}
		covers := totalLeft == 0 ||
			(mrCtrl.ts.count > 0 && (mrCtrl.ts.bottomY < a || mrCtrl.ts.count == totalLeft))
		if covers {
			// One pass over TS top-down reports every left-sibling stored
			// point inside the query (left siblings lie entirely left of
			// the corner, so only the y filter applies).
			for _, hb := range mrCtrl.ts.blocks {
				if hb.maxY < a {
					break
				}
				if !t.scanPoints(hb.id, st.offerYFn) {
					return
				}
				if hb.minY < a {
					break
				}
			}
			for i := 0; i < rightmostIV; i++ {
				tsCovered[i] = true
			}
			// Fully-inside left siblings still carry deeper answers:
			// recurse without re-reporting their stored points.
			for i := 0; i < rightmostIV; i++ {
				if classes[i] == classInside {
					t.visit(m.children[i].ctrl, st, false)
					if st.stopped {
						return
					}
				}
			}
		} else {
			// TS guarantees at least B^2 sibling answers: examine each
			// sibling individually, the waste amortized against them.
			for i := 0; i < rightmostIV; i++ {
				t.processFullChild(m.children[i], classes[i], direct, i, st)
				if st.stopped {
					return
				}
			}
		}
		// Children right of Mr but left of the path (inside or skip only).
		for i := rightmostIV + 1; i < len(m.children); i++ {
			if classes[i] == classPath {
				break
			}
			t.processFullChild(m.children[i], classes[i], direct, i, st)
			if st.stopped {
				return
			}
		}
	} else {
		// No Type IV children (or TS disabled): process every non-path
		// child individually.
		for i, c := range m.children {
			if classes[i] == classPath {
				continue
			}
			t.processFullChild(c, classes[i], direct, i, st)
			if st.stopped {
				return
			}
		}
	}

	// Descend the path.
	for i, c := range m.children {
		if classes[i] == classPath {
			direct[i] = true
			t.visit(c.ctrl, st, true)
			if st.stopped {
				return
			}
		}
	}

	// TD consultation (Lemma 3.5): report buffered and recently merged
	// points of the children. For directly visited children only their
	// still-buffered points are new; for everything else the whole TD entry
	// applies.
	if m.td != nil {
		emitTD := func(r rec) bool {
			slot := tdSlot(r.aux)
			if slot < len(direct) && direct[slot] && !tdInU(r.aux) {
				return true // already reported from the child's stored set
			}
			return st.offer(r.pt)
		}
		if m.td.corner != nil {
			if !t.queryCorner(m.td.corner, a, emitTD) {
				return
			}
		}
		if !t.scanUpd(m.td.upd, emitTD) {
			return
		}
	}
}

// processFullChild handles one fully-left child individually: inside
// children are visited (their whole stored set is inside the query);
// straddling children get a horizontal top-down scan; skipped children cost
// nothing.
func (t *Tree) processFullChild(c childRef, cl childClass, direct []bool, idx int, st *qstate) {
	switch cl {
	case classInside:
		direct[idx] = true
		t.visit(c.ctrl, st, true)
	case classStraddle:
		direct[idx] = true
		cf := t.getFrame()
		cm := t.loadCtrlFrame(c.ctrl, cf)
		t.reportStored(cm, st)
		t.putFrame(cf)
		// Descendants of a straddling child lie below the query line.
	case classSkip:
		// Nothing: stored and descendants below the line or right of the
		// corner; buffered arrivals are covered by the parent's TD.
	}
}
