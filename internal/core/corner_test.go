package core

import (
	"math/rand"
	"testing"

	"ccidx/internal/geom"
)

// newTestTree returns an empty tree usable as a page allocator for corner
// structure unit tests.
func newTestTree(b int) *Tree {
	return New(Config{B: b}, nil)
}

func genDiagonalRecs(rng *rand.Rand, n int, coordRange int64) []rec {
	rs := make([]rec, n)
	for i := range rs {
		x := rng.Int63n(coordRange)
		y := x + rng.Int63n(coordRange-x+1)
		rs[i] = rec{pt: geom.Point{X: x, Y: y, ID: uint64(i)}}
	}
	return rs
}

func cornerOracle(rs []rec, a int64) map[uint64]int {
	out := map[uint64]int{}
	for _, r := range rs {
		if r.pt.X <= a && r.pt.Y >= a {
			out[r.pt.ID]++
		}
	}
	return out
}

func runCorner(t *Tree, c *cornerIdx, a int64) map[uint64]int {
	got := map[uint64]int{}
	t.queryCorner(c, a, func(r rec) bool {
		got[r.pt.ID]++
		return true
	})
	return got
}

func sameMultiset(a, b map[uint64]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestCornerStructureMatchesOracleExhaustive(t *testing.T) {
	tr := newTestTree(4)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(64) // up to 4*B^2
		rs := genDiagonalRecs(rng, n, 40)
		c := tr.buildCorner(rs)
		for a := int64(-2); a <= 42; a++ {
			got := runCorner(tr, c, a)
			want := cornerOracle(rs, a)
			if !sameMultiset(got, want) {
				t.Fatalf("trial %d n=%d a=%d: got %d ids want %d", trial, n, a, len(got), len(want))
			}
		}
		tr.freeCorner(c)
	}
}

func TestCornerStructureNoDuplicateEmission(t *testing.T) {
	tr := newTestTree(4)
	rng := rand.New(rand.NewSource(2))
	rs := genDiagonalRecs(rng, 80, 20) // heavy coordinate collisions
	c := tr.buildCorner(rs)
	for a := int64(0); a <= 20; a++ {
		got := runCorner(tr, c, a)
		for id, k := range got {
			if k != 1 {
				t.Fatalf("a=%d: id %d emitted %d times", a, id, k)
			}
		}
	}
}

func TestCornerStructureEmpty(t *testing.T) {
	tr := newTestTree(4)
	c := tr.buildCorner(nil)
	if got := runCorner(tr, c, 5); len(got) != 0 {
		t.Fatalf("empty corner structure returned %v", got)
	}
}

func TestCornerStructureSingleBlock(t *testing.T) {
	tr := newTestTree(8)
	rs := genDiagonalRecs(rand.New(rand.NewSource(3)), 5, 10)
	c := tr.buildCorner(rs)
	if len(c.stars) != 0 {
		t.Fatalf("single-block structure should have no stars, got %d", len(c.stars))
	}
	for a := int64(0); a <= 11; a++ {
		if !sameMultiset(runCorner(tr, c, a), cornerOracle(rs, a)) {
			t.Fatalf("a=%d mismatch", a)
		}
	}
}

// Lemma 3.1 space bound: total star points <= 2k plus the forced stars'
// slack (we assert <= 3k + B; the paper's constant is 2 with exact
// bookkeeping of the two forced stars).
func TestCornerStructureSpaceBound(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, b := range []int{4, 8, 16} {
		tr := newTestTree(b)
		for trial := 0; trial < 10; trial++ {
			k := b*b/2 + rng.Intn(3*b*b/2+1) // up to 2B^2
			rs := genDiagonalRecs(rng, k, int64(4*k+10))
			c := tr.buildCorner(rs)
			if sp := c.starPoints(); sp > 3*k+b {
				t.Fatalf("B=%d k=%d: star points %d exceed 3k+B=%d", b, k, sp, 3*k+b)
			}
			tr.freeCorner(c)
		}
	}
}

// Lemma 3.1 query bound: at most 2t/B + c I/Os per corner query (c covers
// the index pages; the paper's constant is 4 with a one-page index).
func TestCornerStructureQueryIOBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, b := range []int{4, 8, 16} {
		tr := newTestTree(b)
		k := 2 * b * b
		rs := genDiagonalRecs(rng, k, int64(3*k))
		c := tr.buildCorner(rs)
		for trial := 0; trial < 200; trial++ {
			a := rng.Int63n(int64(3*k) + 2)
			before := tr.Pager().Stats()
			got := 0
			tr.queryCorner(c, a, func(rec) bool { got++; return true })
			ios := tr.Pager().Stats().Sub(before).IOs()
			bound := 2*int64(got)/int64(b) + 5
			if ios > bound {
				t.Fatalf("B=%d a=%d t=%d: %d I/Os exceeds 2t/B+5 = %d", b, a, got, ios, bound)
			}
		}
	}
}

func TestCornerStructureAuxPreserved(t *testing.T) {
	tr := newTestTree(4)
	rs := []rec{
		{pt: geom.Point{X: 1, Y: 5, ID: 1}, aux: tdAux(3, true)},
		{pt: geom.Point{X: 2, Y: 7, ID: 2}, aux: tdAux(1, false)},
		{pt: geom.Point{X: 4, Y: 4, ID: 3}, aux: tdAux(2, true)},
	}
	c := tr.buildCorner(rs)
	found := map[uint64]uint32{}
	tr.queryCorner(c, 4, func(r rec) bool {
		found[r.pt.ID] = r.aux
		return true
	})
	if len(found) != 3 {
		t.Fatalf("expected 3 results, got %v", found)
	}
	if found[1] != tdAux(3, true) || found[2] != tdAux(1, false) || found[3] != tdAux(2, true) {
		t.Fatalf("aux fields corrupted: %v", found)
	}
}

func TestCornerStructureEarlyStop(t *testing.T) {
	tr := newTestTree(4)
	rs := genDiagonalRecs(rand.New(rand.NewSource(6)), 60, 30)
	c := tr.buildCorner(rs)
	count := 0
	tr.queryCorner(c, 15, func(rec) bool {
		count++
		return false
	})
	if count > 1 {
		t.Fatalf("early stop emitted %d", count)
	}
}

func TestCornerStructureFreeReleasesAllPages(t *testing.T) {
	tr := newTestTree(4)
	before := tr.Pager().Allocated()
	rs := genDiagonalRecs(rand.New(rand.NewSource(7)), 50, 25)
	c := tr.buildCorner(rs)
	if tr.Pager().Allocated() <= before {
		t.Fatal("build allocated nothing")
	}
	tr.freeCorner(c)
	if got := tr.Pager().Allocated(); got != before {
		t.Fatalf("leak: %d pages allocated after free, want %d", got, before)
	}
}
