package core

import (
	"math/rand"
	"testing"

	"ccidx/internal/geom"
)

func collectQuery(t *Tree, a int64) map[geom.Point]int {
	got := map[geom.Point]int{}
	t.DiagonalQuery(a, func(p geom.Point) bool {
		got[p]++
		return true
	})
	return got
}

func TestDeleteWeakThenQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	pts := make([]geom.Point, 600)
	for i := range pts {
		x := rng.Int63n(1000)
		pts[i] = geom.Point{X: x, Y: x + rng.Int63n(1000), ID: uint64(i)}
	}
	tr := New(Config{B: 4}, pts)

	if tr.Delete(geom.Point{X: -5, Y: 7, ID: 999999}) {
		t.Fatal("deleted an absent point")
	}
	// Delete a third of the points (few enough that no rebuild triggers, so
	// the tombstone filter itself is what's under test).
	deleted := map[geom.Point]int{}
	for i := 0; i < 200; i++ {
		p := pts[i*3]
		if !tr.Delete(p) {
			t.Fatalf("delete of present point %v failed", p)
		}
		deleted[p]++
	}
	if tr.Len() != 400 {
		t.Fatalf("Len=%d after 200 deletes", tr.Len())
	}
	if tr.Delete(pts[0]) {
		t.Fatal("second delete of the same point succeeded")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Oracle: live multiset filtered per copy.
	for _, a := range []int64{0, 250, 500, 750, 1000, 1500} {
		want := map[geom.Point]int{}
		for _, p := range pts {
			if p.X <= a && p.Y >= a {
				want[p]++
			}
		}
		for p, d := range deleted {
			if p.X <= a && p.Y >= a {
				want[p] -= d
				if want[p] == 0 {
					delete(want, p)
				}
			}
		}
		got := collectQuery(tr, a)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d distinct points, want %d", a, len(got), len(want))
		}
		for p, k := range want {
			if got[p] != k {
				t.Fatalf("query %d: point %v reported %d times, want %d", a, p, got[p], k)
			}
		}
	}
}

func TestDeleteDuplicateCopies(t *testing.T) {
	p := geom.Point{X: 10, Y: 20, ID: 7}
	tr := New(Config{B: 4}, []geom.Point{p, p, {X: 5, Y: 30, ID: 1}})
	if !tr.Delete(p) {
		t.Fatal("delete failed")
	}
	if got := collectQuery(tr, 10)[p]; got != 1 {
		t.Fatalf("point with one live copy reported %d times", got)
	}
	if !tr.Delete(p) {
		t.Fatal("second copy not deletable")
	}
	if tr.Delete(p) {
		t.Fatal("third delete succeeded with no copies left")
	}
}

// TestDeleteGlobalRebuild drives deletes past the alpha threshold and
// asserts the tombstone state resets, space shrinks back to the live set,
// and the I/O counters stay sane (post-rebuild queries cost no more than
// pre-delete queries did).
func TestDeleteGlobalRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 2000
	pts := make([]geom.Point, n)
	for i := range pts {
		x := rng.Int63n(1 << 20)
		pts[i] = geom.Point{X: x, Y: x + rng.Int63n(1<<20), ID: uint64(i)}
	}
	tr := New(Config{B: 8}, pts)
	spaceBefore := tr.Pager().Allocated()

	queryIOs := func() int64 {
		before := tr.Pager().Stats()
		for i := 0; i < 20; i++ {
			tr.DiagonalQuery(int64(i)*(1<<20)/20, func(geom.Point) bool { return true })
		}
		return tr.Pager().Stats().Sub(before).IOs()
	}
	iosBefore := queryIOs()

	// Delete 80% of the points: with alpha = 1/2 this must trigger at least
	// one global rebuild along the way.
	for i := 0; i < 4*n/5; i++ {
		if !tr.Delete(pts[i]) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Rebuilds() == 0 {
		t.Fatal("no global rebuild after deleting 80% of the points")
	}
	// After a rebuild the tombstone backlog is bounded by alpha * live.
	if 2*tr.DeadCount() > tr.Len() {
		t.Fatalf("dead=%d exceeds alpha*live (live=%d) after rebuild", tr.DeadCount(), tr.Len())
	}
	if tr.Len() != n/5 {
		t.Fatalf("Len=%d, want %d", tr.Len(), n/5)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Space: the rebuilt structure covers only live + bounded dead points.
	if space := tr.Pager().Allocated(); space > spaceBefore {
		t.Fatalf("space %d did not shrink from %d after rebuilding at 20%% live", space, spaceBefore)
	}
	// I/O sanity: a post-rebuild query sweep over the shrunken tree must not
	// cost more than the same sweep did over the full tree.
	if iosAfter := queryIOs(); iosAfter > iosBefore {
		t.Fatalf("query I/O grew after rebuild: %d > %d", iosAfter, iosBefore)
	}

	// Results still match the live oracle.
	live := map[geom.Point]int{}
	for _, p := range pts[4*n/5:] {
		live[p]++
	}
	got := map[geom.Point]int{}
	tr.Walk(func(p geom.Point) bool { got[p]++; return true })
	if len(got) != len(live) {
		t.Fatalf("walk found %d distinct points, want %d", len(got), len(live))
	}
	for p, k := range live {
		if got[p] != k {
			t.Fatalf("walk: %v seen %d times, want %d", p, got[p], k)
		}
	}
}

// TestDeleteInterleavedWithInserts churns inserts and deletes through the
// reorganisation ladder and checks invariants plus a query oracle.
func TestDeleteInterleavedWithInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	tr := New(Config{B: 4}, nil)
	live := map[geom.Point]int{}
	var pool []geom.Point
	nextID := uint64(0)
	for op := 0; op < 3000; op++ {
		if rng.Intn(3) < 2 || len(pool) == 0 {
			x := rng.Int63n(4000)
			p := geom.Point{X: x, Y: x + rng.Int63n(4000), ID: nextID}
			nextID++
			tr.Insert(p)
			live[p]++
			pool = append(pool, p)
		} else {
			j := rng.Intn(len(pool))
			p := pool[j]
			pool[j] = pool[len(pool)-1]
			pool = pool[:len(pool)-1]
			if !tr.Delete(p) {
				t.Fatalf("op %d: delete of live point %v failed", op, p)
			}
			live[p]--
			if live[p] == 0 {
				delete(live, p)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, a := range []int64{0, 1000, 2000, 3000, 5000} {
		want := 0
		for p, k := range live {
			if p.X <= a && p.Y >= a {
				want += k
			}
		}
		got := 0
		tr.DiagonalQuery(a, func(geom.Point) bool { got++; return true })
		if got != want {
			t.Fatalf("query %d reported %d points, want %d", a, got, want)
		}
	}
}
