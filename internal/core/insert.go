package core

import (
	"fmt"
	"sort"

	"ccidx/internal/disk"
	"ccidx/internal/geom"
)

// Semi-dynamic insertion (Section 3.2, procedure insert-point of Fig 19).
//
// A new point descends from the root to the first metablock whose stored
// minimum y it does not undercut (or to a leaf) and is buffered in that
// metablock's update block; it is simultaneously registered in the TD
// corner structure of the parent. The reorganisation ladder:
//
//   - level I  (every B arrivals at a metablock): merge the update block
//     into the stored organisations, O(B) I/Os; the parent TD entries of
//     the merged points flip from "buffered" to "stored".
//   - TD full (B^2 registrations at an internal node): discard TD and
//     rebuild the TS structures of all children (flushing their update
//     blocks), O(B^2) I/Os.
//   - level II (stored count reaches 2B^2): an internal metablock keeps its
//     top B^2 points and pushes the bottom B^2 into its children (which may
//     cascade); a leaf splits into two leaves of B^2 points under its
//     parent. Both are followed by TS reorganisations at the affected
//     levels, O(B^2) I/Os.
//   - branching reaches 2B: the subtree is rebuilt into two subtrees of
//     branching B that replace it in its parent (the whole tree is rebuilt
//     when this reaches the root).
//
// Lemma 3.6 charges these exactly as coded here, giving the amortized
// O(log_B n + (log_B n)^2 / B) insert bound of Theorem 3.7.

// step records one edge of the descent path.
type step struct {
	id   disk.BlockID
	slot int // child slot taken
}

// Insert adds p (which must satisfy p.Y >= p.X) to the tree.
// Amortized cost: O(log_B n + (log_B n)^2/B) I/Os (Theorem 3.7).
func (t *Tree) Insert(p geom.Point) {
	if !p.AboveDiagonal() {
		panic(fmt.Sprintf("core: point %v below the diagonal y=x", p))
	}
	t.n++
	t.mult[p]++

	// Descend to the target metablock.
	var path []step
	cur := t.root
	for {
		m := t.loadCtrl(cur)
		if len(m.children) == 0 || m.count == 0 || p.Y >= m.bb.minY {
			break
		}
		slot := chooseChild(m.children, p.X)
		c := &m.children[slot]
		if p.X < c.xlo {
			c.xlo = p.X
		}
		if p.X > c.xhi {
			c.xhi = p.X
		}
		c.subtreeCount++
		t.storeCtrl(cur, m)
		path = append(path, step{id: cur, slot: slot})
		cur = c.ctrl
	}
	target := cur

	// Buffer the point in the target's update block.
	{
		m := t.loadCtrl(target)
		t.appendUpd(&m.upd, rec{pt: p})
		t.storeCtrl(target, m)
	}

	// Register in the parent's TD corner structure.
	if len(path) > 0 {
		par := path[len(path)-1]
		pm := t.loadCtrl(par.id)
		if pm.td == nil {
			pm.td = &tdInfo{}
		}
		t.appendUpd(&pm.td.upd, rec{pt: p, aux: tdAux(par.slot, true)})
		if pm.td.upd.count >= t.cfg.B {
			t.tdMergeUpd(pm)
		}
		t.storeCtrl(par.id, pm)
		if pm.td.count+pm.td.upd.count >= t.cap2() {
			// The TS reorganisation flushes every child's update block
			// (including the target's) and may split or rebuild the target,
			// so there is nothing left for a level-I pass to do.
			t.tsReorgChildren(par.id, path[:len(path)-1])
			return
		}
	}

	// Level I when the update block is full.
	m := t.loadCtrl(target)
	if m.upd.count >= t.cfg.B {
		t.levelI(target, path)
	}
}

// chooseChild picks the child slot for coordinate x: the rightmost child
// whose partition starts at or before x (the first child as a fallback).
// This function is the single routing rule shared by descent, level-II
// pushes and TD slot bookkeeping, so slots stay consistent.
func chooseChild(children []childRef, x int64) int {
	idx := 0
	for i := range children {
		if children[i].xlo <= x {
			idx = i
		} else {
			break
		}
	}
	return idx
}

// appendUpd appends r to an update block, allocating it on first use.
func (t *Tree) appendUpd(u *updInfo, r rec) {
	if u.id == disk.NilBlock {
		u.id = t.dev.Alloc()
		t.putRecBlock(u.id, []rec{r})
		u.count = 1
		return
	}
	rs := t.readRecBlock(u.id)
	rs = rs[:u.count] // defensive: count is authoritative
	rs = append(rs, r)
	t.putRecBlock(u.id, rs)
	u.count = len(rs)
}

// clearUpd empties an update block (the page is kept for reuse).
func (t *Tree) clearUpd(u *updInfo) {
	if u.id != disk.NilBlock {
		t.putRecBlock(u.id, nil)
	}
	u.count = 0
}

// readStoredPoints reads a metablock's stored set from its horizontal
// organisation, O(count/B) I/Os.
func (t *Tree) readStoredPoints(m *metaCtrl) []geom.Point {
	var pts []geom.Point
	for _, hb := range m.hblocks {
		pts = append(pts, t.readPoints(hb.id)...)
	}
	return pts
}

// levelI merges the update block of the metablock at id into its stored
// organisations (cost O(B)), updates the parent's child table and TD
// bookkeeping, and triggers level II if the metablock reached 2B^2 points.
func (t *Tree) levelI(id disk.BlockID, path []step) {
	m := t.loadCtrl(id)
	merged := t.updPoints(m.upd)
	if len(merged) == 0 {
		return
	}
	stored := append(t.readStoredPoints(m), merged...)
	t.freeStoredOrgs(m)
	t.fillStoredOrgs(m, stored)
	t.clearUpd(&m.upd)
	t.storeCtrl(id, m)

	if len(path) > 0 {
		par := path[len(path)-1]
		pm := t.loadCtrl(par.id)
		if i := findChild(pm, id); i >= 0 {
			pm.children[i].bb = m.bb
			pm.children[i].storedCount = m.count
			t.tdMergeUpd(pm)
			t.tdFlipInU(pm, i, merged)
		}
		t.storeCtrl(par.id, pm)
	}

	if m.count >= 2*t.cap2() {
		t.levelII(id, path)
	}
}

// findChild locates the child slot whose control blob is id.
func findChild(pm *metaCtrl, id disk.BlockID) int {
	for i := range pm.children {
		if pm.children[i].ctrl == id {
			return i
		}
	}
	return -1
}

// tdMergeUpd folds the TD update buffer into the TD entry list and rebuilds
// the TD corner structure, O(B) I/Os (the structure holds at most ~B^2
// records).
func (t *Tree) tdMergeUpd(pm *metaCtrl) {
	td := pm.td
	if td == nil || td.upd.count == 0 {
		return
	}
	entries := t.readTDEntries(pm)
	entries = append(entries, t.updRecs(td.upd)...)
	t.freeChunks(td.entryBlocks)
	td.entryBlocks = t.writeRecChunks(entries)
	td.count = len(entries)
	t.freeCorner(td.corner)
	td.corner = t.buildCorner(entries)
	t.clearUpd(&td.upd)
}

// readTDEntries reads the merged TD entries.
func (t *Tree) readTDEntries(pm *metaCtrl) []rec {
	var out []rec
	if pm.td == nil {
		return nil
	}
	for _, c := range pm.td.entryBlocks {
		out = append(out, t.readRecBlock(c.id)...)
	}
	return out
}

// tdFlipInU marks the given points of child slot as merged-into-stored in
// the TD entries (one entry per point occurrence) and rebuilds the TD
// corner structure.
func (t *Tree) tdFlipInU(pm *metaCtrl, slot int, pts []geom.Point) {
	td := pm.td
	if td == nil || td.count == 0 {
		return
	}
	want := make(map[geom.Point]int, len(pts))
	for _, p := range pts {
		want[p]++
	}
	entries := t.readTDEntries(pm)
	changed := false
	for i := range entries {
		r := &entries[i]
		if tdInU(r.aux) && tdSlot(r.aux) == slot && want[r.pt] > 0 {
			want[r.pt]--
			r.aux = tdAux(slot, false)
			changed = true
		}
	}
	if !changed {
		return
	}
	t.freeChunks(td.entryBlocks)
	td.entryBlocks = t.writeRecChunks(entries)
	t.freeCorner(td.corner)
	td.corner = t.buildCorner(entries)
}

// discardTD frees the TD structure of pm (used when the children's TS
// structures are rebuilt, after which TD has nothing left to cover).
func (t *Tree) discardTD(pm *metaCtrl) {
	td := pm.td
	if td == nil {
		return
	}
	t.freeChunks(td.entryBlocks)
	t.freeCorner(td.corner)
	if td.upd.id != disk.NilBlock {
		disk.MustFreeAt(t.dev, td.upd.id)
	}
	pm.td = &tdInfo{}
}

// tsReorgChildren rebuilds the TS structures of every child of the
// metablock at id from their current stored sets, flushing the children's
// update blocks first and discarding the node's TD structure (Section 3.2's
// "TS reorganization", cost O(B^2)). Children that reach 2B^2 stored points
// during the flush overflow into level II afterwards.
func (t *Tree) tsReorgChildren(id disk.BlockID, path []step) {
	m := t.loadCtrl(id)
	if len(m.children) == 0 {
		return
	}
	t.discardTD(m)
	cap2 := t.cap2()
	var pool []geom.Point
	var overflow []disk.BlockID
	for i := range m.children {
		c := &m.children[i]
		cm := t.loadCtrl(c.ctrl)
		var stored []geom.Point
		if cm.upd.count > 0 {
			stored = append(t.readStoredPoints(cm), t.updPoints(cm.upd)...)
			t.freeStoredOrgs(cm)
			t.fillStoredOrgs(cm, stored)
			t.clearUpd(&cm.upd)
		} else {
			stored = t.readStoredPoints(cm)
		}
		t.freeChunks(cm.ts.blocks)
		cm.ts = t.writeTS(pool)
		t.storeCtrl(c.ctrl, cm)
		c.bb = cm.bb
		c.storedCount = cm.count
		pool = topYPool(append(pool, stored...), cap2)
		if cm.count >= 2*cap2 {
			overflow = append(overflow, c.ctrl)
		}
	}
	t.storeCtrl(id, m)

	selfPath := append(append([]step(nil), path...), step{id: id})
	for _, childID := range overflow {
		// Re-locate the child: earlier overflow handling may have
		// restructured the child list.
		pm := t.loadCtrl(id)
		i := findChild(pm, childID)
		if i < 0 {
			continue
		}
		cm := t.loadCtrl(childID)
		if cm.count >= 2*cap2 {
			selfPath[len(selfPath)-1].slot = i
			t.levelII(childID, selfPath)
		}
	}
}

// levelII reorganises a metablock that reached 2B^2 stored points: internal
// metablocks keep the top B^2 and push the bottom B^2 into their children;
// leaves split in two under their parent (Section 3.2).
func (t *Tree) levelII(id disk.BlockID, path []step) {
	m := t.loadCtrl(id)
	if m.upd.count != 0 {
		// Level II always runs on merged state.
		t.levelI(id, path)
		m = t.loadCtrl(id)
		if m.count < 2*t.cap2() {
			return
		}
	}
	if len(m.children) == 0 {
		t.splitLeaf(id, path)
		return
	}

	cap2 := t.cap2()
	stored := t.readStoredPoints(m)
	geom.SortByYDesc(stored)
	top := stored[:cap2]
	bottom := stored[cap2:]
	t.freeStoredOrgs(m)
	t.fillStoredOrgs(m, top)

	// Route the bottom points to children and merge them into the
	// children's stored organisations directly.
	groups := make(map[int][]geom.Point)
	for _, p := range bottom {
		slot := chooseChild(m.children, p.X)
		c := &m.children[slot]
		if p.X < c.xlo {
			c.xlo = p.X
		}
		if p.X > c.xhi {
			c.xhi = p.X
		}
		groups[slot] = append(groups[slot], p)
	}
	var slots []int
	for s := range groups {
		slots = append(slots, s)
	}
	sort.Ints(slots)
	for _, s := range slots {
		c := &m.children[s]
		cm := t.loadCtrl(c.ctrl)
		merged := append(t.readStoredPoints(cm), groups[s]...)
		t.freeStoredOrgs(cm)
		t.fillStoredOrgs(cm, merged)
		t.storeCtrl(c.ctrl, cm)
		c.bb = cm.bb
		c.storedCount = cm.count
		c.subtreeCount += int64(len(groups[s]))
	}
	t.storeCtrl(id, m)

	// The children gained stored points and this node's stored set shrank:
	// rebuild TS structures below and beside (both O(B^2), once per B^2
	// arrivals here).
	t.tsReorgChildren(id, path)
	if len(path) > 0 {
		par := path[len(path)-1]
		pm := t.loadCtrl(par.id)
		if i := findChild(pm, id); i >= 0 {
			pm.children[i].bb = m.bb
			pm.children[i].storedCount = m.count
		}
		t.storeCtrl(par.id, pm)
		t.tsReorgChildren(par.id, path[:len(path)-1])
	}
}

// splitLeaf replaces a 2B^2-point leaf by two B^2-point leaves under its
// parent; a root leaf is rebuilt into a two-level tree instead. The parent
// may then exceed branching 2B and be rebuilt (splitNode).
func (t *Tree) splitLeaf(id disk.BlockID, path []step) {
	m := t.loadCtrl(id)
	pts := t.readStoredPoints(m)
	geom.SortByX(pts)

	if len(path) == 0 {
		// Root leaf: rebuild the whole (tiny) tree.
		t.freeMetablock(id, m)
		t.root = t.buildMeta(pts).ctrl
		return
	}

	half := len(pts) / 2
	left := t.buildMeta(pts[:half])
	right := t.buildMeta(pts[half:])

	par := path[len(path)-1]
	pm := t.loadCtrl(par.id)
	idx := findChild(pm, id)
	if idx < 0 {
		panic("core: split leaf not found in parent")
	}
	t.freeMetablock(id, m)
	newRefs := []childRef{
		{ctrl: left.ctrl, xlo: left.xlo, xhi: left.xhi, bb: left.bb,
			storedCount: left.storedCount, subtreeCount: left.subtreeCount},
		{ctrl: right.ctrl, xlo: right.xlo, xhi: right.xhi, bb: right.bb,
			storedCount: right.storedCount, subtreeCount: right.subtreeCount},
	}
	pm.children = append(pm.children[:idx], append(newRefs, pm.children[idx+1:]...)...)
	t.storeCtrl(par.id, pm)

	t.tsReorgChildren(par.id, path[:len(path)-1])

	pm = t.loadCtrl(par.id)
	if len(pm.children) >= 2*t.cfg.B {
		t.splitNode(par.id, path[:len(path)-1])
	}
}

// splitNode rebuilds the subtree at id (branching factor reached 2B) into
// two balanced subtrees spliced into the parent; at the root the whole tree
// is rebuilt. Cost O((k/B) log_B k) for a k-point subtree, amortized per
// the final account of Lemma 3.6.
func (t *Tree) splitNode(id disk.BlockID, path []step) {
	pts := t.collectSubtree(id)
	geom.SortByX(pts)

	if len(path) == 0 {
		t.freeSubtree(id)
		t.root = t.buildMeta(pts).ctrl
		return
	}

	par := path[len(path)-1]
	pm := t.loadCtrl(par.id)
	idx := findChild(pm, id)
	if idx < 0 {
		panic("core: split node not found in parent")
	}
	t.freeSubtree(id)
	half := len(pts) / 2
	left := t.buildMeta(pts[:half])
	right := t.buildMeta(pts[half:])
	newRefs := []childRef{
		{ctrl: left.ctrl, xlo: left.xlo, xhi: left.xhi, bb: left.bb,
			storedCount: left.storedCount, subtreeCount: left.subtreeCount},
		{ctrl: right.ctrl, xlo: right.xlo, xhi: right.xhi, bb: right.bb,
			storedCount: right.storedCount, subtreeCount: right.subtreeCount},
	}
	pm.children = append(pm.children[:idx], append(newRefs, pm.children[idx+1:]...)...)
	t.storeCtrl(par.id, pm)

	t.tsReorgChildren(par.id, path[:len(path)-1])

	pm = t.loadCtrl(par.id)
	if len(pm.children) >= 2*t.cfg.B {
		t.splitNode(par.id, path[:len(path)-1])
	}
}

// collectSubtree gathers every stored and buffered point under id
// (TD entries are copies of points already collected from the children and
// are skipped).
func (t *Tree) collectSubtree(id disk.BlockID) []geom.Point {
	m := t.loadCtrl(id)
	pts := t.readStoredPoints(m)
	pts = append(pts, t.updPoints(m.upd)...)
	for _, c := range m.children {
		pts = append(pts, t.collectSubtree(c.ctrl)...)
	}
	return pts
}

// freeMetablock releases every page of a single metablock (not its
// children).
func (t *Tree) freeMetablock(id disk.BlockID, m *metaCtrl) {
	t.freeStoredOrgs(m)
	t.freeChunks(m.ts.blocks)
	if m.upd.id != disk.NilBlock {
		disk.MustFreeAt(t.dev, m.upd.id)
	}
	if m.td != nil {
		t.freeChunks(m.td.entryBlocks)
		t.freeCorner(m.td.corner)
		if m.td.upd.id != disk.NilBlock {
			disk.MustFreeAt(t.dev, m.td.upd.id)
		}
	}
	t.freeBlob(id)
}

// freeSubtree releases an entire subtree.
func (t *Tree) freeSubtree(id disk.BlockID) {
	m := t.loadCtrl(id)
	for _, c := range m.children {
		t.freeSubtree(c.ctrl)
	}
	t.freeMetablock(id, m)
}
