package core

import (
	"math/rand"
	"sort"
	"testing"

	"ccidx/internal/geom"
	"ccidx/internal/workload"
)

// sortPoints orders a result multiset canonically for comparison.
func sortPoints(ps []geom.Point) {
	sort.Slice(ps, func(i, j int) bool {
		a, b := ps[i], ps[j]
		if a.X != b.X {
			return a.X < b.X
		}
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		return a.ID < b.ID
	})
}

func samePoints(a, b []geom.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assertBatchOracle issues as both ways and compares per-query multisets.
func assertBatchOracle(t *testing.T, tr *Tree, as []int64, label string) {
	t.Helper()
	got := make([][]geom.Point, len(as))
	tr.DiagonalQueryBatch(as, func(qi int, p geom.Point) bool {
		got[qi] = append(got[qi], p)
		return true
	})
	for qi, a := range as {
		var want []geom.Point
		tr.DiagonalQuery(a, func(p geom.Point) bool {
			want = append(want, p)
			return true
		})
		sortPoints(got[qi])
		sortPoints(want)
		if !samePoints(got[qi], want) {
			t.Fatalf("%s: query %d (a=%d): batch %d points, sequential %d",
				label, qi, a, len(got[qi]), len(want))
		}
	}
}

func randomQueries(rng *rand.Rand, k int, span int64) []int64 {
	as := make([]int64, k)
	for i := range as {
		as[i] = rng.Int63n(span)
	}
	return as
}

// TestDiagonalQueryBatchOracle checks batch == sequential on static builds
// across configurations, including the TS and corner ablations whose
// fallback scan paths the batch must reproduce.
func TestDiagonalQueryBatchOracle(t *testing.T) {
	for _, cfg := range []Config{
		{B: 4},
		{B: 8},
		{B: 8, DisableTS: true},
		{B: 8, DisableCorner: true},
	} {
		for _, n := range []int{0, 3, 200, 5000} {
			span := int64(4*n + 16)
			tr := New(cfg, workload.DiagonalPoints(int64(n)+1, n, span))
			rng := rand.New(rand.NewSource(int64(n) + 2))
			for trial := 0; trial < 6; trial++ {
				k := rng.Intn(48) + 1
				assertBatchOracle(t, tr, randomQueries(rng, k, span+4), "static")
			}
		}
	}
}

// TestDiagonalQueryBatchChurnOracle checks batch == sequential on a tree
// carrying update blocks, TD structures and tombstones: inserts trigger the
// dynamic machinery, deletes leave per-copy tombstones (including points
// with live AND dead copies, the per-copy suppression case).
func TestDiagonalQueryBatchChurnOracle(t *testing.T) {
	const b = 4
	span := int64(4000)
	base := workload.DiagonalPoints(31, 800, span)
	tr := New(Config{B: b}, base)
	rng := rand.New(rand.NewSource(32))
	live := append([]geom.Point(nil), base...)
	for i := 0; i < 1200; i++ {
		switch {
		case rng.Intn(3) == 0 && len(live) > 10:
			j := rng.Intn(len(live))
			if !tr.Delete(live[j]) {
				t.Fatalf("delete of live point %v failed", live[j])
			}
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		default:
			x := rng.Int63n(span)
			p := geom.Point{X: x, Y: x + rng.Int63n(span-x+1), ID: uint64(10000 + i)}
			if rng.Intn(8) == 0 && len(live) > 0 {
				// Duplicate-coordinate copy of a live point: exercises the
				// per-copy tombstone suppression.
				q := live[rng.Intn(len(live))]
				p.X, p.Y = q.X, q.Y
			}
			tr.Insert(p)
			live = append(live, p)
		}
		if i%200 == 199 {
			assertBatchOracle(t, tr, randomQueries(rng, 40, span+8), "churn")
		}
	}
	if tr.DeadCount() == 0 {
		t.Fatalf("churn stream left no tombstones; the suppression path went untested")
	}
	assertBatchOracle(t, tr, randomQueries(rng, 300, span+8), "churn-final")
}

// TestDiagonalQueryBatchEarlyStop checks a per-query emit stop truncates
// only that query.
func TestDiagonalQueryBatchEarlyStop(t *testing.T) {
	span := int64(20000)
	tr := New(Config{B: 8}, workload.DiagonalPoints(33, 5000, span))
	as := []int64{span / 4, span / 4, span / 2}
	const cap0 = 5
	got := make([][]geom.Point, len(as))
	tr.DiagonalQueryBatch(as, func(qi int, p geom.Point) bool {
		got[qi] = append(got[qi], p)
		return !(qi == 0 && len(got[0]) >= cap0)
	})
	if len(got[0]) != cap0 {
		t.Fatalf("stopped query got %d points, want %d", len(got[0]), cap0)
	}
	for qi := 1; qi < len(as); qi++ {
		var want []geom.Point
		tr.DiagonalQuery(as[qi], func(p geom.Point) bool {
			want = append(want, p)
			return true
		})
		if len(got[qi]) != len(want) {
			t.Fatalf("query %d truncated by another query's stop: %d vs %d",
				qi, len(got[qi]), len(want))
		}
	}
}

// TestDiagonalQueryBatchSharesIOs asserts the amortization: a batch must
// cost well under the sequential sum, and a batch of one must not cost
// more I/Os than the sequential query.
func TestDiagonalQueryBatchSharesIOs(t *testing.T) {
	span := int64(200000)
	tr := New(Config{B: 8}, workload.DiagonalPoints(35, 50000, span))
	rng := rand.New(rand.NewSource(36))
	as := randomQueries(rng, 128, span)

	before := tr.Pager().Stats()
	for _, a := range as {
		tr.DiagonalQuery(a, func(geom.Point) bool { return true })
	}
	seq := tr.Pager().Stats().Sub(before).IOs()
	before = tr.Pager().Stats()
	tr.DiagonalQueryBatch(as, func(int, geom.Point) bool { return true })
	batch := tr.Pager().Stats().Sub(before).IOs()
	if batch*2 > seq {
		t.Fatalf("batched traversal shared too little: %d I/Os batched vs %d sequential", batch, seq)
	}

	for _, a := range as[:8] {
		before = tr.Pager().Stats()
		tr.DiagonalQuery(a, func(geom.Point) bool { return true })
		one := tr.Pager().Stats().Sub(before).IOs()
		before = tr.Pager().Stats()
		tr.DiagonalQueryBatch([]int64{a}, func(int, geom.Point) bool { return true })
		b1 := tr.Pager().Stats().Sub(before).IOs()
		if b1 > one {
			t.Fatalf("batch of one cost %d I/Os, sequential %d (a=%d)", b1, one, a)
		}
	}
}
