package core

// Checkpoint support. Unlike the B+-tree, the metablock tree keeps real
// state outside its pages: the in-memory physical-multiset directory (mult)
// and the tombstone directory (dead) that weak deletes rely on. A
// checkpoint therefore serializes {root, n, rebuilds, mult, dead}; OpenOn
// reattaches a Tree to a store that already holds the pages.

import (
	"encoding/binary"
	"fmt"

	"ccidx/internal/disk"
	"ccidx/internal/geom"
	"ccidx/internal/wire"
)

const (
	stateHeader    = 4 * 8 // root, n, rebuilds, multCount (+ deadCount derived)
	statePointSize = 3*8 + 8
)

// MarshalState serializes the tree's out-of-page state: root pointer, live
// count, rebuild counter, and the mult/dead directories. The caller flushes
// any pool over the store before checkpointing it.
func (t *Tree) MarshalState() []byte {
	buf := make([]byte, 0, stateHeader+8+(len(t.mult)+len(t.dead))*statePointSize)
	var w [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		buf = append(buf, w[:]...)
	}
	put(uint64(int64(t.root)))
	put(uint64(t.n))
	put(uint64(t.rebuilds))
	put(uint64(len(t.mult)))
	for p, c := range t.mult {
		put(uint64(p.X))
		put(uint64(p.Y))
		put(p.ID)
		put(uint64(c))
	}
	put(uint64(len(t.dead)))
	for p, c := range t.dead {
		put(uint64(p.X))
		put(uint64(p.Y))
		put(p.ID)
		put(uint64(c))
	}
	return buf
}

// OpenOn reattaches a metablock tree to a store holding its pages, using
// the state a prior MarshalState produced. cfg must match the
// configuration the tree was built with (the owning manager serializes it
// alongside).
func OpenOn(cfg Config, store disk.Store, state []byte) (*Tree, error) {
	t := skeletonOn(cfg, store)
	r := wire.NewStateReader(state)
	t.root = disk.BlockID(int64(r.U64()))
	t.n = int(r.U64())
	t.rebuilds = int(r.U64())
	nMult := int(r.U64())
	if r.Err() != nil || nMult < 0 {
		return nil, fmt.Errorf("core: corrupt state header")
	}
	t.mult = make(map[geom.Point]int, nMult)
	for i := 0; i < nMult; i++ {
		p := geom.Point{X: int64(r.U64()), Y: int64(r.U64()), ID: r.U64()}
		t.mult[p] = int(r.U64())
	}
	nDead := int(r.U64())
	if r.Err() != nil || nDead < 0 {
		return nil, fmt.Errorf("core: corrupt mult directory")
	}
	t.dead = make(map[geom.Point]int, nDead)
	t.deadCount = 0
	for i := 0; i < nDead; i++ {
		p := geom.Point{X: int64(r.U64()), Y: int64(r.U64()), ID: r.U64()}
		c := int(r.U64())
		t.dead[p] = c
		t.deadCount += c
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("core: corrupt state: %w", err)
	}
	if t.n < 0 {
		return nil, fmt.Errorf("core: corrupt state: n=%d", t.n)
	}
	if t.root != disk.NilBlock {
		if err := store.Check(t.root); err != nil {
			return nil, fmt.Errorf("core: root %d: %w", t.root, err)
		}
	}
	return t, nil
}
