package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ccidx/internal/geom"
)

func genDiagonalPoints(rng *rand.Rand, n int, coordRange int64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		x := rng.Int63n(coordRange)
		y := x + rng.Int63n(coordRange-x+1)
		pts[i] = geom.Point{X: x, Y: y, ID: uint64(i)}
	}
	return pts
}

func queryOracle(pts []geom.Point, a int64) map[uint64]int {
	out := map[uint64]int{}
	for _, p := range pts {
		if p.X <= a && p.Y >= a {
			out[p.ID]++
		}
	}
	return out
}

func runDiagonal(t *Tree, a int64) map[uint64]int {
	got := map[uint64]int{}
	t.DiagonalQuery(a, func(p geom.Point) bool {
		got[p.ID]++
		return true
	})
	return got
}

func requireSame(t *testing.T, tr *Tree, pts []geom.Point, a int64, label string) {
	t.Helper()
	got := runDiagonal(tr, a)
	want := queryOracle(pts, a)
	if !sameMultiset(got, want) {
		miss, extra := diffMultiset(want, got)
		t.Fatalf("%s a=%d: got %d want %d (missing %v, extra %v)", label, a, len(got), len(want), miss, extra)
	}
}

func diffMultiset(want, got map[uint64]int) (missing, extra []uint64) {
	for id, k := range want {
		if got[id] < k {
			missing = append(missing, id)
		}
	}
	for id, k := range got {
		if want[id] < k {
			extra = append(extra, id)
		}
	}
	if len(missing) > 8 {
		missing = missing[:8]
	}
	if len(extra) > 8 {
		extra = extra[:8]
	}
	return
}

// --- static behaviour -------------------------------------------------------

func TestStaticSmallTreesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(200)
		pts := genDiagonalPoints(rng, n, 50)
		tr := New(Config{B: 4}, pts)
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for a := int64(-2); a <= 52; a++ {
			requireSame(t, tr, pts, a, "static")
		}
	}
}

func TestStaticMultiLevelTree(t *testing.T) {
	// Force several metablock levels: n >> B^2 with B=4.
	rng := rand.New(rand.NewSource(2))
	pts := genDiagonalPoints(rng, 3000, 1000)
	tr := New(Config{B: 4}, pts)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 250; trial++ {
		a := rng.Int63n(1004) - 2
		requireSame(t, tr, pts, a, "multilevel")
	}
}

func TestStaticAllPointsOneColumn(t *testing.T) {
	// Degenerate input: all x equal; partitions collapse.
	pts := make([]geom.Point, 120)
	for i := range pts {
		pts[i] = geom.Point{X: 10, Y: 10 + int64(i), ID: uint64(i)}
	}
	tr := New(Config{B: 4}, pts)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, a := range []int64{9, 10, 11, 70, 129, 130} {
		requireSame(t, tr, pts, a, "column")
	}
}

func TestStaticAllPointsOnDiagonal(t *testing.T) {
	pts := make([]geom.Point, 150)
	for i := range pts {
		pts[i] = geom.Point{X: int64(i), Y: int64(i), ID: uint64(i)}
	}
	tr := New(Config{B: 4}, pts)
	for _, a := range []int64{-1, 0, 1, 75, 149, 150} {
		requireSame(t, tr, pts, a, "diagonal")
	}
}

func TestEmptyTreeQueries(t *testing.T) {
	tr := New(Config{B: 4}, nil)
	if got := runDiagonal(tr, 0); len(got) != 0 {
		t.Fatalf("empty tree returned %v", got)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsBelowDiagonal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{B: 4}, []geom.Point{{X: 5, Y: 4}})
}

func TestQueryEarlyStop(t *testing.T) {
	pts := genDiagonalPoints(rand.New(rand.NewSource(3)), 500, 100)
	tr := New(Config{B: 4}, pts)
	count := 0
	tr.DiagonalQuery(50, func(geom.Point) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop emitted %d", count)
	}
}

// --- dynamic behaviour -------------------------------------------------------

func TestInsertIntoEmptyTree(t *testing.T) {
	tr := New(Config{B: 4}, nil)
	var pts []geom.Point
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 400; i++ {
		x := rng.Int63n(100)
		p := geom.Point{X: x, Y: x + rng.Int63n(101-x), ID: uint64(i)}
		tr.Insert(p)
		pts = append(pts, p)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 400 {
		t.Fatalf("Len=%d", tr.Len())
	}
	for a := int64(-1); a <= 101; a++ {
		requireSame(t, tr, pts, a, "insert-empty")
	}
}

func TestInsertIntoStaticTree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := genDiagonalPoints(rng, 1000, 300)
	tr := New(Config{B: 4}, pts)
	for i := 0; i < 1500; i++ {
		x := rng.Int63n(300)
		p := geom.Point{X: x, Y: x + rng.Int63n(301-x), ID: uint64(10000 + i)}
		tr.Insert(p)
		pts = append(pts, p)
		if i%250 == 249 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
			for k := 0; k < 40; k++ {
				requireSame(t, tr, pts, rng.Int63n(304)-2, "insert-static")
			}
		}
	}
}

func TestInsertAscendingAdversarial(t *testing.T) {
	// Ascending x on the diagonal: stresses rightmost-path splits.
	tr := New(Config{B: 4}, nil)
	var pts []geom.Point
	for i := 0; i < 800; i++ {
		p := geom.Point{X: int64(i), Y: int64(i), ID: uint64(i)}
		tr.Insert(p)
		pts = append(pts, p)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, a := range []int64{0, 1, 399, 400, 798, 799, 800} {
		requireSame(t, tr, pts, a, "ascending")
	}
}

func TestInsertDescendingAdversarial(t *testing.T) {
	tr := New(Config{B: 4}, nil)
	var pts []geom.Point
	for i := 799; i >= 0; i-- {
		p := geom.Point{X: int64(i), Y: int64(i) + 3, ID: uint64(i)}
		tr.Insert(p)
		pts = append(pts, p)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, a := range []int64{0, 1, 399, 400, 799, 802, 803} {
		requireSame(t, tr, pts, a, "descending")
	}
}

func TestInsertHighYFloodsRoot(t *testing.T) {
	// Every insert lands in the root's update block: exercises root level I
	// and level II cascades.
	rng := rand.New(rand.NewSource(6))
	pts := genDiagonalPoints(rng, 500, 100)
	tr := New(Config{B: 4}, pts)
	for i := 0; i < 600; i++ {
		p := geom.Point{X: rng.Int63n(100), Y: 1000 + int64(i), ID: uint64(50000 + i)}
		tr.Insert(p)
		pts = append(pts, p)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 60; k++ {
		requireSame(t, tr, pts, rng.Int63n(1700)-2, "flood")
	}
}

func TestWalkEnumeratesEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := genDiagonalPoints(rng, 700, 200)
	tr := New(Config{B: 4}, pts[:300])
	for _, p := range pts[300:] {
		tr.Insert(p)
	}
	seen := map[uint64]int{}
	tr.Walk(func(p geom.Point) bool {
		seen[p.ID]++
		return true
	})
	if len(seen) != 700 {
		t.Fatalf("walk saw %d distinct ids, want 700", len(seen))
	}
	for id, k := range seen {
		if k != 1 {
			t.Fatalf("id %d seen %d times", id, k)
		}
	}
}

func TestPropertyRandomInsertQueryAgainstOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := 4 + rng.Intn(3)
		nStatic := rng.Intn(300)
		pts := genDiagonalPoints(rng, nStatic, 60)
		tr := New(Config{B: b}, pts)
		for i := 0; i < 200; i++ {
			x := rng.Int63n(60)
			p := geom.Point{X: x, Y: x + rng.Int63n(61-x), ID: uint64(1000 + i)}
			tr.Insert(p)
			pts = append(pts, p)
		}
		for k := 0; k < 15; k++ {
			a := rng.Int63n(64) - 2
			if !sameMultiset(runDiagonal(tr, a), queryOracle(pts, a)) {
				return false
			}
		}
		return tr.CheckInvariants() == nil
	}
	// Fixed-seed Rand keeps the property deterministic (testing/quick
	// defaults to a time-seeded generator).
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(72))}
	if testing.Short() {
		cfg.MaxCount = 6
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// --- bounds ------------------------------------------------------------------

func logBn(n, b int) int {
	l := 1
	v := b
	for v < n {
		v *= b
		l++
	}
	return l
}

// Theorem 3.2: static query I/O <= c1*log_B n + c2*t/B + c3. The constants
// absorb the O(1)-page control blobs per visited metablock.
func TestStaticQueryIOBound(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	b := 8
	n := 40000
	trials := 120
	if testing.Short() {
		n, trials = 10000, 60
	}
	pts := genDiagonalPoints(rng, n, 100000)
	tr := New(Config{B: b}, pts)
	lb := logBn(n, b*b) // metablock tree height is log_{B}(n/B^2)-ish; use log_{B^2} n
	for trial := 0; trial < trials; trial++ {
		a := rng.Int63n(100004) - 2
		before := tr.Pager().Stats()
		tq := 0
		tr.DiagonalQuery(a, func(geom.Point) bool { tq++; return true })
		ios := tr.Pager().Stats().Sub(before).IOs()
		bound := int64(40*lb) + 6*int64(tq)/int64(b) + 40
		if ios > bound {
			t.Fatalf("a=%d t=%d: %d I/Os exceeds bound %d", a, tq, ios, bound)
		}
	}
}

// Theorem 3.2 / Lemma 3.4: space O(n/B) blocks.
func TestSpaceBound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := 8
	n := 30000
	pts := genDiagonalPoints(rng, n, 1<<40)
	tr := New(Config{B: b}, pts)
	pages := tr.Pager().Allocated()
	// Stored twice (vertical+horizontal), corner structures up to 3k more,
	// TS up to B^2 per metablock, control blobs: still c*n/B.
	limit := int64(12 * n / b)
	if pages > limit {
		t.Fatalf("space %d pages exceeds %d (=12n/B)", pages, limit)
	}
}

// Space stays O(n/B) under inserts too (Lemma 3.4 for the augmented tree).
func TestDynamicSpaceBound(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	b := 8
	tr := New(Config{B: b}, nil)
	n := 20000
	if testing.Short() {
		n = 5000
	}
	for i := 0; i < n; i++ {
		x := rng.Int63n(1 << 30)
		tr.Insert(geom.Point{X: x, Y: x + rng.Int63n(1<<30), ID: uint64(i)})
	}
	pages := tr.Pager().Allocated()
	limit := int64(14 * n / b)
	if pages > limit {
		t.Fatalf("space %d pages exceeds %d", pages, limit)
	}
}

// Theorem 3.7: amortized insert I/O is O(log_B n + (log_B n)^2/B).
func TestInsertAmortizedIOBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := 8
	base := 20000
	extra := 4000
	if testing.Short() {
		base, extra = 6000, 1500
	}
	tr := New(Config{B: b}, genDiagonalPoints(rng, base, 1<<30))
	before := tr.Pager().Stats()
	for i := 0; i < extra; i++ {
		x := rng.Int63n(1 << 30)
		tr.Insert(geom.Point{X: x, Y: x + rng.Int63n(1<<30-x), ID: uint64(1 << 40)})
	}
	per := float64(tr.Pager().Stats().Sub(before).IOs()) / float64(extra)
	lb := float64(logBn(tr.Len(), b))
	bound := 60*lb + 20*lb*lb/float64(b) + 60
	if per > bound {
		t.Fatalf("amortized insert I/O %.1f exceeds %.1f", per, bound)
	}
	t.Logf("amortized insert I/O: %.1f (bound %.1f)", per, bound)
}

// Ablation sanity: disabling TS/corner structures must not affect
// correctness, only I/O counts (experiments E13/E14 measure the cost).
func TestAblationsRemainCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pts := genDiagonalPoints(rng, 1200, 400)
	for _, cfg := range []Config{
		{B: 4, DisableTS: true},
		{B: 4, DisableCorner: true},
		{B: 4, DisableTS: true, DisableCorner: true},
	} {
		tr := New(cfg, pts)
		extra := append([]geom.Point(nil), pts...)
		for i := 0; i < 300; i++ {
			x := rng.Int63n(400)
			p := geom.Point{X: x, Y: x + rng.Int63n(401-x), ID: uint64(90000 + i)}
			tr.Insert(p)
			extra = append(extra, p)
		}
		for k := 0; k < 50; k++ {
			a := rng.Int63n(404) - 2
			if !sameMultiset(runDiagonal(tr, a), queryOracle(extra, a)) {
				t.Fatalf("cfg %+v: mismatch at a=%d", cfg, a)
			}
		}
	}
}

func TestStabAliasesDiagonalQuery(t *testing.T) {
	pts := []geom.Point{{X: 1, Y: 5, ID: 1}, {X: 3, Y: 4, ID: 2}, {X: 6, Y: 9, ID: 3}}
	tr := New(Config{B: 4}, pts)
	var got []geom.Point
	tr.Stab(4, geom.Collect(&got))
	if len(got) != 2 {
		t.Fatalf("stab(4) returned %d intervals, want 2", len(got))
	}
}
