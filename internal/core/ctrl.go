package core

import (
	"ccidx/internal/disk"
	"ccidx/internal/geom"
)

// metaCtrl is the decoded control information of one metablock (the paper's
// "control information ... split values and pointers to its children,
// boundary values and points to the horizontal organization, etc.",
// Theorem 3.2 proof). It is serialized into a blob of O(1) pages.
type metaCtrl struct {
	count   int  // points stored in this metablock's organisations
	bb      bbox // bounding box of the stored points
	vblocks []chunkRef
	hblocks []chunkRef
	corner  *cornerIdx // nil when the box misses the diagonal (or disabled)

	children []childRef

	ts  tsInfo
	upd updInfo

	td *tdInfo // internal metablocks only
}

// chunkRef describes one B-record data page together with the bounding
// coordinates of its contents, so scans know where to stop without reading
// the page.
type chunkRef struct {
	id                     disk.BlockID
	n                      int
	minX, maxX, minY, maxY int64
}

// childRef is the parent-resident description of a child metablock: its
// control blob, x-partition range, stored bounding box and point counts.
type childRef struct {
	ctrl         disk.BlockID
	xlo, xhi     int64 // x-partition (subtree) range
	bb           bbox  // child's stored bounding box
	storedCount  int
	subtreeCount int64
}

// tsInfo is the TS(M) structure: a horizontal blocking of the B^2 points
// with the largest y values among those stored in M's left siblings
// (Fig 10), plus its size and bottom boundary.
type tsInfo struct {
	blocks  []chunkRef
	count   int
	bottomY int64 // min y in TS; meaningful when count > 0
}

// updInfo is an update block: at most B buffered records.
type updInfo struct {
	id    disk.BlockID
	count int
}

// tdInfo is the TD corner structure of an internal metablock (Section 3.2):
// the points recently placed in this metablock's children, organised as a
// corner structure for querying plus a raw entry list for rewrites, plus its
// own update block. Entry aux fields encode (slot, inU): the child index
// the point currently lives under and whether it still sits in that child's
// update block.
type tdInfo struct {
	entryBlocks []chunkRef
	count       int
	corner      *cornerIdx
	upd         updInfo
}

const (
	tdInUFlag = 1 << 16
)

func tdAux(slot int, inU bool) uint32 {
	a := uint32(slot)
	if inU {
		a |= tdInUFlag
	}
	return a
}

func tdSlot(aux uint32) int { return int(aux & 0xFFFF) }
func tdInU(aux uint32) bool { return aux&tdInUFlag != 0 }

// --- serialization ----------------------------------------------------------

type encoder struct{ b []byte }

func (e *encoder) u8(v uint8)   { e.b = append(e.b, v) }
func (e *encoder) u16(v uint16) { e.b = append(e.b, byte(v), byte(v>>8)) }
func (e *encoder) u64(v uint64) {
	e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
func (e *encoder) i64(v int64) { e.u64(uint64(v)) }
func (e *encoder) u32(v uint32) {
	e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

type decoder struct {
	b   []byte
	off int
}

func (d *decoder) u8() uint8 {
	v := d.b[d.off]
	d.off++
	return v
}
func (d *decoder) u16() uint16 {
	v := uint16(d.b[d.off]) | uint16(d.b[d.off+1])<<8
	d.off += 2
	return v
}
func (d *decoder) u32() uint32 {
	v := le32(d.b[d.off:])
	d.off += 4
	return v
}
func (d *decoder) u64() uint64 {
	v := le64(d.b[d.off:])
	d.off += 8
	return v
}
func (d *decoder) i64() int64 { return int64(d.u64()) }

func encChunks(e *encoder, cs []chunkRef) {
	e.u16(uint16(len(cs)))
	for _, c := range cs {
		e.i64(int64(c.id))
		e.u16(uint16(c.n))
		e.i64(c.minX)
		e.i64(c.maxX)
		e.i64(c.minY)
		e.i64(c.maxY)
	}
}

func decChunks(d *decoder) []chunkRef {
	n := int(d.u16())
	cs := make([]chunkRef, n)
	for i := range cs {
		cs[i].id = disk.BlockID(d.i64())
		cs[i].n = int(d.u16())
		cs[i].minX = d.i64()
		cs[i].maxX = d.i64()
		cs[i].minY = d.i64()
		cs[i].maxY = d.i64()
	}
	return cs
}

func encBBox(e *encoder, b bbox) {
	if b.valid {
		e.u8(1)
	} else {
		e.u8(0)
	}
	e.i64(b.minX)
	e.i64(b.maxX)
	e.i64(b.minY)
	e.i64(b.maxY)
}

func decBBox(d *decoder) bbox {
	var b bbox
	b.valid = d.u8() == 1
	b.minX = d.i64()
	b.maxX = d.i64()
	b.minY = d.i64()
	b.maxY = d.i64()
	return b
}

func encCorner(e *encoder, c *cornerIdx) {
	if c == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	encChunks(e, c.vblocks)
	e.u16(uint16(len(c.stars)))
	for _, s := range c.stars {
		e.i64(s.value)
		e.u32(uint32(s.count))
		encChunks(e, s.blocks)
	}
}

func decCorner(d *decoder) *cornerIdx {
	if d.u8() == 0 {
		return nil
	}
	c := &cornerIdx{vblocks: decChunks(d)}
	ns := int(d.u16())
	c.stars = make([]starEntry, ns)
	for i := range c.stars {
		c.stars[i].value = d.i64()
		c.stars[i].count = int(d.u32())
		c.stars[i].blocks = decChunks(d)
	}
	return c
}

func (t *Tree) encodeCtrl(m *metaCtrl) []byte {
	e := &encoder{}
	e.u32(uint32(m.count))
	encBBox(e, m.bb)
	encChunks(e, m.vblocks)
	encChunks(e, m.hblocks)
	encCorner(e, m.corner)

	e.u16(uint16(len(m.children)))
	for _, c := range m.children {
		e.i64(int64(c.ctrl))
		e.i64(c.xlo)
		e.i64(c.xhi)
		encBBox(e, c.bb)
		e.u32(uint32(c.storedCount))
		e.i64(c.subtreeCount)
	}

	encChunks(e, m.ts.blocks)
	e.u32(uint32(m.ts.count))
	e.i64(m.ts.bottomY)

	e.i64(int64(m.upd.id))
	e.u16(uint16(m.upd.count))

	if m.td == nil {
		e.u8(0)
	} else {
		e.u8(1)
		encChunks(e, m.td.entryBlocks)
		e.u32(uint32(m.td.count))
		encCorner(e, m.td.corner)
		e.i64(int64(m.td.upd.id))
		e.u16(uint16(m.td.upd.count))
	}
	return e.b
}

func (t *Tree) decodeCtrl(data []byte) *metaCtrl {
	d := &decoder{b: data}
	m := &metaCtrl{}
	m.count = int(d.u32())
	m.bb = decBBox(d)
	m.vblocks = decChunks(d)
	m.hblocks = decChunks(d)
	m.corner = decCorner(d)

	nc := int(d.u16())
	m.children = make([]childRef, nc)
	for i := range m.children {
		m.children[i].ctrl = disk.BlockID(d.i64())
		m.children[i].xlo = d.i64()
		m.children[i].xhi = d.i64()
		m.children[i].bb = decBBox(d)
		m.children[i].storedCount = int(d.u32())
		m.children[i].subtreeCount = d.i64()
	}

	m.ts.blocks = decChunks(d)
	m.ts.count = int(d.u32())
	m.ts.bottomY = d.i64()

	m.upd.id = disk.BlockID(d.i64())
	m.upd.count = int(d.u16())

	if d.u8() == 1 {
		m.td = &tdInfo{}
		m.td.entryBlocks = decChunks(d)
		m.td.count = int(d.u32())
		m.td.corner = decCorner(d)
		m.td.upd.id = disk.BlockID(d.i64())
		m.td.upd.count = int(d.u16())
	}
	return m
}

// loadCtrl reads and decodes a metablock's control blob into fresh
// allocations; mutate paths use it because they keep several decoded ctrls
// alive across arbitrary restructuring. Query paths use loadCtrlFrame.
func (t *Tree) loadCtrl(id disk.BlockID) *metaCtrl {
	return t.decodeCtrl(t.readBlob(id))
}

// --- reusable query-path decode frames --------------------------------------

// ctrlFrame is a recyclable decode target for query-path metablock loads:
// the blob scratch, the decoded control struct with all its nested slices,
// and the per-node child-classification scratch live here, so a
// steady-state query allocates nothing per metablock visited. Frames come
// from the tree's sync.Pool (concurrent queries each get their own) and are
// only valid between getFrame and putFrame.
type ctrlFrame struct {
	m        metaCtrl
	corner   cornerIdx
	td       tdInfo
	tdCorner cornerIdx
	blob     []byte

	// processChildren scratch (per visited node, alive across recursion
	// into children, hence frame-resident rather than shared).
	classes   []childClass
	direct    []bool
	tsCovered []bool
}

func (t *Tree) getFrame() *ctrlFrame {
	if f, ok := t.frames.Get().(*ctrlFrame); ok {
		return f
	}
	return &ctrlFrame{}
}

func (t *Tree) putFrame(f *ctrlFrame) { t.frames.Put(f) }

// loadCtrlFrame reads and decodes a metablock's control blob into f,
// reusing every slice capacity the frame already owns. I/O cost is
// identical to loadCtrl: one read per blob chain page.
func (t *Tree) loadCtrlFrame(id disk.BlockID, f *ctrlFrame) *metaCtrl {
	f.blob = t.appendBlob(f.blob[:0], id)
	t.decodeCtrlInto(f.blob, f)
	return &f.m
}

// chunksFor returns dst resized to n elements, reusing capacity.
func chunksFor(dst []chunkRef, n int) []chunkRef {
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]chunkRef, n)
}

func decChunksInto(d *decoder, dst []chunkRef) []chunkRef {
	n := int(d.u16())
	dst = chunksFor(dst, n)
	for i := range dst {
		dst[i].id = disk.BlockID(d.i64())
		dst[i].n = int(d.u16())
		dst[i].minX = d.i64()
		dst[i].maxX = d.i64()
		dst[i].minY = d.i64()
		dst[i].maxY = d.i64()
	}
	return dst
}

// decCornerInto decodes a present corner structure into c, reusing the
// star entries' nested block slices where capacities allow.
func decCornerInto(d *decoder, c *cornerIdx) {
	c.vblocks = decChunksInto(d, c.vblocks)
	ns := int(d.u16())
	if cap(c.stars) >= ns {
		c.stars = c.stars[:ns]
	} else {
		// Keep the existing entries (their blocks capacities survive) and
		// extend; the fresh tail entries warm up over the first few queries.
		c.stars = append(c.stars[:cap(c.stars)], make([]starEntry, ns-cap(c.stars))...)
	}
	for i := range c.stars {
		c.stars[i].value = d.i64()
		c.stars[i].count = int(d.u32())
		c.stars[i].blocks = decChunksInto(d, c.stars[i].blocks)
	}
}

// decodeCtrlInto is decodeCtrl decoding into a reusable frame.
func (t *Tree) decodeCtrlInto(data []byte, f *ctrlFrame) {
	d := &decoder{b: data}
	m := &f.m
	m.count = int(d.u32())
	m.bb = decBBox(d)
	m.vblocks = decChunksInto(d, m.vblocks)
	m.hblocks = decChunksInto(d, m.hblocks)
	if d.u8() == 1 {
		decCornerInto(d, &f.corner)
		m.corner = &f.corner
	} else {
		m.corner = nil
	}

	nc := int(d.u16())
	if cap(m.children) >= nc {
		m.children = m.children[:nc]
	} else {
		m.children = make([]childRef, nc)
	}
	for i := range m.children {
		m.children[i].ctrl = disk.BlockID(d.i64())
		m.children[i].xlo = d.i64()
		m.children[i].xhi = d.i64()
		m.children[i].bb = decBBox(d)
		m.children[i].storedCount = int(d.u32())
		m.children[i].subtreeCount = d.i64()
	}

	m.ts.blocks = decChunksInto(d, m.ts.blocks)
	m.ts.count = int(d.u32())
	m.ts.bottomY = d.i64()

	m.upd.id = disk.BlockID(d.i64())
	m.upd.count = int(d.u16())

	if d.u8() == 1 {
		f.td.entryBlocks = decChunksInto(d, f.td.entryBlocks)
		f.td.count = int(d.u32())
		if d.u8() == 1 {
			decCornerInto(d, &f.tdCorner)
			f.td.corner = &f.tdCorner
		} else {
			f.td.corner = nil
		}
		f.td.upd.id = disk.BlockID(d.i64())
		f.td.upd.count = int(d.u16())
		m.td = &f.td
	} else {
		m.td = nil
	}
}

// storeCtrl writes m's control blob, preserving the head id; when id is
// NilBlock a fresh blob is created and its head returned.
func (t *Tree) storeCtrl(id disk.BlockID, m *metaCtrl) disk.BlockID {
	return t.rewriteBlob(id, t.encodeCtrl(m))
}

// updPoints reads an update block's buffered records (empty when absent).
func (t *Tree) updRecs(u updInfo) []rec {
	if u.id == disk.NilBlock || u.count == 0 {
		return nil
	}
	rs := t.readRecBlock(u.id)
	return rs
}

// scanUpd streams an update block's buffered records without allocating
// (no I/O when the block is absent or empty, exactly like updRecs).
// Returns false if fn stopped the scan.
func (t *Tree) scanUpd(u updInfo, fn func(rec) bool) bool {
	if u.id == disk.NilBlock || u.count == 0 {
		return true
	}
	return t.scanRecs(u.id, fn)
}

// updPointsOnly reads an update block's buffered points.
func (t *Tree) updPoints(u updInfo) []geom.Point {
	rs := t.updRecs(u)
	pts := make([]geom.Point, len(rs))
	for i, r := range rs {
		pts[i] = r.pt
	}
	return pts
}
