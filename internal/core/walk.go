package core

import (
	"fmt"

	"ccidx/internal/disk"
	"ccidx/internal/geom"
)

// Walk enumerates every live point in the tree (stored and buffered), in no
// particular order. TD entries are bookkeeping copies and are not emitted;
// tombstoned copies are filtered like the query path filters them.
func (t *Tree) Walk(emit geom.Emit) {
	if t.deadCount == 0 {
		t.walk(t.root, emit)
		return
	}
	suppressed := make(map[geom.Point]int)
	t.walk(t.root, func(p geom.Point) bool {
		if suppressed[p] < t.dead[p] {
			suppressed[p]++
			return true
		}
		return emit(p)
	})
}

func (t *Tree) walk(id disk.BlockID, emit geom.Emit) bool {
	m := t.loadCtrl(id)
	for _, hb := range m.hblocks {
		for _, p := range t.readPoints(hb.id) {
			if !emit(p) {
				return false
			}
		}
	}
	for _, p := range t.updPoints(m.upd) {
		if !emit(p) {
			return false
		}
	}
	for _, c := range m.children {
		if !t.walk(c.ctrl, emit) {
			return false
		}
	}
	return true
}

// CheckInvariants validates the structural invariants the algorithms rely
// on; tests call it after batches of operations. It returns an error
// describing the first violation found. Reads performed here are metered
// like any others, so measuring callers should snapshot stats around it.
func (t *Tree) CheckInvariants() error {
	total, err := t.checkNode(t.root)
	if err != nil {
		return err
	}
	// The physical structure holds the live points plus the tombstoned
	// copies awaiting the next global rebuild.
	if total != t.n+t.deadCount {
		return fmt.Errorf("core: tree claims %d live + %d dead points, found %d", t.n, t.deadCount, total)
	}
	rm := t.loadCtrl(t.root)
	if rm.ts.count != 0 {
		return fmt.Errorf("core: root has a TS structure (%d points)", rm.ts.count)
	}
	return nil
}

// checkNode validates the metablock at id and returns its subtree point
// count.
func (t *Tree) checkNode(id disk.BlockID) (int, error) {
	m := t.loadCtrl(id)
	cap2 := t.cap2()

	stored := t.readStoredPoints(m)
	if len(stored) != m.count {
		return 0, fmt.Errorf("core: node %d: count %d but %d points in hblocks", id, m.count, len(stored))
	}
	if m.count > 2*cap2 {
		return 0, fmt.Errorf("core: node %d: %d stored points exceeds 2B^2=%d", id, m.count, 2*cap2)
	}
	var vcount int
	for _, vb := range m.vblocks {
		vcount += vb.n
		if vb.n > t.cfg.B {
			return 0, fmt.Errorf("core: node %d: vertical chunk with %d > B records", id, vb.n)
		}
	}
	if vcount != m.count {
		return 0, fmt.Errorf("core: node %d: vertical org has %d points, want %d", id, vcount, m.count)
	}
	bb := bboxOf(stored)
	if bb != m.bb {
		return 0, fmt.Errorf("core: node %d: stale bbox %+v vs %+v", id, m.bb, bb)
	}
	for _, p := range stored {
		if !p.AboveDiagonal() {
			return 0, fmt.Errorf("core: node %d: stored point %v below diagonal", id, p)
		}
	}
	// Corner structure present whenever the box meets the diagonal.
	if !t.cfg.DisableCorner && m.bb.meetsDiagonal() && m.corner == nil {
		return 0, fmt.Errorf("core: node %d: bbox meets diagonal but no corner structure", id)
	}
	// Corner structure space bound (Lemma 3.1 charging argument).
	if m.corner != nil {
		if sp := m.corner.starPoints(); sp > 3*len(stored)+t.cfg.B {
			return 0, fmt.Errorf("core: node %d: corner structure stores %d star points for %d input points", id, sp, len(stored))
		}
	}
	if m.upd.count > t.cfg.B {
		return 0, fmt.Errorf("core: node %d: update block has %d > B points", id, m.upd.count)
	}

	if len(m.children) == 0 {
		if m.td != nil && (m.td.count > 0 || m.td.upd.count > 0) {
			return 0, fmt.Errorf("core: leaf %d has TD entries", id)
		}
		return m.count + m.upd.count, nil
	}

	if len(m.children) >= 2*t.cfg.B {
		return 0, fmt.Errorf("core: node %d: branching factor %d >= 2B", id, len(m.children))
	}

	// TD entries, indexed by slot, split into buffered and merged copies.
	tdEntries := t.readTDEntries(m)
	if m.td != nil {
		tdEntries = append(tdEntries, t.updRecs(m.td.upd)...)
	}
	tdBuffered := map[int]map[geom.Point]int{}
	tdMerged := map[int]map[geom.Point]int{}
	addTo := func(dst map[int]map[geom.Point]int, slot int, p geom.Point) {
		if dst[slot] == nil {
			dst[slot] = map[geom.Point]int{}
		}
		dst[slot][p]++
	}
	for _, r := range tdEntries {
		if tdInU(r.aux) {
			addTo(tdBuffered, tdSlot(r.aux), r.pt)
		} else {
			addTo(tdMerged, tdSlot(r.aux), r.pt)
		}
	}

	total := m.count + m.upd.count
	var leftStored []geom.Point // stored points of children 0..i-1
	leftMultiset := map[geom.Point]int{}
	prevHi := int64(-1 << 63)
	for i, c := range m.children {
		if c.xlo > c.xhi {
			return 0, fmt.Errorf("core: node %d child %d: inverted partition [%d,%d]", id, i, c.xlo, c.xhi)
		}
		if c.xlo < prevHi {
			return 0, fmt.Errorf("core: node %d child %d: partition overlaps previous (xlo %d < prev xhi %d)", id, i, c.xlo, prevHi)
		}
		prevHi = c.xhi
		cm := t.loadCtrl(c.ctrl)
		if cm.count != c.storedCount {
			return 0, fmt.Errorf("core: node %d child %d: cached storedCount %d, actual %d", id, i, c.storedCount, cm.count)
		}
		if cm.bb != c.bb {
			return 0, fmt.Errorf("core: node %d child %d: cached bbox stale", id, i)
		}
		// Every buffered child point must be covered by this node's TD
		// (that is what lets the query skip children safely, Lemma 3.5).
		for _, p := range t.updPoints(cm.upd) {
			if tdBuffered[i][p] == 0 {
				return 0, fmt.Errorf("core: node %d child %d: buffered point %v not in TD", id, i, p)
			}
			tdBuffered[i][p]--
		}
		cs := t.readStoredPoints(cm)

		// TS coverage (the condition the TS-covered query mode relies on):
		// the TS points are genuine left-sibling stored points, and every
		// current left-sibling stored point above the TS bottom boundary
		// is either in TS or registered in TD as merged-after-build.
		if cm.ts.count > 0 || len(leftStored) > 0 {
			tsPts := map[geom.Point]int{}
			tsTotal := 0
			for _, b := range cm.ts.blocks {
				for _, p := range t.readPoints(b.id) {
					tsPts[p]++
					tsTotal++
				}
			}
			if tsTotal != cm.ts.count {
				return 0, fmt.Errorf("core: node %d child %d: TS count %d but %d points in blocks", id, i, cm.ts.count, tsTotal)
			}
			for p, k := range tsPts {
				if leftMultiset[p] < k {
					return 0, fmt.Errorf("core: node %d child %d: TS point %v not stored in a left sibling", id, i, p)
				}
			}
			if cm.ts.count > 0 {
				seen := map[geom.Point]int{}
				for _, p := range leftStored {
					if p.Y <= cm.ts.bottomY {
						continue
					}
					seen[p]++
					if seen[p] <= tsPts[p] {
						continue
					}
					// Must be TD-covered as a merged point of some left
					// slot (a single TD entry legitimately covers the TS
					// checks of every right sibling).
					covered := false
					for j := 0; j < i; j++ {
						if tdMerged[j][p] > 0 {
							covered = true
							break
						}
					}
					if !covered {
						return 0, fmt.Errorf("core: node %d child %d: stored point %v above TS bottom %d missing from TS and TD", id, i, p, cm.ts.bottomY)
					}
				}
			}
		}

		sub, err := t.checkNode(c.ctrl)
		if err != nil {
			return 0, err
		}
		if int64(sub) != c.subtreeCount {
			return 0, fmt.Errorf("core: node %d child %d: cached subtreeCount %d, actual %d", id, i, c.subtreeCount, sub)
		}
		total += sub
		leftStored = append(leftStored, cs...)
		for _, p := range cs {
			leftMultiset[p]++
		}
	}
	for slot, ms := range tdBuffered {
		for p, k := range ms {
			if k > 0 {
				return 0, fmt.Errorf("core: node %d: TD claims %d extra buffered copies of %v in slot %d", id, k, p, slot)
			}
		}
	}
	return total, nil
}
