package core

import (
	"ccidx/internal/disk"
	"ccidx/internal/geom"
)

// Static construction (Section 3.1, Fig 8): the root metablock holds the
// B^2 points with the largest y values; the remaining points are divided by
// x into at most B groups, each built recursively; a group of at most B^2
// points becomes a leaf. The build also materialises each child's TS
// structure (the top B^2 points among the stored sets of its left
// siblings, Fig 10) and the corner structure of every metablock whose
// bounding box meets the diagonal.
//
// The build stages points in memory and writes the structure out, so its
// I/O cost is the writes of the structure itself, O(n/B) pages; the
// paper's O((n/B) log_B n) build bound allows for external sorting, which
// the simulation does not need to model (sorting cost is CPU, the measured
// quantity is page traffic).

// buildResult carries what a parent needs to know about a freshly built
// child.
type buildResult struct {
	ctrl         disk.BlockID
	bb           bbox
	stored       []geom.Point // the child's stored points (for TS pools)
	storedCount  int
	subtreeCount int64
	xlo, xhi     int64
}

// buildMetablock builds a metablock subtree over pts (sorted by x) and
// returns its control blob head. Used by New and by subtree rebuilds.
func (t *Tree) buildMetablock(pts []geom.Point, _ bool) disk.BlockID {
	return t.buildMeta(pts).ctrl
}

func (t *Tree) buildMeta(pts []geom.Point) buildResult {
	cap2 := t.cap2()
	m := &metaCtrl{}
	var stored, rest []geom.Point
	if len(pts) <= cap2 {
		stored = append([]geom.Point(nil), pts...)
	} else {
		// Top B^2 by y become this metablock's stored set.
		byY := append([]geom.Point(nil), pts...)
		geom.SortByYDesc(byY)
		storedSet := make(map[geom.Point]int, cap2)
		for _, p := range byY[:cap2] {
			storedSet[p]++ // multiset: exact duplicate points are legal
		}
		stored = byY[:cap2:cap2]
		rest = make([]geom.Point, 0, len(pts)-cap2)
		for _, p := range pts { // preserve x order
			if storedSet[p] > 0 {
				storedSet[p]--
				continue
			}
			rest = append(rest, p)
		}
	}
	t.fillStoredOrgs(m, stored)

	if len(rest) > 0 {
		groups := (len(rest) + cap2 - 1) / cap2
		if groups > t.cfg.B {
			groups = t.cfg.B
		}
		per := (len(rest) + groups - 1) / groups
		var results []buildResult
		for i := 0; i < len(rest); i += per {
			j := i + per
			if j > len(rest) {
				j = len(rest)
			}
			results = append(results, t.buildMeta(rest[i:j]))
		}
		// Child table.
		for _, r := range results {
			m.children = append(m.children, childRef{
				ctrl: r.ctrl, xlo: r.xlo, xhi: r.xhi, bb: r.bb,
				storedCount: r.storedCount, subtreeCount: r.subtreeCount,
			})
		}
		// TS structures: prefix pools of the children's stored points.
		t.rebuildChildTS(results)
		m.td = &tdInfo{}
	}

	ctrl := t.storeCtrl(disk.NilBlock, m)
	all := pts
	var xlo, xhi int64
	if len(all) > 0 {
		xlo, xhi = all[0].X, all[len(all)-1].X
	}
	return buildResult{
		ctrl: ctrl, bb: m.bb, stored: stored,
		storedCount: len(stored), subtreeCount: int64(len(pts)),
		xlo: xlo, xhi: xhi,
	}
}

// fillStoredOrgs populates the vertical, horizontal and corner
// organisations of m from the stored point set.
func (t *Tree) fillStoredOrgs(m *metaCtrl, stored []geom.Point) {
	m.count = len(stored)
	m.bb = bboxOf(stored)

	byX := append([]geom.Point(nil), stored...)
	geom.SortByX(byX)
	m.vblocks = t.writePointBlocks(byX)

	byY := append([]geom.Point(nil), stored...)
	geom.SortByYDesc(byY)
	m.hblocks = t.writePointBlocks(byY)

	if !t.cfg.DisableCorner && m.bb.meetsDiagonal() {
		rs := make([]rec, len(stored))
		for i, p := range stored {
			rs[i] = rec{pt: p}
		}
		m.corner = t.buildCorner(rs)
	}
}

// freeStoredOrgs releases the organisation pages of m (not the control blob
// itself, and not children/TS/update/TD state).
func (t *Tree) freeStoredOrgs(m *metaCtrl) {
	t.freeChunks(m.vblocks)
	t.freeChunks(m.hblocks)
	t.freeCorner(m.corner)
	m.vblocks, m.hblocks, m.corner = nil, nil, nil
}

// rebuildChildTS writes TS structures for a freshly built child sequence:
// TS(child i) = top B^2 points among the stored sets of children 0..i-1.
// Children's control blobs are patched in place.
func (t *Tree) rebuildChildTS(results []buildResult) {
	cap2 := t.cap2()
	var pool []geom.Point
	for i, r := range results {
		cm := t.loadCtrl(r.ctrl)
		t.freeChunks(cm.ts.blocks)
		cm.ts = t.writeTS(pool)
		t.storeCtrl(r.ctrl, cm)
		_ = i
		pool = topYPool(append(pool, r.stored...), cap2)
	}
}

// writeTS materialises a TS structure from the pool (sorted and blocked
// horizontally).
func (t *Tree) writeTS(pool []geom.Point) tsInfo {
	if len(pool) == 0 {
		return tsInfo{}
	}
	byY := append([]geom.Point(nil), pool...)
	geom.SortByYDesc(byY)
	info := tsInfo{
		blocks:  t.writePointBlocks(byY),
		count:   len(byY),
		bottomY: byY[len(byY)-1].Y,
	}
	return info
}

// topYPool keeps the k highest-y points of pts (by the YDesc total order).
func topYPool(pts []geom.Point, k int) []geom.Point {
	if len(pts) <= k {
		return pts
	}
	geom.SortByYDesc(pts)
	return append([]geom.Point(nil), pts[:k]...)
}
