package core

import (
	"sort"

	"ccidx/internal/geom"
)

// Corner structure of Lemma 3.1: a set S of k <= 2B^2 points (all with
// y >= x) is represented in O(k/B) blocks so that any diagonal corner query
// on S is answered in at most 2t/B + O(1) I/Os.
//
// Construction (Figs 11-12): S is blocked vertically (x-sorted, B per
// block). C is the set of block boundaries, viewed as corners on the line
// y = x. A subset C* of C is chosen right-to-left: a boundary ci is
// promoted to C* exactly when |Delta-| > |Omega|, where, relative to the
// most recently promoted corner c*:
//
//	Omega  = points with x <= ci and y >= c*          (shared answer)
//	Delta- = points with ci < x <= c*                 (strip between them)
//
// and for every c* in C* the answer set S*(c*) = {x <= c*, y >= c*} is
// stored explicitly as a horizontal blocking. The charging argument of the
// lemma bounds the total size of all S* sets by O(k); tests assert it.
//
// Query (Figs 13-14): locate the largest star s <= a; stage one reads
// S*(s) top-down until it crosses y = a (these are the answers with
// x <= s); stage two scans the vertical blocks between s and a reporting
// points with s < x <= a and y >= a. The non-promotion inequality bounds
// the stage-two waste by t/B + 1 blocks.
//
// Deviations from the paper, both straightened out in DESIGN.md: (i) the
// leftmost boundary is always promoted, which settles the "query left of
// all corners" special case the paper leaves as a minor variation, at an
// extra space cost of at most one block's worth of points; (ii) the
// structure stores 32-byte records rather than bare points so that the TD
// corner structures of Section 3.2 can keep their bookkeeping aux fields.
type cornerIdx struct {
	vblocks []chunkRef  // vertical blocking of S, x-sorted
	stars   []starEntry // ascending by value
}

// starEntry is one explicitly blocked answer set S*(value).
type starEntry struct {
	value  int64
	count  int
	blocks []chunkRef // horizontal blocking of S*(value), descending y
}

// starPoints returns the total number of points stored across all S* sets,
// the quantity bounded by the charging argument (<= 2k + O(B)).
func (c *cornerIdx) starPoints() int {
	total := 0
	for _, s := range c.stars {
		total += s.count
	}
	return total
}

// buildCorner constructs the corner structure over rs (copied; at most
// 2B^2 records, within the paper's O(B^2) main-memory allowance).
func (t *Tree) buildCorner(rs []rec) *cornerIdx {
	own := append([]rec(nil), rs...)
	sort.Slice(own, func(i, j int) bool { return geom.Less(own[i].pt, own[j].pt) })

	c := &cornerIdx{}
	c.vblocks = t.writeRecChunks(own)
	m := len(c.vblocks)
	if m <= 1 {
		return c
	}

	// Candidate boundaries, left edge of each block except the first,
	// right to left.
	type cand struct{ value int64 }
	var starsDesc []int64
	s := c.vblocks[m-1].minX // c*_1: left boundary of the rightmost block
	starsDesc = append(starsDesc, s)
	for i := m - 2; i >= 1; i-- {
		ci := c.vblocks[i].minX
		if ci == s {
			continue
		}
		omega, deltaMinus := 0, 0
		for _, r := range own {
			if r.pt.X <= ci && r.pt.Y >= s {
				omega++
			}
			if r.pt.X > ci && r.pt.X <= s {
				deltaMinus++
			}
		}
		if deltaMinus > omega {
			starsDesc = append(starsDesc, ci)
			s = ci
		}
	}
	// Always promote the leftmost boundary (special-case rule).
	if b1 := c.vblocks[1].minX; b1 != s && b1 < starsDesc[len(starsDesc)-1] {
		starsDesc = append(starsDesc, b1)
	}

	// Materialise the S* sets, ascending by star value.
	for i := len(starsDesc) - 1; i >= 0; i-- {
		v := starsDesc[i]
		var set []rec
		for _, r := range own {
			if r.pt.X <= v && r.pt.Y >= v {
				set = append(set, r)
			}
		}
		sort.Slice(set, func(a, b int) bool { return geom.YDescLess(set[a].pt, set[b].pt) })
		c.stars = append(c.stars, starEntry{
			value:  v,
			count:  len(set),
			blocks: t.writeRecChunks(set),
		})
	}
	return c
}

// writeRecChunks writes rs into B-record pages preserving order, returning
// chunk descriptors.
func (t *Tree) writeRecChunks(rs []rec) []chunkRef {
	var refs []chunkRef
	for i := 0; i < len(rs); i += t.cfg.B {
		j := i + t.cfg.B
		if j > len(rs) {
			j = len(rs)
		}
		chunk := rs[i:j]
		bb := newBBox()
		for _, r := range chunk {
			bb.add(r.pt)
		}
		refs = append(refs, chunkRef{
			id: t.writeRecBlock(chunk), n: len(chunk),
			minX: bb.minX, maxX: bb.maxX, minY: bb.minY, maxY: bb.maxY,
		})
	}
	return refs
}

// freeCorner releases every page owned by the structure.
func (t *Tree) freeCorner(c *cornerIdx) {
	if c == nil {
		return
	}
	t.freeChunks(c.vblocks)
	for _, s := range c.stars {
		t.freeChunks(s.blocks)
	}
}

// queryCorner reports every record with pt.X <= a and pt.Y >= a. Returns
// false if emit stopped the enumeration. Cost: 2t/B + O(1) I/Os.
func (t *Tree) queryCorner(c *cornerIdx, a int64, emit func(rec) bool) bool {
	if c == nil || len(c.vblocks) == 0 {
		return true
	}
	// Find the largest star value <= a.
	si := sort.Search(len(c.stars), func(i int) bool { return c.stars[i].value > a }) - 1
	if si < 0 {
		// a lies left of every star: only the leftmost vertical block can
		// contain answers (the leftmost boundary is always a star, so every
		// other block starts at or right of it).
		inQuery := func(r rec) bool {
			if r.pt.X <= a && r.pt.Y >= a {
				return emit(r)
			}
			return true
		}
		for _, vb := range c.vblocks {
			if vb.minX > a {
				break
			}
			if !t.scanRecs(vb.id, inQuery) {
				return false
			}
		}
		return true
	}
	star := c.stars[si]
	s := star.value

	// Stage one: answers with x <= s, read from S*(s) top-down.
	aboveA := func(r rec) bool {
		if r.pt.Y >= a {
			return emit(r)
		}
		return true
	}
	for _, hb := range star.blocks {
		if hb.maxY < a {
			break
		}
		if !t.scanRecs(hb.id, aboveA) {
			return false
		}
		if hb.minY < a {
			break
		}
	}

	// Stage two: answers with s < x <= a, from the vertical blocking.
	inStrip := func(r rec) bool {
		if r.pt.X > s && r.pt.X <= a && r.pt.Y >= a {
			return emit(r)
		}
		return true
	}
	start := sort.Search(len(c.vblocks), func(i int) bool { return c.vblocks[i].minX >= s })
	for i := start; i < len(c.vblocks); i++ {
		vb := c.vblocks[i]
		if vb.minX > a {
			break
		}
		if vb.maxX <= s {
			continue // entirely covered by stage one
		}
		if !t.scanRecs(vb.id, inStrip) {
			return false
		}
	}
	return true
}
