package shard

// Checkpoint fault-injection: errors (not crashes) mid-prepare, and the
// recovery contract that distinguishes them from drain-phase faults.
//
//   - A fault inside the PREPARE phase (device checkpoint writes) must
//     roll every already-prepared shard back, leave the manager serving
//     its in-memory state unharmed, and keep the SAME checkpoint
//     retryable in process.
//   - A fault inside the DRAIN (pending group-commit ops applied into the
//     trees) can leave that shard's in-memory tree half-updated: the
//     checkpoint must surface an error rather than kill the process, and
//     reopening recovers the last committed generation.

import (
	"errors"
	"path/filepath"
	"testing"

	"ccidx/internal/disk"
	"ccidx/internal/geom"
	"ccidx/internal/intervals"
	"ccidx/internal/workload"
)

// TestShardedCheckpointFaultRetry arms an increasing shared write budget
// and retries the same checkpoint on the same instance until it succeeds:
// every failed attempt must report the injected fault, leave Seq()
// unchanged, and leave the manager oracle-correct.
func TestShardedCheckpointFaultRetry(t *testing.T) {
	const span = int64(3000)
	dir := filepath.Join(t.TempDir(), "sharded")
	cfg := Config{Shards: 4, B: 8, Batch: 3, Partition: PartitionRange, Span: span, PoolFrames: 64}
	init := workload.UniformIntervals(51, 150, span, 200)
	s, err := CreateIntervalsAt(dir, cfg, init, intervals.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	live := map[uint64]geom.Interval{}
	for _, iv := range init {
		live[iv.ID] = iv
	}
	churn := workload.ChurnOps(53, workload.SeqIDs(150), 150, 120, span, 200)
	for _, op := range churn {
		switch op.Kind {
		case workload.ChurnInsert:
			s.Insert(op.Iv)
			live[op.Iv.ID] = op.Iv
		case workload.ChurnDelete:
			if _, ok := live[op.ID]; ok {
				s.Delete(op.ID)
				delete(live, op.ID)
			}
		}
	}
	// Drain the group-commit buffers up front so the injected faults land
	// in the prepare phase proper — the retryable region. (A fault during
	// the drain is the reopen-only case covered by the test below.)
	s.Flush()

	seq0 := s.Seq()
	faults := 0
	for k := int64(1); ; k++ {
		if k > 100_000 {
			t.Fatal("checkpoint never succeeded")
		}
		budget := disk.NewWriteBudget(k)
		for _, f := range s.Files() {
			f.SetWriteBudget(budget)
		}
		err := s.Checkpoint()
		if err == nil {
			break
		}
		faults++
		if !errors.Is(err, disk.ErrInjectedFault) {
			t.Fatalf("k=%d: %v", k, err)
		}
		if got := s.Seq(); got != seq0 {
			t.Fatalf("k=%d: failed checkpoint moved seq %d -> %d", k, seq0, got)
		}
		// The manager must keep serving correctly between failed attempts
		// (disarm first: queries may flush pooled frames).
		if k%29 == 0 {
			for _, f := range s.Files() {
				f.SetWriteBudget(nil)
			}
			compareSharded(t, s, live, span)
		}
	}
	for _, f := range s.Files() {
		f.SetWriteBudget(nil)
	}
	if faults == 0 {
		t.Fatal("fault injection never fired")
	}
	if got := s.Seq(); got != seq0+1 {
		t.Fatalf("seq after retried checkpoint = %d, want %d", got, seq0+1)
	}
	compareSharded(t, s, live, span)

	// The retried checkpoint is the durable one: reopen and re-verify,
	// then prove the cycle continues (serve, checkpoint, reopen again).
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenIntervals(dir, intervals.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	compareSharded(t, reopened, live, span)
	extra := geom.Interval{Lo: 10, Hi: 20, ID: 999_999}
	reopened.Insert(extra)
	live[extra.ID] = extra
	if err := reopened.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	compareSharded(t, reopened, live, span)
}

// TestShardedCheckpointDrainFaultReopen places the fault in the drain:
// pending ops are buffered, the first drain write fails, and the half-
// applied shard makes in-process retry unsafe — but the error must be a
// clean ErrInjectedFault, and reopening recovers every ACKNOWLEDGED
// mutation: the buffered inserts were WAL-logged at enqueue, so the drain
// fault loses none of them.
func TestShardedCheckpointDrainFaultReopen(t *testing.T) {
	const span = int64(3000)
	dir := filepath.Join(t.TempDir(), "sharded")
	// No pools: drain writes hit the devices directly, so a zero budget
	// faults the very first tree write of the drain.
	cfg := Config{Shards: 2, B: 8, Batch: 8, Partition: PartitionHash, PoolFrames: -1}
	init := workload.UniformIntervals(61, 120, span, 200)
	s, err := CreateIntervalsAt(dir, cfg, init, intervals.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	committed := map[uint64]geom.Interval{}
	for _, iv := range init {
		committed[iv.ID] = iv
	}

	// Buffer mutations WITHOUT flushing; with Batch 8 and 30 inserts over
	// 2 shards both cells hold pending ops when the checkpoint drains. Each
	// insert is acknowledged — logged to its shard's WAL at enqueue — so
	// the reopen oracle includes all of them.
	for i := 0; i < 30; i++ {
		lo := int64(i*90) % span
		iv := geom.Interval{Lo: lo, Hi: lo + 50, ID: uint64(10_000 + i)}
		s.Insert(iv)
		committed[iv.ID] = iv
	}
	budget := disk.NewWriteBudget(0)
	for _, f := range s.Files() {
		f.SetWriteBudget(budget)
	}
	err = s.Checkpoint()
	if err == nil {
		t.Fatal("checkpoint succeeded with a zero write budget")
	}
	if !errors.Is(err, disk.ErrInjectedFault) {
		t.Fatalf("drain fault surfaced as %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := OpenIntervals(dir, intervals.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	compareSharded(t, reopened, committed, span)
	// The reopened instance serves and checkpoints normally.
	extra := geom.Interval{Lo: 100, Hi: 180, ID: 888_888}
	reopened.Insert(extra)
	committed[extra.ID] = extra
	if err := reopened.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	compareSharded(t, reopened, committed, span)
}
