package shard

import (
	"errors"
	"path/filepath"
	"testing"

	"ccidx/internal/bptree"
	"ccidx/internal/core"
	"ccidx/internal/disk"
	"ccidx/internal/geom"
	"ccidx/internal/intervals"
	"ccidx/internal/workload"
)

// TestShardedBitFlipDetectedAtOpen: rot in one shard's endpoint file is
// caught by that shard's open-time rebuild and surfaces from OpenIntervals
// as a typed disk.ErrCorrupt, never a panic.
func TestShardedBitFlipDetectedAtOpen(t *testing.T) {
	const span = int64(3000)
	cfg := Config{Shards: 3, B: 8, Batch: 2, Partition: PartitionRange, Span: span, PoolFrames: 64}
	dir := filepath.Join(t.TempDir(), "sharded")
	s, err := CreateIntervalsAt(dir, cfg, workload.UniformIntervals(13, 300, span, 200), intervals.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	if err := disk.FlipBit(filepath.Join(dir, "shard-0001", "endpoints.pages"),
		bptree.PageSize(cfg.B), 1, 100); err != nil {
		t.Fatal(err)
	}

	s, err = OpenIntervals(dir, intervals.DurableOptions{})
	if err == nil {
		s.Close()
		t.Fatal("OpenIntervals succeeded over a flipped page")
	}
	var corrupt disk.ErrCorrupt
	if !errors.As(err, &corrupt) {
		t.Fatalf("OpenIntervals error = %v, want a wrapped disk.ErrCorrupt", err)
	}
}

// TestShardedBitFlipDetectedAtQuery flips a bit in a STABBER file — which
// the open path does not scan — so the corruption is only met mid-query,
// on a fan-out worker goroutine. The panicBox must carry the tree's
// ErrCorrupt panic back to the calling goroutine (where the serving
// layer's recover converts it to a 500); queries not touching the rotten
// page keep answering.
func TestShardedBitFlipDetectedAtQuery(t *testing.T) {
	const span = int64(3000)
	// Bare devices: pooled frames could serve the rotten page from memory.
	cfg := Config{Shards: 2, B: 8, Batch: 1, Partition: PartitionHash, PoolFrames: -1}
	dir := filepath.Join(t.TempDir(), "sharded")
	s, err := CreateIntervalsAt(dir, cfg, workload.UniformIntervals(17, 400, span, 250), intervals.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	if err := disk.FlipBit(filepath.Join(dir, "shard-0000", "stabber.pages"),
		core.Config{B: cfg.B}.PageSize(), 1, 42); err != nil {
		t.Fatal(err)
	}

	s, err = OpenIntervals(dir, intervals.DurableOptions{})
	if err != nil {
		t.Fatalf("open after stabber flip: %v (stabber pages are read at query time)", err)
	}
	defer s.Close()

	// Sweep stabbing queries across the domain; at least one must hit the
	// rotten page, and every failure must arrive as a recoverable ErrCorrupt
	// panic on THIS goroutine, not a crashed worker.
	hits := 0
	for q := int64(0); q <= span; q += span / 61 {
		err := func() (err error) {
			defer func() {
				if p := recover(); p != nil {
					e, ok := p.(error)
					if !ok {
						t.Fatalf("Stab(%d) panicked with non-error %v", q, p)
					}
					err = e
				}
			}()
			s.Stab(q, func(geom.Interval) bool { return true })
			s.StabBatch([]int64{q, q + 1}, func(int, geom.Interval) bool { return true })
			return nil
		}()
		if err != nil {
			var corrupt disk.ErrCorrupt
			if !errors.As(err, &corrupt) {
				t.Fatalf("Stab(%d) surfaced %v, want disk.ErrCorrupt", q, err)
			}
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("no query ever met the flipped stabber page; flip landed on a dead page")
	}
}
