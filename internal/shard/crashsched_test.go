package shard

// Randomized crash schedules: where the exhaustive sweeps
// (TestDurableCrashEveryWrite, TestShardedCrashEveryWrite) step a fixed
// workload through every write boundary, this property test randomizes
// EVERYTHING per seed — the serving configuration, the op stream, the
// checkpoint cadence, the crash point — and then keeps crashing the
// RECOVERY itself: reopen attempts run with their own write budgets, so
// crashes land mid-rollback, mid-rebuild, and mid-WAL-replay, until one
// recovery completes and must equal the acked oracle.
//
// Seeds come from CRASH_SEEDS (comma-separated, default "1,2,3") so CI's
// crash-matrix step can fan out without recompiling.

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"ccidx/internal/disk"
	"ccidx/internal/geom"
	"ccidx/internal/intervals"
	"ccidx/internal/workload"
)

func crashSeeds(t *testing.T) []int64 {
	raw := os.Getenv("CRASH_SEEDS")
	if raw == "" {
		raw = "1,2,3"
	}
	var seeds []int64
	for _, f := range strings.Split(raw, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("CRASH_SEEDS: %v", err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

func randomCrashConfig(rng *rand.Rand, span int64) Config {
	cfg := Config{
		Shards: 1 + rng.Intn(4),
		B:      8,
		Batch:  1 + rng.Intn(8),
	}
	if rng.Intn(2) == 0 {
		cfg.Partition, cfg.Span = PartitionRange, span
	} else {
		cfg.Partition = PartitionHash
	}
	if rng.Intn(2) == 0 {
		cfg.PoolFrames = 32 + rng.Intn(64)
	} else {
		cfg.PoolFrames = -1
	}
	if rng.Intn(2) == 0 {
		// Log-structured ingest mode: tiny memtables and low run budgets so
		// the crash schedule lands mid-flush, mid-merge, mid-runstate-stage
		// and inside WAL replay into a half-merged run set. SyncCompaction
		// keeps merge work on the mutating goroutine — the crash point is
		// then a deterministic function of the op stream and budget.
		cfg.Ingest = &intervals.IngestConfig{
			MemtableSize:   4 + rng.Intn(13),
			MaxRuns:        2 + rng.Intn(3),
			SyncCompaction: true,
		}
	}
	return cfg
}

// runRandomCrashWorkload drives a random churn/checkpoint stream against a
// fresh store in dir, crashing at global write k (k < 0 disarms). It
// records the acked oracle and in-flight op in out and returns the total
// write count of the fault-free prefix it managed.
func runRandomCrashWorkload(t *testing.T, dir string, seed, k int64, out *shardedCrashOutcome) int64 {
	t.Helper()
	const span = int64(3000)
	rng := rand.New(rand.NewSource(seed))
	cfg := randomCrashConfig(rng, span)
	n0 := 60 + rng.Intn(120)
	nops := 150 + rng.Intn(150)
	ckptEvery := 20 + rng.Intn(60)

	init := workload.UniformIntervals(seed+100, n0, span, 200)
	s, err := CreateIntervalsAt(dir, cfg, init, intervals.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	live := map[uint64]geom.Interval{}
	for _, iv := range init {
		live[iv.ID] = iv
	}
	if k >= 0 {
		s.SetWriteBudget(disk.NewWriteBudget(k))
	}

	churn := workload.ChurnOps(seed+200, workload.SeqIDs(n0), uint64(n0), nops, span, 200)
	crashed := false
	for i, op := range churn {
		op := op
		func() {
			defer func() {
				if p := recover(); p != nil {
					err, ok := p.(error)
					if !ok || !errors.Is(err, disk.ErrInjectedFault) {
						panic(p)
					}
					crashed = true
					if out != nil {
						out.inflight = &op
					}
				}
			}()
			switch op.Kind {
			case workload.ChurnInsert:
				s.Insert(op.Iv)
				live[op.Iv.ID] = op.Iv
			case workload.ChurnDelete:
				if _, ok := live[op.ID]; ok {
					s.Delete(op.ID)
					delete(live, op.ID)
				}
			}
		}()
		if crashed {
			break
		}
		if (i+1)%ckptEvery == 0 {
			if err := s.Checkpoint(); err != nil {
				if !errors.Is(err, disk.ErrInjectedFault) {
					t.Fatalf("checkpoint: %v", err)
				}
				crashed = true
				break
			}
		}
	}
	if out != nil {
		snap := make(map[uint64]geom.Interval, len(live))
		for id, iv := range live {
			snap[id] = iv
		}
		out.acked = snap
	}
	return s.FileWrites()
}

func TestRandomCrashSchedules(t *testing.T) {
	const span = int64(3000)
	for _, seed := range crashSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed ^ 0x5eed))
			total := runRandomCrashWorkload(t, filepath.Join(t.TempDir(), "probe"), seed, -1, nil)
			if total < 50 {
				t.Fatalf("workload too small: %d writes", total)
			}
			crashes := 6
			if testing.Short() {
				crashes = 2
			}
			for c := 0; c < crashes; c++ {
				k := 1 + rng.Int63n(total)
				t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
					dir := filepath.Join(t.TempDir(), "store")
					var out shardedCrashOutcome
					runRandomCrashWorkload(t, dir, seed, k, &out)

					// Crash the recovery itself: reopen with a budget that
					// faults mid-rollback / mid-rebuild / mid-replay, growing
					// it until an attempt survives. Every failed attempt must
					// die with a clean injected fault, and the store must
					// still recover afterwards — a crashed recovery is just
					// another crash.
					var reopened *Intervals
					attempts := 0
					for k2 := int64(0); reopened == nil; k2 += 1 + rng.Int63n(25) {
						attempts++
						if attempts > 10_000 {
							t.Fatal("recovery never survived its budget")
						}
						s, err := OpenIntervals(dir, intervals.DurableOptions{
							Budget: disk.NewWriteBudget(k2),
						})
						if err != nil {
							if !errors.Is(err, disk.ErrInjectedFault) {
								t.Fatalf("crashed recovery (budget %d) surfaced %v, want injected fault", k2, err)
							}
							continue
						}
						s.SetWriteBudget(nil)
						reopened = s
					}
					defer reopened.Close()

					oracles := out.oracles()
					lenOK := false
					for _, om := range oracles {
						if reopened.Len() == len(om) {
							lenOK = true
						}
					}
					if !lenOK {
						t.Fatalf("Len = %d after crash at %d, want %d acked (± in-flight)",
							reopened.Len(), k, len(out.acked))
					}
					check := func(desc string, got []uint64, want func(map[uint64]geom.Interval) []uint64) {
						t.Helper()
						for _, om := range oracles {
							if idsEqual(got, want(om)) {
								return
							}
						}
						t.Fatalf("crash at %d: %s diverged from acked oracle", k, desc)
					}
					for q := int64(0); q <= span; q += span / 13 {
						q := q
						check(fmt.Sprintf("Stab(%d)", q), shardedStabIDs(reopened, q),
							func(om map[uint64]geom.Interval) []uint64 { return bruteStab(om, q) })
					}
					for lo := int64(0); lo <= span; lo += span / 4 {
						q := geom.Interval{Lo: lo, Hi: lo + span/5}
						check(fmt.Sprintf("Intersect(%v)", q), shardedIntersectIDs(reopened, q),
							func(om map[uint64]geom.Interval) []uint64 { return bruteIntersect(om, q) })
					}
				})
			}
		})
	}
}
