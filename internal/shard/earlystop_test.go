package shard

// Early-termination regression suite for the fan-out stop flag and the
// per-query stop state of the batch paths.
//
// The audited invariant (see fanOut's doc): the shared atomic.Bool has a
// single writer — fanOut's emit loop, after the caller terminated the
// enumeration — so a truncated collector can only belong to an already-
// terminated query. These tests pin the two observable consequences:
//
//  1. Sequential queries: stopping after k results yields EXACTLY the
//     k-prefix of the full enumeration, for every k. (fanOut emits in
//     shard order and per-shard order is deterministic, so the full
//     enumeration is deterministic and the prefix property is exact.)
//  2. Batch paths: terminating one query of a batch early must not
//     perturb any other query — each keeps its full, sequential-equal
//     result set, and the stopped query sees exactly a prefix of its own
//     batch enumeration.
//
// Pending group-commit buffers are deliberately non-empty throughout, so
// the stop-aware pending replay is exercised alongside the index scan.

import (
	"fmt"
	"testing"

	"ccidx/internal/classindex"
	"ccidx/internal/geom"
	"ccidx/internal/workload"
)

// earlyStopFixture builds a sharded manager with both flushed and pending
// state: 300 intervals built statically, 60 more buffered through a large
// group-commit batch (so they sit in pending buffers), and 20 of the
// static ones pending-deleted.
func earlyStopFixture(t *testing.T, p Partition) (*Intervals, int64) {
	t.Helper()
	const span = int64(4000)
	cfg := Config{Shards: 4, B: 8, Batch: 64, Partition: p, Span: span, PoolFrames: -1}
	init := workload.UniformIntervals(71, 300, span, 400)
	s := NewIntervals(cfg, init)
	extra := workload.UniformIntervals(73, 60, span, 400)
	for _, iv := range extra {
		iv.ID += 10_000
		s.Insert(iv)
	}
	for id := uint64(0); id < 20; id++ {
		s.Delete(id)
	}
	return s, span
}

// budgetStab runs Stab with an emission budget (<0 = unlimited).
func budgetStab(s *Intervals, q int64, budget int) []geom.Interval {
	var out []geom.Interval
	s.Stab(q, func(iv geom.Interval) bool {
		out = append(out, iv)
		return budget < 0 || len(out) < budget
	})
	return out
}

func budgetIntersect(s *Intervals, q geom.Interval, budget int) []geom.Interval {
	var out []geom.Interval
	s.Intersect(q, func(iv geom.Interval) bool {
		out = append(out, iv)
		return budget < 0 || len(out) < budget
	})
	return out
}

func ivsEqual(a, b []geom.Interval) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEarlyStopPrefixStab: for every budget k, the early-terminated
// enumeration is the exact k-prefix of the full one.
func TestEarlyStopPrefixStab(t *testing.T) {
	for _, p := range []Partition{PartitionRange, PartitionHash} {
		t.Run(fmt.Sprintf("partition=%d", p), func(t *testing.T) {
			s, span := earlyStopFixture(t, p)
			for q := int64(0); q <= span; q += span / 13 {
				full := budgetStab(s, q, -1)
				for k := 1; k <= len(full); k++ {
					got := budgetStab(s, q, k)
					want := full
					if k > 0 && k < len(full) {
						want = full[:k]
					}
					if !ivsEqual(got, want) {
						t.Fatalf("Stab(%d) budget %d: got %d results, not the prefix of the full %d",
							q, k, len(got), len(full))
					}
				}
			}
		})
	}
}

// TestEarlyStopPrefixIntersect: same prefix property for Intersect, whose
// range-partition path adds the replica owns-filter to the stop polling.
func TestEarlyStopPrefixIntersect(t *testing.T) {
	for _, p := range []Partition{PartitionRange, PartitionHash} {
		t.Run(fmt.Sprintf("partition=%d", p), func(t *testing.T) {
			s, span := earlyStopFixture(t, p)
			for lo := int64(0); lo <= span; lo += span / 7 {
				q := geom.Interval{Lo: lo, Hi: lo + span/5}
				full := budgetIntersect(s, q, -1)
				for k := 1; k <= len(full); k += 1 + len(full)/17 {
					got := budgetIntersect(s, q, k)
					want := full
					if k > 0 && k < len(full) {
						want = full[:k]
					}
					if !ivsEqual(got, want) {
						t.Fatalf("Intersect(%v) budget %d: got %d results, not the prefix of the full %d",
							q, k, len(got), len(full))
					}
				}
			}
		})
	}
}

// TestEarlyStopPrefixClassQuery: the class-index fan-out (index scan plus
// pending-object replay) honors the same prefix property.
func TestEarlyStopPrefixClassQuery(t *testing.T) {
	const span = int64(2000)
	h := workload.RandomHierarchy(79, 16)
	s := NewClasses(Config{Shards: 3, B: 8, Batch: 64, Partition: PartitionRange, Span: span, PoolFrames: -1},
		h, func() ClassIndex { return classindex.NewSimple(h, 8) })
	for _, o := range workload.Objects(83, h, 500, span) {
		s.Insert(o) // Batch 64: most objects stay in the pending buffers
	}
	collect := func(c int, budget int) []attrID {
		var out []attrID
		s.Query(c, 0, span, func(attr int64, id uint64) bool {
			out = append(out, attrID{attr, id})
			return budget < 0 || len(out) < budget
		})
		return out
	}
	for c := 0; c < h.Len(); c += 3 {
		full := collect(c, -1)
		for k := 1; k <= len(full); k += 1 + len(full)/11 {
			got := collect(c, k)
			want := full
			if k > 0 && k < len(full) {
				want = full[:k]
			}
			if len(got) != len(want) {
				t.Fatalf("class %d budget %d: %d results, want %d", c, k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("class %d budget %d: result %d = %v, want %v", c, k, i, got[i], want[i])
				}
			}
		}
	}
}

// TestBatchEarlyStopIndependence: terminating SOME queries of a batch
// early must leave every other query's results bit-identical to its
// un-budgeted batch enumeration — and multiset-equal to the sequential
// path. The stopped queries must see exact prefixes.
func TestBatchEarlyStopIndependence(t *testing.T) {
	for _, p := range []Partition{PartitionRange, PartitionHash} {
		t.Run(fmt.Sprintf("partition=%d", p), func(t *testing.T) {
			s, span := earlyStopFixture(t, p)
			qs := workload.StabQueries(89, 40, span)

			// Full batch enumeration per query (no budgets).
			full := make([][]geom.Interval, len(qs))
			s.StabBatch(qs, func(qi int, iv geom.Interval) bool {
				full[qi] = append(full[qi], iv)
				return true
			})

			// Budget every third query to k results (including k=0 edge by
			// stopping at the first emission).
			budgets := make([]int, len(qs))
			for qi := range budgets {
				budgets[qi] = -1
				if qi%3 == 0 {
					budgets[qi] = qi % 4 // 0..3
					if budgets[qi] == 0 {
						budgets[qi] = 1
					}
				}
			}
			got := make([][]geom.Interval, len(qs))
			s.StabBatch(qs, func(qi int, iv geom.Interval) bool {
				got[qi] = append(got[qi], iv)
				return budgets[qi] < 0 || len(got[qi]) < budgets[qi]
			})

			for qi := range qs {
				want := full[qi]
				if b := budgets[qi]; b >= 0 && b < len(want) {
					want = want[:b]
				}
				if !ivsEqual(got[qi], want) {
					t.Fatalf("query %d (budget %d): %d results, want %d — early stop leaked across queries",
						qi, budgets[qi], len(got[qi]), len(want))
				}
			}

			// Un-budgeted queries must also match the sequential path.
			for qi, q := range qs {
				if budgets[qi] >= 0 {
					continue
				}
				seq := budgetStab(s, q, -1)
				if !idsEqual(sortIDs(ivIDs(full[qi])), sortIDs(ivIDs(seq))) {
					t.Fatalf("query %d: batch %d results, sequential %d", qi, len(full[qi]), len(seq))
				}
			}
		})
	}
}

func ivIDs(ivs []geom.Interval) []uint64 {
	ids := make([]uint64, len(ivs))
	for i, iv := range ivs {
		ids[i] = iv.ID
	}
	return ids
}

// TestIntersectBatchEarlyStopIndependence: the same independence contract
// for IntersectBatch, whose per-shard traversal shares one sorted member
// walk across the group.
func TestIntersectBatchEarlyStopIndependence(t *testing.T) {
	for _, p := range []Partition{PartitionRange, PartitionHash} {
		t.Run(fmt.Sprintf("partition=%d", p), func(t *testing.T) {
			s, span := earlyStopFixture(t, p)
			var qs []geom.Interval
			for lo := int64(0); lo < span; lo += span / 11 {
				qs = append(qs, geom.Interval{Lo: lo, Hi: lo + span/6})
			}
			full := make([][]geom.Interval, len(qs))
			s.IntersectBatch(qs, func(qi int, iv geom.Interval) bool {
				full[qi] = append(full[qi], iv)
				return true
			})
			got := make([][]geom.Interval, len(qs))
			s.IntersectBatch(qs, func(qi int, iv geom.Interval) bool {
				got[qi] = append(got[qi], iv)
				return qi%2 == 0 || len(got[qi]) < 2 // odd queries stop after 2
			})
			for qi := range qs {
				want := full[qi]
				if qi%2 == 1 && len(want) > 2 {
					want = want[:2]
				}
				if !ivsEqual(got[qi], want) {
					t.Fatalf("query %d: %d results, want %d", qi, len(got[qi]), len(want))
				}
				if qi%2 == 0 {
					seq := budgetIntersect(s, qs[qi], -1)
					if !idsEqual(sortIDs(ivIDs(full[qi])), sortIDs(ivIDs(seq))) {
						t.Fatalf("query %d: batch %d results, sequential %d", qi, len(full[qi]), len(seq))
					}
				}
			}
		})
	}
}

// TestClassQueryBatchEarlyStopIndependence: QueryBatch keeps per-query
// stop state through the shared subtree-range traversal.
func TestClassQueryBatchEarlyStopIndependence(t *testing.T) {
	const span = int64(2000)
	h := workload.RandomHierarchy(97, 16)
	s := NewClasses(Config{Shards: 3, B: 8, Batch: 64, Partition: PartitionRange, Span: span, PoolFrames: -1},
		h, func() ClassIndex { return classindex.NewSimple(h, 8) })
	for _, o := range workload.Objects(101, h, 500, span) {
		s.Insert(o)
	}
	var qs []ClassQuery
	for c := 0; c < h.Len(); c++ {
		qs = append(qs, ClassQuery{Class: c, A1: 0, A2: span})
	}
	full := make([][]attrID, len(qs))
	s.QueryBatch(qs, func(qi int, attr int64, id uint64) bool {
		full[qi] = append(full[qi], attrID{attr, id})
		return true
	})
	got := make([][]attrID, len(qs))
	s.QueryBatch(qs, func(qi int, attr int64, id uint64) bool {
		got[qi] = append(got[qi], attrID{attr, id})
		return qi%2 == 0 || len(got[qi]) < 3 // odd queries stop after 3
	})
	for qi := range qs {
		want := full[qi]
		if qi%2 == 1 && len(want) > 3 {
			want = want[:3]
		}
		if len(got[qi]) != len(want) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got[qi]), len(want))
		}
		for i := range want {
			if got[qi][i] != want[i] {
				t.Fatalf("query %d result %d: %v, want %v", qi, i, got[qi][i], want[i])
			}
		}
		if qi%2 == 0 {
			var seq []attrID
			s.Query(qs[qi].Class, qs[qi].A1, qs[qi].A2, func(attr int64, id uint64) bool {
				seq = append(seq, attrID{attr, id})
				return true
			})
			wantIDs := make([]uint64, len(seq))
			for i, r := range seq {
				wantIDs[i] = r.id
			}
			gotIDs := make([]uint64, len(full[qi]))
			for i, r := range full[qi] {
				gotIDs[i] = r.id
			}
			if !idsEqual(sortIDs(gotIDs), sortIDs(wantIDs)) {
				t.Fatalf("query %d: batch %d results, sequential %d", qi, len(full[qi]), len(seq))
			}
		}
	}
}
