package shard

import (
	"sync/atomic"

	"ccidx/internal/classindex"
	"ccidx/internal/disk"
)

// ClassIndex is the abstract per-shard class-indexing structure; every
// strategy in internal/classindex satisfies it.
type ClassIndex interface {
	Insert(classindex.Object)
	Query(c int, a1, a2 int64, emit classindex.EmitObject)
	Stats() disk.Stats
	SpaceBlocks() int64
}

// Classes is a concurrency-safe, sharded class index: objects are
// partitioned by their attribute value across cfg.Shards independent
// class-index structures built over the same frozen hierarchy (the
// hierarchy is read-only after Freeze, so shards share it safely).
//
// Range partitioning on the attribute is the natural choice here: a
// full-extent query Query(c, a1, a2) is attribute-scoped, so it touches
// only the shards whose attribute range overlaps [a1, a2] and merges their
// results. Hash partitioning is also supported (queries then fan out to
// every shard).
type Classes struct {
	cfg    Config
	router Router
	h      *classindex.Hierarchy
	shards []*classShard

	// Durable state (zero for the in-memory construction): the checkpoint
	// directory, per-shard file-backed strategy instances, and the strategy
	// kind recorded in the manifest. See durable_classes.go.
	dirPath  string
	durables []*classindex.Durable
	strategy classindex.StrategyKind
}

type classShard struct {
	cell cell[classindex.Object]
	idx  ClassIndex
	// apply lands one pending object in the index at flush time. In-memory
	// shards use idx.Insert; WAL-backed shards use the unlogged
	// classindex.(*Durable).ApplyInsert (the record was appended at enqueue
	// by cell.logOp).
	apply func(classindex.Object)
}

// poolAttacher is implemented by class-index strategies whose constituent
// trees can read through a concurrent buffer pool.
type poolAttacher interface {
	AttachPool(frames, nShards int)
}

// poolFlusher writes dirty pooled frames back to the devices.
type poolFlusher interface {
	FlushPool()
}

// NewClasses builds a sharded class index; newIndex constructs one empty
// per-shard structure (e.g. classindex.NewRakeContract(h, B)) and is
// called once per shard. Strategies that support it get a per-shard
// concurrent buffer pool attached (see Config.PoolFrames).
func NewClasses(cfg Config, h *classindex.Hierarchy, newIndex func() ClassIndex) *Classes {
	n := cfg.shards()
	s := &Classes{cfg: cfg, router: NewRouter(n, cfg.Partition, cfg.Span), h: h}
	s.shards = make([]*classShard, n)
	for i := 0; i < n; i++ {
		idx := newIndex()
		if pa, ok := idx.(poolAttacher); ok {
			if f := cfg.poolFrames(); f > 0 {
				pa.AttachPool(f, poolLockShards)
			}
		}
		s.shards[i] = &classShard{idx: idx, apply: idx.Insert}
	}
	return s
}

// Shards returns the shard count.
func (s *Classes) Shards() int { return s.router.Shards() }

// Insert adds an object, group-committing through the owning shard's
// pending buffer.
func (s *Classes) Insert(o classindex.Object) {
	sh := s.shards[s.router.Route(o.Attr)]
	sh.cell.insert(o, s.cfg.batch(), sh.apply)
}

// Flush forces every shard's pending buffer into its index structure and
// writes dirty pooled frames back to the shard devices.
func (s *Classes) Flush() {
	for _, sh := range s.shards {
		sh.cell.flush(sh.apply)
		if pf, ok := sh.idx.(poolFlusher); ok {
			sh.cell.mu.Lock()
			pf.FlushPool()
			sh.cell.mu.Unlock()
		}
	}
}

type attrID struct {
	attr int64
	id   uint64
}

// queryShard collects one shard's full-extent matches under its read lock:
// index hits plus a subtree-range filter over the pending buffer. stop is
// the fan-out's early-termination flag.
func (s *Classes) queryShard(sh *classShard, c int, a1, a2 int64, stop *atomic.Bool) []attrID {
	lo, hi := s.h.SubtreeRange(c)
	var out []attrID
	sh.cell.read(func(pending []classindex.Object) {
		sh.idx.Query(c, a1, a2, func(attr int64, id uint64) bool {
			if stop.Load() {
				return false
			}
			out = append(out, attrID{attr, id})
			return true
		})
		if stop.Load() {
			return
		}
		// The pending replay polls stop per object, consistent with the
		// index scan above: once the fan-out terminated the query this
		// shard's output is never emitted, so halting mid-buffer is safe.
		for _, o := range pending {
			if stop.Load() {
				return
			}
			if p := s.h.Pre(o.Class); p >= lo && p < hi && o.Attr >= a1 && o.Attr <= a2 {
				out = append(out, attrID{o.Attr, o.ID})
			}
		}
	})
	return out
}

// Query reports every object in the full extent of class c with attribute
// in [a1, a2], fanning out in parallel to the shards overlapping the range
// and merging their results. Each object lives in exactly one shard, so
// each match is reported exactly once.
func (s *Classes) Query(c int, a1, a2 int64, emit classindex.EmitObject) {
	if a1 > a2 {
		return
	}
	first, last := s.router.RouteRange(a1, a2)
	fanOut(first, last,
		func(i int, stop *atomic.Bool) []attrID { return s.queryShard(s.shards[i], c, a1, a2, stop) },
		func(r attrID) bool { return emit(r.attr, r.id) })
}

// Stats sums the I/O counters of every shard's structure.
func (s *Classes) Stats() disk.Stats {
	var st disk.Stats
	for _, sh := range s.shards {
		sh.cell.read(func([]classindex.Object) { st = st.Add(sh.idx.Stats()) })
	}
	return st
}

// SpaceBlocks sums the live pages across shards.
func (s *Classes) SpaceBlocks() int64 {
	var total int64
	for _, sh := range s.shards {
		sh.cell.read(func([]classindex.Object) { total += sh.idx.SpaceBlocks() })
	}
	return total
}
