package shard

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"ccidx/internal/classindex"
	"ccidx/internal/geom"
	"ccidx/internal/intervals"
)

func TestRouterRange(t *testing.T) {
	r := NewRouter(4, PartitionRange, 100)
	if got := r.Route(-5); got != 0 {
		t.Fatalf("Route(-5)=%d want 0", got)
	}
	if got := r.Route(0); got != 0 {
		t.Fatalf("Route(0)=%d want 0", got)
	}
	if got := r.Route(99); got != 3 {
		t.Fatalf("Route(99)=%d want 3", got)
	}
	if got := r.Route(1000); got != 3 {
		t.Fatalf("Route(1000)=%d want 3", got)
	}
	prev := 0
	for k := int64(0); k < 100; k++ {
		s := r.Route(k)
		if s < prev || s > prev+1 {
			t.Fatalf("range routing not monotone at %d: %d after %d", k, s, prev)
		}
		prev = s
	}
	f, l := r.RouteRange(10, 60)
	if f != r.Route(10) || l != r.Route(60) {
		t.Fatalf("RouteRange(10,60)=(%d,%d)", f, l)
	}
}

func TestRouterRangeRequiresSpan(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PartitionRange with zero span must panic at construction")
		}
	}()
	NewRouter(8, PartitionRange, 0)
}

func TestRouterHashDeterministicAndBalanced(t *testing.T) {
	r := NewRouter(8, PartitionHash, 0)
	counts := make([]int, 8)
	for k := int64(0); k < 8000; k++ {
		s := r.Route(k)
		if s2 := r.Route(k); s2 != s {
			t.Fatalf("hash routing not deterministic for %d", k)
		}
		counts[s]++
	}
	for i, c := range counts {
		if c < 500 || c > 1500 {
			t.Fatalf("hash shard %d holds %d of 8000 keys (poor balance)", i, c)
		}
	}
}

func sortedIvs(ivs []geom.Interval) []geom.Interval {
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].ID != ivs[j].ID {
			return ivs[i].ID < ivs[j].ID
		}
		return ivs[i].Lo < ivs[j].Lo
	})
	return ivs
}

func collectStab(s *Intervals, q int64) []geom.Interval {
	var out []geom.Interval
	s.Stab(q, func(iv geom.Interval) bool { out = append(out, iv); return true })
	return sortedIvs(out)
}

func collectIntersect(s *Intervals, q geom.Interval) []geom.Interval {
	var out []geom.Interval
	s.Intersect(q, func(iv geom.Interval) bool { out = append(out, iv); return true })
	return sortedIvs(out)
}

func equalIvs(a, b []geom.Interval) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardedIntervalsMatchOracle compares sharded query results — across
// shard counts, both partition schemes and batch sizes, with half the
// workload inserted dynamically — against the single-shard manager on a
// seeded random workload.
func TestShardedIntervalsMatchOracle(t *testing.T) {
	const span = 1 << 16
	rng := rand.New(rand.NewSource(11))
	n := 4000
	shardCounts := []int{1, 3, 8}
	batches := []int{1, 7, 64}
	queries := 50
	if testing.Short() {
		n, queries = 1500, 25
		shardCounts = []int{1, 4}
		batches = []int{1, 7}
	}
	ivs := make([]geom.Interval, n)
	for i := range ivs {
		lo := rng.Int63n(span)
		ivs[i] = geom.Interval{Lo: lo, Hi: lo + rng.Int63n(span/8), ID: uint64(i)}
	}
	oracle := intervals.New(intervals.Config{B: 8}, ivs[:n/2])
	for _, iv := range ivs[n/2:] {
		oracle.Insert(iv)
	}
	for _, part := range []Partition{PartitionHash, PartitionRange} {
		for _, shards := range shardCounts {
			for _, batch := range batches {
				cfg := Config{Shards: shards, B: 8, Batch: batch, Partition: part, Span: span}
				s := NewIntervals(cfg, ivs[:n/2])
				for _, iv := range ivs[n/2:] {
					s.Insert(iv)
				}
				if s.Len() != n {
					t.Fatalf("part=%v shards=%d batch=%d: Len=%d want %d", part, shards, batch, s.Len(), n)
				}
				for k := 0; k < queries; k++ {
					q := rng.Int63n(span + span/4)
					var want []geom.Interval
					oracle.Stab(q, func(iv geom.Interval) bool { want = append(want, iv); return true })
					if got := collectStab(s, q); !equalIvs(got, sortedIvs(want)) {
						t.Fatalf("part=%v shards=%d batch=%d: Stab(%d): got %d want %d",
							part, shards, batch, q, len(got), len(want))
					}
					qlo := rng.Int63n(span)
					qiv := geom.Interval{Lo: qlo, Hi: qlo + rng.Int63n(span/6)}
					want = want[:0]
					oracle.Intersect(qiv, func(iv geom.Interval) bool { want = append(want, iv); return true })
					if got := collectIntersect(s, qiv); !equalIvs(got, sortedIvs(want)) {
						t.Fatalf("part=%v shards=%d batch=%d: Intersect(%v): got %d want %d",
							part, shards, batch, qiv, len(got), len(want))
					}
				}
			}
		}
	}
}

func randomHierarchy(rng *rand.Rand, c int) *classindex.Hierarchy {
	h := classindex.NewHierarchy()
	names := make([]string, c)
	for i := 0; i < c; i++ {
		names[i] = "c" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676))
		parent := ""
		if i > 0 && rng.Intn(6) != 0 {
			parent = names[rng.Intn(i)]
		}
		h.MustAddClass(names[i], parent)
	}
	h.Freeze()
	return h
}

func classOracle(h *classindex.Hierarchy, objs []classindex.Object, c int, a1, a2 int64) []uint64 {
	lo, hi := h.SubtreeRange(c)
	var ids []uint64
	for _, o := range objs {
		if p := h.Pre(o.Class); p >= lo && p < hi && o.Attr >= a1 && o.Attr <= a2 {
			ids = append(ids, o.ID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func collectClassQuery(s *Classes, c int, a1, a2 int64) []uint64 {
	var ids []uint64
	s.Query(c, a1, a2, func(_ int64, id uint64) bool { ids = append(ids, id); return true })
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TestShardedClassesMatchOracle cross-checks the sharded class index
// against the brute-force oracle for every strategy factory, shard count
// and partition scheme.
func TestShardedClassesMatchOracle(t *testing.T) {
	const span = 1 << 12
	rng := rand.New(rand.NewSource(12))
	h := randomHierarchy(rng, 40)
	nObj := 3000
	if testing.Short() {
		nObj = 1200
	}
	objs := make([]classindex.Object, nObj)
	for i := range objs {
		objs[i] = classindex.Object{Class: rng.Intn(h.Len()), Attr: rng.Int63n(span), ID: uint64(i)}
	}
	factories := map[string]func(cfg Config) func() ClassIndex{
		"simple": func(cfg Config) func() ClassIndex {
			return func() ClassIndex { return classindex.NewSimple(h, cfg.B) }
		},
		"rake": func(cfg Config) func() ClassIndex {
			return func() ClassIndex { return classindex.NewRakeContract(h, cfg.B) }
		},
	}
	for name, mk := range factories {
		for _, part := range []Partition{PartitionHash, PartitionRange} {
			for _, shards := range []int{1, 4} {
				cfg := Config{Shards: shards, B: 8, Batch: 16, Partition: part, Span: span}
				s := NewClasses(cfg, h, mk(cfg))
				for _, o := range objs {
					s.Insert(o)
				}
				for k := 0; k < 60; k++ {
					c := rng.Intn(h.Len())
					a1 := rng.Int63n(span)
					a2 := a1 + rng.Int63n(span-a1)
					want := classOracle(h, objs, c, a1, a2)
					if got := collectClassQuery(s, c, a1, a2); !equalIDs(got, want) {
						t.Fatalf("%s part=%v shards=%d: class %d [%d,%d]: got %d want %d",
							name, part, shards, c, a1, a2, len(got), len(want))
					}
				}
			}
		}
	}
}

func equalIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestConcurrentIntervalShards exercises parallel inserts and queries
// across goroutines (run with -race) and verifies full correctness against
// the oracle once the writers finish.
func TestConcurrentIntervalShards(t *testing.T) {
	const span = 1 << 16
	const writers = 4
	const readers = 4
	perWriter := 1500
	if testing.Short() {
		perWriter = 500
	}
	s := NewIntervals(Config{Shards: 4, B: 8, Batch: 32, Partition: PartitionHash, Span: span}, nil)

	// Deterministic per-writer workloads.
	workloads := make([][]geom.Interval, writers)
	for w := range workloads {
		rng := rand.New(rand.NewSource(int64(100 + w)))
		ivs := make([]geom.Interval, perWriter)
		for i := range ivs {
			lo := rng.Int63n(span)
			ivs[i] = geom.Interval{Lo: lo, Hi: lo + rng.Int63n(span/8), ID: uint64(w*perWriter + i)}
		}
		workloads[w] = ivs
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := rng.Int63n(span)
				seen := make(map[uint64]bool)
				s.Stab(q, func(iv geom.Interval) bool {
					if !iv.Contains(q) {
						t.Errorf("reader %d: Stab(%d) returned non-containing %v", r, q, iv)
						return false
					}
					if seen[iv.ID] {
						t.Errorf("reader %d: Stab(%d) returned %d twice", r, q, iv.ID)
						return false
					}
					seen[iv.ID] = true
					return true
				})
			}
		}(r)
	}
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for _, iv := range workloads[w] {
				s.Insert(iv)
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	s.Flush()
	if s.Len() != writers*perWriter {
		t.Fatalf("Len=%d want %d", s.Len(), writers*perWriter)
	}
	oracle := intervals.NewNaive(8)
	for _, ws := range workloads {
		for _, iv := range ws {
			oracle.Insert(iv)
		}
	}
	rng := rand.New(rand.NewSource(300))
	for k := 0; k < 40; k++ {
		q := rng.Int63n(span)
		var want []geom.Interval
		oracle.Stab(q, func(iv geom.Interval) bool { want = append(want, iv); return true })
		if got := collectStab(s, q); !equalIvs(got, sortedIvs(want)) {
			t.Fatalf("after concurrent phase: Stab(%d): got %d want %d", q, len(got), len(want))
		}
	}
}

// TestConcurrentClassShards is the class-index analogue of the interval
// race test.
func TestConcurrentClassShards(t *testing.T) {
	const span = 1 << 12
	const writers = 4
	const perWriter = 800
	rng := rand.New(rand.NewSource(13))
	h := randomHierarchy(rng, 30)
	s := NewClasses(Config{Shards: 4, B: 8, Batch: 16, Partition: PartitionRange, Span: span}, h,
		func() ClassIndex { return classindex.NewRakeContract(h, 8) })

	workloads := make([][]classindex.Object, writers)
	for w := range workloads {
		wrng := rand.New(rand.NewSource(int64(400 + w)))
		objs := make([]classindex.Object, perWriter)
		for i := range objs {
			objs[i] = classindex.Object{
				Class: wrng.Intn(h.Len()),
				Attr:  wrng.Int63n(span),
				ID:    uint64(w*perWriter + i),
			}
		}
		workloads[w] = objs
	}

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	for r := 0; r < 4; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			qrng := rand.New(rand.NewSource(int64(500 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				c := qrng.Intn(h.Len())
				a1 := qrng.Int63n(span)
				s.Query(c, a1, a1+span/10, func(int64, uint64) bool { return true })
			}
		}(r)
	}
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for _, o := range workloads[w] {
				s.Insert(o)
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	s.Flush()
	var all []classindex.Object
	for _, ws := range workloads {
		all = append(all, ws...)
	}
	for k := 0; k < 40; k++ {
		c := rng.Intn(h.Len())
		a1 := rng.Int63n(span)
		a2 := a1 + rng.Int63n(span-a1)
		want := classOracle(h, all, c, a1, a2)
		if got := collectClassQuery(s, c, a1, a2); !equalIDs(got, want) {
			t.Fatalf("after concurrent phase: class %d [%d,%d]: got %d want %d", c, a1, a2, len(got), len(want))
		}
	}
}

// TestPooledShardsMatchBareShards runs the same fixed-seed mixed workload
// against a pooled sharded manager (tiny per-shard pools, constant
// eviction) and a pool-disabled one, asserting identical query results
// under concurrent readers, and that the pools actually absorbed reads.
func TestPooledShardsMatchBareShards(t *testing.T) {
	const span = 1 << 16
	base := make([]geom.Interval, 4000)
	rng := rand.New(rand.NewSource(7))
	for i := range base {
		lo := rng.Int63n(span)
		base[i] = geom.Interval{Lo: lo, Hi: lo + rng.Int63n(span/16), ID: uint64(i + 1)}
	}
	pooled := NewIntervals(Config{Shards: 4, B: 8, Batch: 8, Partition: PartitionRange, Span: span, PoolFrames: 32}, base)
	bare := NewIntervals(Config{Shards: 4, B: 8, Batch: 8, Partition: PartitionRange, Span: span, PoolFrames: -1}, base)

	collect := func(s *Intervals, q int64) []uint64 {
		var ids []uint64
		s.Stab(q, func(iv geom.Interval) bool {
			ids = append(ids, iv.ID)
			return true
		})
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		return ids
	}

	var wg sync.WaitGroup
	errc := make(chan string, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(300 + w)))
			for i := 0; i < 300; i++ {
				q := rng.Int63n(span)
				got := collect(pooled, q)
				want := collect(bare, q)
				if !equalIDs(got, want) {
					select {
					case errc <- "pooled and bare shards diverged":
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case msg := <-errc:
		t.Fatal(msg)
	default:
	}
	hits, _ := pooled.PoolStats()
	if hits == 0 {
		t.Fatal("pooled manager recorded no pool hits")
	}
	if h, m := bare.PoolStats(); h != 0 || m != 0 {
		t.Fatalf("bare manager recorded pool traffic: %d/%d", h, m)
	}
}
