package shard

import (
	"sort"
	"sync"

	"ccidx/internal/classindex"
	"ccidx/internal/geom"
	"ccidx/internal/intervals"
)

// Batched serving-layer queries. The sequential path pays, PER QUERY, a
// shard read-lock acquisition, a full pending-op-log replay and a complete
// index traversal. The batched path sorts the queries, groups them by
// owning shard, and per shard-group pays each of those costs ONCE:
//
//   - the shard's read lock is acquired once for the whole group;
//   - the group runs the per-shard manager's shared-traversal batch
//     (intervals.Manager.StabBatch / IntersectBatch), so upper index
//     levels are decoded once per group instead of once per query;
//   - the pending op log is replayed once against the whole group instead
//     of once per query, each op routed by binary search over the sorted
//     group to the run of queries it can affect (the exact stabbed run for
//     point queries; the Lo-/A1-bounded prefix for interval and attribute
//     ranges). The sequential path keeps its per-query applyPending
//     untouched;
//   - shard-groups fan out in parallel, one goroutine per touched shard.
//
// Results are demultiplexed per query: emit(qi, iv) receives the batch
// position of the answered query, and per query the multiset equals the
// sequential call's.

// StabBatch answers a batch of stabbing queries, each exactly once per
// query. Under range partitioning each query touches exactly one shard and
// the sorted batch splits into contiguous per-shard groups; under hash
// partitioning every shard processes the whole batch and the per-shard
// answer sets merge per query.
func (s *Intervals) StabBatch(qs []int64, emit intervals.EmitBatch) {
	n := len(qs)
	if n == 0 {
		return
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return qs[order[a]] < qs[order[b]] })
	sorted := make([]int64, n)
	for i, oi := range order {
		sorted[i] = qs[oi]
	}

	out := make([][]geom.Interval, n)
	switch {
	case s.cfg.Partition == PartitionRange && s.router.Route(sorted[0]) == s.router.Route(sorted[n-1]):
		// Whole batch lands in one shard-group: skip the goroutine machinery.
		s.shards[s.router.Route(sorted[0])].stabBatch(sorted, order, out)
	case s.cfg.Partition == PartitionRange:
		var wg sync.WaitGroup
		var box panicBox
		for lo := 0; lo < n; {
			shardIdx := s.router.Route(sorted[lo])
			hi := lo + 1
			for hi < n && s.router.Route(sorted[hi]) == shardIdx {
				hi++
			}
			wg.Add(1)
			go func(shardIdx, lo, hi int) {
				defer wg.Done()
				box.run(func() {
					s.shards[shardIdx].stabBatch(sorted[lo:hi], order[lo:hi], out)
				})
			}(shardIdx, lo, hi)
			lo = hi
		}
		wg.Wait()
		box.rethrow()
	default:
		ns := s.router.Shards()
		perShard := make([][][]geom.Interval, ns)
		var wg sync.WaitGroup
		var box panicBox
		for i := 0; i < ns; i++ {
			perShard[i] = make([][]geom.Interval, n)
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				box.run(func() { s.shards[i].stabBatch(sorted, order, perShard[i]) })
			}(i)
		}
		wg.Wait()
		box.rethrow()
		for qi := 0; qi < n; qi++ {
			for i := 0; i < ns; i++ {
				out[qi] = append(out[qi], perShard[i][qi]...)
			}
		}
	}
	for qi := 0; qi < n; qi++ {
		for _, iv := range out[qi] {
			if !emit(qi, iv) {
				break
			}
		}
	}
}

// stabBatch collects one shard's matches for a sorted group of stabbing
// queries under ONE read-lock acquisition: one shared index traversal plus
// one grouped pending replay. idxs maps group positions back to batch
// positions; out is indexed by batch position (each batch position is
// written by exactly one goroutine under range partitioning, and by this
// shard's private buffer under hash partitioning).
func (sh *intervalShard) stabBatch(qs []int64, idxs []int, out [][]geom.Interval) {
	sh.cell.read(func(pending []ivOp) {
		sh.mgr.StabBatch(qs, func(bi int, iv geom.Interval) bool {
			out[idxs[bi]] = append(out[idxs[bi]], iv)
			return true
		})
		applyPendingBatch(out, idxs, qs, pending)
	})
}

// applyPendingBatch is applyPending amortized over a sorted query group:
// ONE pass over the ordered op log, each op routed to the queries whose
// stabbing point it contains by binary search (the queries an op cannot
// affect are never touched). Replaying in buffer order keeps
// delete-then-reinsert of the same id correct, exactly like applyPending.
func applyPendingBatch(out [][]geom.Interval, idxs []int, qs []int64, pending []ivOp) {
	for _, op := range pending {
		lo := sort.Search(len(qs), func(i int) bool { return qs[i] >= op.iv.Lo })
		for bi := lo; bi < len(qs) && qs[bi] <= op.iv.Hi; bi++ {
			qi := idxs[bi]
			if op.del {
				// The delete's target is the only earlier occurrence of the
				// id (geometry op.iv, which contains qs[bi], or it would not
				// be in out[qi] at all).
				for j := range out[qi] {
					if out[qi][j].ID == op.iv.ID {
						out[qi] = append(out[qi][:j], out[qi][j+1:]...)
						break
					}
				}
			} else {
				out[qi] = append(out[qi], op.iv)
			}
		}
	}
}

// IntersectBatch answers a batch of intersection queries, each intersecting
// interval reported exactly once per query (the max(iv.Lo, q.Lo) ownership
// rule of intersectShard deduplicates range-partition replicas). Each
// touched shard is locked once for its whole sub-batch.
func (s *Intervals) IntersectBatch(qs []geom.Interval, emit intervals.EmitBatch) {
	n := len(qs)
	if n == 0 {
		return
	}
	ns := s.router.Shards()
	members := make([][]int, ns)
	for qi, q := range qs {
		if !q.Valid() {
			continue
		}
		first, last := 0, ns-1
		if s.cfg.Partition == PartitionRange {
			first, last = s.router.Route(q.Lo), s.router.Route(q.Hi)
		}
		for i := first; i <= last; i++ {
			members[i] = append(members[i], qi)
		}
	}
	touched := 0
	for i := 0; i < ns; i++ {
		if len(members[i]) > 0 {
			touched++
		}
	}
	shardOuts := make([][][]geom.Interval, ns)
	var wg sync.WaitGroup
	var box panicBox
	for i := 0; i < ns; i++ {
		if len(members[i]) == 0 {
			continue
		}
		shardOuts[i] = make([][]geom.Interval, len(members[i]))
		if touched == 1 {
			// Whole batch lands in one shard: skip the goroutine machinery.
			s.intersectBatchShard(i, qs, members[i], shardOuts[i])
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			box.run(func() { s.intersectBatchShard(i, qs, members[i], shardOuts[i]) })
		}(i)
	}
	wg.Wait()
	box.rethrow()
	out := make([][]geom.Interval, n)
	for i := 0; i < ns; i++ {
		for mi, qi := range members[i] {
			out[qi] = append(out[qi], shardOuts[i][mi]...)
		}
	}
	for qi := 0; qi < n; qi++ {
		for _, iv := range out[qi] {
			if !emit(qi, iv) {
				break
			}
		}
	}
}

// intersectBatchShard collects one shard's matches for its sub-batch under
// one read-lock acquisition; out is indexed by sub-batch position (member
// and out stay positionally aligned through the Lo-sort below, which the
// caller's merge step tolerates because it maps positions through member).
func (s *Intervals) intersectBatchShard(idx int, qs []geom.Interval, member []int, out [][]geom.Interval) {
	sh := s.shards[idx]
	sort.Slice(member, func(a, b int) bool { return qs[member[a]].Lo < qs[member[b]].Lo })
	sub := make([]geom.Interval, len(member))
	for i, qi := range member {
		sub[i] = qs[qi]
	}
	owns := func(q, iv geom.Interval) bool {
		if s.cfg.Partition != PartitionRange {
			return true
		}
		p := iv.Lo
		if q.Lo > p {
			p = q.Lo
		}
		return s.router.Route(p) == idx
	}
	sh.cell.read(func(pending []ivOp) {
		sh.mgr.IntersectBatch(sub, func(bi int, iv geom.Interval) bool {
			if owns(sub[bi], iv) {
				out[bi] = append(out[bi], iv)
			}
			return true
		})
		// One pass over the op log for the whole sub-batch: each op is
		// routed by binary search to the Lo-sorted prefix that can still
		// intersect it (q.Lo <= op.iv.Hi), then filtered by the other bound.
		for _, op := range pending {
			end := sort.Search(len(sub), func(i int) bool { return sub[i].Lo > op.iv.Hi })
			for bi := 0; bi < end; bi++ {
				q := sub[bi]
				if q.Hi < op.iv.Lo || !owns(q, op.iv) {
					continue
				}
				if op.del {
					for j := range out[bi] {
						if out[bi][j].ID == op.iv.ID {
							out[bi] = append(out[bi][:j], out[bi][j+1:]...)
							break
						}
					}
				} else {
					out[bi] = append(out[bi], op.iv)
				}
			}
		}
	})
}

// ClassQuery is one query of a batched class-index lookup: every object in
// the full extent of Class with attribute in [A1, A2].
type ClassQuery struct {
	Class  int
	A1, A2 int64
}

// QueryBatch answers a batch of full-extent class queries. Each touched
// shard is locked once for its whole sub-batch and its pending buffer is
// scanned once against the group's precomputed subtree ranges; shards fan
// out in parallel. Per query the result multiset equals Query's.
func (s *Classes) QueryBatch(qs []ClassQuery, emit func(qi int, attr int64, id uint64) bool) {
	n := len(qs)
	if n == 0 {
		return
	}
	ns := s.router.Shards()
	members := make([][]int, ns)
	for qi, q := range qs {
		if q.A1 > q.A2 {
			continue
		}
		first, last := s.router.RouteRange(q.A1, q.A2)
		for i := first; i <= last; i++ {
			members[i] = append(members[i], qi)
		}
	}
	touched := 0
	for i := 0; i < ns; i++ {
		if len(members[i]) > 0 {
			touched++
		}
	}
	shardOuts := make([][][]attrID, ns)
	var wg sync.WaitGroup
	var box panicBox
	for i := 0; i < ns; i++ {
		if len(members[i]) == 0 {
			continue
		}
		shardOuts[i] = make([][]attrID, len(members[i]))
		if touched == 1 {
			s.queryBatchShard(s.shards[i], qs, members[i], shardOuts[i])
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			box.run(func() { s.queryBatchShard(s.shards[i], qs, members[i], shardOuts[i]) })
		}(i)
	}
	wg.Wait()
	box.rethrow()
	out := make([][]attrID, n)
	for i := 0; i < ns; i++ {
		for mi, qi := range members[i] {
			out[qi] = append(out[qi], shardOuts[i][mi]...)
		}
	}
	for qi := 0; qi < n; qi++ {
		for _, r := range out[qi] {
			if !emit(qi, r.attr, r.id) {
				break
			}
		}
	}
}

// queryBatchShard collects one shard's matches for its sub-batch under one
// read-lock acquisition: per-query index lookups (the strategies' own
// traversals) plus ONE pass over the pending buffer for the whole group,
// each object routed by binary search to the A1-sorted prefix whose
// attribute ranges can still contain it.
func (s *Classes) queryBatchShard(sh *classShard, qs []ClassQuery, member []int, out [][]attrID) {
	sort.Slice(member, func(a, b int) bool { return qs[member[a]].A1 < qs[member[b]].A1 })
	los := make([]int, len(member))
	his := make([]int, len(member))
	for mi, qi := range member {
		los[mi], his[mi] = s.h.SubtreeRange(qs[qi].Class)
	}
	sh.cell.read(func(pending []classindex.Object) {
		for mi, qi := range member {
			q := qs[qi]
			sh.idx.Query(q.Class, q.A1, q.A2, func(attr int64, id uint64) bool {
				out[mi] = append(out[mi], attrID{attr, id})
				return true
			})
		}
		for _, o := range pending {
			p := s.h.Pre(o.Class)
			end := sort.Search(len(member), func(i int) bool { return qs[member[i]].A1 > o.Attr })
			for mi := 0; mi < end; mi++ {
				if p >= los[mi] && p < his[mi] && o.Attr <= qs[member[mi]].A2 {
					out[mi] = append(out[mi], attrID{o.Attr, o.ID})
				}
			}
		}
	})
}
