// Package shard implements the concurrent serving layer of the repository:
// it partitions an index workload across N independent shards, each owning
// its own simulated block device, and serves queries with parallel fan-out
// over the shards.
//
// Concurrency model. Every shard is guarded by its own sync.RWMutex:
// mutations (Insert, Flush) take the write lock, queries take the read
// lock. Taking only a read lock for queries is sound because the query
// paths of the underlying structures (metablock tree, B+-tree, 3-sided
// tree) never write pages — they only read blocks and bump the pager's
// atomic I/O counters. Partitioning means writers block readers of their
// own shard only, which is what makes mixed insert/query throughput scale
// with the shard count (experiment E16).
//
// Group commit. Inserts append to a small in-memory pending buffer under
// the shard's write lock and only every Batch-th insert pays the index
// maintenance cost, flushing the whole buffer while the lock is held.
// Queries merge the pending buffer on the fly, so batching is invisible to
// correctness; it trades per-call latency for bounded staleness of the
// on-"disk" structure (experiment E17).
package shard

import (
	"sync"
	"sync/atomic"

	"ccidx/internal/intervals"
)

// Partition selects how keys are assigned to shards.
type Partition int

const (
	// PartitionHash spreads keys uniformly with a 64-bit mixer; queries
	// fan out to every shard.
	PartitionHash Partition = iota
	// PartitionRange assigns contiguous key ranges of [0, Span) to
	// consecutive shards; range queries touch only overlapping shards.
	PartitionRange
)

// Config configures a sharded index.
type Config struct {
	// Shards is the number of shards; values < 1 are treated as 1.
	Shards int
	// B is the block capacity handed to every per-shard structure.
	B int
	// Batch is the group-commit threshold: the number of pending inserts a
	// shard accumulates before flushing them into its index structure
	// while still holding the write lock. Values < 1 mean no batching
	// (every insert is applied immediately).
	Batch int
	// Partition selects the key-to-shard assignment.
	Partition Partition
	// Span is the key domain [0, Span) used by PartitionRange; it must be
	// positive when that scheme is selected (construction panics
	// otherwise). Keys outside the span are clamped to the first/last
	// shard.
	Span int64
	// PoolFrames sizes the per-shard concurrent CLOCK buffer pool
	// (disk.Pool) that the shard's structures read and write through:
	// pool hits are served from memory-resident frames without device
	// I/O. 0 selects DefaultPoolFrames; negative disables pooling (every
	// access is a device I/O, the paper's bare cost model).
	PoolFrames int
	// Ingest, when non-nil, runs every per-shard interval manager in
	// log-structured ingest mode (memtable + immutable runs with
	// background merging) instead of the amortized-rebuild tree. See
	// intervals.IngestConfig.
	Ingest *intervals.IngestConfig
}

// DefaultPoolFrames is the per-shard buffer-pool size used when
// Config.PoolFrames is 0.
const DefaultPoolFrames = 256

// poolLockShards is the internal lock-shard count of each buffer pool,
// enough to keep concurrent readers of one index shard from serializing on
// pool metadata.
const poolLockShards = 8

func (cfg Config) poolFrames() int {
	if cfg.PoolFrames < 0 {
		return 0
	}
	if cfg.PoolFrames == 0 {
		return DefaultPoolFrames
	}
	return cfg.PoolFrames
}

func (cfg Config) shards() int {
	if cfg.Shards < 1 {
		return 1
	}
	return cfg.Shards
}

func (cfg Config) batch() int {
	if cfg.Batch < 1 {
		return 1
	}
	return cfg.Batch
}

// intervalsConfig is the per-shard manager configuration derived from the
// sharded one — the single place the Ingest mode is forwarded, so the three
// construction paths (in-memory, create, open) cannot drift.
func (cfg Config) intervalsConfig() intervals.Config {
	return intervals.Config{B: cfg.B, Ingest: cfg.Ingest}
}

// Router maps keys to shards.
type Router struct {
	n    int
	part Partition
	span int64
}

// NewRouter builds a router over n shards. span is only used by
// PartitionRange and must be positive for it: a zero span would silently
// clamp every key to the last shard, leaving n-1 shards empty while
// results stay correct — a misconfiguration nothing else would surface.
func NewRouter(n int, part Partition, span int64) Router {
	if n < 1 {
		n = 1
	}
	if part == PartitionRange && span < 1 {
		panic("shard: PartitionRange requires a positive Span")
	}
	return Router{n: n, part: part, span: span}
}

// Shards returns the shard count.
func (r Router) Shards() int { return r.n }

// mix64 is the splitmix64 finalizer: a cheap, deterministic 64-bit mixer
// with good avalanche behaviour for hash partitioning.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Route returns the shard owning key.
func (r Router) Route(key int64) int {
	if r.n == 1 {
		return 0
	}
	switch r.part {
	case PartitionRange:
		if key < 0 {
			return 0
		}
		if key >= r.span {
			return r.n - 1
		}
		return int(key / ((r.span + int64(r.n) - 1) / int64(r.n)))
	default:
		return int(mix64(uint64(key)) % uint64(r.n))
	}
}

// RouteRange returns the inclusive shard interval [first, last] that a key
// range [lo, hi] can touch. For hash partitioning that is every shard.
func (r Router) RouteRange(lo, hi int64) (first, last int) {
	if r.part != PartitionRange {
		return 0, r.n - 1
	}
	return r.Route(lo), r.Route(hi)
}

// cell is the per-shard group-commit container shared by every sharded
// index: an RWMutex guarding the shard's structure plus the pending buffer
// of not-yet-applied inserts. Holding the protocol here keeps the two
// index kinds (intervals, classes) from drifting.
type cell[T any] struct {
	mu      sync.RWMutex
	pending []T
	// logOp, when set (file-backed shards), appends the op to the shard's
	// write-ahead log at ENQUEUE time, under the write lock: a mutation is
	// log-durable the moment its caller is acknowledged, even though the
	// index structures only see it at the deferred group-commit flush.
	logOp func(T)
	// synced, when set, marks the group-commit boundary after a flush: the
	// WAL pays one fsync per flushed group (under FsyncAlways), not one per
	// operation. Between an op's ack and its group's sync the record is
	// durable in write order only — the bounded window group commit trades
	// for batched fsyncs.
	synced func()
}

// insert appends item under the write lock and, once the buffer reaches
// batch, applies every pending item while still holding the lock (the
// group commit).
func (c *cell[T]) insert(item T, batch int, apply func(T)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.logOp != nil {
		c.logOp(item)
	}
	c.pending = append(c.pending, item)
	if len(c.pending) >= batch {
		c.flushLocked(apply)
		if c.synced != nil {
			c.synced()
		}
	}
}

func (c *cell[T]) flushLocked(apply func(T)) {
	for _, it := range c.pending {
		apply(it)
	}
	c.pending = c.pending[:0]
}

// flush applies any pending items under the write lock.
func (c *cell[T]) flush(apply func(T)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushLocked(apply)
	if c.synced != nil {
		c.synced()
	}
}

// read runs fn under the read lock, handing it the pending buffer. fn must
// only read (the underlying structures' query paths never write pages).
func (c *cell[T]) read(fn func(pending []T)) {
	c.mu.RLock()
	fn(c.pending)
	c.mu.RUnlock()
}

// panicBox carries a panic from a worker goroutine back to the goroutine
// that forked it. The query fan-outs read index pages concurrently; a read
// that surfaces disk.ErrCorrupt makes the tree panic with an error, and an
// uncaught panic in a bare goroutine would kill the whole process instead
// of failing the one request. Workers run their body through run (which
// records the first panic and lets the goroutine finish its join
// bookkeeping); the forker calls rethrow after the join, re-raising the
// panic on a goroutine whose callers (the server's request guard, the
// batcher's safeRun) can recover it.
type panicBox struct {
	mu  sync.Mutex
	val any
	set bool
}

func (b *panicBox) run(fn func()) {
	defer func() {
		if p := recover(); p != nil {
			b.mu.Lock()
			if !b.set {
				b.val, b.set = p, true
			}
			b.mu.Unlock()
		}
	}()
	fn()
}

// rethrow re-raises the captured panic, if any. Call only after every
// worker has joined.
func (b *panicBox) rethrow() {
	if b.set {
		panic(b.val)
	}
}

// fanOut runs collect on shards [first, last] in parallel and emits the
// merged per-shard results in shard order; emit returning false stops the
// enumeration. A single-shard span skips the goroutine machinery. A panic
// in a shard collector (a corrupt page read) is re-raised here, on the
// caller's goroutine, after all collectors joined.
//
// Early termination propagates BACK into the collectors: per-shard results
// stream to emit as each shard finishes (still in shard order), and the
// moment emit returns false the shared stop flag flips, so unfinished
// shard goroutines — whose collect callbacks poll the flag per emitted
// item — stop building result slices instead of materializing answers
// nobody will read. The call still joins every goroutine before returning,
// so no collector outlives its query.
//
// Safety of the shared flag (audited invariant): stop has exactly ONE
// writer — the emit loop below, which stores true only after emit returned
// false, i.e. after the caller terminated the whole enumeration. Shard
// collectors only POLL it; they can never race each other into setting it.
// So a collector observing stop==true can truncate its slice freely: that
// slice belongs to a query whose emission has already ended, and fanOut
// never reads results[next] once stop is set. No result owed to a
// non-terminated query can be dropped. The batch paths (batch.go) do not
// share this flag at all — they carry per-query stop state (done flags /
// per-query emit returns) through every layer.
func fanOut[T any](first, last int, collect func(shard int, stop *atomic.Bool) []T, emit func(T) bool) {
	var stop atomic.Bool
	if first == last {
		for _, v := range collect(first, &stop) {
			if !emit(v) {
				return
			}
		}
		return
	}
	n := last - first + 1
	results := make([][]T, n)
	done := make(chan int, n)
	var box panicBox
	for i := first; i <= last; i++ {
		go func(i int) {
			box.run(func() { results[i-first] = collect(i, &stop) })
			done <- i - first
		}(i)
	}
	ready := make([]bool, n)
	next := 0 // next shard (in order) whose results have not been emitted
	for completed := 0; completed < n; completed++ {
		ready[<-done] = true
		for next < n && ready[next] {
			if !stop.Load() {
				for _, v := range results[next] {
					if !emit(v) {
						stop.Store(true)
						break
					}
				}
			}
			next++
		}
	}
	box.rethrow()
}
