package shard

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"testing"

	"ccidx/internal/classindex"
	"ccidx/internal/disk"
	"ccidx/internal/geom"
	"ccidx/internal/intervals"
	"ccidx/internal/workload"
)

func sortIDs(ids []uint64) []uint64 {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func shardedStabIDs(s *Intervals, q int64) []uint64 {
	var ids []uint64
	s.Stab(q, func(iv geom.Interval) bool { ids = append(ids, iv.ID); return true })
	return sortIDs(ids)
}

func shardedIntersectIDs(s *Intervals, q geom.Interval) []uint64 {
	var ids []uint64
	s.Intersect(q, func(iv geom.Interval) bool { ids = append(ids, iv.ID); return true })
	return sortIDs(ids)
}

func bruteStab(live map[uint64]geom.Interval, q int64) []uint64 {
	var ids []uint64
	for id, iv := range live {
		if iv.Contains(q) {
			ids = append(ids, id)
		}
	}
	return sortIDs(ids)
}

func bruteIntersect(live map[uint64]geom.Interval, q geom.Interval) []uint64 {
	var ids []uint64
	for id, iv := range live {
		if iv.Intersects(q) {
			ids = append(ids, id)
		}
	}
	return sortIDs(ids)
}

func compareSharded(t *testing.T, s *Intervals, live map[uint64]geom.Interval, span int64) {
	t.Helper()
	if s.Len() != len(live) {
		t.Fatalf("Len = %d, oracle has %d", s.Len(), len(live))
	}
	for q := int64(0); q <= span; q += span / 29 {
		if !idsEqual(shardedStabIDs(s, q), bruteStab(live, q)) {
			t.Fatalf("Stab(%d) diverged from oracle", q)
		}
	}
	for lo := int64(0); lo <= span; lo += span / 9 {
		q := geom.Interval{Lo: lo, Hi: lo + span/7}
		if !idsEqual(shardedIntersectIDs(s, q), bruteIntersect(live, q)) {
			t.Fatalf("Intersect(%v) diverged from oracle", q)
		}
	}
}

// TestShardedDurableRoundTrip checkpoints a sharded manager mid-churn,
// reopens it, and oracle-compares every query — across both partitioning
// schemes, with pools on and off, with group-commit batching exercised and
// tombstone state crossing the checkpoint.
func TestShardedDurableRoundTrip(t *testing.T) {
	const span = int64(4000)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"hash-pools", Config{Shards: 3, B: 8, Batch: 4, Partition: PartitionHash, PoolFrames: 64}},
		{"hash-bare", Config{Shards: 3, B: 8, Batch: 1, Partition: PartitionHash, PoolFrames: -1}},
		{"range-pools", Config{Shards: 4, B: 8, Batch: 4, Partition: PartitionRange, Span: span, PoolFrames: 64}},
		{"range-bare", Config{Shards: 4, B: 8, Batch: 1, Partition: PartitionRange, Span: span, PoolFrames: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "sharded")
			init := workload.UniformIntervals(21, 240, span, 250)
			s, err := CreateIntervalsAt(dir, tc.cfg, init, intervals.DurableOptions{})
			if err != nil {
				t.Fatal(err)
			}
			live := map[uint64]geom.Interval{}
			for _, iv := range init {
				live[iv.ID] = iv
			}
			churn := workload.ChurnOps(23, workload.SeqIDs(240), 240, 400, span, 250)
			apply := func(s *Intervals, ops []workload.ChurnOp) {
				for _, op := range ops {
					switch op.Kind {
					case workload.ChurnInsert:
						s.Insert(op.Iv)
						live[op.Iv.ID] = op.Iv
					case workload.ChurnDelete:
						if _, ok := live[op.ID]; ok {
							if !s.Delete(op.ID) {
								t.Fatalf("Delete(%d) = false, oracle has it", op.ID)
							}
							delete(live, op.ID)
						}
					}
				}
			}
			apply(s, churn)
			compareSharded(t, s, live, span)
			if err := s.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			reopened, err := OpenIntervals(dir, intervals.DurableOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer reopened.Close()
			if got, want := reopened.Shards(), tc.cfg.shards(); got != want {
				t.Fatalf("reopened with %d shards, want %d", got, want)
			}
			compareSharded(t, reopened, live, span)

			// Serving must resume: more churn, another checkpoint cycle.
			churn2 := workload.ChurnOps(29, nil, 3000, 200, span, 250)
			apply(reopened, churn2)
			compareSharded(t, reopened, live, span)
			if err := reopened.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if err := reopened.Close(); err != nil {
				t.Fatal(err)
			}
			again, err := OpenIntervals(dir, intervals.DurableOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer again.Close()
			compareSharded(t, again, live, span)
		})
	}
}

// shardedCrashOutcome records what a faulted sharded run acknowledged
// before the injected crash: the live map of every op that RETURNED, plus
// the single op that died mid-flight (nil when the crash hit a checkpoint).
type shardedCrashOutcome struct {
	acked    map[uint64]geom.Interval
	inflight *workload.ChurnOp
}

// oracles returns the admissible recovery states. Acknowledged mutations
// were WAL-logged on every replica shard before their caller returned, so
// they must all be recovered. The in-flight op may have reached the log on
// only a PREFIX of its replica shards, so a query routed to one slice may
// see its effect while another does not — each query is therefore checked
// against both the acked state and the acked-plus-in-flight state
// independently.
func (o *shardedCrashOutcome) oracles() []map[uint64]geom.Interval {
	out := []map[uint64]geom.Interval{o.acked}
	if op := o.inflight; op != nil {
		alt := make(map[uint64]geom.Interval, len(o.acked)+1)
		for id, iv := range o.acked {
			alt[id] = iv
		}
		switch op.Kind {
		case workload.ChurnInsert:
			alt[op.Iv.ID] = op.Iv
		case workload.ChurnDelete:
			delete(alt, op.ID)
		}
		out = append(out, alt)
	}
	return out
}

// TestShardedCrashEveryWrite is the sharded fault-injection reopen suite:
// one write budget is SHARED across every device and WAL of every shard
// (so the k-th write boundary is global), and reopening after a crash at
// any boundary must recover every acknowledged mutation — replicas
// included — tolerating only the single in-flight op, which under range
// partitioning may have reached some replica shards and not others.
func TestShardedCrashEveryWrite(t *testing.T) {
	total := runShardedCrashWorkload(t, filepath.Join(t.TempDir(), "probe"), -1, nil)
	if total < 200 {
		t.Fatalf("workload too small: %d writes", total)
	}
	// The sharded sweep is coarser than the single-manager one (which
	// steps every boundary): each run replays the workload from scratch
	// across 8 devices. Step through ~400 boundaries full-size, ~40 short.
	step := total/400 + 1
	if testing.Short() {
		step = total/40 + 1
	}
	for k := int64(1); k <= total; k += step {
		k := k
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "sharded")
			var out shardedCrashOutcome
			runShardedCrashWorkload(t, dir, k, &out)
			reopened, err := OpenIntervals(dir, intervals.DurableOptions{})
			if err != nil {
				t.Fatalf("reopen after crash at write %d: %v", k, err)
			}
			defer reopened.Close()
			oracles := out.oracles()
			lenOK := false
			for _, om := range oracles {
				if reopened.Len() == len(om) {
					lenOK = true
				}
			}
			if !lenOK {
				t.Fatalf("crash at write %d: Len = %d, want %d acked (± the in-flight op)",
					k, reopened.Len(), len(out.acked))
			}
			check := func(desc string, got []uint64, want func(map[uint64]geom.Interval) []uint64) {
				t.Helper()
				for _, om := range oracles {
					if idsEqual(got, want(om)) {
						return
					}
				}
				t.Fatalf("crash at write %d: %s diverged from acked oracle", k, desc)
			}
			const span = int64(3000)
			for q := int64(0); q <= span; q += span / 17 {
				q := q
				check(fmt.Sprintf("Stab(%d)", q), shardedStabIDs(reopened, q),
					func(om map[uint64]geom.Interval) []uint64 { return bruteStab(om, q) })
			}
			for lo := int64(0); lo <= span; lo += span / 5 {
				q := geom.Interval{Lo: lo, Hi: lo + span/6}
				check(fmt.Sprintf("Intersect(%v)", q), shardedIntersectIDs(reopened, q),
					func(om map[uint64]geom.Interval) []uint64 { return bruteIntersect(om, q) })
			}
		})
	}
}

func runShardedCrashWorkload(t *testing.T, dir string, k int64, out *shardedCrashOutcome) int64 {
	t.Helper()
	const (
		span      = int64(3000)
		n0        = 100
		ops       = 220
		ckptEvery = 45
	)
	cfg := Config{Shards: 4, B: 8, Batch: 3, Partition: PartitionRange, Span: span, PoolFrames: 64}
	init := workload.UniformIntervals(31, n0, span, 200)
	s, err := CreateIntervalsAt(dir, cfg, init, intervals.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	live := map[uint64]geom.Interval{}
	for _, iv := range init {
		live[iv.ID] = iv
	}
	if k >= 0 {
		s.SetWriteBudget(disk.NewWriteBudget(k))
	}

	churn := workload.ChurnOps(37, workload.SeqIDs(n0), n0, ops, span, 200)
	crashed := false
	for i, op := range churn {
		op := op
		func() {
			defer func() {
				if p := recover(); p != nil {
					err, ok := p.(error)
					if !ok || !errors.Is(err, disk.ErrInjectedFault) {
						panic(p)
					}
					crashed = true
					if out != nil {
						out.inflight = &op
					}
				}
			}()
			switch op.Kind {
			case workload.ChurnInsert:
				s.Insert(op.Iv)
				live[op.Iv.ID] = op.Iv
			case workload.ChurnDelete:
				if _, ok := live[op.ID]; ok {
					s.Delete(op.ID)
					delete(live, op.ID)
				}
			}
		}()
		if crashed {
			break
		}
		if (i+1)%ckptEvery == 0 {
			if err := s.Checkpoint(); err != nil {
				if !errors.Is(err, disk.ErrInjectedFault) {
					t.Fatalf("checkpoint: %v", err)
				}
				crashed = true
				break
			}
		}
	}
	if out != nil {
		snap := make(map[uint64]geom.Interval, len(live))
		for id, iv := range live {
			snap[id] = iv
		}
		out.acked = snap
	}
	return s.FileWrites()
}

// TestShardedClassesDurableRoundTrip checkpoints a durable sharded class
// index (every strategy), reopens it — hierarchy rebuilt from the manifest
// — and oracle-compares full-extent queries.
func TestShardedClassesDurableRoundTrip(t *testing.T) {
	const span = int64(2000)
	h := workload.RandomHierarchy(41, 24)
	strategies := []classindex.StrategyKind{
		classindex.KindSimple, classindex.KindFullExtent, classindex.KindRakeContract,
	}
	for _, kind := range strategies {
		t.Run(fmt.Sprintf("kind=%d", kind), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "classes")
			cfg := Config{Shards: 3, B: 8, Batch: 4, Partition: PartitionRange, Span: span, PoolFrames: 64}
			s, err := CreateClassesAt(dir, cfg, h, kind, classindex.DurableOpts{})
			if err != nil {
				t.Fatal(err)
			}
			objs := workload.Objects(43, h, 600, span)
			for _, o := range objs {
				s.Insert(o)
			}
			oracle := NewClasses(Config{Shards: 1, B: 8, PoolFrames: -1}, h, func() ClassIndex {
				return classindex.NewSimple(h, 8)
			})
			for _, o := range objs {
				oracle.Insert(o)
			}
			if err := s.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			reopened, h2, err := OpenClasses(dir, classindex.DurableOpts{})
			if err != nil {
				t.Fatal(err)
			}
			defer reopened.Close()
			if h2.Len() != h.Len() {
				t.Fatalf("hierarchy round trip: %d classes, want %d", h2.Len(), h.Len())
			}
			for c := 0; c < h.Len(); c++ {
				for _, q := range []struct{ a1, a2 int64 }{{0, span}, {span / 4, span / 2}, {100, 300}} {
					var want, got []uint64
					oracle.Query(c, q.a1, q.a2, func(_ int64, id uint64) bool {
						want = append(want, id)
						return true
					})
					reopened.Query(c, q.a1, q.a2, func(_ int64, id uint64) bool {
						got = append(got, id)
						return true
					})
					if !idsEqual(sortIDs(want), sortIDs(got)) {
						t.Fatalf("class %d query [%d,%d] diverged after reopen (%d vs %d results)",
							c, q.a1, q.a2, len(want), len(got))
					}
				}
			}
		})
	}
}

// TestShardedClassesWalRecoversAcked: objects inserted after the last
// checkpoint — including ones still sitting in the group-commit buffers
// (Batch > 1) — were WAL-logged at enqueue, so closing WITHOUT a
// checkpoint must lose nothing: reopening replays the per-shard logs and
// every acknowledged object answers queries again.
func TestShardedClassesWalRecoversAcked(t *testing.T) {
	const span = int64(2000)
	h := workload.RandomHierarchy(47, 20)
	dir := filepath.Join(t.TempDir(), "classes")
	cfg := Config{Shards: 3, B: 8, Batch: 8, Partition: PartitionRange, Span: span, PoolFrames: 64}
	s, err := CreateClassesAt(dir, cfg, h, classindex.KindSimple, classindex.DurableOpts{})
	if err != nil {
		t.Fatal(err)
	}
	objs := workload.Objects(53, h, 300, span)
	half := len(objs) / 2
	for _, o := range objs[:half] {
		s.Insert(o)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint inserts: with Batch 8 and no Flush, a tail of these
	// is still buffered in the shard cells when we pull the plug.
	for _, o := range objs[half:] {
		s.Insert(o)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, h2, err := OpenClasses(dir, classindex.DurableOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	oracle := NewClasses(Config{Shards: 1, B: 8, PoolFrames: -1}, h, func() ClassIndex {
		return classindex.NewSimple(h, 8)
	})
	for _, o := range objs {
		oracle.Insert(o)
	}
	for c := 0; c < h2.Len(); c++ {
		var want, got []uint64
		oracle.Query(c, 0, span, func(_ int64, id uint64) bool { want = append(want, id); return true })
		reopened.Query(c, 0, span, func(_ int64, id uint64) bool { got = append(got, id); return true })
		if !idsEqual(sortIDs(want), sortIDs(got)) {
			t.Fatalf("class %d lost acked objects after unclean close (%d vs %d results)",
				c, len(got), len(want))
		}
	}
}
