package shard

// Durable sharded class serving: the class-index counterpart of durable.go.
// Every shard hosts a file-backed strategy instance (classindex.Durable) in
// its own subdirectory; one top-level manifest commits all shards at one
// generation; OpenClasses reopens them in parallel. The hierarchy is
// embedded in the manifest (classindex.HierarchySpec), so a cold open needs
// nothing but the directory.

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"ccidx/internal/classindex"
	"ccidx/internal/disk"
)

const classesManifestKind = "ccidx-sharded-classes"

// classesMeta is the sharded class-index configuration recorded in the top
// manifest.
type classesMeta struct {
	durableMeta
	Strategy  int                      `json:"strategy"`
	Hierarchy classindex.HierarchySpec `json:"hierarchy"`
}

// newDurableClassShard wires a file-backed strategy instance into a shard
// cell: flush applies through the unlogged ApplyInsert, and — when the
// instance has a WAL — ops are logged at enqueue with the flush as the
// group-commit sync boundary.
func newDurableClassShard(du *classindex.Durable) *classShard {
	sh := &classShard{idx: du, apply: du.ApplyInsert}
	if du.WAL() != nil {
		sh.cell.logOp = du.LogInsert
		sh.cell.synced = du.SyncWAL
	}
	return sh
}

// CreateClassesAt builds an empty sharded class index with every shard on
// file-backed devices under dir, and commits the initial checkpoint.
func CreateClassesAt(dir string, cfg Config, h *classindex.Hierarchy, kind classindex.StrategyKind, opt classindex.DurableOpts) (*Classes, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	n := cfg.shards()
	s := &Classes{cfg: cfg, router: NewRouter(n, cfg.Partition, cfg.Span), h: h}
	s.shards = make([]*classShard, n)
	s.durables = make([]*classindex.Durable, n)
	for i := 0; i < n; i++ {
		du, err := classindex.CreateDurable(shardSubdir(dir, i), h, cfg.B, kind, opt)
		if err != nil {
			s.Close()
			return nil, err
		}
		if f := cfg.poolFrames(); f > 0 {
			du.AttachPool(f, poolLockShards)
		}
		s.durables[i] = du
		s.shards[i] = newDurableClassShard(du)
	}
	s.dirPath = dir
	s.strategy = kind
	if err := s.Checkpoint(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// OpenClasses reopens the sharded class index persisted under dir at its
// manifest-committed generation (shards in parallel), returning the index
// and the hierarchy rebuilt from the manifest.
func OpenClasses(dir string, opt classindex.DurableOpts) (*Classes, *classindex.Hierarchy, error) {
	mf, err := disk.ReadManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	if mf.Kind != classesManifestKind {
		return nil, nil, fmt.Errorf("shard: %s holds a %q checkpoint, not %q", dir, mf.Kind, classesManifestKind)
	}
	var cm classesMeta
	if err := json.Unmarshal(mf.Meta, &cm); err != nil {
		return nil, nil, fmt.Errorf("shard: corrupt manifest meta in %s: %w", dir, err)
	}
	h, err := classindex.HierarchyFromSpec(cm.Hierarchy)
	if err != nil {
		return nil, nil, err
	}
	cfg := cm.config()
	kind := classindex.StrategyKind(cm.Strategy)
	n := cfg.shards()
	s := &Classes{cfg: cfg, router: NewRouter(n, cfg.Partition, cfg.Span), h: h}
	s.shards = make([]*classShard, n)
	s.durables = make([]*classindex.Durable, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			du, err := classindex.OpenDurable(shardSubdir(dir, i), h, cfg.B, kind, mf.Seq, opt)
			if err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
				return
			}
			if f := cfg.poolFrames(); f > 0 {
				du.AttachPool(f, poolLockShards)
			}
			s.durables[i] = du
			s.shards[i] = newDurableClassShard(du)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			s.Close()
			return nil, nil, err
		}
	}
	s.dirPath = dir
	s.strategy = kind
	return s, h, nil
}

// Durable reports whether the sharded class index runs on file-backed
// shards.
func (s *Classes) Durable() bool { return s.dirPath != "" }

// Seq returns the last committed checkpoint generation.
func (s *Classes) Seq() uint64 {
	if !s.Durable() {
		return 0
	}
	return s.durables[0].Seq()
}

// Checkpoint makes the whole sharded class index durable at one consistent
// generation: per shard (under its write lock) the pending group-commit
// buffer is drained and the devices prepared; one manifest rename commits
// everything; journals restart. Mutations must be quiesced by the caller.
func (s *Classes) Checkpoint() error {
	if !s.Durable() {
		return fmt.Errorf("shard: sharded class index is not file-backed")
	}
	seq := s.Seq() + 1
	// See Intervals.Checkpoint: prepared shards are unwound when a later
	// shard or the manifest fails, keeping the checkpoint retryable.
	rollbackPrepared := func(upto int) error {
		var first error
		for i := 0; i < upto; i++ {
			sh := s.shards[i]
			sh.cell.mu.Lock()
			err := s.durables[i].RollbackCheckpoint()
			sh.cell.mu.Unlock()
			if err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	for i, sh := range s.shards {
		du := s.durables[i]
		if err := prepareShard(&sh.cell.mu, func() error {
			sh.cell.flushLocked(sh.apply)
			return du.PrepareCheckpoint(seq)
		}); err != nil {
			if rerr := rollbackPrepared(i); rerr != nil {
				return fmt.Errorf("shard: rolling back prepared shards: %v (original: %w)", rerr, err)
			}
			return err
		}
	}
	metaJSON, err := json.Marshal(classesMeta{
		durableMeta: s.cfg.meta(), Strategy: int(s.strategy), Hierarchy: s.h.Spec(),
	})
	if err != nil {
		return err
	}
	if err := disk.WriteManifest(s.dirPath, disk.Manifest{
		Version: 1, Kind: classesManifestKind, Seq: seq, Meta: metaJSON,
	}); err != nil {
		if rerr := rollbackPrepared(len(s.shards)); rerr != nil {
			return fmt.Errorf("shard: rolling back after manifest failure: %v (original: %w)", rerr, err)
		}
		return err
	}
	for i, sh := range s.shards {
		sh.cell.mu.Lock()
		err := s.durables[i].CommitCheckpoint()
		sh.cell.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// SetWriteBudget shares one fault-injection budget across every shard's
// devices AND write-ahead logs (nil disarms).
func (s *Classes) SetWriteBudget(b *disk.WriteBudget) {
	for _, du := range s.durables {
		if du != nil {
			du.SetWriteBudget(b)
		}
	}
}

// FileWrites sums file-level writes across every shard's devices and WALs.
func (s *Classes) FileWrites() int64 {
	var total int64
	for _, du := range s.durables {
		if du != nil {
			total += du.FileWrites()
		}
	}
	return total
}

// Close closes every shard's file devices WITHOUT checkpointing.
func (s *Classes) Close() error {
	var first error
	for _, du := range s.durables {
		if du == nil {
			continue
		}
		if err := du.CloseFiles(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
