package shard

// Durable sharded serving: every shard's interval manager lives on
// file-backed devices in its own subdirectory, and the WHOLE sharded
// checkpoint commits atomically under one top-level manifest.
//
// Checkpoint protocol (the multi-device two-phase flip):
//
//  1. per shard, under its write lock: drain the pending group-commit op
//     log into the index (so the durable image needs no log replay), flush
//     pooled frames, PrepareCheckpoint(seq) on both devices;
//  2. atomically rename the top-level manifest to seq — the single commit
//     point for every device of every shard;
//  3. per shard: CommitCheckpoint (journal restart).
//
// A crash anywhere leaves the manifest at exactly one generation and every
// device able to recover that generation, so OpenIntervals can never
// observe shards from different checkpoints — which matters: under range
// partitioning an interval is replicated across shards, and mixed
// generations could report or drop a replica inconsistently.
//
// OpenIntervals reopens every shard in parallel (restartable serving: a
// cold process is back to serving after one manifest read plus per-shard
// O(n/B) directory-rebuild scans that proceed concurrently).

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"ccidx/internal/disk"
	"ccidx/internal/geom"
	"ccidx/internal/intervals"
)

const intervalsManifestKind = "ccidx-sharded-intervals"

// durableMeta is the sharded configuration recorded in the top manifest.
type durableMeta struct {
	Shards     int                     `json:"shards"`
	B          int                     `json:"b"`
	Batch      int                     `json:"batch"`
	Partition  int                     `json:"partition"`
	Span       int64                   `json:"span"`
	PoolFrames int                     `json:"pool_frames"`
	Ingest     *intervals.IngestConfig `json:"ingest,omitempty"`
}

func (cfg Config) meta() durableMeta {
	return durableMeta{
		Shards: cfg.shards(), B: cfg.B, Batch: cfg.Batch,
		Partition: int(cfg.Partition), Span: cfg.Span, PoolFrames: cfg.PoolFrames,
		Ingest: cfg.Ingest,
	}
}

func (dm durableMeta) config() Config {
	return Config{
		Shards: dm.Shards, B: dm.B, Batch: dm.Batch,
		Partition: Partition(dm.Partition), Span: dm.Span, PoolFrames: dm.PoolFrames,
		Ingest: dm.Ingest,
	}
}

func shardSubdir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d", i))
}

// CreateIntervalsAt builds a sharded manager over ivs with every shard on
// file-backed devices under dir, and commits the initial checkpoint. A
// crash before it returns leaves no valid top-level manifest: treat the
// directory as never created.
func CreateIntervalsAt(dir string, cfg Config, ivs []geom.Interval, opt intervals.DurableOptions) (*Intervals, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := newIntervalsShell(cfg)
	parts := s.partition(ivs)
	s.fillDir(ivs)
	n := s.router.Shards()
	s.shards = make([]*intervalShard, n)
	for i := 0; i < n; i++ {
		mgr, err := intervals.CreateManaged(shardSubdir(dir, i), cfg.intervalsConfig(), parts[i], opt)
		if err != nil {
			s.closeCreated()
			return nil, err
		}
		s.shards[i] = &intervalShard{mgr: mgr}
		s.shards[i].armWAL()
	}
	s.attachPools()
	s.n.Store(int64(len(ivs)))
	s.dirPath = dir
	if err := s.Checkpoint(); err != nil {
		s.closeCreated()
		return nil, err
	}
	return s, nil
}

// closeCreated tears down partially created shard managers.
func (s *Intervals) closeCreated() {
	for _, sh := range s.shards {
		if sh != nil && sh.mgr != nil {
			sh.mgr.CloseFiles()
		}
	}
}

// OpenIntervals reopens the sharded manager persisted under dir at its
// manifest-committed generation, reopening every shard in parallel and
// resuming the serving configuration recorded at create time.
func OpenIntervals(dir string, opt intervals.DurableOptions) (*Intervals, error) {
	mf, err := disk.ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	if mf.Kind != intervalsManifestKind {
		return nil, fmt.Errorf("shard: %s holds a %q checkpoint, not %q", dir, mf.Kind, intervalsManifestKind)
	}
	var dm durableMeta
	if err := json.Unmarshal(mf.Meta, &dm); err != nil {
		return nil, fmt.Errorf("shard: corrupt manifest meta in %s: %w", dir, err)
	}
	cfg := dm.config()
	s := newIntervalsShell(cfg)
	n := s.router.Shards()
	s.shards = make([]*intervalShard, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mgr, err := intervals.OpenManaged(shardSubdir(dir, i), cfg.intervalsConfig(), mf.Seq, opt)
			if err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
				return
			}
			s.shards[i] = &intervalShard{mgr: mgr}
			s.shards[i].armWAL()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			s.closeCreated()
			return nil, err
		}
	}
	// Rebuild the top-level id directory as the union of the shard
	// directories (replicas under range partitioning collapse by id).
	s.dir = make(map[uint64]geom.Interval)
	for _, sh := range s.shards {
		sh.mgr.Each(func(iv geom.Interval) bool {
			s.dir[iv.ID] = iv
			return true
		})
	}
	s.n.Store(int64(len(s.dir)))
	s.attachPools()
	s.dirPath = dir
	return s, nil
}

// Durable reports whether the sharded manager runs on file-backed shards.
func (s *Intervals) Durable() bool { return s.dirPath != "" }

// Dir returns the checkpoint directory of a file-backed instance (empty
// in memory) — the replication snapshot endpoint ships its contents.
func (s *Intervals) Dir() string { return s.dirPath }

// Seq returns the last committed checkpoint generation.
func (s *Intervals) Seq() uint64 {
	if !s.Durable() {
		return 0
	}
	return s.shards[0].mgr.Seq()
}

// Checkpoint makes the whole sharded index durable at one consistent
// generation. Per shard (under its write lock) the pending group-commit
// ops are drained and both devices prepared; one manifest rename commits
// all of them; then every shard's journal restarts. Queries may run
// concurrently (they block per shard only while that shard prepares);
// mutations must be quiesced by the caller, as for any structure-level
// mutation.
func (s *Intervals) Checkpoint() error {
	if !s.Durable() {
		return fmt.Errorf("shard: sharded manager is not file-backed")
	}
	seq := s.Seq() + 1
	// rollbackPrepared unwinds the shards [0, upto) that prepared before a
	// later shard — or the manifest — failed, so no shard is left holding an
	// uncommitted generation and the checkpoint stays retryable. The shard
	// that failed mid-prepare rolled itself back (device-level contract);
	// drained pending ops stay drained, which only moves state between two
	// representations of the same un-checkpointed tail.
	rollbackPrepared := func(upto int) error {
		var first error
		for i := 0; i < upto; i++ {
			sh := s.shards[i]
			sh.cell.mu.Lock()
			err := sh.mgr.RollbackCheckpoint()
			sh.cell.mu.Unlock()
			if err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	for i, sh := range s.shards {
		if err := prepareShard(&sh.cell.mu, func() error {
			sh.cell.flushLocked(sh.apply)
			return sh.mgr.PrepareCheckpoint(seq)
		}); err != nil {
			if rerr := rollbackPrepared(i); rerr != nil {
				return fmt.Errorf("shard: rolling back prepared shards: %v (original: %w)", rerr, err)
			}
			return err
		}
	}
	metaJSON, err := json.Marshal(s.cfg.meta())
	if err != nil {
		return err
	}
	if err := disk.WriteManifest(s.dirPath, disk.Manifest{
		Version: 1, Kind: intervalsManifestKind, Seq: seq, Meta: metaJSON,
	}); err != nil {
		if rerr := rollbackPrepared(len(s.shards)); rerr != nil {
			return fmt.Errorf("shard: rolling back after manifest failure: %v (original: %w)", rerr, err)
		}
		return err
	}
	for _, sh := range s.shards {
		sh.cell.mu.Lock()
		err := sh.mgr.CommitCheckpoint()
		sh.cell.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// prepareShard runs a shard's drain+prepare step under its write lock,
// converting an error-typed panic into a checkpoint failure: the index
// structures report device write errors by panicking through their Must*
// helpers (an ENOSPC — or an injected fault — mid-drain), and a failed
// checkpoint must surface as an error, not tear down the process.
// Non-error panics (invariant violations) propagate.
//
// Recoverability depends on WHERE the failure hit. A failure inside
// PrepareCheckpoint proper leaves the shard's in-memory structures intact
// (the device layer rolls its own allocations back), so after the caller
// unwinds the other shards the checkpoint may simply be retried. A panic
// out of the drain (flushLocked applying pending ops into the index) can
// leave that shard's in-memory tree half-updated; the durable image is
// still the previous generation, so the process must reopen from it —
// retrying in process is not safe after a drain failure.
func prepareShard(mu *sync.RWMutex, fn func() error) (err error) {
	mu.Lock()
	defer mu.Unlock()
	defer func() {
		if p := recover(); p != nil {
			e, ok := p.(error)
			if !ok {
				panic(p)
			}
			err = fmt.Errorf("shard: checkpoint prepare: %w", e)
		}
	}()
	return fn()
}

// Files returns every shard's file devices (fault-injection tests arm a
// shared write budget across all of them); empty for in-memory instances.
func (s *Intervals) Files() []*disk.FileDevice {
	var out []*disk.FileDevice
	for _, sh := range s.shards {
		out = append(out, sh.mgr.Files()...)
	}
	return out
}

// SetWriteBudget shares one fault-injection budget across every shard's
// devices AND write-ahead logs (nil disarms).
func (s *Intervals) SetWriteBudget(b *disk.WriteBudget) {
	for _, sh := range s.shards {
		sh.mgr.SetWriteBudget(b)
	}
}

// WALStats sums write-ahead-log appends and fsyncs across every shard
// (zero when the store runs with DisableWAL or in memory).
func (s *Intervals) WALStats() (appends, syncs int64) {
	for _, sh := range s.shards {
		if w := sh.mgr.WAL(); w != nil {
			appends += w.Appends()
			syncs += w.Syncs()
		}
	}
	return
}

// FileWrites sums file-level writes across every shard's devices and WALs
// — the coordinate system of the crash sweeps.
func (s *Intervals) FileWrites() int64 {
	var total int64
	for _, sh := range s.shards {
		total += sh.mgr.FileWrites()
	}
	return total
}

// Close closes every shard's file devices WITHOUT checkpointing (state
// since the last checkpoint is recovered by the next OpenIntervals).
func (s *Intervals) Close() error {
	var first error
	for _, sh := range s.shards {
		if err := sh.mgr.CloseFiles(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
