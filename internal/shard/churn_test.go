package shard

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"ccidx/internal/geom"
	"ccidx/internal/intervals"
	"ccidx/internal/workload"
)

func sortedIDs(ivs []geom.Interval) []uint64 {
	ids := make([]uint64, len(ivs))
	for i, iv := range ivs {
		ids[i] = iv.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func churnStabIDs(s *Intervals, q int64) []uint64 {
	return sortedIDs(collectStab(s, q))
}

func churnIntersectIDs(s *Intervals, q geom.Interval) []uint64 {
	return sortedIDs(collectIntersect(s, q))
}

func idsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardChurnOracle replays a fixed-seed mixed insert/delete/query
// stream through the sharded manager — both partition schemes, buffer pools
// attached, group commit active so queries constantly observe pending
// deletes — against the naive oracle. Run under -race this also exercises
// the locking around the id directory and the pending-op buffers.
func TestShardChurnOracle(t *testing.T) {
	const span, maxLen = int64(1 << 12), int64(400)
	for _, part := range []Partition{PartitionRange, PartitionHash} {
		for _, batch := range []int{1, 16} {
			t.Run(fmt.Sprintf("part=%d/batch=%d", part, batch), func(t *testing.T) {
				base := workload.UniformIntervals(71, 600, span, maxLen)
				s := NewIntervals(Config{
					Shards: 4, B: 8, Batch: batch, Partition: part, Span: span,
					// 0 => DefaultPoolFrames: pools stay on the hot path.
				}, base)
				nv := intervals.NewNaive(8)
				for _, iv := range base {
					nv.Insert(iv)
				}
				ops := workload.ChurnOps(72, workload.SeqIDs(len(base)), uint64(len(base)), 3000, span, maxLen)
				for i, op := range ops {
					switch op.Kind {
					case workload.ChurnInsert:
						s.Insert(op.Iv)
						nv.Insert(op.Iv)
					case workload.ChurnDelete:
						ds, dn := s.Delete(op.ID), nv.Delete(op.ID)
						if !ds || !dn {
							t.Fatalf("op %d: delete id %d: sharded=%v naive=%v", i, op.ID, ds, dn)
						}
					case workload.ChurnStab:
						got := churnStabIDs(s, op.Q)
						var want []uint64
						nv.Stab(op.Q, func(iv geom.Interval) bool { want = append(want, iv.ID); return true })
						sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
						if !idsEqual(got, want) {
							t.Fatalf("op %d: stab %d: got %d ids, want %d", i, op.Q, len(got), len(want))
						}
					case workload.ChurnIntersect:
						got := churnIntersectIDs(s, op.QIv)
						var want []uint64
						nv.Intersect(op.QIv, func(iv geom.Interval) bool { want = append(want, iv.ID); return true })
						sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
						if !idsEqual(got, want) {
							t.Fatalf("op %d: intersect %v: got %d ids, want %d", i, op.QIv, len(got), len(want))
						}
					}
					if s.Len() != nv.Len() {
						t.Fatalf("op %d: Len drift: sharded %d naive %d", i, s.Len(), nv.Len())
					}
				}
				if s.Delete(1 << 62) {
					t.Fatal("delete of absent id succeeded")
				}
				// Flush and re-check a final sweep so the flushed-state path
				// (not just pending-merge) is also oracle-verified.
				s.Flush()
				for q := int64(0); q < span; q += span / 16 {
					got := churnStabIDs(s, q)
					var want []uint64
					nv.Stab(q, func(iv geom.Interval) bool { want = append(want, iv.ID); return true })
					sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
					if !idsEqual(got, want) {
						t.Fatalf("post-flush stab %d: got %d ids, want %d", q, len(got), len(want))
					}
				}
			})
		}
	}
}

// TestShardConcurrentChurn hammers a sharded manager with parallel mixed
// insert/delete/query workers — the -race exercise for the delete path's
// locking. Correctness here is the absence of races, panics and duplicate
// reports; the sequential oracle above pins exact results.
func TestShardConcurrentChurn(t *testing.T) {
	const span, maxLen = int64(1 << 16), int64(2000)
	for _, part := range []Partition{PartitionRange, PartitionHash} {
		base := workload.UniformIntervals(73, 4000, span, maxLen)
		s := NewIntervals(Config{
			Shards: 4, B: 16, Batch: 16, Partition: part, Span: span,
		}, base)
		workers := 8
		perWorker := 1500
		if testing.Short() {
			perWorker = 300
		}
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(100 + g)))
				// Each worker deletes only ids it inserted itself, so every
				// delete targets a logically live id without coordination.
				var mine []uint64
				next := uint64(1<<32) | uint64(g)<<24
				for i := 0; i < perWorker; i++ {
					switch r := rng.Intn(8); {
					case r < 3:
						lo := rng.Int63n(span)
						iv := geom.Interval{Lo: lo, Hi: lo + rng.Int63n(maxLen), ID: next}
						s.Insert(iv)
						mine = append(mine, next)
						next++
					case r < 5 && len(mine) > 0:
						j := rng.Intn(len(mine))
						if !s.Delete(mine[j]) {
							t.Errorf("worker %d: delete of own id %d failed", g, mine[j])
							return
						}
						mine[j] = mine[len(mine)-1]
						mine = mine[:len(mine)-1]
					case r < 6:
						seen := map[uint64]bool{}
						s.Stab(rng.Int63n(span), func(iv geom.Interval) bool {
							if seen[iv.ID] {
								t.Errorf("worker %d: id %d reported twice", g, iv.ID)
								return false
							}
							seen[iv.ID] = true
							return true
						})
					default:
						lo := rng.Int63n(span)
						seen := map[uint64]bool{}
						s.Intersect(geom.Interval{Lo: lo, Hi: lo + rng.Int63n(maxLen)}, func(iv geom.Interval) bool {
							if seen[iv.ID] {
								t.Errorf("worker %d: id %d reported twice", g, iv.ID)
								return false
							}
							seen[iv.ID] = true
							return true
						})
					}
				}
			}(g)
		}
		wg.Wait()
		s.Flush()
		if t.Failed() {
			return
		}
	}
}
