package shard

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"ccidx/internal/classindex"
	"ccidx/internal/geom"
	"ccidx/internal/workload"
)

func sortIvs(ivs []geom.Interval) {
	sort.Slice(ivs, func(i, j int) bool {
		a, b := ivs[i], ivs[j]
		if a.Lo != b.Lo {
			return a.Lo < b.Lo
		}
		if a.Hi != b.Hi {
			return a.Hi < b.Hi
		}
		return a.ID < b.ID
	})
}

func sameIvs(a, b []geom.Interval) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func assertShardStabOracle(t *testing.T, s *Intervals, qs []int64, label string) {
	t.Helper()
	got := make([][]geom.Interval, len(qs))
	s.StabBatch(qs, func(qi int, iv geom.Interval) bool {
		got[qi] = append(got[qi], iv)
		return true
	})
	for qi, q := range qs {
		var want []geom.Interval
		s.Stab(q, func(iv geom.Interval) bool {
			want = append(want, iv)
			return true
		})
		sortIvs(got[qi])
		sortIvs(want)
		if !sameIvs(got[qi], want) {
			t.Fatalf("%s: stab %d (q=%d): batch %d intervals, sequential %d",
				label, qi, q, len(got[qi]), len(want))
		}
	}
}

func assertShardIntersectOracle(t *testing.T, s *Intervals, qs []geom.Interval, label string) {
	t.Helper()
	got := make([][]geom.Interval, len(qs))
	s.IntersectBatch(qs, func(qi int, iv geom.Interval) bool {
		got[qi] = append(got[qi], iv)
		return true
	})
	for qi, q := range qs {
		var want []geom.Interval
		s.Intersect(q, func(iv geom.Interval) bool {
			want = append(want, iv)
			return true
		})
		sortIvs(got[qi])
		sortIvs(want)
		if !sameIvs(got[qi], want) {
			t.Fatalf("%s: intersect %d (%v): batch %d intervals, sequential %d",
				label, qi, q, len(got[qi]), len(want))
		}
	}
}

// TestShardBatchOracle drives both partitioning schemes (pools attached)
// through churn — with a large group-commit batch, so the pending op logs
// stay populated and the grouped replay is really exercised — asserting
// batch == sequential per query. The query batches span every shard.
func TestShardBatchOracle(t *testing.T) {
	const span = int64(1 << 16)
	maxLen := span / 64
	for _, part := range []Partition{PartitionRange, PartitionHash} {
		for _, shards := range []int{1, 4} {
			name := fmt.Sprintf("part=%d/shards=%d", part, shards)
			base := workload.UniformIntervals(61, 3000, span, maxLen)
			s := NewIntervals(Config{
				Shards: shards, B: 8, Batch: 64, Partition: part, Span: span,
				PoolFrames: 128,
			}, base)
			rng := rand.New(rand.NewSource(62))
			ops := workload.ChurnOps(63, workload.SeqIDs(3000), 3000, 4000, span, maxLen)
			for i, op := range ops {
				switch op.Kind {
				case workload.ChurnInsert:
					s.Insert(op.Iv)
				case workload.ChurnDelete:
					if !s.Delete(op.ID) {
						t.Fatalf("%s: churn stream deleted an absent id %d", name, op.ID)
					}
				}
				if i%800 == 799 {
					qs := make([]int64, 96)
					for j := range qs {
						qs[j] = rng.Int63n(span) // spans every range shard
					}
					assertShardStabOracle(t, s, qs, name)
					iqs := make([]geom.Interval, 48)
					for j := range iqs {
						lo := rng.Int63n(span)
						hi := lo + rng.Int63n(span/8) // crosses shard boundaries
						if j%8 == 7 {
							hi = lo - 1 // invalid
						}
						iqs[j] = geom.Interval{Lo: lo, Hi: hi}
					}
					assertShardIntersectOracle(t, s, iqs, name)
				}
			}
		}
	}
}

// TestShardBatchRacingMutations runs stab/intersect batches concurrently
// with inserts and deletes (distinct ids per writer) and checks every
// reported interval actually satisfies its query — the invariant that must
// hold under any interleaving; run under -race this also proves the
// batched read path takes the locks it needs.
func TestShardBatchRacingMutations(t *testing.T) {
	const span = int64(1 << 16)
	for _, part := range []Partition{PartitionRange, PartitionHash} {
		base := workload.UniformIntervals(71, 2000, span, span/64)
		s := NewIntervals(Config{
			Shards: 4, B: 8, Batch: 16, Partition: part, Span: span,
		}, base)
		var wg sync.WaitGroup
		stopWriters := make(chan struct{})
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(72 + w)))
				next := uint64(1<<32) | uint64(w)<<24
				var mine []uint64
				for i := 0; ; i++ {
					select {
					case <-stopWriters:
						return
					default:
					}
					if len(mine) > 0 && rng.Intn(2) == 0 {
						j := rng.Intn(len(mine))
						s.Delete(mine[j])
						mine[j] = mine[len(mine)-1]
						mine = mine[:len(mine)-1]
					} else {
						lo := rng.Int63n(span)
						iv := geom.Interval{Lo: lo, Hi: lo + rng.Int63n(span/64), ID: next}
						next++
						s.Insert(iv)
						mine = append(mine, iv.ID)
					}
				}
			}(w)
		}
		rng := rand.New(rand.NewSource(75))
		for round := 0; round < 30; round++ {
			qs := make([]int64, 32)
			for j := range qs {
				qs[j] = rng.Int63n(span)
			}
			s.StabBatch(qs, func(qi int, iv geom.Interval) bool {
				if !iv.Contains(qs[qi]) {
					t.Errorf("stab %d reported non-containing interval %v", qs[qi], iv)
				}
				return true
			})
			iqs := make([]geom.Interval, 16)
			for j := range iqs {
				lo := rng.Int63n(span)
				iqs[j] = geom.Interval{Lo: lo, Hi: lo + rng.Int63n(span/8)}
			}
			s.IntersectBatch(iqs, func(qi int, iv geom.Interval) bool {
				if !iv.Intersects(iqs[qi]) {
					t.Errorf("intersect %v reported non-intersecting interval %v", iqs[qi], iv)
				}
				return true
			})
		}
		close(stopWriters)
		wg.Wait()
	}
}

// TestShardClassQueryBatchOracle checks Classes.QueryBatch against the
// sequential Query for every strategy-independent shard configuration,
// with pending buffers populated.
func TestShardClassQueryBatchOracle(t *testing.T) {
	const attrSpan = int64(1 << 16)
	h := workload.RandomHierarchy(81, 63)
	for _, part := range []Partition{PartitionRange, PartitionHash} {
		s := NewClasses(Config{
			Shards: 4, B: 8, Batch: 64, Partition: part, Span: attrSpan,
		}, h, func() ClassIndex { return classindex.NewSimple(h, 8) })
		for _, o := range workload.Objects(82, h, 4000, attrSpan) {
			s.Insert(o) // Batch=64 keeps a rolling pending buffer populated
		}
		rng := rand.New(rand.NewSource(83))
		qs := make([]ClassQuery, 64)
		for j := range qs {
			a1 := rng.Int63n(attrSpan)
			a2 := a1 + rng.Int63n(attrSpan/4)
			if j%8 == 7 {
				a2 = a1 - 1 // inverted: reports nothing
			}
			qs[j] = ClassQuery{Class: rng.Intn(63), A1: a1, A2: a2}
		}
		got := make([][]attrID, len(qs))
		s.QueryBatch(qs, func(qi int, attr int64, id uint64) bool {
			got[qi] = append(got[qi], attrID{attr, id})
			return true
		})
		for qi, q := range qs {
			var want []attrID
			s.Query(q.Class, q.A1, q.A2, func(attr int64, id uint64) bool {
				want = append(want, attrID{attr, id})
				return true
			})
			sortAttrIDs(got[qi])
			sortAttrIDs(want)
			if len(got[qi]) != len(want) {
				t.Fatalf("class query %d %+v: batch %d objects, sequential %d",
					qi, q, len(got[qi]), len(want))
			}
			for i := range want {
				if got[qi][i] != want[i] {
					t.Fatalf("class query %d %+v: result %d differs", qi, q, i)
				}
			}
		}
	}
}

func sortAttrIDs(rs []attrID) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].attr != rs[j].attr {
			return rs[i].attr < rs[j].attr
		}
		return rs[i].id < rs[j].id
	})
}

// TestFanOutEarlyStop checks that stopping the enumeration mid-merge does
// not hang, truncates exactly where asked, and that collection on the
// not-yet-consumed shards can be abandoned (the results that do arrive
// stay in shard order).
func TestFanOutEarlyStop(t *testing.T) {
	const span = int64(1 << 16)
	base := workload.UniformIntervals(91, 5000, span, span/4)
	s := NewIntervals(Config{
		Shards: 8, B: 8, Batch: 1, Partition: PartitionHash, Span: span,
	}, base)
	for trial := 0; trial < 50; trial++ {
		want := trial % 7
		got := 0
		s.Stab(span/2, func(iv geom.Interval) bool {
			got++
			return got < want
		})
		if want > 0 && got != want {
			t.Fatalf("early stop after %d results, wanted stop at %d", got, want)
		}
	}
}

// TestShardStabBatchSharesIOs asserts the serving-layer amortization on
// the bare cost model: a batch across shard boundaries must cost well
// under the sequential sum.
func TestShardStabBatchSharesIOs(t *testing.T) {
	const span = int64(1 << 20)
	s := NewIntervals(Config{
		Shards: 4, B: 16, Batch: 16, Partition: PartitionRange, Span: span,
		PoolFrames: -1, // every access is a device I/O, the paper's model
	}, workload.UniformIntervals(95, 50000, span, 4000))
	rng := rand.New(rand.NewSource(96))
	qs := make([]int64, 256)
	for i := range qs {
		qs[i] = rng.Int63n(span)
	}
	before := s.Stats()
	for _, q := range qs {
		s.Stab(q, func(geom.Interval) bool { return true })
	}
	seq := s.Stats().Sub(before).IOs()
	before = s.Stats()
	s.StabBatch(qs, func(int, geom.Interval) bool { return true })
	batch := s.Stats().Sub(before).IOs()
	if batch*2 > seq {
		t.Fatalf("batched stab shared too little: %d I/Os batched vs %d sequential", batch, seq)
	}
}
