package shard

import (
	"sync"
	"sync/atomic"

	"ccidx/internal/disk"
	"ccidx/internal/geom"
	"ccidx/internal/intervals"
)

// Intervals is a concurrency-safe, sharded interval manager: the external
// dynamic interval management problem of Proposition 2.2, partitioned
// across cfg.Shards independent managers, each with its own simulated
// block device and pager.
//
// Two partitioning schemes with different scaling behaviour:
//
//   - PartitionRange partitions the DOMAIN [0, Span): shard i owns the
//     i-th slice of the key space, and an interval is stored in every
//     shard whose slice it overlaps. A stabbing query then touches
//     exactly ONE shard, so query throughput scales with the shard count
//     (experiment E16); the cost is replication of slice-spanning
//     intervals, ~1 + length/sliceWidth copies each.
//   - PartitionHash routes an interval to a single shard by a mix of its
//     left endpoint; no replication, but every query must fan out to all
//     shards and merge, so hash sharding parallelizes one query's latency
//     rather than aggregate throughput.
type Intervals struct {
	cfg    Config
	router Router
	shards []*intervalShard
	n      atomic.Int64 // logical interval count (primaries only)

	// dir maps live interval ids to their endpoints; Delete routes through
	// it to exactly the shards holding the interval's replicas. Pending
	// (not-yet-group-committed) inserts are already listed — directory
	// membership tracks the logical set, not the flushed one. Insert
	// publishes an id here only after enqueueing on every replica shard,
	// which is what orders a racing Delete's ops after the insert's in
	// each shard buffer. Operations on DISTINCT ids are freely concurrent;
	// racing mutations of the SAME id (e.g. reinserting an id while a
	// Delete of it is in flight) need one logical writer per id, as with
	// any keyed store.
	dirMu sync.Mutex
	dir   map[uint64]geom.Interval

	// dirPath is the checkpoint directory of a file-backed instance
	// (empty for the in-memory construction); see durable.go.
	dirPath string
}

// ivOp is one pending group-commit operation: an insert of iv, or a delete
// of the interval iv (captured in full so query-time merging can filter by
// geometry without consulting the index).
type ivOp struct {
	iv  geom.Interval
	del bool
}

type intervalShard struct {
	cell cell[ivOp]
	mgr  *intervals.Manager
}

// apply replays one pending operation into the shard's index structure
// (called with the shard's write lock held). It goes through the UNLOGGED
// Apply* twins: on a WAL-backed shard the op was already logged at enqueue
// time (cell.logOp), and logging again at flush would double every record.
func (sh *intervalShard) apply(op ivOp) {
	if op.del {
		if !sh.mgr.ApplyDelete(op.iv.ID) {
			panic("shard: pending delete of an interval its shard does not hold")
		}
		return
	}
	sh.mgr.ApplyInsert(op.iv)
}

// armWAL wires the shard's cell to the manager's write-ahead log: ops are
// logged at enqueue (the moment they are acknowledged) and the flush is the
// group-commit sync boundary. No-op wiring when the manager has no WAL.
func (sh *intervalShard) armWAL() {
	if sh.mgr.WAL() == nil {
		return
	}
	sh.cell.logOp = func(op ivOp) {
		if op.del {
			sh.mgr.LogDelete(op.iv.ID)
		} else {
			sh.mgr.LogInsert(op.iv)
		}
	}
	sh.cell.synced = sh.mgr.SyncWAL
}

// replicaRange returns the inclusive shard interval that must store iv.
func (s *Intervals) replicaRange(iv geom.Interval) (first, last int) {
	if s.cfg.Partition == PartitionRange {
		return s.router.Route(iv.Lo), s.router.Route(iv.Hi)
	}
	i := s.router.Route(iv.Lo)
	return i, i
}

// NewIntervals builds a sharded manager over an initial interval set (the
// slice is copied; the initial build is static per shard, Theorem 3.2).
func NewIntervals(cfg Config, ivs []geom.Interval) *Intervals {
	s := newIntervalsShell(cfg)
	parts := s.partition(ivs)
	s.fillDir(ivs)
	n := s.router.Shards()
	s.shards = make([]*intervalShard, n)
	for i := 0; i < n; i++ {
		sh := &intervalShard{mgr: intervals.New(cfg.intervalsConfig(), parts[i])}
		s.shards[i] = sh
	}
	s.attachPools()
	s.n.Store(int64(len(ivs)))
	return s
}

// newIntervalsShell builds the router and empty containers shared by the
// in-memory and file-backed constructions.
func newIntervalsShell(cfg Config) *Intervals {
	return &Intervals{cfg: cfg, router: NewRouter(cfg.shards(), cfg.Partition, cfg.Span)}
}

// partition splits ivs into per-shard slices (replicating slice-spanning
// intervals under range partitioning).
func (s *Intervals) partition(ivs []geom.Interval) [][]geom.Interval {
	parts := make([][]geom.Interval, s.router.Shards())
	for _, iv := range ivs {
		first, last := s.replicaRange(iv)
		for i := first; i <= last; i++ {
			parts[i] = append(parts[i], iv)
		}
	}
	return parts
}

// fillDir seeds the id directory from an initial interval set, panicking on
// duplicates. Same loud-failure contract as Insert: a duplicate id in the
// initial set would leave one copy undeletable (the directory holds one
// entry per id) — and range partitioning can route the copies to disjoint
// shards, so no per-shard manager would catch it.
func (s *Intervals) fillDir(ivs []geom.Interval) {
	s.dir = make(map[uint64]geom.Interval, len(ivs))
	for _, iv := range ivs {
		if _, dup := s.dir[iv.ID]; dup {
			panic("shard: duplicate interval id " + iv.String())
		}
		s.dir[iv.ID] = iv
	}
}

// attachPools routes every shard's page I/O through a concurrent CLOCK
// buffer pool: queries hit memory-resident frames instead of re-reading
// the device, concurrently and race-free (the pool is internally
// lock-sharded; the cell's RWMutex already serializes writers against
// readers).
func (s *Intervals) attachPools() {
	if f := s.cfg.poolFrames(); f > 0 {
		for _, sh := range s.shards {
			sh.mgr.AttachPool(f, poolLockShards)
		}
	}
}

// Shards returns the shard count.
func (s *Intervals) Shards() int { return s.router.Shards() }

// Insert adds an interval. Each owning shard's write lock is held only for
// a pending-buffer append on all but every Batch-th call, which pays the
// group-commit flush.
func (s *Intervals) Insert(iv geom.Interval) {
	if !iv.Valid() {
		// Reject here, not at the deferred flush: buffering an invalid
		// interval would make an unrelated later Insert or Flush panic.
		panic("shard: invalid interval " + iv.String())
	}
	// A live duplicate id would silently orphan the previous copy (the
	// directory can hold only one entry per id); fail loudly up front.
	// Sequential misuse is caught here; a racing duplicate still panics at
	// the per-shard manager when its ops are applied.
	s.dirMu.Lock()
	_, dup := s.dir[iv.ID]
	s.dirMu.Unlock()
	if dup {
		panic("shard: duplicate interval id " + iv.String())
	}
	// Enqueue on every replica shard BEFORE publishing the id in the
	// directory: a concurrent Delete only acts on ids it finds in dir, and
	// the publish below happens-after these enqueues, so its delete op is
	// ordered after the insert op in every shard buffer. Publishing first
	// would let a racing Delete enqueue ahead of the insert — a flush-time
	// panic or a resurrected interval.
	first, last := s.replicaRange(iv)
	for i := first; i <= last; i++ {
		sh := s.shards[i]
		sh.cell.insert(ivOp{iv: iv}, s.cfg.batch(), sh.apply)
	}
	s.dirMu.Lock()
	s.dir[iv.ID] = iv
	s.dirMu.Unlock()
	s.n.Add(1)
}

// Delete removes the interval with the given id, returning whether it was
// present. Routing is replica-aware: the id directory recovers the
// endpoints, so the delete is enqueued on exactly the shards whose slices
// hold a replica (one shard under hash partitioning). Like inserts, deletes
// group-commit through the pending buffer — a per-shard O(1) append on all
// but every Batch-th operation — and queries in between merge the buffer,
// so a deleted interval disappears from results immediately.
func (s *Intervals) Delete(id uint64) bool {
	s.dirMu.Lock()
	iv, ok := s.dir[id]
	if ok {
		delete(s.dir, id)
	}
	s.dirMu.Unlock()
	if !ok {
		return false
	}
	first, last := s.replicaRange(iv)
	for i := first; i <= last; i++ {
		sh := s.shards[i]
		sh.cell.insert(ivOp{iv: iv, del: true}, s.cfg.batch(), sh.apply)
	}
	s.n.Add(-1)
	return true
}

// Flush forces every shard's pending buffer into its index structure and
// writes dirty pooled frames back to the shard devices.
func (s *Intervals) Flush() {
	for _, sh := range s.shards {
		sh.cell.flush(sh.apply)
		// Write-back mutates device pages, so it needs the writer lock.
		sh.cell.mu.Lock()
		sh.mgr.FlushPool()
		sh.cell.mu.Unlock()
	}
}

// Rebuilds sums the stabber global-rebuild counters across shards — the
// serving layer's metrics surface reports it so operators can correlate
// latency spikes with rebuild storms.
func (s *Intervals) Rebuilds() int {
	total := 0
	for _, sh := range s.shards {
		sh.cell.read(func([]ivOp) { total += sh.mgr.Rebuilds() })
	}
	return total
}

// PoolStats sums the buffer-pool hit/miss counters across shards (zeros
// when pooling is disabled).
func (s *Intervals) PoolStats() (hits, misses int64) {
	for _, sh := range s.shards {
		h, m := sh.mgr.PoolStats()
		hits += h
		misses += m
	}
	return hits, misses
}

// IngestStats sums the log-structured ingest counters across shards (zeros
// when the shards run the amortized-rebuild tree instead).
func (s *Intervals) IngestStats() intervals.IngestStats {
	var total intervals.IngestStats
	for _, sh := range s.shards {
		sh.cell.read(func([]ivOp) {
			st := sh.mgr.IngestStats()
			total.Runs += st.Runs
			total.Frozen += st.Frozen
			total.MemtableLen += st.MemtableLen
			total.Flushes += st.Flushes
			total.Merges += st.Merges
			total.Compactions += st.Compactions
			total.Stalls += st.Stalls
		})
	}
	return total
}

// Len returns the number of intervals stored (including pending ones);
// range-partition replicas are not double counted.
func (s *Intervals) Len() int { return int(s.n.Load()) }

// applyPending folds the ordered pending-op buffer into a result list:
// matching pending inserts are appended, pending deletes remove the (at
// most one) earlier occurrence of their id — whether it came from the index
// or from an earlier pending insert. Replaying in buffer order keeps a
// delete-then-reinsert of the same id correct.
//
// stop is the fan-out's shared early-termination flag, polled per op the
// same way the index scan polls it per hit. The flag is single-writer —
// only fanOut's emit loop stores true, and only after the caller's emit
// returned false — so once it reads true this collector's output can never
// be emitted, and abandoning the merge mid-buffer (even between a pending
// insert and the delete that would remove it) cannot drop a result any
// non-terminated query is still owed.
func applyPending(out []geom.Interval, pending []ivOp, stop *atomic.Bool, match func(geom.Interval) bool) []geom.Interval {
	for _, op := range pending {
		if stop.Load() {
			return out
		}
		if op.del {
			for i := range out {
				if out[i].ID == op.iv.ID {
					out = append(out[:i], out[i+1:]...)
					break
				}
			}
		} else if match(op.iv) {
			out = append(out, op.iv)
		}
	}
	return out
}

// stabShard collects the shard's matches for a stabbing query under its
// read lock: index hits merged with the (bounded) pending-op buffer. stop
// is the fan-out's early-termination flag: once another shard's results
// satisfied the caller, collection is pointless and halts.
func (sh *intervalShard) stabShard(q int64, stop *atomic.Bool) []geom.Interval {
	var out []geom.Interval
	sh.cell.read(func(pending []ivOp) {
		sh.mgr.Stab(q, func(iv geom.Interval) bool {
			if stop.Load() {
				return false
			}
			out = append(out, iv)
			return true
		})
		if stop.Load() {
			return
		}
		out = applyPending(out, pending, stop, func(iv geom.Interval) bool { return iv.Contains(q) })
	})
	return out
}

// intersectShard collects the shard's matches for an intersection query.
// Under range partitioning an intersecting interval may be replicated into
// several queried shards; the shard owning max(iv.Lo, q.Lo) — a point
// inside both the interval and the query, hence inside exactly one queried
// shard that stores iv — is the unique reporter.
func (s *Intervals) intersectShard(idx int, q geom.Interval, stop *atomic.Bool) []geom.Interval {
	sh := s.shards[idx]
	owns := func(iv geom.Interval) bool {
		if s.cfg.Partition != PartitionRange {
			return true
		}
		p := iv.Lo
		if q.Lo > p {
			p = q.Lo
		}
		return s.router.Route(p) == idx
	}
	var out []geom.Interval
	sh.cell.read(func(pending []ivOp) {
		sh.mgr.Intersect(q, func(iv geom.Interval) bool {
			if stop.Load() {
				return false
			}
			if owns(iv) {
				out = append(out, iv)
			}
			return true
		})
		if stop.Load() {
			return
		}
		out = applyPending(out, pending, stop, func(iv geom.Interval) bool {
			return iv.Intersects(q) && owns(iv)
		})
	})
	return out
}

// Stab reports every interval containing q, each exactly once. Under range
// partitioning exactly one shard is touched.
func (s *Intervals) Stab(q int64, emit intervals.EmitInterval) {
	first, last := 0, s.router.Shards()-1
	if s.cfg.Partition == PartitionRange {
		first, last = s.router.Route(q), s.router.Route(q)
	}
	fanOut(first, last,
		func(i int, stop *atomic.Bool) []geom.Interval { return s.shards[i].stabShard(q, stop) },
		emit)
}

// Intersect reports every interval intersecting q, each exactly once.
// Under range partitioning only the shards overlapping q are touched.
func (s *Intervals) Intersect(q geom.Interval, emit intervals.EmitInterval) {
	if !q.Valid() {
		return
	}
	first, last := 0, s.router.Shards()-1
	if s.cfg.Partition == PartitionRange {
		first, last = s.router.Route(q.Lo), s.router.Route(q.Hi)
	}
	fanOut(first, last,
		func(i int, stop *atomic.Bool) []geom.Interval { return s.intersectShard(i, q, stop) },
		emit)
}

// Stats sums the I/O counters of every shard's device.
func (s *Intervals) Stats() disk.Stats {
	var st disk.Stats
	for _, sh := range s.shards {
		sh.cell.read(func([]ivOp) { st = st.Add(sh.mgr.Stats()) })
	}
	return st
}

// SpaceBlocks sums the live pages of every shard's device (replication
// under range partitioning is visible here, as it should be).
func (s *Intervals) SpaceBlocks() int64 {
	var total int64
	for _, sh := range s.shards {
		sh.cell.read(func([]ivOp) { total += sh.mgr.SpaceBlocks() })
	}
	return total
}
