package disk

// Concurrency and latency-injection tests for the fault model PR: Reset
// racing concurrent Appends must serialize cleanly (run under -race), and
// FaultDevice's injected latency must be deterministic under a fixed seed.

import (
	"encoding/binary"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestWALResetAppendRace: appenders hammering the log while checkpoints
// Reset it concurrently. The mutex must serialize them (the -race build is
// the real assertion), and afterwards the log must be a clean, replayable
// tail of the final generation — every surviving record stamped with it,
// LSNs dense from 1.
func TestWALResetAppendRace(t *testing.T) {
	w, err := OpenWAL(filepath.Join(t.TempDir(), "race.wal"), FsyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Reset(1); err != nil {
		t.Fatal(err)
	}

	const appenders = 4
	const appendsPer = 300
	const resets = 20
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			var payload [8]byte
			for i := 0; i < appendsPer; i++ {
				binary.LittleEndian.PutUint64(payload[:], uint64(a)<<32|uint64(i))
				if err := w.Append(payload[:]); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(a)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for g := uint64(2); g < 2+resets; g++ {
			if err := w.Reset(g); err != nil {
				t.Errorf("reset(%d): %v", g, err)
				return
			}
		}
	}()
	wg.Wait()
	finalGen := uint64(2 + resets - 1)

	// Reopen and replay: whatever survived the last Reset must be a valid
	// dense tail of the final generation.
	w2, err := OpenWAL(w.Path(), FsyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	replayed := 0
	n, err := w2.Recover(finalGen, func(payload []byte) error {
		if len(payload) != 8 {
			t.Errorf("replayed payload length %d", len(payload))
		}
		replayed++
		return nil
	})
	if err != nil {
		t.Fatalf("recover after race: %v", err)
	}
	if n != replayed {
		t.Fatalf("recover reported %d, callback saw %d", n, replayed)
	}
	// And the recovered log accepts appends continuing the sequence.
	if err := w2.Append([]byte("post")); err != nil {
		t.Fatalf("append after recover: %v", err)
	}
}

// TestFaultDeviceLatencyDeterministic: the injected-latency draw sequence
// is a pure function of the seed — two devices with the same seed slow the
// same operations by the same amounts (accounted totals equal), and a
// different seed diverges.
func TestFaultDeviceLatencyDeterministic(t *testing.T) {
	run := func(seed int64) (time.Duration, int64) {
		fd := NewFaultDevice(NewPager(512))
		// Microsecond-scale delays: the test asserts on the accounted
		// totals, not wall time, so it stays fast.
		fd.SetLatency(time.Microsecond, 50*time.Microsecond, seed)
		buf := make([]byte, 512)
		var ids []BlockID
		for i := 0; i < 10; i++ {
			id := fd.Alloc()
			ids = append(ids, id)
			if err := fd.Write(id, buf); err != nil {
				t.Fatal(err)
			}
		}
		for _, id := range ids {
			if err := fd.Read(id, buf); err != nil {
				t.Fatal(err)
			}
		}
		return fd.InjectedLatency()
	}
	totalA, opsA := run(42)
	totalB, opsB := run(42)
	totalC, _ := run(43)
	if opsA != 20 {
		t.Fatalf("latency ops %d, want 20 (10 writes + 10 reads)", opsA)
	}
	if totalA != totalB || opsA != opsB {
		t.Fatalf("same seed diverged: %v/%d vs %v/%d", totalA, opsA, totalB, opsB)
	}
	if totalA == totalC {
		t.Fatalf("different seeds produced identical latency totals %v", totalA)
	}
	if totalA < 20*time.Microsecond {
		t.Fatalf("injected total %v below the base floor", totalA)
	}
}

// TestFaultDeviceLatencyDisarmed: a zero configuration injects nothing.
func TestFaultDeviceLatencyDisarmed(t *testing.T) {
	fd := NewFaultDevice(NewPager(512))
	id := fd.Alloc()
	if err := fd.Write(id, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	if total, ops := fd.InjectedLatency(); total != 0 || ops != 0 {
		t.Fatalf("disarmed device injected %v over %d ops", total, ops)
	}
}
