package disk

// FileDevice is an os.File-backed Store: the same page semantics as the
// in-memory Pager — fixed-size pages addressed by BlockID, an allocator
// with a free list, atomic I/O counters — but every Read/Write is a real
// page transfer against secondary storage, so the reproduced I/O counts
// correspond to actual disk pages (the paper's cost model, Section 1.1,
// counts exactly these transfers).
//
// # On-disk layout
//
// The page file is an array of pageSize-byte file pages:
//
//	file page 0      device header {magic, version, pageSize}
//	file pages 1,2   superblock slots A and B (shadow pair)
//	file page k+2    data page for BlockID k (k >= 1; 0 is NilBlock)
//
// # Checkpoints and the shadow superblock
//
// A checkpoint captures (a) the device's allocation state (page count and
// free list) and (b) an opaque structure payload (root pointers and
// directories serialized by the owning index). Small checkpoints inline the
// content in the superblock slot; larger ones write it to a chain of
// freshly allocated data pages (the blob) and the slot records the chain
// head, length and CRC. The slot itself is written with a double-buffer
// protocol: content first, fsync, then the inactive slot is overwritten
// with an incremented sequence number and its own CRC, fsync. A torn slot
// write leaves the other slot valid, so some durable checkpoint always
// survives.
//
// Checkpointing is split into PrepareCheckpoint/CommitCheckpoint so that a
// manager spanning several devices can make one multi-file checkpoint
// atomic: prepare every device (each now holds both the old and the new
// checkpoint), flip a single commit record (the manager's manifest), then
// commit every device. Checkpoint() combines both for single-device use.
//
// # The rollback journal
//
// Structures write pages in place, so between checkpoints they physically
// overwrite pages the last durable checkpoint still references. Before the
// first overwrite of any such protected page in a generation, the device
// appends the page's pre-image to a rollback journal (path + ".journal").
// Opening a crashed device replays valid journal records — restoring every
// protected page to its checkpointed content — and discards the torn tail,
// which is safe because a record is always durable before its in-place
// overwrite. CommitCheckpoint truncates the journal and starts the next
// generation. Pages that were free at the last checkpoint are not
// journaled: no checkpointed state references their content.
//
// # Concurrency
//
// Same contract as Pager: any number of goroutines may Read/View
// concurrently while no mutation is in flight; mutations (Write, Alloc,
// Free, checkpointing) require external serialization — with the one
// internal exception that Write is self-serializing (journal bookkeeping
// takes a mutex), because a buffer pool may write back dirty frames from
// concurrent read paths.
import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// FsyncPolicy selects how aggressively the device calls fsync.
type FsyncPolicy int

const (
	// FsyncCheckpoint (the default) syncs at the two ordering points of a
	// checkpoint: after the content is written and after the superblock
	// flip. Journal appends are ordered before their overwrite by write
	// order only, which is sufficient for process-crash recovery (and for
	// the fault-injection suite); a power loss can lose the tail of the
	// current generation back to the last checkpoint.
	FsyncCheckpoint FsyncPolicy = iota
	// FsyncNever never syncs; durability is left entirely to the OS.
	FsyncNever
	// FsyncAlways additionally syncs every journal append before the
	// corresponding in-place page overwrite, extending crash safety to
	// power loss between checkpoints.
	FsyncAlways
)

// Errors of the file-backed device.
var (
	ErrInjectedFault = errors.New("disk: injected write fault")
	ErrCorruptDevice = errors.New("disk: corrupt device file")
	ErrNoCheckpoint  = errors.New("disk: no checkpoint with the requested sequence")
)

// ErrCorrupt reports a data page whose stored CRC32C does not match its
// content — a bit flip or torn write on media, detected at read time. It is
// a value type so errors.As(err, &disk.ErrCorrupt{}) matches it anywhere in
// a wrapped chain, all the way up to the serving layer's 500.
type ErrCorrupt struct {
	Path     string
	Page     BlockID
	Stored   uint32
	Computed uint32
}

func (e ErrCorrupt) Error() string {
	return fmt.Sprintf("disk: corrupt page %d in %s: stored crc %08x, computed %08x",
		e.Page, e.Path, e.Stored, e.Computed)
}

const (
	fdMagic   = 0x3164466864696363 // "ccidhFd1" little-endian-ish tag
	sbMagic   = 0x3142536864696363
	jMagic    = 0x314e4a6864696363
	jRecMagic = 0x4a52ec0d
	// fdVersion 2 adds the per-page CRC32C sidecar (path + ".crc");
	// version-1 images are migrated in place at open time.
	fdVersion   = 2
	fdVersionV1 = 1

	reservedFilePages = 3 // header + two superblock slots

	blobPageHeader = 12 // next (u64) + dataLen (u32)

	// Sanity bounds on attacker-controllable (fuzzed or corrupted) header
	// fields, so a bad length can fail as ErrCorruptDevice instead of
	// driving a huge allocation.
	maxPageSize    = 1 << 24
	maxCkptContent = 1 << 28
	maxNumPages    = 1 << 26
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// FileOptions configures OpenFile.
type FileOptions struct {
	// PageSize is required when creating a new file; when opening an
	// existing one it must be zero or match the on-disk page size.
	PageSize int
	// Fsync selects the sync policy (default FsyncCheckpoint).
	Fsync FsyncPolicy
	// TrustSeq, when non-nil, requires the opened checkpoint to have
	// exactly this sequence number (the manager's manifest-committed
	// generation) instead of the highest valid one; ErrNoCheckpoint is
	// returned when neither slot has it.
	TrustSeq *uint64
	// MustCreate requires path to not already hold a device: creating a
	// fresh structure over an existing file would silently recover the old
	// allocation state and leak every old page under the new tree.
	MustCreate bool
	// Budget, when non-nil, arms the fault-injection write budget BEFORE
	// recovery runs, so a crash schedule can land inside the open itself —
	// mid-rollback, mid-migration, or (for callers that replay a log on
	// top) mid-replay. Equivalent to SetWriteBudget, just earlier.
	Budget *WriteBudget
}

// pendingCkpt is the state between PrepareCheckpoint and CommitCheckpoint.
// oldPayload keeps the pre-prepare structure payload so RollbackCheckpoint
// can restore the device to exactly its pre-prepare state.
type pendingCkpt struct {
	seq        uint64
	newBlob    []BlockID
	oldBlob    []BlockID
	oldPayload []byte
}

// FileDevice is a file-backed Store. Create or open one with OpenFile.
type FileDevice struct {
	f        *os.File
	jf       *os.File
	cf       *os.File // per-page CRC sidecar (path + ".crc")
	path     string
	pageSize int
	fsync    FsyncPolicy

	// crcs caches the sidecar: crcs[id] is the CRC32C of data page id's
	// content, or 0 for a page never written (sparse pages read as zeros
	// and are not verified — the one-in-2^32 page whose true CRC is zero
	// forgoes verification). Grown only under mu by Alloc; elements are
	// written under mu by Write and read lock-free by Read, mirroring the
	// page-content contract (a page is never written and read concurrently).
	crcs    []uint32
	zeroCRC uint32

	// Mutation state; mu additionally serializes journal bookkeeping
	// against pool write-back (see the concurrency note above).
	mu        sync.Mutex
	live      []bool // index 0 unused (NilBlock)
	liveCount atomic.Int64
	free      []BlockID
	seq       uint64
	ckptBlob  []BlockID
	payload   []byte
	pending   *pendingCkpt
	protected []bool
	journaled map[BlockID]bool

	reads, writes, allocs, frees atomic.Int64
	jAppends, syncs              atomic.Int64

	// budget, when set, is the fault-injection write budget (possibly
	// SHARED with other devices, so a multi-file crash sweep has one global
	// write ordering); every file-level write spends from it and fails with
	// ErrInjectedFault once it is exhausted.
	budget atomic.Pointer[WriteBudget]
	// fwrites counts every file-level write operation (page writes, journal
	// appends, superblock and zeroing writes) — the crash boundaries the
	// fault-injection suite sweeps.
	fwrites atomic.Int64
}

// WriteBudget is a fault-injection budget in file-level write operations,
// shareable across several FileDevices: arm with n writes, and every write
// any sharing device issues past the n-th fails with ErrInjectedFault.
type WriteBudget struct {
	remaining atomic.Int64
	torn      atomic.Int64
}

// NewWriteBudget returns a budget allowing n writes.
func NewWriteBudget(n int64) *WriteBudget {
	b := &WriteBudget{}
	b.remaining.Store(n)
	return b
}

// SetTornBytes arranges for the write that exhausts the budget to land a
// torn prefix of n bytes on media before failing — a partial sector write
// at the crash point rather than a clean all-or-nothing cut. Consumed by
// the first faulted write.
func (b *WriteBudget) SetTornBytes(n int64) { b.torn.Store(n) }

// takeTorn consumes the one-shot torn-write setting.
func (b *WriteBudget) takeTorn() int64 { return b.torn.Swap(0) }

// Spend consumes one write from the budget, failing with ErrInjectedFault
// once exhausted — for write paths outside FileDevice and the WAL that are
// still crash points (small sidecar state files).
func (b *WriteBudget) Spend() error { return b.spend() }

func (b *WriteBudget) spend() error {
	for {
		r := b.remaining.Load()
		if r <= 0 {
			return ErrInjectedFault
		}
		if b.remaining.CompareAndSwap(r, r-1) {
			return nil
		}
	}
}

// OpenFile opens the device file at path, creating it when absent (which
// requires opts.PageSize). Opening an existing file recovers it: the valid
// superblock slot with the highest (or TrustSeq-requested) sequence is
// selected and the rollback journal of that generation, if any, is
// replayed, so the device exposes exactly the last durable checkpoint.
func OpenFile(path string, opts FileOptions) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	d := &FileDevice{f: f, path: path, fsync: opts.Fsync}
	d.budget.Store(opts.Budget)
	d.journaled = make(map[BlockID]bool)
	closeAll := func() {
		f.Close()
		if d.jf != nil {
			d.jf.Close()
		}
		if d.cf != nil {
			d.cf.Close()
		}
	}
	st, err := f.Stat()
	if err != nil {
		closeAll()
		return nil, err
	}
	if st.Size() == 0 {
		if opts.PageSize <= 0 {
			closeAll()
			return nil, fmt.Errorf("disk: creating %s requires FileOptions.PageSize", path)
		}
	} else if opts.MustCreate {
		closeAll()
		return nil, fmt.Errorf("disk: %s already holds a device; open it instead, or remove it to recreate", path)
	}
	// The CRC sidecar opens before recovery: the rollback replay restores
	// sidecar entries alongside page pre-images.
	if err := d.openSidecar(); err != nil {
		closeAll()
		return nil, err
	}
	if st.Size() == 0 {
		d.pageSize = opts.PageSize
		d.zeroCRC = crc32.Checksum(make([]byte, d.pageSize), crcTable)
		if err := d.initFresh(); err != nil {
			closeAll()
			return nil, err
		}
	} else if err := d.recover(opts); err != nil {
		closeAll()
		return nil, err
	}
	if d.jf == nil {
		if err := d.openJournal(); err != nil {
			closeAll()
			return nil, err
		}
		if err := d.resetJournal(); err != nil {
			d.Close()
			return nil, err
		}
	}
	return d, nil
}

// initFresh lays out a brand-new device file: header page plus an empty
// checkpoint in slot A (seq 0, no payload).
func (d *FileDevice) initFresh() error {
	hdr := make([]byte, d.pageSize)
	binary.LittleEndian.PutUint64(hdr[0:], fdMagic)
	binary.LittleEndian.PutUint32(hdr[8:], fdVersion)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(d.pageSize))
	binary.LittleEndian.PutUint32(hdr[16:], crc32.Checksum(hdr[:16], crcTable))
	if err := d.fwrite(hdr, 0); err != nil {
		return err
	}
	d.live = make([]bool, 1)
	d.crcs = make([]uint32, 1)
	empty := make([]byte, 16) // nPages 0, empty free list, no payload
	if err := d.writeSlot(0, NilBlock, len(empty), crc32.Checksum(empty, crcTable), empty); err != nil {
		return err
	}
	return d.sync()
}

// recover loads an existing device file: validate the header, pick the
// checkpoint slot, replay the rollback journal, rebuild allocation state.
func (d *FileDevice) recover(opts FileOptions) error {
	var small [20]byte
	if _, err := d.f.ReadAt(small[:], 0); err != nil {
		return fmt.Errorf("%w: short header: %v", ErrCorruptDevice, err)
	}
	if binary.LittleEndian.Uint64(small[0:]) != fdMagic {
		return fmt.Errorf("%w: bad magic in %s", ErrCorruptDevice, d.path)
	}
	version := binary.LittleEndian.Uint32(small[8:])
	if version != fdVersion && version != fdVersionV1 {
		return fmt.Errorf("%w: version %d (want %d)", ErrCorruptDevice, version, fdVersion)
	}
	ps := int(binary.LittleEndian.Uint32(small[12:]))
	if ps <= 0 || ps > maxPageSize {
		return fmt.Errorf("%w: page size %d", ErrCorruptDevice, ps)
	}
	if crc32.Checksum(small[:16], crcTable) != binary.LittleEndian.Uint32(small[16:]) {
		return fmt.Errorf("%w: header checksum", ErrCorruptDevice)
	}
	if opts.PageSize != 0 && opts.PageSize != ps {
		return fmt.Errorf("disk: %s has page size %d, caller expects %d", d.path, ps, opts.PageSize)
	}
	d.pageSize = ps
	d.zeroCRC = crc32.Checksum(make([]byte, d.pageSize), crcTable)

	// Pick the checkpoint slot.
	type cand struct {
		slot int
		sb   slotInfo
	}
	var best *cand
	for i := 0; i < 2; i++ {
		sb, ok := d.readSlot(i)
		if !ok {
			continue
		}
		if opts.TrustSeq != nil {
			if sb.seq == *opts.TrustSeq {
				best = &cand{i, sb}
				break
			}
			continue
		}
		if best == nil || sb.seq > best.sb.seq {
			best = &cand{i, sb}
		}
	}
	if best == nil {
		if opts.TrustSeq != nil {
			return fmt.Errorf("%w: seq %d in %s", ErrNoCheckpoint, *opts.TrustSeq, d.path)
		}
		return fmt.Errorf("%w: no valid superblock in %s", ErrCorruptDevice, d.path)
	}
	d.seq = best.sb.seq

	// Replay the rollback journal of this generation, restoring protected
	// pages to their checkpointed pre-images; then start it afresh.
	if err := d.openJournal(); err != nil {
		return err
	}
	if err := d.rollback(d.seq); err != nil {
		return err
	}
	if err := d.resetJournal(); err != nil {
		return err
	}

	// Load the checkpoint content (after rollback: a blob chain may cross
	// pages the journal just restored).
	content, chain, err := d.readSlotContent(best.sb)
	if err != nil {
		return err
	}
	if len(content) < 16 {
		return fmt.Errorf("%w: checkpoint content truncated", ErrCorruptDevice)
	}
	nPages := int(binary.LittleEndian.Uint64(content[0:]))
	freeCount := int(binary.LittleEndian.Uint64(content[8:]))
	if nPages < 0 || nPages > maxNumPages {
		return fmt.Errorf("%w: page count %d", ErrCorruptDevice, nPages)
	}
	if freeCount < 0 || len(content) < 16+8*freeCount {
		return fmt.Errorf("%w: free list truncated", ErrCorruptDevice)
	}
	d.live = make([]bool, nPages+1)
	for i := 1; i <= nPages; i++ {
		d.live[i] = true
	}
	d.free = d.free[:0]
	for i := 0; i < freeCount; i++ {
		id := BlockID(binary.LittleEndian.Uint64(content[16+8*i:]))
		if id <= 0 || int(id) > nPages || !d.live[id] {
			return fmt.Errorf("%w: free list entry %d", ErrCorruptDevice, id)
		}
		d.live[id] = false
		d.free = append(d.free, id)
	}
	d.payload = append([]byte(nil), content[16+8*freeCount:]...)
	d.ckptBlob = chain
	d.liveCount.Store(int64(nPages - freeCount))
	d.snapshotProtected()
	if err := d.loadCRCs(); err != nil {
		return err
	}
	if version == fdVersionV1 {
		if err := d.migrateV1(); err != nil {
			return err
		}
	}
	return nil
}

// loadCRCs populates the in-memory CRC table from the sidecar; entries past
// the sidecar's length (pages written before the v2 format, or never
// written) stay 0 = unverified.
func (d *FileDevice) loadCRCs() error {
	d.crcs = make([]uint32, len(d.live))
	st, err := d.cf.Stat()
	if err != nil {
		return err
	}
	n := int(st.Size() / 4)
	if n > len(d.live)-1 {
		n = len(d.live) - 1
	}
	if n <= 0 {
		return nil
	}
	buf := make([]byte, 4*n)
	if _, err := d.cf.ReadAt(buf, 0); err != nil && err != io.EOF {
		return err
	}
	for i := 0; i < n; i++ {
		d.crcs[i+1] = binary.LittleEndian.Uint32(buf[4*i:])
	}
	return nil
}

// migrateV1 upgrades a version-1 image in place: compute and persist the
// CRC of every live page, then rewrite the header as version 2. Crash-safe
// because nothing here invalidates v1 semantics — a partial sidecar simply
// leaves some pages unverified until the header rewrite lands and later
// writes refresh their entries.
func (d *FileDevice) migrateV1() error {
	page := make([]byte, d.pageSize)
	for id := 1; id < len(d.live); id++ {
		if !d.live[id] {
			continue
		}
		if err := d.fread(page, d.dataOff(BlockID(id))); err != nil {
			return err
		}
		if err := d.setCRC(BlockID(id), crc32.Checksum(page, crcTable)); err != nil {
			return err
		}
	}
	hdr := make([]byte, d.pageSize)
	binary.LittleEndian.PutUint64(hdr[0:], fdMagic)
	binary.LittleEndian.PutUint32(hdr[8:], fdVersion)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(d.pageSize))
	binary.LittleEndian.PutUint32(hdr[16:], crc32.Checksum(hdr[:16], crcTable))
	if err := d.fwrite(hdr, 0); err != nil {
		return err
	}
	return d.sync()
}

// --- basic geometry ----------------------------------------------------------

func (d *FileDevice) dataOff(id BlockID) int64 {
	return int64(int(id)+reservedFilePages-1) * int64(d.pageSize)
}

func (d *FileDevice) slotOff(slot int) int64 { return int64(1+slot) * int64(d.pageSize) }

// spendWriteBudget charges one file-level write against the fault-injection
// budget; every write the device issues (page writes, journal appends,
// superblock flips alike) passes through it, so a crash boundary exists at
// each one.
func (d *FileDevice) spendWriteBudget() error {
	d.fwrites.Add(1)
	if b := d.budget.Load(); b != nil {
		return b.spend()
	}
	return nil
}

// fwrite is the single funnel for page-file writes.
func (d *FileDevice) fwrite(buf []byte, off int64) error {
	if err := d.spendWriteBudget(); err != nil {
		d.tornWrite(d.f, buf, off)
		return err
	}
	_, err := d.f.WriteAt(buf, off)
	return err
}

// tornWrite lands the budget's configured torn prefix of the write that
// exhausted it, modeling a partial sector write at the crash point instead
// of a clean all-or-nothing cut.
func (d *FileDevice) tornWrite(f *os.File, buf []byte, off int64) {
	b := d.budget.Load()
	if b == nil {
		return
	}
	t := b.takeTorn()
	if t <= 0 {
		return
	}
	if t > int64(len(buf)) {
		t = int64(len(buf))
	}
	_, _ = f.WriteAt(buf[:t], off)
}

// --- per-page CRC sidecar ----------------------------------------------------

func (d *FileDevice) openSidecar() error {
	cf, err := os.OpenFile(d.path+".crc", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	d.cf = cf
	return nil
}

// writeCRCEntry persists page id's content CRC to the sidecar. The write
// spends the fault budget (a crash boundary exists between a page write and
// its CRC update; the rollback journal heals the pair on recovery) but is
// not an accounted data I/O — the Stats counters keep measuring exactly the
// paper's page transfers.
func (d *FileDevice) writeCRCEntry(id BlockID, crc uint32) error {
	if err := d.spendWriteBudget(); err != nil {
		return err
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], crc)
	_, err := d.cf.WriteAt(b[:], 4*int64(id-1))
	return err
}

// setCRC updates both the in-memory CRC table and the sidecar. Called with
// d.mu held (or during single-threaded recovery).
func (d *FileDevice) setCRC(id BlockID, crc uint32) error {
	if int(id) < len(d.crcs) {
		d.crcs[id] = crc
	}
	return d.writeCRCEntry(id, crc)
}

// storedCRC returns the expected content CRC of page id, or 0 when the page
// has never been written (sparse pages are not verified).
func (d *FileDevice) storedCRC(id BlockID) uint32 {
	if int(id) < len(d.crcs) {
		return d.crcs[id]
	}
	return 0
}

// fread reads len(buf) bytes at off, treating the region past EOF as zeros
// (pages grown by Alloc are materialized lazily by their first write).
func (d *FileDevice) fread(buf []byte, off int64) error {
	n, err := d.f.ReadAt(buf, off)
	if err == io.EOF || (err == nil && n == len(buf)) {
		for i := n; i < len(buf); i++ {
			buf[i] = 0
		}
		return nil
	}
	return err
}

func (d *FileDevice) sync() error {
	if d.fsync == FsyncNever {
		return nil
	}
	d.syncs.Add(1)
	if d.cf != nil {
		if err := d.cf.Sync(); err != nil {
			return err
		}
	}
	return d.f.Sync()
}

// --- Store interface ---------------------------------------------------------

// PageSize returns the page size in bytes.
func (d *FileDevice) PageSize() int { return d.pageSize }

// Path returns the page file's path.
func (d *FileDevice) Path() string { return d.path }

// Stats returns a snapshot of the cumulative I/O counters. Journal appends,
// superblock writes and allocation zeroing are deliberately NOT counted:
// the counters measure the same quantity as the Pager's — data page
// transfers — so simulated and durable runs are directly comparable.
// JournalStats exposes the durability overhead separately.
func (d *FileDevice) Stats() Stats {
	return Stats{
		Reads:  d.reads.Load(),
		Writes: d.writes.Load(),
		Allocs: d.allocs.Load(),
		Frees:  d.frees.Load(),
	}
}

// ResetStats zeroes the I/O counters (allocation state is unchanged).
func (d *FileDevice) ResetStats() {
	d.reads.Store(0)
	d.writes.Store(0)
	d.allocs.Store(0)
	d.frees.Store(0)
}

// JournalStats returns the cumulative durability overhead: journal
// pre-image appends and fsync calls.
func (d *FileDevice) JournalStats() (appends, syncs int64) {
	return d.jAppends.Load(), d.syncs.Load()
}

// Allocated returns the number of live pages. Unlike the Pager's
// session-counter arithmetic, it is maintained directly from the live set,
// so it stays correct across ResetStats AND across reopening a device that
// already holds checkpointed pages.
func (d *FileDevice) Allocated() int64 { return d.liveCount.Load() }

// NumPages returns the size of the page-id space (live or free).
func (d *FileDevice) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.live)
}

// Seq returns the sequence number of the last durable checkpoint. Taken
// under mu: replication status stamping reads it concurrently with
// CommitCheckpoint's write.
func (d *FileDevice) Seq() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seq
}

// Check reports whether id names a live page.
func (d *FileDevice) Check(id BlockID) error {
	if id <= 0 || int(id) >= len(d.live) || !d.live[id] {
		return fmt.Errorf("%w: %d", ErrBadBlock, id)
	}
	return nil
}

// Alloc reserves a page and returns its id; not counted as an I/O (the
// page must still be written to contain data). Reused pages read back as
// zeros, matching the Pager; fresh pages are materialized lazily by their
// first write (the file is sparse until then).
func (d *FileDevice) Alloc() BlockID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.allocLocked()
}

func (d *FileDevice) allocLocked() BlockID {
	id, err := d.allocPageLocked()
	if err != nil {
		panic(fmt.Errorf("disk: allocating page: %w", err))
	}
	return id
}

func (d *FileDevice) allocPageLocked() (BlockID, error) {
	if n := len(d.free); n > 0 {
		id := d.free[n-1]
		d.free = d.free[:n-1]
		d.live[id] = true
		// Reuse must present a zeroed page. The zeroing write is journaled
		// like any overwrite (the old content may belong to the last
		// checkpoint) but is not an accounted data I/O. On failure the page
		// goes back on the free list: the allocation state is unchanged, so
		// a failed caller (a mid-prepare fault) leaves nothing leaked.
		fail := func(err error) (BlockID, error) {
			d.live[id] = false
			d.free = append(d.free, id)
			return NilBlock, err
		}
		if err := d.journalLocked(id); err != nil {
			return fail(fmt.Errorf("journaling reused page %d: %w", id, err))
		}
		zero := make([]byte, d.pageSize)
		if err := d.fwrite(zero, d.dataOff(id)); err != nil {
			return fail(fmt.Errorf("zeroing reused page %d: %w", id, err))
		}
		if err := d.setCRC(id, d.zeroCRC); err != nil {
			return fail(fmt.Errorf("stamping reused page %d: %w", id, err))
		}
		d.allocs.Add(1)
		d.liveCount.Add(1)
		return id, nil
	}
	d.live = append(d.live, true)
	d.crcs = append(d.crcs, 0) // sparse until first write; unverified
	d.allocs.Add(1)
	d.liveCount.Add(1)
	return BlockID(len(d.live) - 1), nil
}

// Free releases a page back to the free list. The content is untouched, so
// no journaling is needed.
func (d *FileDevice) Free(id BlockID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.freeLocked(id)
}

func (d *FileDevice) freeLocked(id BlockID) error {
	if id <= 0 || int(id) >= len(d.live) {
		return fmt.Errorf("%w: %d", ErrBadBlock, id)
	}
	if !d.live[id] {
		return fmt.Errorf("%w: %d", ErrFreedTwice, id)
	}
	d.live[id] = false
	d.free = append(d.free, id)
	d.frees.Add(1)
	d.liveCount.Add(-1)
	return nil
}

// Read copies page id into buf and counts one I/O. The content is verified
// against the page's stored CRC32C: a mismatch (bit flip, torn write on
// media) surfaces as a typed ErrCorrupt instead of a silently wrong answer.
func (d *FileDevice) Read(id BlockID, buf []byte) error {
	if err := d.Check(id); err != nil {
		return err
	}
	if len(buf) != d.pageSize {
		return ErrPageSize
	}
	d.reads.Add(1)
	if err := d.fread(buf, d.dataOff(id)); err != nil {
		return err
	}
	if stored := d.storedCRC(id); stored != 0 {
		if computed := crc32.Checksum(buf, crcTable); computed != stored {
			return ErrCorrupt{Path: d.path, Page: id, Stored: stored, Computed: computed}
		}
	}
	return nil
}

// View returns a read-only view of page id, counting one I/O like Read.
// Unlike the Pager's zero-copy views, a file-backed view is a private
// buffer (a real transfer happened); Release is a no-op. Serving
// configurations layer a Pool on top, whose frames restore zero-copy hits.
func (d *FileDevice) View(id BlockID) ([]byte, error) {
	buf := make([]byte, d.pageSize)
	if err := d.Read(id, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Release is a no-op (views are private buffers).
func (d *FileDevice) Release(BlockID) {}

// Write stores buf into page id and counts one I/O, journaling the page's
// pre-image first when the last durable checkpoint still references it.
func (d *FileDevice) Write(id BlockID, buf []byte) error {
	if err := d.Check(id); err != nil {
		return err
	}
	if len(buf) != d.pageSize {
		return ErrPageSize
	}
	d.mu.Lock()
	if err := d.journalLocked(id); err != nil {
		d.mu.Unlock()
		return err
	}
	d.writes.Add(1)
	err := d.fwrite(buf, d.dataOff(id))
	if err == nil {
		err = d.setCRC(id, crc32.Checksum(buf, crcTable))
	}
	d.mu.Unlock()
	return err
}

// --- rollback journal --------------------------------------------------------

func (d *FileDevice) openJournal() error {
	jf, err := os.OpenFile(d.path+".journal", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	d.jf = jf
	return nil
}

// resetJournal truncates the journal and stamps it with the current
// generation (the seq of the checkpoint its future records will protect).
func (d *FileDevice) resetJournal() error {
	if err := d.jf.Truncate(0); err != nil {
		return err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], jMagic)
	binary.LittleEndian.PutUint64(hdr[8:], d.seq)
	if _, err := d.jf.WriteAt(hdr[:], 0); err != nil {
		return err
	}
	d.journaled = make(map[BlockID]bool)
	if d.fsync != FsyncNever {
		d.syncs.Add(1)
		return d.jf.Sync()
	}
	return nil
}

// journalLocked appends page id's pre-image to the journal if the last
// durable checkpoint references it and it has not been journaled this
// generation. Called with d.mu held.
func (d *FileDevice) journalLocked(id BlockID) error {
	if d.journaled[id] || int(id) >= len(d.protected) || !d.protected[id] {
		return nil
	}
	pre := make([]byte, d.pageSize)
	if err := d.fread(pre, d.dataOff(id)); err != nil {
		return err
	}
	rec := make([]byte, 16+d.pageSize)
	binary.LittleEndian.PutUint32(rec[0:], jRecMagic)
	binary.LittleEndian.PutUint64(rec[4:], uint64(id))
	binary.LittleEndian.PutUint32(rec[12:], crc32.Checksum(pre, crcTable))
	copy(rec[16:], pre)
	end, err := d.jf.Seek(0, io.SeekEnd)
	if err != nil {
		return err
	}
	// The journal append spends the same fault budget as any other file
	// write: a crash can land between the append and the overwrite.
	if err := d.spendWriteBudget(); err != nil {
		d.tornWrite(d.jf, rec, end)
		return err
	}
	if _, err := d.jf.WriteAt(rec, end); err != nil {
		return err
	}
	d.jAppends.Add(1)
	if d.fsync == FsyncAlways {
		d.syncs.Add(1)
		if err := d.jf.Sync(); err != nil {
			return err
		}
	}
	d.journaled[id] = true
	return nil
}

// rollback replays the journal if it protects generation gen: every valid
// record's pre-image is written back, restoring the checkpointed content of
// protected pages; the torn tail (if any) is discarded — safe because a
// record is durable before its in-place overwrite.
func (d *FileDevice) rollback(gen uint64) error {
	var hdr [16]byte
	n, err := d.jf.ReadAt(hdr[:], 0)
	if err == io.EOF && n < len(hdr) {
		return nil // empty or torn header: nothing was journaled
	}
	if err != nil && err != io.EOF {
		return err
	}
	if binary.LittleEndian.Uint64(hdr[0:]) != jMagic {
		return nil
	}
	if binary.LittleEndian.Uint64(hdr[8:]) != gen {
		return nil // stale journal from another generation
	}
	rec := make([]byte, 16+d.pageSize)
	off := int64(16)
	for {
		n, err := d.jf.ReadAt(rec, off)
		if n < len(rec) {
			return nil // torn tail: its overwrite never happened
		}
		if err != nil && err != io.EOF {
			return err
		}
		if binary.LittleEndian.Uint32(rec[0:]) != jRecMagic {
			return nil
		}
		id := BlockID(binary.LittleEndian.Uint64(rec[4:]))
		if crc32.Checksum(rec[16:], crcTable) != binary.LittleEndian.Uint32(rec[12:]) {
			return nil
		}
		if id <= 0 {
			return nil
		}
		if err := d.fwrite(rec[16:], d.dataOff(id)); err != nil {
			return err
		}
		// Restore the sidecar entry alongside the pre-image: the record's
		// validation CRC IS the pre-image's content CRC.
		if err := d.writeCRCEntry(id, binary.LittleEndian.Uint32(rec[12:])); err != nil {
			return err
		}
		off += int64(len(rec))
	}
}

// snapshotProtected records the current live set as the journal filter:
// these are the pages the newly durable checkpoint references.
func (d *FileDevice) snapshotProtected() {
	d.protected = append(d.protected[:0], d.live...)
}

// --- superblock slots --------------------------------------------------------

// Slot page layout:
//
//	 0  magic      u64
//	 8  seq        u64
//	16  head       u64  blob chain head BlockID; 0 = content inlined
//	24  contentLen u64  total content length in bytes
//	32  contentCRC u32  crc32c over the full content
//	36  slotCRC    u32  crc32c over the whole slot page with this field zeroed
//	40  inline content (head == 0 only)
const slotHeader = 40

type slotInfo struct {
	seq        uint64
	head       BlockID
	contentLen int
	contentCRC uint32
	inline     []byte // content when head == 0 (already CRC-validated)
}

// writeSlot writes superblock slot (seq%2): content inlined when head is
// nil, otherwise a reference to the already-written blob chain.
func (d *FileDevice) writeSlot(seq uint64, head BlockID, contentLen int, contentCRC uint32, inline []byte) error {
	buf := make([]byte, d.pageSize)
	binary.LittleEndian.PutUint64(buf[0:], sbMagic)
	binary.LittleEndian.PutUint64(buf[8:], seq)
	binary.LittleEndian.PutUint64(buf[16:], uint64(head))
	binary.LittleEndian.PutUint64(buf[24:], uint64(contentLen))
	binary.LittleEndian.PutUint32(buf[32:], contentCRC)
	if head == NilBlock {
		if slotHeader+len(inline) > d.pageSize {
			return fmt.Errorf("disk: inline checkpoint content %d bytes exceeds page", len(inline))
		}
		copy(buf[slotHeader:], inline)
	}
	binary.LittleEndian.PutUint32(buf[36:], crc32.Checksum(buf, crcTable))
	return d.fwrite(buf, d.slotOff(int(seq%2)))
}

// readSlot reads and validates superblock slot i; ok is false for a slot
// that was never written or was torn mid-write.
func (d *FileDevice) readSlot(i int) (slotInfo, bool) {
	buf := make([]byte, d.pageSize)
	if err := d.fread(buf, d.slotOff(i)); err != nil {
		return slotInfo{}, false
	}
	if binary.LittleEndian.Uint64(buf[0:]) != sbMagic {
		return slotInfo{}, false
	}
	want := binary.LittleEndian.Uint32(buf[36:])
	binary.LittleEndian.PutUint32(buf[36:], 0)
	if crc32.Checksum(buf, crcTable) != want {
		return slotInfo{}, false
	}
	sb := slotInfo{
		seq:        binary.LittleEndian.Uint64(buf[8:]),
		head:       BlockID(binary.LittleEndian.Uint64(buf[16:])),
		contentLen: int(binary.LittleEndian.Uint64(buf[24:])),
		contentCRC: binary.LittleEndian.Uint32(buf[32:]),
	}
	if sb.contentLen < 0 || sb.contentLen > maxCkptContent {
		return slotInfo{}, false
	}
	if sb.head == NilBlock {
		if slotHeader+sb.contentLen > d.pageSize {
			return slotInfo{}, false
		}
		inline := buf[slotHeader : slotHeader+sb.contentLen]
		if crc32.Checksum(inline, crcTable) != sb.contentCRC {
			return slotInfo{}, false
		}
		sb.inline = inline
	}
	return sb, true
}

// readSlotContent returns the checkpoint content a validated slot refers
// to, along with the blob chain page ids (nil for inline content). Chain
// pages are read with raw file reads: allocation state is not rebuilt yet
// when recovery calls this.
func (d *FileDevice) readSlotContent(sb slotInfo) (content []byte, chain []BlockID, err error) {
	if sb.head == NilBlock {
		return sb.inline, nil, nil
	}
	content = make([]byte, 0, sb.contentLen)
	maxPages := sb.contentLen/(d.pageSize-blobPageHeader) + 2
	page := make([]byte, d.pageSize)
	for id := sb.head; id != NilBlock; {
		if len(chain) > maxPages {
			return nil, nil, fmt.Errorf("%w: checkpoint blob chain cycle", ErrCorruptDevice)
		}
		chain = append(chain, id)
		if err := d.fread(page, d.dataOff(id)); err != nil {
			return nil, nil, err
		}
		next := BlockID(binary.LittleEndian.Uint64(page[0:]))
		dataLen := int(binary.LittleEndian.Uint32(page[8:]))
		if dataLen < 0 || blobPageHeader+dataLen > d.pageSize {
			return nil, nil, fmt.Errorf("%w: checkpoint blob page %d", ErrCorruptDevice, id)
		}
		content = append(content, page[blobPageHeader:blobPageHeader+dataLen]...)
		id = next
	}
	if len(content) != sb.contentLen {
		return nil, nil, fmt.Errorf("%w: checkpoint blob length %d, superblock says %d",
			ErrCorruptDevice, len(content), sb.contentLen)
	}
	if crc32.Checksum(content, crcTable) != sb.contentCRC {
		return nil, nil, fmt.Errorf("%w: checkpoint blob checksum", ErrCorruptDevice)
	}
	return content, chain, nil
}

// --- checkpointing -----------------------------------------------------------

// PrepareCheckpoint writes a new checkpoint — the device's allocation state
// plus the caller's opaque payload — as generation seq (which must be
// Seq()+1), leaving both the previous and the new checkpoint durable on
// disk. Nothing is committed yet: a crash before CommitCheckpoint (or the
// caller's own commit record) recovers the previous generation. A failed
// Prepare rolls its own allocations back before returning, so the device
// stays at the previous generation and a later Prepare may be retried —
// the contract multi-device checkpoints rely on when one device of a group
// fails mid-prepare and the others must be unwound.
func (d *FileDevice) PrepareCheckpoint(seq uint64, payload []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.pending != nil {
		return fmt.Errorf("disk: PrepareCheckpoint with an uncommitted checkpoint pending")
	}
	if seq != d.seq+1 {
		return fmt.Errorf("disk: PrepareCheckpoint seq %d, want %d", seq, d.seq+1)
	}
	oldBlob := d.ckptBlob

	// The serialized free list must reflect the post-commit state: the
	// current free pages plus the previous checkpoint's blob chain (freed
	// at commit), minus whatever the new blob chain allocates below.
	contentSize := func() int { return 16 + 8*(len(d.free)+len(oldBlob)) + len(payload) }

	var chain []BlockID
	// fail unwinds the blob-chain pages this call allocated. Their content
	// is garbage but unreferenced (the superblock slot was never validly
	// flipped, or if it was, the commit point is elsewhere), so returning
	// them to the free list restores the exact pre-call allocation state.
	// The prepared slot is invalidated best-effort so a non-TrustSeq open
	// cannot adopt a generation whose chain pages were just recycled.
	fail := func(err error) error {
		d.invalidateSlotLocked(seq)
		for _, id := range chain {
			if ferr := d.freeLocked(id); ferr != nil {
				return fmt.Errorf("disk: unwinding failed prepare: %v (original: %w)", ferr, err)
			}
		}
		return err
	}
	if slotHeader+contentSize() > d.pageSize {
		capacity := 0
		for capacity < contentSize() {
			id, err := d.allocPageLocked()
			if err != nil {
				return fail(err)
			}
			chain = append(chain, id)
			capacity += d.pageSize - blobPageHeader
		}
	}

	content := make([]byte, 0, contentSize())
	var scratch [8]byte
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		content = append(content, scratch[:]...)
	}
	put64(uint64(len(d.live) - 1)) // nPages
	put64(uint64(len(d.free) + len(oldBlob)))
	for _, id := range d.free {
		put64(uint64(id))
	}
	for _, id := range oldBlob {
		put64(uint64(id))
	}
	content = append(content, payload...)
	crc := crc32.Checksum(content, crcTable)

	if len(chain) > 0 {
		per := d.pageSize - blobPageHeader
		page := make([]byte, d.pageSize)
		for i, id := range chain {
			lo := i * per
			hi := lo + per
			if lo > len(content) {
				lo = len(content)
			}
			if hi > len(content) {
				hi = len(content)
			}
			for j := range page {
				page[j] = 0
			}
			next := NilBlock
			if i+1 < len(chain) {
				next = chain[i+1]
			}
			binary.LittleEndian.PutUint64(page[0:], uint64(next))
			binary.LittleEndian.PutUint32(page[8:], uint32(hi-lo))
			copy(page[blobPageHeader:], content[lo:hi])
			if err := d.journalLocked(id); err != nil {
				return fail(err)
			}
			d.writes.Add(1)
			if err := d.fwrite(page, d.dataOff(id)); err != nil {
				return fail(err)
			}
			if err := d.setCRC(id, crc32.Checksum(page, crcTable)); err != nil {
				return fail(err)
			}
		}
		if err := d.sync(); err != nil {
			return fail(err)
		}
		if err := d.writeSlot(seq, chain[0], len(content), crc, nil); err != nil {
			return fail(err)
		}
	} else {
		if err := d.sync(); err != nil {
			return fail(err)
		}
		if err := d.writeSlot(seq, NilBlock, len(content), crc, content); err != nil {
			return fail(err)
		}
	}
	if err := d.sync(); err != nil {
		return fail(err)
	}
	d.pending = &pendingCkpt{seq: seq, newBlob: chain, oldBlob: oldBlob, oldPayload: d.payload}
	d.payload = append([]byte(nil), payload...)
	return nil
}

// CommitCheckpoint makes the prepared checkpoint the device's durable
// generation: the previous checkpoint's blob pages are freed, the rollback
// journal restarts, and subsequent writes journal pre-images of the pages
// the new checkpoint references.
func (d *FileDevice) CommitCheckpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	p := d.pending
	if p == nil {
		return fmt.Errorf("disk: CommitCheckpoint without PrepareCheckpoint")
	}
	d.pending = nil
	d.seq = p.seq
	d.ckptBlob = p.newBlob
	for _, id := range p.oldBlob {
		if err := d.freeLocked(id); err != nil {
			return err
		}
	}
	d.snapshotProtected()
	return d.resetJournal()
}

// RollbackCheckpoint abandons a prepared (uncommitted) checkpoint,
// restoring the device to exactly its pre-prepare state: the previous
// payload is the current payload again, the new blob chain's pages return
// to the free list, and the prepared superblock slot is invalidated
// best-effort (the committed generation lives in the other slot, and all
// manager open paths pass a trusted seq, so even a surviving stale slot is
// never adopted). Multi-device checkpoints call this on every successfully
// prepared device when a later device's prepare — or the manifest write —
// fails, leaving the whole group retryable in process.
func (d *FileDevice) RollbackCheckpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	p := d.pending
	if p == nil {
		return fmt.Errorf("disk: RollbackCheckpoint without PrepareCheckpoint")
	}
	d.pending = nil
	d.payload = p.oldPayload
	d.invalidateSlotLocked(p.seq)
	for _, id := range p.newBlob {
		if err := d.freeLocked(id); err != nil {
			return err
		}
	}
	return nil
}

// invalidateSlotLocked best-effort clears the superblock slot generation
// seq occupies so scan-based recovery cannot pick up an abandoned prepare.
// Errors (including an exhausted fault-injection write budget) are ignored:
// the write is purely defensive, never load-bearing for correctness of the
// trusted-seq open paths.
func (d *FileDevice) invalidateSlotLocked(seq uint64) {
	zero := make([]byte, d.pageSize)
	_ = d.fwrite(zero, d.slotOff(int(seq%2)))
	_ = d.sync()
}

// Checkpoint prepares and commits in one step — the single-device protocol
// (the superblock flip itself is the commit point).
func (d *FileDevice) Checkpoint(payload []byte) error {
	if err := d.PrepareCheckpoint(d.Seq()+1, payload); err != nil {
		return err
	}
	return d.CommitCheckpoint()
}

// HasCheckpoint reports whether the device holds a structure payload (a
// freshly created device holds only the empty generation-0 checkpoint).
func (d *FileDevice) HasCheckpoint() bool { return len(d.payload) > 0 }

// ReadCheckpoint returns a copy of the structure payload of the checkpoint
// the device was opened at (or last wrote).
func (d *FileDevice) ReadCheckpoint() []byte { return append([]byte(nil), d.payload...) }

// --- fault injection ---------------------------------------------------------

// FailAfterWrites arms fault injection: the next n file-level write
// operations (data pages, journal appends, superblock flips and allocation
// zeroing alike) succeed and every later one fails with ErrInjectedFault —
// the "crash after the k-th write" boundary the recovery suite sweeps.
// Negative n disarms.
func (d *FileDevice) FailAfterWrites(n int64) {
	if n < 0 {
		d.budget.Store(nil)
		return
	}
	d.budget.Store(NewWriteBudget(n))
}

// SetWriteBudget shares a fault-injection budget with other devices (nil
// disarms): a multi-device crash sweep arms ONE budget so the k-th write
// boundary is global across all files of a manager.
func (d *FileDevice) SetWriteBudget(b *WriteBudget) { d.budget.Store(b) }

// FileWrites returns the total number of file-level write operations the
// device has issued, the coordinate system of FailAfterWrites.
func (d *FileDevice) FileWrites() int64 { return d.fwrites.Load() }

// Close closes the page file and the journal. It does not checkpoint: the
// whole point of recovery testing is that closing without one loses exactly
// the un-checkpointed tail.
func (d *FileDevice) Close() error {
	err := d.f.Close()
	if d.jf != nil {
		if jerr := d.jf.Close(); err == nil {
			err = jerr
		}
	}
	if d.cf != nil {
		if cerr := d.cf.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

var _ Store = (*FileDevice)(nil)
