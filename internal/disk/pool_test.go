package disk

import (
	"fmt"
	"sync"
	"testing"
)

// fillPage allocates a page on p and writes a recognizable pattern.
func fillPage(t *testing.T, p *Pager, tag byte) BlockID {
	t.Helper()
	id := p.Alloc()
	buf := make([]byte, p.PageSize())
	for i := range buf {
		buf[i] = tag
	}
	p.MustWrite(id, buf)
	return id
}

func TestPoolHitAvoidsDeviceIO(t *testing.T) {
	p := NewPager(16)
	id := fillPage(t, p, 7)
	base := p.Stats()

	pl := NewPool(p, 4, 1)
	for i := 0; i < 3; i++ {
		v, err := pl.View(id)
		if err != nil {
			t.Fatal(err)
		}
		if v[0] != 7 {
			t.Fatalf("view returned %d, want 7", v[0])
		}
		pl.Release(id)
	}
	if got := p.Stats().Sub(base).Reads; got != 1 {
		t.Fatalf("device reads = %d, want 1 (hits must not reach the device)", got)
	}
	if pl.Hits() != 2 || pl.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 2/1", pl.Hits(), pl.Misses())
	}
	if pl.PinnedFrames() != 0 {
		t.Fatalf("pins leaked: %d frames still pinned", pl.PinnedFrames())
	}
}

func TestPoolEvictionUnderPinRefusal(t *testing.T) {
	p := NewPager(16)
	a := fillPage(t, p, 1)
	b := fillPage(t, p, 2)
	c := fillPage(t, p, 3)

	// One lock shard, two frames: pin both, then demand a third page.
	// The pool must refuse to evict either pinned frame — it grows a
	// temporary overflow frame instead — and both borrowed views must
	// stay intact.
	pl := NewPool(p, 2, 1)
	va, err := pl.View(a)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := pl.View(b)
	if err != nil {
		t.Fatal(err)
	}
	vc, err := pl.View(c)
	if err != nil {
		t.Fatalf("View with all frames pinned must overflow, not fail: %v", err)
	}
	if va[0] != 1 || vb[0] != 2 || vc[0] != 3 {
		t.Fatalf("views corrupted under pin pressure: %d %d %d", va[0], vb[0], vc[0])
	}
	if pl.Overflows() != 1 {
		t.Fatalf("overflows = %d, want 1", pl.Overflows())
	}
	if pl.PinCount(a) != 1 || pl.PinCount(b) != 1 {
		t.Fatalf("pinned frames disturbed: pins a=%d b=%d", pl.PinCount(a), pl.PinCount(b))
	}
	pl.Release(a)
	pl.Release(b)
	pl.Release(c)
	if pl.PinnedFrames() != 0 {
		t.Fatalf("pins leaked: %d", pl.PinnedFrames())
	}
	// Once pins drain, further misses recycle the existing (now
	// over-budget) frames instead of growing again.
	d := fillPage(t, p, 4)
	e := fillPage(t, p, 5)
	for _, id := range []BlockID{d, e} {
		v, err := pl.View(id)
		if err != nil {
			t.Fatal(err)
		}
		_ = v
		pl.Release(id)
	}
	if pl.Overflows() != 1 {
		t.Fatalf("overflows grew after pins drained: %d", pl.Overflows())
	}
	if got := pl.Resident(); got > 3 {
		t.Fatalf("resident pages = %d, want <= 3 (capacity 2 + 1 overflow)", got)
	}
}

func TestPoolWriteBackOrdering(t *testing.T) {
	p := NewPager(16)
	a := fillPage(t, p, 1)
	b := fillPage(t, p, 2)
	c := fillPage(t, p, 3)

	pl := NewPool(p, 2, 1)
	dirty := make([]byte, 16)
	dirty[0] = 9
	if err := pl.Write(a, dirty); err != nil {
		t.Fatal(err)
	}
	// Write-back is deferred: the device still holds the old contents.
	raw := make([]byte, 16)
	p.MustRead(a, raw)
	if raw[0] != 1 {
		t.Fatalf("device page mutated before eviction: %d", raw[0])
	}
	// Fill the pool so a's frame is the eviction victim; the dirty data
	// must reach the device before the frame is recycled.
	for _, id := range []BlockID{b, c} {
		if _, err := pl.View(id); err != nil {
			t.Fatal(err)
		}
		pl.Release(id)
	}
	p.MustRead(a, raw)
	if raw[0] != 9 {
		t.Fatalf("evicted dirty page not written back: %d", raw[0])
	}
	// A re-View after write-back must see the written data, via a fresh
	// device read (the old frame is gone).
	v, err := pl.View(a)
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 9 {
		t.Fatalf("re-view after write-back returned %d, want 9", v[0])
	}
	pl.Release(a)
}

func TestPoolFlushWritesAllDirty(t *testing.T) {
	p := NewPager(16)
	ids := []BlockID{fillPage(t, p, 1), fillPage(t, p, 2), fillPage(t, p, 3)}
	pl := NewPool(p, 8, 2)
	for i, id := range ids {
		buf := make([]byte, 16)
		buf[0] = byte(0x40 + i)
		if err := pl.Write(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	base := p.Stats()
	if err := pl.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().Sub(base).Writes; got != 3 {
		t.Fatalf("flush wrote %d pages, want 3", got)
	}
	buf := make([]byte, 16)
	for i, id := range ids {
		p.MustRead(id, buf)
		if buf[0] != byte(0x40+i) {
			t.Fatalf("page %d not flushed: %d", id, buf[0])
		}
	}
	// A second flush is a no-op.
	base = p.Stats()
	if err := pl.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().Sub(base).Writes; got != 0 {
		t.Fatalf("idempotent flush wrote %d pages, want 0", got)
	}
}

func TestPoolPinNesting(t *testing.T) {
	p := NewPager(16)
	id := fillPage(t, p, 5)
	pl := NewPool(p, 2, 1)
	if _, err := pl.View(id); err != nil {
		t.Fatal(err)
	}
	if _, err := pl.View(id); err != nil {
		t.Fatal(err)
	}
	if got := pl.PinCount(id); got != 2 {
		t.Fatalf("pin count = %d, want 2", got)
	}
	pl.Release(id)
	if got := pl.PinCount(id); got != 1 {
		t.Fatalf("pin count = %d, want 1", got)
	}
	pl.Release(id)
	if got := pl.PinCount(id); got != 0 {
		t.Fatalf("pin count = %d, want 0", got)
	}
}

func TestPoolFreeInvalidatesFrame(t *testing.T) {
	p := NewPager(16)
	id := fillPage(t, p, 5)
	pl := NewPool(p, 4, 1)
	buf := make([]byte, 16)
	buf[0] = 0x77
	if err := pl.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := pl.Free(id); err != nil {
		t.Fatal(err)
	}
	// The freed page's id is reused by the next alloc; the pool must not
	// serve the stale dirty frame.
	id2 := pl.Alloc()
	if id2 != id {
		t.Fatalf("expected free-list reuse of %d, got %d", id, id2)
	}
	v, err := pl.View(id2)
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 0 {
		t.Fatalf("view of reallocated page returned stale data: %d", v[0])
	}
	pl.Release(id2)
}

func TestPoolReleaseUnpinnedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unbalanced Release")
		}
	}()
	p := NewPager(16)
	id := fillPage(t, p, 1)
	pl := NewPool(p, 2, 1)
	pl.Release(id)
}

// TestPoolConcurrentPinUnpin hammers a small pool from many goroutines
// (run with -race): concurrent Views of overlapping pages with nested
// pins, interleaved copy-Reads, then a final pin-balance assertion.
func TestPoolConcurrentPinUnpin(t *testing.T) {
	p := NewPager(32)
	const pages = 64
	ids := make([]BlockID, pages)
	for i := range ids {
		ids[i] = fillPage(t, p, byte(i))
	}
	pl := NewPool(p, 16, 4)

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 32)
			for i := 0; i < 2000; i++ {
				id := ids[(i*7+w*13)%pages]
				want := byte((i*7 + w*13) % pages)
				switch i % 3 {
				case 0:
					v, err := pl.View(id)
					if err != nil {
						errs <- err
						return
					}
					if v[0] != want {
						errs <- fmt.Errorf("view of page %d saw %d, want %d", id, v[0], want)
						pl.Release(id)
						return
					}
					pl.Release(id)
				case 1:
					// Nested pins on the same page.
					v1, err := pl.View(id)
					if err != nil {
						errs <- err
						return
					}
					v2, err := pl.View(id)
					if err != nil {
						pl.Release(id)
						errs <- err
						return
					}
					if v1[0] != want || v2[0] != want {
						errs <- fmt.Errorf("nested views of page %d saw %d/%d, want %d", id, v1[0], v2[0], want)
					}
					pl.Release(id)
					pl.Release(id)
				default:
					if err := pl.Read(id, buf); err != nil {
						errs <- err
						return
					}
					if buf[0] != want {
						errs <- fmt.Errorf("read of page %d saw %d, want %d", id, buf[0], want)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := pl.PinnedFrames(); got != 0 {
		t.Fatalf("pins leaked after concurrent run: %d frames still pinned", got)
	}
	if pl.Hits()+pl.Misses() == 0 {
		t.Fatal("counters recorded no traffic")
	}
}
