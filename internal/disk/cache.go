package disk

// Cache is an optional LRU page cache layered over a Pager. It models a main
// memory buffer pool: hits do not count as I/Os on the underlying device.
//
// The paper's bounds are stated without caching (every page access is an
// I/O); the cache exists for the ablation experiments that show how far a
// realistic buffer pool moves the constants without changing the asymptotic
// shape. Index structures themselves never use a Cache internally.
//
// Cache is single-threaded and copy-based. The serving layer reads through
// the concurrent, pinning, zero-copy Pool instead (pool.go); Cache remains
// as the minimal single-threaded reference implementation.
type Cache struct {
	p        *Pager
	capacity int
	entries  map[BlockID]*cacheEntry
	head     *cacheEntry // most recently used
	tail     *cacheEntry // least recently used
	hits     int64
	misses   int64
}

type cacheEntry struct {
	id         BlockID
	data       []byte
	dirty      bool
	prev, next *cacheEntry
}

// NewCache wraps p with an LRU cache holding up to capacity pages.
func NewCache(p *Pager, capacity int) *Cache {
	if capacity <= 0 {
		panic("disk: cache capacity must be positive")
	}
	return &Cache{
		p:        p,
		capacity: capacity,
		entries:  make(map[BlockID]*cacheEntry, capacity),
	}
}

// Hits returns the number of cache hits so far (reads and writes served
// from a resident entry).
func (c *Cache) Hits() int64 { return c.hits }

// Misses returns the number of READ misses so far — the accesses that cost
// a device read. A Write to a non-resident page is not a miss: it is a
// full-page store that allocates an entry without any device read, so
// counting it would overstate how often the cache failed to save an I/O.
func (c *Cache) Misses() int64 { return c.misses }

func (c *Cache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) pushFront(e *cacheEntry) {
	e.next = c.head
	e.prev = nil
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) touch(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *Cache) evictIfFull() error {
	if len(c.entries) < c.capacity {
		return nil
	}
	victim := c.tail
	if victim == nil {
		return nil
	}
	if victim.dirty {
		if err := c.p.Write(victim.id, victim.data); err != nil {
			return err
		}
	}
	c.unlink(victim)
	delete(c.entries, victim.id)
	return nil
}

// Read returns page id through the cache.
func (c *Cache) Read(id BlockID, buf []byte) error {
	if e, ok := c.entries[id]; ok {
		c.hits++
		c.touch(e)
		copy(buf, e.data)
		return nil
	}
	c.misses++
	if err := c.evictIfFull(); err != nil {
		return err
	}
	data := make([]byte, c.p.PageSize())
	if err := c.p.Read(id, data); err != nil {
		return err
	}
	e := &cacheEntry{id: id, data: data}
	c.entries[id] = e
	c.pushFront(e)
	copy(buf, data)
	return nil
}

// Write stores page id through the cache (write-back).
func (c *Cache) Write(id BlockID, buf []byte) error {
	if e, ok := c.entries[id]; ok {
		c.hits++
		c.touch(e)
		copy(e.data, buf)
		e.dirty = true
		return nil
	}
	// A write miss is a pure store: no device read happens, so it does not
	// count toward the read-miss counter.
	if err := c.evictIfFull(); err != nil {
		return err
	}
	data := make([]byte, c.p.PageSize())
	copy(data, buf)
	e := &cacheEntry{id: id, data: data, dirty: true}
	c.entries[id] = e
	c.pushFront(e)
	return nil
}

// Flush writes all dirty pages back to the device.
func (c *Cache) Flush() error {
	for e := c.head; e != nil; e = e.next {
		if e.dirty {
			if err := c.p.Write(e.id, e.data); err != nil {
				return err
			}
			e.dirty = false
		}
	}
	return nil
}
