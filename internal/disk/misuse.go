package disk

// Concurrent-misuse detection for the Pager. The Pager's contract —
// mutations (Write, Alloc, Free) require external serialization against
// borrowed Views — was previously comment-only: a violating program
// corrupts a zero-copy view silently (or trips the race detector only if
// the racing accesses happen to overlap in time AND the test runs under
// -race). This debug mode makes the contract executable: while enabled,
// View registers the borrow (with the borrowing goroutine's stack) until
// Release, and any mutation that overlaps a borrow it could corrupt panics
// with BOTH stacks — the mutator's and the recorded borrower's.
//
// What counts as misuse:
//
//   - a mutation of page id while ANOTHER goroutine holds any outstanding
//     view (the documented contract is global: no mutation may race any
//     reader);
//   - a mutation of page id while the SAME goroutine still holds a view of
//     that page (sequential code is allowed to hold a view of page A while
//     writing page B — the Pager's views stay valid until the viewed page
//     itself is written, freed or reallocated).
//
// Enable it per test (or program) with EnableMisuseChecks; the returned
// function restores the previous state. The "ccidxdebug" build tag turns it
// on for every Pager in the binary (see misuse_tag.go).
import (
	"bytes"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// misuseArmed gates the hot paths: a single atomic load when the mode is
// off. misuseMu guards the borrow registry when it is on.
var (
	misuseArmed  atomic.Bool
	misuseMu     sync.Mutex
	misuseBorrow = map[*Pager]map[BlockID][]borrow{}
)

type borrow struct {
	gid   uint64
	stack []byte
}

// EnableMisuseChecks turns on Pager concurrent-misuse detection process-wide
// and returns a function restoring the previous setting. While enabled,
// every Pager records outstanding View borrows and panics on a mutation
// that races one (see the package comment above for the exact rule). The
// mode costs a mutex and a stack capture per View, so it is for tests and
// debugging, not serving.
func EnableMisuseChecks() (restore func()) {
	misuseMu.Lock()
	prev := misuseArmed.Load()
	misuseArmed.Store(true)
	misuseMu.Unlock()
	return func() {
		misuseMu.Lock()
		misuseArmed.Store(prev)
		if !prev {
			misuseBorrow = map[*Pager]map[BlockID][]borrow{}
		}
		misuseMu.Unlock()
	}
}

// goid returns the current goroutine's id, parsed from the runtime's stack
// header ("goroutine N [...]"). Debug-path only.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	s = bytes.TrimPrefix(s, []byte("goroutine "))
	if i := bytes.IndexByte(s, ' '); i > 0 {
		if id, err := strconv.ParseUint(string(s[:i]), 10, 64); err == nil {
			return id
		}
	}
	return 0
}

func captureStack() []byte {
	buf := make([]byte, 16<<10)
	n := runtime.Stack(buf, false)
	return buf[:n]
}

// noteView registers a borrow of page id on p. Called only when
// misuseArmed is set.
func (p *Pager) noteView(id BlockID) {
	misuseMu.Lock()
	defer misuseMu.Unlock()
	m := misuseBorrow[p]
	if m == nil {
		m = map[BlockID][]borrow{}
		misuseBorrow[p] = m
	}
	m[id] = append(m[id], borrow{gid: goid(), stack: captureStack()})
}

// noteRelease drops one borrow of page id (preferring the current
// goroutine's, so nested borrows from several goroutines unwind sanely).
func (p *Pager) noteRelease(id BlockID) {
	misuseMu.Lock()
	defer misuseMu.Unlock()
	m := misuseBorrow[p]
	bs := m[id]
	if len(bs) == 0 {
		return
	}
	g := goid()
	at := len(bs) - 1
	for i := range bs {
		if bs[i].gid == g {
			at = i
			break
		}
	}
	bs = append(bs[:at], bs[at+1:]...)
	if len(bs) == 0 {
		delete(m, id)
		if len(m) == 0 {
			delete(misuseBorrow, p)
		}
	} else {
		m[id] = bs
	}
}

// noteMutation panics if mutating page id on p races an outstanding borrow:
// any borrow from another goroutine, or a same-goroutine borrow of the page
// being mutated. op names the mutation for the report.
func (p *Pager) noteMutation(op string, id BlockID) {
	misuseMu.Lock()
	defer misuseMu.Unlock()
	m := misuseBorrow[p]
	if len(m) == 0 {
		return
	}
	g := goid()
	for vid, bs := range m {
		for _, b := range bs {
			if b.gid != g || vid == id {
				panic(fmt.Sprintf(
					"disk: %s of page %d races a borrowed View of page %d (goroutine %d)\n"+
						"--- mutator stack ---\n%s\n--- view borrower stack ---\n%s",
					op, id, vid, b.gid, captureStack(), b.stack))
			}
		}
	}
}
