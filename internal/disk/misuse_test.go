package disk

import (
	"strings"
	"sync"
	"testing"
)

// TestMisuseChecksCatchWriteRacingView proves the previously comment-only
// Pager contract is now executable: a Write issued while ANOTHER goroutine
// holds a borrowed View panics with both stacks.
func TestMisuseChecksCatchWriteRacingView(t *testing.T) {
	restore := EnableMisuseChecks()
	defer restore()

	p := NewPager(64)
	id := p.Alloc()
	buf := make([]byte, 64)
	p.MustWrite(id, buf)

	viewTaken := make(chan struct{})
	release := make(chan struct{})
	var viewDone sync.WaitGroup
	viewDone.Add(1)
	go func() {
		defer viewDone.Done()
		if _, err := p.View(id); err != nil {
			t.Error(err)
			close(viewTaken)
			return
		}
		close(viewTaken)
		<-release
		p.Release(id)
	}()
	<-viewTaken

	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("Write racing a borrowed View did not panic")
			}
			msg, ok := r.(string)
			if !ok {
				t.Fatalf("panic value %T, want string report", r)
			}
			for _, want := range []string{"races a borrowed View", "mutator stack", "view borrower stack"} {
				if !strings.Contains(msg, want) {
					t.Fatalf("panic report missing %q:\n%s", want, msg)
				}
			}
		}()
		p.MustWrite(id, buf)
	}()

	close(release)
	viewDone.Wait()

	// After the borrow is released, mutations are legal again.
	p.MustWrite(id, buf)
}

// TestMisuseChecksCatchSameGoroutineOverwrite: mutating the very page the
// SAME goroutine still has borrowed is also flagged (the view's bytes would
// change underfoot); mutating a different page is legal.
func TestMisuseChecksCatchSameGoroutineOverwrite(t *testing.T) {
	restore := EnableMisuseChecks()
	defer restore()

	p := NewPager(64)
	a, b := p.Alloc(), p.Alloc()
	buf := make([]byte, 64)
	p.MustWrite(a, buf)
	p.MustWrite(b, buf)

	if _, err := p.View(a); err != nil {
		t.Fatal(err)
	}
	// Writing another page while holding a view of a is allowed.
	p.MustWrite(b, buf)
	// Writing the viewed page is not.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Write of a same-goroutine-borrowed page did not panic")
			}
		}()
		p.MustWrite(a, buf)
	}()
	p.Release(a)
	p.MustWrite(a, buf)
}

// TestMisuseChecksFreeAndAlloc: Free of a borrowed page and Alloc racing a
// foreign borrow are caught too.
func TestMisuseChecksFreeAndAlloc(t *testing.T) {
	restore := EnableMisuseChecks()
	defer restore()

	p := NewPager(64)
	id := p.Alloc()
	buf := make([]byte, 64)
	p.MustWrite(id, buf)
	if _, err := p.View(id); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Free of a borrowed page did not panic")
			}
		}()
		p.MustFree(id)
	}()
	p.Release(id)
	if err := p.Free(id); err != nil {
		t.Fatal(err)
	}
}

// TestMisuseChecksOffByDefault: without EnableMisuseChecks the legacy
// behaviour (no tracking, no panics) is untouched.
func TestMisuseChecksOffByDefault(t *testing.T) {
	p := NewPager(64)
	id := p.Alloc()
	buf := make([]byte, 64)
	p.MustWrite(id, buf)
	if _, err := p.View(id); err != nil {
		t.Fatal(err)
	}
	p.MustWrite(id, buf) // would panic with checks on; must not here
	p.Release(id)
}

// TestMisuseChecksCleanWorkloadPasses: a disciplined View/Release workload
// (including concurrent readers) runs clean under the checks.
func TestMisuseChecksCleanWorkloadPasses(t *testing.T) {
	restore := EnableMisuseChecks()
	defer restore()

	p := NewPager(64)
	var ids []BlockID
	buf := make([]byte, 64)
	for i := 0; i < 8; i++ {
		id := p.Alloc()
		p.MustWrite(id, buf)
		ids = append(ids, id)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := ids[i%len(ids)]
				v, err := p.View(id)
				if err != nil {
					t.Error(err)
					return
				}
				_ = v[0]
				p.Release(id)
			}
		}()
	}
	wg.Wait()
	// All borrows released: mutations are legal.
	p.MustWrite(ids[0], buf)
}
