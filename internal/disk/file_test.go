package disk

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

const testPS = 128

func fill(t *testing.T, d Device, id BlockID, b byte) {
	t.Helper()
	buf := make([]byte, d.PageSize())
	for i := range buf {
		buf[i] = b
	}
	if err := d.Write(id, buf); err != nil {
		t.Fatalf("Write(%d): %v", id, err)
	}
}

func pageByte(t *testing.T, d Device, id BlockID) byte {
	t.Helper()
	buf := make([]byte, d.PageSize())
	if err := d.Read(id, buf); err != nil {
		t.Fatalf("Read(%d): %v", id, err)
	}
	for i := 1; i < len(buf); i++ {
		if buf[i] != buf[0] {
			t.Fatalf("page %d not uniform at %d: %d vs %d", id, i, buf[i], buf[0])
		}
	}
	return buf[0]
}

func TestFileDeviceBasicRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.pages")
	d, err := OpenFile(path, FileOptions{PageSize: testPS})
	if err != nil {
		t.Fatal(err)
	}
	a, b := d.Alloc(), d.Alloc()
	fill(t, d, a, 0xAA)
	fill(t, d, b, 0xBB)
	if got := pageByte(t, d, a); got != 0xAA {
		t.Fatalf("page a = %x", got)
	}
	v, err := d.View(b)
	if err != nil || v[0] != 0xBB {
		t.Fatalf("View(b) = %v, %v", v, err)
	}
	d.Release(b)
	if err := d.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := d.Free(a); !errors.Is(err, ErrFreedTwice) {
		t.Fatalf("double free: %v", err)
	}
	// Reused page must read as zeros, like the Pager.
	c := d.Alloc()
	if c != a {
		t.Fatalf("expected free-list reuse of %d, got %d", a, c)
	}
	if got := pageByte(t, d, c); got != 0 {
		t.Fatalf("reused page not zeroed: %x", got)
	}
	st := d.Stats()
	if st.Allocs != 3 || st.Frees != 1 || st.Writes != 2 {
		t.Fatalf("stats %v", st)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFileDeviceCheckpointReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.pages")
	d, err := OpenFile(path, FileOptions{PageSize: testPS})
	if err != nil {
		t.Fatal(err)
	}
	var ids []BlockID
	for i := 0; i < 10; i++ {
		id := d.Alloc()
		fill(t, d, id, byte(i+1))
		ids = append(ids, id)
	}
	d.Free(ids[3])
	payload := []byte("hello checkpoint payload")
	if err := d.Checkpoint(payload); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if !d2.HasCheckpoint() {
		t.Fatal("no checkpoint after reopen")
	}
	if got := d2.ReadCheckpoint(); !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q", got)
	}
	if d2.PageSize() != testPS {
		t.Fatalf("page size %d", d2.PageSize())
	}
	for i, id := range ids {
		if i == 3 {
			if err := d2.Check(id); err == nil {
				t.Fatal("freed page still live after reopen")
			}
			continue
		}
		if got := pageByte(t, d2, id); got != byte(i+1) {
			t.Fatalf("page %d = %x want %x", id, got, i+1)
		}
	}
	// Freed page must be reusable.
	if id := d2.Alloc(); id != ids[3] {
		t.Fatalf("expected reuse of %d, got %d", ids[3], id)
	}
}

// TestFileDeviceAllocatedSurvivesReopen: Allocated() reflects the live set
// (not session counters), so space accounting stays correct after reopening
// a device that already holds checkpointed pages — and after ResetStats.
func TestFileDeviceAllocatedSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.pages")
	d, err := OpenFile(path, FileOptions{PageSize: testPS})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		fill(t, d, d.Alloc(), byte(i+1))
	}
	d.Free(3)
	if got := d.Allocated(); got != 6 {
		t.Fatalf("Allocated = %d, want 6", got)
	}
	d.ResetStats()
	if got := d.Allocated(); got != 6 {
		t.Fatalf("Allocated after ResetStats = %d, want 6", got)
	}
	if err := d.Checkpoint([]byte("x")); err != nil {
		t.Fatal(err)
	}
	d.Close()

	d2, err := OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := d2.Allocated(); got != 6 {
		t.Fatalf("Allocated after reopen = %d, want 6", got)
	}
	if err := d2.Free(5); err != nil {
		t.Fatal(err)
	}
	if got := d2.Allocated(); got != 5 {
		t.Fatalf("Allocated after reopen+free = %d, want 5", got)
	}
}

// TestFileDeviceMustCreateRefusesExisting: creating a fresh structure over
// an existing device must fail loudly instead of silently recovering the
// old pages and leaking them under the new tree.
func TestFileDeviceMustCreateRefusesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.pages")
	d, err := OpenFile(path, FileOptions{PageSize: testPS, MustCreate: true})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, d, d.Alloc(), 1)
	d.Close()
	if _, err := OpenFile(path, FileOptions{PageSize: testPS, MustCreate: true}); err == nil {
		t.Fatal("MustCreate over an existing device did not error")
	}
	d2, err := OpenFile(path, FileOptions{}) // plain open still works
	if err != nil {
		t.Fatal(err)
	}
	d2.Close()
}

// TestFileDeviceLargeCheckpointBlob pushes the content over the inline
// limit so the blob-chain path is exercised, twice (the second checkpoint
// must free and reuse the first chain's pages without corrupting anything).
func TestFileDeviceLargeCheckpointBlob(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.pages")
	d, err := OpenFile(path, FileOptions{PageSize: testPS})
	if err != nil {
		t.Fatal(err)
	}
	var ids []BlockID
	for i := 0; i < 50; i++ {
		id := d.Alloc()
		fill(t, d, id, byte(i%250+1))
		ids = append(ids, id)
	}
	payload := make([]byte, 10*testPS)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	for gen := 0; gen < 3; gen++ {
		if err := d.Checkpoint(payload); err != nil {
			t.Fatalf("checkpoint %d: %v", gen, err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := d2.ReadCheckpoint(); !bytes.Equal(got, payload) {
		t.Fatal("large payload mismatch")
	}
	for i, id := range ids {
		if got := pageByte(t, d2, id); got != byte(i%250+1) {
			t.Fatalf("page %d = %x", id, got)
		}
	}
}

// TestFileDeviceJournalRollback overwrites and frees checkpointed pages,
// then reopens WITHOUT checkpointing: the journal must restore the
// checkpointed contents and the free list must revert.
func TestFileDeviceJournalRollback(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.pages")
	d, err := OpenFile(path, FileOptions{PageSize: testPS})
	if err != nil {
		t.Fatal(err)
	}
	a, b := d.Alloc(), d.Alloc()
	fill(t, d, a, 1)
	fill(t, d, b, 2)
	if err := d.Checkpoint([]byte("gen1")); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint chaos: overwrite a, free b, alloc+write new pages
	// (one of which reuses b).
	fill(t, d, a, 0xEE)
	d.Free(b)
	c := d.Alloc() // reuses b
	fill(t, d, c, 0xCC)
	dd := d.Alloc()
	fill(t, d, dd, 0xDD)
	d.Close()

	d2, err := OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := d2.ReadCheckpoint(); string(got) != "gen1" {
		t.Fatalf("payload %q", got)
	}
	if got := pageByte(t, d2, a); got != 1 {
		t.Fatalf("page a rolled back to %x, want 1", got)
	}
	if got := pageByte(t, d2, b); got != 2 {
		t.Fatalf("page b rolled back to %x, want 2", got)
	}
	if err := d2.Check(dd); err == nil {
		t.Fatal("post-checkpoint page survived reopen")
	}
}

// devOracle drives a deterministic page workload against a FileDevice and
// records, at each checkpoint, the full expected page image.
type devState struct {
	pages map[BlockID]byte
	free  []BlockID
}

// TestFileDeviceCrashEveryWrite runs a fixed-seed workload of
// alloc/write/free/checkpoint, arming the write-fault at every possible
// boundary, and verifies that reopening always exposes exactly the last
// committed checkpoint's state.
func TestFileDeviceCrashEveryWrite(t *testing.T) {
	// First pass: count total file writes with no fault.
	total := runDevWorkload(t, filepath.Join(t.TempDir(), "probe.pages"), -1, nil)
	if total < 40 {
		t.Fatalf("workload too small to be interesting: %d writes", total)
	}
	step := int64(1)
	if testing.Short() && total > 60 {
		step = total / 60
	}
	for k := int64(0); k <= total; k += step {
		k := k
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "dev.pages")
			var committed *devState
			runDevWorkload(t, path, k, &committed)
			d, err := OpenFile(path, FileOptions{})
			if err != nil {
				t.Fatalf("reopen after crash at write %d: %v", k, err)
			}
			defer d.Close()
			if committed == nil {
				// Crash before the first commit: device must be empty.
				if d.HasCheckpoint() {
					t.Fatal("checkpoint visible before any commit")
				}
				return
			}
			for id, want := range committed.pages {
				if got := pageByte(t, d, id); got != want {
					t.Fatalf("crash at write %d: page %d = %x want %x", k, id, got, want)
				}
			}
			for _, id := range committed.free {
				if err := d.Check(id); err == nil {
					t.Fatalf("crash at write %d: freed page %d live", k, id)
				}
			}
		})
	}
}

// runDevWorkload replays the fixed-seed device workload with the fault
// armed after k file writes (-1 = unfaulted), returning the total file
// writes issued. committed, when non-nil, receives the device state at the
// last checkpoint whose COMMIT completed before the fault tripped.
func runDevWorkload(t *testing.T, path string, k int64, committed **devState) int64 {
	t.Helper()
	d, err := OpenFile(path, FileOptions{PageSize: testPS})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.FailAfterWrites(k)

	rng := rand.New(rand.NewSource(42))
	state := &devState{pages: map[BlockID]byte{}}
	var live []BlockID
	crashed := false
	step := func(fn func() error) bool {
		if err := fn(); err != nil {
			if errors.Is(err, ErrInjectedFault) {
				crashed = true
				return false
			}
			t.Fatal(err)
		}
		return true
	}
	for op := 0; op < 120 && !crashed; op++ {
		switch r := rng.Intn(10); {
		case r < 4 || len(live) == 0: // alloc+write
			func() {
				defer func() {
					if p := recover(); p != nil {
						crashed = true // Alloc zeroing faulted
					}
				}()
				id := d.Alloc()
				b := byte(rng.Intn(250) + 1)
				if step(func() error { return d.Write(id, uniform(testPS, b)) }) {
					state.pages[id] = b
					live = append(live, id)
					for i, f := range state.free { // id may be a free-list reuse
						if f == id {
							state.free = append(state.free[:i], state.free[i+1:]...)
							break
						}
					}
				}
			}()
		case r < 7: // overwrite
			i := rng.Intn(len(live))
			b := byte(rng.Intn(250) + 1)
			if step(func() error { return d.Write(live[i], uniform(testPS, b)) }) {
				state.pages[live[i]] = b
			}
		case r < 8: // free
			i := rng.Intn(len(live))
			id := live[i]
			if step(func() error { return d.Free(id) }) {
				live = append(live[:i], live[i+1:]...)
				delete(state.pages, id)
				state.free = append(state.free, id)
			}
		default: // checkpoint every so often
			if op%3 != 0 {
				continue
			}
			if !step(func() error { return d.PrepareCheckpoint(d.Seq()+1, []byte("p")) }) {
				break
			}
			if step(func() error { return d.CommitCheckpoint() }) && committed != nil {
				snap := &devState{pages: map[BlockID]byte{}}
				for id, b := range state.pages {
					snap.pages[id] = b
				}
				snap.free = append([]BlockID(nil), state.free...)
				*committed = snap
			}
		}
	}
	return d.FileWrites()
}

func uniform(n int, b byte) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = b
	}
	return buf
}

// TestFileDeviceRollbackCheckpoint: a prepared-but-abandoned generation
// must leave the device at exactly its previous one — payload, seq and
// allocation state restored — and the same generation must be preparable
// and committable afterwards.
func TestFileDeviceRollbackCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.pages")
	d, err := OpenFile(path, FileOptions{PageSize: testPS})
	if err != nil {
		t.Fatal(err)
	}
	var ids []BlockID
	for i := 0; i < 6; i++ {
		id := d.Alloc()
		fill(t, d, id, byte(i+1))
		ids = append(ids, id)
	}
	d.Free(ids[2])
	p1 := []byte("generation one")
	if err := d.Checkpoint(p1); err != nil {
		t.Fatal(err)
	}
	allocBefore := d.Allocated()

	// A payload larger than a page forces a blob chain, so the rollback
	// exercises chain-page freeing, not just the inline slot.
	big := bytes.Repeat([]byte{0x5A}, 3*testPS)
	if err := d.PrepareCheckpoint(d.Seq()+1, big); err != nil {
		t.Fatal(err)
	}
	if got := d.ReadCheckpoint(); !bytes.Equal(got, big) {
		t.Fatalf("pending payload = %d bytes, want the prepared one", len(got))
	}
	if err := d.RollbackCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.RollbackCheckpoint(); err == nil {
		t.Fatal("second RollbackCheckpoint succeeded with nothing pending")
	}
	if got := d.ReadCheckpoint(); !bytes.Equal(got, p1) {
		t.Fatalf("payload after rollback = %q, want %q", got, p1)
	}
	if d.Seq() != 1 {
		t.Fatalf("seq after rollback = %d, want 1", d.Seq())
	}
	if got := d.Allocated(); got != allocBefore {
		t.Fatalf("allocated after rollback = %d, want %d", got, allocBefore)
	}
	for i, id := range ids {
		if i == 2 {
			continue
		}
		if got := pageByte(t, d, id); got != byte(i+1) {
			t.Fatalf("page %d = %x after rollback, want %x", id, got, i+1)
		}
	}

	// The same generation prepares and commits cleanly after the rollback.
	if err := d.Checkpoint(big); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Seq() != 2 {
		t.Fatalf("reopened at seq %d, want 2", d2.Seq())
	}
	if got := d2.ReadCheckpoint(); !bytes.Equal(got, big) {
		t.Fatalf("reopened payload = %d bytes, want the blob payload", len(got))
	}
}

// TestFileDevicePrepareFaultRetry sweeps an injected fault across every
// write boundary of PrepareCheckpoint and asserts the error (not crash)
// contract: a failed prepare rolls its own allocations back, the device
// still reads the previous generation, and the SAME prepare retried with
// a bigger budget succeeds in process — no reopen.
func TestFileDevicePrepareFaultRetry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.pages")
	d, err := OpenFile(path, FileOptions{PageSize: testPS})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var ids []BlockID
	for i := 0; i < 8; i++ {
		id := d.Alloc()
		fill(t, d, id, byte(i+1))
		ids = append(ids, id)
	}
	// Free some pages so the blob chain allocates via free-list reuse (the
	// path whose failure must restore the free list).
	d.Free(ids[1])
	d.Free(ids[4])
	p1 := []byte("committed")
	if err := d.Checkpoint(p1); err != nil {
		t.Fatal(err)
	}
	allocBefore := d.Allocated()
	big := bytes.Repeat([]byte{0x77}, 3*testPS)

	faults := 0
	for k := int64(0); ; k++ {
		if k > 10_000 {
			t.Fatal("prepare never succeeded")
		}
		d.FailAfterWrites(k)
		err := d.PrepareCheckpoint(d.Seq()+1, big)
		if err == nil {
			break
		}
		faults++
		if !errors.Is(err, ErrInjectedFault) {
			t.Fatalf("k=%d: %v", k, err)
		}
		if got := d.Allocated(); got != allocBefore {
			t.Fatalf("k=%d: allocated %d after failed prepare, want %d", k, got, allocBefore)
		}
		if got := d.ReadCheckpoint(); !bytes.Equal(got, p1) {
			t.Fatalf("k=%d: payload drifted after failed prepare", k)
		}
		if d.Seq() != 1 {
			t.Fatalf("k=%d: seq %d after failed prepare", k, d.Seq())
		}
	}
	d.FailAfterWrites(-1)
	if faults == 0 {
		t.Fatal("fault injection never fired")
	}
	if err := d.CommitCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if d.Seq() != 2 {
		t.Fatalf("seq after retried commit = %d, want 2", d.Seq())
	}
	if got := d.ReadCheckpoint(); !bytes.Equal(got, big) {
		t.Fatalf("payload after retried commit = %d bytes", len(got))
	}
}
