package disk

// Store is the base storage layer an index structure builds on: the Device
// page-I/O surface plus the allocation and accounting surface the
// experiment harness and the buffer pool need. Two implementations exist:
//
//   - *Pager, the in-memory simulation every structure used historically;
//   - *FileDevice, an os.File-backed device with the same semantics, so a
//     structure built over a Store runs unmodified on real disk pages.
//
// A *Pool is a Device but deliberately NOT a Store: it layers over a Store
// and the Store's counters keep measuring the transfers that actually reach
// the device, which is the quantity the paper's cost model counts.
type Store interface {
	Device
	// Check reports whether id names a live (allocated) page.
	Check(id BlockID) error
	// Stats returns a snapshot of the cumulative I/O counters.
	Stats() Stats
	// ResetStats zeroes the I/O counters (allocation state is unchanged).
	ResetStats()
	// Allocated returns the number of live pages — the structure's space
	// usage in blocks, compared against the paper's O(n/B) bounds.
	Allocated() int64
	// NumPages returns the size of the page-id space (live or free), an
	// upper bound on any chain of distinct blocks. Unlike Stats it is not
	// affected by ResetStats, so corruption guards can be built on it.
	NumPages() int
}

var _ Store = (*Pager)(nil)
