package disk

import (
	"errors"
	"testing"
)

// TestFaultDeviceBudget: the Store-agnostic wrapper faults exactly after
// the armed number of mutations, reads stay unfaulted, and disarming
// restores normal operation.
func TestFaultDeviceBudget(t *testing.T) {
	fd := NewFaultDevice(NewPager(64))
	buf := make([]byte, 64)

	var ids []BlockID
	for i := 0; i < 4; i++ {
		id := fd.Alloc()
		if err := fd.Write(id, buf); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	fd.FailAfterMutations(2)
	if err := fd.Write(ids[0], buf); err != nil {
		t.Fatalf("write 1 of 2: %v", err)
	}
	if err := fd.Write(ids[1], buf); err != nil {
		t.Fatalf("write 2 of 2: %v", err)
	}
	if err := fd.Write(ids[2], buf); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("write past budget: %v, want ErrInjectedFault", err)
	}
	if !fd.Tripped() {
		t.Fatal("Tripped() = false after injected fault")
	}
	if err := fd.Free(ids[3]); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("free past budget: %v, want ErrInjectedFault", err)
	}
	func() {
		defer func() {
			p := recover()
			if p == nil {
				t.Fatal("Alloc past budget did not panic")
			}
			if err, ok := p.(error); !ok || !errors.Is(err, ErrInjectedFault) {
				t.Fatalf("Alloc panic = %v, want wrapped ErrInjectedFault", p)
			}
		}()
		fd.Alloc()
	}()

	// Reads are never faulted: a halted process can re-read what it wrote.
	if err := fd.Read(ids[0], buf); err != nil {
		t.Fatalf("read under exhausted budget: %v", err)
	}
	v, err := fd.View(ids[0])
	if err != nil || len(v) != 64 {
		t.Fatalf("view under exhausted budget: %v", err)
	}
	fd.Release(ids[0])

	fd.FailAfterMutations(-1)
	if err := fd.Write(ids[0], buf); err != nil {
		t.Fatalf("write after disarm: %v", err)
	}
	if fd.Tripped() {
		t.Fatal("Tripped() = true after re-arming")
	}
	if fd.PageSize() != 64 || fd.NumPages() != 5 {
		t.Fatalf("pass-through accessors: ps=%d np=%d", fd.PageSize(), fd.NumPages())
	}
}
