package disk

import "testing"

func TestCacheHitsAvoidIO(t *testing.T) {
	p := NewPager(8)
	id := p.Alloc()
	p.MustWrite(id, []byte{9, 9, 9, 9, 9, 9, 9, 9})
	base := p.Stats()

	c := NewCache(p, 4)
	buf := make([]byte, 8)
	if err := c.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := c.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().Sub(base).Reads; got != 1 {
		t.Fatalf("device reads = %d, want 1 (second read should hit cache)", got)
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", c.Hits(), c.Misses())
	}
}

func TestCacheEvictionWritesBackDirty(t *testing.T) {
	p := NewPager(8)
	ids := make([]BlockID, 3)
	for i := range ids {
		ids[i] = p.Alloc()
	}
	c := NewCache(p, 2)
	if err := c.Write(ids[0], []byte{1, 1, 1, 1, 1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(ids[1], []byte{2, 2, 2, 2, 2, 2, 2, 2}); err != nil {
		t.Fatal(err)
	}
	// Touch ids[1] so ids[0] is LRU, then bring in ids[2] to force eviction.
	buf := make([]byte, 8)
	if err := c.Read(ids[1], buf); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(ids[2], []byte{3, 3, 3, 3, 3, 3, 3, 3}); err != nil {
		t.Fatal(err)
	}
	// ids[0] must have been flushed to the device.
	p.MustRead(ids[0], buf)
	if buf[0] != 1 {
		t.Fatalf("dirty page not written back: %v", buf)
	}
}

func TestCacheFlush(t *testing.T) {
	p := NewPager(8)
	id := p.Alloc()
	c := NewCache(p, 2)
	if err := c.Write(id, []byte{7, 0, 0, 0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	p.MustRead(id, buf)
	if buf[0] != 0 {
		t.Fatal("write-back cache leaked before flush")
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	p.MustRead(id, buf)
	if buf[0] != 7 {
		t.Fatal("flush did not persist dirty page")
	}
}

func TestCacheReadThroughAfterEvict(t *testing.T) {
	p := NewPager(8)
	a, b, c3 := p.Alloc(), p.Alloc(), p.Alloc()
	p.MustWrite(a, []byte{1, 0, 0, 0, 0, 0, 0, 0})
	p.MustWrite(b, []byte{2, 0, 0, 0, 0, 0, 0, 0})
	p.MustWrite(c3, []byte{3, 0, 0, 0, 0, 0, 0, 0})
	c := NewCache(p, 2)
	buf := make([]byte, 8)
	for _, id := range []BlockID{a, b, c3, a} {
		if err := c.Read(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if buf[0] != 1 {
		t.Fatalf("re-read of evicted page a returned %d", buf[0])
	}
	if c.Hits() != 0 || c.Misses() != 4 {
		t.Fatalf("hits=%d misses=%d, want 0/4", c.Hits(), c.Misses())
	}
}

// TestCacheAccountingAudit pins down the hit/miss ledger: read hits and
// write hits count as hits, read misses count as misses, and a write miss
// (a pure full-page store that costs no device read) counts as neither.
func TestCacheAccountingAudit(t *testing.T) {
	p := NewPager(8)
	a, b := p.Alloc(), p.Alloc()
	p.MustWrite(a, []byte{1, 0, 0, 0, 0, 0, 0, 0})
	c := NewCache(p, 4)
	buf := make([]byte, 8)

	base := p.Stats()
	mustCacheRead(t, c, a, buf) // read miss: 1 device read
	if c.Hits() != 0 || c.Misses() != 1 {
		t.Fatalf("after read miss: hits=%d misses=%d, want 0/1", c.Hits(), c.Misses())
	}
	mustCacheRead(t, c, a, buf) // read hit
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("after read hit: hits=%d misses=%d, want 1/1", c.Hits(), c.Misses())
	}
	if err := c.Write(a, buf); err != nil { // write hit
		t.Fatal(err)
	}
	if c.Hits() != 2 || c.Misses() != 1 {
		t.Fatalf("after write hit: hits=%d misses=%d, want 2/1", c.Hits(), c.Misses())
	}
	if err := c.Write(b, buf); err != nil { // write miss: pure store
		t.Fatal(err)
	}
	if c.Hits() != 2 || c.Misses() != 1 {
		t.Fatalf("after write miss: hits=%d misses=%d, want 2/1 (stores are not misses)", c.Hits(), c.Misses())
	}
	if got := p.Stats().Sub(base); got.Reads != 1 || got.Writes != 0 {
		t.Fatalf("device I/O = %+v, want exactly 1 read and 0 writes before flush", got)
	}
}

// mustCacheRead fails the test on a cache read error.
func mustCacheRead(t *testing.T, c *Cache, id BlockID, buf []byte) {
	t.Helper()
	if err := c.Read(id, buf); err != nil {
		t.Fatal(err)
	}
}

func TestCachePanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for capacity 0")
		}
	}()
	NewCache(NewPager(8), 0)
}
