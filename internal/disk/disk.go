// Package disk simulates a block-oriented secondary storage device with
// explicit I/O accounting.
//
// The paper's cost model (Kanellakis et al., JCSS 1996, Section 1.1) counts
// one I/O per page transferred between secondary storage and main memory,
// with all constants independent of n, c, t and B. Reproducing that model in
// Go requires making page transfers explicit: the garbage collector and CPU
// caches make wall-clock time a poor proxy for block I/O. Every structure in
// this repository therefore stores its pages in a Pager and the experiment
// harness reads the Pager's counters as the measured quantity.
//
// A page is a fixed-size byte slice. Read and Write each count as one I/O.
// Structures are free to keep O(B^2) records of working state in memory
// during an operation, mirroring the paper's assumption that at least
// O(B^2) units of main memory are available.
package disk

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// BlockID identifies a page on the simulated device. Zero is never a valid
// allocated block, so it can be used as a nil pointer in page layouts.
type BlockID int64

// NilBlock is the reserved "no block" identifier.
const NilBlock BlockID = 0

// Stats holds cumulative I/O counters for a device.
type Stats struct {
	Reads  int64 // pages read
	Writes int64 // pages written
	Allocs int64 // pages allocated
	Frees  int64 // pages freed
}

// IOs returns the total number of I/O operations (reads + writes).
func (s Stats) IOs() int64 { return s.Reads + s.Writes }

// Sub returns the counter difference s - t, useful for measuring one
// operation: take a snapshot before, subtract after.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Reads:  s.Reads - t.Reads,
		Writes: s.Writes - t.Writes,
		Allocs: s.Allocs - t.Allocs,
		Frees:  s.Frees - t.Frees,
	}
}

// Add returns s + t.
func (s Stats) Add(t Stats) Stats {
	return Stats{
		Reads:  s.Reads + t.Reads,
		Writes: s.Writes + t.Writes,
		Allocs: s.Allocs + t.Allocs,
		Frees:  s.Frees + t.Frees,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d allocs=%d frees=%d", s.Reads, s.Writes, s.Allocs, s.Frees)
}

// Common pager errors.
var (
	ErrBadBlock   = errors.New("disk: block not allocated")
	ErrPageSize   = errors.New("disk: buffer size does not match page size")
	ErrFreedTwice = errors.New("disk: double free")
)

// ErrFreedTwce is a deprecated alias for ErrFreedTwice.
//
// Deprecated: the original name carried a typo; use ErrFreedTwice.
var ErrFreedTwce = ErrFreedTwice

// Device is the page I/O surface the index structures read and write
// through. *Pager implements it directly (every access is a device I/O);
// *Pool layers a buffer pool on top (hits are served from memory-resident
// frames and do not count as device I/Os).
//
// View returns a borrowed read-only view of the page, counting the same
// I/O as Read but without copying. The view is valid until Release(id) is
// called and must not be written to or retained afterwards; callers decode
// what they need and release promptly. On a *Pager, Release is a no-op and
// a view stays readable until the page is next written, freed, or
// reallocated; on a *Pool, View pins the frame and Release unpins it, so
// every View must be paired with exactly one Release.
type Device interface {
	PageSize() int
	Alloc() BlockID
	Read(id BlockID, buf []byte) error
	Write(id BlockID, buf []byte) error
	Free(id BlockID) error
	View(id BlockID) ([]byte, error)
	Release(id BlockID)
}

// MustView is View that panics on error, for blocks a structure allocated
// itself (failure indicates internal corruption).
func MustView(d Device, id BlockID) []byte {
	v, err := d.View(id)
	if err != nil {
		panic(err)
	}
	return v
}

// MustReadAt is Read through a Device that panics on error.
func MustReadAt(d Device, id BlockID, buf []byte) {
	if err := d.Read(id, buf); err != nil {
		panic(err)
	}
}

// MustWriteAt is Write through a Device that panics on error.
func MustWriteAt(d Device, id BlockID, buf []byte) {
	if err := d.Write(id, buf); err != nil {
		panic(err)
	}
}

// MustFreeAt is Free through a Device that panics on error.
func MustFreeAt(d Device, id BlockID) {
	if err := d.Free(id); err != nil {
		panic(err)
	}
}

// Pager is an in-memory simulation of a disk: a growable array of fixed-size
// pages plus a free list. Each index structure owns its own Pager (the
// experiment harness aggregates counters).
//
// Concurrency: the I/O counters are atomic, so any number of goroutines may
// Read concurrently (and snapshot Stats) as long as no goroutine is
// mutating the device (Write, Alloc, Free). Mutations require external
// serialization against both other mutations and readers — the shard
// serving layer provides it with a per-shard RWMutex.
type Pager struct {
	pageSize int
	pages    [][]byte
	live     []bool
	free     []BlockID

	reads, writes, allocs, frees atomic.Int64
}

// NewPager creates a device with the given page size in bytes.
// Page size must be positive.
func NewPager(pageSize int) *Pager {
	if pageSize <= 0 {
		panic("disk: page size must be positive")
	}
	return &Pager{
		pageSize: pageSize,
		pages:    make([][]byte, 1), // index 0 reserved for NilBlock
		live:     make([]bool, 1),
	}
}

// PageSize returns the page size in bytes.
func (p *Pager) PageSize() int { return p.pageSize }

// Stats returns a snapshot of the cumulative I/O counters.
func (p *Pager) Stats() Stats {
	return Stats{
		Reads:  p.reads.Load(),
		Writes: p.writes.Load(),
		Allocs: p.allocs.Load(),
		Frees:  p.frees.Load(),
	}
}

// ResetStats zeroes the I/O counters (allocation state is unchanged).
func (p *Pager) ResetStats() {
	p.reads.Store(0)
	p.writes.Store(0)
	p.allocs.Store(0)
	p.frees.Store(0)
}

// Allocated reports the number of live pages, i.e. the structure's space
// usage in blocks. This is the quantity compared against the paper's O(n/B)
// space bounds.
func (p *Pager) Allocated() int64 {
	return p.allocs.Load() - p.frees.Load()
}

// NumPages returns the size of the page array (live or free), an upper
// bound on any chain of distinct blocks. Unlike the Stats counters it is
// not affected by ResetStats, so it is safe to build corruption guards on.
func (p *Pager) NumPages() int { return len(p.pages) }

// Alloc reserves a new zeroed page and returns its id. Allocation itself is
// not counted as an I/O (the page must still be written to contain data).
func (p *Pager) Alloc() BlockID {
	if misuseArmed.Load() {
		p.noteMutation("Alloc", NilBlock)
	}
	p.allocs.Add(1)
	if n := len(p.free); n > 0 {
		id := p.free[n-1]
		p.free = p.free[:n-1]
		p.live[id] = true
		for i := range p.pages[id] {
			p.pages[id][i] = 0
		}
		return id
	}
	p.pages = append(p.pages, make([]byte, p.pageSize))
	p.live = append(p.live, true)
	return BlockID(len(p.pages) - 1)
}

func (p *Pager) check(id BlockID) error {
	if id <= 0 || int(id) >= len(p.pages) || !p.live[id] {
		return fmt.Errorf("%w: %d", ErrBadBlock, id)
	}
	return nil
}

// Check reports whether id names a live page (part of the Store interface).
func (p *Pager) Check(id BlockID) error { return p.check(id) }

// Read copies page id into buf (len(buf) must equal the page size) and
// counts one I/O.
func (p *Pager) Read(id BlockID, buf []byte) error {
	if err := p.check(id); err != nil {
		return err
	}
	if len(buf) != p.pageSize {
		return ErrPageSize
	}
	p.reads.Add(1)
	copy(buf, p.pages[id])
	return nil
}

// View returns a borrowed read-only view of page id and counts one I/O,
// exactly like Read but without the copy. The returned slice aliases the
// device's storage: it is valid until the page is next written, freed or
// reallocated, and must never be mutated. Concurrent Views are safe under
// the same conditions as concurrent Reads (no concurrent mutation).
func (p *Pager) View(id BlockID) ([]byte, error) {
	if err := p.check(id); err != nil {
		return nil, err
	}
	p.reads.Add(1)
	if misuseArmed.Load() {
		p.noteView(id)
	}
	return p.pages[id], nil
}

// Release returns a borrowed view. On a bare Pager it is a no-op (the view
// stays readable until the page is next mutated); it exists so that Pager
// and Pool satisfy the same Device interface. Under EnableMisuseChecks it
// additionally ends the view's registered borrow.
func (p *Pager) Release(id BlockID) {
	if misuseArmed.Load() {
		p.noteRelease(id)
	}
}

// Write copies buf into page id (len(buf) must equal the page size) and
// counts one I/O.
func (p *Pager) Write(id BlockID, buf []byte) error {
	if err := p.check(id); err != nil {
		return err
	}
	if len(buf) != p.pageSize {
		return ErrPageSize
	}
	if misuseArmed.Load() {
		p.noteMutation("Write", id)
	}
	p.writes.Add(1)
	copy(p.pages[id], buf)
	return nil
}

// Free releases a page back to the free list.
func (p *Pager) Free(id BlockID) error {
	if id <= 0 || int(id) >= len(p.pages) {
		return fmt.Errorf("%w: %d", ErrBadBlock, id)
	}
	if !p.live[id] {
		return fmt.Errorf("%w: %d", ErrFreedTwice, id)
	}
	if misuseArmed.Load() {
		p.noteMutation("Free", id)
	}
	p.live[id] = false
	p.free = append(p.free, id)
	p.frees.Add(1)
	return nil
}

// MustRead is Read that panics on error. Index structures use it for blocks
// they allocated themselves, where failure indicates internal corruption.
func (p *Pager) MustRead(id BlockID, buf []byte) {
	if err := p.Read(id, buf); err != nil {
		panic(err)
	}
}

// MustWrite is Write that panics on error.
func (p *Pager) MustWrite(id BlockID, buf []byte) {
	if err := p.Write(id, buf); err != nil {
		panic(err)
	}
}

// MustFree is Free that panics on error.
func (p *Pager) MustFree(id BlockID) {
	if err := p.Free(id); err != nil {
		panic(err)
	}
}
