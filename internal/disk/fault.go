package disk

import (
	"fmt"
	"sync/atomic"
)

// FaultDevice wraps a Store and injects a write fault after a configured
// number of mutations: Write returns ErrInjectedFault, Alloc and Free panic
// with it (their signatures have no error channel for Alloc; the structures'
// Must* helpers panic on a failed Write anyway, so a fault surfaces as a
// panic the crash harness recovers from either way). Reads are never
// faulted — a halted process can always re-read what it already wrote.
//
// FaultDevice tests any Store at Device-call granularity; the FileDevice's
// own FailAfterWrites is finer (file-write granularity, covering journal
// appends and superblock flips), and the recovery suite uses both.
type FaultDevice struct {
	inner     Store
	remaining atomic.Int64 // mutation budget; negative = disarmed
	tripped   atomic.Bool
}

// NewFaultDevice wraps inner with fault injection disarmed.
func NewFaultDevice(inner Store) *FaultDevice {
	fd := &FaultDevice{inner: inner}
	fd.remaining.Store(-1)
	return fd
}

// FailAfterMutations arms the device: the next n mutations (Write, Alloc,
// Free) succeed, every later one faults. Negative n disarms.
func (fd *FaultDevice) FailAfterMutations(n int64) {
	fd.tripped.Store(false)
	fd.remaining.Store(n)
}

// Tripped reports whether a fault has been injected since the last arming.
func (fd *FaultDevice) Tripped() bool { return fd.tripped.Load() }

func (fd *FaultDevice) spend() error {
	for {
		r := fd.remaining.Load()
		if r < 0 {
			return nil
		}
		if r == 0 {
			fd.tripped.Store(true)
			return ErrInjectedFault
		}
		if fd.remaining.CompareAndSwap(r, r-1) {
			return nil
		}
	}
}

// PageSize returns the wrapped store's page size.
func (fd *FaultDevice) PageSize() int { return fd.inner.PageSize() }

// Alloc reserves a page, panicking with ErrInjectedFault once the budget is
// spent (Alloc has no error channel).
func (fd *FaultDevice) Alloc() BlockID {
	if err := fd.spend(); err != nil {
		panic(fmt.Errorf("disk: Alloc: %w", err))
	}
	return fd.inner.Alloc()
}

// Read passes through unfaulted.
func (fd *FaultDevice) Read(id BlockID, buf []byte) error { return fd.inner.Read(id, buf) }

// View passes through unfaulted.
func (fd *FaultDevice) View(id BlockID) ([]byte, error) { return fd.inner.View(id) }

// Release passes through.
func (fd *FaultDevice) Release(id BlockID) { fd.inner.Release(id) }

// Write stores the page, or returns ErrInjectedFault once the budget is
// spent.
func (fd *FaultDevice) Write(id BlockID, buf []byte) error {
	if err := fd.spend(); err != nil {
		return err
	}
	return fd.inner.Write(id, buf)
}

// Free releases the page, or fails with ErrInjectedFault once the budget is
// spent.
func (fd *FaultDevice) Free(id BlockID) error {
	if err := fd.spend(); err != nil {
		return err
	}
	return fd.inner.Free(id)
}

// Check reports whether id names a live page.
func (fd *FaultDevice) Check(id BlockID) error { return fd.inner.Check(id) }

// Stats returns the wrapped store's counters.
func (fd *FaultDevice) Stats() Stats { return fd.inner.Stats() }

// ResetStats zeroes the wrapped store's counters.
func (fd *FaultDevice) ResetStats() { fd.inner.ResetStats() }

// Allocated returns the wrapped store's live page count.
func (fd *FaultDevice) Allocated() int64 { return fd.inner.Allocated() }

// NumPages returns the wrapped store's page-id space size.
func (fd *FaultDevice) NumPages() int { return fd.inner.NumPages() }

var _ Store = (*FaultDevice)(nil)
