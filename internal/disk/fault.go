package disk

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjectedRead is the typed transient read fault FailReads injects: the
// read did not happen, but retrying it may succeed (the media model is a
// flaky transport, not corruption).
var ErrInjectedRead = errors.New("disk: injected transient read fault")

// FaultDevice wraps a Store and injects faults. The original facility is a
// mutation budget: Write returns ErrInjectedFault after n mutations, Alloc
// and Free panic with it (their signatures have no error channel for Alloc;
// the structures' Must* helpers panic on a failed Write anyway, so a fault
// surfaces as a panic the crash harness recovers from either way).
//
// Beyond the budget, three probabilistic fault classes with deterministic
// seeds generalize the harness: FailReads makes Read/View fail transiently
// with a per-op probability, and FlipBits corrupts one random bit of a
// written page (modeling rot introduced before the integrity boundary — a
// CRC-checked store must detect it on the next read).
//
// FaultDevice tests any Store at Device-call granularity; the FileDevice's
// own FailAfterWrites is finer (file-write granularity, covering journal
// appends, CRC-sidecar updates and superblock flips), and the recovery
// suite uses both.
type FaultDevice struct {
	inner     Store
	remaining atomic.Int64 // mutation budget; negative = disarmed
	tripped   atomic.Bool

	// rngMu guards the deterministic fault RNGs (Read/View may be called
	// from many goroutines).
	rngMu    sync.Mutex
	readProb float64
	readRng  *rand.Rand
	flipProb float64
	flipRng  *rand.Rand
	latBase  time.Duration
	latJit   time.Duration
	latRng   *rand.Rand

	latTotal atomic.Int64 // nanoseconds of injected latency
	latOps   atomic.Int64 // operations that were slowed
}

// NewFaultDevice wraps inner with fault injection disarmed.
func NewFaultDevice(inner Store) *FaultDevice {
	fd := &FaultDevice{inner: inner}
	fd.remaining.Store(-1)
	return fd
}

// FailAfterMutations arms the device: the next n mutations (Write, Alloc,
// Free) succeed, every later one faults. Negative n disarms.
func (fd *FaultDevice) FailAfterMutations(n int64) {
	fd.tripped.Store(false)
	fd.remaining.Store(n)
}

// FailReads makes each Read/View fail with ErrInjectedRead with probability
// p, drawn from a deterministic stream seeded with seed. p <= 0 disarms.
func (fd *FaultDevice) FailReads(p float64, seed int64) {
	fd.rngMu.Lock()
	defer fd.rngMu.Unlock()
	fd.readProb = p
	fd.readRng = rand.New(rand.NewSource(seed))
}

// FlipBits makes each Write corrupt one uniformly random bit of the stored
// page with probability p, drawn from a deterministic stream seeded with
// seed — the caller's buffer is untouched; only the media sees the flip.
// p <= 0 disarms.
func (fd *FaultDevice) FlipBits(p float64, seed int64) {
	fd.rngMu.Lock()
	defer fd.rngMu.Unlock()
	fd.flipProb = p
	fd.flipRng = rand.New(rand.NewSource(seed))
}

// SetLatency makes every Read/View/Write sleep base plus a uniformly random
// extra in [0, jitter), drawn from a deterministic stream seeded with seed —
// the slow-disk half of the fault model (a node that is up but dragging).
// base <= 0 with jitter <= 0 disarms. The draw sequence is deterministic
// under a fixed seed; wall-clock sleep time of course is not.
func (fd *FaultDevice) SetLatency(base, jitter time.Duration, seed int64) {
	fd.rngMu.Lock()
	defer fd.rngMu.Unlock()
	fd.latBase = base
	fd.latJit = jitter
	fd.latRng = rand.New(rand.NewSource(seed))
	fd.latTotal.Store(0)
	fd.latOps.Store(0)
}

// InjectedLatency returns the total latency injected since the last
// SetLatency and how many operations it was spread over.
func (fd *FaultDevice) InjectedLatency() (total time.Duration, ops int64) {
	return time.Duration(fd.latTotal.Load()), fd.latOps.Load()
}

// slow draws this operation's injected delay (0 when disarmed), records it,
// and sleeps.
func (fd *FaultDevice) slow() {
	fd.rngMu.Lock()
	d := fd.latBase
	if fd.latJit > 0 && fd.latRng != nil {
		d += time.Duration(fd.latRng.Int63n(int64(fd.latJit)))
	}
	fd.rngMu.Unlock()
	if d <= 0 {
		return
	}
	fd.latTotal.Add(int64(d))
	fd.latOps.Add(1)
	time.Sleep(d)
}

// readFault draws the transient-read coin.
func (fd *FaultDevice) readFault() bool {
	fd.rngMu.Lock()
	defer fd.rngMu.Unlock()
	return fd.readProb > 0 && fd.readRng.Float64() < fd.readProb
}

// flipBit returns the bit index to flip in an n-byte write, or -1.
func (fd *FaultDevice) flipBit(n int) int {
	fd.rngMu.Lock()
	defer fd.rngMu.Unlock()
	if fd.flipProb <= 0 || fd.flipRng.Float64() >= fd.flipProb || n == 0 {
		return -1
	}
	return fd.flipRng.Intn(n * 8)
}

// Tripped reports whether a fault has been injected since the last arming.
func (fd *FaultDevice) Tripped() bool { return fd.tripped.Load() }

func (fd *FaultDevice) spend() error {
	for {
		r := fd.remaining.Load()
		if r < 0 {
			return nil
		}
		if r == 0 {
			fd.tripped.Store(true)
			return ErrInjectedFault
		}
		if fd.remaining.CompareAndSwap(r, r-1) {
			return nil
		}
	}
}

// PageSize returns the wrapped store's page size.
func (fd *FaultDevice) PageSize() int { return fd.inner.PageSize() }

// Alloc reserves a page, panicking with ErrInjectedFault once the budget is
// spent (Alloc has no error channel).
func (fd *FaultDevice) Alloc() BlockID {
	if err := fd.spend(); err != nil {
		panic(fmt.Errorf("disk: Alloc: %w", err))
	}
	return fd.inner.Alloc()
}

// Read passes through, unless FailReads injects a transient fault.
func (fd *FaultDevice) Read(id BlockID, buf []byte) error {
	fd.slow()
	if fd.readFault() {
		return fmt.Errorf("disk: Read page %d: %w", id, ErrInjectedRead)
	}
	return fd.inner.Read(id, buf)
}

// View passes through, unless FailReads injects a transient fault.
func (fd *FaultDevice) View(id BlockID) ([]byte, error) {
	fd.slow()
	if fd.readFault() {
		return nil, fmt.Errorf("disk: View page %d: %w", id, ErrInjectedRead)
	}
	return fd.inner.View(id)
}

// Release passes through.
func (fd *FaultDevice) Release(id BlockID) { fd.inner.Release(id) }

// Write stores the page, or returns ErrInjectedFault once the budget is
// spent. With FlipBits armed, the stored copy may have one bit flipped.
func (fd *FaultDevice) Write(id BlockID, buf []byte) error {
	fd.slow()
	if err := fd.spend(); err != nil {
		return err
	}
	if bit := fd.flipBit(len(buf)); bit >= 0 {
		rotten := append([]byte(nil), buf...)
		rotten[bit/8] ^= 1 << (bit % 8)
		return fd.inner.Write(id, rotten)
	}
	return fd.inner.Write(id, buf)
}

// Free releases the page, or fails with ErrInjectedFault once the budget is
// spent.
func (fd *FaultDevice) Free(id BlockID) error {
	if err := fd.spend(); err != nil {
		return err
	}
	return fd.inner.Free(id)
}

// Check reports whether id names a live page.
func (fd *FaultDevice) Check(id BlockID) error { return fd.inner.Check(id) }

// Stats returns the wrapped store's counters.
func (fd *FaultDevice) Stats() Stats { return fd.inner.Stats() }

// ResetStats zeroes the wrapped store's counters.
func (fd *FaultDevice) ResetStats() { fd.inner.ResetStats() }

// Allocated returns the wrapped store's live page count.
func (fd *FaultDevice) Allocated() int64 { return fd.inner.Allocated() }

// NumPages returns the wrapped store's page-id space size.
func (fd *FaultDevice) NumPages() int { return fd.inner.NumPages() }

var _ Store = (*FaultDevice)(nil)

// FlipBit flips one bit of data page `page` in the FileDevice file at path
// — on-media rot, injected underneath the CRC layer, so the next Read of
// the page must surface ErrCorrupt. bit indexes into the page (0 ..
// pageSize*8-1). The device should be closed (or at least quiescent): this
// pokes the file directly.
func FlipBit(path string, pageSize int, page BlockID, bit int) error {
	if page <= 0 || bit < 0 || bit >= pageSize*8 {
		return fmt.Errorf("disk: FlipBit page %d bit %d out of range", page, bit)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	off := int64(int(page)+reservedFilePages-1)*int64(pageSize) + int64(bit/8)
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil && err != io.EOF {
		return err
	}
	b[0] ^= 1 << (bit % 8)
	_, err = f.WriteAt(b[:], off)
	return err
}
