package disk

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocReadWrite(t *testing.T) {
	p := NewPager(16)
	id := p.Alloc()
	if id == NilBlock {
		t.Fatal("Alloc returned NilBlock")
	}
	in := make([]byte, 16)
	for i := range in {
		in[i] = byte(i + 1)
	}
	if err := p.Write(id, in); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 16)
	if err := p.Read(id, out); err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("byte %d: got %d want %d", i, out[i], in[i])
		}
	}
}

func TestStatsCounting(t *testing.T) {
	p := NewPager(8)
	a := p.Alloc()
	b := p.Alloc()
	buf := make([]byte, 8)
	p.MustWrite(a, buf)
	p.MustWrite(b, buf)
	p.MustRead(a, buf)
	s := p.Stats()
	if s.Reads != 1 || s.Writes != 2 || s.Allocs != 2 || s.Frees != 0 {
		t.Fatalf("unexpected stats %+v", s)
	}
	if s.IOs() != 3 {
		t.Fatalf("IOs = %d, want 3", s.IOs())
	}
	p.MustFree(a)
	if got := p.Allocated(); got != 1 {
		t.Fatalf("Allocated = %d, want 1", got)
	}
}

func TestStatsSubAdd(t *testing.T) {
	a := Stats{Reads: 5, Writes: 3, Allocs: 2, Frees: 1}
	b := Stats{Reads: 2, Writes: 1, Allocs: 1, Frees: 0}
	d := a.Sub(b)
	if d != (Stats{Reads: 3, Writes: 2, Allocs: 1, Frees: 1}) {
		t.Fatalf("Sub = %+v", d)
	}
	if a.Sub(b).Add(b) != a {
		t.Fatal("Sub then Add is not identity")
	}
}

func TestReadUnallocated(t *testing.T) {
	p := NewPager(8)
	buf := make([]byte, 8)
	if err := p.Read(5, buf); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("err = %v, want ErrBadBlock", err)
	}
	if err := p.Read(NilBlock, buf); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("err = %v, want ErrBadBlock for NilBlock", err)
	}
}

func TestWrongBufferSize(t *testing.T) {
	p := NewPager(8)
	id := p.Alloc()
	if err := p.Read(id, make([]byte, 4)); !errors.Is(err, ErrPageSize) {
		t.Fatalf("Read err = %v, want ErrPageSize", err)
	}
	if err := p.Write(id, make([]byte, 9)); !errors.Is(err, ErrPageSize) {
		t.Fatalf("Write err = %v, want ErrPageSize", err)
	}
}

func TestDoubleFree(t *testing.T) {
	p := NewPager(8)
	id := p.Alloc()
	if err := p.Free(id); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(id); !errors.Is(err, ErrFreedTwce) {
		t.Fatalf("err = %v, want ErrFreedTwce", err)
	}
}

func TestFreeReuseZeroes(t *testing.T) {
	p := NewPager(4)
	id := p.Alloc()
	p.MustWrite(id, []byte{1, 2, 3, 4})
	p.MustFree(id)
	id2 := p.Alloc()
	if id2 != id {
		t.Fatalf("expected page reuse, got %d want %d", id2, id)
	}
	out := make([]byte, 4)
	p.MustRead(id2, out)
	for i, v := range out {
		if v != 0 {
			t.Fatalf("byte %d of reused page = %d, want 0", i, v)
		}
	}
}

func TestUseAfterFree(t *testing.T) {
	p := NewPager(8)
	id := p.Alloc()
	p.MustFree(id)
	if err := p.Read(id, make([]byte, 8)); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("read after free: err = %v, want ErrBadBlock", err)
	}
}

func TestPagerPanicsOnBadPageSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for page size 0")
		}
	}()
	NewPager(0)
}

// Property: pages are independent — writing one page never changes another.
func TestPageIsolationProperty(t *testing.T) {
	f := func(vals [][8]byte) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 64 {
			vals = vals[:64]
		}
		p := NewPager(8)
		ids := make([]BlockID, len(vals))
		for i, v := range vals {
			ids[i] = p.Alloc()
			b := v
			p.MustWrite(ids[i], b[:])
		}
		for i, v := range vals {
			out := make([]byte, 8)
			p.MustRead(ids[i], out)
			for j := 0; j < 8; j++ {
				if out[j] != v[j] {
					return false
				}
			}
		}
		return true
	}
	// Fixed-seed Rand keeps the property deterministic (testing/quick
	// defaults to a time-seeded generator).
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(74))}
	if testing.Short() {
		cfg.MaxCount = 12
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestResetStats(t *testing.T) {
	p := NewPager(8)
	id := p.Alloc()
	p.MustWrite(id, make([]byte, 8))
	p.ResetStats()
	if p.Stats() != (Stats{}) {
		t.Fatalf("stats not reset: %+v", p.Stats())
	}
	// Allocation bookkeeping is tracked by counters, so Allocated is reset
	// too; this documents the contract.
	if p.Allocated() != 0 {
		t.Fatalf("Allocated after reset = %d", p.Allocated())
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Reads: 1, Writes: 2, Allocs: 3, Frees: 4}
	if s.String() != "reads=1 writes=2 allocs=3 frees=4" {
		t.Fatalf("String = %q", s.String())
	}
}
