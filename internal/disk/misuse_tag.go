//go:build ccidxdebug

package disk

// Building with -tags ccidxdebug arms Pager concurrent-misuse detection for
// the whole binary, so any test or experiment run can be promoted to a
// contract-checking run without code changes.
func init() { misuseArmed.Store(true) }
