package disk

// Manifest is the commit record of a checkpoint spanning one or more
// FileDevices in a directory. Each device's PrepareCheckpoint leaves both
// its previous and its new checkpoint durable; atomically renaming the
// manifest with the new sequence number is the single commit point, after
// which every device is CommitCheckpoint-ed. Opening the directory reads
// the manifest and opens each device with TrustSeq = Manifest.Seq, so a
// crash anywhere in the protocol recovers all devices at one consistent
// generation.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ManifestName is the manifest's file name inside a checkpoint directory.
const ManifestName = "MANIFEST.json"

// Manifest is the durable description of a checkpointed directory: the
// committed generation plus the owner's configuration (so Open needs no
// out-of-band parameters).
type Manifest struct {
	Version int             `json:"version"`
	Kind    string          `json:"kind"`
	Seq     uint64          `json:"seq"`
	Meta    json.RawMessage `json:"meta,omitempty"`
}

// WriteManifest atomically replaces dir's manifest: write to a temp file,
// fsync it, rename over the old one, fsync the directory. The rename is the
// commit point of a multi-device checkpoint.
func WriteManifest(dir string, m Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(dir, ManifestName+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, ManifestName)); err != nil {
		os.Remove(tmpName)
		return err
	}
	if df, err := os.Open(dir); err == nil {
		df.Sync() // best-effort: not all platforms support directory fsync
		df.Close()
	}
	return nil
}

// ReadManifest loads dir's manifest.
func ReadManifest(dir string) (Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("disk: corrupt manifest in %s: %w", dir, err)
	}
	return m, nil
}
