package disk

// Fuzz targets for the two on-disk formats an attacker (or decaying
// media) controls byte-for-byte: the WAL record stream and the device
// file header. Both must reject arbitrary input with a clean error —
// never a panic, never an oversized allocation driven by a corrupt
// length field.

import (
	"os"
	"path/filepath"
	"testing"
)

// walBytes builds a valid two-record log through the real API and returns
// its raw bytes, the seed the fuzzer mutates from.
func walBytes(f *testing.F) []byte {
	path := filepath.Join(f.TempDir(), "seed.log")
	w, err := OpenWAL(path, FsyncNever)
	if err != nil {
		f.Fatal(err)
	}
	if err := w.Reset(1); err != nil {
		f.Fatal(err)
	}
	if err := w.Append([]byte("hello")); err != nil {
		f.Fatal(err)
	}
	if err := w.Append([]byte{0, 1, 2, 3}); err != nil {
		f.Fatal(err)
	}
	w.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return raw
}

func FuzzWALRecordDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(walBytes(f))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		path := filepath.Join(t.TempDir(), "wal.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := OpenWAL(path, FsyncNever)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		// Recover must terminate with a prefix of valid records and no
		// panic, whatever the bytes say; appending afterwards must work.
		if _, err := w.Recover(1, func(p []byte) error { return nil }); err != nil {
			t.Fatalf("recover on fuzzed log: %v", err)
		}
		if err := w.Append([]byte{42}); err != nil {
			t.Fatalf("append after fuzzed recover: %v", err)
		}
	})
}

// deviceBytes builds a small valid device file through the real API.
func deviceBytes(f *testing.F) []byte {
	path := filepath.Join(f.TempDir(), "seed.pages")
	d, err := OpenFile(path, FileOptions{PageSize: 128})
	if err != nil {
		f.Fatal(err)
	}
	id := d.Alloc()
	if err := d.Write(id, make([]byte, 128)); err != nil {
		f.Fatal(err)
	}
	if err := d.Checkpoint([]byte("payload")); err != nil {
		f.Fatal(err)
	}
	d.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return raw
}

func FuzzFileHeader(f *testing.F) {
	f.Add([]byte{})
	f.Add(deviceBytes(f))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		path := filepath.Join(t.TempDir(), "dev.pages")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		// Open must either succeed or fail with an error — never panic.
		d, err := OpenFile(path, FileOptions{})
		if err != nil {
			return
		}
		// A device the recovery accepted must serve basic reads.
		buf := make([]byte, d.PageSize())
		for id := BlockID(1); int64(id) <= d.Allocated() && id < 8; id++ {
			if d.Check(id) == nil {
				_ = d.Read(id, buf)
			}
		}
		d.Close()
	})
}
