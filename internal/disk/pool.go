package disk

// Pool is a concurrent buffer pool layered over a Pager: a fixed budget of
// memory-resident page frames with CLOCK (second-chance) replacement,
// pin/unpin reference counting, and write-back of dirty frames. It replaces
// the single-threaded LRU Cache as the layer the sharded serving stack
// reads through.
//
// Sharding. Frames are partitioned into nShards independent shards by a
// mix of the block id, each with its own mutex, frame table and clock hand.
// A View/Read/Write only takes its shard's lock, so concurrent queries on
// disjoint pages proceed without contention; the hit/miss counters are
// atomic and global.
//
// I/O accounting. A frame hit costs no device I/O; a miss costs one
// pager.Read; evicting a dirty frame costs one pager.Write at eviction (or
// Flush) time. The underlying Pager's counters therefore measure exactly
// the transfers that reached the device — the quantity the paper's cost
// model counts — while Hits/Misses measure how far the pool moved the
// constants.
//
// Pinning. View pins the frame and returns its data; the caller must
// Release exactly once when done decoding. Pinned frames are never evicted;
// if every frame of a shard is pinned when a miss needs a victim, the
// shard grows a temporary overflow frame instead of failing or corrupting
// a borrowed view (Overflows counts these), so the pool may transiently
// exceed its frame budget by at most the number of concurrently pinned
// frames. Pins nest (a frame's pin count may exceed one under concurrent
// readers).
//
// Concurrency contract. The pool serializes its own metadata. Frame DATA is
// only safe under the same discipline the structures already obey: writers
// to a given structure are externally serialized against readers (the
// shard layer's per-shard RWMutex provides it). Within that discipline all
// Pool methods are safe for concurrent use and -race clean.
import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// errAllPinned is evict's report that every frame of a shard is pinned;
// the miss paths respond by growing an overflow frame, never by failing.
var errAllPinned = errors.New("disk: every buffer-pool frame is pinned")

// Pool is a sharded CLOCK buffer pool over a Store (the in-memory Pager or
// a file-backed FileDevice). Create with NewPool.
type Pool struct {
	base      Store
	shards    []poolShard
	mask      uint64
	hits      atomic.Int64
	misses    atomic.Int64
	evicted   atomic.Int64
	overflows atomic.Int64
}

type poolShard struct {
	mu       sync.Mutex
	capacity int
	frames   []*frame
	index    map[BlockID]*frame
	hand     int
}

type frame struct {
	id    BlockID
	data  []byte
	pins  int
	ref   bool
	dirty bool
}

// NewPool creates a pool over p with the given total frame capacity spread
// across nShards internally locked shards. nShards is rounded up to a
// power of two, then shrunk until every lock shard owns at least four
// frames (a tiny budget gets a single shard), so the requested capacity is
// distributed exactly — never inflated — and no shard degenerates to a
// frame count smaller than a realistic pin working set. Frames are
// allocated lazily on first use.
func NewPool(base Store, capacity, nShards int) *Pool {
	if capacity <= 0 {
		panic("disk: pool capacity must be positive")
	}
	if nShards < 1 {
		nShards = 1
	}
	shards := 1
	for shards < nShards {
		shards <<= 1
	}
	const minFramesPerShard = 4
	for shards > 1 && capacity/shards < minFramesPerShard {
		shards >>= 1
	}
	per, extra := capacity/shards, capacity%shards
	pl := &Pool{base: base, shards: make([]poolShard, shards), mask: uint64(shards - 1)}
	for i := range pl.shards {
		pl.shards[i].capacity = per
		if i < extra {
			pl.shards[i].capacity++
		}
		pl.shards[i].index = make(map[BlockID]*frame, pl.shards[i].capacity)
	}
	return pl
}

// Base returns the underlying store (its counters hold the device I/Os).
func (pl *Pool) Base() Store { return pl.base }

// PageSize returns the page size in bytes.
func (pl *Pool) PageSize() int { return pl.base.PageSize() }

// Hits returns the number of frame hits (reads and writes served without
// device I/O).
func (pl *Pool) Hits() int64 { return pl.hits.Load() }

// Misses returns the number of read misses (each cost one device read).
func (pl *Pool) Misses() int64 { return pl.misses.Load() }

// Evictions returns the number of frames recycled by the clock.
func (pl *Pool) Evictions() int64 { return pl.evicted.Load() }

// Overflows returns how often a miss found every frame of its lock shard
// pinned and grew a temporary overflow frame instead of evicting; a
// persistently rising value means the frame budget is too small for the
// concurrent pin working set.
func (pl *Pool) Overflows() int64 { return pl.overflows.Load() }

func (pl *Pool) shard(id BlockID) *poolShard {
	return &pl.shards[mixPool(uint64(id))&pl.mask]
}

// mixPool is the splitmix64 finalizer, spreading sequential block ids
// uniformly across pool shards.
func mixPool(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// frameFor returns the (pinned) frame holding page id, faulting it in on a
// miss. load is false for full-page overwrites, which need no device read.
// Called with sh.mu held.
func (pl *Pool) frameFor(sh *poolShard, id BlockID, load bool) (*frame, error) {
	if f, ok := sh.index[id]; ok {
		f.pins++
		f.ref = true
		pl.hits.Add(1)
		return f, nil
	}
	var f *frame
	if len(sh.frames) < sh.capacity {
		f = &frame{data: make([]byte, pl.base.PageSize())}
		sh.frames = append(sh.frames, f)
	} else {
		var err error
		if f, err = pl.evict(sh); err != nil {
			if !errors.Is(err, errAllPinned) {
				return nil, err
			}
			// Every frame is pinned by concurrent readers: grow a temporary
			// overflow frame rather than failing the miss (pinned frames are
			// never evicted; query paths have no error channel). The clock
			// reuses it once pins drain, so the shard stays at most
			// max-concurrent-pins frames over budget.
			pl.overflows.Add(1)
			f = &frame{data: make([]byte, pl.base.PageSize())}
			sh.frames = append(sh.frames, f)
		}
	}
	if load {
		pl.misses.Add(1)
		if err := pl.base.Read(id, f.data); err != nil {
			// Leave the frame unused (id zero) rather than caching garbage.
			f.id = NilBlock
			return nil, err
		}
	}
	f.id = id
	f.pins = 1
	f.ref = true
	f.dirty = false
	sh.index[id] = f
	return f, nil
}

// evict runs the clock over sh and returns an unpinned victim, written back
// first if dirty. Called with sh.mu held.
func (pl *Pool) evict(sh *poolShard) (*frame, error) {
	// Two full sweeps: the first clears reference bits, the second takes the
	// first unpinned frame. If both fail, every frame is pinned.
	for pass := 0; pass < 2*len(sh.frames); pass++ {
		f := sh.frames[sh.hand]
		sh.hand = (sh.hand + 1) % len(sh.frames)
		if f.pins > 0 {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		if f.dirty {
			if err := pl.base.Write(f.id, f.data); err != nil {
				return nil, err
			}
			f.dirty = false
		}
		delete(sh.index, f.id)
		pl.evicted.Add(1)
		return f, nil
	}
	return nil, errAllPinned
}

// View returns a pinned read-only view of page id: a hit serves the
// memory-resident frame with no device I/O, a miss faults the page in with
// one device read. The caller must Release(id) exactly once when done.
func (pl *Pool) View(id BlockID) ([]byte, error) {
	sh := pl.shard(id)
	sh.mu.Lock()
	f, err := pl.frameFor(sh, id, true)
	sh.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return f.data, nil
}

// Release unpins the frame holding page id (paired with View).
func (pl *Pool) Release(id BlockID) {
	sh := pl.shard(id)
	sh.mu.Lock()
	f, ok := sh.index[id]
	if !ok || f.pins <= 0 {
		sh.mu.Unlock()
		panic(fmt.Sprintf("disk: Release of unpinned page %d", id))
	}
	f.pins--
	sh.mu.Unlock()
}

// Read copies page id into buf through the pool.
func (pl *Pool) Read(id BlockID, buf []byte) error {
	if len(buf) != pl.base.PageSize() {
		return ErrPageSize
	}
	sh := pl.shard(id)
	sh.mu.Lock()
	f, err := pl.frameFor(sh, id, true)
	if err != nil {
		sh.mu.Unlock()
		return err
	}
	copy(buf, f.data)
	f.pins--
	sh.mu.Unlock()
	return nil
}

// Write stores buf into page id's frame (write-back: the device write is
// deferred to eviction or Flush). A full-page store needs no device read,
// so a Write miss faults in a frame without counting a read miss.
func (pl *Pool) Write(id BlockID, buf []byte) error {
	if len(buf) != pl.base.PageSize() {
		return ErrPageSize
	}
	if err := pl.base.Check(id); err != nil {
		return err
	}
	sh := pl.shard(id)
	sh.mu.Lock()
	f, err := pl.frameFor(sh, id, false)
	if err != nil {
		sh.mu.Unlock()
		return err
	}
	copy(f.data, buf)
	f.dirty = true
	f.pins--
	sh.mu.Unlock()
	return nil
}

// Alloc reserves a fresh page on the underlying device. Any stale frame for
// a reused block id is dropped (Free already invalidates, so this is a
// defensive no-op in normal operation).
func (pl *Pool) Alloc() BlockID {
	id := pl.base.Alloc()
	sh := pl.shard(id)
	sh.mu.Lock()
	if f, ok := sh.index[id]; ok {
		if f.pins > 0 {
			sh.mu.Unlock()
			panic(fmt.Sprintf("disk: Alloc reused page %d with a pinned stale frame", id))
		}
		f.id = NilBlock
		f.dirty = false
		delete(sh.index, id)
	}
	sh.mu.Unlock()
	return id
}

// Free invalidates the page's frame (dropping any dirty data — the page is
// gone) and releases the page on the device. Freeing a pinned page panics:
// a borrowed view would be left dangling.
func (pl *Pool) Free(id BlockID) error {
	sh := pl.shard(id)
	sh.mu.Lock()
	if f, ok := sh.index[id]; ok {
		if f.pins > 0 {
			sh.mu.Unlock()
			panic(fmt.Sprintf("disk: Free of pinned page %d", id))
		}
		f.id = NilBlock
		f.dirty = false
		delete(sh.index, id)
	}
	sh.mu.Unlock()
	return pl.base.Free(id)
}

// Flush writes every dirty frame back to the device, in frame order within
// each shard. Pinned frames are flushed too (their data is stable: writers
// are externally serialized).
func (pl *Pool) Flush() error {
	for i := range pl.shards {
		sh := &pl.shards[i]
		sh.mu.Lock()
		for _, f := range sh.frames {
			if f.id != NilBlock && f.dirty {
				if err := pl.base.Write(f.id, f.data); err != nil {
					sh.mu.Unlock()
					return err
				}
				f.dirty = false
			}
		}
		sh.mu.Unlock()
	}
	return nil
}

// PinCount returns the current pin count of page id's frame (0 when the
// page is not resident); tests assert pin balance with it.
func (pl *Pool) PinCount(id BlockID) int {
	sh := pl.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if f, ok := sh.index[id]; ok {
		return f.pins
	}
	return 0
}

// PinnedFrames returns the number of frames with a nonzero pin count;
// tests assert it returns to zero after every balanced View/Release pass.
func (pl *Pool) PinnedFrames() int {
	n := 0
	for i := range pl.shards {
		sh := &pl.shards[i]
		sh.mu.Lock()
		for _, f := range sh.frames {
			if f.id != NilBlock && f.pins > 0 {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// Resident returns the number of pages currently held in frames.
func (pl *Pool) Resident() int {
	n := 0
	for i := range pl.shards {
		sh := &pl.shards[i]
		sh.mu.Lock()
		n += len(sh.index)
		sh.mu.Unlock()
	}
	return n
}

var _ Device = (*Pager)(nil)
var _ Device = (*Pool)(nil)
