package disk

// WAL is a per-store append-only write-ahead log that closes the
// lose-since-last-checkpoint window: a manager logs every acknowledged
// mutation batch before applying it to its trees, and the open path replays
// the log tail idempotently on top of the checkpoint image, so a crash
// loses at most the single mutation that was mid-append.
//
// # Record format
//
// The file starts with a fixed 32-byte header and is followed by
// variable-length records:
//
//	header   {magic u64, gen u64, reserved u64, crc32c u32 over bytes [0,24), pad u32}
//	record   {magic u32, gen u64, lsn u64, len u32, crc32c u32, payload}
//
// The record CRC covers the first 24 header bytes plus the payload, so a
// torn append (short header, short payload, or garbage) is detected and the
// tail discarded — exactly the rollback journal's torn-tail rule. LSNs are
// assigned densely from 1 within a generation; a gap means a torn or
// corrupt record and also stops replay.
//
// # Generations and truncation
//
// The header's generation is the checkpoint sequence the records apply on
// top of. A checkpoint commit calls Reset(newSeq): the log is truncated and
// restamped, because everything it held is now captured by the checkpoint
// image. An open at sequence S replays the tail only when the header says
// generation S; any other generation is stale (the crash landed between the
// checkpoint's commit record and the log truncation) and is discarded by
// Reset — its records' effects are already inside the checkpoint.
//
// # Fsync boundary
//
// Append never syncs. Sync is a no-op except under FsyncAlways, matching
// the rollback journal's append semantics: process-crash durability needs
// write ordering only, power-loss durability needs the fsync. The shard
// layer's group-commit buffer calls Sync once per flushed group — one fsync
// per group — while a standalone manager syncs per operation.

import (
	"encoding/binary"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

const (
	wMagic       = 0x314c576864696363 // "ccidhWL1"
	wRecMagic    = 0x524c4157         // "WALR"
	walHeader    = 32
	walRecHeader = 28
	// walMaxRecord bounds a decoded record's claimed payload length so a
	// corrupt or fuzzed length field cannot drive a huge allocation.
	walMaxRecord = 1 << 24
)

// WAL is the append-only log. Open one with OpenWAL, then either Reset
// (fresh store) or Recover (reopen) before appending.
type WAL struct {
	f     *os.File
	path  string
	fsync FsyncPolicy

	mu  sync.Mutex
	gen uint64
	lsn uint64
	off int64 // end-of-log offset; appends land here

	budget atomic.Pointer[WriteBudget]

	appends, syncs, fwrites atomic.Int64
}

// OpenWAL opens (creating if absent) the log file at path. The returned WAL
// holds no generation yet: call Reset(gen) on a freshly created store or
// Recover(gen, fn) when reopening.
func OpenWAL(path string, fsync FsyncPolicy) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &WAL{f: f, path: path, fsync: fsync}, nil
}

// Path returns the log file's path.
func (w *WAL) Path() string { return w.path }

// SetWriteBudget shares a fault-injection budget with the log (nil
// disarms): log appends are file-level writes and a crash boundary exists
// at each one, exactly like the device's page and journal writes.
func (w *WAL) SetWriteBudget(b *WriteBudget) { w.budget.Store(b) }

// Appends returns the number of records successfully appended.
func (w *WAL) Appends() int64 { return w.appends.Load() }

// Syncs returns the number of fsync calls the log has issued.
func (w *WAL) Syncs() int64 { return w.syncs.Load() }

// FileWrites returns the total file-level write operations (header writes
// and record appends), the coordinate system of the crash sweeps.
func (w *WAL) FileWrites() int64 { return w.fwrites.Load() }

// write is the single funnel for log-file writes: it spends the
// fault-injection budget and lands the configured torn prefix of the write
// that exhausts it.
func (w *WAL) write(buf []byte, off int64) error {
	w.fwrites.Add(1)
	if b := w.budget.Load(); b != nil {
		if err := b.spend(); err != nil {
			if t := b.takeTorn(); t > 0 {
				if t > int64(len(buf)) {
					t = int64(len(buf))
				}
				_, _ = w.f.WriteAt(buf[:t], off)
			}
			return err
		}
	}
	_, err := w.f.WriteAt(buf, off)
	return err
}

// writeHeader stamps the 32-byte log header with gen.
func (w *WAL) writeHeader(gen uint64) error {
	var hdr [walHeader]byte
	binary.LittleEndian.PutUint64(hdr[0:], wMagic)
	binary.LittleEndian.PutUint64(hdr[8:], gen)
	binary.LittleEndian.PutUint32(hdr[24:], crc32.Checksum(hdr[:24], crcTable))
	return w.write(hdr[:], 0)
}

// Reset truncates the log and restamps it as generation gen — the
// truncation protocol a checkpoint commit runs once the new checkpoint
// image captures every logged mutation.
func (w *WAL) Reset(gen uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.resetLocked(gen)
}

func (w *WAL) resetLocked(gen uint64) error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if err := w.writeHeader(gen); err != nil {
		return err
	}
	w.gen = gen
	w.lsn = 0
	w.off = walHeader
	if w.fsync != FsyncNever {
		w.syncs.Add(1)
		return w.f.Sync()
	}
	return nil
}

// Append logs one mutation payload under the current generation. The
// record is durable in write order only; call Sync at the group-commit
// boundary for FsyncAlways durability.
func (w *WAL) Append(payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	rec := make([]byte, walRecHeader+len(payload))
	binary.LittleEndian.PutUint32(rec[0:], wRecMagic)
	binary.LittleEndian.PutUint64(rec[4:], w.gen)
	binary.LittleEndian.PutUint64(rec[12:], w.lsn+1)
	binary.LittleEndian.PutUint32(rec[20:], uint32(len(payload)))
	copy(rec[walRecHeader:], payload)
	crc := crc32.Update(0, crcTable, rec[:24])
	crc = crc32.Update(crc, crcTable, payload)
	binary.LittleEndian.PutUint32(rec[24:], crc)
	if err := w.write(rec, w.off); err != nil {
		return err
	}
	w.lsn++
	w.off += int64(len(rec))
	w.appends.Add(1)
	return nil
}

// Sync makes appended records durable. A no-op except under FsyncAlways:
// the other policies rely on write ordering (process-crash durability),
// matching the rollback journal's append semantics.
func (w *WAL) Sync() error {
	if w.fsync != FsyncAlways {
		return nil
	}
	w.syncs.Add(1)
	return w.f.Sync()
}

// Recover replays the log tail on top of checkpoint generation gen: every
// valid record's payload is handed to fn in append order, the torn tail (if
// any) is truncated, and subsequent appends continue the surviving LSN
// sequence. A log stamped with any other generation is stale — its records'
// effects are already inside checkpoint gen — and is discarded via Reset.
// An error from fn aborts the replay with the log untouched, so a failed
// (crashed) replay can be retried from scratch on the next open.
func (w *WAL) Recover(gen uint64, fn func(payload []byte) error) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()

	var hdr [walHeader]byte
	n, err := w.f.ReadAt(hdr[:], 0)
	if (err != nil && err != io.EOF) && n < walHeader {
		return 0, err
	}
	if n < walHeader ||
		binary.LittleEndian.Uint64(hdr[0:]) != wMagic ||
		crc32.Checksum(hdr[:24], crcTable) != binary.LittleEndian.Uint32(hdr[24:]) ||
		binary.LittleEndian.Uint64(hdr[8:]) != gen {
		return 0, w.resetLocked(gen)
	}

	var recHdr [walRecHeader]byte
	off := int64(walHeader)
	count := 0
	lsn := uint64(0)
	for {
		n, err := w.f.ReadAt(recHdr[:], off)
		if n < walRecHeader {
			break // torn tail
		}
		if err != nil && err != io.EOF {
			return count, err
		}
		if binary.LittleEndian.Uint32(recHdr[0:]) != wRecMagic ||
			binary.LittleEndian.Uint64(recHdr[4:]) != gen ||
			binary.LittleEndian.Uint64(recHdr[12:]) != lsn+1 {
			break
		}
		l := int(binary.LittleEndian.Uint32(recHdr[20:]))
		if l < 0 || l > walMaxRecord {
			break
		}
		payload := make([]byte, l)
		if n, _ := w.f.ReadAt(payload, off+walRecHeader); n < l {
			break // torn payload
		}
		crc := crc32.Update(0, crcTable, recHdr[:24])
		crc = crc32.Update(crc, crcTable, payload)
		if crc != binary.LittleEndian.Uint32(recHdr[24:]) {
			break
		}
		if err := fn(payload); err != nil {
			return count, err
		}
		count++
		lsn++
		off += int64(walRecHeader + l)
	}
	// Discard the torn tail and continue the surviving sequence.
	if err := w.f.Truncate(off); err != nil {
		return count, err
	}
	w.gen = gen
	w.lsn = lsn
	w.off = off
	if w.fsync != FsyncNever {
		w.syncs.Add(1)
		if err := w.f.Sync(); err != nil {
			return count, err
		}
	}
	return count, nil
}

// Close closes the log file. Like the device, it does not checkpoint or
// truncate: recovery semantics are the whole point.
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
