package disk

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// collectWAL reopens the log at path and replays generation gen, returning
// the recovered payloads.
func collectWAL(t *testing.T, path string, gen uint64) [][]byte {
	t.Helper()
	w, err := OpenWAL(path, FsyncCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var got [][]byte
	if _, err := w.Recover(gen, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path, FsyncCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(7); err != nil {
		t.Fatal(err)
	}
	want := [][]byte{{1, 2, 3}, {}, bytes.Repeat([]byte{0xAB}, 1000), {42}}
	for _, p := range want {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if w.Appends() != int64(len(want)) {
		t.Fatalf("Appends() = %d, want %d", w.Appends(), len(want))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got := collectWAL(t, path, 7)
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %x, want %x", i, got[i], want[i])
		}
	}

	// Appending after a recover continues the LSN sequence.
	w, err = OpenWAL(path, FsyncCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Recover(7, func([]byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte{9, 9}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if got := collectWAL(t, path, 7); len(got) != len(want)+1 {
		t.Fatalf("after continued append: %d records, want %d", len(got), len(want)+1)
	}
}

// TestWALReplayIdempotence is the replay-idempotence property: recovering
// the same log repeatedly yields the identical payload sequence every
// time, and recovery itself does not change what a later recovery sees —
// a crash DURING replay (which applies a prefix and reopens) simply
// replays from scratch.
func TestWALReplayIdempotence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	rng := rand.New(rand.NewSource(71))
	w, err := OpenWAL(path, FsyncCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(3); err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 200; i++ {
		p := make([]byte, rng.Intn(64))
		rng.Read(p)
		want = append(want, p)
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	for round := 0; round < 3; round++ {
		got := collectWAL(t, path, 3)
		if len(got) != len(want) {
			t.Fatalf("round %d: %d records, want %d", round, len(got), len(want))
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("round %d: record %d differs", round, i)
			}
		}
	}
}

// TestWALTornTail: a crash mid-append leaves a partial record; recovery
// must keep every complete record, drop the tail, and let appends continue.
func TestWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path, FsyncCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append([]byte{byte(i), 10, 20, 30}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// Tear the last record: cut 3 bytes off the file.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	got := collectWAL(t, path, 1)
	if len(got) != 4 {
		t.Fatalf("recovered %d records after torn tail, want 4", len(got))
	}
	// The torn tail was truncated: a fresh append lands a valid record 5.
	w, err = OpenWAL(path, FsyncCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Recover(1, func([]byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte{99}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	got = collectWAL(t, path, 1)
	if len(got) != 5 || !bytes.Equal(got[4], []byte{99}) {
		t.Fatalf("after append over torn tail: %d records, last %x", len(got), got[len(got)-1])
	}
}

// TestWALStaleGeneration: a log stamped with a different generation than
// the checkpoint being opened is discarded — its effects are already
// inside the checkpoint image.
func TestWALStaleGeneration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path, FsyncCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(3); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte{1}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	if got := collectWAL(t, path, 4); len(got) != 0 {
		t.Fatalf("stale-generation recovery replayed %d records, want 0", len(got))
	}
	// The discard restamped the log as generation 4.
	if got := collectWAL(t, path, 4); len(got) != 0 {
		t.Fatalf("restamped log replayed %d records, want 0", len(got))
	}
}

// TestWALCorruptRecordStopsReplay: a flipped byte inside a record fails
// its CRC; replay keeps the prefix before it and truncates the rest.
func TestWALCorruptRecordStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path, FsyncCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := w.Append(bytes.Repeat([]byte{byte(i)}, 16)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// Flip one payload byte of record 3 (records are walRecHeader+16 each).
	recSize := int64(walRecHeader + 16)
	off := int64(walHeader) + 3*recSize + walRecHeader + 7
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got := collectWAL(t, path, 1)
	if len(got) != 3 {
		t.Fatalf("recovered %d records past corruption, want 3", len(got))
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(walHeader) + 3*recSize; st.Size() != want {
		t.Fatalf("log size after truncation = %d, want %d", st.Size(), want)
	}
}

// TestWALReplayErrorRetryable: an error from the replay callback (a crash
// during replay) aborts with the log untouched, so the next open replays
// everything from scratch.
func TestWALReplayErrorRetryable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path, FsyncCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := w.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	w, err = OpenWAL(path, FsyncCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("crash mid-replay")
	n := 0
	count, err := w.Recover(2, func([]byte) error {
		if n == 2 {
			return boom
		}
		n++
		return nil
	})
	if !errors.Is(err, boom) || count != 2 {
		t.Fatalf("Recover = (%d, %v), want (2, boom)", count, err)
	}
	w.Close()

	if got := collectWAL(t, path, 2); len(got) != 4 {
		t.Fatalf("retried recovery replayed %d records, want 4", len(got))
	}
}

// TestWALBudgetTornAppend: the append that exhausts a write budget fails
// with ErrInjectedFault, optionally landing a torn prefix; recovery sees
// only the complete records.
func TestWALBudgetTornAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path, FsyncCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(1); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	b := NewWriteBudget(0)
	b.SetTornBytes(10) // partial record header lands on media
	w.SetWriteBudget(b)
	if err := w.Append([]byte{2, 2, 2}); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("append past budget: %v, want ErrInjectedFault", err)
	}
	w.SetWriteBudget(nil)
	w.Close()

	got := collectWAL(t, path, 1)
	if len(got) != 1 || !bytes.Equal(got[0], []byte{1, 1, 1}) {
		t.Fatalf("recovered %d records after torn faulted append, want the 1 complete one", len(got))
	}
}

// TestWALCrashEveryWrite sweeps a crash boundary across every file-level
// write of an append workload: for each k, the first k writes survive and
// recovery must yield a dense prefix of the appended payloads.
func TestWALCrashEveryWrite(t *testing.T) {
	const ops = 40
	// Pass 0 measures the total writes; subsequent passes crash at k.
	total := int64(-1)
	for k := int64(0); ; k++ {
		path := filepath.Join(t.TempDir(), fmt.Sprintf("wal%d.log", k))
		w, err := OpenWAL(path, FsyncCheckpoint)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Reset(1); err != nil {
			t.Fatal(err)
		}
		acked := 0
		if total >= 0 {
			w.SetWriteBudget(NewWriteBudget(k))
		}
		for i := 0; i < ops; i++ {
			if err := w.Append([]byte{byte(i), byte(i >> 8)}); err != nil {
				if !errors.Is(err, ErrInjectedFault) {
					t.Fatalf("k=%d op=%d: %v", k, i, err)
				}
				break
			}
			acked++
		}
		writes := w.FileWrites()
		w.Close()

		got := collectWAL(t, path, 1)
		// Recovery must include every acked append and at most the one
		// in-flight record (none here: an append either returns nil and is
		// fully on media, or fails and its record is torn or absent).
		if len(got) < acked {
			t.Fatalf("k=%d: recovered %d records, %d were acked", k, len(got), acked)
		}
		for i, p := range got {
			if want := []byte{byte(i), byte(i >> 8)}; !bytes.Equal(p, want) {
				t.Fatalf("k=%d: record %d = %x, want %x", k, i, p, want)
			}
		}
		if total < 0 {
			total = writes // fault-free pass measured the sweep length
			continue
		}
		if k >= total {
			break
		}
	}
}
