package disk

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// TestFileDeviceBitFlipDetected: a single flipped bit on media fails the
// page's CRC at the next read as a typed ErrCorrupt, clean neighbours stay
// readable, and the error carries the page coordinates.
func TestFileDeviceBitFlipDetected(t *testing.T) {
	const ps = 128
	path := filepath.Join(t.TempDir(), "dev.pages")
	d, err := OpenFile(path, FileOptions{PageSize: ps})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, ps)
	var ids []BlockID
	for i := 0; i < 3; i++ {
		id := d.Alloc()
		for j := range buf {
			buf[j] = byte(i*31 + j)
		}
		if err := d.Write(id, buf); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := d.Checkpoint([]byte("meta")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	if err := FlipBit(path, ps, ids[1], 333); err != nil {
		t.Fatal(err)
	}

	d, err = OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatalf("open after data-page bit flip: %v (the flip is detected at read time)", err)
	}
	defer d.Close()

	err = d.Read(ids[1], buf)
	var corrupt ErrCorrupt
	if !errors.As(err, &corrupt) {
		t.Fatalf("Read(flipped page) = %v, want ErrCorrupt", err)
	}
	if corrupt.Page != ids[1] || corrupt.Path != path {
		t.Fatalf("ErrCorrupt coordinates = %+v, want page %d in %s", corrupt, ids[1], path)
	}
	if _, err := d.View(ids[1]); !errors.As(err, &corrupt) {
		t.Fatalf("View(flipped page) did not surface ErrCorrupt")
	}
	// Clean pages still read and verify.
	for _, id := range []BlockID{ids[0], ids[2]} {
		if err := d.Read(id, buf); err != nil {
			t.Fatalf("Read(clean page %d) after neighbour flip: %v", id, err)
		}
	}
	// Overwriting the rotten page refreshes its CRC and heals it.
	for j := range buf {
		buf[j] = 0xEE
	}
	if err := d.Write(ids[1], buf); err != nil {
		t.Fatal(err)
	}
	if err := d.Read(ids[1], buf); err != nil {
		t.Fatalf("Read after healing overwrite: %v", err)
	}
}

// TestFileDeviceV1Migration: a version-1 image (no CRC sidecar) opens
// cleanly — the open migrates it in place, computing every live page's CRC
// — and from then on enjoys full corruption detection.
func TestFileDeviceV1Migration(t *testing.T) {
	const ps = 128
	path := filepath.Join(t.TempDir(), "dev.pages")
	d, err := OpenFile(path, FileOptions{PageSize: ps})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, ps)
	var ids []BlockID
	for i := 0; i < 4; i++ {
		id := d.Alloc()
		for j := range buf {
			buf[j] = byte(i + j)
		}
		if err := d.Write(id, buf); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := d.Checkpoint([]byte("m")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Regress the image to version 1: rewrite the header and drop the
	// sidecar, exactly what a pre-CRC build left on disk.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	hdr := make([]byte, ps)
	binary.LittleEndian.PutUint64(hdr[0:], fdMagic)
	binary.LittleEndian.PutUint32(hdr[8:], fdVersionV1)
	binary.LittleEndian.PutUint32(hdr[12:], ps)
	binary.LittleEndian.PutUint32(hdr[16:], crc32.Checksum(hdr[:16], crcTable))
	if _, err := f.WriteAt(hdr, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := os.Remove(path + ".crc"); err != nil {
		t.Fatal(err)
	}

	// First open migrates: pages read clean, and the header is now v2.
	d, err = OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatalf("open of v1 image: %v", err)
	}
	for i, id := range ids {
		if err := d.Read(id, buf); err != nil {
			t.Fatalf("post-migration read of page %d: %v", id, err)
		}
		if buf[0] != byte(i) {
			t.Fatalf("post-migration content of page %d = %d, want %d", id, buf[0], i)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 12)
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	rf.ReadAt(raw, 0)
	rf.Close()
	if v := binary.LittleEndian.Uint32(raw[8:]); v != fdVersion {
		t.Fatalf("header version after migration = %d, want %d", v, fdVersion)
	}

	// The migrated sidecar actually protects: rot a page, reopen, detect.
	if err := FlipBit(path, ps, ids[2], 7); err != nil {
		t.Fatal(err)
	}
	d, err = OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var corrupt ErrCorrupt
	if err := d.Read(ids[2], buf); !errors.As(err, &corrupt) {
		t.Fatalf("post-migration flip read = %v, want ErrCorrupt", err)
	}
}
