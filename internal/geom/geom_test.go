package geom

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestIntervalPointRoundTrip(t *testing.T) {
	f := func(lo, hi int64, id uint64) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		iv := Interval{Lo: lo, Hi: hi, ID: id}
		p := iv.ToPoint()
		if !p.AboveDiagonal() {
			return false
		}
		return PointToInterval(p) == iv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The heart of Proposition 2.2: an interval contains q iff its endpoint
// point lies in the diagonal corner query anchored at (q, q).
func TestStabbingCornerEquivalence(t *testing.T) {
	f := func(lo, hi, q int64) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		iv := Interval{Lo: lo, Hi: hi}
		return iv.Contains(q) == CornerQuery{A: q}.Contains(iv.ToPoint())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalIntersectsSymmetric(t *testing.T) {
	f := func(a1, a2, b1, b2 int64) bool {
		if a1 > a2 {
			a1, a2 = a2, a1
		}
		if b1 > b2 {
			b1, b2 = b2, b1
		}
		a := Interval{Lo: a1, Hi: a2}
		b := Interval{Lo: b1, Hi: b2}
		return a.Intersects(b) == b.Intersects(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalIntersectsDefinition(t *testing.T) {
	cases := []struct {
		a, b Interval
		want bool
	}{
		{Interval{Lo: 0, Hi: 5}, Interval{Lo: 5, Hi: 9}, true},    // touch at endpoint
		{Interval{Lo: 0, Hi: 4}, Interval{Lo: 5, Hi: 9}, false},   // disjoint
		{Interval{Lo: 0, Hi: 10}, Interval{Lo: 3, Hi: 4}, true},   // containment
		{Interval{Lo: 3, Hi: 3}, Interval{Lo: 3, Hi: 3}, true},    // degenerate
		{Interval{Lo: -5, Hi: -1}, Interval{Lo: 0, Hi: 0}, false}, // negative coords
	}
	for _, c := range cases {
		if got := c.a.Intersects(c.b); got != c.want {
			t.Errorf("%v ∩ %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCornerQueryIsSpecialThreeSided(t *testing.T) {
	// A diagonal corner query at a equals the 3-sided query (-inf, a] x [a, inf).
	f := func(x, y, a int64) bool {
		p := Point{X: x, Y: y}
		ts := ThreeSidedQuery{X1: -1 << 62, X2: a, Y: a}
		if x < -1<<62 {
			return true
		}
		return CornerQuery{A: a}.Contains(p) == ts.Contains(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThreeSidedIsSpecialRange(t *testing.T) {
	f := func(x, y, x1, x2, y0 int64) bool {
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		p := Point{X: x, Y: y}
		ts := ThreeSidedQuery{X1: x1, X2: x2, Y: y0}
		rq := RangeQuery{X1: x1, X2: x2, Y1: y0, Y2: 1<<63 - 1}
		return ts.Contains(p) == rq.Contains(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortByX(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ps := make([]Point, 200)
	for i := range ps {
		ps[i] = Point{X: rng.Int63n(50), Y: rng.Int63n(50), ID: uint64(i)}
	}
	SortByX(ps)
	if !sort.SliceIsSorted(ps, func(i, j int) bool { return Less(ps[i], ps[j]) }) {
		t.Fatal("SortByX did not sort")
	}
}

func TestSortByYDesc(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ps := make([]Point, 200)
	for i := range ps {
		ps[i] = Point{X: rng.Int63n(50), Y: rng.Int63n(50), ID: uint64(i)}
	}
	SortByYDesc(ps)
	for i := 1; i < len(ps); i++ {
		if ps[i-1].Y < ps[i].Y {
			t.Fatalf("not descending at %d: %v %v", i, ps[i-1], ps[i])
		}
	}
}

func TestLessIsStrictWeakOrder(t *testing.T) {
	f := func(ax, ay int64, aid uint64, bx, by int64, bid uint64) bool {
		a := Point{X: ax, Y: ay, ID: aid}
		b := Point{X: bx, Y: by, ID: bid}
		if a == b {
			return !Less(a, b) && !Less(b, a)
		}
		return Less(a, b) != Less(b, a) // totality on distinct points
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{Name: 1, X1: 0, Y1: 0, X2: 10, Y2: 10}
	cases := []struct {
		b    Rect
		want bool
	}{
		{Rect{Name: 2, X1: 5, Y1: 5, X2: 15, Y2: 15}, true},
		{Rect{Name: 3, X1: 10, Y1: 10, X2: 20, Y2: 20}, true}, // corner touch
		{Rect{Name: 4, X1: 11, Y1: 0, X2: 20, Y2: 10}, false},
		{Rect{Name: 5, X1: 2, Y1: 2, X2: 3, Y2: 3}, true}, // containment
		{Rect{Name: 6, X1: 0, Y1: 11, X2: 10, Y2: 12}, false},
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("a ∩ %v = %v, want %v", c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("asymmetric intersection for %v", c.b)
		}
	}
}

func TestCollectAndDedup(t *testing.T) {
	var got []Point
	emit := Collect(&got)
	emit(Point{ID: 3})
	emit(Point{ID: 1})
	emit(Point{ID: 3})
	ids := DedupIDs(got)
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("DedupIDs = %v", ids)
	}
}

func TestEmitEarlyStopContract(t *testing.T) {
	// Emit returning false means "stop": Collect never does, documented here.
	var got []Point
	emit := Collect(&got)
	if !emit(Point{}) {
		t.Fatal("Collect emit should return true")
	}
}
