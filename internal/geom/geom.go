// Package geom defines the planar point, interval and query types shared by
// every index structure in this repository, together with the reductions of
// Section 2 of the paper:
//
//   - an interval [lo,hi] maps to the point (lo,hi) above the diagonal y=x
//     (Proposition 2.2, Fig 3);
//   - a stabbing query at q maps to the diagonal corner query anchored at
//     (q,q), i.e. report all points with X <= q and Y >= q;
//   - a 3-sided query is [X1,X2] x [Y,inf) (Section 4, Fig 1).
//
// All comparisons are inclusive. Coordinates are int64; identifiers uint64.
package geom

import (
	"fmt"
	"sort"
)

// Point is a planar point with a record identifier. For interval workloads,
// X is the left endpoint and Y the right endpoint of an interval.
type Point struct {
	X, Y int64
	ID   uint64
}

func (p Point) String() string { return fmt.Sprintf("(%d,%d;#%d)", p.X, p.Y, p.ID) }

// AboveDiagonal reports whether p satisfies the metablock tree input
// invariant Y >= X.
func (p Point) AboveDiagonal() bool { return p.Y >= p.X }

// Less orders points by (X, Y, ID). It is the canonical total order used by
// vertical blockings and by tests that compare result sets.
func Less(a, b Point) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	if a.Y != b.Y {
		return a.Y < b.Y
	}
	return a.ID < b.ID
}

// YDescLess orders points by decreasing Y, breaking ties by (X, ID). It is
// the order used by horizontal blockings, which store the B points with the
// largest Y values in the first block (Section 3.1, Fig 9).
func YDescLess(a, b Point) bool {
	if a.Y != b.Y {
		return a.Y > b.Y
	}
	if a.X != b.X {
		return a.X < b.X
	}
	return a.ID < b.ID
}

// SortByX sorts points by the canonical (X, Y, ID) order.
func SortByX(ps []Point) {
	sort.Slice(ps, func(i, j int) bool { return Less(ps[i], ps[j]) })
}

// SortByYDesc sorts points by decreasing Y.
func SortByYDesc(ps []Point) {
	sort.Slice(ps, func(i, j int) bool { return YDescLess(ps[i], ps[j]) })
}

// CornerQuery is a diagonal corner query: the corner lies at (A, A) on the
// line y = x, and the query region is the quarter plane above and to the
// left of the corner (Fig 1).
type CornerQuery struct {
	A int64
}

// Contains reports whether p lies in the query region X <= A and Y >= A.
func (q CornerQuery) Contains(p Point) bool { return p.X <= q.A && p.Y >= q.A }

// ThreeSidedQuery is the region [X1, X2] x [Y, +inf).
type ThreeSidedQuery struct {
	X1, X2 int64 // X1 <= X2
	Y      int64
}

// Contains reports whether p lies in the query region.
func (q ThreeSidedQuery) Contains(p Point) bool {
	return p.X >= q.X1 && p.X <= q.X2 && p.Y >= q.Y
}

// Valid reports whether X1 <= X2.
func (q ThreeSidedQuery) Valid() bool { return q.X1 <= q.X2 }

// RangeQuery is a general (4-sided) two-dimensional range query
// [X1,X2] x [Y1,Y2]. Only baselines answer these directly; the paper's
// structures answer its special cases.
type RangeQuery struct {
	X1, X2 int64
	Y1, Y2 int64
}

// Contains reports whether p lies in the closed rectangle.
func (q RangeQuery) Contains(p Point) bool {
	return p.X >= q.X1 && p.X <= q.X2 && p.Y >= q.Y1 && p.Y <= q.Y2
}

// Interval is a closed interval [Lo, Hi] with an identifier.
type Interval struct {
	Lo, Hi int64
	ID     uint64
}

func (iv Interval) String() string { return fmt.Sprintf("[%d,%d;#%d]", iv.Lo, iv.Hi, iv.ID) }

// Valid reports whether Lo <= Hi.
func (iv Interval) Valid() bool { return iv.Lo <= iv.Hi }

// Contains reports whether the closed interval contains q.
func (iv Interval) Contains(q int64) bool { return iv.Lo <= q && q <= iv.Hi }

// Intersects reports whether two closed intervals share a point.
func (iv Interval) Intersects(other Interval) bool {
	return iv.Lo <= other.Hi && other.Lo <= iv.Hi
}

// ToPoint maps the interval to its endpoint representation (Lo, Hi) above
// the diagonal (Proposition 2.2).
func (iv Interval) ToPoint() Point { return Point{X: iv.Lo, Y: iv.Hi, ID: iv.ID} }

// PointToInterval is the inverse of Interval.ToPoint.
func PointToInterval(p Point) Interval { return Interval{Lo: p.X, Hi: p.Y, ID: p.ID} }

// Rect is a named axis-aligned rectangle, used by the CQL rectangle
// intersection example (Example 2.1, Fig 2).
type Rect struct {
	Name           uint64
	X1, Y1, X2, Y2 int64 // X1 <= X2, Y1 <= Y2
}

// Intersects reports whether two closed rectangles share a point.
func (r Rect) Intersects(s Rect) bool {
	return r.X1 <= s.X2 && s.X1 <= r.X2 && r.Y1 <= s.Y2 && s.Y1 <= r.Y2
}

// Emit receives reported points during a query. Returning false stops the
// enumeration early.
type Emit func(Point) bool

// Collect returns an Emit that appends to the given slice.
func Collect(dst *[]Point) Emit {
	return func(p Point) bool {
		*dst = append(*dst, p)
		return true
	}
}

// DedupIDs returns the sorted distinct IDs from ps; a test helper shared by
// oracle comparisons.
func DedupIDs(ps []Point) []uint64 {
	ids := make([]uint64, 0, len(ps))
	for _, p := range ps {
		ids = append(ids, p.ID)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:0]
	var last uint64
	for i, id := range ids {
		if i == 0 || id != last {
			out = append(out, id)
			last = id
		}
	}
	return out
}
