package threeside

import (
	"sort"

	"ccidx/internal/disk"
	"ccidx/internal/geom"
)

// Batched 3-sided queries — the Lemma 4.3 mirror of the diagonal tree's
// DiagonalQueryBatch (see core/querybatch.go for the full design notes).
// A batch descends in one shared traversal: every control blob on the
// union of search paths is loaded once per batch, every blocking page and
// TS prefix is scanned once per group of queries needing it, and TD update
// blocks are scanned once per node per batch. Per-metablock EPST accesses
// (corner metablocks, divergence unions, TD structures) stay per-query:
// they are O(log2 B + t'/B) point lookups inside one metablock, the part
// the paper already charges to the query's own output.
//
// The sharing is invisible to results for the same reason as in the
// diagonal tree: each query keeps exactly one organisation per metablock,
// the offer funnel re-checks the full query predicate, and blocking pages
// a query's sequential scan would skip contain no points satisfying it.

// EmitBatch receives results of a batched query: qi is the position of the
// answered query in the batch. Returning false stops that query only.
type EmitBatch func(qi int, p geom.Point) bool

type visitReq struct {
	st           *qstate
	reportStored bool
}

type batchChildReq struct {
	qi  int
	rep bool
}

// nodeScratch3 is the pooled per-node scratch of a batched visit.
type nodeScratch3 struct {
	classes []class3
	direct  []bool

	anchorR   [][]int // per child: queries anchored at it with TSR (left path)
	anchorL   [][]int // mirror with TSL (right path)
	childReqs [][]batchChildReq
	repOnly   [][]int
	vr        [][]visitReq

	grpSts  []*qstate
	covered []*qstate
	hGroup  []*qstate
	vGroup  []*qstate
	tdEmits []func(rec) bool
}

func (t *Tree) getScratch() *nodeScratch3 {
	if sc, ok := t.bscratch.Get().(*nodeScratch3); ok {
		return sc
	}
	return &nodeScratch3{}
}

func (t *Tree) putScratch(sc *nodeScratch3) { t.bscratch.Put(sc) }

func classesFor(dst []class3, n int) []class3 {
	if cap(dst) >= n {
		dst = dst[:n]
		clear(dst)
		return dst
	}
	return make([]class3, n)
}

func boolsFor(dst []bool, n int) []bool {
	if cap(dst) >= n {
		dst = dst[:n]
		clear(dst)
		return dst
	}
	return make([]bool, n)
}

func growLists[T any](dst [][]T, n int) [][]T {
	if cap(dst) < n {
		nd := make([][]T, n)
		copy(nd, dst[:cap(dst)])
		dst = nd
	} else {
		dst = dst[:n]
	}
	for i := range dst {
		dst[i] = dst[i][:0]
	}
	return dst
}

// QueryBatch answers a batch of 3-sided queries in one shared traversal;
// per query, the reported multiset is exactly what Query(qs[qi], ...)
// reports. Read-only: batches may run concurrently with other queries.
func (t *Tree) QueryBatch(qs []geom.ThreeSidedQuery, emit EmitBatch) {
	if len(qs) == 0 {
		return
	}
	sts := make([]qstate, len(qs))
	reqs := make([]visitReq, 0, len(qs))
	for i, q := range qs {
		if !q.Valid() {
			continue
		}
		st := &sts[i]
		st.q = q
		qi := i
		st.emit = func(p geom.Point) bool { return emit(qi, p) }
		if t.deadCount > 0 {
			st.dead = t.dead
		}
		reqs = append(reqs, visitReq{st: st, reportStored: true})
	}
	if len(reqs) == 0 {
		return
	}
	sort.SliceStable(reqs, func(i, j int) bool {
		a, b := reqs[i].st.q, reqs[j].st.q
		if a.X1 != b.X1 {
			return a.X1 < b.X1
		}
		return a.X2 < b.X2
	})

	f := t.getFrame()
	m := t.loadCtrlFrame(t.root, f)
	t.scanUpd(m.upd, func(r rec) bool {
		for i := range reqs {
			reqs[i].st.offer(r.pt)
		}
		return true
	})
	t.visitBatchLoaded(f, reqs)
	t.putFrame(f)
}

func (t *Tree) visitBatchLoaded(f *ctrlFrame, reqs []visitReq) {
	sc := t.getScratch()
	grp := sc.grpSts[:0]
	for _, r := range reqs {
		if r.reportStored && !r.st.stopped {
			grp = append(grp, r.st)
		}
	}
	sc.grpSts = grp
	t.reportStored3Batch(&f.m, grp, sc)
	if len(f.m.children) > 0 {
		t.processChildren3Batch(f, reqs, sc)
	}
	t.putScratch(sc)
}

// reportStored3Batch reports m's stored points to every query in sts,
// grouped by the organisation reportStored3 would pick.
func (t *Tree) reportStored3Batch(m *metaCtrl, sts []*qstate, sc *nodeScratch3) {
	if m.count == 0 || !m.bb.valid || len(sts) == 0 {
		return
	}
	hGroup := sc.hGroup[:0]
	vGroup := sc.vGroup[:0]
	for _, st := range sts {
		if st.stopped {
			continue
		}
		q := st.q
		if m.bb.maxY < q.Y || m.bb.maxX < q.X1 || m.bb.minX > q.X2 {
			continue
		}
		contained := m.bb.minX >= q.X1 && m.bb.maxX <= q.X2
		switch {
		case m.bb.minY >= q.Y && contained:
			hGroup = append(hGroup, st) // dump-all degenerates below
		case m.bb.minY >= q.Y:
			vGroup = append(vGroup, st)
		case contained:
			hGroup = append(hGroup, st)
		default:
			// Corner metablock (at most two per query): its own 3-sided
			// structure, a per-query in-metablock access.
			t.queryEPST(m.pst, q.X1, q.X2, q.Y, st.offerRecFn())
		}
	}
	if len(hGroup) > 0 {
		t.scanH3Batch(m.hblocks, hGroup)
	}
	if len(vGroup) > 0 {
		t.scanV3Batch(m.vblocks, vGroup)
	}
	sc.hGroup = hGroup[:0]
	sc.vGroup = vGroup[:0]
}

// offerRecFn returns the rec-level offer funnel, reusing the bound closure
// if the state already has one.
func (st *qstate) offerRecFn() func(rec) bool {
	if st.offerRec == nil {
		st.offerRec = func(r rec) bool { return st.offer(r.pt) }
	}
	return st.offerRec
}

// scanH3Batch runs a grouped top-down scan of a horizontal blocking (or TS
// prefix): each block is read once per batch while some member's
// sequential scan would still be on it.
func (t *Tree) scanH3Batch(blocks []chunkRef, grp []*qstate) {
	for _, st := range grp {
		st.scanDone = false
	}
	fn := func(p geom.Point) bool {
		for _, st := range grp {
			st.offer(p)
		}
		return true
	}
	for _, hb := range blocks {
		need := false
		for _, st := range grp {
			if !st.stopped && !st.scanDone && st.q.Y <= hb.maxY {
				need = true
				break
			}
		}
		if !need {
			break // maxY non-increasing down the blocking
		}
		t.scanPoints(hb.id, fn)
		for _, st := range grp {
			if hb.minY < st.q.Y {
				st.scanDone = true
			}
		}
	}
}

// scanV3Batch runs a grouped left-to-right scan of a vertical blocking for
// queries whose boxes sit above their bottom: each member needs the blocks
// overlapping [X1, X2].
func (t *Tree) scanV3Batch(blocks []chunkRef, grp []*qstate) {
	maxX2 := int64(-1 << 63)
	for _, st := range grp {
		if st.q.X2 > maxX2 {
			maxX2 = st.q.X2
		}
	}
	fn := func(p geom.Point) bool {
		for _, st := range grp {
			st.offer(p)
		}
		return true
	}
	for _, vb := range blocks {
		if vb.minX > maxX2 {
			break
		}
		need := false
		for _, st := range grp {
			if !st.stopped && vb.minX <= st.q.X2 && vb.maxX >= st.q.X1 {
				need = true
				break
			}
		}
		if need {
			t.scanPoints(vb.id, fn)
		}
	}
}

// processChildren3Batch mirrors processChildren3 with per-batch sharing:
// one ctrl load per child per batch, one TS prefix scan per anchor group,
// one TD update-block scan per node.
func (t *Tree) processChildren3Batch(f *ctrlFrame, reqs []visitReq, sc *nodeScratch3) {
	m := &f.m
	n := len(m.children)
	k := len(reqs)
	sc.classes = classesFor(sc.classes, k*n)
	sc.direct = boolsFor(sc.direct, k*n)
	sc.anchorR = growLists(sc.anchorR, n)
	sc.anchorL = growLists(sc.anchorL, n)
	sc.childReqs = growLists(sc.childReqs, n)
	sc.repOnly = growLists(sc.repOnly, n)
	sc.vr = growLists(sc.vr, n)
	direct := sc.direct

	// 1. Classify and route the per-query branch decisions; boundary-path
	// queries with a straddling anchor are bucketed per (anchor, side) for
	// the shared TS handling of phase 2.
	for qi, r := range reqs {
		st := r.st
		if st.stopped {
			continue
		}
		q := st.q
		row := sc.classes[qi*n : qi*n+n]
		both, bl, br := -1, -1, -1
		for i, c := range m.children {
			row[i] = classify3(c, q)
			switch row[i] {
			case c3Both:
				both = i
			case c3Left:
				bl = i
			case c3Right:
				br = i
			}
		}
		switch {
		case both >= 0:
			direct[qi*n+both] = true
			sc.childReqs[both] = append(sc.childReqs[both], batchChildReq{qi, true})

		case bl >= 0 && br >= 0:
			// Divergence node (case 4): stored points of the strictly-between
			// children come from the child-union 3-sided structure in one
			// per-query access.
			if !t.queryEPST(m.union, q.X1, q.X2, q.Y, func(r rec) bool {
				if s := tdSlot(r.aux); s == bl || s == br {
					return true // boundary children report their own stored
				}
				return st.offer(r.pt)
			}) {
				continue
			}
			for i := 0; i < n; i++ {
				if row[i] == c3Inside {
					sc.childReqs[i] = append(sc.childReqs[i], batchChildReq{qi, false})
				}
			}
			direct[qi*n+bl] = true
			direct[qi*n+br] = true
			sc.childReqs[bl] = append(sc.childReqs[bl], batchChildReq{qi, true})
			sc.childReqs[br] = append(sc.childReqs[br], batchChildReq{qi, true})

		default:
			// Boundary path (or fully covering range): contained children go
			// through the directional TS structures of the anchor straddler.
			useRight := br < 0
			anchor := -1
			if useRight {
				for i := 0; i < n; i++ {
					if row[i] == c3Straddle {
						anchor = i
						break
					}
				}
			} else {
				for i := n - 1; i >= 0; i-- {
					if row[i] == c3Straddle {
						anchor = i
						break
					}
				}
			}
			if anchor < 0 {
				// Only inside/below children: visit the inside ones directly.
				for i := 0; i < n; i++ {
					if row[i] == c3Inside {
						direct[qi*n+i] = true
						sc.childReqs[i] = append(sc.childReqs[i], batchChildReq{qi, true})
					}
				}
			} else if useRight {
				sc.anchorR[anchor] = append(sc.anchorR[anchor], qi)
			} else {
				sc.anchorL[anchor] = append(sc.anchorL[anchor], qi)
			}
			if bl >= 0 {
				direct[qi*n+bl] = true
				sc.childReqs[bl] = append(sc.childReqs[bl], batchChildReq{qi, true})
			}
			if br >= 0 {
				direct[qi*n+br] = true
				sc.childReqs[br] = append(sc.childReqs[br], batchChildReq{qi, true})
			}
		}
	}

	// 2. One ctrl load per distinct (anchor, side): report the anchor's
	// stored points for the group, share its TS prefix among the covered
	// members, route everyone's siblings.
	for a := 0; a < n; a++ {
		t.anchorBatch(m, reqs, sc, a, true, sc.anchorR[a])
		t.anchorBatch(m, reqs, sc, a, false, sc.anchorL[a])
	}

	// 3. One load + one recursive batch per child with requests.
	for i := 0; i < n; i++ {
		creqs := sc.childReqs[i]
		rep := sc.repOnly[i]
		if len(creqs) == 0 && len(rep) == 0 {
			continue
		}
		sort.Slice(creqs, func(x, y int) bool { return creqs[x].qi < creqs[y].qi })
		sort.Ints(rep)
		cf := t.getFrame()
		cm := t.loadCtrlFrame(m.children[i].ctrl, cf)
		grp := sc.grpSts[:0]
		ri, ci := 0, 0
		for ri < len(rep) || ci < len(creqs) {
			switch {
			case ci >= len(creqs) || (ri < len(rep) && rep[ri] < creqs[ci].qi):
				grp = append(grp, reqs[rep[ri]].st)
				ri++
			default:
				if creqs[ci].rep {
					grp = append(grp, reqs[creqs[ci].qi].st)
				}
				ci++
			}
		}
		sc.grpSts = grp
		t.reportStored3Batch(cm, grp, sc)
		if len(cm.children) > 0 && len(creqs) > 0 {
			vr := sc.vr[i][:0]
			for _, cr := range creqs {
				if st := reqs[cr.qi].st; !st.stopped {
					vr = append(vr, visitReq{st: st, reportStored: cr.rep})
				}
			}
			sc.vr[i] = vr
			if len(vr) > 0 {
				csc := t.getScratch()
				t.processChildren3Batch(cf, vr, csc)
				t.putScratch(csc)
			}
		}
		t.putFrame(cf)
	}

	// 4. TD consultation, once per node for the batch: the TD 3-sided
	// structure stays a per-query access, the TD update block is scanned
	// once and demultiplexed through the per-query direct filters.
	if m.td != nil {
		tdEmits := sc.tdEmits[:0]
		for qi, r := range reqs {
			st := r.st
			if st.stopped {
				continue
			}
			row := direct[qi*n : qi*n+n]
			fn := func(rc rec) bool {
				slot := tdSlot(rc.aux)
				if slot < len(row) && row[slot] && !tdInU(rc.aux) {
					return true
				}
				return st.offer(rc.pt)
			}
			if m.td.pst.root != disk.NilBlock {
				t.queryEPST(m.td.pst, st.q.X1, st.q.X2, st.q.Y, fn)
			}
			tdEmits = append(tdEmits, fn)
		}
		if len(tdEmits) > 0 {
			t.scanUpd(m.td.upd, func(rc rec) bool {
				for _, fn := range tdEmits {
					fn(rc)
				}
				return true
			})
		}
		sc.tdEmits = tdEmits[:0]
	}
}

// anchorBatch handles one (anchor child, side) group of boundary-path
// queries: the shared anchor load, the per-member TS coverage decision, the
// shared TS prefix scan, and the far-/near-side sibling routing — exactly
// processContained's logic with the I/O hoisted out of the per-query loop.
func (t *Tree) anchorBatch(m *metaCtrl, reqs []visitReq, sc *nodeScratch3, anchor int, useRight bool, members []int) {
	if len(members) == 0 {
		return
	}
	n := len(m.children)
	direct := sc.direct
	af := t.getFrame()
	anchorCtrl := t.loadCtrlFrame(m.children[anchor].ctrl, af)
	grp := sc.grpSts[:0]
	for _, qi := range members {
		direct[qi*n+anchor] = true
		grp = append(grp, reqs[qi].st)
	}
	sc.grpSts = grp
	t.reportStored3Batch(anchorCtrl, grp, sc)

	var ts tsInfo
	farLo, farHi := 0, 0 // far-side child interval [farLo, farHi)
	if useRight {
		ts = anchorCtrl.tsr
		farLo, farHi = anchor+1, n
	} else {
		ts = anchorCtrl.tsl
		farLo, farHi = 0, anchor
	}
	totalFar := 0
	for i := farLo; i < farHi; i++ {
		totalFar += m.children[i].storedCount
	}
	tsCount, tsBottom := ts.count, ts.bottomY
	covers := func(st *qstate, relevantFar int) bool {
		return relevantFar == 0 || (tsCount > 0 && (tsBottom < st.q.Y || tsCount == totalFar))
	}
	relFar := func(qi int) int {
		row := sc.classes[qi*n : qi*n+n]
		rel := 0
		for i := farLo; i < farHi; i++ {
			if row[i] == c3Inside || row[i] == c3Straddle {
				rel += m.children[i].storedCount
			}
		}
		return rel
	}
	covered := sc.covered[:0]
	for _, qi := range members {
		if st := reqs[qi].st; !st.stopped && covers(st, relFar(qi)) {
			covered = append(covered, st)
		}
	}
	sc.covered = covered
	if len(covered) > 0 {
		t.scanH3Batch(ts.blocks, covered)
	}
	t.putFrame(af)

	for _, qi := range members {
		st := reqs[qi].st
		if st.stopped {
			continue
		}
		row := sc.classes[qi*n : qi*n+n]
		if covers(st, relFar(qi)) {
			for i := farLo; i < farHi; i++ {
				if row[i] == c3Inside {
					sc.childReqs[i] = append(sc.childReqs[i], batchChildReq{qi, false})
				}
			}
		} else {
			for i := farLo; i < farHi; i++ {
				switch row[i] {
				case c3Inside:
					direct[qi*n+i] = true
					sc.childReqs[i] = append(sc.childReqs[i], batchChildReq{qi, true})
				case c3Straddle:
					direct[qi*n+i] = true
					sc.repOnly[i] = append(sc.repOnly[i], qi)
				}
			}
		}
		// Near-side siblings are inside or below (the anchor is the extreme
		// straddler): visit the inside ones directly.
		nearLo, nearHi := 0, anchor
		if !useRight {
			nearLo, nearHi = anchor+1, n
		}
		for i := nearLo; i < nearHi; i++ {
			if row[i] == c3Inside {
				direct[qi*n+i] = true
				sc.childReqs[i] = append(sc.childReqs[i], batchChildReq{qi, true})
			}
		}
	}
}
