package threeside

import (
	"sort"
	"testing"

	"ccidx/internal/geom"
)

// rebuildCascadeSeq is the delta-debugged minimal insert sequence (144
// points, B=4) that used to corrupt the tree: a leaf split inside
// tsReorgChildren's overflow loop pushed the looping node's fanout to 2B,
// and the old splitNode freed that node while the loop still held its id.
// The freed control blocks were reallocated to record blocks whose headers
// reinterpret as blob next-pointers, producing a cyclic chain that hung
// readBlob. Extracted from the classindex property test (hierarchy seed
// 348: a two-class chain, Y = path label).
var rebuildCascadeSeq = []geom.Point{
	{X: 70, Y: 1, ID: 0}, {X: 114, Y: 1, ID: 1}, {X: 0, Y: 1, ID: 2}, {X: 10, Y: 1, ID: 3},
	{X: 101, Y: 1, ID: 4}, {X: 81, Y: 1, ID: 5}, {X: 24, Y: 2, ID: 6}, {X: 21, Y: 2, ID: 7},
	{X: 6, Y: 2, ID: 8}, {X: 54, Y: 2, ID: 9}, {X: 107, Y: 2, ID: 10}, {X: 74, Y: 1, ID: 11},
	{X: 116, Y: 1, ID: 12}, {X: 57, Y: 2, ID: 13}, {X: 74, Y: 1, ID: 14}, {X: 62, Y: 2, ID: 15},
	{X: 32, Y: 1, ID: 16}, {X: 110, Y: 1, ID: 17}, {X: 57, Y: 1, ID: 18}, {X: 84, Y: 1, ID: 19},
	{X: 75, Y: 2, ID: 20}, {X: 18, Y: 1, ID: 21}, {X: 4, Y: 1, ID: 22}, {X: 62, Y: 1, ID: 23},
	{X: 11, Y: 2, ID: 24}, {X: 89, Y: 2, ID: 25}, {X: 68, Y: 1, ID: 26}, {X: 90, Y: 1, ID: 27},
	{X: 30, Y: 2, ID: 28}, {X: 101, Y: 2, ID: 29}, {X: 78, Y: 2, ID: 30}, {X: 75, Y: 2, ID: 31},
	{X: 115, Y: 1, ID: 32}, {X: 36, Y: 2, ID: 33}, {X: 13, Y: 1, ID: 34}, {X: 75, Y: 2, ID: 35},
	{X: 10, Y: 2, ID: 36}, {X: 51, Y: 2, ID: 37}, {X: 12, Y: 1, ID: 38}, {X: 10, Y: 1, ID: 39},
	{X: 49, Y: 2, ID: 40}, {X: 70, Y: 2, ID: 41}, {X: 115, Y: 2, ID: 42}, {X: 35, Y: 2, ID: 43},
	{X: 65, Y: 1, ID: 44}, {X: 21, Y: 2, ID: 45}, {X: 23, Y: 1, ID: 46}, {X: 34, Y: 2, ID: 47},
	{X: 92, Y: 1, ID: 48}, {X: 10, Y: 1, ID: 49}, {X: 52, Y: 2, ID: 50}, {X: 28, Y: 1, ID: 51},
	{X: 0, Y: 2, ID: 52}, {X: 118, Y: 2, ID: 53}, {X: 39, Y: 2, ID: 54}, {X: 72, Y: 1, ID: 55},
	{X: 79, Y: 2, ID: 56}, {X: 63, Y: 2, ID: 57}, {X: 40, Y: 2, ID: 58}, {X: 79, Y: 1, ID: 59},
	{X: 50, Y: 2, ID: 60}, {X: 91, Y: 1, ID: 61}, {X: 41, Y: 2, ID: 62}, {X: 118, Y: 2, ID: 63},
	{X: 65, Y: 1, ID: 64}, {X: 104, Y: 1, ID: 65}, {X: 26, Y: 1, ID: 66}, {X: 26, Y: 2, ID: 67},
	{X: 93, Y: 2, ID: 68}, {X: 92, Y: 1, ID: 69}, {X: 118, Y: 2, ID: 70}, {X: 23, Y: 2, ID: 71},
	{X: 119, Y: 1, ID: 72}, {X: 51, Y: 1, ID: 73}, {X: 49, Y: 2, ID: 74}, {X: 108, Y: 2, ID: 75},
	{X: 87, Y: 1, ID: 77}, {X: 50, Y: 2, ID: 79}, {X: 103, Y: 2, ID: 80}, {X: 104, Y: 2, ID: 81},
	{X: 94, Y: 2, ID: 82}, {X: 83, Y: 1, ID: 83}, {X: 111, Y: 1, ID: 84}, {X: 2, Y: 2, ID: 85},
	{X: 49, Y: 2, ID: 90}, {X: 65, Y: 2, ID: 91}, {X: 56, Y: 2, ID: 92}, {X: 40, Y: 2, ID: 93},
	{X: 78, Y: 1, ID: 94}, {X: 83, Y: 1, ID: 96}, {X: 70, Y: 2, ID: 97}, {X: 108, Y: 2, ID: 98},
	{X: 76, Y: 2, ID: 99}, {X: 86, Y: 2, ID: 104}, {X: 97, Y: 2, ID: 105}, {X: 62, Y: 2, ID: 106},
	{X: 7, Y: 2, ID: 110}, {X: 69, Y: 1, ID: 115}, {X: 24, Y: 2, ID: 116}, {X: 68, Y: 1, ID: 118},
	{X: 115, Y: 2, ID: 119}, {X: 37, Y: 2, ID: 120}, {X: 20, Y: 2, ID: 123}, {X: 89, Y: 1, ID: 129},
	{X: 115, Y: 2, ID: 130}, {X: 58, Y: 1, ID: 131}, {X: 53, Y: 1, ID: 138}, {X: 94, Y: 2, ID: 139},
	{X: 72, Y: 2, ID: 140}, {X: 82, Y: 2, ID: 147}, {X: 80, Y: 2, ID: 148}, {X: 85, Y: 1, ID: 149},
	{X: 72, Y: 2, ID: 150}, {X: 51, Y: 2, ID: 151}, {X: 99, Y: 2, ID: 165}, {X: 110, Y: 1, ID: 167},
	{X: 90, Y: 1, ID: 171}, {X: 101, Y: 2, ID: 172}, {X: 78, Y: 2, ID: 173}, {X: 118, Y: 2, ID: 174},
	{X: 1, Y: 2, ID: 175}, {X: 30, Y: 2, ID: 176}, {X: 112, Y: 2, ID: 177}, {X: 89, Y: 2, ID: 178},
	{X: 30, Y: 1, ID: 180}, {X: 79, Y: 2, ID: 181}, {X: 118, Y: 2, ID: 182}, {X: 71, Y: 2, ID: 183},
	{X: 82, Y: 2, ID: 184}, {X: 79, Y: 2, ID: 185}, {X: 66, Y: 2, ID: 186}, {X: 75, Y: 1, ID: 187},
	{X: 18, Y: 1, ID: 188}, {X: 84, Y: 1, ID: 189}, {X: 1, Y: 2, ID: 190}, {X: 97, Y: 2, ID: 191},
	{X: 41, Y: 1, ID: 192}, {X: 96, Y: 1, ID: 193}, {X: 31, Y: 2, ID: 194}, {X: 47, Y: 1, ID: 195},
	{X: 83, Y: 2, ID: 196}, {X: 58, Y: 2, ID: 197}, {X: 62, Y: 2, ID: 198}, {X: 53, Y: 2, ID: 199},
}

// TestInsertRebuildCascadeRegression replays the minimized hang workload
// and asserts full query correctness afterwards.
func TestInsertRebuildCascadeRegression(t *testing.T) {
	tr := New(Config{B: 4}, nil)
	for _, p := range rebuildCascadeSeq {
		tr.Insert(p)
	}
	if tr.Len() != len(rebuildCascadeSeq) {
		t.Fatalf("Len=%d want %d", tr.Len(), len(rebuildCascadeSeq))
	}
	queries := []geom.ThreeSidedQuery{
		{X1: 0, X2: 119, Y: 1}, {X1: 0, X2: 119, Y: 2}, {X1: 30, X2: 90, Y: 2},
		{X1: 70, X2: 71, Y: 1}, {X1: 50, X2: 60, Y: 3},
	}
	for _, q := range queries {
		var got []uint64
		tr.Query(q, func(p geom.Point) bool {
			got = append(got, p.ID)
			return true
		})
		var want []uint64
		for _, p := range rebuildCascadeSeq {
			if p.X >= q.X1 && p.X <= q.X2 && p.Y >= q.Y {
				want = append(want, p.ID)
			}
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("query %+v: got %d points, want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %+v: id mismatch at %d: got %d want %d", q, i, got[i], want[i])
			}
		}
	}
}
